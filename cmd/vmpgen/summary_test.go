package main

import (
	"strings"
	"testing"
	"time"
)

// TestQuantileDur pins the nearest-rank estimator on a slice whose
// quantiles are computable by inspection.
func TestQuantileDur(t *testing.T) {
	sorted := make([]time.Duration, 100)
	for i := range sorted {
		sorted[i] = time.Duration(i+1) * time.Millisecond // 1ms..100ms
	}
	for _, tc := range []struct {
		q    float64
		want time.Duration
	}{
		{0, time.Millisecond},
		{0.50, 50 * time.Millisecond},
		{0.90, 90 * time.Millisecond},
		{0.99, 99 * time.Millisecond},
		{1, 100 * time.Millisecond},
		{-1, time.Millisecond},      // clamps low
		{2, 100 * time.Millisecond}, // clamps high
	} {
		if got := quantileDur(sorted, tc.q); got != tc.want {
			t.Fatalf("quantileDur(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if got := quantileDur(nil, 0.5); got != 0 {
		t.Fatalf("empty quantileDur = %v, want 0", got)
	}
	if got := quantileDur([]time.Duration{7 * time.Millisecond}, 0.99); got != 7*time.Millisecond {
		t.Fatalf("single-sample p99 = %v, want the sample", got)
	}
}

// TestLatencySummary checks the exit line carries the exact quantiles
// of the recorded round trips and the accumulated waits.
func TestLatencySummary(t *testing.T) {
	d := &driver{}
	if got := d.latencySummary(0); got != "post latency: no posts" {
		t.Fatalf("empty summary = %q", got)
	}
	for i := 100; i >= 1; i-- { // deliberately unsorted input
		d.rtts = append(d.rtts, time.Duration(i)*time.Millisecond)
	}
	d.waited = 1500 * time.Millisecond
	got := d.latencySummary(3)
	for _, want := range []string{
		"p50 50ms", "p90 90ms", "p99 99ms", "max 100ms",
		"over 100 posts", "(3 retries", "1.5s waiting on Retry-After",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("summary %q missing %q", got, want)
		}
	}
}
