package main

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"vmp/internal/telemetry"
	"vmp/internal/wire"
)

// genRecords builds a small deterministic batch for driver tests.
func genRecords(n int) []telemetry.ViewRecord {
	base := time.Date(2012, 3, 1, 0, 0, 0, 0, time.UTC)
	recs := make([]telemetry.ViewRecord, n)
	for i := range recs {
		recs[i] = telemetry.ViewRecord{
			Timestamp: base.Add(time.Duration(i) * 41 * time.Second),
			Publisher: "pub-" + string(rune('a'+i%5)),
			VideoID:   "vid",
			URL:       "https://cdn.example/v.m3u8",
			Device:    "Mobile",
			CDNs:      []string{"cdn-a", "cdn-b"},
			Bitrates:  []int{400, 1200},
			ViewSec:   30 + float64(i),
			Weight:    1,
		}
	}
	return recs
}

// backpressureServer answers every batch with a fixed number of 429s
// before accepting it, recording each body it sees.
type backpressureServer struct {
	mu       sync.Mutex
	denials  int
	pending  map[string]int // body -> 429s issued so far
	bodies   [][]byte
	accepted int
}

func (b *backpressureServer) handler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(r.Body); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		b.mu.Lock()
		defer b.mu.Unlock()
		body := buf.String()
		b.bodies = append(b.bodies, append([]byte(nil), buf.Bytes()...))
		if b.pending == nil {
			b.pending = map[string]int{}
		}
		if b.pending[body] < b.denials {
			b.pending[body]++
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		b.accepted++
		w.WriteHeader(http.StatusAccepted)
	}
}

// newTestDriver returns a driver whose backpressure wait is a no-delay
// counter, so retry paths run instantly.
func newTestDriver(t *testing.T, encoding string, compress bool, waits *int) *driver {
	t.Helper()
	d, err := newDriver(encoding, compress, 1)
	if err != nil {
		t.Fatal(err)
	}
	d.wait = func(ctx context.Context, _ time.Duration) error {
		*waits++
		return ctx.Err()
	}
	return d
}

// TestDriveEncodesOncePerBatch pins the retry contract: a batch is
// encoded exactly once no matter how many 429s it takes to land, and
// every retry resends byte-identical bytes.
func TestDriveEncodesOncePerBatch(t *testing.T) {
	for _, tc := range []struct {
		name     string
		encoding string
		compress bool
	}{
		{"jsonl", "jsonl", false},
		{"binary", "binary", false},
		{"binary_gzip", "binary", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			bp := &backpressureServer{denials: 2}
			srv := httptest.NewServer(bp.handler())
			defer srv.Close()

			recs := genRecords(25)
			waits := 0
			d := newTestDriver(t, tc.encoding, tc.compress, &waits)
			if err := d.drive(context.Background(), srv.URL, recs, 10, 10); err != nil {
				t.Fatal(err)
			}

			const batches = 3 // ceil(25/10)
			if d.be.encodes != batches {
				t.Fatalf("encoded %d times for %d batches; retries must reuse the encoded body", d.be.encodes, batches)
			}
			if bp.accepted != batches {
				t.Fatalf("server accepted %d batches, want %d", bp.accepted, batches)
			}
			if waits != batches*bp.denials {
				t.Fatalf("driver waited %d times, want %d", waits, batches*bp.denials)
			}
			// Each batch shows up denials+1 times, byte-identical each time.
			if len(bp.bodies) != batches*(bp.denials+1) {
				t.Fatalf("server saw %d posts, want %d", len(bp.bodies), batches*(bp.denials+1))
			}
			for i := 0; i < len(bp.bodies); i += bp.denials + 1 {
				for j := 1; j <= bp.denials; j++ {
					if !bytes.Equal(bp.bodies[i], bp.bodies[i+j]) {
						t.Fatalf("retry %d of batch %d resent different bytes", j, i/(bp.denials+1))
					}
				}
			}
		})
	}
}

// TestDriveBinaryGzipRoundTrip drives a decoding server over every
// encoding and checks the records that arrive are the records sent.
func TestDriveBinaryGzipRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name     string
		encoding string
		compress bool
	}{
		{"jsonl", "jsonl", false},
		{"jsonl_gzip", "jsonl", true},
		{"binary", "binary", false},
		{"binary_gzip", "binary", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var (
				mu  sync.Mutex
				got []telemetry.ViewRecord
			)
			srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				recs, bad, _, err := wire.DecodeBody(r.Header, r.Body, wire.NewDecoder())
				if err != nil || bad != 0 {
					t.Errorf("server decode: err=%v bad=%d", err, bad)
					http.Error(w, "bad", http.StatusBadRequest)
					return
				}
				mu.Lock()
				got = append(got, recs...)
				mu.Unlock()
				w.WriteHeader(http.StatusAccepted)
			}))
			defer srv.Close()

			recs := genRecords(23)
			waits := 0
			d := newTestDriver(t, tc.encoding, tc.compress, &waits)
			if err := d.drive(context.Background(), srv.URL, recs, 7, 0); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(recs, got) {
				t.Fatalf("round trip mismatch: sent %d records, got %d", len(recs), len(got))
			}
		})
	}
}

// TestEncodeSteadyStateAllocs pins the buffer-reuse contract directly:
// after warmup, re-encoding a batch through the shared batchEncoder
// stays allocation-free for the binary path, so retries (which skip
// encode entirely) cannot scale allocations either.
func TestEncodeSteadyStateAllocs(t *testing.T) {
	recs := genRecords(500)
	be, err := newBatchEncoder("binary", false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := be.encode(recs); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := be.encode(recs); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Fatalf("steady-state encode allocates %.0f times per batch, want <= 2", allocs)
	}
}

// TestNewDriverRejectsUnknownEncoding covers the flag-validation path.
func TestNewDriverRejectsUnknownEncoding(t *testing.T) {
	if _, err := newDriver("protobuf", false, 0); err == nil {
		t.Fatal("unknown -encode accepted")
	}
}
