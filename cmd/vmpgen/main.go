// Command vmpgen generates the synthetic view-record dataset as JSON
// lines — the wire format the collector ingests and ReadDataset
// parses. With -post it doubles as the load driver for the live
// serving plane: instead of (or besides) writing a file, it streams
// the dataset to a vmpd or vmpcollector ingest endpoint in batches,
// honoring 429 backpressure responses by waiting out the server's
// Retry-After hint and retrying the identical batch.
//
// Usage:
//
//	vmpgen -o views.jsonl                        # full 27-month dataset
//	vmpgen -stride 8 | head                      # thinned, to stdout
//	vmpgen -stride 24 -post http://localhost:8474
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"time"

	"vmp"
	"vmp/internal/obs"
	"vmp/internal/simclock"
	"vmp/internal/telemetry"
)

func main() {
	var (
		seed       = flag.Uint64("seed", 0, "population seed (0 = default)")
		stride     = flag.Int("stride", 1, "use every k-th snapshot (1 = full study)")
		out        = flag.String("o", "", "output file (default stdout; with -post, default none)")
		post       = flag.String("post", "", "base URL of a /v1/views ingest endpoint to stream the dataset to")
		postBatch  = flag.Int("post-batch", 2000, "records per POST batch")
		postTries  = flag.Int("post-retries", 100, "max retries per batch on backpressure")
		postVerify = flag.Bool("post-verify", false, "after -post, check the server's /v1/metrics ingest counter covers every posted record")
	)
	flag.Parse()

	study := vmp.New(vmp.Config{Seed: *seed, SnapshotStride: *stride})

	if *out != "" || *post == "" {
		var w io.Writer = os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fatal(err)
			}
			bw := bufio.NewWriterSize(f, 1<<20)
			if err := vmp.WriteDataset(study, bw); err != nil {
				fatal(err)
			}
			// Flush and close errors lose tail records, so they are
			// fatal like any other write error.
			if err := bw.Flush(); err != nil {
				_ = f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
		} else if err := vmp.WriteDataset(study, w); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "vmpgen: wrote %d records\n", study.Store().Len())
	}

	if *post != "" {
		recs := study.Store().All()
		if err := drive(context.Background(), *post, recs, *postBatch, *postTries, *seed); err != nil {
			fatal(err)
		}
		if *postVerify {
			if err := verifyIngest(*post, int64(len(recs))); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "vmpgen: verified: server ingest counter covers all %d posted records\n", len(recs))
		}
	}
}

// verifyIngest reads the server's /v1/metrics snapshot and checks its
// ingest counter accounts for every record this driver posted. It
// accepts either daemon's counter name (vmpd's live engine or the
// plain collector), and ≥ rather than == because other drivers may
// have posted concurrently.
func verifyIngest(url string, posted int64) error {
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(url + "/v1/metrics")
	if err != nil {
		return fmt.Errorf("verify: %w", err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("verify: GET /v1/metrics: %s", resp.Status)
	}
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return fmt.Errorf("verify: decoding /v1/metrics: %w", err)
	}
	for _, name := range []string{"live_ingest_records_total", "collector_ingested_total"} {
		if n, ok := snap.Counters[name]; ok {
			if n >= posted {
				return nil
			}
			return fmt.Errorf("verify: %s is %d, expected >= %d", name, n, posted)
		}
	}
	return fmt.Errorf("verify: no ingest counter in /v1/metrics snapshot")
}

// drive streams recs to url's /v1/views endpoint in batches. A 429
// means the server's shard queues are full; the batch is retried
// unchanged after the Retry-After hint — admission is atomic on the
// server, so retries never duplicate records. The hint is capped (a
// confused server cannot stall the driver for minutes at a time) and
// jittered from a seeded generator, so concurrent drivers
// desynchronize without run-to-run nondeterminism; the wait itself
// rides ctx and aborts when the caller is cancelled.
func drive(ctx context.Context, url string, recs []telemetry.ViewRecord, batch, retries int, seed uint64) error {
	if batch <= 0 {
		batch = 2000
	}
	jitter := rand.New(rand.NewSource(int64(seed)))
	clk := simclock.Wall()
	start := clk.Now()
	client := &http.Client{Timeout: 30 * time.Second}
	posted, backpressured := 0, 0
	for lo := 0; lo < len(recs); lo += batch {
		hi := lo + batch
		if hi > len(recs) {
			hi = len(recs)
		}
		var buf bytes.Buffer
		if err := telemetry.EncodeJSONL(&buf, recs[lo:hi]); err != nil {
			return err
		}
		body := buf.Bytes()
		for attempt := 0; ; attempt++ {
			resp, err := client.Post(url+"/v1/views", "application/x-ndjson", bytes.NewReader(body))
			if err != nil {
				return err
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			_ = resp.Body.Close()
			if resp.StatusCode == http.StatusAccepted {
				posted += hi - lo
				break
			}
			if resp.StatusCode != http.StatusTooManyRequests {
				return fmt.Errorf("POST /v1/views: %s", resp.Status)
			}
			backpressured++
			if attempt >= retries {
				return fmt.Errorf("batch at record %d still backpressured after %d retries", lo, retries)
			}
			if err := simclock.Wait(ctx, retryAfter(resp, jitter)); err != nil {
				return err
			}
		}
	}
	elapsed := clk.Now().Sub(start)
	fmt.Fprintf(os.Stderr, "vmpgen: posted %d records in %v (%.0f records/s, %d backpressure waits)\n",
		posted, elapsed.Round(time.Millisecond), float64(posted)/elapsed.Seconds(), backpressured)
	return nil
}

// retryAfterCap bounds how long a single Retry-After hint can stall
// the driver; a server hinting longer is simply retried sooner.
const retryAfterCap = 5 * time.Second

// retryAfter extracts the server's Retry-After hint (whole seconds per
// RFC 9110), defaulting to half a second, capping at retryAfterCap,
// and adding up to 25% seeded jitter so retry storms decorrelate.
func retryAfter(resp *http.Response, jitter *rand.Rand) time.Duration {
	d := 500 * time.Millisecond
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
			d = time.Duration(secs) * time.Second
		}
	}
	if d > retryAfterCap {
		d = retryAfterCap
	}
	return d + time.Duration(jitter.Int63n(int64(d)/4+1))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vmpgen:", err)
	os.Exit(1)
}
