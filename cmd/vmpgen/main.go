// Command vmpgen generates the synthetic view-record dataset as JSON
// lines — the wire format the collector ingests and ReadDataset
// parses.
//
// Usage:
//
//	vmpgen -o views.jsonl            # full 27-month dataset
//	vmpgen -stride 8 | head          # thinned, to stdout
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"vmp"
)

func main() {
	var (
		seed   = flag.Uint64("seed", 0, "population seed (0 = default)")
		stride = flag.Int("stride", 1, "use every k-th snapshot (1 = full study)")
		out    = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		bw := bufio.NewWriterSize(f, 1<<20)
		// Flush and close errors lose tail records, so they are fatal
		// like any other write error.
		defer func() {
			if err := bw.Flush(); err != nil {
				_ = f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = bw
	}

	study := vmp.New(vmp.Config{Seed: *seed, SnapshotStride: *stride})
	if err := vmp.WriteDataset(study, w); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "vmpgen: wrote %d records\n", study.Store().Len())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vmpgen:", err)
	os.Exit(1)
}
