// Command vmpgen generates the synthetic view-record dataset as JSON
// lines — the wire format the collector ingests and ReadDataset
// parses. With -post it doubles as the load driver for the live
// serving plane: instead of (or besides) writing a file, it streams
// the dataset to a vmpd or vmpcollector ingest endpoint in batches,
// honoring 429 backpressure responses by waiting out the server's
// Retry-After hint and retrying the identical batch. -encode binary
// posts the compact binary batch frames (internal/wire) instead of
// JSONL, and -compress gzips either encoding on the wire.
//
// Usage:
//
//	vmpgen -o views.jsonl                        # full 27-month dataset
//	vmpgen -stride 8 | head                      # thinned, to stdout
//	vmpgen -stride 24 -post http://localhost:8474 -encode binary -compress
package main

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"time"

	"vmp"
	"vmp/internal/obs"
	"vmp/internal/simclock"
	"vmp/internal/telemetry"
	"vmp/internal/wire"
)

func main() {
	var (
		seed       = flag.Uint64("seed", 0, "population seed (0 = default)")
		stride     = flag.Int("stride", 1, "use every k-th snapshot (1 = full study)")
		out        = flag.String("o", "", "output file (default stdout; with -post, default none)")
		post       = flag.String("post", "", "base URL of a /v1/views ingest endpoint to stream the dataset to")
		postBatch  = flag.Int("post-batch", 2000, "records per POST batch")
		postTries  = flag.Int("post-retries", 100, "max retries per batch on backpressure")
		postVerify = flag.Bool("post-verify", false, "after -post, check the server's /v1/metrics ingest counter covers every posted record")
		encoding   = flag.String("encode", "jsonl", "POST body encoding: jsonl or binary")
		compress   = flag.Bool("compress", false, "gzip-compress POST bodies (Content-Encoding: gzip)")
		acked      = flag.String("acked", "", "with -post: append each 202-acknowledged batch to this JSONL file before posting the next (crash-test ledger)")
	)
	flag.Parse()

	study := vmp.New(vmp.Config{Seed: *seed, SnapshotStride: *stride})

	if *out != "" || *post == "" {
		var w io.Writer = os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fatal(err)
			}
			bw := bufio.NewWriterSize(f, 1<<20)
			if err := vmp.WriteDataset(study, bw); err != nil {
				fatal(err)
			}
			// Flush and close errors lose tail records, so they are
			// fatal like any other write error.
			if err := bw.Flush(); err != nil {
				_ = f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
		} else if err := vmp.WriteDataset(study, w); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "vmpgen: wrote %d records\n", study.Store().Len())
	}

	if *post != "" {
		recs := study.Store().All()
		d, err := newDriver(*encoding, *compress, *seed)
		if err != nil {
			fatal(err)
		}
		if *acked != "" {
			// Unbuffered on purpose: each acknowledged batch must be on
			// disk before the next POST, so when a crash test kills the
			// server mid-stream the ledger is an exact record of what
			// the server took responsibility for.
			f, err := os.Create(*acked)
			if err != nil {
				fatal(err)
			}
			d.acked = f
			defer func() {
				if err := f.Close(); err != nil {
					fatal(err)
				}
			}()
		}
		if err := d.drive(context.Background(), *post, recs, *postBatch, *postTries); err != nil {
			fatal(err)
		}
		if *postVerify {
			if err := verifyIngest(*post, int64(len(recs))); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "vmpgen: verified: server ingest counter covers all %d posted records\n", len(recs))
		}
	}
}

// verifyIngest reads the server's /v1/metrics snapshot and checks its
// ingest counter accounts for every record this driver posted. It
// accepts either daemon's counter name (vmpd's live engine or the
// plain collector), and ≥ rather than == because other drivers may
// have posted concurrently.
func verifyIngest(url string, posted int64) error {
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(url + "/v1/metrics")
	if err != nil {
		return fmt.Errorf("verify: %w", err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("verify: GET /v1/metrics: %s", resp.Status)
	}
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return fmt.Errorf("verify: decoding /v1/metrics: %w", err)
	}
	for _, name := range []string{"live_ingest_records_total", "collector_ingested_total"} {
		if n, ok := snap.Counters[name]; ok {
			if n >= posted {
				return nil
			}
			return fmt.Errorf("verify: %s is %d, expected >= %d", name, n, posted)
		}
	}
	return fmt.Errorf("verify: no ingest counter in /v1/metrics snapshot")
}

// batchEncoder turns record batches into POST bodies. One buffer and
// one wire encoder are reused for every batch of the drive, and each
// batch is encoded exactly once no matter how many times backpressure
// makes the driver retry it — the retry loop reuses the encoded bytes.
// encodes counts encode calls so the tests can pin that contract.
type batchEncoder struct {
	binary   bool
	compress bool
	buf      bytes.Buffer
	gz       *gzip.Writer
	enc      *wire.Encoder
	frame    []byte
	encodes  int
}

func newBatchEncoder(encoding string, compress bool) (*batchEncoder, error) {
	be := &batchEncoder{compress: compress}
	switch encoding {
	case "jsonl":
	case "binary":
		be.binary = true
		be.enc = wire.NewEncoder()
	default:
		return nil, fmt.Errorf("vmpgen: unknown -encode %q (want jsonl or binary)", encoding)
	}
	return be, nil
}

// contentType returns the Content-Type the encoding negotiates.
func (be *batchEncoder) contentType() string {
	if be.binary {
		return wire.ContentTypeBinary
	}
	return wire.ContentTypeJSONL
}

// encode renders one batch. The returned bytes alias the encoder's
// buffer and are valid until the next encode call.
func (be *batchEncoder) encode(recs []telemetry.ViewRecord) ([]byte, error) {
	be.encodes++
	be.buf.Reset()
	var w io.Writer = &be.buf
	if be.compress {
		if be.gz == nil {
			be.gz = gzip.NewWriter(&be.buf)
		} else {
			be.gz.Reset(&be.buf)
		}
		w = be.gz
	}
	if be.binary {
		var err error
		be.frame, err = be.enc.AppendFrame(be.frame[:0], recs)
		if err != nil {
			return nil, err
		}
		if _, err := w.Write(be.frame); err != nil {
			return nil, err
		}
	} else if err := telemetry.EncodeJSONL(w, recs); err != nil {
		return nil, err
	}
	if be.compress {
		// Close flushes the gzip trailer; losing it truncates the body.
		if err := be.gz.Close(); err != nil {
			return nil, err
		}
	}
	return be.buf.Bytes(), nil
}

// driver streams a dataset to an ingest endpoint. The wait hook is
// the backpressure sleep (simclock.Wait in production); tests inject
// a counter to drive retries without real delays.
type driver struct {
	be     *batchEncoder
	client *http.Client
	jitter *rand.Rand
	clock  simclock.Clock
	wait   func(context.Context, time.Duration) error
	acked  io.Writer // when set, every 202-acked batch is appended as JSONL

	// retryAfterHint is the wait post computed from the last 429
	// response, kept here so drive's retry loop stays free of response
	// plumbing.
	retryAfterHint time.Duration

	// rtts collects every POST attempt's round-trip time (202s and
	// 429s alike) and waited the total Retry-After sleep, for the
	// client-side latency summary drive prints at exit.
	rtts   []time.Duration
	waited time.Duration
}

func newDriver(encoding string, compress bool, seed uint64) (*driver, error) {
	be, err := newBatchEncoder(encoding, compress)
	if err != nil {
		return nil, err
	}
	return &driver{
		be:     be,
		client: &http.Client{Timeout: 30 * time.Second},
		jitter: rand.New(rand.NewSource(int64(seed))),
		clock:  simclock.Wall(),
		wait:   simclock.Wait,
	}, nil
}

// drive streams recs to url's /v1/views endpoint in batches. A 429
// means the server's shard queues are full; the batch is retried
// unchanged after the Retry-After hint — admission is atomic on the
// server, so retries never duplicate records, and the body was
// encoded once before the first attempt, so retries cost no encode
// work. The hint is capped (a confused server cannot stall the driver
// for minutes at a time) and jittered from a seeded generator, so
// concurrent drivers desynchronize without run-to-run nondeterminism;
// the wait itself rides ctx and aborts when the caller is cancelled.
func (d *driver) drive(ctx context.Context, url string, recs []telemetry.ViewRecord, batch, retries int) error {
	if batch <= 0 {
		batch = 2000
	}
	start := d.clock.Now()
	posted, backpressured := 0, 0
	for lo := 0; lo < len(recs); lo += batch {
		hi := lo + batch
		if hi > len(recs) {
			hi = len(recs)
		}
		body, err := d.be.encode(recs[lo:hi])
		if err != nil {
			return err
		}
		for attempt := 0; ; attempt++ {
			attemptStart := d.clock.Now()
			status, err := d.post(ctx, url, body)
			if err != nil {
				return err
			}
			d.rtts = append(d.rtts, d.clock.Now().Sub(attemptStart))
			if status == http.StatusAccepted {
				if d.acked != nil {
					if err := telemetry.EncodeJSONL(d.acked, recs[lo:hi]); err != nil {
						return fmt.Errorf("acked ledger: %w", err)
					}
				}
				posted += hi - lo
				break
			}
			if status != http.StatusTooManyRequests {
				return fmt.Errorf("POST /v1/views: status %d", status)
			}
			backpressured++
			if attempt >= retries {
				return fmt.Errorf("batch at record %d still backpressured after %d retries", lo, retries)
			}
			d.waited += d.retryAfterHint
			if err := d.wait(ctx, d.retryAfterHint); err != nil {
				return err
			}
		}
	}
	elapsed := d.clock.Now().Sub(start)
	fmt.Fprintf(os.Stderr, "vmpgen: posted %d records in %v (%.0f records/s, %d backpressure waits, %s%s)\n",
		posted, elapsed.Round(time.Millisecond), float64(posted)/elapsed.Seconds(), backpressured,
		map[bool]string{true: "binary", false: "jsonl"}[d.be.binary],
		map[bool]string{true: "+gzip", false: ""}[d.be.compress])
	fmt.Fprintln(os.Stderr, "vmpgen: "+d.latencySummary(backpressured))
	return nil
}

// latencySummary renders the client-side view of the ingest SLO: exact
// (not bucketed) quantiles over every POST round-trip this drive made,
// plus the retry count and total Retry-After time waited out. The
// server's /metrics histograms measure arrival→202; this measures what
// a publisher's sensor would actually experience, queueing and
// transport included.
func (d *driver) latencySummary(retries int) string {
	if len(d.rtts) == 0 {
		return "post latency: no posts"
	}
	sorted := append([]time.Duration(nil), d.rtts...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return fmt.Sprintf("post latency p50 %v p90 %v p99 %v max %v over %d posts (%d retries, %v waiting on Retry-After)",
		quantileDur(sorted, 0.50), quantileDur(sorted, 0.90), quantileDur(sorted, 0.99),
		sorted[len(sorted)-1], len(sorted), retries, d.waited.Round(time.Millisecond))
}

// quantileDur returns the q-th exact sample quantile of an ascending
// slice (nearest-rank: the smallest element ≥ a fraction q of the
// samples). Empty input returns 0; q outside [0,1] clamps.
func quantileDur(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}

// post sends one encoded batch and returns the status code. On a 429
// it parses the Retry-After hint into d.retryAfterHint.
func (d *driver) post(ctx context.Context, url string, body []byte) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url+"/v1/views", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", d.be.contentType())
	if d.be.compress {
		req.Header.Set("Content-Encoding", "gzip")
	}
	resp, err := d.client.Do(req)
	if err != nil {
		return 0, err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		d.retryAfterHint = retryAfter(resp, d.jitter)
	}
	return resp.StatusCode, nil
}

// retryAfterCap bounds how long a single Retry-After hint can stall
// the driver; a server hinting longer is simply retried sooner.
const retryAfterCap = 5 * time.Second

// retryAfter extracts the server's Retry-After hint (whole seconds per
// RFC 9110), defaulting to half a second, capping at retryAfterCap,
// and adding up to 25% seeded jitter so retry storms decorrelate.
func retryAfter(resp *http.Response, jitter *rand.Rand) time.Duration {
	d := 500 * time.Millisecond
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
			d = time.Duration(secs) * time.Second
		}
	}
	if d > retryAfterCap {
		d = retryAfterCap
	}
	return d + time.Duration(jitter.Int63n(int64(d)/4+1))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vmpgen:", err)
	os.Exit(1)
}
