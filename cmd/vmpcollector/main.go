// Command vmpcollector runs the telemetry collector backend: an HTTP
// service that ingests JSON-lines view records on POST /v1/views and
// reports counters on GET /v1/stats — the simulation's counterpart of
// the streaming-analytics backend described in §3.
//
// Usage:
//
//	vmpcollector -addr :8473
//	vmpgen -stride 8 | curl --data-binary @- http://localhost:8473/v1/views
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"vmp/internal/graceful"
	"vmp/internal/obs"
	"vmp/internal/simclock"
	"vmp/internal/telemetry"
)

func main() {
	var (
		addr        = flag.String("addr", ":8473", "listen address")
		interval    = flag.Duration("log-every", time.Minute, "how often to log store size")
		drain       = flag.Duration("drain-timeout", 10*time.Second, "in-flight request drain deadline on shutdown")
		load        = flag.String("load", "", "JSONL dataset to preload into the store")
		dump        = flag.String("dump", "", "JSONL file to write the store to on SIGINT/SIGTERM")
		traceDepth  = flag.Int("trace-depth", 2048, "span/event ring capacity for /v1/trace; 0 disables tracing")
		sampleEvery = flag.Duration("sample-every", time.Second, "runtime-collector sampling cadence")
		seriesDepth = flag.Int("series-depth", 600, "registry snapshots retained for /v1/series")
	)
	flag.Parse()

	clk := simclock.Wall()
	tracer := obs.NewTracer(clk, *traceDepth)
	tracer.SetEnabled(*traceDepth > 0)
	reg := obs.NewRegistry()
	collector := telemetry.NewCollectorObs(nil, reg, tracer)
	collector.SetClock(clk)
	series := obs.NewSeriesRing(*seriesDepth)
	collector.SetSeries(series)
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			log.Fatal(fmt.Errorf("collector: %w", err))
		}
		recs, err := telemetry.DecodeJSONL(bufio.NewReaderSize(f, 1<<20))
		_ = f.Close() // read side: a close failure loses nothing
		if err != nil {
			log.Fatal(fmt.Errorf("collector: loading %s: %w", *load, err))
		}
		collector.Store().Append(recs...)
		log.Printf("collector: preloaded %d records from %s", len(recs), *load)
	}
	ctx, cancel := context.WithCancel(context.Background())
	// The self-measurement plane: runtime stats plus the store-size
	// gauge, sampled into the registry and the /v1/series ring.
	sampler := obs.NewSampler(reg, series, clk, *sampleEvery)
	storeRecords := reg.Gauge("collector_store_records")
	sampler.AddSource(func() { storeRecords.Set(int64(collector.Store().Len())) })
	go sampler.Run(ctx)
	go func() {
		// The wall clock is the right clock here: this is the live
		// server's operational heartbeat, not study time. NewTicker
		// (unlike time.Tick) is also stoppable and unflagged.
		tick := time.NewTicker(*interval)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
				log.Printf("collector: %d records stored, %.1f view-hours",
					collector.Store().Len(), collector.Store().TotalViewHours())
			}
		}
	}()
	log.Printf("collector: listening on %s", *addr)
	// One combined HTTP surface: the collector's ingest API plus the
	// shared observability endpoints over the same registry and tracer.
	mux := http.NewServeMux()
	mux.Handle("/", collector.Handler())
	collector.MountObs(mux)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	// graceful.Run drains in-flight POSTs before returning, so the
	// dump below can't race a handler that is still appending — the
	// hazard the old dump-in-a-signal-goroutine path had.
	err := graceful.RunNotify(srv, nil, *drain, nil, func(phase string) {
		tracer.Emit("graceful_" + phase)
	})
	cancel() // stop the heartbeat before dumping
	if err != nil {
		log.Fatal(fmt.Errorf("collector: %w", err))
	}
	if *dump != "" {
		dumpSeconds := reg.Histogram("collector_dump_seconds",
			[]float64{0.01, 0.05, 0.1, 0.5, 1, 5, 30})
		start := clk.Now()
		if err := dumpStore(collector.Store(), *dump); err != nil {
			log.Fatal(fmt.Errorf("collector: dump: %w", err))
		}
		dur := clk.Now().Sub(start)
		dumpSeconds.Observe(dur.Seconds())
		log.Printf("collector: dumped %d records to %s in %s",
			collector.Store().Len(), *dump, dur.Round(time.Millisecond))
	}
}

// dumpStore writes the store as JSON lines.
func dumpStore(store *telemetry.Store, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	if err := telemetry.EncodeJSONL(w, store.All()); err != nil {
		_ = f.Close() // the encode error wins
		return err
	}
	if err := w.Flush(); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}
