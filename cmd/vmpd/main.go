// Command vmpd runs the live serving plane: sharded streaming ingest
// of JSON-lines view records, epoch snapshots merged into immutable
// queryable generations, and the query API — the online counterpart of
// the offline vmpstudy pipeline. A freshly cut epoch answers
// /v1/query/* byte-identically to vmpstudy over the same records.
//
// Usage:
//
//	vmpd -addr :8474 -epoch 5s
//	vmpgen -stride 24 -post http://localhost:8474
//	curl http://localhost:8474/v1/query/share?dim=protocol
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"vmp/internal/graceful"
	"vmp/internal/live"
	"vmp/internal/obs"
	"vmp/internal/simclock"
	"vmp/internal/telemetry"
	"vmp/internal/wal"
)

func main() {
	var (
		addr        = flag.String("addr", ":8474", "listen address")
		shards      = flag.Int("shards", 8, "hash partitions for ingest")
		queueDepth  = flag.Int("queue-depth", 64, "queued batches per shard before backpressure")
		batchMax    = flag.Int("batch-max", 4096, "records coalesced into one append")
		epoch       = flag.Duration("epoch", 5*time.Second, "snapshot cadence")
		retryAfter  = flag.Duration("retry-after", 500*time.Millisecond, "retry hint on backpressure")
		drain       = flag.Duration("drain-timeout", 10*time.Second, "in-flight request drain deadline on shutdown")
		interval    = flag.Duration("log-every", time.Minute, "how often to log the published generation")
		load        = flag.String("load", "", "JSONL dataset to preload before serving")
		dump        = flag.String("dump", "", "JSONL file to write the final generation to on shutdown")
		traceDepth  = flag.Int("trace-depth", 2048, "span/event ring capacity for /v1/trace; 0 disables tracing")
		walDir      = flag.String("wal-dir", "", "write-ahead log directory; empty disables durability")
		walFsync    = flag.String("wal-fsync", "batch", "WAL fsync policy: batch, interval, or off")
		walSync     = flag.Duration("wal-sync-every", 25*time.Millisecond, "group-commit cadence for -wal-fsync interval")
		walSegment  = flag.Int64("wal-segment-bytes", 16<<20, "WAL segment rotation threshold")
		sampleEvery = flag.Duration("sample-every", time.Second, "runtime-collector sampling cadence")
		seriesDepth = flag.Int("series-depth", 600, "registry snapshots retained for /v1/series")
	)
	flag.Parse()

	clk := simclock.Wall()
	tracer := obs.NewTracer(clk, *traceDepth)
	tracer.SetEnabled(*traceDepth > 0)
	metrics := obs.NewRegistry()
	series := obs.NewSeriesRing(*seriesDepth)
	engine := live.NewEngine(live.Config{
		Shards:     *shards,
		QueueDepth: *queueDepth,
		BatchMax:   *batchMax,
		EpochEvery: *epoch,
		RetryAfter: *retryAfter,
		Clock:      clk,
		Metrics:    metrics,
		Trace:      tracer,
		Series:     series,
	})
	ctx, cancel := context.WithCancel(context.Background())

	// The WAL replays BEFORE it is attached (so replayed records are
	// not appended back to the log they came from) and before the
	// listener opens (so no query can observe the pre-replay state);
	// the snapshot after attach republishes the recovered generation
	// and compacts the replayed segments into a fresh checkpoint.
	var wlog *wal.Log
	if *walDir != "" {
		policy, err := wal.ParsePolicy(*walFsync)
		if err != nil {
			log.Fatal(fmt.Errorf("vmpd: %w", err))
		}
		wlog, err = wal.Open(wal.Options{
			Dir:          *walDir,
			Shards:       *shards,
			Policy:       policy,
			SyncEvery:    *walSync,
			SegmentBytes: *walSegment,
			Clock:        clk,
			Metrics:      metrics,
			Trace:        tracer,
		})
		if err != nil {
			log.Fatal(fmt.Errorf("vmpd: %w", err))
		}
		stats, err := wlog.Replay(func(recs []telemetry.ViewRecord) error {
			return ingestAll(ctx, engine, recs)
		}, 0)
		if err != nil {
			log.Fatal(fmt.Errorf("vmpd: wal replay: %w", err))
		}
		engine.AttachWAL(wlog)
		g := engine.Snapshot()
		log.Printf("vmpd: wal %s replayed %d records (%d checkpoint + %d segment, %d torn tails); epoch %d",
			*walDir, stats.Delivered(), stats.CheckpointRecords, stats.SegmentRecords, stats.TornTails, g.Epoch)
	}
	if *load != "" {
		n, err := preload(ctx, engine, *load)
		if err != nil {
			log.Fatal(fmt.Errorf("vmpd: %w", err))
		}
		g := engine.Snapshot()
		log.Printf("vmpd: preloaded %d records from %s (epoch %d)", n, *load, g.Epoch)
	}

	go engine.Run(ctx)
	// The self-measurement plane: one sampler publishes Go runtime
	// stats plus the engine's and WAL's internal gauges, then records a
	// registry snapshot into the series ring /v1/series serves.
	sampler := obs.NewSampler(metrics, series, clk, *sampleEvery)
	sampler.AddSource(engine.PublishGauges)
	if wlog != nil {
		sampler.AddSource(wlog.PublishGauges)
	}
	go sampler.Run(ctx)
	go func() {
		tick := time.NewTicker(*interval)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
				g := engine.Generation()
				log.Printf("vmpd: epoch %d, %d records published", g.Epoch, g.Records)
			}
		}
	}()

	server := live.NewServer(engine)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Printf("vmpd: listening on %s (%d shards, %s epochs)", *addr, *shards, *epoch)
	err := graceful.RunNotify(srv, nil, *drain, nil, func(phase string) {
		tracer.Emit("graceful_" + phase)
	})
	cancel()
	// Close cuts a final epoch over everything the drained handlers
	// admitted, so the dump sees every accepted record exactly once.
	g := engine.Close()
	if err != nil {
		log.Fatal(fmt.Errorf("vmpd: %w", err))
	}
	log.Printf("vmpd: drained; final epoch %d holds %d records", g.Epoch, g.Records)
	if wlog != nil {
		// After Close's final epoch the WAL holds one fresh checkpoint
		// and no live segments; close flushes and releases the files.
		if err := wlog.Close(); err != nil {
			log.Printf("vmpd: wal close: %v", err)
		}
	}
	if *dump != "" {
		if err := dumpGeneration(g, *dump); err != nil {
			log.Fatal(fmt.Errorf("vmpd: dump: %w", err))
		}
		log.Printf("vmpd: dumped %d records to %s", g.Records, *dump)
	}
}

// preload streams a JSONL file into the engine, retrying batches the
// shard queues reject; the consumers are already running, so
// backpressure clears itself. The waits between retries ride ctx, so
// shutdown interrupts a stalled preload instead of hanging on it.
func preload(ctx context.Context, engine *live.Engine, path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	recs, bad, err := telemetry.ScanJSONL(bufio.NewReaderSize(f, 1<<20))
	_ = f.Close() // read side: a close failure loses nothing
	if err != nil {
		return 0, fmt.Errorf("loading %s: %w", path, err)
	}
	if bad > 0 {
		return 0, fmt.Errorf("loading %s: %d malformed lines", path, bad)
	}
	if err := ingestAll(ctx, engine, recs); err != nil {
		return 0, fmt.Errorf("loading %s: %w", path, err)
	}
	return len(recs), nil
}

// ingestAll admits one batch, waiting out backpressure: the consumers
// are already running, so full queues clear themselves. The waits ride
// ctx so shutdown interrupts a stalled ingest. This is also the WAL
// replay sink — replay hands batches here before the listener opens.
func ingestAll(ctx context.Context, engine *live.Engine, recs []telemetry.ViewRecord) error {
	for {
		res, err := engine.Ingest(recs)
		if err != nil {
			return err
		}
		if res.Backpressured == 0 {
			return nil
		}
		if err := simclock.Wait(ctx, res.RetryAfter); err != nil {
			return err
		}
	}
}

// dumpGeneration writes a generation's records as JSON lines.
func dumpGeneration(g *live.Generation, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	if err := telemetry.EncodeJSONL(w, g.Dataset.All()); err != nil {
		_ = f.Close() // the encode error wins
		return err
	}
	if err := w.Flush(); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}
