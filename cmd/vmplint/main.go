// Command vmplint runs the project's invariant analyzers (package
// internal/lint) over one or more packages: nondeterminism, maporder,
// frozenwrite, lockdiscipline, errcheck, atomicdiscipline,
// goroutinelifecycle, chandiscipline, ctxflow, bufalias, hotalloc,
// httpdiscipline, fsyncdiscipline, and lockorder — the machine-checked
// contracts behind byte-identical figure rendering, the race-free
// serving plane, the zero-copy wire path, and the WAL's crash
// durability.
//
// Usage:
//
//	vmplint ./...                 # whole module
//	vmplint ./internal/analytics  # one package
//	vmplint -json ./...           # machine-readable findings
//	vmplint -sarif ./...          # SARIF 2.1.0 for code-scanning UIs
//	vmplint -cache -stats ./...   # incremental run + run report
//	vmplint -json-out lint_report.json -sarif-out lint_report.sarif ./...
//	vmplint -maporder=false ./... # disable one analyzer
//	vmplint -only nondeterminism,maporder -tests ./...
//
// Analysis is whole-program: each package publishes a summary of its
// exported functions (taint, allocation, lifecycle, and lock-order
// facts), and dependents consume those summaries while the run walks
// the import DAG — so a helper in another package no longer launders
// a frozen-dataset alias. With -cache, per-package results are stored
// under a content hash covering the package's files, its dependencies'
// summaries, and the lint suite's own sources; warm runs replay hits
// without parsing or type-checking and are byte-identical to cold runs
// by construction.
//
// -json-out and -sarif-out write those formats to files in the same
// run that prints the console (or -json/-sarif) report to stdout, so
// CI needs one vmplint invocation instead of three. -stats prints a
// per-analyzer finding tally and per-package wall time to stderr.
//
// Exit status is 0 when clean, 1 when findings were reported, and 2
// on usage or load errors. Findings are suppressed one line at a time
// with `//lint:ignore <analyzer> <reason>` on, or directly above, the
// offending line. By default test files are not linted — tests are
// free to use fixed expectations — but -tests folds _test.go files
// (in-package and external) into the run, which CI uses to keep
// wall-clock time and map iteration order out of test expectations.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"vmp/internal/lint"
	"vmp/internal/simclock"
)

func main() {
	os.Exit(run())
}

func run() int {
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	sarifOut := flag.Bool("sarif", false, "emit findings as SARIF 2.1.0")
	jsonFile := flag.String("json-out", "", "also write the JSON report to `file`")
	sarifFile := flag.String("sarif-out", "", "also write the SARIF report to `file`")
	useCache := flag.Bool("cache", false, "reuse per-package results keyed by content hash (see -cache-dir)")
	cacheDir := flag.String("cache-dir", "", "cache directory (default <module root>/.vmplint-cache)")
	stats := flag.Bool("stats", false, "print per-analyzer finding counts and per-package wall time to stderr")
	withTests := flag.Bool("tests", false, "lint _test.go files too (in-package and external test packages)")
	only := flag.String("only", "", "comma-separated list of analyzers to run, e.g. nondeterminism,maporder (overrides per-analyzer flags)")
	enabled := make(map[string]*bool)
	for _, a := range lint.Analyzers() {
		enabled[a.Name] = flag.Bool(a.Name, true, "enable the "+a.Name+" analyzer ("+a.Doc+")")
	}
	flag.Parse()
	if *jsonOut && *sarifOut {
		fmt.Fprintln(os.Stderr, "vmplint: choose one of -json or -sarif")
		return 2
	}

	var analyzers []*lint.Analyzer
	if *only != "" {
		byName := make(map[string]*lint.Analyzer)
		for _, a := range lint.Analyzers() {
			byName[a.Name] = a
		}
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "vmplint: unknown analyzer %q in -only\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	} else {
		for _, a := range lint.Analyzers() {
			if *enabled[a.Name] {
				analyzers = append(analyzers, a)
			}
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "vmplint:", err)
		return 2
	}
	dirs, err := expandPatterns(root, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vmplint:", err)
		return 2
	}

	opts := lint.TreeOptions{
		Analyzers: analyzers,
		Tests:     *withTests,
		Clock:     simclock.Wall(),
	}
	if *useCache {
		opts.CacheDir = *cacheDir
		if opts.CacheDir == "" {
			opts.CacheDir = filepath.Join(root, ".vmplint-cache")
		}
	}
	diags, runStats, err := lint.RunTree(root, dirs, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vmplint:", err)
		return 2
	}
	for i := range diags {
		if rel, err := filepath.Rel(root, diags[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].File = rel
		}
	}

	// Render every requested format from the same findings slice: the
	// bytes written to -json-out/-sarif-out are exactly the bytes the
	// matching stdout mode would print (plus the trailing newline), so
	// `vmplint -json ./... | cmp - lint_report.json` is a valid
	// cache-poisoning guard.
	jsonBlob, err := lint.JSON(diags)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vmplint:", err)
		return 2
	}
	sarifBlob, err := lint.SARIF(diags, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vmplint:", err)
		return 2
	}
	if *jsonFile != "" {
		if err := os.WriteFile(*jsonFile, append(jsonBlob, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "vmplint:", err)
			return 2
		}
	}
	if *sarifFile != "" {
		if err := os.WriteFile(*sarifFile, append(sarifBlob, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "vmplint:", err)
			return 2
		}
	}

	switch {
	case *sarifOut:
		fmt.Println(string(sarifBlob))
	case *jsonOut:
		fmt.Println(string(jsonBlob))
	default:
		for _, d := range diags {
			fmt.Println(d)
		}
		if len(diags) > 0 {
			fmt.Fprintf(os.Stderr, "vmplint: %d finding(s)\n", len(diags))
		}
	}
	if *stats {
		printStats(runStats)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// printStats renders the run report to stderr: per-analyzer finding
// counts, then per-package wall time with cache disposition, slowest
// first.
func printStats(s *lint.RunStats) {
	fmt.Fprintf(os.Stderr, "vmplint: %d package(s): %d analyzed, %d from cache, %.0fms total\n",
		len(s.Packages), s.Analyzed, s.Cached, s.TotalMillis)
	names := make([]string, 0, len(s.Findings))
	for name := range s.Findings {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(os.Stderr, "  %-20s %d finding(s)\n", name, s.Findings[name])
	}
	pkgs := append([]lint.PackageStat(nil), s.Packages...)
	sort.SliceStable(pkgs, func(i, j int) bool { return pkgs[i].Millis > pkgs[j].Millis })
	for _, p := range pkgs {
		disposition := "analyzed"
		if p.Cached {
			disposition = "cached"
		}
		fmt.Fprintf(os.Stderr, "  %8.1fms  %-8s %s\n", p.Millis, disposition, p.Path)
	}
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above working directory")
		}
		dir = parent
	}
}

// expandPatterns resolves package patterns to directories. A pattern
// ending in /... walks the subtree; anything else names one package
// directory. testdata, hidden, and VCS directories are skipped.
func expandPatterns(root string, patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		base, recursive := strings.CutSuffix(pat, "/...")
		if base == "." || base == "" {
			base = root
		}
		if !recursive {
			add(base)
			continue
		}
		err := filepath.Walk(base, func(path string, info os.FileInfo, err error) error {
			if err != nil {
				return err
			}
			if !info.IsDir() {
				return nil
			}
			name := info.Name()
			if path != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return dirs, nil
}
