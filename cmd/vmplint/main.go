// Command vmplint runs the project's invariant analyzers (package
// internal/lint) over one or more packages: nondeterminism, maporder,
// frozenwrite, lockdiscipline, errcheck, atomicdiscipline,
// goroutinelifecycle, chandiscipline, ctxflow, bufalias, hotalloc, and
// httpdiscipline — the machine-checked contracts behind byte-identical
// figure rendering, the race-free serving plane, and the zero-copy
// wire path.
//
// Usage:
//
//	vmplint ./...                 # whole module
//	vmplint ./internal/analytics  # one package
//	vmplint -json ./...           # machine-readable findings
//	vmplint -sarif ./...          # SARIF 2.1.0 for code-scanning UIs
//	vmplint -maporder=false ./... # disable one analyzer
//	vmplint -only nondeterminism,maporder -tests ./...
//
// Packages load serially (the loader shares a type-checker cache) and
// are then analyzed in parallel across GOMAXPROCS workers; findings
// come out path-sorted, so the output is deterministic regardless of
// scheduling.
//
// Exit status is 0 when clean, 1 when findings were reported, and 2
// on usage or load errors. Findings are suppressed one line at a time
// with `//lint:ignore <analyzer> <reason>` on, or directly above, the
// offending line. By default test files are not linted — tests are
// free to use fixed expectations — but -tests folds _test.go files
// (in-package and external) into the run, which CI uses to keep
// wall-clock time and map iteration order out of test expectations.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"vmp/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	sarifOut := flag.Bool("sarif", false, "emit findings as SARIF 2.1.0")
	withTests := flag.Bool("tests", false, "lint _test.go files too (in-package and external test packages)")
	only := flag.String("only", "", "comma-separated list of analyzers to run, e.g. nondeterminism,maporder (overrides per-analyzer flags)")
	enabled := make(map[string]*bool)
	for _, a := range lint.Analyzers() {
		enabled[a.Name] = flag.Bool(a.Name, true, "enable the "+a.Name+" analyzer ("+a.Doc+")")
	}
	flag.Parse()
	if *jsonOut && *sarifOut {
		fmt.Fprintln(os.Stderr, "vmplint: choose one of -json or -sarif")
		return 2
	}

	var analyzers []*lint.Analyzer
	if *only != "" {
		byName := make(map[string]*lint.Analyzer)
		for _, a := range lint.Analyzers() {
			byName[a.Name] = a
		}
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "vmplint: unknown analyzer %q in -only\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	} else {
		for _, a := range lint.Analyzers() {
			if *enabled[a.Name] {
				analyzers = append(analyzers, a)
			}
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "vmplint:", err)
		return 2
	}
	dirs, err := expandPatterns(root, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vmplint:", err)
		return 2
	}

	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vmplint:", err)
		return 2
	}
	// Load everything first — the loader is single-threaded — then fan
	// the analysis out across GOMAXPROCS workers; RunPackages sorts the
	// merged findings by path, so output order is deterministic.
	var pkgs []*lint.Package
	for _, dir := range dirs {
		if *withTests {
			var loaded []*lint.Package
			loaded, err = loader.LoadDirTests(dir)
			pkgs = append(pkgs, loaded...)
		} else {
			var pkg *lint.Package
			pkg, err = loader.LoadDir(dir)
			if pkg != nil {
				pkgs = append(pkgs, pkg)
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "vmplint:", err)
			return 2
		}
	}
	diags := lint.RunPackages(pkgs, analyzers)
	for i := range diags {
		if rel, err := filepath.Rel(root, diags[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].File = rel
		}
	}

	switch {
	case *sarifOut:
		out, err := lint.SARIF(diags, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vmplint:", err)
			return 2
		}
		fmt.Println(string(out))
	case *jsonOut:
		out, err := lint.JSON(diags)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vmplint:", err)
			return 2
		}
		fmt.Println(string(out))
	default:
		for _, d := range diags {
			fmt.Println(d)
		}
		if len(diags) > 0 {
			fmt.Fprintf(os.Stderr, "vmplint: %d finding(s)\n", len(diags))
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above working directory")
		}
		dir = parent
	}
}

// expandPatterns resolves package patterns to directories. A pattern
// ending in /... walks the subtree; anything else names one package
// directory. testdata, hidden, and VCS directories are skipped.
func expandPatterns(root string, patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		base, recursive := strings.CutSuffix(pat, "/...")
		if base == "." || base == "" {
			base = root
		}
		if !recursive {
			add(base)
			continue
		}
		err := filepath.Walk(base, func(path string, info os.FileInfo, err error) error {
			if err != nil {
				return err
			}
			if !info.IsDir() {
				return nil
			}
			name := info.Name()
			if path != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return dirs, nil
}
