// Command vmpsim plays adaptive-streaming sessions through the full
// delivery path — manifest generation and parsing, CDN edge caches,
// stochastic network paths, ABR — and prints the measured QoE
// distribution. It is the interactive face of the machinery behind
// Figs 15 and 16.
//
// Usage:
//
//	vmpsim -publisher O  -isp ISP-X -cdn A -sessions 200
//	vmpsim -publisher S7 -isp ISP-Y -cdn B -conn 4G -abr buffer
package main

import (
	"flag"
	"fmt"
	"os"

	"vmp/internal/cdnsim"
	"vmp/internal/dist"
	"vmp/internal/manifest"
	"vmp/internal/netmodel"
	"vmp/internal/player"
	"vmp/internal/stats"
	"vmp/internal/syndication"
)

func main() {
	var (
		pub      = flag.String("publisher", "O", "ladder to play: O (owner) or S1..S10")
		ispName  = flag.String("isp", "ISP-X", "client ISP (ISP-X, ISP-Y, ISP-Z, ISP-W)")
		cdnName  = flag.String("cdn", "A", "serving CDN (A-E or R05..R35)")
		connName = flag.String("conn", "WiFi", "connection type: WiFi, 4G, Wired")
		abrName  = flag.String("abr", "buffer", "ABR algorithm: buffer, rate, bola, fixed, oboe")
		sessions = flag.Int("sessions", 100, "number of playback sessions")
		watch    = flag.Float64("watch", 1200, "intended watch time per session (seconds)")
		seed     = flag.Uint64("seed", 1, "randomness seed")
	)
	flag.Parse()

	cat := syndication.StarCatalogue()
	ladder := cat.Owner
	if *pub != "O" {
		var ok bool
		ladder, ok = cat.SyndicatorByID(*pub)
		if !ok {
			fatal(fmt.Errorf("unknown publisher %q (want O or S1..S10)", *pub))
		}
	}
	isp, ok := netmodel.ISPByName(*ispName)
	if !ok {
		fatal(fmt.Errorf("unknown ISP %q", *ispName))
	}
	var conn netmodel.ConnType
	switch *connName {
	case "WiFi":
		conn = netmodel.WiFi
	case "4G":
		conn = netmodel.Cellular
	case "Wired":
		conn = netmodel.Wired
	default:
		fatal(fmt.Errorf("unknown connection type %q", *connName))
	}
	var oboeTable *player.OboeTable
	if *abrName == "oboe" {
		var err error
		oboeTable, err = player.BuildOboeTable(ladder.Ladder, 4, dist.NewSource(*seed))
		if err != nil {
			fatal(err)
		}
	} else if _, err := player.ByName(*abrName); err != nil {
		fatal(err)
	}
	newABR := func() player.ABR {
		if oboeTable != nil {
			return &player.AutoTuned{Table: oboeTable}
		}
		abr, _ := player.ByName(*abrName)
		return abr
	}
	cdns := cdnsim.NewRegistry(dist.NewSource(1))
	cdn, ok := cdns.ByName(*cdnName)
	if !ok {
		fatal(fmt.Errorf("unknown CDN %q", *cdnName))
	}

	spec := &manifest.Spec{
		VideoID:     ladder.ID + "-demo",
		DurationSec: 2 * *watch,
		ChunkSec:    4,
		AudioKbps:   96,
		Ladder:      ladder.Ladder,
	}
	base := fmt.Sprintf("http://cdn-%s.example.net/%s", cdn.Name, ladder.ID)
	text, err := manifest.Generate(manifest.HLS, spec, base)
	if err != nil {
		fatal(err)
	}
	m, err := manifest.Parse(manifest.ManifestURL(manifest.HLS, base, spec.VideoID), text)
	if err != nil {
		fatal(err)
	}

	profile := netmodel.PathProfile(isp, conn, cdn.Quality(isp.Name))
	root := dist.NewSource(*seed)
	var bitrates, rebufs, startups []float64
	for i := 0; i < *sessions; i++ {
		res, err := player.Play(player.Config{
			Manifest: m,
			ABR:      newABR(),
			Trace:    profile.NewTrace(root.Splitf("session", i)),
			CDN:      cdn,
			ISP:      isp.Name,
			WatchSec: *watch,
		})
		if err != nil {
			fatal(err)
		}
		bitrates = append(bitrates, res.AvgBitrateKbps)
		rebufs = append(rebufs, 100*res.RebufferRatio())
		startups = append(startups, res.StartupSec)
	}

	fmt.Printf("publisher %s on %s via CDN %s over %s (%d sessions, %s ABR)\n",
		ladder.ID, isp.Name, cdn.Name, conn, *sessions, *abrName)
	fmt.Printf("  ladder: %d renditions [%d..%d Kbps]\n",
		len(ladder.Ladder), ladder.Ladder.Min(), ladder.Ladder.Max())
	printDist("avg bitrate (Kbps)", bitrates)
	printDist("rebuffering (%)   ", rebufs)
	printDist("startup (s)       ", startups)
	edge := cdn.Edge(isp.Name)
	fmt.Printf("  edge cache hit ratio: %.1f%%\n", 100*edge.HitRatio())
}

func printDist(name string, xs []float64) {
	e := stats.NewECDF(xs)
	fmt.Printf("  %s p25=%.1f p50=%.1f p75=%.1f p90=%.1f\n",
		name, e.MustQuantile(0.25), e.MustQuantile(0.5), e.MustQuantile(0.75), e.MustQuantile(0.9))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vmpsim:", err)
	os.Exit(1)
}
