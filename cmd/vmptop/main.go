// Command vmptop is the operator's live view of a vmpd (or
// vmpcollector) daemon: it polls the /v1/series flight recorder and
// renders a compact terminal dashboard — ingest rate, shard queue
// depths, epoch cadence, WAL backlog, latency quantiles, and Go
// runtime health — refreshing in place on every poll.
//
// Usage:
//
//	vmptop -addr http://127.0.0.1:8474
//	vmptop -addr http://127.0.0.1:8474 -every 2s
//	vmptop -addr http://127.0.0.1:8474 -once
//
// All numbers come from the daemon's own self-measurement plane: the
// sampler goroutine inside the daemon records registry snapshots into
// a ring, /v1/series serves the retained window with per-counter
// rates, and vmptop only formats the latest point — it takes no
// measurements of its own, so what it shows is exactly what /metrics
// exports.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"vmp/internal/obs"
	"vmp/internal/simclock"
)

func main() {
	var (
		addr  = flag.String("addr", "http://127.0.0.1:8474", "daemon base URL")
		every = flag.Duration("every", time.Second, "poll cadence")
		once  = flag.Bool("once", false, "render one frame and exit")
	)
	flag.Parse()
	log.SetFlags(0)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	client := &http.Client{Timeout: 10 * time.Second}
	url := strings.TrimRight(*addr, "/") + "/v1/series"
	for {
		frame, err := renderOnce(ctx, client, url)
		if err != nil {
			if *once {
				log.Fatal(fmt.Errorf("vmptop: %w", err))
			}
			frame = fmt.Sprintf("vmptop: %v (retrying)\n", err)
		}
		if *once {
			fmt.Print(frame)
			return
		}
		// Clear and home between frames so the dashboard redraws in
		// place instead of scrolling.
		fmt.Print("\x1b[2J\x1b[H" + frame)
		if err := simclock.Wait(ctx, *every); err != nil {
			fmt.Println()
			return
		}
	}
}

// renderOnce fetches the series and formats the latest point.
func renderOnce(ctx context.Context, client *http.Client, url string) (string, error) {
	snap, err := fetchSeries(ctx, client, url)
	if err != nil {
		return "", err
	}
	if len(snap.Points) == 0 {
		return "vmptop: no samples yet (is the daemon's sampler running?)\n", nil
	}
	return render(url, snap), nil
}

// fetchSeries GETs and decodes one /v1/series snapshot.
func fetchSeries(ctx context.Context, client *http.Client, url string) (*obs.SeriesSnapshot, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("%s returned %s", url, resp.Status)
	}
	var snap obs.SeriesSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, fmt.Errorf("decoding %s: %w", url, err)
	}
	return &snap, nil
}

// render formats the latest point of a series as one dashboard frame.
func render(url string, snap *obs.SeriesSnapshot) string {
	p := snap.Points[len(snap.Points)-1]
	var b strings.Builder
	fmt.Fprintf(&b, "vmptop  %s  sample %d/%d  %s\n\n",
		url, p.Seq, snap.SamplesTotal, p.Time)

	fmt.Fprintf(&b, "ingest    %s rec/s   acked %d   backpressured %d   rejected %d\n",
		fmtRate(p.Rates["live_ingest_records_total"]+p.Rates["collector_ingested_total"]),
		p.Counters["live_ingest_records_total"]+p.Counters["collector_ingested_total"],
		p.Counters["live_ingest_backpressured_total"],
		p.Counters["live_ingest_rejected_total"]+p.Counters["collector_rejected_total"])

	if _, ok := p.Gauges["live_queue_depth_batches"]; ok {
		name, depth := maxShardDepth(p.Gauges)
		fmt.Fprintf(&b, "queues    %d batches queued", p.Gauges["live_queue_depth_batches"])
		if name != "" {
			fmt.Fprintf(&b, "   deepest shard %s (%d)", name, depth)
		}
		b.WriteByte('\n')
		fmt.Fprintf(&b, "epochs    epoch %d   %s cuts/s   generation %d records, age %s\n",
			p.Gauges["live_generation_epoch"],
			fmtRate(p.Rates["live_snapshots_total"]),
			p.Gauges["live_generation_records"],
			(time.Duration(p.Gauges["live_generation_age_ms"]) * time.Millisecond).String())
	}
	if segs, ok := p.Gauges["wal_backlog_segments"]; ok {
		fmt.Fprintf(&b, "wal       %d segments, %s backlog   %s fsync/s\n",
			segs, fmtBytes(p.Gauges["wal_backlog_bytes"]), fmtRate(p.Rates["wal_fsync_total"]))
	}
	if n, ok := p.Gauges["collector_store_records"]; ok {
		fmt.Fprintf(&b, "store     %d records\n", n)
	}

	b.WriteByte('\n')
	for _, row := range []struct{ label, hist string }{
		{"ack jsonl ", "live_ingest_ack_jsonl_seconds"},
		{"ack binary", "live_ingest_ack_binary_seconds"},
		{"ack jsonl ", "collector_ingest_ack_jsonl_seconds"},
		{"ack binary", "collector_ingest_ack_binary_seconds"},
		{"wal fsync ", "wal_fsync_seconds"},
		{"epoch cut ", "live_snapshot_seconds"},
		{"q.share   ", "live_query_share_seconds"},
		{"q.top     ", "live_query_top-publishers_seconds"},
		{"q.window  ", "live_query_window_seconds"},
	} {
		h, ok := p.Hists[row.hist]
		if !ok || h.Count == 0 {
			continue
		}
		fmt.Fprintf(&b, "%s  n %-8d p50 %-9s p90 %-9s p99 %-9s p99.9 %s\n",
			row.label, h.Count,
			fmtSec(h.P50), fmtSec(h.P90), fmtSec(h.P99), fmtSec(h.P999))
	}

	fmt.Fprintf(&b, "\nruntime   heap %s (%d objects)   goroutines %d   gc %d runs, %s paused\n",
		fmtBytes(p.Gauges["go_heap_alloc_bytes"]), p.Gauges["go_heap_objects"],
		p.Gauges["go_goroutines"], p.Gauges["go_gc_runs"],
		(time.Duration(p.Gauges["go_gc_pause_total_ns"]) * time.Nanosecond).String())
	return b.String()
}

// maxShardDepth finds the deepest per-shard queue gauge; ties break
// toward the lexicographically smallest shard name so the readout is
// stable across frames.
func maxShardDepth(gauges map[string]int64) (string, int64) {
	names := make([]string, 0, len(gauges))
	for name := range gauges {
		if strings.HasPrefix(name, "live_shard_") && strings.HasSuffix(name, "_queue_depth_batches") {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	best, depth := "", int64(-1)
	for _, name := range names {
		if gauges[name] > depth {
			best, depth = name, gauges[name]
		}
	}
	if best == "" {
		return "", 0
	}
	return strings.TrimSuffix(strings.TrimPrefix(best, "live_shard_"), "_queue_depth_batches"), depth
}

// fmtRate renders a per-second rate with enough precision for both
// idle daemons (0.2 cuts/s) and saturated ones (500k rec/s).
func fmtRate(v float64) string {
	switch {
	case v >= 1000000:
		return fmt.Sprintf("%.1fM", v/1000000)
	case v >= 1000:
		return fmt.Sprintf("%.1fk", v/1000)
	case v >= 10:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// fmtBytes renders a byte count in binary units.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// fmtSec renders a latency quantile (in seconds) at a readable scale.
func fmtSec(v float64) string {
	d := time.Duration(v * float64(time.Second))
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	case d >= time.Microsecond:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	default:
		return d.String()
	}
}
