// Command vmpstudy regenerates the paper's tables and figures from the
// synthetic ecosystem.
//
// Usage:
//
//	vmpstudy -figure 2b            # one figure
//	vmpstudy -figure all           # the whole study
//	vmpstudy -figure 18 -o fig18.txt
//
// The -stride flag thins the bi-weekly snapshot schedule for quick
// runs; -seed changes the synthetic population. With -figure all the
// figures are computed on a worker pool (-workers); output is
// byte-identical to a serial run. -cpuprofile and -memprofile write
// pprof profiles for performance work.
//
// The offline answer modes mirror the vmpd query API over a JSONL
// dataset: -share and -top compute the same responses, through the
// same code, that a vmpd generation serves — byte-identical when both
// saw the same records:
//
//	vmpstudy -input views.jsonl -share protocol
//	vmpstudy -input views.jsonl -top 10
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	rtrace "runtime/trace"

	"vmp"
	"vmp/internal/live"
	"vmp/internal/obs"
	"vmp/internal/simclock"
	"vmp/internal/telemetry"
)

// errScorecardFailed signals a non-zero exit without a message (the
// failures are already in the rendered scorecard), letting run()'s
// defers — profile writers, output files — complete first.
var errScorecardFailed = errors.New("scorecard failures")

func main() {
	if err := run(); err != nil {
		if !errors.Is(err, errScorecardFailed) {
			fmt.Fprintln(os.Stderr, "vmpstudy:", err)
		}
		os.Exit(1)
	}
}

func run() (retErr error) {
	var (
		figure     = flag.String("figure", "all", "table/figure ID to regenerate, or 'all'")
		seed       = flag.Uint64("seed", 0, "population seed (0 = default)")
		stride     = flag.Int("stride", 1, "use every k-th snapshot (1 = full study)")
		sessions   = flag.Int("sessions", 150, "playback sessions per publisher for Figs 15/16")
		out        = flag.String("o", "", "output file (default stdout)")
		format     = flag.String("format", "text", "output format: text or csv")
		list       = flag.Bool("list", false, "list figure IDs and exit")
		scorecard  = flag.Bool("scorecard", false, "render the paper-vs-measured scorecard and exit non-zero on failures")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "worker pool size for -figure all (1 = serial)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		traceFile  = flag.String("trace", "", "write a runtime/trace execution trace to this file")
		stats      = flag.Bool("stats", false, "print a per-figure timing table to stderr after rendering")
		input      = flag.String("input", "", "JSONL dataset to analyze instead of generating one")
		shareDim   = flag.String("share", "", "offline answer mode: share-of-traffic for this dimension (protocol, platform, cdn)")
		shareBy    = flag.String("share-by", "", "share weighting: viewhours (default) or views")
		topN       = flag.Int("top", 0, "offline answer mode: top-N publishers by view-hours")
	)
	flag.Parse()

	if *list {
		for _, id := range vmp.Figures {
			fmt.Println(id)
		}
		return nil
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			_ = f.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "vmpstudy: cpuprofile:", err)
			}
		}()
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return err
		}
		defer func() {
			runtime.GC() // settle the heap so the profile reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "vmpstudy: memprofile:", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "vmpstudy: memprofile:", err)
			}
		}()
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			return err
		}
		if err := rtrace.Start(f); err != nil {
			_ = f.Close()
			return err
		}
		defer func() {
			rtrace.Stop()
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "vmpstudy: trace:", err)
			}
		}()
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		// A failed close loses buffered figure data; surface it as the
		// run's error unless an earlier one already claimed the exit.
		defer func() {
			if err := f.Close(); err != nil && retErr == nil {
				retErr = err
			}
		}()
		w = f
	}

	var store *telemetry.Store
	if *input != "" {
		f, err := os.Open(*input)
		if err != nil {
			return err
		}
		store, err = vmp.ReadDataset(bufio.NewReaderSize(f, 1<<20))
		_ = f.Close() // read side: a close failure loses nothing
		if err != nil {
			return fmt.Errorf("reading %s: %w", *input, err)
		}
	}

	if *shareDim != "" || *topN > 0 {
		if store == nil {
			store = vmp.New(vmp.Config{Seed: *seed, SnapshotStride: *stride}).Store()
		}
		return answer(w, store, *shareDim, *shareBy, *topN)
	}

	cfg := vmp.Config{Seed: *seed, SnapshotStride: *stride, QoESessions: *sessions}
	var study *vmp.Study
	if store != nil {
		study = vmp.NewFromStore(cfg, store)
	} else {
		study = vmp.New(cfg)
	}
	if *stats {
		tr := obs.NewTracer(simclock.Wall(), 4096)
		study.SetTracer(tr)
		defer printFigureStats(os.Stderr, tr)
	}
	if *scorecard {
		failures, err := study.RenderScorecard(w)
		if err != nil {
			return err
		}
		if failures > 0 {
			return errScorecardFailed
		}
		return nil
	}
	switch *format {
	case "text":
		if *figure == "all" {
			if *workers > 1 {
				return study.RenderAllParallel(w, *workers)
			}
			return study.RenderAll(w)
		}
		return study.Render(w, *figure)
	case "csv":
		if *figure == "all" {
			return fmt.Errorf("-format csv requires a single -figure")
		}
		return study.RenderCSV(w, *figure)
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
}

// printFigureStats renders the per-figure timing table from the
// tracer's figure.<id> stage aggregates, in presentation order. With
// -figure all each figure has exactly one span; repeated renders (or a
// parallel run that recomputed nothing) show up in the count column.
func printFigureStats(w io.Writer, tr *obs.Tracer) {
	byName := map[string]obs.StageStat{}
	for _, st := range tr.StageStats() {
		byName[st.Name] = st
	}
	var totalUS int64
	fmt.Fprintln(w, "per-figure timing:")
	fmt.Fprintf(w, "  %-16s %6s %12s %12s\n", "figure", "count", "total", "max")
	for _, id := range vmp.Figures {
		st, ok := byName["figure."+id]
		if !ok {
			continue
		}
		totalUS += st.SumUS
		fmt.Fprintf(w, "  %-16s %6d %10.3fms %10.3fms\n",
			id, st.Count, float64(st.SumUS)/1e3, float64(st.MaxUS)/1e3)
	}
	fmt.Fprintf(w, "  %-16s %6s %10.3fms\n", "total", "", float64(totalUS)/1e3)
}

// answer computes vmpd-equivalent query responses offline. The records
// go through the same canonical sort, dataset build, computation, and
// serialization as an Engine snapshot, so a vmpd that ingested the
// same dataset answers byte-identically.
func answer(w io.Writer, store *telemetry.Store, shareDim, shareBy string, topN int) error {
	recs := store.All() // a copy; sorting it cannot disturb the store
	telemetry.CanonicalSort(recs)
	ds := telemetry.NewDataset(recs)
	if shareDim != "" {
		resp, err := live.ShareOver(ds, shareDim, shareBy)
		if err != nil {
			return err
		}
		if err := live.WriteJSON(w, resp); err != nil {
			return err
		}
	}
	if topN > 0 {
		if err := live.WriteJSON(w, live.TopPublishersOver(ds, topN)); err != nil {
			return err
		}
	}
	return nil
}
