// Command vmpstudy regenerates the paper's tables and figures from the
// synthetic ecosystem.
//
// Usage:
//
//	vmpstudy -figure 2b            # one figure
//	vmpstudy -figure all           # the whole study
//	vmpstudy -figure 18 -o fig18.txt
//
// The -stride flag thins the bi-weekly snapshot schedule for quick
// runs; -seed changes the synthetic population.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"vmp"
)

func main() {
	var (
		figure    = flag.String("figure", "all", "table/figure ID to regenerate, or 'all'")
		seed      = flag.Uint64("seed", 0, "population seed (0 = default)")
		stride    = flag.Int("stride", 1, "use every k-th snapshot (1 = full study)")
		sessions  = flag.Int("sessions", 150, "playback sessions per publisher for Figs 15/16")
		out       = flag.String("o", "", "output file (default stdout)")
		format    = flag.String("format", "text", "output format: text or csv")
		list      = flag.Bool("list", false, "list figure IDs and exit")
		scorecard = flag.Bool("scorecard", false, "render the paper-vs-measured scorecard and exit non-zero on failures")
	)
	flag.Parse()

	if *list {
		for _, id := range vmp.Figures {
			fmt.Println(id)
		}
		return
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}

	study := vmp.New(vmp.Config{Seed: *seed, SnapshotStride: *stride, QoESessions: *sessions})
	if *scorecard {
		failures, err := study.RenderScorecard(w)
		if err != nil {
			fatal(err)
		}
		if failures > 0 {
			os.Exit(1)
		}
		return
	}
	var err error
	switch *format {
	case "text":
		if *figure == "all" {
			err = study.RenderAll(w)
		} else {
			err = study.Render(w, *figure)
		}
	case "csv":
		if *figure == "all" {
			err = fmt.Errorf("-format csv requires a single -figure")
		} else {
			err = study.RenderCSV(w, *figure)
		}
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vmpstudy:", err)
	os.Exit(1)
}
