// Command vmpstudy regenerates the paper's tables and figures from the
// synthetic ecosystem.
//
// Usage:
//
//	vmpstudy -figure 2b            # one figure
//	vmpstudy -figure all           # the whole study
//	vmpstudy -figure 18 -o fig18.txt
//
// The -stride flag thins the bi-weekly snapshot schedule for quick
// runs; -seed changes the synthetic population. With -figure all the
// figures are computed on a worker pool (-workers); output is
// byte-identical to a serial run. -cpuprofile and -memprofile write
// pprof profiles for performance work.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"vmp"
)

// errScorecardFailed signals a non-zero exit without a message (the
// failures are already in the rendered scorecard), letting run()'s
// defers — profile writers, output files — complete first.
var errScorecardFailed = errors.New("scorecard failures")

func main() {
	if err := run(); err != nil {
		if !errors.Is(err, errScorecardFailed) {
			fmt.Fprintln(os.Stderr, "vmpstudy:", err)
		}
		os.Exit(1)
	}
}

func run() (retErr error) {
	var (
		figure     = flag.String("figure", "all", "table/figure ID to regenerate, or 'all'")
		seed       = flag.Uint64("seed", 0, "population seed (0 = default)")
		stride     = flag.Int("stride", 1, "use every k-th snapshot (1 = full study)")
		sessions   = flag.Int("sessions", 150, "playback sessions per publisher for Figs 15/16")
		out        = flag.String("o", "", "output file (default stdout)")
		format     = flag.String("format", "text", "output format: text or csv")
		list       = flag.Bool("list", false, "list figure IDs and exit")
		scorecard  = flag.Bool("scorecard", false, "render the paper-vs-measured scorecard and exit non-zero on failures")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "worker pool size for -figure all (1 = serial)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *list {
		for _, id := range vmp.Figures {
			fmt.Println(id)
		}
		return nil
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			_ = f.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "vmpstudy: cpuprofile:", err)
			}
		}()
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return err
		}
		defer func() {
			runtime.GC() // settle the heap so the profile reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "vmpstudy: memprofile:", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "vmpstudy: memprofile:", err)
			}
		}()
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		// A failed close loses buffered figure data; surface it as the
		// run's error unless an earlier one already claimed the exit.
		defer func() {
			if err := f.Close(); err != nil && retErr == nil {
				retErr = err
			}
		}()
		w = f
	}

	study := vmp.New(vmp.Config{Seed: *seed, SnapshotStride: *stride, QoESessions: *sessions})
	if *scorecard {
		failures, err := study.RenderScorecard(w)
		if err != nil {
			return err
		}
		if failures > 0 {
			return errScorecardFailed
		}
		return nil
	}
	switch *format {
	case "text":
		if *figure == "all" {
			if *workers > 1 {
				return study.RenderAllParallel(w, *workers)
			}
			return study.RenderAll(w)
		}
		return study.Render(w, *figure)
	case "csv":
		if *figure == "all" {
			return fmt.Errorf("-format csv requires a single -figure")
		}
		return study.RenderCSV(w, *figure)
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
}
