// Command vmptriage runs failure triaging over a view-record dataset
// (JSON lines, as produced by vmpgen or dumped by the collector),
// localizing the management-plane combinations whose failure rates are
// anomalous.
//
// Usage:
//
//	vmpgen -stride 8 -o views.jsonl
//	vmptriage -in views.jsonl
//	vmptriage -in views.jsonl -inject 'cdn=E:0.4' -inject 'cdn=A,proto=DASH:0.5'
//
// Without -inject, the dataset's own Failed flags are triaged; with
// -inject, synthetic faults are stamped on first (for demos and for
// validating the triager).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"vmp/internal/dist"
	"vmp/internal/telemetry"
	"vmp/internal/triage"
)

type injectList []triage.Fault

func (l *injectList) String() string { return fmt.Sprint(*l) }

// Set parses "cdn=E:0.4" or "cdn=A,proto=DASH,device=Roku:0.5".
func (l *injectList) Set(s string) error {
	spec, probStr, ok := strings.Cut(s, ":")
	if !ok {
		return fmt.Errorf("want <combination>:<probability>, got %q", s)
	}
	prob, err := strconv.ParseFloat(probStr, 64)
	if err != nil {
		return fmt.Errorf("bad probability %q: %v", probStr, err)
	}
	var c triage.Combination
	for _, field := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(field, "=")
		if !ok {
			return fmt.Errorf("bad combination field %q", field)
		}
		switch k {
		case "cdn":
			c.CDN = v
		case "proto":
			c.Protocol = v
		case "device":
			c.Device = v
		default:
			return fmt.Errorf("unknown attribute %q (want cdn, proto, device)", k)
		}
	}
	*l = append(*l, triage.Fault{Match: c, FailProb: prob})
	return nil
}

func main() {
	var faults injectList
	var (
		in         = flag.String("in", "", "JSONL dataset to triage (required)")
		baseRate   = flag.Float64("base", 0.01, "base failure rate when injecting")
		seed       = flag.Uint64("seed", 1, "injection randomness seed")
		minSupport = flag.Int64("min-support", 50, "minimum views per combination")
		minLift    = flag.Float64("min-lift", 3, "failure-rate lift over complement")
	)
	flag.Var(&faults, "inject", "fault to inject, e.g. 'cdn=E:0.4' (repeatable)")
	flag.Parse()

	if *in == "" {
		fatal(fmt.Errorf("-in is required"))
	}
	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	defer func() { _ = f.Close() }() // read side: a close failure loses nothing
	recs, err := telemetry.DecodeJSONL(f)
	if err != nil {
		fatal(err)
	}
	if len(faults) > 0 {
		inj, err := triage.NewInjector(*baseRate, dist.NewSource(*seed), faults...)
		if err != nil {
			fatal(err)
		}
		failed := inj.Apply(recs)
		fmt.Printf("injected %d faults; %d/%d views failed\n", len(faults), failed, len(recs))
	}

	findings, triager, err := triage.Run(recs, triage.Config{
		MinSupport: *minSupport,
		MinLift:    *minLift,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("aggregated %d combinations over %d views (baseline failure rate %.2f%%)\n",
		triager.CombinationsTracked(), len(recs), 100*triager.BaselineRate())
	if len(findings) == 0 {
		fmt.Println("no anomalous combinations found")
		return
	}
	fmt.Println("root causes:")
	for _, fd := range findings {
		fmt.Printf("  %-48s rate %5.1f%%  lift %6.1fx  (%d/%d views)\n",
			fd.Combination, 100*fd.FailureRate, fd.LiftOverBaseline, fd.Failures, fd.Views)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vmptriage:", err)
	os.Exit(1)
}
