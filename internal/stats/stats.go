// Package stats implements the statistical machinery the paper's
// analyses rely on: empirical CDFs and quantiles (Figs 4, 8, 14, 15,
// 16), weighted and unweighted means (Figs 3c, 9c, 12c), and ordinary
// least-squares regression on log-log data with slope significance
// tests (Fig 13, which reports per-decade growth factors with p-values
// below 1e-9).
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrInsufficientData is returned when an estimator is given fewer
// points than it needs.
var ErrInsufficientData = errors.New("stats: insufficient data")

// Mean returns the arithmetic mean of xs, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// WeightedMean returns sum(w*x)/sum(w). It panics on length mismatch and
// returns 0 when the total weight is zero.
func WeightedMean(xs, ws []float64) float64 {
	if len(xs) != len(ws) {
		panic("stats: WeightedMean length mismatch")
	}
	var num, den float64
	for i, x := range xs {
		num += ws[i] * x
		den += ws[i]
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// Variance returns the population variance of xs, or 0 for fewer than
// two points.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// ECDF is an empirical cumulative distribution function over a sample.
type ECDF struct {
	sorted []float64
}

// NewECDF copies and sorts the sample. An empty sample yields an ECDF
// that evaluates to 0 everywhere and has no quantiles.
func NewECDF(sample []float64) *ECDF {
	s := append([]float64(nil), sample...)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// N returns the sample size.
func (e *ECDF) N() int { return len(e.sorted) }

// At returns P(X <= x).
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	// Index of first element > x.
	i := sort.SearchFloat64s(e.sorted, x)
	for i < len(e.sorted) && e.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(e.sorted))
}

// Quantile returns the q-quantile (q in [0,1]) using nearest-rank. It
// returns an error for an empty sample or q outside [0, 1].
func (e *ECDF) Quantile(q float64) (float64, error) {
	if len(e.sorted) == 0 {
		return 0, ErrInsufficientData
	}
	if q < 0 || q > 1 {
		return 0, errors.New("stats: quantile out of [0,1]")
	}
	if q == 0 {
		return e.sorted[0], nil
	}
	idx := int(math.Ceil(q*float64(len(e.sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(e.sorted) {
		idx = len(e.sorted) - 1
	}
	return e.sorted[idx], nil
}

// MustQuantile is Quantile for samples known to be non-empty; it panics
// on error, signalling programmer error at the call site.
func (e *ECDF) MustQuantile(q float64) float64 {
	v, err := e.Quantile(q)
	if err != nil {
		panic(err)
	}
	return v
}

// Points returns (x, P(X<=x)) pairs suitable for plotting the CDF, one
// per distinct sample value.
func (e *ECDF) Points() (xs, ps []float64) {
	n := len(e.sorted)
	for i := 0; i < n; {
		j := i
		for j < n && e.sorted[j] == e.sorted[i] {
			j++
		}
		xs = append(xs, e.sorted[i])
		ps = append(ps, float64(j)/float64(n))
		i = j
	}
	return xs, ps
}

// WeightedECDF is an empirical CDF over a weighted sample: each value
// carries a mass (e.g. the number of real views a sampled record
// represents).
type WeightedECDF struct {
	xs   []float64
	cum  []float64 // cumulative mass up to and including xs[i]
	mass float64
}

// NewWeightedECDF builds the weighted CDF; non-positive weights are
// dropped. It panics on length mismatch.
func NewWeightedECDF(values, weights []float64) *WeightedECDF {
	if len(values) != len(weights) {
		panic("stats: NewWeightedECDF length mismatch")
	}
	type vw struct{ v, w float64 }
	pairs := make([]vw, 0, len(values))
	for i, v := range values {
		if weights[i] > 0 {
			pairs = append(pairs, vw{v, weights[i]})
		}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].v < pairs[j].v })
	e := &WeightedECDF{}
	for _, p := range pairs {
		e.mass += p.w
		if n := len(e.xs); n > 0 && e.xs[n-1] == p.v {
			e.cum[n-1] = e.mass
			continue
		}
		e.xs = append(e.xs, p.v)
		e.cum = append(e.cum, e.mass)
	}
	return e
}

// Mass returns the total weight.
func (e *WeightedECDF) Mass() float64 { return e.mass }

// At returns P(X <= x) under the weighted measure.
func (e *WeightedECDF) At(x float64) float64 {
	if e.mass == 0 {
		return 0
	}
	i := sort.SearchFloat64s(e.xs, x)
	if i < len(e.xs) && e.xs[i] == x {
		i++
	}
	if i == 0 {
		return 0
	}
	return e.cum[i-1] / e.mass
}

// Quantile returns the smallest x with P(X <= x) >= q.
func (e *WeightedECDF) Quantile(q float64) (float64, error) {
	if e.mass == 0 {
		return 0, ErrInsufficientData
	}
	if q < 0 || q > 1 {
		return 0, errors.New("stats: quantile out of [0,1]")
	}
	target := q * e.mass
	i := sort.SearchFloat64s(e.cum, target)
	if i >= len(e.xs) {
		i = len(e.xs) - 1
	}
	return e.xs[i], nil
}

// Points returns the plottable (x, P(X<=x)) step points.
func (e *WeightedECDF) Points() (xs, ps []float64) {
	xs = append(xs, e.xs...)
	for _, c := range e.cum {
		ps = append(ps, c/e.mass)
	}
	return xs, ps
}

// Regression is the result of an ordinary least-squares fit y = a + b*x.
type Regression struct {
	Slope     float64 // b
	Intercept float64 // a
	R2        float64 // coefficient of determination
	StdErr    float64 // standard error of the slope
	TStat     float64 // slope / StdErr
	PValue    float64 // two-sided p-value for H0: slope = 0
	N         int     // number of points
}

// LinearFit fits y = a + b*x by OLS and computes the two-sided p-value
// of the slope against the null of zero slope using the exact Student-t
// distribution. It requires at least three points (for a meaningful
// residual degree of freedom).
func LinearFit(xs, ys []float64) (Regression, error) {
	if len(xs) != len(ys) {
		panic("stats: LinearFit length mismatch")
	}
	n := len(xs)
	if n < 3 {
		return Regression{}, ErrInsufficientData
	}
	mx, my := Mean(xs), Mean(ys)
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return Regression{}, errors.New("stats: degenerate x values")
	}
	b := sxy / sxx
	a := my - b*mx
	// Residual sum of squares.
	rss := 0.0
	for i := range xs {
		r := ys[i] - (a + b*xs[i])
		rss += r * r
	}
	r2 := 1.0
	if syy > 0 {
		r2 = 1 - rss/syy
	}
	df := float64(n - 2)
	se := math.Sqrt((rss / df) / sxx)
	reg := Regression{Slope: b, Intercept: a, R2: r2, StdErr: se, N: n}
	if se > 0 {
		reg.TStat = b / se
		reg.PValue = 2 * studentTSF(math.Abs(reg.TStat), df)
	} else {
		// Perfect fit: infinitely significant.
		reg.TStat = math.Inf(sign(b))
		reg.PValue = 0
	}
	return reg, nil
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}

// LogLogFit fits log10(y) = a + b*log10(x), dropping non-positive
// points (which have no logarithm and, in our analyses, correspond to
// publishers with no activity in the snapshot).
func LogLogFit(xs, ys []float64) (Regression, error) {
	var lx, ly []float64
	for i := range xs {
		if xs[i] > 0 && ys[i] > 0 {
			lx = append(lx, math.Log10(xs[i]))
			ly = append(ly, math.Log10(ys[i]))
		}
	}
	return LinearFit(lx, ly)
}

// PerDecadeFactor converts a log-log slope into the multiplicative
// growth of y when x grows by 10x — the form the paper reports ("a
// publisher with 10x as many view-hours will tend to maintain 1.8x as
// many versions...").
func PerDecadeFactor(slope float64) float64 {
	return math.Pow(10, slope)
}

// Pearson returns the Pearson correlation coefficient of the two
// samples, or an error for fewer than two points or zero variance.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		panic("stats: Pearson length mismatch")
	}
	if len(xs) < 2 {
		return 0, ErrInsufficientData
	}
	mx, my := Mean(xs), Mean(ys)
	var sxx, syy, sxy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		syy += dy * dy
		sxy += dx * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, errors.New("stats: zero variance")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Spearman returns the Spearman rank correlation of the two samples: a
// robustness check alongside the log-log OLS fits, insensitive to the
// heavy tails publisher view-hours exhibit. Ties receive their average
// rank.
func Spearman(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		panic("stats: Spearman length mismatch")
	}
	if len(xs) < 2 {
		return 0, ErrInsufficientData
	}
	return Pearson(ranks(xs), ranks(ys))
}

// ranks maps sample values to average ranks (1-based).
func ranks(xs []float64) []float64 {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	out := make([]float64, len(xs))
	for i := 0; i < len(idx); {
		j := i
		for j < len(idx) && xs[idx[j]] == xs[idx[i]] {
			j++
		}
		// Average rank for the tie run [i, j).
		avg := float64(i+j+1) / 2 // ranks are 1-based: (i+1 + j) / 2
		for k := i; k < j; k++ {
			out[idx[k]] = avg
		}
		i = j
	}
	return out
}

// studentTSF returns P(T > t) for Student's t with df degrees of
// freedom, via the regularized incomplete beta function.
func studentTSF(t, df float64) float64 {
	if t <= 0 {
		return 0.5
	}
	x := df / (df + t*t)
	return 0.5 * regIncBeta(df/2, 0.5, x)
}

// regIncBeta computes the regularized incomplete beta function
// I_x(a, b) using the continued-fraction expansion (Numerical Recipes
// style, reimplemented from the mathematical definition).
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b)
	front := math.Exp(lbeta + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction for the incomplete beta
// function by the modified Lentz method.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		tiny    = 1e-30
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		// Even step.
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		// Odd step.
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}
