package stats

import (
	"math"
	"testing"
	"testing/quick"

	"vmp/internal/dist"
)

func TestWeightedECDFBasics(t *testing.T) {
	e := NewWeightedECDF([]float64{1, 2, 3}, []float64{1, 3, 1})
	if e.Mass() != 5 {
		t.Fatalf("Mass = %v", e.Mass())
	}
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.2}, {2, 0.8}, {2.5, 0.8}, {3, 1}, {9, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if q, _ := e.Quantile(0.5); q != 2 {
		t.Errorf("Quantile(0.5) = %v, want 2 (the heavy value)", q)
	}
	if q, _ := e.Quantile(0.9); q != 3 {
		t.Errorf("Quantile(0.9) = %v, want 3", q)
	}
}

func TestWeightedECDFDuplicatesMerge(t *testing.T) {
	e := NewWeightedECDF([]float64{2, 2, 1}, []float64{1, 1, 2})
	xs, ps := e.Points()
	if len(xs) != 2 || xs[0] != 1 || xs[1] != 2 {
		t.Fatalf("Points xs = %v", xs)
	}
	if math.Abs(ps[0]-0.5) > 1e-12 || ps[1] != 1 {
		t.Fatalf("Points ps = %v", ps)
	}
}

func TestWeightedECDFDropsNonPositive(t *testing.T) {
	e := NewWeightedECDF([]float64{1, 2, 3}, []float64{1, 0, -4})
	if e.Mass() != 1 {
		t.Fatalf("Mass = %v, want 1 (zero/negative weights dropped)", e.Mass())
	}
}

func TestWeightedECDFErrors(t *testing.T) {
	empty := NewWeightedECDF(nil, nil)
	if empty.At(1) != 0 {
		t.Error("empty CDF should evaluate to 0")
	}
	if _, err := empty.Quantile(0.5); err == nil {
		t.Error("empty quantile should error")
	}
	e := NewWeightedECDF([]float64{1}, []float64{1})
	if _, err := e.Quantile(2); err == nil {
		t.Error("out-of-range q should error")
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch should panic")
		}
	}()
	NewWeightedECDF([]float64{1}, []float64{1, 2})
}

// Property: with unit weights the weighted CDF agrees with ECDF.
func TestWeightedMatchesUnweightedProperty(t *testing.T) {
	src := dist.NewSource(77)
	f := func(n uint8) bool {
		m := int(n%40) + 1
		vals := make([]float64, m)
		ones := make([]float64, m)
		for i := range vals {
			vals[i] = math.Round(src.Float64()*10) / 2 // coarse grid → ties
			ones[i] = 1
		}
		w := NewWeightedECDF(vals, ones)
		u := NewECDF(vals)
		for _, x := range []float64{-1, 0, 1, 2.5, 5, 11} {
			if math.Abs(w.At(x)-u.At(x)) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: quantiles are monotone in q.
func TestWeightedQuantileMonotoneProperty(t *testing.T) {
	src := dist.NewSource(88)
	f := func(n uint8) bool {
		m := int(n%30) + 2
		vals := make([]float64, m)
		ws := make([]float64, m)
		for i := range vals {
			vals[i] = src.Float64() * 100
			ws[i] = src.Float64()*10 + 0.1
		}
		e := NewWeightedECDF(vals, ws)
		prev := math.Inf(-1)
		for _, q := range []float64{0, 0.25, 0.5, 0.75, 1} {
			v, err := e.Quantile(q)
			if err != nil || v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
