package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"vmp/internal/dist"
)

func TestMean(t *testing.T) {
	if m := Mean(nil); m != 0 {
		t.Errorf("Mean(nil) = %v", m)
	}
	if m := Mean([]float64{1, 2, 3, 4}); m != 2.5 {
		t.Errorf("Mean = %v, want 2.5", m)
	}
}

func TestWeightedMean(t *testing.T) {
	got := WeightedMean([]float64{1, 10}, []float64{9, 1})
	if math.Abs(got-1.9) > 1e-12 {
		t.Fatalf("WeightedMean = %v, want 1.9", got)
	}
	if WeightedMean([]float64{5}, []float64{0}) != 0 {
		t.Fatal("zero total weight should yield 0")
	}
}

func TestWeightedMeanPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch should panic")
		}
	}()
	WeightedMean([]float64{1}, []float64{1, 2})
}

func TestVariance(t *testing.T) {
	if v := Variance([]float64{5}); v != 0 {
		t.Errorf("Variance(singleton) = %v", v)
	}
	v := Variance([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(v-4) > 1e-12 {
		t.Errorf("Variance = %v, want 4", v)
	}
}

func TestECDFAt(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 3})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {3, 1}, {4, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestECDFEmpty(t *testing.T) {
	e := NewECDF(nil)
	if e.At(5) != 0 || e.N() != 0 {
		t.Fatal("empty ECDF should evaluate to 0")
	}
	if _, err := e.Quantile(0.5); err == nil {
		t.Fatal("Quantile on empty ECDF should error")
	}
}

func TestECDFQuantile(t *testing.T) {
	e := NewECDF([]float64{10, 20, 30, 40})
	cases := []struct{ q, want float64 }{
		{0, 10}, {0.25, 10}, {0.5, 20}, {0.75, 30}, {1, 40},
	}
	for _, c := range cases {
		got, err := e.Quantile(c.q)
		if err != nil {
			t.Fatalf("Quantile(%v): %v", c.q, err)
		}
		if got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if _, err := e.Quantile(1.5); err == nil {
		t.Error("Quantile(1.5) should error")
	}
}

func TestECDFPoints(t *testing.T) {
	e := NewECDF([]float64{3, 1, 3, 2})
	xs, ps := e.Points()
	wantX := []float64{1, 2, 3}
	wantP := []float64{0.25, 0.5, 1}
	if len(xs) != 3 {
		t.Fatalf("Points returned %d xs", len(xs))
	}
	for i := range wantX {
		if xs[i] != wantX[i] || math.Abs(ps[i]-wantP[i]) > 1e-12 {
			t.Errorf("point %d = (%v,%v), want (%v,%v)", i, xs[i], ps[i], wantX[i], wantP[i])
		}
	}
}

func TestECDFDoesNotAliasInput(t *testing.T) {
	in := []float64{3, 1, 2}
	e := NewECDF(in)
	in[0] = 100
	if e.At(3) != 1 {
		t.Fatal("ECDF aliased its input slice")
	}
}

func TestLinearFitExact(t *testing.T) {
	// y = 3 + 2x exactly.
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{5, 7, 9, 11, 13}
	reg, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(reg.Slope-2) > 1e-12 || math.Abs(reg.Intercept-3) > 1e-12 {
		t.Fatalf("fit = %+v, want slope 2 intercept 3", reg)
	}
	if reg.R2 < 0.999999 {
		t.Fatalf("R2 = %v, want ~1", reg.R2)
	}
	if reg.PValue > 1e-12 {
		t.Fatalf("perfect fit p-value = %v, want ~0", reg.PValue)
	}
}

func TestLinearFitNoisy(t *testing.T) {
	s := dist.NewSource(99)
	var xs, ys []float64
	for i := 0; i < 200; i++ {
		x := float64(i) / 10
		xs = append(xs, x)
		ys = append(ys, 1.5*x+4+0.5*s.Norm())
	}
	reg, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(reg.Slope-1.5) > 0.05 {
		t.Fatalf("slope = %v, want ~1.5", reg.Slope)
	}
	if reg.PValue > 1e-9 {
		t.Fatalf("p-value = %v, want < 1e-9 for strong signal", reg.PValue)
	}
}

func TestLinearFitNullSlope(t *testing.T) {
	// Pure noise: p-value should usually be large.
	s := dist.NewSource(7)
	var xs, ys []float64
	for i := 0; i < 50; i++ {
		xs = append(xs, float64(i))
		ys = append(ys, s.Norm())
	}
	reg, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if reg.PValue < 0.001 {
		t.Fatalf("noise fit p-value = %v, suspiciously small", reg.PValue)
	}
}

func TestLinearFitErrors(t *testing.T) {
	if _, err := LinearFit([]float64{1, 2}, []float64{1, 2}); err == nil {
		t.Error("two points should be insufficient")
	}
	if _, err := LinearFit([]float64{1, 1, 1}, []float64{1, 2, 3}); err == nil {
		t.Error("degenerate x should error")
	}
}

func TestLogLogFit(t *testing.T) {
	// y = 2 * x^0.25 => log10 y = log10 2 + 0.25 log10 x.
	var xs, ys []float64
	for _, x := range []float64{1, 10, 100, 1000, 10000} {
		xs = append(xs, x)
		ys = append(ys, 2*math.Pow(x, 0.25))
	}
	// Include a non-positive point that must be dropped.
	xs = append(xs, 0)
	ys = append(ys, 5)
	reg, err := LogLogFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(reg.Slope-0.25) > 1e-9 {
		t.Fatalf("log-log slope = %v, want 0.25", reg.Slope)
	}
	if f := PerDecadeFactor(reg.Slope); math.Abs(f-math.Pow(10, 0.25)) > 1e-9 {
		t.Fatalf("PerDecadeFactor = %v", f)
	}
	if reg.N != 5 {
		t.Fatalf("fit used %d points, want 5 (non-positive dropped)", reg.N)
	}
}

func TestPerDecadeFactorKnownValues(t *testing.T) {
	// The paper reports 1.72x, 3.8x, 1.8x per decade; check the mapping.
	for _, c := range []struct{ slope, factor float64 }{
		{math.Log10(1.72), 1.72},
		{math.Log10(3.8), 3.8},
		{math.Log10(1.8), 1.8},
	} {
		if got := PerDecadeFactor(c.slope); math.Abs(got-c.factor) > 1e-9 {
			t.Errorf("PerDecadeFactor(%v) = %v, want %v", c.slope, got, c.factor)
		}
	}
}

func TestMustQuantilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustQuantile on empty ECDF should panic")
		}
	}()
	NewECDF(nil).MustQuantile(0.5)
}

func TestLinearFitPerfectNegativeSlope(t *testing.T) {
	reg, err := LinearFit([]float64{1, 2, 3, 4}, []float64{8, 6, 4, 2})
	if err != nil {
		t.Fatal(err)
	}
	if reg.Slope != -2 {
		t.Fatalf("slope = %v, want -2", reg.Slope)
	}
	if !math.IsInf(reg.TStat, -1) {
		t.Fatalf("perfect negative fit t-stat = %v, want -Inf", reg.TStat)
	}
	if reg.PValue != 0 {
		t.Fatalf("p = %v, want 0", reg.PValue)
	}
}

func TestStudentTNonPositive(t *testing.T) {
	if p := studentTSF(0, 10); p != 0.5 {
		t.Fatalf("P(T>0) = %v, want 0.5", p)
	}
	if p := studentTSF(-2, 10); p != 0.5 {
		t.Fatalf("negative t should clamp to 0.5, got %v", p)
	}
}

func TestPearson(t *testing.T) {
	r, err := Pearson([]float64{1, 2, 3}, []float64{2, 4, 6})
	if err != nil || math.Abs(r-1) > 1e-12 {
		t.Fatalf("Pearson = %v, %v; want 1", r, err)
	}
	r, err = Pearson([]float64{1, 2, 3}, []float64{6, 4, 2})
	if err != nil || math.Abs(r+1) > 1e-12 {
		t.Fatalf("Pearson = %v, %v; want -1", r, err)
	}
	if _, err := Pearson([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Error("zero x variance should error")
	}
	if _, err := Pearson([]float64{1}, []float64{2}); err == nil {
		t.Error("single point should error")
	}
}

func TestSpearman(t *testing.T) {
	// A monotone nonlinear relation: Pearson < 1, Spearman = 1.
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 8, 27, 64, 125}
	rho, err := Spearman(xs, ys)
	if err != nil || math.Abs(rho-1) > 1e-12 {
		t.Fatalf("Spearman = %v, %v; want 1", rho, err)
	}
	rho, err = Spearman(xs, []float64{5, 4, 3, 2, 1})
	if err != nil || math.Abs(rho+1) > 1e-12 {
		t.Fatalf("Spearman = %v; want -1", rho)
	}
	if _, err := Spearman([]float64{1}, []float64{1}); err == nil {
		t.Error("single point should error")
	}
}

func TestSpearmanTies(t *testing.T) {
	// Ties get average ranks; a tied-but-monotone relation stays
	// strongly positive.
	xs := []float64{1, 2, 2, 3}
	ys := []float64{10, 20, 20, 30}
	rho, err := Spearman(xs, ys)
	if err != nil || math.Abs(rho-1) > 1e-12 {
		t.Fatalf("tied Spearman = %v, want 1", rho)
	}
	r := ranks([]float64{5, 1, 1, 9})
	want := []float64{3, 1.5, 1.5, 4}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("ranks = %v, want %v", r, want)
		}
	}
}

func TestStudentTAgainstKnownValues(t *testing.T) {
	// Two-sided p for |t|=2.0 with df=10 is about 0.0734.
	p := 2 * studentTSF(2.0, 10)
	if math.Abs(p-0.0734) > 0.002 {
		t.Fatalf("p(|t|=2, df=10) = %v, want ~0.0734", p)
	}
	// df=1 (Cauchy): P(T > 1) = 0.25.
	if p := studentTSF(1, 1); math.Abs(p-0.25) > 1e-6 {
		t.Fatalf("P(T>1, df=1) = %v, want 0.25", p)
	}
	// Large df approaches the normal tail: P(Z > 1.96) ≈ 0.025.
	if p := studentTSF(1.96, 10000); math.Abs(p-0.025) > 0.001 {
		t.Fatalf("P(T>1.96, df=1e4) = %v, want ~0.025", p)
	}
}

func TestRegIncBetaBounds(t *testing.T) {
	if v := regIncBeta(2, 3, 0); v != 0 {
		t.Errorf("I_0 = %v", v)
	}
	if v := regIncBeta(2, 3, 1); v != 1 {
		t.Errorf("I_1 = %v", v)
	}
	// I_x(1,1) = x (uniform distribution).
	for _, x := range []float64{0.1, 0.5, 0.9} {
		if v := regIncBeta(1, 1, x); math.Abs(v-x) > 1e-10 {
			t.Errorf("I_%v(1,1) = %v", x, v)
		}
	}
}

// Property: ECDF.At is monotone non-decreasing.
func TestECDFMonotoneProperty(t *testing.T) {
	s := dist.NewSource(55)
	f := func(seed uint16, n uint8) bool {
		src := s.Splitf("case", int(seed))
		m := int(n%50) + 1
		sample := make([]float64, m)
		for i := range sample {
			sample[i] = src.Norm()
		}
		e := NewECDF(sample)
		prev := -1.0
		for _, x := range []float64{-3, -1, 0, 0.5, 1, 3} {
			v := e.At(x)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: quantiles are ordered and drawn from the sample.
func TestQuantileOrderProperty(t *testing.T) {
	s := dist.NewSource(66)
	f := func(seed uint16, n uint8) bool {
		src := s.Splitf("q", int(seed))
		m := int(n%40) + 2
		sample := make([]float64, m)
		for i := range sample {
			sample[i] = src.Float64() * 100
		}
		e := NewECDF(sample)
		q25 := e.MustQuantile(0.25)
		q50 := e.MustQuantile(0.50)
		q90 := e.MustQuantile(0.90)
		if !(q25 <= q50 && q50 <= q90) {
			return false
		}
		sort.Float64s(sample)
		idx := sort.SearchFloat64s(sample, q50)
		return idx < len(sample) && sample[idx] == q50
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
