package manifest

import (
	"encoding/xml"
	"fmt"
)

// Adobe HDS manifest support (.f4m). HDS clients fetch the manifest,
// choose a <media> entry by bitrate, and request fragments at
// <url>Seg1-Frag<N>. Durations are carried on the manifest itself; the
// generator emits one media entry per rendition.

type f4mXML struct {
	XMLName       xml.Name      `xml:"manifest"`
	Xmlns         string        `xml:"xmlns,attr"`
	ID            string        `xml:"id"`
	StreamType    string        `xml:"streamType"`
	Duration      float64       `xml:"duration"`
	FragDuration  float64       `xml:"fragmentDuration"`
	AudioBitrate  int           `xml:"audioBitrate"`
	Media         []f4mMediaXML `xml:"media"`
	BootstrapInfo string        `xml:"bootstrapInfo"`
}

type f4mMediaXML struct {
	Bitrate int    `xml:"bitrate,attr"`
	Width   int    `xml:"width,attr,omitempty"`
	Height  int    `xml:"height,attr,omitempty"`
	URL     string `xml:"url,attr"`
}

// generateHDS renders spec as an F4M manifest.
func generateHDS(spec *Spec, base string) (string, error) {
	doc := f4mXML{
		Xmlns:        "http://ns.adobe.com/f4m/1.0",
		ID:           spec.VideoID,
		Duration:     spec.DurationSec,
		FragDuration: spec.ChunkSec,
		AudioBitrate: spec.AudioKbps,
	}
	if spec.Live {
		doc.StreamType = "live"
	} else {
		doc.StreamType = "recorded"
	}
	for i, r := range spec.Ladder {
		doc.Media = append(doc.Media, f4mMediaXML{
			Bitrate: r.BitrateKbps,
			Width:   r.Width,
			Height:  r.Height,
			URL:     fmt.Sprintf("%s/%s/r%d", base, spec.VideoID, i),
		})
	}
	out, err := xml.MarshalIndent(doc, "", "  ")
	if err != nil {
		return "", fmt.Errorf("manifest: marshaling F4M: %w", err)
	}
	return xml.Header + string(out) + "\n", nil
}

// parseHDS decodes an F4M manifest into the common form.
func parseHDS(text string) (*Manifest, error) {
	var doc f4mXML
	if err := xml.Unmarshal([]byte(text), &doc); err != nil {
		return nil, fmt.Errorf("manifest: parsing F4M: %w", err)
	}
	if len(doc.Media) == 0 {
		return nil, fmt.Errorf("manifest: F4M has no media entries")
	}
	if doc.FragDuration <= 0 {
		return nil, fmt.Errorf("manifest: F4M fragmentDuration must be positive")
	}
	m := &Manifest{
		Protocol:  HDS,
		VideoID:   doc.ID,
		AudioKbps: doc.AudioBitrate,
		ChunkSec:  doc.FragDuration,
		Live:      doc.StreamType == "live",
	}
	urls := make([]string, len(doc.Media))
	for i, media := range doc.Media {
		if media.Bitrate <= 0 {
			return nil, fmt.Errorf("manifest: F4M media %d has non-positive bitrate", i)
		}
		m.Ladder = append(m.Ladder, Rendition{
			BitrateKbps: media.Bitrate,
			Width:       media.Width,
			Height:      media.Height,
		})
		urls[i] = media.URL
	}
	if m.Live {
		m.chunks = liveWindowChunks
	} else {
		if doc.Duration <= 0 {
			return nil, fmt.Errorf("manifest: recorded F4M needs a positive duration")
		}
		m.chunks = int(doc.Duration / doc.FragDuration)
		if float64(m.chunks)*doc.FragDuration < doc.Duration {
			m.chunks++
		}
	}
	m.chunkURL = func(rendition, chunk int) string {
		// HDS fragments are 1-indexed.
		return fmt.Sprintf("%sSeg1-Frag%d", urls[rendition], chunk+1)
	}
	return m, nil
}
