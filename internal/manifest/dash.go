package manifest

import (
	"encoding/xml"
	"fmt"
	"strconv"
	"strings"
)

// MPEG-DASH manifest support: a single-Period MPD with one video
// AdaptationSet using SegmentTemplate number addressing, plus one audio
// AdaptationSet. This is the profile the DASH-IF interoperability
// guidelines recommend for on-demand and live content and is the layout
// our players consume.

type mpdXML struct {
	XMLName  xml.Name    `xml:"MPD"`
	Xmlns    string      `xml:"xmlns,attr"`
	Type     string      `xml:"type,attr"`
	Duration string      `xml:"mediaPresentationDuration,attr,omitempty"`
	Profiles string      `xml:"profiles,attr"`
	VideoID  string      `xml:"id,attr"`
	Periods  []periodXML `xml:"Period"`
}

type periodXML struct {
	ID             string        `xml:"id,attr"`
	AdaptationSets []adaptSetXML `xml:"AdaptationSet"`
}

type adaptSetXML struct {
	ContentType     string     `xml:"contentType,attr"`
	SegmentTemplate *segTplXML `xml:"SegmentTemplate"`
	Representations []repXML   `xml:"Representation"`
}

type segTplXML struct {
	Media       string       `xml:"media,attr"`
	Timescale   int          `xml:"timescale,attr"`
	Duration    int          `xml:"duration,attr"`
	StartNumber int          `xml:"startNumber,attr"`
	Timeline    *timelineXML `xml:"SegmentTimeline"`
}

// timelineXML is the SegmentTimeline alternative to @duration: an
// explicit list of segment runs, each with a start time t, duration d,
// and repeat count r (r additional segments after the first).
type timelineXML struct {
	Segments []timelineSXML `xml:"S"`
}

type timelineSXML struct {
	T *int64 `xml:"t,attr"` // start time; defaults to previous end
	D int64  `xml:"d,attr"`
	R int    `xml:"r,attr"` // repeats after the first occurrence
}

type repXML struct {
	ID        string `xml:"id,attr"`
	Bandwidth int    `xml:"bandwidth,attr"`
	Width     int    `xml:"width,attr,omitempty"`
	Height    int    `xml:"height,attr,omitempty"`
	Codecs    string `xml:"codecs,attr,omitempty"`
}

const dashTimescale = 1000

// GenerateMPDTimeline renders spec as a DASH MPD using an explicit
// SegmentTimeline with $Time$ addressing instead of the @duration
// template — the form live-to-VoD packagers emit. The final segment's
// duration absorbs any remainder, so the timeline covers the content
// exactly.
func GenerateMPDTimeline(spec *Spec, baseURL string) (string, error) {
	if err := spec.Validate(); err != nil {
		return "", err
	}
	base := strings.TrimSuffix(baseURL, "/")
	n := spec.ChunkCount()
	chunk := int64(spec.ChunkSec * dashTimescale)
	tl := &timelineXML{}
	if spec.Live || float64(n)*spec.ChunkSec == spec.DurationSec {
		start := int64(0)
		tl.Segments = []timelineSXML{{T: &start, D: chunk, R: n - 1}}
	} else {
		start := int64(0)
		last := int64(spec.DurationSec*dashTimescale) - chunk*int64(n-1)
		tl.Segments = []timelineSXML{
			{T: &start, D: chunk, R: n - 2},
			{D: last},
		}
	}
	doc := buildMPD(spec, &segTplXML{
		Media:     base + "/" + spec.VideoID + "/$RepresentationID$/t$Time$.m4s",
		Timescale: dashTimescale,
		Timeline:  tl,
	})
	out, err := xml.MarshalIndent(doc, "", "  ")
	if err != nil {
		return "", fmt.Errorf("manifest: marshaling timeline MPD: %w", err)
	}
	return xml.Header + string(out) + "\n", nil
}

// generateMPD renders spec as a DASH MPD with @duration template
// addressing.
func generateMPD(spec *Spec, base string) (string, error) {
	doc := buildMPD(spec, &segTplXML{
		Media:       base + "/" + spec.VideoID + "/$RepresentationID$/seg$Number$.m4s",
		Timescale:   dashTimescale,
		Duration:    int(spec.ChunkSec * dashTimescale),
		StartNumber: 0,
	})
	out, err := xml.MarshalIndent(doc, "", "  ")
	if err != nil {
		return "", fmt.Errorf("manifest: marshaling MPD: %w", err)
	}
	return xml.Header + string(out) + "\n", nil
}

// buildMPD assembles the MPD document around a video segment template.
func buildMPD(spec *Spec, tpl *segTplXML) mpdXML {
	video := adaptSetXML{
		ContentType:     "video",
		SegmentTemplate: tpl,
	}
	for i, r := range spec.Ladder {
		video.Representations = append(video.Representations, repXML{
			ID:        fmt.Sprintf("r%d", i),
			Bandwidth: r.BitrateKbps * 1000,
			Width:     r.Width,
			Height:    r.Height,
			Codecs:    r.Codec,
		})
	}
	audio := adaptSetXML{
		ContentType: "audio",
		Representations: []repXML{{
			ID:        "audio",
			Bandwidth: spec.AudioKbps * 1000,
			Codecs:    "mp4a.40.2",
		}},
	}
	doc := mpdXML{
		Xmlns:    "urn:mpeg:dash:schema:mpd:2011",
		VideoID:  spec.VideoID,
		Profiles: "urn:mpeg:dash:profile:isoff-live:2011",
		Periods:  []periodXML{{ID: "p0", AdaptationSets: []adaptSetXML{video, audio}}},
	}
	if spec.Live {
		doc.Type = "dynamic"
	} else {
		doc.Type = "static"
		doc.Duration = fmt.Sprintf("PT%.3fS", spec.DurationSec)
	}
	return doc
}

// parseMPD decodes an MPD into the common Manifest form.
func parseMPD(text string) (*Manifest, error) {
	var doc mpdXML
	if err := xml.Unmarshal([]byte(text), &doc); err != nil {
		return nil, fmt.Errorf("manifest: parsing MPD: %w", err)
	}
	if len(doc.Periods) == 0 {
		return nil, fmt.Errorf("manifest: MPD has no Period")
	}
	m := &Manifest{Protocol: DASH, VideoID: doc.VideoID, Live: doc.Type == "dynamic"}
	var tpl *segTplXML
	var repIDs []string
	for _, as := range doc.Periods[0].AdaptationSets {
		switch as.ContentType {
		case "video":
			tpl = as.SegmentTemplate
			for _, r := range as.Representations {
				m.Ladder = append(m.Ladder, Rendition{
					BitrateKbps: r.Bandwidth / 1000,
					Width:       r.Width,
					Height:      r.Height,
					Codec:       r.Codecs,
				})
				repIDs = append(repIDs, r.ID)
			}
		case "audio":
			if len(as.Representations) > 0 {
				m.AudioKbps = as.Representations[0].Bandwidth / 1000
			}
		}
	}
	if len(m.Ladder) == 0 {
		return nil, fmt.Errorf("manifest: MPD has no video representations")
	}
	if tpl == nil || tpl.Timescale <= 0 {
		return nil, fmt.Errorf("manifest: MPD video set lacks a usable SegmentTemplate")
	}
	if tpl.Timeline != nil {
		return parseMPDTimeline(m, tpl, repIDs)
	}
	if tpl.Duration <= 0 {
		return nil, fmt.Errorf("manifest: SegmentTemplate needs @duration or a SegmentTimeline")
	}
	m.ChunkSec = float64(tpl.Duration) / float64(tpl.Timescale)
	if m.Live {
		m.chunks = liveWindowChunks
	} else {
		dur, err := parseISODuration(doc.Duration)
		if err != nil {
			return nil, err
		}
		m.chunks = int(dur / m.ChunkSec)
		if float64(m.chunks)*m.ChunkSec < dur {
			m.chunks++
		}
	}
	media, start := tpl.Media, tpl.StartNumber
	m.chunkURL = func(rendition, chunk int) string {
		u := strings.ReplaceAll(media, "$RepresentationID$", repIDs[rendition])
		return strings.ReplaceAll(u, "$Number$", strconv.Itoa(start+chunk))
	}
	return m, nil
}

// parseMPDTimeline finishes parsing an MPD whose video SegmentTemplate
// carries an explicit SegmentTimeline: segments are addressed by
// $Time$ (or $Number$), with durations taken from the timeline runs.
func parseMPDTimeline(m *Manifest, tpl *segTplXML, repIDs []string) (*Manifest, error) {
	var (
		starts []int64
		next   int64
	)
	totalDur := int64(0)
	for _, s := range tpl.Timeline.Segments {
		if s.D <= 0 {
			return nil, fmt.Errorf("manifest: SegmentTimeline S@d must be positive")
		}
		if s.R < 0 {
			return nil, fmt.Errorf("manifest: SegmentTimeline S@r must be non-negative")
		}
		if s.T != nil {
			next = *s.T
		}
		for k := 0; k <= s.R; k++ {
			starts = append(starts, next)
			next += s.D
			totalDur += s.D
			if len(starts) > 1<<20 {
				return nil, fmt.Errorf("manifest: SegmentTimeline too long")
			}
		}
	}
	if len(starts) == 0 {
		return nil, fmt.Errorf("manifest: empty SegmentTimeline")
	}
	m.chunks = len(starts)
	// The common Manifest carries one nominal chunk duration; use the
	// mean, which is exact for uniform timelines.
	m.ChunkSec = float64(totalDur) / float64(len(starts)) / float64(tpl.Timescale)
	media, startNum := tpl.Media, tpl.StartNumber
	m.chunkURL = func(rendition, chunk int) string {
		u := strings.ReplaceAll(media, "$RepresentationID$", repIDs[rendition])
		u = strings.ReplaceAll(u, "$Time$", strconv.FormatInt(starts[chunk], 10))
		return strings.ReplaceAll(u, "$Number$", strconv.Itoa(startNum+chunk))
	}
	return m, nil
}

// parseISODuration parses the "PT<n>S" subset of ISO 8601 durations the
// generator emits, plus the PT#M#S and PT#H#M#S forms for robustness
// against hand-written MPDs.
func parseISODuration(s string) (float64, error) {
	orig := s
	if !strings.HasPrefix(s, "PT") {
		return 0, fmt.Errorf("manifest: bad ISO duration %q", orig)
	}
	s = s[2:]
	total := 0.0
	num := ""
	for _, c := range s {
		switch {
		case c >= '0' && c <= '9' || c == '.':
			num += string(c)
		case c == 'H' || c == 'M' || c == 'S':
			v, err := strconv.ParseFloat(num, 64)
			if err != nil {
				return 0, fmt.Errorf("manifest: bad ISO duration %q", orig)
			}
			switch c {
			case 'H':
				total += v * 3600
			case 'M':
				total += v * 60
			case 'S':
				total += v
			}
			num = ""
		default:
			return 0, fmt.Errorf("manifest: bad ISO duration %q", orig)
		}
	}
	if num != "" {
		return 0, fmt.Errorf("manifest: bad ISO duration %q", orig)
	}
	if total <= 0 {
		return 0, fmt.Errorf("manifest: non-positive ISO duration %q", orig)
	}
	return total, nil
}
