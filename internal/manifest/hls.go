package manifest

import (
	"fmt"
	"strconv"
	"strings"
)

// HLS manifest support: master playlists referencing one media playlist
// per rendition, RFC 8216 tag subset. The generator additionally emits
// an #EXT-X-SESSION-DATA tag carrying the packaging metadata (video ID,
// chunk duration, chunk count, audio bitrate) so that a parsed master is
// self-sufficient for simulation; real players ignore unknown session
// data, and our media playlists remain fully standard.

// generateHLSMaster renders the master playlist for spec.
func generateHLSMaster(spec *Spec, base string) string {
	var b strings.Builder
	b.WriteString("#EXTM3U\n#EXT-X-VERSION:3\n")
	fmt.Fprintf(&b,
		"#EXT-X-SESSION-DATA:DATA-ID=\"com.vmp.package\",VALUE=\"video=%s chunksec=%g chunks=%d audio=%d live=%t byterange=%t\"\n",
		spec.VideoID, spec.ChunkSec, spec.ChunkCount(), spec.AudioKbps, spec.Live, spec.ByteRange)
	for i, r := range spec.Ladder {
		attrs := fmt.Sprintf("BANDWIDTH=%d", (r.BitrateKbps+spec.AudioKbps)*1000)
		if r.Width > 0 && r.Height > 0 {
			attrs += fmt.Sprintf(",RESOLUTION=%dx%d", r.Width, r.Height)
		}
		if r.Codec != "" {
			attrs += fmt.Sprintf(",CODECS=%q", r.Codec)
		}
		fmt.Fprintf(&b, "#EXT-X-STREAM-INF:%s\n%s/%s/r%d.m3u8\n", attrs, base, spec.VideoID, i)
	}
	return b.String()
}

// GenerateHLSMedia renders the media playlist for one rendition of
// spec: the per-chunk playlist a player fetches after choosing a
// variant from the master.
func GenerateHLSMedia(spec *Spec, rendition int, base string) (string, error) {
	if err := spec.Validate(); err != nil {
		return "", err
	}
	if rendition < 0 || rendition >= len(spec.Ladder) {
		return "", fmt.Errorf("manifest: rendition %d out of range", rendition)
	}
	base = strings.TrimSuffix(base, "/")
	var b strings.Builder
	version := 3
	if spec.ByteRange {
		version = 4 // EXT-X-BYTERANGE requires protocol version 4
	}
	fmt.Fprintf(&b, "#EXTM3U\n#EXT-X-VERSION:%d\n", version)
	fmt.Fprintf(&b, "#EXT-X-TARGETDURATION:%d\n", int(spec.ChunkSec+0.999))
	b.WriteString("#EXT-X-MEDIA-SEQUENCE:0\n")
	if spec.Live {
		b.WriteString("#EXT-X-PLAYLIST-TYPE:EVENT\n")
	} else {
		b.WriteString("#EXT-X-PLAYLIST-TYPE:VOD\n")
	}
	n := spec.ChunkCount()
	remaining := spec.DurationSec
	chunkBytes := int64(float64(spec.Ladder[rendition].BitrateKbps+spec.AudioKbps) * 1000 * spec.ChunkSec / 8)
	var offset int64
	for i := 0; i < n; i++ {
		d := spec.ChunkSec
		if !spec.Live && remaining < d {
			d = remaining
		}
		remaining -= d
		if spec.ByteRange {
			fmt.Fprintf(&b, "#EXTINF:%.3f,\n#EXT-X-BYTERANGE:%d@%d\n%s/%s/r%d/media.ts\n",
				d, chunkBytes, offset, base, spec.VideoID, rendition)
			offset += chunkBytes
		} else {
			fmt.Fprintf(&b, "#EXTINF:%.3f,\n%s/%s/r%d/seg%d.ts\n", d, base, spec.VideoID, rendition, i)
		}
	}
	if !spec.Live {
		b.WriteString("#EXT-X-ENDLIST\n")
	}
	return b.String(), nil
}

// parseHLSMaster decodes a master playlist into the common Manifest
// form. Renditions appear in playlist order; chunk addressing follows
// the media-playlist URI convention emitted by the generator.
func parseHLSMaster(text string) (*Manifest, error) {
	lines := strings.Split(text, "\n")
	if len(lines) == 0 || strings.TrimSpace(lines[0]) != "#EXTM3U" {
		return nil, fmt.Errorf("manifest: not an HLS playlist")
	}
	m := &Manifest{Protocol: HLS, chunks: 1, ChunkSec: 1}
	var mediaURIs []string
	var pending *Rendition
	for _, raw := range lines[1:] {
		line := strings.TrimSpace(raw)
		switch {
		case strings.HasPrefix(line, "#EXT-X-SESSION-DATA:"):
			parseHLSSessionData(line, m)
		case strings.HasPrefix(line, "#EXT-X-STREAM-INF:"):
			r, err := parseStreamInf(strings.TrimPrefix(line, "#EXT-X-STREAM-INF:"), m.AudioKbps)
			if err != nil {
				return nil, err
			}
			pending = &r
		case line == "" || strings.HasPrefix(line, "#"):
			// Comment or unrelated tag.
		default:
			if pending == nil {
				return nil, fmt.Errorf("manifest: URI %q without #EXT-X-STREAM-INF", line)
			}
			m.Ladder = append(m.Ladder, *pending)
			mediaURIs = append(mediaURIs, line)
			pending = nil
		}
	}
	if len(m.Ladder) == 0 {
		return nil, fmt.Errorf("manifest: HLS master has no variants")
	}
	if m.ByteRange {
		// One media file per rendition; chunks are ranges within it.
		m.chunkURL = func(rendition, chunk int) string {
			return strings.TrimSuffix(mediaURIs[rendition], ".m3u8") + "/media.ts"
		}
	} else {
		m.chunkURL = func(rendition, chunk int) string {
			return strings.TrimSuffix(mediaURIs[rendition], ".m3u8") + fmt.Sprintf("/seg%d.ts", chunk)
		}
	}
	return m, nil
}

// parseHLSSessionData extracts the generator's packaging metadata.
// Unknown or malformed session data is ignored, as a real player would.
func parseHLSSessionData(line string, m *Manifest) {
	i := strings.Index(line, `VALUE="`)
	if i < 0 {
		return
	}
	val := line[i+len(`VALUE="`):]
	if j := strings.Index(val, `"`); j >= 0 {
		val = val[:j]
	}
	for _, field := range strings.Fields(val) {
		k, v, ok := strings.Cut(field, "=")
		if !ok {
			continue
		}
		switch k {
		case "video":
			m.VideoID = v
		case "chunksec":
			if f, err := strconv.ParseFloat(v, 64); err == nil && f > 0 {
				m.ChunkSec = f
			}
		case "chunks":
			if n, err := strconv.Atoi(v); err == nil && n > 0 {
				m.chunks = n
			}
		case "audio":
			if n, err := strconv.Atoi(v); err == nil {
				m.AudioKbps = n
			}
		case "live":
			m.Live = v == "true"
		case "byterange":
			m.ByteRange = v == "true"
		}
	}
}

// parseStreamInf parses the attribute list of an #EXT-X-STREAM-INF tag.
func parseStreamInf(attrs string, audioKbps int) (Rendition, error) {
	var r Rendition
	for _, kv := range splitHLSAttrs(attrs) {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			continue
		}
		switch k {
		case "BANDWIDTH":
			bw, err := strconv.Atoi(v)
			if err != nil {
				return r, fmt.Errorf("manifest: bad BANDWIDTH %q", v)
			}
			r.BitrateKbps = bw/1000 - audioKbps
		case "RESOLUTION":
			w, h, ok := strings.Cut(v, "x")
			if ok {
				r.Width, _ = strconv.Atoi(w)
				r.Height, _ = strconv.Atoi(h)
			}
		case "CODECS":
			r.Codec = strings.Trim(v, `"`)
		}
	}
	if r.BitrateKbps <= 0 {
		return r, fmt.Errorf("manifest: variant without positive BANDWIDTH")
	}
	return r, nil
}

// splitHLSAttrs splits an HLS attribute list on commas, respecting
// quoted values (CODECS="avc1.4d401f,mp4a.40.2" must not split).
func splitHLSAttrs(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, s[start:])
	return out
}

// MediaPlaylist is the parsed form of an HLS media playlist. For
// byte-range playlists, SegmentOffsets and SegmentLengths carry the
// range of each segment within its media file.
type MediaPlaylist struct {
	TargetDuration int
	Live           bool
	ByteRange      bool
	SegmentURIs    []string
	SegmentSecs    []float64
	SegmentOffsets []int64
	SegmentLengths []int64
}

// ParseHLSMedia decodes a media playlist.
func ParseHLSMedia(text string) (*MediaPlaylist, error) {
	lines := strings.Split(text, "\n")
	if len(lines) == 0 || strings.TrimSpace(lines[0]) != "#EXTM3U" {
		return nil, fmt.Errorf("manifest: not an HLS playlist")
	}
	p := &MediaPlaylist{Live: true}
	var (
		pendingDur    float64
		havePending   bool
		pendingOff    int64
		pendingLen    int64
		haveRange     bool
		nextImplicito int64 // implicit offset when BYTERANGE omits @o
	)
	for _, raw := range lines[1:] {
		line := strings.TrimSpace(raw)
		switch {
		case strings.HasPrefix(line, "#EXT-X-TARGETDURATION:"):
			p.TargetDuration, _ = strconv.Atoi(strings.TrimPrefix(line, "#EXT-X-TARGETDURATION:"))
		case strings.HasPrefix(line, "#EXTINF:"):
			v := strings.TrimSuffix(strings.TrimPrefix(line, "#EXTINF:"), ",")
			d, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return nil, fmt.Errorf("manifest: bad #EXTINF %q", v)
			}
			pendingDur, havePending = d, true
		case strings.HasPrefix(line, "#EXT-X-BYTERANGE:"):
			spec := strings.TrimPrefix(line, "#EXT-X-BYTERANGE:")
			lenStr, offStr, hasOff := strings.Cut(spec, "@")
			n, err := strconv.ParseInt(lenStr, 10, 64)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("manifest: bad #EXT-X-BYTERANGE %q", spec)
			}
			off := nextImplicito
			if hasOff {
				off, err = strconv.ParseInt(offStr, 10, 64)
				if err != nil || off < 0 {
					return nil, fmt.Errorf("manifest: bad #EXT-X-BYTERANGE offset %q", spec)
				}
			}
			pendingLen, pendingOff, haveRange = n, off, true
			nextImplicito = off + n
		case line == "#EXT-X-ENDLIST":
			p.Live = false
		case line == "" || strings.HasPrefix(line, "#"):
		default:
			if !havePending {
				return nil, fmt.Errorf("manifest: segment %q without #EXTINF", line)
			}
			p.SegmentURIs = append(p.SegmentURIs, line)
			p.SegmentSecs = append(p.SegmentSecs, pendingDur)
			if haveRange {
				p.ByteRange = true
				p.SegmentOffsets = append(p.SegmentOffsets, pendingOff)
				p.SegmentLengths = append(p.SegmentLengths, pendingLen)
			} else if p.ByteRange {
				return nil, fmt.Errorf("manifest: segment %q missing #EXT-X-BYTERANGE in byte-range playlist", line)
			}
			havePending, haveRange = false, false
		}
	}
	return p, nil
}
