package manifest

import (
	"strings"
	"testing"
)

func byteRangeSpec() *Spec {
	s := testSpec()
	s.ByteRange = true
	return s
}

func TestByteRangeValidation(t *testing.T) {
	s := byteRangeSpec()
	if err := s.Validate(); err != nil {
		t.Fatalf("VoD byte-range spec rejected: %v", err)
	}
	s.Live = true
	if err := s.Validate(); err == nil {
		t.Fatal("live byte-range spec accepted")
	}
}

func TestByteRangeHLSMediaPlaylist(t *testing.T) {
	spec := byteRangeSpec()
	text, err := GenerateHLSMedia(spec, 1, "http://cdn/p")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "#EXT-X-VERSION:4") {
		t.Error("byte-range playlists require protocol version 4")
	}
	if !strings.Contains(text, "#EXT-X-BYTERANGE:") {
		t.Fatal("missing EXT-X-BYTERANGE tags")
	}
	p, err := ParseHLSMedia(text)
	if err != nil {
		t.Fatal(err)
	}
	if !p.ByteRange {
		t.Fatal("parsed playlist not marked byte-range")
	}
	if len(p.SegmentOffsets) != spec.ChunkCount() {
		t.Fatalf("offsets = %d, want %d", len(p.SegmentOffsets), spec.ChunkCount())
	}
	// All URIs address the same media file.
	for _, u := range p.SegmentURIs {
		if u != p.SegmentURIs[0] {
			t.Fatalf("byte-range segments must share one file: %q vs %q", u, p.SegmentURIs[0])
		}
	}
	// Ranges are contiguous and non-overlapping.
	for i := 1; i < len(p.SegmentOffsets); i++ {
		if p.SegmentOffsets[i] != p.SegmentOffsets[i-1]+p.SegmentLengths[i-1] {
			t.Fatalf("segment %d range not contiguous", i)
		}
	}
	// Chunk length follows the packaging arithmetic: (1200+96)Kbps × 4s / 8.
	want := int64((1200 + 96) * 1000 * 4 / 8)
	if p.SegmentLengths[0] != want {
		t.Fatalf("segment length = %d, want %d", p.SegmentLengths[0], want)
	}
}

func TestByteRangeImplicitOffsets(t *testing.T) {
	// The RFC allows omitting @offset: the range continues from the
	// previous segment's end.
	text := "#EXTM3U\n#EXT-X-VERSION:4\n#EXT-X-TARGETDURATION:4\n" +
		"#EXTINF:4.0,\n#EXT-X-BYTERANGE:100@0\nmedia.ts\n" +
		"#EXTINF:4.0,\n#EXT-X-BYTERANGE:150\nmedia.ts\n" +
		"#EXT-X-ENDLIST\n"
	p, err := ParseHLSMedia(text)
	if err != nil {
		t.Fatal(err)
	}
	if p.SegmentOffsets[1] != 100 || p.SegmentLengths[1] != 150 {
		t.Fatalf("implicit offset = %d@%d, want 150@100", p.SegmentLengths[1], p.SegmentOffsets[1])
	}
}

func TestByteRangeParseErrors(t *testing.T) {
	cases := map[string]string{
		"bad length": "#EXTM3U\n#EXTINF:4.0,\n#EXT-X-BYTERANGE:abc@0\nm.ts\n",
		"bad offset": "#EXTM3U\n#EXTINF:4.0,\n#EXT-X-BYTERANGE:10@xyz\nm.ts\n",
		"mixed": "#EXTM3U\n#EXTINF:4.0,\n#EXT-X-BYTERANGE:10@0\nm.ts\n" +
			"#EXTINF:4.0,\nplain-seg.ts\n",
	}
	for name, text := range cases {
		if _, err := ParseHLSMedia(text); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestByteRangeMasterRoundTrip(t *testing.T) {
	spec := byteRangeSpec()
	text, err := Generate(HLS, spec, "http://cdn/p")
	if err != nil {
		t.Fatal(err)
	}
	m, err := Parse("http://cdn/p/v123.m3u8", text)
	if err != nil {
		t.Fatal(err)
	}
	if !m.ByteRange {
		t.Fatal("ByteRange flag lost in master round trip")
	}
	// Chunk URLs collapse onto one file per rendition.
	if m.ChunkURL(0, 0) != m.ChunkURL(0, 5) {
		t.Fatal("byte-range chunks should share one URL")
	}
	if m.ChunkURL(0, 0) == m.ChunkURL(1, 0) {
		t.Fatal("different renditions must use different files")
	}
	off, length, ok := m.ChunkRange(1, 3)
	if !ok {
		t.Fatal("ChunkRange should apply")
	}
	wantLen := int64((1200 + 96) * 1000 * 4 / 8)
	if length != wantLen || off != 3*wantLen {
		t.Fatalf("ChunkRange = %d@%d, want %d@%d", length, off, wantLen, 3*wantLen)
	}
}

func TestChunkRangeOnChunkedContent(t *testing.T) {
	m := roundTrip(t, HLS, testSpec())
	if _, _, ok := m.ChunkRange(0, 0); ok {
		t.Fatal("ChunkRange should not apply to chunked content")
	}
}

func TestChunkRangePanicsOutOfRange(t *testing.T) {
	spec := byteRangeSpec()
	text, err := Generate(HLS, spec, "http://cdn/p")
	if err != nil {
		t.Fatal(err)
	}
	m, err := Parse("http://cdn/p/v123.m3u8", text)
	if err != nil {
		t.Fatal(err)
	}
	for _, fn := range []func(){
		func() { m.ChunkRange(-1, 0) },
		func() { m.ChunkRange(0, 1_000_000) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range ChunkRange should panic")
				}
			}()
			fn()
		}()
	}
}
