package manifest_test

import (
	"fmt"
	"strings"

	"vmp/internal/manifest"
)

// ExampleInferProtocol shows the Table 1 inference rule on the paper's
// sample URLs.
func ExampleInferProtocol() {
	urls := []string{
		"http://cdn.akamaihd.net/master.m3u8",
		"http://cdn.llwnd.net//Z53TiGRzq.mpd",
		"http://cdn.level3.net/56.ism/manifest",
		"http://cdn.aws.com/cache/hds.f4m",
		"rtmp://live.example.com/ch1",
	}
	for _, u := range urls {
		fmt.Println(manifest.InferProtocol(u))
	}
	// Output:
	// HLS
	// DASH
	// SmoothStreaming
	// HDS
	// RTMP
}

// ExampleGenerate packages a two-rung title as an HLS master playlist
// and parses it back.
func ExampleGenerate() {
	spec := &manifest.Spec{
		VideoID:     "v42",
		DurationSec: 60,
		ChunkSec:    4,
		AudioKbps:   96,
		Ladder: manifest.Ladder{
			{BitrateKbps: 400, Width: 640, Height: 360},
			{BitrateKbps: 1200, Width: 1280, Height: 720},
		},
	}
	text, err := manifest.Generate(manifest.HLS, spec, "http://cdn-a.example/pub1")
	if err != nil {
		panic(err)
	}
	fmt.Println(strings.SplitN(text, "\n", 2)[0])

	m, err := manifest.Parse("http://cdn-a.example/pub1/v42.m3u8", text)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d renditions, %d chunks of %.0fs\n", len(m.Ladder), m.ChunkCount(), m.ChunkSec)
	fmt.Println(m.ChunkURL(1, 0))
	// Output:
	// #EXTM3U
	// 2 renditions, 15 chunks of 4s
	// http://cdn-a.example/pub1/v42/r1/seg0.ts
}
