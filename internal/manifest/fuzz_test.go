package manifest

import (
	"strings"
	"testing"
)

// Fuzz targets for the manifest parsers: whatever bytes arrive, the
// parsers must return structured errors, never panic, and any manifest
// they accept must satisfy the package invariants. Run with
// `go test -fuzz FuzzParseHLSMaster ./internal/manifest` to explore;
// the seed corpus runs as part of the ordinary test suite.

func checkParsed(t *testing.T, m *Manifest) {
	t.Helper()
	if m == nil {
		return
	}
	if len(m.Ladder) == 0 {
		t.Fatal("accepted manifest with empty ladder")
	}
	if m.ChunkSec <= 0 {
		t.Fatalf("accepted manifest with ChunkSec %v", m.ChunkSec)
	}
	if m.ChunkCount() <= 0 {
		t.Fatal("accepted manifest with no chunks")
	}
	// Chunk addressing must hold for every corner of the index space.
	_ = m.ChunkURL(0, 0)
	_ = m.ChunkURL(len(m.Ladder)-1, m.ChunkCount()-1)
}

func FuzzParseHLSMaster(f *testing.F) {
	good, _ := Generate(HLS, testSpec(), "http://cdn/p")
	f.Add(good)
	f.Add("#EXTM3U\n#EXT-X-STREAM-INF:BANDWIDTH=100000\nr0.m3u8\n")
	f.Add("#EXTM3U\n#EXT-X-SESSION-DATA:DATA-ID=\"x\",VALUE=\"chunksec=nope chunks=-3\"\n" +
		"#EXT-X-STREAM-INF:BANDWIDTH=100000\nr0.m3u8\n")
	f.Add("#EXTM3U\n#EXT-X-STREAM-INF:BANDWIDTH=1000,CODECS=\"a,b\",RESOLUTION=1x\nu\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, text string) {
		m, err := parseHLSMaster(text)
		if err == nil {
			checkParsed(t, m)
		}
	})
}

func FuzzParseHLSMedia(f *testing.F) {
	media, _ := GenerateHLSMedia(testSpec(), 0, "http://cdn/p")
	f.Add(media)
	brSpec := testSpec()
	brSpec.ByteRange = true
	brMedia, _ := GenerateHLSMedia(brSpec, 0, "http://cdn/p")
	f.Add(brMedia)
	f.Add("#EXTM3U\n#EXTINF:4.0,\n#EXT-X-BYTERANGE:10\nm.ts\n")
	f.Add("#EXTM3U\n#EXTINF:nope,\nseg.ts\n")
	f.Fuzz(func(t *testing.T, text string) {
		p, err := ParseHLSMedia(text)
		if err != nil {
			return
		}
		if len(p.SegmentURIs) != len(p.SegmentSecs) {
			t.Fatal("URI/duration length mismatch")
		}
		if p.ByteRange && len(p.SegmentOffsets) != len(p.SegmentURIs) {
			t.Fatal("byte-range bookkeeping mismatch")
		}
	})
}

func FuzzParseMPD(f *testing.F) {
	good, _ := Generate(DASH, testSpec(), "http://cdn/p")
	f.Add(good)
	f.Add(timelineMPD)
	f.Add(`<MPD type="static" mediaPresentationDuration="PT10S"><Period id="p0"/></MPD>`)
	f.Add(`<MPD`)
	f.Add(strings.Repeat("<Period>", 40))
	f.Fuzz(func(t *testing.T, text string) {
		m, err := parseMPD(text)
		if err == nil {
			checkParsed(t, m)
		}
	})
}

func FuzzParseSmooth(f *testing.F) {
	good, _ := Generate(Smooth, testSpec(), "http://cdn/p")
	f.Add(good)
	f.Add(`<SmoothStreamingMedia MajorVersion="2"><StreamIndex Type="video"/></SmoothStreamingMedia>`)
	f.Add(`<SmoothStreamingMedia TimeScale="0"><StreamIndex Type="video" Chunks="1">` +
		`<QualityLevel Bitrate="1000"/><c d="0"/></StreamIndex></SmoothStreamingMedia>`)
	f.Fuzz(func(t *testing.T, text string) {
		m, err := parseSmooth(text)
		if err == nil {
			checkParsed(t, m)
		}
	})
}

func FuzzParseHDS(f *testing.F) {
	good, _ := Generate(HDS, testSpec(), "http://cdn/p")
	f.Add(good)
	f.Add(`<manifest><media bitrate="0" url="u"/></manifest>`)
	f.Add(`<manifest><duration>-5</duration><fragmentDuration>4</fragmentDuration>` +
		`<media bitrate="100" url="u"/></manifest>`)
	f.Fuzz(func(t *testing.T, text string) {
		m, err := parseHDS(text)
		if err == nil {
			checkParsed(t, m)
		}
	})
}

func FuzzInferProtocol(f *testing.F) {
	f.Add("http://x/master.m3u8")
	f.Add("rtmp://host/app")
	f.Add("://")
	f.Add("HTTP://X/A.MPD?q=1#f")
	f.Fuzz(func(t *testing.T, url string) {
		// Must never panic, and must be case-insensitive.
		p1 := InferProtocol(url)
		p2 := InferProtocol(strings.ToUpper(url))
		if p1 != p2 {
			t.Fatalf("case sensitivity: %v vs %v for %q", p1, p2, url)
		}
	})
}

func FuzzParseISODuration(f *testing.F) {
	f.Add("PT634.500S")
	f.Add("PT1H2M3S")
	f.Add("P1D")
	f.Add("PT")
	f.Fuzz(func(t *testing.T, s string) {
		d, err := parseISODuration(s)
		if err == nil && d <= 0 {
			t.Fatalf("accepted non-positive duration %v from %q", d, s)
		}
	})
}
