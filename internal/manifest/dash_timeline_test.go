package manifest

import (
	"fmt"
	"strings"
	"testing"
)

const timelineMPD = `<?xml version="1.0"?>
<MPD xmlns="urn:mpeg:dash:schema:mpd:2011" type="static" id="vtl"
     mediaPresentationDuration="PT24S" profiles="urn:mpeg:dash:profile:isoff-live:2011">
  <Period id="p0">
    <AdaptationSet contentType="video">
      <SegmentTemplate media="vtl/$RepresentationID$/t$Time$.m4s" timescale="1000">
        <SegmentTimeline>
          <S t="0" d="4000" r="2"/>
          <S d="6000" r="1"/>
        </SegmentTimeline>
      </SegmentTemplate>
      <Representation id="r0" bandwidth="400000"/>
      <Representation id="r1" bandwidth="1200000"/>
    </AdaptationSet>
    <AdaptationSet contentType="audio">
      <Representation id="audio" bandwidth="96000"/>
    </AdaptationSet>
  </Period>
</MPD>`

func TestParseMPDSegmentTimeline(t *testing.T) {
	m, err := parseMPD(timelineMPD)
	if err != nil {
		t.Fatal(err)
	}
	// 3 segments of 4s + 2 of 6s = 5 segments, 24s total.
	if m.ChunkCount() != 5 {
		t.Fatalf("ChunkCount = %d, want 5", m.ChunkCount())
	}
	if m.ChunkSec != 24.0/5 {
		t.Fatalf("mean ChunkSec = %v, want 4.8", m.ChunkSec)
	}
	if len(m.Ladder) != 2 || m.AudioKbps != 96 {
		t.Fatalf("ladder/audio wrong: %+v", m)
	}
	// $Time$ addressing: cumulative start times 0,4000,8000,12000,18000.
	wantTimes := []string{"t0.m4s", "t4000.m4s", "t8000.m4s", "t12000.m4s", "t18000.m4s"}
	for i, want := range wantTimes {
		u := m.ChunkURL(1, i)
		if !strings.HasSuffix(u, want) {
			t.Errorf("chunk %d URL = %q, want suffix %q", i, u, want)
		}
		if !strings.Contains(u, "/r1/") {
			t.Errorf("chunk URL missing representation ID: %q", u)
		}
	}
}

func TestParseMPDTimelineImplicitT(t *testing.T) {
	// Without @t the run continues from the previous end.
	mpd := strings.Replace(timelineMPD, `<S t="0" d="4000" r="2"/>`, `<S d="4000" r="2"/>`, 1)
	m, err := parseMPD(mpd)
	if err != nil {
		t.Fatal(err)
	}
	if u := m.ChunkURL(0, 0); !strings.HasSuffix(u, "t0.m4s") {
		t.Fatalf("first chunk = %q, want t0", u)
	}
}

func TestParseMPDTimelineErrors(t *testing.T) {
	cases := map[string]string{
		"zero duration":  strings.Replace(timelineMPD, `d="4000"`, `d="0"`, 1),
		"negative r":     strings.Replace(timelineMPD, `r="2"`, `r="-3"`, 1),
		"empty timeline": strings.Replace(strings.Replace(timelineMPD, `<S t="0" d="4000" r="2"/>`, "", 1), `<S d="6000" r="1"/>`, "", 1),
	}
	for name, mpd := range cases {
		if _, err := parseMPD(mpd); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestParseMPDTimelinePlaysBack(t *testing.T) {
	// A timeline manifest must satisfy the same addressing contract as
	// a template manifest end to end.
	m, err := parseMPD(timelineMPD)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for c := 0; c < m.ChunkCount(); c++ {
		for r := 0; r < len(m.Ladder); r++ {
			u := m.ChunkURL(r, c)
			if seen[u] {
				t.Fatalf("duplicate chunk URL %q", u)
			}
			seen[u] = true
		}
	}
}

func TestGenerateMPDTimelineRoundTrip(t *testing.T) {
	spec := testSpec() // 634.5s / 4s: non-integral, remainder segment
	text, err := GenerateMPDTimeline(spec, "http://cdn/p")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "<SegmentTimeline>") || !strings.Contains(text, "$Time$") {
		t.Fatalf("not a timeline MPD:\n%s", text)
	}
	m, err := Parse("http://cdn/p/v123.mpd", text)
	if err != nil {
		t.Fatal(err)
	}
	if m.ChunkCount() != spec.ChunkCount() {
		t.Fatalf("ChunkCount = %d, want %d", m.ChunkCount(), spec.ChunkCount())
	}
	if len(m.Ladder) != len(spec.Ladder) {
		t.Fatalf("ladder = %d, want %d", len(m.Ladder), len(spec.Ladder))
	}
	// Last segment starts at (n-1) * chunk duration.
	last := m.ChunkURL(0, m.ChunkCount()-1)
	wantStart := int64((m.ChunkCount() - 1) * 4 * 1000)
	if !strings.Contains(last, "t"+strconvItoa(wantStart)) {
		t.Fatalf("last segment URL %q, want start %d", last, wantStart)
	}
	// Exact-multiple and live variants.
	exact := testSpec()
	exact.DurationSec = 640
	if _, err := GenerateMPDTimeline(exact, "http://cdn/p"); err != nil {
		t.Fatal(err)
	}
	live := testSpec()
	live.Live = true
	text, err = GenerateMPDTimeline(live, "http://cdn/p")
	if err != nil {
		t.Fatal(err)
	}
	lm, err := Parse("http://cdn/p/v123.mpd", text)
	if err != nil {
		t.Fatal(err)
	}
	if !lm.Live || lm.ChunkCount() != live.ChunkCount() {
		t.Fatalf("live timeline manifest wrong: live=%v chunks=%d", lm.Live, lm.ChunkCount())
	}
	if _, err := GenerateMPDTimeline(&Spec{}, "http://cdn/p"); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

func strconvItoa(v int64) string { return fmt.Sprintf("%d", v) }
