// Package manifest implements the streaming-protocol substrate of the
// video management plane: generation and parsing of manifests for the
// four HTTP streaming protocols the paper studies — Apple HLS (.m3u8),
// MPEG-DASH (.mpd), Microsoft SmoothStreaming (.ism), and Adobe HDS
// (.f4m) — together with the protocol-inference rule of Table 1, which
// maps a view's manifest URL to the protocol that served it.
//
// Manifests are real: the HLS generator emits RFC 8216-style playlists
// and the XML protocols emit well-formed documents that the package's
// own parsers (and, for the subset used, real players) understand. The
// playback engine fetches and parses these manifests exactly as the
// paper's instrumented players would, so protocol inference in the
// analytics layer is exercised against genuine artifacts rather than
// labels.
package manifest

import (
	"errors"
	"fmt"
	"strings"
)

// Protocol identifies a streaming protocol, or the non-HTTP delivery
// modes the paper's inference must recognize (RTMP, progressive
// download).
type Protocol int

// The protocols of Table 1, plus RTMP and progressive download (the two
// exceptions called out in §3), plus Unknown for unrecognized URLs.
const (
	Unknown Protocol = iota
	HLS
	DASH
	Smooth
	HDS
	RTMP
	Progressive
)

// HTTPProtocols lists the four HTTP streaming protocols in the order
// the paper's figures present them.
var HTTPProtocols = []Protocol{HLS, DASH, Smooth, HDS}

// String returns the conventional name for the protocol.
func (p Protocol) String() string {
	switch p {
	case HLS:
		return "HLS"
	case DASH:
		return "DASH"
	case Smooth:
		return "SmoothStreaming"
	case HDS:
		return "HDS"
	case RTMP:
		return "RTMP"
	case Progressive:
		return "Progressive"
	default:
		return "Unknown"
	}
}

// ManifestExtension returns the canonical manifest file extension for
// HTTP streaming protocols (Table 1) and the empty string otherwise.
func (p Protocol) ManifestExtension() string {
	switch p {
	case HLS:
		return ".m3u8"
	case DASH:
		return ".mpd"
	case Smooth:
		return ".ism"
	case HDS:
		return ".f4m"
	default:
		return ""
	}
}

// InferProtocol implements Table 1: streaming-protocol inference from a
// view's manifest URL. HLS uses .m3u8/.m3u; DASH uses .mpd;
// SmoothStreaming uses .ism/.isml (often followed by "/manifest"); HDS
// uses .f4m. RTMP is detected from the URL scheme, and progressive
// downloads from media-file extensions (.mp4, .flv).
func InferProtocol(url string) Protocol {
	u := strings.ToLower(strings.TrimSpace(url))
	if strings.HasPrefix(u, "rtmp://") || strings.HasPrefix(u, "rtmps://") ||
		strings.HasPrefix(u, "rtmpe://") || strings.HasPrefix(u, "rtmpt://") {
		return RTMP
	}
	// Strip query and fragment; extensions are judged on the path.
	if i := strings.IndexAny(u, "?#"); i >= 0 {
		u = u[:i]
	}
	switch {
	case strings.HasSuffix(u, ".m3u8"), strings.HasSuffix(u, ".m3u"):
		return HLS
	case strings.HasSuffix(u, ".mpd"):
		return DASH
	case strings.HasSuffix(u, ".ism"), strings.HasSuffix(u, ".isml"),
		strings.HasSuffix(u, ".ism/manifest"), strings.HasSuffix(u, ".isml/manifest"):
		return Smooth
	case strings.HasSuffix(u, ".f4m"):
		return HDS
	case strings.HasSuffix(u, ".mp4"), strings.HasSuffix(u, ".flv"):
		return Progressive
	default:
		return Unknown
	}
}

// Rendition is one encoded bitrate of a video: the unit of adaptation.
type Rendition struct {
	BitrateKbps int    // video bitrate in Kbps
	Width       int    // pixels; zero when unknown
	Height      int    // pixels; zero when unknown
	Codec       string // e.g. "avc1.4d401f"
}

// Ladder is an ordered set of renditions, ascending by bitrate.
type Ladder []Rendition

// Bitrates returns the ladder's bitrates in Kbps, in ladder order.
func (l Ladder) Bitrates() []int {
	out := make([]int, len(l))
	for i, r := range l {
		out[i] = r.BitrateKbps
	}
	return out
}

// Max returns the highest bitrate in the ladder, or 0 for an empty one.
func (l Ladder) Max() int {
	max := 0
	for _, r := range l {
		if r.BitrateKbps > max {
			max = r.BitrateKbps
		}
	}
	return max
}

// Min returns the lowest bitrate in the ladder, or 0 for an empty one.
func (l Ladder) Min() int {
	if len(l) == 0 {
		return 0
	}
	min := l[0].BitrateKbps
	for _, r := range l[1:] {
		if r.BitrateKbps < min {
			min = r.BitrateKbps
		}
	}
	return min
}

// Spec describes a packaged video sufficiently to generate its manifest
// in any protocol.
type Spec struct {
	VideoID     string  // anonymized video identifier
	DurationSec float64 // total playback duration; ignored for live
	ChunkSec    float64 // chunk (segment) duration
	Ladder      Ladder  // video renditions, ascending bitrate
	AudioKbps   int     // audio bitrate
	Live        bool    // live stream vs video-on-demand
	// ByteRange packages each rendition as a single file addressed by
	// byte ranges instead of discrete chunk files (§2: "Some publishers
	// support byte-range addressing"). Only VoD content can use it.
	ByteRange bool
}

// Validate reports whether the spec can generate a well-formed
// manifest.
func (s *Spec) Validate() error {
	switch {
	case s.VideoID == "":
		return errors.New("manifest: empty video ID")
	case s.ChunkSec <= 0:
		return errors.New("manifest: non-positive chunk duration")
	case len(s.Ladder) == 0:
		return errors.New("manifest: empty ladder")
	case !s.Live && s.DurationSec <= 0:
		return errors.New("manifest: non-positive duration for VoD")
	case s.Live && s.ByteRange:
		return errors.New("manifest: byte-range addressing requires VoD content")
	}
	for i, r := range s.Ladder {
		if r.BitrateKbps <= 0 {
			return fmt.Errorf("manifest: rendition %d has non-positive bitrate", i)
		}
	}
	return nil
}

// ChunkCount returns the number of chunks a VoD spec packages into; for
// live specs it returns the size of the sliding window the generators
// advertise (a fixed small number, as real live playlists do).
func (s *Spec) ChunkCount() int {
	if s.Live {
		return liveWindowChunks
	}
	n := int(s.DurationSec / s.ChunkSec)
	if float64(n)*s.ChunkSec < s.DurationSec {
		n++
	}
	return n
}

// liveWindowChunks is the number of segments advertised in a live
// manifest's sliding window.
const liveWindowChunks = 5

// Manifest is the protocol-independent result of parsing any supported
// manifest: everything the control plane needs for adaptation (§2 —
// available bitrates, audio bitrate, chunk duration, chunk URLs).
type Manifest struct {
	Protocol  Protocol
	VideoID   string
	Ladder    Ladder
	AudioKbps int
	ChunkSec  float64
	Live      bool
	// ByteRange reports that chunks are byte ranges of one file per
	// rendition rather than separate objects.
	ByteRange bool
	// ChunkURL returns the URL for chunk i of rendition r. For parsed
	// master-only manifests (HLS) the URLs follow the referenced media
	// playlists' template.
	chunkURL func(rendition, chunk int) string
	chunks   int
}

// ChunkCount returns the number of addressable chunks per rendition.
func (m *Manifest) ChunkCount() int { return m.chunks }

// ChunkURL returns the URL of chunk i for the given rendition index. It
// panics when either index is out of range: the caller is driving
// playback and out-of-range fetches indicate a bug, not bad input.
func (m *Manifest) ChunkURL(rendition, chunk int) string {
	if rendition < 0 || rendition >= len(m.Ladder) {
		panic(fmt.Sprintf("manifest: rendition %d out of range [0,%d)", rendition, len(m.Ladder)))
	}
	if chunk < 0 || chunk >= m.chunks {
		panic(fmt.Sprintf("manifest: chunk %d out of range [0,%d)", chunk, m.chunks))
	}
	return m.chunkURL(rendition, chunk)
}

// ChunkRange returns the byte range of chunk i within the rendition's
// file for byte-range-addressed content: the (offset, length) a client
// puts in its HTTP Range header. It returns ok=false for chunked
// content, where ranges do not apply. Ranges follow the packaging
// arithmetic: length = (video+audio bitrate) × chunk duration / 8.
func (m *Manifest) ChunkRange(rendition, chunk int) (offset, length int64, ok bool) {
	if !m.ByteRange {
		return 0, 0, false
	}
	if rendition < 0 || rendition >= len(m.Ladder) {
		panic(fmt.Sprintf("manifest: rendition %d out of range [0,%d)", rendition, len(m.Ladder)))
	}
	if chunk < 0 || chunk >= m.chunks {
		panic(fmt.Sprintf("manifest: chunk %d out of range [0,%d)", chunk, m.chunks))
	}
	length = int64(float64(m.Ladder[rendition].BitrateKbps+m.AudioKbps) * 1000 * m.ChunkSec / 8)
	return int64(chunk) * length, length, true
}

// Generate renders the spec as manifest text in the given protocol.
// baseURL is the prefix under which chunk URLs are minted (typically a
// CDN host plus publisher path). It returns an error for protocols
// without a manifest format (RTMP, Progressive) and for invalid specs.
func Generate(p Protocol, spec *Spec, baseURL string) (string, error) {
	if err := spec.Validate(); err != nil {
		return "", err
	}
	base := strings.TrimSuffix(baseURL, "/")
	switch p {
	case HLS:
		return generateHLSMaster(spec, base), nil
	case DASH:
		return generateMPD(spec, base)
	case Smooth:
		return generateSmooth(spec, base)
	case HDS:
		return generateHDS(spec, base)
	default:
		return "", fmt.Errorf("manifest: protocol %v has no manifest format", p)
	}
}

// Parse decodes manifest text fetched from url, inferring the protocol
// from the URL per Table 1 and dispatching to the protocol's parser.
func Parse(url, text string) (*Manifest, error) {
	switch p := InferProtocol(url); p {
	case HLS:
		return parseHLSMaster(text)
	case DASH:
		return parseMPD(text)
	case Smooth:
		return parseSmooth(text)
	case HDS:
		return parseHDS(text)
	default:
		return nil, fmt.Errorf("manifest: cannot infer a parseable protocol from %q", url)
	}
}

// ManifestURL mints the canonical manifest URL for a video packaged in
// protocol p under baseURL (e.g. "http://cdn-a.example/pub7/v123.mpd",
// or ".../v123.ism/manifest" for SmoothStreaming, matching the sample
// URLs of Table 1).
func ManifestURL(p Protocol, baseURL, videoID string) string {
	base := strings.TrimSuffix(baseURL, "/")
	switch p {
	case Smooth:
		return fmt.Sprintf("%s/%s.ism/manifest", base, videoID)
	case RTMP:
		host := strings.TrimPrefix(strings.TrimPrefix(base, "http://"), "https://")
		return fmt.Sprintf("rtmp://%s/%s", host, videoID)
	case Progressive:
		return fmt.Sprintf("%s/%s.mp4", base, videoID)
	case HLS, DASH, HDS:
		return fmt.Sprintf("%s/%s%s", base, videoID, p.ManifestExtension())
	default:
		return fmt.Sprintf("%s/%s", base, videoID)
	}
}
