package manifest

import (
	"encoding/xml"
	"fmt"
	"strings"
)

// Microsoft SmoothStreaming manifest support. Smooth clients request
// the server manifest at <name>.ism/manifest and then fetch fragments
// at URLs built from the StreamIndex Url template:
// QualityLevels(<bitrate>)/Fragments(video=<timestamp>). Timestamps are
// in 100-nanosecond (HNS) units.

const smoothTimescale = 10_000_000 // 100ns units per second

type smoothXML struct {
	XMLName      xml.Name         `xml:"SmoothStreamingMedia"`
	MajorVersion int              `xml:"MajorVersion,attr"`
	MinorVersion int              `xml:"MinorVersion,attr"`
	Duration     int64            `xml:"Duration,attr"`
	TimeScale    int64            `xml:"TimeScale,attr"`
	IsLive       bool             `xml:"IsLive,attr,omitempty"`
	VideoID      string           `xml:"ID,attr"`
	Streams      []streamIndexXML `xml:"StreamIndex"`
}

type streamIndexXML struct {
	Type          string            `xml:"Type,attr"`
	Chunks        int               `xml:"Chunks,attr"`
	QualityLevels int               `xml:"QualityLevels,attr"`
	URL           string            `xml:"Url,attr"`
	Levels        []qualityLevelXML `xml:"QualityLevel"`
	Fragments     []fragmentXML     `xml:"c"`
}

type qualityLevelXML struct {
	Index     int    `xml:"Index,attr"`
	Bitrate   int    `xml:"Bitrate,attr"`
	MaxWidth  int    `xml:"MaxWidth,attr,omitempty"`
	MaxHeight int    `xml:"MaxHeight,attr,omitempty"`
	FourCC    string `xml:"FourCC,attr,omitempty"`
}

type fragmentXML struct {
	D int64 `xml:"d,attr"` // fragment duration in TimeScale units
}

// generateSmooth renders spec as a SmoothStreaming server manifest.
func generateSmooth(spec *Spec, base string) (string, error) {
	chunkHNS := int64(spec.ChunkSec * smoothTimescale)
	n := spec.ChunkCount()
	video := streamIndexXML{
		Type:          "video",
		Chunks:        n,
		QualityLevels: len(spec.Ladder),
		URL:           base + "/" + spec.VideoID + ".ism/QualityLevels({bitrate})/Fragments(video={start time})",
	}
	for i, r := range spec.Ladder {
		video.Levels = append(video.Levels, qualityLevelXML{
			Index:     i,
			Bitrate:   r.BitrateKbps * 1000,
			MaxWidth:  r.Width,
			MaxHeight: r.Height,
			FourCC:    "H264",
		})
	}
	for i := 0; i < n; i++ {
		video.Fragments = append(video.Fragments, fragmentXML{D: chunkHNS})
	}
	audio := streamIndexXML{
		Type:          "audio",
		Chunks:        n,
		QualityLevels: 1,
		URL:           base + "/" + spec.VideoID + ".ism/QualityLevels({bitrate})/Fragments(audio={start time})",
		Levels:        []qualityLevelXML{{Index: 0, Bitrate: spec.AudioKbps * 1000, FourCC: "AACL"}},
	}
	doc := smoothXML{
		MajorVersion: 2,
		MinorVersion: 2,
		Duration:     int64(spec.DurationSec * smoothTimescale),
		TimeScale:    smoothTimescale,
		IsLive:       spec.Live,
		VideoID:      spec.VideoID,
		Streams:      []streamIndexXML{video, audio},
	}
	out, err := xml.MarshalIndent(doc, "", "  ")
	if err != nil {
		return "", fmt.Errorf("manifest: marshaling Smooth manifest: %w", err)
	}
	return xml.Header + string(out) + "\n", nil
}

// parseSmooth decodes a SmoothStreaming manifest into the common form.
func parseSmooth(text string) (*Manifest, error) {
	var doc smoothXML
	if err := xml.Unmarshal([]byte(text), &doc); err != nil {
		return nil, fmt.Errorf("manifest: parsing Smooth manifest: %w", err)
	}
	ts := doc.TimeScale
	if ts == 0 {
		ts = smoothTimescale // spec default
	}
	m := &Manifest{Protocol: Smooth, VideoID: doc.VideoID, Live: doc.IsLive}
	var video *streamIndexXML
	for i := range doc.Streams {
		s := &doc.Streams[i]
		switch s.Type {
		case "video":
			video = s
		case "audio":
			if len(s.Levels) > 0 {
				m.AudioKbps = s.Levels[0].Bitrate / 1000
			}
		}
	}
	if video == nil || len(video.Levels) == 0 {
		return nil, fmt.Errorf("manifest: Smooth manifest has no video stream")
	}
	for _, l := range video.Levels {
		m.Ladder = append(m.Ladder, Rendition{
			BitrateKbps: l.Bitrate / 1000,
			Width:       l.MaxWidth,
			Height:      l.MaxHeight,
			Codec:       l.FourCC,
		})
	}
	if len(video.Fragments) == 0 {
		return nil, fmt.Errorf("manifest: Smooth video stream has no fragments")
	}
	m.chunks = len(video.Fragments)
	m.ChunkSec = float64(video.Fragments[0].D) / float64(ts)
	if m.ChunkSec <= 0 {
		return nil, fmt.Errorf("manifest: Smooth fragment with non-positive duration")
	}
	// Fragment start times are cumulative durations.
	starts := make([]int64, len(video.Fragments))
	var acc int64
	for i, f := range video.Fragments {
		starts[i] = acc
		acc += f.D
	}
	bitrates := make([]int, len(video.Levels))
	for i, l := range video.Levels {
		bitrates[i] = l.Bitrate
	}
	urlTpl := video.URL
	m.chunkURL = func(rendition, chunk int) string {
		u := strings.ReplaceAll(urlTpl, "{bitrate}", fmt.Sprint(bitrates[rendition]))
		return strings.ReplaceAll(u, "{start time}", fmt.Sprint(starts[chunk]))
	}
	return m, nil
}
