package manifest

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func testSpec() *Spec {
	return &Spec{
		VideoID:     "v123",
		DurationSec: 634.5,
		ChunkSec:    4,
		AudioKbps:   96,
		Ladder: Ladder{
			{BitrateKbps: 400, Width: 640, Height: 360, Codec: "avc1.42c01e"},
			{BitrateKbps: 1200, Width: 1280, Height: 720, Codec: "avc1.4d401f"},
			{BitrateKbps: 3500, Width: 1920, Height: 1080, Codec: "avc1.640028"},
		},
	}
}

// TestInferProtocolTable1 checks every row of Table 1, including the
// sample URLs printed in the paper.
func TestInferProtocolTable1(t *testing.T) {
	cases := []struct {
		url  string
		want Protocol
	}{
		{"http://x.akamaihd.net/master.m3u8", HLS},
		{"http://x.example.com/list.m3u", HLS},
		{"http://x.llwnd.net//Z53TiGRzq.mpd", DASH},
		{"http://x.level3.net/56.ism/manifest", Smooth},
		{"http://x.example.net/56.isml/manifest", Smooth},
		{"http://x.example.net/56.ism", Smooth},
		{"http://x.aws.com/cache/hds.f4m", HDS},
		{"rtmp://live.example.com/stream1", RTMP},
		{"rtmps://live.example.com/stream1", RTMP},
		{"http://x.example.com/video.mp4", Progressive},
		{"http://x.example.com/video.flv", Progressive},
		{"http://x.example.com/page.html", Unknown},
		{"", Unknown},
		{"HTTP://X.EXAMPLE.COM/MASTER.M3U8", HLS}, // case-insensitive
		{"http://x.example.com/a.mpd?token=abc", DASH},
		{"http://x.example.com/a.m3u8#frag", HLS},
	}
	for _, c := range cases {
		if got := InferProtocol(c.url); got != c.want {
			t.Errorf("InferProtocol(%q) = %v, want %v", c.url, got, c.want)
		}
	}
}

func TestProtocolStringsAndExtensions(t *testing.T) {
	for p, want := range map[Protocol]string{
		HLS: ".m3u8", DASH: ".mpd", Smooth: ".ism", HDS: ".f4m",
		RTMP: "", Progressive: "", Unknown: "",
	} {
		if got := p.ManifestExtension(); got != want {
			t.Errorf("%v.ManifestExtension() = %q, want %q", p, got, want)
		}
	}
	names := map[string]bool{}
	for _, p := range []Protocol{HLS, DASH, Smooth, HDS, RTMP, Progressive, Unknown} {
		if names[p.String()] {
			t.Errorf("duplicate protocol name %q", p.String())
		}
		names[p.String()] = true
	}
}

func TestManifestURLInferLoop(t *testing.T) {
	// The URL minted for each protocol must infer back to the same
	// protocol — the invariant that makes the analytics pipeline's
	// protocol attribution work.
	for _, p := range []Protocol{HLS, DASH, Smooth, HDS, RTMP, Progressive} {
		u := ManifestURL(p, "http://cdn-a.example/pub1", "v9")
		if got := InferProtocol(u); got != p {
			t.Errorf("InferProtocol(ManifestURL(%v)) = %v (url %q)", p, got, u)
		}
	}
}

func TestSpecValidate(t *testing.T) {
	if err := testSpec().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := []*Spec{
		{ChunkSec: 4, DurationSec: 10, Ladder: Ladder{{BitrateKbps: 1}}},               // no ID
		{VideoID: "v", DurationSec: 10, Ladder: Ladder{{BitrateKbps: 1}}},              // no chunk
		{VideoID: "v", ChunkSec: 4, DurationSec: 10},                                   // no ladder
		{VideoID: "v", ChunkSec: 4, Ladder: Ladder{{BitrateKbps: 1}}},                  // no duration, VoD
		{VideoID: "v", ChunkSec: 4, DurationSec: 10, Ladder: Ladder{{BitrateKbps: 0}}}, // zero bitrate
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
	live := &Spec{VideoID: "v", ChunkSec: 4, Live: true, Ladder: Ladder{{BitrateKbps: 100}}}
	if err := live.Validate(); err != nil {
		t.Errorf("live spec without duration rejected: %v", err)
	}
}

func TestChunkCount(t *testing.T) {
	s := testSpec() // 634.5s / 4s = 158.6 -> 159 chunks
	if got := s.ChunkCount(); got != 159 {
		t.Fatalf("ChunkCount = %d, want 159", got)
	}
	s.DurationSec = 8
	if got := s.ChunkCount(); got != 2 {
		t.Fatalf("ChunkCount(8s/4s) = %d, want 2", got)
	}
	s.Live = true
	if got := s.ChunkCount(); got != liveWindowChunks {
		t.Fatalf("live ChunkCount = %d, want %d", got, liveWindowChunks)
	}
}

func TestLadderAccessors(t *testing.T) {
	l := testSpec().Ladder
	if got := l.Bitrates(); len(got) != 3 || got[0] != 400 || got[2] != 3500 {
		t.Fatalf("Bitrates = %v", got)
	}
	if l.Max() != 3500 || l.Min() != 400 {
		t.Fatalf("Max/Min = %d/%d", l.Max(), l.Min())
	}
	var empty Ladder
	if empty.Max() != 0 || empty.Min() != 0 {
		t.Fatal("empty ladder Max/Min should be 0")
	}
}

// roundTrip generates and parses a manifest, asserting the adaptation
// metadata survives.
func roundTrip(t *testing.T, p Protocol, spec *Spec) *Manifest {
	t.Helper()
	base := "http://cdn-a.example/pub1"
	text, err := Generate(p, spec, base)
	if err != nil {
		t.Fatalf("Generate(%v): %v", p, err)
	}
	url := ManifestURL(p, base, spec.VideoID)
	m, err := Parse(url, text)
	if err != nil {
		t.Fatalf("Parse(%v): %v\nmanifest:\n%s", p, err, text)
	}
	if m.Protocol != p {
		t.Fatalf("parsed protocol %v, want %v", m.Protocol, p)
	}
	if len(m.Ladder) != len(spec.Ladder) {
		t.Fatalf("%v: parsed %d renditions, want %d", p, len(m.Ladder), len(spec.Ladder))
	}
	for i, r := range m.Ladder {
		if r.BitrateKbps != spec.Ladder[i].BitrateKbps {
			t.Errorf("%v rendition %d bitrate %d, want %d", p, i, r.BitrateKbps, spec.Ladder[i].BitrateKbps)
		}
	}
	if m.ChunkSec != spec.ChunkSec {
		t.Errorf("%v ChunkSec %v, want %v", p, m.ChunkSec, spec.ChunkSec)
	}
	if m.ChunkCount() != spec.ChunkCount() {
		t.Errorf("%v ChunkCount %d, want %d", p, m.ChunkCount(), spec.ChunkCount())
	}
	if m.Live != spec.Live {
		t.Errorf("%v Live %v, want %v", p, m.Live, spec.Live)
	}
	// Every chunk URL must be addressable and distinct per chunk.
	last := ""
	for c := 0; c < m.ChunkCount(); c += m.ChunkCount()/3 + 1 {
		u := m.ChunkURL(len(m.Ladder)-1, c)
		if u == "" || u == last {
			t.Fatalf("%v: degenerate chunk URL %q", p, u)
		}
		last = u
	}
	return m
}

func TestRoundTripAllProtocolsVoD(t *testing.T) {
	for _, p := range HTTPProtocols {
		p := p
		t.Run(p.String(), func(t *testing.T) { roundTrip(t, p, testSpec()) })
	}
}

func TestRoundTripAllProtocolsLive(t *testing.T) {
	for _, p := range HTTPProtocols {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			spec := testSpec()
			spec.Live = true
			roundTrip(t, p, spec)
		})
	}
}

func TestHLSMasterContent(t *testing.T) {
	text, err := Generate(HLS, testSpec(), "http://cdn-a.example/pub1")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"#EXTM3U",
		"#EXT-X-STREAM-INF:BANDWIDTH=496000,RESOLUTION=640x360",
		"#EXT-X-STREAM-INF:BANDWIDTH=3596000,RESOLUTION=1920x1080",
		"http://cdn-a.example/pub1/v123/r0.m3u8",
		`CODECS="avc1.4d401f"`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("HLS master missing %q:\n%s", want, text)
		}
	}
}

func TestHLSMediaPlaylist(t *testing.T) {
	spec := testSpec()
	text, err := GenerateHLSMedia(spec, 1, "http://cdn-a.example/pub1")
	if err != nil {
		t.Fatal(err)
	}
	p, err := ParseHLSMedia(text)
	if err != nil {
		t.Fatalf("ParseHLSMedia: %v", err)
	}
	if len(p.SegmentURIs) != spec.ChunkCount() {
		t.Fatalf("media playlist has %d segments, want %d", len(p.SegmentURIs), spec.ChunkCount())
	}
	if p.Live {
		t.Error("VoD playlist parsed as live (missing ENDLIST handling)")
	}
	// Total of EXTINF durations must equal the video duration.
	total := 0.0
	for _, d := range p.SegmentSecs {
		total += d
	}
	if diff := total - spec.DurationSec; diff > 0.01 || diff < -0.01 {
		t.Errorf("segment durations sum to %v, want %v", total, spec.DurationSec)
	}
	if p.TargetDuration != 4 {
		t.Errorf("TargetDuration = %d, want 4", p.TargetDuration)
	}
	if _, err := GenerateHLSMedia(spec, 9, "http://x"); err == nil {
		t.Error("out-of-range rendition accepted")
	}
}

func TestHLSMediaLive(t *testing.T) {
	spec := testSpec()
	spec.Live = true
	text, err := GenerateHLSMedia(spec, 0, "http://x")
	if err != nil {
		t.Fatal(err)
	}
	p, err := ParseHLSMedia(text)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Live {
		t.Error("live playlist must not carry #EXT-X-ENDLIST")
	}
}

func TestParseHLSMasterErrors(t *testing.T) {
	cases := map[string]string{
		"not a playlist":  "hello",
		"no variants":     "#EXTM3U\n",
		"uri without inf": "#EXTM3U\nhttp://x/v/r0.m3u8\n",
		"bad bandwidth":   "#EXTM3U\n#EXT-X-STREAM-INF:BANDWIDTH=abc\nhttp://x/r0.m3u8\n",
		"zero bandwidth":  "#EXTM3U\n#EXT-X-STREAM-INF:BANDWIDTH=0\nhttp://x/r0.m3u8\n",
	}
	for name, text := range cases {
		if _, err := parseHLSMaster(text); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestParseMPDErrors(t *testing.T) {
	cases := map[string]string{
		"not xml":   "nope",
		"no period": `<MPD xmlns="urn:mpeg:dash:schema:mpd:2011" type="static"></MPD>`,
		"no reps":   `<MPD type="static"><Period id="p0"></Period></MPD>`,
		"no tpl": `<MPD type="static" mediaPresentationDuration="PT10S"><Period id="p0">` +
			`<AdaptationSet contentType="video"><Representation id="r0" bandwidth="1000"/></AdaptationSet></Period></MPD>`,
	}
	for name, text := range cases {
		if _, err := parseMPD(text); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestParseISODuration(t *testing.T) {
	good := map[string]float64{
		"PT634.500S": 634.5,
		"PT1M30S":    90,
		"PT2H":       7200,
		"PT1H1M1S":   3661,
	}
	for in, want := range good {
		got, err := parseISODuration(in)
		if err != nil || got != want {
			t.Errorf("parseISODuration(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, in := range []string{"", "10S", "PT", "PTxS", "PT5", "PT0S"} {
		if _, err := parseISODuration(in); err == nil {
			t.Errorf("parseISODuration(%q) accepted", in)
		}
	}
}

func TestSmoothChunkURLs(t *testing.T) {
	m := roundTrip(t, Smooth, testSpec())
	u0 := m.ChunkURL(2, 0)
	u1 := m.ChunkURL(2, 1)
	if !strings.Contains(u0, "QualityLevels(3500000)") {
		t.Errorf("Smooth chunk URL missing bitrate: %q", u0)
	}
	if !strings.Contains(u0, "Fragments(video=0)") {
		t.Errorf("first fragment should start at 0: %q", u0)
	}
	if !strings.Contains(u1, fmt.Sprint(int64(4*smoothTimescale))) {
		t.Errorf("second fragment should start at one chunk duration: %q", u1)
	}
}

func TestHDSChunkURLs(t *testing.T) {
	m := roundTrip(t, HDS, testSpec())
	u := m.ChunkURL(0, 0)
	if !strings.HasSuffix(u, "Seg1-Frag1") {
		t.Errorf("HDS fragments are 1-indexed, got %q", u)
	}
}

func TestGenerateRejectsInvalid(t *testing.T) {
	bad := &Spec{}
	for _, p := range HTTPProtocols {
		if _, err := Generate(p, bad, "http://x"); err == nil {
			t.Errorf("%v accepted invalid spec", p)
		}
	}
	if _, err := Generate(RTMP, testSpec(), "http://x"); err == nil {
		t.Error("RTMP should have no manifest format")
	}
}

func TestParseUnknownURL(t *testing.T) {
	if _, err := Parse("http://x/thing.html", "whatever"); err == nil {
		t.Fatal("Parse should fail for un-inferable URLs")
	}
}

func TestChunkURLPanics(t *testing.T) {
	m := roundTrip(t, DASH, testSpec())
	for _, fn := range []func(){
		func() { m.ChunkURL(-1, 0) },
		func() { m.ChunkURL(0, -1) },
		func() { m.ChunkURL(99, 0) },
		func() { m.ChunkURL(0, 1_000_000) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range ChunkURL should panic")
				}
			}()
			fn()
		}()
	}
}

// Property: for any well-formed spec, DASH round-trips preserve ladder
// size and chunk count.
func TestRoundTripProperty(t *testing.T) {
	f := func(nLadder uint8, chunkTenths uint8, durTenths uint16, audio uint8) bool {
		n := int(nLadder%14) + 1
		spec := &Spec{
			VideoID:     "vq",
			ChunkSec:    float64(chunkTenths%40+10) / 10, // 1.0..4.9s
			DurationSec: float64(durTenths%12000+100) / 10,
			AudioKbps:   int(audio%128) + 32,
		}
		for i := 0; i < n; i++ {
			spec.Ladder = append(spec.Ladder, Rendition{BitrateKbps: 100 * (i + 1)})
		}
		for _, p := range HTTPProtocols {
			text, err := Generate(p, spec, "http://cdn/pub")
			if err != nil {
				return false
			}
			m, err := Parse(ManifestURL(p, "http://cdn/pub", spec.VideoID), text)
			if err != nil {
				return false
			}
			if len(m.Ladder) != n || m.ChunkCount() != spec.ChunkCount() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
