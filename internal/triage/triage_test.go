package triage

import (
	"testing"
	"testing/quick"

	"vmp/internal/dist"
	"vmp/internal/ecosystem"
	"vmp/internal/telemetry"
)

func TestCombinationString(t *testing.T) {
	cases := map[string]Combination{
		"(all traffic)":                {},
		"cdn=C":                        {CDN: "C"},
		"proto=HLS device=Roku":        {Protocol: "HLS", Device: "Roku"},
		"cdn=A proto=DASH device=Xbox": {CDN: "A", Protocol: "DASH", Device: "Xbox"},
	}
	for want, c := range cases {
		if got := c.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestCombinationArityAndGeneralizes(t *testing.T) {
	full := Combination{CDN: "C", Protocol: "Smooth", Device: "Chromecast"}
	if full.Arity() != 3 {
		t.Fatal("arity wrong")
	}
	for _, g := range []Combination{
		{CDN: "C"}, {Protocol: "Smooth"},
		{CDN: "C", Protocol: "Smooth"}, {CDN: "C", Device: "Chromecast"},
	} {
		if !g.generalizes(full) {
			t.Errorf("%v should generalize %v", g, full)
		}
	}
	for _, g := range []Combination{
		full,                        // equality is not generalization
		{CDN: "A"},                  // wrong value
		{Protocol: "HLS"},           // wrong value
		{CDN: "C", Protocol: "HLS"}, // partially wrong
	} {
		if g.generalizes(full) {
			t.Errorf("%v should not generalize %v", g, full)
		}
	}
	if !(Combination{CDN: "C"}).Matches(full) || !full.Matches(full) {
		t.Error("Matches should cover equality and generalization")
	}
}

func TestObserveRequiresFullCombination(t *testing.T) {
	tr := NewTriager()
	if err := tr.Observe(Combination{CDN: "A"}, false); err == nil {
		t.Fatal("partial combination accepted")
	}
	if err := tr.Observe(Combination{CDN: "A", Protocol: "HLS", Device: "Roku"}, true); err != nil {
		t.Fatal(err)
	}
	if tr.BaselineRate() != 1 {
		t.Fatalf("baseline = %v, want 1", tr.BaselineRate())
	}
	// One observation creates 7 projections.
	if got := tr.CombinationsTracked(); got != 7 {
		t.Fatalf("tracked %d combinations, want 7", got)
	}
}

// synthView fabricates a record for a combination.
func synthView(cdn, proto, dev string) telemetry.ViewRecord {
	url := "http://cdn/x.m3u8"
	switch proto {
	case "DASH":
		url = "http://cdn/x.mpd"
	case "SmoothStreaming":
		url = "http://cdn/x.ism/manifest"
	case "HDS":
		url = "http://cdn/x.f4m"
	}
	return telemetry.ViewRecord{
		Publisher: "p", VideoID: "v", URL: url,
		Device: dev, CDNs: []string{cdn}, ViewSec: 60,
	}
}

// population builds a balanced traffic mix over combinations.
func population(n int) []telemetry.ViewRecord {
	cdns := []string{"A", "B", "C"}
	protos := []string{"HLS", "DASH", "SmoothStreaming"}
	devs := []string{"Roku", "Chromecast", "iPhone", "HTML5"}
	out := make([]telemetry.ViewRecord, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, synthView(cdns[i%3], protos[(i/3)%3], devs[(i/9)%4]))
	}
	return out
}

// TestLocalizeTripleInteraction reproduces the paper's example: "a
// failure caused by the interaction between a Chromecast
// implementation using SmoothStreaming on a specific CDN". Only the
// triple is faulty; the triager must report the triple, not its parts.
func TestLocalizeTripleInteraction(t *testing.T) {
	recs := population(36000)
	inj, err := NewInjector(0.01, dist.NewSource(3), Fault{
		Match:    Combination{CDN: "C", Protocol: "SmoothStreaming", Device: "Chromecast"},
		FailProb: 0.6,
	})
	if err != nil {
		t.Fatal(err)
	}
	inj.Apply(recs)
	findings, tr, err := Run(recs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) == 0 {
		t.Fatal("no findings")
	}
	top := findings[0]
	want := Combination{CDN: "C", Protocol: "SmoothStreaming", Device: "Chromecast"}
	if top.Combination != want {
		t.Fatalf("top finding = %v, want %v (all findings: %v)", top.Combination, want, findings)
	}
	if top.LiftOverBaseline < 3 {
		t.Fatalf("lift = %v, want large", top.LiftOverBaseline)
	}
	// No finding should be a bare single attribute: the pairs/singles
	// containing the faulty triple are diluted by healthy traffic.
	for _, f := range findings {
		if f.Combination.Arity() == 1 {
			t.Fatalf("over-general finding %v", f.Combination)
		}
	}
	if tr.BaselineRate() <= 0 {
		t.Fatal("baseline should be positive")
	}
}

// TestLocalizeSingleCDNOutage: a whole-CDN fault must be reported at
// the CDN level, not exploded into its sub-combinations.
func TestLocalizeSingleCDNOutage(t *testing.T) {
	recs := population(36000)
	inj, err := NewInjector(0.01, dist.NewSource(5), Fault{
		Match:    Combination{CDN: "B"},
		FailProb: 0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	inj.Apply(recs)
	findings, _, err := Run(recs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("findings = %v, want exactly the CDN", findings)
	}
	if findings[0].Combination != (Combination{CDN: "B"}) {
		t.Fatalf("finding = %v, want cdn=B", findings[0].Combination)
	}
}

// TestLocalizePairInteraction: a CDN×protocol bug surfaces as the pair.
func TestLocalizePairInteraction(t *testing.T) {
	recs := population(36000)
	inj, err := NewInjector(0.01, dist.NewSource(7), Fault{
		Match:    Combination{CDN: "A", Protocol: "HLS"},
		FailProb: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	inj.Apply(recs)
	findings, _, err := Run(recs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) == 0 || findings[0].Combination != (Combination{CDN: "A", Protocol: "HLS"}) {
		t.Fatalf("findings = %v, want cdn=A proto=HLS first", findings)
	}
}

// TestLocalizeHealthyTraffic: uniform failures yield no findings.
func TestLocalizeHealthyTraffic(t *testing.T) {
	recs := population(20000)
	inj, err := NewInjector(0.02, dist.NewSource(9))
	if err != nil {
		t.Fatal(err)
	}
	inj.Apply(recs)
	findings, _, err := Run(recs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("healthy traffic produced findings: %v", findings)
	}
}

func TestLocalizeEmpty(t *testing.T) {
	if got := NewTriager().Localize(Config{}); got != nil {
		t.Fatalf("empty triager localized %v", got)
	}
}

func TestLocalizeMinSupport(t *testing.T) {
	tr := NewTriager()
	// A tiny, fully failing slice below the support threshold.
	for i := 0; i < 10; i++ {
		tr.Observe(Combination{CDN: "A", Protocol: "HLS", Device: "Roku"}, true)
	}
	for i := 0; i < 1000; i++ {
		tr.Observe(Combination{CDN: "B", Protocol: "DASH", Device: "Xbox"}, false)
	}
	if got := tr.Localize(Config{MinSupport: 50}); len(got) != 0 {
		t.Fatalf("under-supported slice reported: %v", got)
	}
	if got := tr.Localize(Config{MinSupport: 5}); len(got) == 0 {
		t.Fatal("lowering support should surface the slice")
	}
}

func TestInjectorValidation(t *testing.T) {
	src := dist.NewSource(1)
	if _, err := NewInjector(-0.1, src); err == nil {
		t.Error("negative base rate accepted")
	}
	if _, err := NewInjector(0.1, nil); err == nil {
		t.Error("nil source accepted")
	}
	if _, err := NewInjector(0.1, src, Fault{Match: Combination{}, FailProb: 0.5}); err == nil {
		t.Error("wildcard fault accepted")
	}
	if _, err := NewInjector(0.1, src, Fault{Match: Combination{CDN: "A"}, FailProb: 2}); err == nil {
		t.Error("probability > 1 accepted")
	}
}

func TestObserveRecordRequiresCDN(t *testing.T) {
	tr := NewTriager()
	rec := synthView("A", "HLS", "Roku")
	rec.CDNs = nil
	if err := tr.ObserveRecord(&rec); err == nil {
		t.Fatal("record without CDN accepted")
	}
}

// TestTriageOnEcosystemRecords runs the triager on real generated
// records with an injected CDN fault and verifies localization.
func TestTriageOnEcosystemRecords(t *testing.T) {
	e := ecosystem.New(ecosystem.Config{SnapshotStride: 59})
	recs := e.GenerateSnapshot(e.Schedule.Latest())
	inj, err := NewInjector(0.01, dist.NewSource(13), Fault{
		Match:    Combination{CDN: "D"},
		FailProb: 0.45,
	})
	if err != nil {
		t.Fatal(err)
	}
	inj.Apply(recs)
	findings, _, err := Run(recs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range findings {
		if f.Combination == (Combination{CDN: "D"}) {
			found = true
		}
		if f.Combination.CDN != "D" && f.Combination.CDN != "" {
			t.Errorf("spurious finding %v", f.Combination)
		}
	}
	if !found {
		t.Fatalf("CDN D fault not localized; findings = %v", findings)
	}
}

// Property: the triager's projection counts are consistent — every
// projection of an observed combination has at least as many views as
// the full combination.
func TestProjectionMonotonicityProperty(t *testing.T) {
	tr := NewTriager()
	src := dist.NewSource(21)
	cdns := []string{"A", "B"}
	protos := []string{"HLS", "DASH"}
	devs := []string{"Roku", "Xbox"}
	f := func(n uint8) bool {
		for i := 0; i < int(n); i++ {
			c := Combination{
				CDN:      cdns[src.Intn(2)],
				Protocol: protos[src.Intn(2)],
				Device:   devs[src.Intn(2)],
			}
			tr.Observe(c, src.Bool(0.1))
		}
		for _, cdn := range cdns {
			for _, p := range protos {
				full := Combination{CDN: cdn, Protocol: p, Device: "Roku"}
				if tr.Views(Combination{CDN: cdn}) < tr.Views(full) {
					return false
				}
				if tr.Views(Combination{CDN: cdn, Protocol: p}) < tr.Views(full) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
