package triage_test

import (
	"fmt"

	"vmp/internal/triage"
)

// ExampleTriager_Localize aggregates failure reports across
// management-plane combinations and localizes a CDN×protocol
// interaction bug.
func ExampleTriager_Localize() {
	tr := triage.NewTriager()
	devices := []string{"Roku", "iPhone", "HTML5"}
	for i := 0; i < 3000; i++ {
		c := triage.Combination{
			CDN:      []string{"A", "B"}[i%2],
			Protocol: []string{"HLS", "DASH"}[(i/2)%2],
			Device:   devices[i%3],
		}
		// CDN B's DASH packaging is broken; everything else is healthy.
		failed := c.CDN == "B" && c.Protocol == "DASH" && i%3 != 0
		tr.Observe(c, failed)
	}
	for _, f := range tr.Localize(triage.Config{}) {
		fmt.Printf("%s: %.0f%% failure rate\n", f.Combination, 100*f.FailureRate)
	}
	// Output:
	// cdn=B proto=DASH: 67% failure rate
}
