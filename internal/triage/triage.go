// Package triage implements failure triaging across management-plane
// combinations, the §5 task that motivates the combinations complexity
// metric: "A failure can be caused by one of the components (e.g., CDN
// or protocol), an interaction between two components (e.g., a
// specific CDN's implementation of HLS), or an interaction across all
// three components... Conviva triages failures automatically by
// aggregating failure reports across all management plane
// combinations."
//
// The triager aggregates per-view failure reports over every
// projection of the (CDN, protocol, device) triple and localizes root
// causes as the most general combinations whose failure rate is
// anomalously high — a hierarchical heavy-hitter search over the
// combination lattice.
package triage

import (
	"fmt"
	"sort"
	"sync"

	"vmp/internal/manifest"
	"vmp/internal/telemetry"
)

// Combination identifies a slice of the management plane: any subset
// of {CDN, protocol, device}, with empty strings as wildcards. The
// zero value matches all traffic.
type Combination struct {
	CDN      string
	Protocol string
	Device   string
}

// String renders the combination compactly, e.g. "cdn=C proto=HLS".
func (c Combination) String() string {
	if c == (Combination{}) {
		return "(all traffic)"
	}
	out := ""
	if c.CDN != "" {
		out += "cdn=" + c.CDN + " "
	}
	if c.Protocol != "" {
		out += "proto=" + c.Protocol + " "
	}
	if c.Device != "" {
		out += "device=" + c.Device + " "
	}
	return out[:len(out)-1]
}

// Arity returns how many attributes the combination pins (0-3).
func (c Combination) Arity() int {
	n := 0
	if c.CDN != "" {
		n++
	}
	if c.Protocol != "" {
		n++
	}
	if c.Device != "" {
		n++
	}
	return n
}

// generalizes reports whether g matches a superset of c's traffic: g's
// pinned attributes are a subset of c's with equal values.
func (g Combination) generalizes(c Combination) bool {
	if g.CDN != "" && g.CDN != c.CDN {
		return false
	}
	if g.Protocol != "" && g.Protocol != c.Protocol {
		return false
	}
	if g.Device != "" && g.Device != c.Device {
		return false
	}
	return g != c
}

// projections enumerates the 7 non-empty projections of a fully
// specified combination.
func projections(full Combination) []Combination {
	return []Combination{
		{CDN: full.CDN},
		{Protocol: full.Protocol},
		{Device: full.Device},
		{CDN: full.CDN, Protocol: full.Protocol},
		{CDN: full.CDN, Device: full.Device},
		{Protocol: full.Protocol, Device: full.Device},
		full,
	}
}

// Triager aggregates view outcomes per combination. It is safe for
// concurrent use.
type Triager struct {
	mu       sync.Mutex
	views    map[Combination]int64
	failures map[Combination]int64
	total    int64
	failed   int64
}

// NewTriager returns an empty aggregator.
func NewTriager() *Triager {
	return &Triager{
		views:    make(map[Combination]int64),
		failures: make(map[Combination]int64),
	}
}

// Observe records one view's outcome for a fully specified
// combination. Partially specified combinations are rejected: triaging
// needs full context per view.
func (t *Triager) Observe(full Combination, failed bool) error {
	if full.Arity() != 3 {
		return fmt.Errorf("triage: Observe needs a fully specified combination, got %v", full)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.total++
	if failed {
		t.failed++
	}
	for _, p := range projections(full) {
		t.views[p]++
		if failed {
			t.failures[p]++
		}
	}
	return nil
}

// ObserveRecord feeds one telemetry record, deriving the combination
// from the record's first CDN, inferred protocol, and device model.
func (t *Triager) ObserveRecord(r *telemetry.ViewRecord) error {
	if len(r.CDNs) == 0 {
		return fmt.Errorf("triage: record without CDN")
	}
	return t.Observe(Combination{
		CDN:      r.CDNs[0],
		Protocol: manifest.InferProtocol(r.URL).String(),
		Device:   r.Device,
	}, r.Failed)
}

// BaselineRate returns the overall failure rate.
func (t *Triager) BaselineRate() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.total == 0 {
		return 0
	}
	return float64(t.failed) / float64(t.total)
}

// Views returns the observed view count for a combination.
func (t *Triager) Views(c Combination) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.views[c]
}

// Finding is one localized root cause.
type Finding struct {
	Combination Combination
	Views       int64
	Failures    int64
	FailureRate float64
	// LiftOverBaseline is FailureRate divided by the failure rate of
	// the slice's complement (all other traffic), so a large faulty
	// slice does not dilute its own anomaly signal.
	LiftOverBaseline float64
}

// Config tunes localization.
type Config struct {
	// MinSupport is the minimum views a combination needs before it
	// can be reported (guards against noise); zero defaults to 50.
	MinSupport int64
	// MinLift is the failure-rate multiple over baseline that makes a
	// combination anomalous; zero defaults to 3.
	MinLift float64
	// MinRate is an absolute failure-rate floor; zero defaults to 0.05.
	MinRate float64
}

func (c *Config) defaults() {
	if c.MinSupport <= 0 {
		c.MinSupport = 50
	}
	if c.MinLift <= 0 {
		c.MinLift = 3
	}
	if c.MinRate <= 0 {
		c.MinRate = 0.05
	}
}

// Localize reports the root-cause combinations: anomalous slices whose
// anomaly is not explained by any more general anomalous slice. The
// result is ordered by lift, highest first.
func (t *Triager) Localize(cfg Config) []Finding {
	cfg.defaults()
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.total == 0 {
		return nil
	}
	// Walk combinations in a canonical order so the findings slice —
	// and every downstream tie-break — never depends on map iteration.
	keys := make([]string, 0, len(t.views))
	byKey := make(map[string]Combination, len(t.views))
	for c := range t.views {
		k := c.CDN + "\x00" + c.Protocol + "\x00" + c.Device
		keys = append(keys, k)
		byKey[k] = c
	}
	sort.Strings(keys)
	var anomalous []Finding
	for _, k := range keys {
		c := byKey[k]
		v := t.views[c]
		if v < cfg.MinSupport {
			continue
		}
		rate := float64(t.failures[c]) / float64(v)
		if rate < cfg.MinRate {
			continue
		}
		// Compare against the complement: the failure rate of all
		// traffic outside this slice.
		restViews := t.total - v
		restFailures := t.failed - t.failures[c]
		restRate := 0.0
		if restViews > 0 {
			restRate = float64(restFailures) / float64(restViews)
		}
		if restRate <= 0 {
			restRate = 0.5 / float64(t.total) // no healthy failures: any rate is anomalous
		}
		if rate < cfg.MinLift*restRate {
			continue
		}
		anomalous = append(anomalous, Finding{
			Combination:      c,
			Views:            v,
			Failures:         t.failures[c],
			FailureRate:      rate,
			LiftOverBaseline: rate / restRate,
		})
	}
	// Two-way minimality over the combination lattice:
	//
	//  1. A specific finding is explained by a generalization with a
	//     comparable failure rate ("cdn=B proto=HLS" adds nothing when
	//     all of CDN B is down).
	//  2. A general finding is explained by a specific descendant when
	//     removing the descendant's traffic de-anomalizes the rest
	//     ("device=Chromecast" adds nothing when the failures are all
	//     inside one CDN×protocol×Chromecast interaction).
	var out []Finding
	for _, f := range anomalous {
		explained := false
		for _, g := range anomalous {
			if g.Combination.generalizes(f.Combination) && g.FailureRate >= 0.6*f.FailureRate {
				explained = true // rule 1
				break
			}
			if f.Combination.generalizes(g.Combination) {
				// Rule 2: residual slice after carving out descendant g.
				resViews := f.Views - g.Views
				if resViews <= 0 {
					// Coextensive slices: rule 1 drops the specific
					// one; the general survives as the explanation.
					continue
				}
				resRate := float64(f.Failures-g.Failures) / float64(resViews)
				restViews := t.total - f.Views
				restRate := 0.0
				if restViews > 0 {
					restRate = float64(t.failed-f.Failures) / float64(restViews)
				}
				if resRate < cfg.MinRate || resRate < cfg.MinLift*maxf(restRate, 0.5/float64(t.total)) {
					explained = true
					break
				}
			}
		}
		if !explained {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].LiftOverBaseline != out[j].LiftOverBaseline {
			return out[i].LiftOverBaseline > out[j].LiftOverBaseline
		}
		return out[i].Combination.String() < out[j].Combination.String()
	})
	return out
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// CombinationsTracked returns how many distinct combinations the
// triager has seen — the §5 intuition that triaging cost grows with
// the management plane's combination count.
func (t *Triager) CombinationsTracked() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.views)
}
