package triage

import (
	"fmt"

	"vmp/internal/dist"
	"vmp/internal/manifest"
	"vmp/internal/telemetry"
)

// Matches reports whether the (possibly partial) combination covers a
// fully specified one.
func (c Combination) Matches(full Combination) bool {
	return c == full || c.generalizes(full)
}

// Fault is an injected failure cause: traffic matching the combination
// fails with the given probability (in addition to the base rate).
type Fault struct {
	Match    Combination
	FailProb float64
}

// Injector stamps Failed flags onto view records: a base failure rate
// for all traffic plus elevated rates for specific management-plane
// combinations. It is the test harness's stand-in for the bugs §5
// describes (a CDN outage, a broken protocol implementation, a
// device-SDK interaction).
type Injector struct {
	BaseRate float64
	Faults   []Fault
	src      *dist.Source
}

// NewInjector builds an injector with deterministic randomness.
func NewInjector(baseRate float64, src *dist.Source, faults ...Fault) (*Injector, error) {
	if baseRate < 0 || baseRate > 1 {
		return nil, fmt.Errorf("triage: base rate %v out of [0,1]", baseRate)
	}
	if src == nil {
		return nil, fmt.Errorf("triage: nil randomness source")
	}
	for _, f := range faults {
		if f.FailProb < 0 || f.FailProb > 1 {
			return nil, fmt.Errorf("triage: fault %v probability %v out of [0,1]", f.Match, f.FailProb)
		}
		if f.Match.Arity() == 0 {
			return nil, fmt.Errorf("triage: fault must pin at least one attribute")
		}
	}
	return &Injector{BaseRate: baseRate, Faults: faults, src: src}, nil
}

// Apply stamps failures onto the records in place and returns how many
// views failed. A record fails if the base-rate draw or any matching
// fault's draw fires.
func (inj *Injector) Apply(recs []telemetry.ViewRecord) int {
	failed := 0
	for i := range recs {
		r := &recs[i]
		full := Combination{
			Protocol: manifest.InferProtocol(r.URL).String(),
			Device:   r.Device,
		}
		if len(r.CDNs) > 0 {
			full.CDN = r.CDNs[0]
		}
		fail := inj.src.Bool(inj.BaseRate)
		for _, f := range inj.Faults {
			if f.Match.Matches(full) && inj.src.Bool(f.FailProb) {
				fail = true
			}
		}
		r.Failed = fail
		if fail {
			failed++
		}
	}
	return failed
}

// Run ingests records into a fresh triager and localizes, the
// end-to-end triaging pipeline.
func Run(recs []telemetry.ViewRecord, cfg Config) ([]Finding, *Triager, error) {
	t := NewTriager()
	for i := range recs {
		if err := t.ObserveRecord(&recs[i]); err != nil {
			return nil, nil, err
		}
	}
	return t.Localize(cfg), t, nil
}
