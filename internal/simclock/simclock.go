// Package simclock provides the simulated measurement timeline used
// throughout the reproduction: a 27-month study window (January 2016 to
// March 2018) and the bi-weekly two-day snapshot schedule the paper uses
// to sample its dataset ("a sequence of two-day snapshots taken
// bi-weekly", §3).
//
// All library code takes time from this package rather than the wall
// clock so that every experiment is reproducible.
package simclock

import (
	"fmt"
	"time"
)

// Study window bounds. The paper's dataset spans January 2016 through
// March 2018 (27 months).
var (
	// StudyStart is the first instant of the study window.
	StudyStart = time.Date(2016, time.January, 1, 0, 0, 0, 0, time.UTC)
	// StudyEnd is the first instant after the study window.
	StudyEnd = time.Date(2018, time.April, 1, 0, 0, 0, 0, time.UTC)
)

// Day is the resolution of the simulated timeline.
const Day = 24 * time.Hour

// StudyDays returns the number of whole days in the study window.
func StudyDays() int { return int(StudyEnd.Sub(StudyStart) / Day) }

// DayIndex converts an instant to a zero-based day offset from
// StudyStart. Instants before StudyStart map to negative indices.
func DayIndex(t time.Time) int {
	return int(t.Sub(StudyStart) / Day)
}

// DayTime is the inverse of DayIndex: the first instant of day i.
func DayTime(i int) time.Time {
	return StudyStart.Add(time.Duration(i) * Day)
}

// MonthIndex returns the zero-based month offset of t from StudyStart
// (January 2016 = 0, March 2018 = 26).
func MonthIndex(t time.Time) int {
	return (t.Year()-StudyStart.Year())*12 + int(t.Month()) - int(StudyStart.Month())
}

// Snapshot is one sampling window of the dataset: a contiguous run of
// days, identified by a zero-based index in the study-wide schedule.
type Snapshot struct {
	Index int       // position in the schedule, 0-based
	Start time.Time // first instant of the window
	Days  int       // window length in days
}

// End returns the first instant after the snapshot window.
func (s Snapshot) End() time.Time { return s.Start.Add(time.Duration(s.Days) * Day) }

// Contains reports whether t falls inside the snapshot window.
func (s Snapshot) Contains(t time.Time) bool {
	return !t.Before(s.Start) && t.Before(s.End())
}

// Label returns a short human-readable identifier such as "2016-01-01#0".
func (s Snapshot) Label() string {
	return fmt.Sprintf("%s#%d", s.Start.Format("2006-01-02"), s.Index)
}

// Schedule is an ordered list of snapshots covering the study window.
type Schedule []Snapshot

// DefaultSchedule returns the paper's sampling plan: two-day snapshots
// taken every two weeks from StudyStart, with the final snapshot falling
// in March 2018 (the "latest snapshot" referenced by every per-snapshot
// figure).
func DefaultSchedule() Schedule {
	return MakeSchedule(14, 2)
}

// MakeSchedule builds a schedule with a snapshot of windowDays days
// every everyDays days, starting at StudyStart, such that every window
// fits entirely inside the study period. It panics on non-positive
// arguments, which indicate programmer error.
func MakeSchedule(everyDays, windowDays int) Schedule {
	if everyDays <= 0 || windowDays <= 0 {
		panic("simclock: non-positive schedule parameters")
	}
	var sched Schedule
	for d := 0; d+windowDays <= StudyDays(); d += everyDays {
		sched = append(sched, Snapshot{
			Index: len(sched),
			Start: DayTime(d),
			Days:  windowDays,
		})
	}
	return sched
}

// Latest returns the final snapshot of the schedule. It panics on an
// empty schedule.
func (sc Schedule) Latest() Snapshot {
	if len(sc) == 0 {
		panic("simclock: empty schedule")
	}
	return sc[len(sc)-1]
}

// At returns the snapshot whose window contains t along with true, or a
// zero Snapshot and false if t falls between windows or outside the
// study period.
func (sc Schedule) At(t time.Time) (Snapshot, bool) {
	for _, s := range sc {
		if s.Contains(t) {
			return s, true
		}
	}
	return Snapshot{}, false
}

// FractionThrough maps an instant to its relative position in the study
// window: 0 at StudyStart, 1 at StudyEnd, clamped outside the window.
// Adoption-trend models use this as their abscissa.
func FractionThrough(t time.Time) float64 {
	f := float64(t.Sub(StudyStart)) / float64(StudyEnd.Sub(StudyStart))
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}
