package simclock

import (
	"context"
	"sync"
	"time"
)

// Clock abstracts "what time is it now" for the operational plane: the
// live serving daemons need real time for epoch cadences, retry-after
// hints, and latency measurement, while their tests need a time source
// they control. Study code never uses a Clock — figures take time from
// the simulated schedule above — but serving code takes one by
// injection, which keeps the vmplint nondeterminism contract intact:
// the only wall-clock read in the module lives here, in the package
// that owns time.
type Clock interface {
	// Now returns the current instant. Wall clocks return readings
	// carrying Go's monotonic component, so Sub on two readings is a
	// safe duration measurement.
	Now() time.Time
}

type wallClock struct{}

func (wallClock) Now() time.Time { return time.Now() }

// Wall returns the process wall clock. This is the one sanctioned
// wall-clock source in the module; hand it to daemons at their
// entry points and inject a Manual clock everywhere in tests.
func Wall() Clock { return wallClock{} }

// Wait blocks for d or until ctx is done, whichever comes first, and
// reports ctx.Err() in the latter case. It is the module's sanctioned
// replacement for time.Sleep: a bare sleep can be neither cancelled
// nor observed (the ctxflow analyzer rejects it), while Wait lets
// shutdown interrupt retry backoffs and drains immediately.
func Wait(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// ManualClock is a Clock whose time only moves when the test advances
// it — explicitly via Advance, or implicitly via SetAutoAdvance. It is
// safe for concurrent use.
type ManualClock struct {
	mu   sync.Mutex
	t    time.Time
	step time.Duration
}

// NewManual returns a manual clock frozen at start.
func NewManual(start time.Time) *ManualClock {
	return &ManualClock{t: start}
}

// Now returns the clock's current instant, then steps the clock by
// the auto-advance amount (zero unless SetAutoAdvance was called).
func (c *ManualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := c.t
	c.t = c.t.Add(c.step)
	return t
}

// SetAutoAdvance makes every subsequent Now advance the clock by d
// after reading it. Tests of the tracing layer use this to get
// deterministic *nonzero* span durations from a fixed call sequence:
// each clock read lands exactly d after the previous one, so a
// repeated run produces byte-identical trace output. d <= 0 disables
// auto-advance.
func (c *ManualClock) SetAutoAdvance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d < 0 {
		d = 0
	}
	c.step = d
}

// Advance moves the clock forward by d.
func (c *ManualClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}
