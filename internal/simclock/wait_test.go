package simclock

import (
	"context"
	"testing"
	"time"
)

func TestWaitElapses(t *testing.T) {
	if err := Wait(context.Background(), time.Millisecond); err != nil {
		t.Fatalf("Wait(1ms) = %v, want nil", err)
	}
}

func TestWaitCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := Wait(ctx, time.Hour); err != context.Canceled {
		t.Fatalf("Wait on cancelled context = %v, want context.Canceled", err)
	}
}

func TestWaitNonPositive(t *testing.T) {
	if err := Wait(context.Background(), 0); err != nil {
		t.Fatalf("Wait(0) = %v, want nil", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := Wait(ctx, -time.Second); err != context.Canceled {
		t.Fatalf("Wait(cancelled, -1s) = %v, want context.Canceled", err)
	}
}
