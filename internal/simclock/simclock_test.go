package simclock

import (
	"testing"
	"time"
)

func TestStudyDays(t *testing.T) {
	// Jan 2016 .. Mar 2018 inclusive: 2016 is a leap year.
	want := 366 + 365 + 31 + 28 + 31 // 2016 + 2017 + Jan..Mar 2018
	if got := StudyDays(); got != want {
		t.Fatalf("StudyDays() = %d, want %d", got, want)
	}
}

func TestDayIndexRoundTrip(t *testing.T) {
	for _, i := range []int{0, 1, 59, 365, 366, StudyDays() - 1} {
		if got := DayIndex(DayTime(i)); got != i {
			t.Errorf("DayIndex(DayTime(%d)) = %d", i, got)
		}
	}
}

func TestDayIndexBeforeStart(t *testing.T) {
	if got := DayIndex(StudyStart.Add(-Day)); got != -1 {
		t.Fatalf("DayIndex(one day before start) = %d, want -1", got)
	}
}

func TestMonthIndex(t *testing.T) {
	cases := []struct {
		t    time.Time
		want int
	}{
		{StudyStart, 0},
		{time.Date(2016, 12, 15, 0, 0, 0, 0, time.UTC), 11},
		{time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC), 12},
		{time.Date(2018, 3, 31, 0, 0, 0, 0, time.UTC), 26},
	}
	for _, c := range cases {
		if got := MonthIndex(c.t); got != c.want {
			t.Errorf("MonthIndex(%v) = %d, want %d", c.t, got, c.want)
		}
	}
}

func TestDefaultScheduleShape(t *testing.T) {
	sched := DefaultSchedule()
	if len(sched) == 0 {
		t.Fatal("empty default schedule")
	}
	// Bi-weekly over 27 months: roughly 59 snapshots.
	if len(sched) < 55 || len(sched) > 62 {
		t.Fatalf("len(DefaultSchedule()) = %d, want ~59", len(sched))
	}
	for i, s := range sched {
		if s.Index != i {
			t.Fatalf("snapshot %d has Index %d", i, s.Index)
		}
		if s.Days != 2 {
			t.Fatalf("snapshot %d has Days %d, want 2", i, s.Days)
		}
		if s.End().After(StudyEnd) {
			t.Fatalf("snapshot %d (%v) extends past study end", i, s.Start)
		}
		if i > 0 && s.Start.Sub(sched[i-1].Start) != 14*Day {
			t.Fatalf("snapshot %d not 14 days after previous", i)
		}
	}
	// Latest snapshot must land in March 2018, the paper's "latest snapshot".
	latest := sched.Latest()
	if latest.Start.Year() != 2018 || latest.Start.Month() != time.March {
		t.Fatalf("latest snapshot starts %v, want March 2018", latest.Start)
	}
}

func TestSnapshotContains(t *testing.T) {
	s := Snapshot{Index: 3, Start: DayTime(10), Days: 2}
	if !s.Contains(DayTime(10)) || !s.Contains(DayTime(11).Add(23*time.Hour)) {
		t.Error("Contains should include both window days")
	}
	if s.Contains(DayTime(12)) || s.Contains(DayTime(9)) {
		t.Error("Contains should exclude days outside the window")
	}
}

func TestScheduleAt(t *testing.T) {
	sched := DefaultSchedule()
	if s, ok := sched.At(StudyStart.Add(time.Hour)); !ok || s.Index != 0 {
		t.Fatalf("At(start+1h) = %+v, %v; want snapshot 0", s, ok)
	}
	// Day 3 falls between snapshot 0 (days 0-1) and snapshot 1 (days 14-15).
	if _, ok := sched.At(DayTime(3)); ok {
		t.Fatal("At(day 3) should not match any snapshot")
	}
	if _, ok := sched.At(StudyEnd.Add(Day)); ok {
		t.Fatal("At(after end) should not match")
	}
}

func TestSnapshotLabel(t *testing.T) {
	s := Snapshot{Index: 7, Start: time.Date(2016, 4, 8, 0, 0, 0, 0, time.UTC), Days: 2}
	if got, want := s.Label(), "2016-04-08#7"; got != want {
		t.Fatalf("Label() = %q, want %q", got, want)
	}
}

func TestFractionThrough(t *testing.T) {
	if f := FractionThrough(StudyStart); f != 0 {
		t.Errorf("FractionThrough(start) = %v", f)
	}
	if f := FractionThrough(StudyEnd); f != 1 {
		t.Errorf("FractionThrough(end) = %v", f)
	}
	if f := FractionThrough(StudyStart.Add(-time.Hour)); f != 0 {
		t.Errorf("FractionThrough(before start) = %v, want clamp to 0", f)
	}
	if f := FractionThrough(StudyEnd.Add(time.Hour)); f != 1 {
		t.Errorf("FractionThrough(after end) = %v, want clamp to 1", f)
	}
	mid := FractionThrough(StudyStart.Add(StudyEnd.Sub(StudyStart) / 2))
	if mid < 0.49 || mid > 0.51 {
		t.Errorf("FractionThrough(mid) = %v, want ~0.5", mid)
	}
}

func TestMakeSchedulePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MakeSchedule(0, 2) should panic")
		}
	}()
	MakeSchedule(0, 2)
}
