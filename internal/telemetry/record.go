// Package telemetry reproduces the measurement substrate of the study:
// the per-view metadata records a Conviva-style monitoring library
// reports from inside publishers' players (§3), an in-memory store that
// supports the snapshot queries the analyses run, and an HTTP collector
// backend with a client sensor for wire-level ingestion.
package telemetry

import (
	"sort"
	"sync"

	"vmp/internal/simclock"
	"vmp/internal/telemetry/record"
)

// ViewRecord is the per-view metadata record (§3). The definition
// lives in the leaf package internal/telemetry/record so the wire
// codecs (internal/wire) can share it without an import cycle; the
// alias keeps telemetry.ViewRecord the canonical name everywhere else.
type ViewRecord = record.ViewRecord

// Store is an append-only, query-by-window view-record store: the
// simulation's stand-in for the collector backend's dataset. It is safe
// for concurrent use; Append keeps records ordered by timestamp
// internally via sort-on-read with invalidation, so bulk generation
// stays cheap. The sort runs once per append generation (a sync.Once
// replaced on Append), so concurrent readers share the read lock
// instead of serializing on the write lock. For read-heavy analysis,
// Freeze the store into an immutable Dataset.
type Store struct {
	mu       sync.RWMutex
	records  []ViewRecord
	sortOnce *sync.Once
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{sortOnce: new(sync.Once)} }

// Append adds records to the store.
func (s *Store) Append(records ...ViewRecord) {
	if len(records) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.records = append(s.records, records...)
	s.sortOnce = new(sync.Once)
}

// Len returns the number of records stored.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.records)
}

// ensureSorted orders records by timestamp. The first reader of an
// append generation pays for the sort (under the write lock); every
// other reader just waits on the Once and proceeds under RLock.
func (s *Store) ensureSorted() {
	s.mu.RLock()
	once := s.sortOnce
	s.mu.RUnlock()
	once.Do(func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		sort.SliceStable(s.records, func(i, j int) bool {
			return s.records[i].Timestamp.Before(s.records[j].Timestamp)
		})
	})
}

// Window returns the records whose timestamps fall inside the snapshot,
// as a copy safe to retain.
func (s *Store) Window(snap simclock.Snapshot) []ViewRecord {
	s.ensureSorted()
	s.mu.RLock()
	defer s.mu.RUnlock()
	lo := sort.Search(len(s.records), func(i int) bool {
		return !s.records[i].Timestamp.Before(snap.Start)
	})
	hi := sort.Search(len(s.records), func(i int) bool {
		return !s.records[i].Timestamp.Before(snap.End())
	})
	out := make([]ViewRecord, hi-lo)
	copy(out, s.records[lo:hi])
	return out
}

// All returns a copy of every record in timestamp order.
func (s *Store) All() []ViewRecord {
	s.ensureSorted()
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]ViewRecord, len(s.records))
	copy(out, s.records)
	return out
}

// Select returns the records matching keep, in timestamp order.
func (s *Store) Select(keep func(*ViewRecord) bool) []ViewRecord {
	s.ensureSorted()
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []ViewRecord
	for i := range s.records {
		if keep(&s.records[i]) {
			out = append(out, s.records[i])
		}
	}
	return out
}

// Publishers returns the distinct publisher IDs present, sorted.
func (s *Store) Publishers() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	set := make(map[string]struct{})
	for i := range s.records {
		set[s.records[i].Publisher] = struct{}{}
	}
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// TotalViewHours sums view-hours over the whole store.
func (s *Store) TotalViewHours() float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	total := 0.0
	for i := range s.records {
		total += s.records[i].ViewHours()
	}
	return total
}
