// Package telemetry reproduces the measurement substrate of the study:
// the per-view metadata records a Conviva-style monitoring library
// reports from inside publishers' players (§3), an in-memory store that
// supports the snapshot queries the analyses run, and an HTTP collector
// backend with a client sensor for wire-level ingestion.
package telemetry

import (
	"sort"
	"sync"
	"time"

	"vmp/internal/simclock"
)

// ViewRecord is the metadata of one video view, mirroring the dataset
// schema described in §3: anonymized publisher ID, a URL that retains
// the manifest file extension, device model and OS, user agent (browser
// views) or SDK and SDK version (app views), the CDN(s) used, the set
// of available bitrates, viewing time, and delivery performance
// (average bitrate and rebuffering time). The syndication fields carry
// §6's per-(publisher, video) owned/syndicated flag.
type ViewRecord struct {
	Timestamp time.Time `json:"ts"`
	Publisher string    `json:"pub"`   // anonymized publisher ID
	VideoID   string    `json:"video"` // anonymized video ID
	URL       string    `json:"url"`   // manifest URL, extension retained

	Device     string `json:"device"`           // e.g. "Roku", "iPhone", "HTML5"
	OS         string `json:"os"`               // e.g. "iOS", "RokuOS"
	UserAgent  string `json:"ua,omitempty"`     // browser views
	SDK        string `json:"sdk,omitempty"`    // app views: SDK family
	SDKVersion string `json:"sdkver,omitempty"` // app views: SDK version

	CDNs     []string `json:"cdns"` // CDNs used during the view (§3 fn. 4)
	Bitrates []int    `json:"bitrates"`
	ISP      string   `json:"isp"`
	ConnType string   `json:"conn"`
	Geo      string   `json:"geo"` // e.g. "US-CA"
	Live     bool     `json:"live"`

	Syndicated bool   `json:"synd"`            // owned vs syndicated (§6)
	ContentID  string `json:"content"`         // underlying title identity
	Owner      string `json:"owner,omitempty"` // owning publisher

	ViewSec        float64 `json:"viewsec"`
	AvgBitrateKbps float64 `json:"avgkbps"`
	RebufferSec    float64 `json:"rebufsec"`

	// Failed marks a view that never started or aborted on a fatal
	// error — the raw material of failure triaging (§5).
	Failed bool `json:"failed,omitempty"`

	// Weight is the number of real views this record represents. The
	// paper's dataset is a census of >100 billion views; the simulation
	// stores a stratified per-publisher sample and carries the
	// expansion factor here so view and view-hour totals are unbiased.
	// Zero means 1 (an unsampled record).
	Weight float64 `json:"weight,omitempty"`
}

// Views returns the number of real views the record represents.
func (r *ViewRecord) Views() float64 {
	if r.Weight <= 0 {
		return 1
	}
	return r.Weight
}

// ViewHours returns the view's contribution to view-hours, the paper's
// primary measure, expanded by the sampling weight.
func (r *ViewRecord) ViewHours() float64 { return r.Views() * r.ViewSec / 3600 }

// AppView reports whether the view came through an app (it carries an
// SDK) rather than a browser.
func (r *ViewRecord) AppView() bool { return r.SDK != "" }

// Store is an append-only, query-by-window view-record store: the
// simulation's stand-in for the collector backend's dataset. It is safe
// for concurrent use; Append keeps records ordered by timestamp
// internally via sort-on-read with invalidation, so bulk generation
// stays cheap. The sort runs once per append generation (a sync.Once
// replaced on Append), so concurrent readers share the read lock
// instead of serializing on the write lock. For read-heavy analysis,
// Freeze the store into an immutable Dataset.
type Store struct {
	mu       sync.RWMutex
	records  []ViewRecord
	sortOnce *sync.Once
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{sortOnce: new(sync.Once)} }

// Append adds records to the store.
func (s *Store) Append(records ...ViewRecord) {
	if len(records) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.records = append(s.records, records...)
	s.sortOnce = new(sync.Once)
}

// Len returns the number of records stored.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.records)
}

// ensureSorted orders records by timestamp. The first reader of an
// append generation pays for the sort (under the write lock); every
// other reader just waits on the Once and proceeds under RLock.
func (s *Store) ensureSorted() {
	s.mu.RLock()
	once := s.sortOnce
	s.mu.RUnlock()
	once.Do(func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		sort.SliceStable(s.records, func(i, j int) bool {
			return s.records[i].Timestamp.Before(s.records[j].Timestamp)
		})
	})
}

// Window returns the records whose timestamps fall inside the snapshot,
// as a copy safe to retain.
func (s *Store) Window(snap simclock.Snapshot) []ViewRecord {
	s.ensureSorted()
	s.mu.RLock()
	defer s.mu.RUnlock()
	lo := sort.Search(len(s.records), func(i int) bool {
		return !s.records[i].Timestamp.Before(snap.Start)
	})
	hi := sort.Search(len(s.records), func(i int) bool {
		return !s.records[i].Timestamp.Before(snap.End())
	})
	out := make([]ViewRecord, hi-lo)
	copy(out, s.records[lo:hi])
	return out
}

// All returns a copy of every record in timestamp order.
func (s *Store) All() []ViewRecord {
	s.ensureSorted()
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]ViewRecord, len(s.records))
	copy(out, s.records)
	return out
}

// Select returns the records matching keep, in timestamp order.
func (s *Store) Select(keep func(*ViewRecord) bool) []ViewRecord {
	s.ensureSorted()
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []ViewRecord
	for i := range s.records {
		if keep(&s.records[i]) {
			out = append(out, s.records[i])
		}
	}
	return out
}

// Publishers returns the distinct publisher IDs present, sorted.
func (s *Store) Publishers() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	set := make(map[string]struct{})
	for i := range s.records {
		set[s.records[i].Publisher] = struct{}{}
	}
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// TotalViewHours sums view-hours over the whole store.
func (s *Store) TotalViewHours() float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	total := 0.0
	for i := range s.records {
		total += s.records[i].ViewHours()
	}
	return total
}
