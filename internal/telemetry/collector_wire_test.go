package telemetry

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"vmp/internal/wire"
)

// wireRecs builds a batch with enough field diversity to exercise the
// string tables and list columns on the binary path.
func wireRecs(n int) []ViewRecord {
	base := time.Date(2016, 4, 1, 0, 0, 0, 0, time.UTC)
	recs := make([]ViewRecord, n)
	for i := range recs {
		r := rec(fmt.Sprintf("pub-%02d", i%7), i%28, 120+float64(i%300))
		r.Timestamp = base.Add(time.Duration(i) * 53 * time.Second)
		r.Geo = []string{"US", "DE", "BR"}[i%3]
		if i%5 == 0 {
			r.CDNs = []string{"A", "B"}
		}
		recs[i] = r
	}
	return recs
}

func postWire(t *testing.T, srv *httptest.Server, ct, ce string, body []byte) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/views", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", ct)
	if ce != "" {
		req.Header.Set("Content-Encoding", ce)
	}
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestCollectorBinaryIngest checks the collector speaks the same wire
// contract as the live server: binary frames (plain and gzipped) land
// in the store exactly as their JSONL equivalent would, unknown media
// types are 415s, and truncated frames are whole-batch 400s that bump
// the scan-error counter.
func TestCollectorBinaryIngest(t *testing.T) {
	c := NewCollector(nil)
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	recs := wireRecs(90)
	frame, err := wire.NewEncoder().AppendFrame(nil, recs[:60])
	if err != nil {
		t.Fatal(err)
	}
	resp := postWire(t, srv, wire.ContentTypeBinary, "", frame)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("binary ingest = %s", resp.Status)
	}

	tail, err := wire.NewEncoder().AppendFrame(nil, recs[60:])
	if err != nil {
		t.Fatal(err)
	}
	var gz bytes.Buffer
	gw := gzip.NewWriter(&gz)
	if _, err := gw.Write(tail); err != nil {
		t.Fatal(err)
	}
	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}
	resp = postWire(t, srv, wire.ContentTypeBinary, "gzip", gz.Bytes())
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("binary+gzip ingest = %s", resp.Status)
	}

	if got := c.Store().Len(); got != len(recs) {
		t.Fatalf("store has %d records, want %d", got, len(recs))
	}
	// The store's contents must match a JSONL ingest of the same batch.
	ref := NewStore()
	ref.Append(recs...)
	if got, want := c.Store().All(), ref.All(); len(got) != len(want) {
		t.Fatalf("store mismatch: %d vs %d records", len(got), len(want))
	} else {
		for i := range got {
			if got[i].Publisher != want[i].Publisher || !got[i].Timestamp.Equal(want[i].Timestamp) {
				t.Fatalf("record %d differs: %+v vs %+v", i, got[i], want[i])
			}
		}
	}

	resp = postWire(t, srv, "application/xml", "", frame)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Fatalf("unknown media type = %s, want 415", resp.Status)
	}
	if got := c.scanErrors.Load(); got != 0 {
		t.Fatalf("415 counted as scan error: %d", got)
	}

	resp = postWire(t, srv, wire.ContentTypeBinary, "", frame[:len(frame)-5])
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("truncated frame = %s, want 400", resp.Status)
	}
	if got := c.scanErrors.Load(); got != 1 {
		t.Fatalf("scan_errors = %d, want 1", got)
	}
	if got := c.Store().Len(); got != len(recs) {
		t.Fatalf("rejected frame changed the store: %d records", got)
	}
}

// BenchmarkScanJSONL isolates the JSONL parse cost on the ingest path
// — the number the binary decoder's records/s is judged against.
func BenchmarkScanJSONL(b *testing.B) {
	recs := wireRecs(2000)
	var buf bytes.Buffer
	if err := EncodeJSONL(&buf, recs); err != nil {
		b.Fatal(err)
	}
	body := buf.Bytes()
	b.SetBytes(int64(len(body)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch, bad, err := ScanJSONL(bytes.NewReader(body))
		if err != nil || bad != 0 || len(batch) != len(recs) {
			b.Fatalf("scan: %d records, %d bad, err=%v", len(batch), bad, err)
		}
	}
	b.ReportMetric(float64(len(recs))*float64(b.N)/b.Elapsed().Seconds(), "records/s")
}
