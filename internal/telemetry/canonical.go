package telemetry

import (
	"slices"
	"sort"
	"strings"
)

// CompareRecords is a total order on view records: timestamp first,
// then every identifying and measure field. Its purpose is serving-
// plane determinism — records that arrive interleaved across shards
// sort into one canonical sequence, so a generation built from a
// record set is identical no matter the arrival order, and float
// accumulations over it are reproducible to the last ulp. Records that
// compare equal are field-for-field interchangeable, so their relative
// order cannot affect any aggregate.
func CompareRecords(a, b *ViewRecord) int {
	if c := a.Timestamp.Compare(b.Timestamp); c != 0 {
		return c
	}
	if c := strings.Compare(a.Publisher, b.Publisher); c != 0 {
		return c
	}
	if c := strings.Compare(a.VideoID, b.VideoID); c != 0 {
		return c
	}
	if c := strings.Compare(a.URL, b.URL); c != 0 {
		return c
	}
	if c := strings.Compare(a.Device, b.Device); c != 0 {
		return c
	}
	if c := strings.Compare(a.OS, b.OS); c != 0 {
		return c
	}
	if c := strings.Compare(a.UserAgent, b.UserAgent); c != 0 {
		return c
	}
	if c := strings.Compare(a.SDK, b.SDK); c != 0 {
		return c
	}
	if c := strings.Compare(a.SDKVersion, b.SDKVersion); c != 0 {
		return c
	}
	if c := strings.Compare(a.ISP, b.ISP); c != 0 {
		return c
	}
	if c := strings.Compare(a.ConnType, b.ConnType); c != 0 {
		return c
	}
	if c := strings.Compare(a.Geo, b.Geo); c != 0 {
		return c
	}
	if c := strings.Compare(a.ContentID, b.ContentID); c != 0 {
		return c
	}
	if c := strings.Compare(a.Owner, b.Owner); c != 0 {
		return c
	}
	if c := compareBool(a.Live, b.Live); c != 0 {
		return c
	}
	if c := compareBool(a.Syndicated, b.Syndicated); c != 0 {
		return c
	}
	if c := compareBool(a.Failed, b.Failed); c != 0 {
		return c
	}
	if c := compareFloat(a.ViewSec, b.ViewSec); c != 0 {
		return c
	}
	if c := compareFloat(a.AvgBitrateKbps, b.AvgBitrateKbps); c != 0 {
		return c
	}
	if c := compareFloat(a.RebufferSec, b.RebufferSec); c != 0 {
		return c
	}
	if c := compareFloat(a.Weight, b.Weight); c != 0 {
		return c
	}
	if c := slices.Compare(a.CDNs, b.CDNs); c != 0 {
		return c
	}
	return slices.Compare(a.Bitrates, b.Bitrates)
}

func compareBool(a, b bool) int {
	switch {
	case a == b:
		return 0
	case !a:
		return -1
	default:
		return 1
	}
}

func compareFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// CanonicalSort orders recs by CompareRecords in place. Because the
// order leads with the timestamp, a canonically sorted slice is also
// timestamp-sorted, so NewDataset preserves it as-is.
func CanonicalSort(recs []ViewRecord) {
	sort.Slice(recs, func(i, j int) bool { return CompareRecords(&recs[i], &recs[j]) < 0 })
}
