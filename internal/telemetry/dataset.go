package telemetry

import (
	"sort"
	"sync"

	"vmp/internal/device"
	"vmp/internal/manifest"
	"vmp/internal/simclock"
)

// DimColumn is one interned dimension of a frozen Dataset: for every
// record it stores the small-integer IDs of the dimension values the
// record contributes to (a protocol, a platform, the CDNs of the view).
// Columns let the analytics hot loops replace per-record string keys
// and map lookups with ID-indexed slice accumulation.
type DimColumn struct {
	names []string // id → dimension value
	offs  []int32  // record i owns ids[offs[i]:offs[i+1]]
	ids   []int32
}

// Cardinality returns the number of distinct dimension values.
func (c *DimColumn) Cardinality() int { return len(c.names) }

// Name returns the dimension value for an ID.
func (c *DimColumn) Name(id int32) string { return c.names[id] }

// IDs returns record i's dimension-value IDs as a read-only view.
func (c *DimColumn) IDs(i int) []int32 { return c.ids[c.offs[i]:c.offs[i+1]] }

// dimBuilder accumulates a DimColumn one record at a time.
type dimBuilder struct {
	index map[string]int32
	col   DimColumn
}

func newDimBuilder(n int) *dimBuilder {
	b := &dimBuilder{index: make(map[string]int32)}
	b.col.offs = make([]int32, 1, n+1)
	return b
}

func (b *dimBuilder) intern(name string) int32 {
	id, ok := b.index[name]
	if !ok {
		id = int32(len(b.col.names))
		b.index[name] = id
		b.col.names = append(b.col.names, name)
	}
	return id
}

// add appends one value to the current record.
func (b *dimBuilder) add(name string) { b.col.ids = append(b.col.ids, b.intern(name)) }

// addID appends an already-interned ID to the current record.
func (b *dimBuilder) addID(id int32) { b.col.ids = append(b.col.ids, id) }

// endRecord closes the current record's ID run.
func (b *dimBuilder) endRecord() { b.col.offs = append(b.col.offs, int32(len(b.col.ids))) }

// Dataset is an immutable, timestamp-sorted, read-optimized view of a
// record set: the analysis substrate the figure suite runs over.
// Window returns zero-copy sub-slices (the mutable Store copies on
// every call), per-record Views/ViewHours are precomputed columns, and
// the dimension keys the §4 analyses group by (publisher, protocol,
// platform, device model, CDN) are interned to small integer IDs.
// A Dataset is safe for concurrent use.
type Dataset struct {
	records   []ViewRecord
	views     []float64
	viewHours []float64

	pubNames []string
	pubIndex map[string]int32
	pubIDs   []int32

	protocol *DimColumn
	platform *DimColumn
	cdn      *DimColumn

	model         *DimColumn // device model of records with a known device
	modelPlatform []int32    // platform ID per model ID, parallel to model.names

	mu         sync.RWMutex
	windows    map[windowKey][2]int
	deviceCols map[string]*DimColumn
}

type windowKey struct {
	start int64
	days  int
}

// Freeze returns an immutable, analysis-optimized snapshot of the
// store's current contents. The frozen dataset does not observe later
// Appends.
func (s *Store) Freeze() *Dataset { return NewDataset(s.All()) }

// NewDataset builds a frozen dataset over recs, taking ownership of the
// slice. Records are sorted by timestamp if they are not already.
func NewDataset(recs []ViewRecord) *Dataset {
	if !sort.SliceIsSorted(recs, func(i, j int) bool {
		return recs[i].Timestamp.Before(recs[j].Timestamp)
	}) {
		sort.SliceStable(recs, func(i, j int) bool {
			return recs[i].Timestamp.Before(recs[j].Timestamp)
		})
	}
	n := len(recs)
	d := &Dataset{
		records:    recs,
		views:      make([]float64, n),
		viewHours:  make([]float64, n),
		pubIDs:     make([]int32, n),
		windows:    make(map[windowKey][2]int),
		deviceCols: make(map[string]*DimColumn),
	}
	d.pubIndex = make(map[string]int32)
	pubIndex := d.pubIndex
	protocols := newDimBuilder(n)
	platforms := newDimBuilder(n)
	cdns := newDimBuilder(n)
	models := newDimBuilder(n)
	protoByURL := make(map[string]int32) // URL-level protocol memo
	for i := range recs {
		r := &recs[i]
		d.views[i] = r.Views()
		d.viewHours[i] = r.ViewHours()
		pid, ok := pubIndex[r.Publisher]
		if !ok {
			pid = int32(len(d.pubNames))
			pubIndex[r.Publisher] = pid
			d.pubNames = append(d.pubNames, r.Publisher)
		}
		d.pubIDs[i] = pid
		protoID, ok := protoByURL[r.URL]
		if !ok {
			protoID = protocols.intern(manifest.InferProtocol(r.URL).String())
			protoByURL[r.URL] = protoID
		}
		protocols.addID(protoID)
		protocols.endRecord()
		if m, ok := device.ByName(r.Device); ok {
			platforms.add(m.Platform.String())
			mid := models.intern(m.Name)
			models.addID(mid)
			for int(mid) >= len(d.modelPlatform) {
				d.modelPlatform = append(d.modelPlatform, -1)
			}
			d.modelPlatform[mid] = platforms.index[m.Platform.String()]
		}
		platforms.endRecord()
		models.endRecord()
		for _, c := range r.CDNs {
			cdns.add(c)
		}
		cdns.endRecord()
	}
	d.protocol = &protocols.col
	d.platform = &platforms.col
	d.cdn = &cdns.col
	d.model = &models.col
	return d
}

// Len returns the number of records.
func (d *Dataset) Len() int { return len(d.records) }

// Record returns record i as a read-only pointer.
//
//vmp:hotpath
func (d *Dataset) Record(i int) *ViewRecord { return &d.records[i] }

// All returns every record in timestamp order as a read-only view.
func (d *Dataset) All() []ViewRecord { return d.records }

// ViewsAt returns the precomputed Views() of record i.
//
//vmp:hotpath
func (d *Dataset) ViewsAt(i int) float64 { return d.views[i] }

// ViewHoursAt returns the precomputed ViewHours() of record i.
//
//vmp:hotpath
func (d *Dataset) ViewHoursAt(i int) float64 { return d.viewHours[i] }

// NumPublishers returns the number of distinct publishers.
func (d *Dataset) NumPublishers() int { return len(d.pubNames) }

// PublisherID returns the interned publisher ID of record i.
//
//vmp:hotpath
func (d *Dataset) PublisherID(i int) int32 { return d.pubIDs[i] }

// PublisherName returns the publisher ID's original identifier.
func (d *Dataset) PublisherName(id int32) string { return d.pubNames[id] }

// PublisherIDOf returns the interned ID of a publisher identifier, or
// false if the dataset holds no records for it.
func (d *Dataset) PublisherIDOf(name string) (int32, bool) {
	id, ok := d.pubIndex[name]
	return id, ok
}

// ProtocolCol returns the streaming-protocol dimension (one value per
// record, inferred from the manifest URL as in Table 1).
func (d *Dataset) ProtocolCol() *DimColumn { return d.protocol }

// PlatformCol returns the platform dimension (empty for records whose
// device model is unknown, mirroring analytics.PlatformDim).
func (d *Dataset) PlatformCol() *DimColumn { return d.platform }

// CDNCol returns the CDN dimension (every CDN used during the view).
func (d *Dataset) CDNCol() *DimColumn { return d.cdn }

// DeviceCol returns the device-model dimension restricted to one
// platform category (the within-platform splits of Fig 10): records on
// other platforms contribute no values. Columns are built lazily and
// memoized per platform name.
func (d *Dataset) DeviceCol(platform string) *DimColumn {
	d.mu.RLock()
	col, ok := d.deviceCols[platform]
	d.mu.RUnlock()
	if ok {
		return col
	}
	var platformID int32 = -1
	for id, name := range d.platform.names {
		if name == platform {
			platformID = int32(id)
			break
		}
	}
	col = &DimColumn{names: d.model.names, offs: make([]int32, 1, len(d.records)+1)}
	for i := range d.records {
		for _, mid := range d.model.IDs(i) {
			if d.modelPlatform[mid] == platformID {
				col.ids = append(col.ids, mid)
			}
		}
		col.offs = append(col.offs, int32(len(col.ids)))
	}
	d.mu.Lock()
	if prev, ok := d.deviceCols[platform]; ok {
		col = prev
	} else {
		d.deviceCols[platform] = col
	}
	d.mu.Unlock()
	return col
}

// WindowBounds returns the half-open record-index range [lo, hi) whose
// timestamps fall inside the snapshot. Partitions are memoized per
// snapshot, so repeated figure passes over the same schedule pay the
// binary search once.
func (d *Dataset) WindowBounds(snap simclock.Snapshot) (lo, hi int) {
	k := windowKey{start: snap.Start.UnixNano(), days: snap.Days}
	d.mu.RLock()
	b, ok := d.windows[k]
	d.mu.RUnlock()
	if ok {
		return b[0], b[1]
	}
	lo = sort.Search(len(d.records), func(i int) bool {
		return !d.records[i].Timestamp.Before(snap.Start)
	})
	end := snap.End()
	hi = sort.Search(len(d.records), func(i int) bool {
		return !d.records[i].Timestamp.Before(end)
	})
	d.mu.Lock()
	d.windows[k] = [2]int{lo, hi}
	d.mu.Unlock()
	return lo, hi
}

// Window returns the records inside the snapshot as a zero-copy
// read-only sub-slice (contrast Store.Window, which copies).
func (d *Dataset) Window(snap simclock.Snapshot) []ViewRecord {
	lo, hi := d.WindowBounds(snap)
	return d.records[lo:hi]
}
