package telemetry

import (
	"reflect"
	"testing"

	"vmp/internal/simclock"
)

// frozenStore builds a store with out-of-order appends spanning two
// snapshot windows.
func frozenStore() (*Store, simclock.Schedule) {
	sched := simclock.MakeSchedule(14, 2)[:2]
	s := NewStore()
	r1 := rec("p1", 15, 3600)
	r1.URL = "http://cdn-b/p/v2.mpd"
	r1.CDNs = []string{"B", "C"}
	r2 := rec("p2", 0, 1800)
	r2.Weight = 4
	r3 := rec("p1", 1, 7200)
	r3.Device = "iPhone"
	s.Append(r1, r2) // append newest first to exercise sort-on-freeze
	s.Append(r3)
	return s, sched
}

func TestFreezeSortedAndColumns(t *testing.T) {
	s, _ := frozenStore()
	ds := s.Freeze()
	if ds.Len() != s.Len() {
		t.Fatalf("Len = %d, want %d", ds.Len(), s.Len())
	}
	for i := 1; i < ds.Len(); i++ {
		if ds.Record(i).Timestamp.Before(ds.Record(i - 1).Timestamp) {
			t.Fatalf("records not sorted at %d", i)
		}
	}
	for i := 0; i < ds.Len(); i++ {
		r := ds.Record(i)
		if got := ds.ViewsAt(i); got != r.Views() {
			t.Errorf("ViewsAt(%d) = %v, want %v", i, got, r.Views())
		}
		if got := ds.ViewHoursAt(i); got != r.ViewHours() {
			t.Errorf("ViewHoursAt(%d) = %v, want %v", i, got, r.ViewHours())
		}
		if got := ds.PublisherName(ds.PublisherID(i)); got != r.Publisher {
			t.Errorf("publisher round-trip at %d: %q != %q", i, got, r.Publisher)
		}
	}
	if ds.NumPublishers() != 2 {
		t.Errorf("NumPublishers = %d, want 2", ds.NumPublishers())
	}
	if _, ok := ds.PublisherIDOf("p2"); !ok {
		t.Error("PublisherIDOf(p2) missing")
	}
	if _, ok := ds.PublisherIDOf("nope"); ok {
		t.Error("PublisherIDOf invented a publisher")
	}
	// Protocol column: .m3u8 → HLS, .mpd → DASH.
	proto := ds.ProtocolCol()
	byName := map[string]int{}
	for i := 0; i < ds.Len(); i++ {
		for _, id := range proto.IDs(i) {
			byName[proto.Name(id)]++
		}
	}
	if byName["HLS"] != 2 || byName["DASH"] != 1 {
		t.Errorf("protocol counts = %v, want HLS:2 DASH:1", byName)
	}
	// CDN column keeps multi-CDN views.
	cdn := ds.CDNCol()
	last := cdn.IDs(ds.Len() - 1) // the day-15 record
	if len(last) != 2 {
		t.Errorf("multi-CDN record has %d CDN ids, want 2", len(last))
	}
}

func TestFreezeIsImmutableSnapshot(t *testing.T) {
	s, _ := frozenStore()
	ds := s.Freeze()
	n := ds.Len()
	s.Append(rec("p3", 20, 60))
	if ds.Len() != n {
		t.Fatalf("frozen dataset observed a later Append")
	}
	if s.Len() != n+1 {
		t.Fatalf("store lost the append")
	}
}

func TestDatasetWindowMatchesStore(t *testing.T) {
	s, sched := frozenStore()
	ds := s.Freeze()
	for _, snap := range sched {
		want := s.Window(snap)
		got := ds.Window(snap)
		if len(want) == 0 && len(got) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("window %s: dataset and store disagree", snap.Label())
		}
	}
}

func TestDatasetWindowZeroAlloc(t *testing.T) {
	s, sched := frozenStore()
	ds := s.Freeze()
	snap := sched[0]
	ds.Window(snap) // warm the memoized bounds
	allocs := testing.AllocsPerRun(100, func() {
		if ds.Window(snap) == nil {
			t.Fatal("empty window")
		}
	})
	if allocs > 0 {
		t.Errorf("Dataset.Window allocates %.1f objects/op on the warm path, want 0", allocs)
	}
}

func TestStoreReadsAfterAppendResort(t *testing.T) {
	s, sched := frozenStore()
	_ = s.Window(sched[0])   // force a sort
	late := rec("p9", 0, 60) // lands inside snapshot 0, appended out of order
	s.Append(late)
	recs := s.Window(sched[0])
	found := false
	for i := range recs {
		if recs[i].Publisher == "p9" {
			found = true
		}
	}
	if !found {
		t.Fatal("Window missed a record appended after the first sort")
	}
}
