package telemetry

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"

	"vmp/internal/manifest"
	"vmp/internal/obs"
	"vmp/internal/simclock"
	"vmp/internal/wire"
)

// ackBounds are the collector's ingest.ack SLO buckets, in seconds:
// POST arrival to the 202 acknowledgement. The collector has no WAL in
// front of the store, so its tail is shorter than the serving plane's.
var ackBounds = []float64{0.0001, 0.0005, 0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.5, 1}

// boolAttr renders a bool as a 0/1 span attribute.
func boolAttr(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// MaxLineBytes is the largest JSONL line the wire-level ingest paths
// accept; it lives in internal/wire with the rest of the codecs and
// is re-exported here for the storage-side callers.
const MaxLineBytes = wire.MaxLineBytes

// ScanJSONL reads JSON-lines view records from r with the module-wide
// MaxLineBytes line cap. Blank lines are skipped; lines that fail to
// parse or lack a publisher are counted in bad, not returned. A
// non-nil err (an oversized line or a transport read error) means the
// stream was cut short: batch holds the records scanned up to that
// point and the caller decides whether to keep them.
func ScanJSONL(r io.Reader) (batch []ViewRecord, bad int, err error) {
	return wire.ScanJSONL(r)
}

// Collector is the backend half of the monitoring pipeline: an HTTP
// service that ingests JSON-lines batches of view records (the wire
// format publishers' monitoring libraries report in) and accumulates
// them in a Store. Use NewCollector and mount Handler on any mux.
//
// The collector sits on the same observability substrate as the live
// serving plane: its ingest counters are obs.Counters in a Registry
// (so /v1/metrics serves them alongside any daemon-level metrics) and
// each batch gets an ingest.batch span with scan and store children
// when the tracer is enabled.
type Collector struct {
	store  *Store
	reg    *obs.Registry
	tracer *obs.Tracer
	clock  simclock.Clock
	series *obs.SeriesRing

	ingested   *obs.Counter
	rejected   *obs.Counter
	scanErrors *obs.Counter
	ackBinary  *obs.Histogram // ingest.ack SLO: POST arrival → 202, binary frames
	ackJSONL   *obs.Histogram // ingest.ack SLO: POST arrival → 202, JSONL

	// decoders recycles wire decoders across ingest requests; a
	// decoder's scratch is only reused after Store.Append has copied
	// the batch, which happens before the handler returns it.
	decoders sync.Pool
}

// NewCollector returns a collector backed by store with a private
// registry and a disabled tracer. A nil store gets a fresh one.
func NewCollector(store *Store) *Collector {
	return NewCollectorObs(store, nil, nil)
}

// NewCollectorObs returns a collector wired to an explicit registry
// and tracer, so a daemon can share one observability surface between
// the collector and its own instrumentation. A nil reg gets a fresh
// registry; a nil tr gets a disabled tracer.
func NewCollectorObs(store *Store, reg *obs.Registry, tr *obs.Tracer) *Collector {
	if store == nil {
		store = NewStore()
	}
	if reg == nil {
		reg = obs.NewRegistry()
	}
	if tr == nil {
		tr = obs.NewTracer(nil, 1)
		tr.SetEnabled(false)
	}
	c := &Collector{
		store:      store,
		reg:        reg,
		tracer:     tr,
		clock:      simclock.Wall(),
		ingested:   reg.Counter("collector_ingested_total"),
		rejected:   reg.Counter("collector_rejected_total"),
		scanErrors: reg.Counter("collector_scan_errors_total"),
		ackBinary:  reg.Histogram("collector_ingest_ack_binary_seconds", ackBounds),
		ackJSONL:   reg.Histogram("collector_ingest_ack_jsonl_seconds", ackBounds),
	}
	c.decoders.New = func() any { return wire.NewDecoder() }
	return c
}

// SetClock replaces the ack-latency time source (the wall clock by
// default). Call before serving; tests use a simclock.ManualClock so
// latency observations are deterministic.
func (c *Collector) SetClock(clock simclock.Clock) {
	if clock != nil {
		c.clock = clock
	}
}

// SetSeries attaches an in-process time-series ring; MountObs then
// serves it at /v1/series. Call before MountObs.
func (c *Collector) SetSeries(series *obs.SeriesRing) { c.series = series }

// Store returns the backing store.
func (c *Collector) Store() *Store { return c.store }

// Metrics returns the collector's registry.
func (c *Collector) Metrics() *obs.Registry { return c.reg }

// Tracer returns the collector's tracer.
func (c *Collector) Tracer() *obs.Tracer { return c.tracer }

// Handler returns the collector's HTTP handler:
//
//	POST /v1/views   — body is JSON-lines ViewRecords; returns 202
//	GET  /v1/stats   — ingestion counters as JSON
//	GET  /v1/summary — per-protocol and per-device view-hour shares
func (c *Collector) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/views", c.handleViews)
	mux.HandleFunc("/v1/stats", c.handleStats)
	mux.HandleFunc("/v1/summary", c.handleSummary)
	return mux
}

func (c *Collector) handleViews(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	defer func() { _ = r.Body.Close() }()
	ack := obs.StartWatch(c.clock)
	root := c.tracer.Start("ingest.batch", 0)
	ssp := c.tracer.Start("ingest.scan", root.ID())
	dec := c.decoders.Get().(*wire.Decoder)
	defer c.decoders.Put(dec)
	batch, bad, info, err := wire.DecodeBody(r.Header, r.Body, dec)
	ssp.End(obs.KV("records", int64(len(batch))), obs.KV("bad", int64(bad)),
		obs.KV("binary", boolAttr(info.Binary)), obs.KV("gzip", boolAttr(info.Gzip)),
		obs.KV("bytes", info.Bytes))
	if errors.Is(err, wire.ErrUnsupportedMedia) {
		root.End(obs.KV("unsupported_media", 1))
		http.Error(w, err.Error(), http.StatusUnsupportedMediaType)
		return
	}
	if err != nil {
		// The batch was cut short (oversized line, truncated or corrupt
		// binary frame, bad gzip, transport error): reject it whole,
		// and surface the event on the stats counters so a misbehaving
		// sensor is visible, not silent.
		c.scanErrors.Add(1)
		c.rejected.Add(int64(len(batch) + bad))
		c.tracer.Emit("batch_rejected",
			obs.KV("records", int64(len(batch)+bad)), obs.KV("scan_error", 1))
		root.End(obs.KV("rejected", int64(len(batch)+bad)), obs.KV("scan_error", 1))
		http.Error(w, fmt.Sprintf("read error: %v", err), http.StatusBadRequest)
		return
	}
	stsp := c.tracer.Start("ingest.store", root.ID())
	c.store.Append(batch...)
	stsp.End(obs.KV("records", int64(len(batch))))
	c.ingested.Add(int64(len(batch)))
	c.rejected.Add(int64(bad))
	c.tracer.Emit("batch_admitted",
		obs.KV("records", int64(len(batch))), obs.KV("rejected", int64(bad)))
	w.WriteHeader(http.StatusAccepted)
	fmt.Fprintf(w, `{"accepted":%d,"rejected":%d}`+"\n", len(batch), bad)
	// The ingest.ack SLO window closes at the 202, split by body
	// encoding so each wire path gets its own distribution.
	if info.Binary {
		ack.Stop(c.ackBinary)
	} else {
		ack.Stop(c.ackJSONL)
	}
	root.End(obs.KV("accepted", int64(len(batch))), obs.KV("rejected", int64(bad)))
}

func (c *Collector) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"ingested":%d,"rejected":%d,"scan_errors":%d,"stored":%d}`+"\n",
		c.ingested.Load(), c.rejected.Load(), c.scanErrors.Load(), c.store.Len())
}

// MountObs registers the shared observability endpoints (/v1/metrics,
// /metrics, /v1/series, /v1/trace, /debug/vmp) for the collector's
// registry, tracer, and series ring (SetSeries; absent one, /v1/series
// serves an empty ring) on mux. Handler deliberately does not call
// this: callers opt in, so a collector embedded in a larger daemon can
// expose one combined surface instead.
func (c *Collector) MountObs(mux *http.ServeMux) {
	obs.Mount(mux, c.reg, c.tracer, c.series)
}

// Summary is the /v1/summary payload: the coarse dataset breakdown a
// streaming-analytics dashboard leads with.
type Summary struct {
	Records        int                `json:"records"`
	Publishers     int                `json:"publishers"`
	ViewHours      float64            `json:"view_hours"`
	ProtocolVHPct  map[string]float64 `json:"protocol_vh_pct"`
	DeviceVHPct    map[string]float64 `json:"device_vh_pct"`
	LiveVHPct      float64            `json:"live_vh_pct"`
	FailedViewsPct float64            `json:"failed_views_pct"`
}

// Summarize computes the summary over the store's current contents.
func (c *Collector) Summarize() Summary {
	recs := c.store.All()
	s := Summary{
		Records:       len(recs),
		ProtocolVHPct: map[string]float64{},
		DeviceVHPct:   map[string]float64{},
	}
	pubs := map[string]struct{}{}
	var liveVH, views, failed float64
	for i := range recs {
		r := &recs[i]
		pubs[r.Publisher] = struct{}{}
		vh := r.ViewHours()
		s.ViewHours += vh
		s.ProtocolVHPct[manifest.InferProtocol(r.URL).String()] += vh
		s.DeviceVHPct[r.Device] += vh
		if r.Live {
			liveVH += vh
		}
		views += r.Views()
		if r.Failed {
			failed += r.Views()
		}
	}
	s.Publishers = len(pubs)
	if s.ViewHours > 0 {
		for k := range s.ProtocolVHPct {
			s.ProtocolVHPct[k] = 100 * s.ProtocolVHPct[k] / s.ViewHours
		}
		for k := range s.DeviceVHPct {
			s.DeviceVHPct[k] = 100 * s.DeviceVHPct[k] / s.ViewHours
		}
		s.LiveVHPct = 100 * liveVH / s.ViewHours
	}
	if views > 0 {
		s.FailedViewsPct = 100 * failed / views
	}
	return s
}

func (c *Collector) handleSummary(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	buf, err := json.Marshal(c.Summarize())
	if err != nil {
		http.Error(w, "encode error", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(append(buf, '\n'))
}

// Sensor is the client half: the monitoring library a publisher
// integrates with its video player (§3). It batches records and posts
// them to a collector endpoint.
type Sensor struct {
	endpoint string
	client   *http.Client
	batch    []ViewRecord
	batchMax int
}

// NewSensor returns a sensor posting to endpoint (the collector's
// /v1/views URL). batchMax bounds records per POST; values < 1 default
// to 100.
func NewSensor(endpoint string, client *http.Client, batchMax int) *Sensor {
	if client == nil {
		client = http.DefaultClient
	}
	if batchMax < 1 {
		batchMax = 100
	}
	return &Sensor{endpoint: endpoint, client: client, batchMax: batchMax}
}

// Report queues one view record, flushing if the batch is full.
func (s *Sensor) Report(rec ViewRecord) error {
	s.batch = append(s.batch, rec)
	if len(s.batch) >= s.batchMax {
		return s.Flush()
	}
	return nil
}

// Flush posts all queued records. It is a no-op on an empty batch.
func (s *Sensor) Flush() error {
	if len(s.batch) == 0 {
		return nil
	}
	var buf bytes.Buffer
	if err := EncodeJSONL(&buf, s.batch); err != nil {
		return err
	}
	resp, err := s.client.Post(s.endpoint, "application/x-ndjson", &buf)
	if err != nil {
		return fmt.Errorf("telemetry: posting views: %w", err)
	}
	// Drain so the connection can be reused; neither the drain nor the
	// close can lose data we care about.
	defer func() { _ = resp.Body.Close() }()
	_, _ = io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("telemetry: collector returned %s", resp.Status)
	}
	s.batch = s.batch[:0]
	return nil
}

// Pending returns the number of queued, unflushed records.
func (s *Sensor) Pending() int { return len(s.batch) }

// EncodeJSONL writes records to w as JSON lines.
func EncodeJSONL(w io.Writer, records []ViewRecord) error {
	return wire.EncodeJSONL(w, records)
}

// DecodeJSONL reads JSON-lines records from r until EOF.
func DecodeJSONL(r io.Reader) ([]ViewRecord, error) {
	return wire.DecodeJSONL(r)
}
