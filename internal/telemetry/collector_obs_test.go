package telemetry

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"vmp/internal/obs"
	"vmp/internal/simclock"
)

// TestCollectorObsSubstrate checks the collector reports through the
// shared obs registry and tracer: ingest counters land in /v1/metrics
// names, and an admitted batch leaves an ingest.batch span with scan
// and store children plus a batch_admitted event.
func TestCollectorObsSubstrate(t *testing.T) {
	reg := obs.NewRegistry()
	clk := simclock.NewManual(time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC))
	clk.SetAutoAdvance(time.Millisecond)
	tr := obs.NewTracer(clk, 64)
	c := NewCollectorObs(nil, reg, tr)

	mux := http.NewServeMux()
	mux.Handle("/", c.Handler())
	c.MountObs(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	body := `{"pub":"p1","video":"v1","url":"http://cdn/a.m3u8"}
not json
{"pub":"p2","video":"v2","url":"http://cdn/b.mpd"}
`
	resp, err := http.Post(srv.URL+"/v1/views", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}

	snap := reg.Snapshot()
	if snap.Counters["collector_ingested_total"] != 2 {
		t.Fatalf("ingested counter: %+v", snap.Counters)
	}
	if snap.Counters["collector_rejected_total"] != 1 {
		t.Fatalf("rejected counter: %+v", snap.Counters)
	}
	if snap.Counters["collector_scan_errors_total"] != 0 {
		t.Fatalf("scan errors counter: %+v", snap.Counters)
	}

	ts := tr.Snapshot()
	byName := map[string]obs.SpanJSON{}
	for _, sp := range ts.Spans {
		byName[sp.Name] = sp
	}
	root, ok := byName["ingest.batch"]
	if !ok {
		t.Fatalf("no ingest.batch span: %+v", ts.Spans)
	}
	for _, child := range []string{"ingest.scan", "ingest.store"} {
		sp, ok := byName[child]
		if !ok || sp.Parent != root.ID {
			t.Fatalf("span %s missing or unparented: %+v", child, ts.Spans)
		}
	}
	if byName["ingest.store"].Attrs["records"] != 2 {
		t.Fatalf("store span attrs: %+v", byName["ingest.store"])
	}
	if len(ts.Events) != 1 || ts.Events[0].Type != "batch_admitted" || ts.Events[0].Attrs["records"] != 2 {
		t.Fatalf("events: %+v", ts.Events)
	}

	// The legacy /v1/stats shape is unchanged.
	sresp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sresp.Body.Close() }()
	buf := make([]byte, 256)
	n, _ := sresp.Body.Read(buf)
	stats := string(buf[:n])
	if !strings.Contains(stats, `"ingested":2`) || !strings.Contains(stats, `"stored":2`) {
		t.Fatalf("stats payload: %s", stats)
	}
}

// TestCollectorDefaultObs checks NewCollector still works standalone:
// a private registry, a disabled tracer, zero tracing overhead.
func TestCollectorDefaultObs(t *testing.T) {
	c := NewCollector(nil)
	if c.Metrics() == nil {
		t.Fatal("nil registry")
	}
	if c.Tracer().Enabled() {
		t.Fatal("default tracer should be disabled")
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/v1/views", "application/x-ndjson",
		strings.NewReader(`{"pub":"p1","video":"v1","url":"http://cdn/a.m3u8"}`+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := c.Metrics().Snapshot().Counters["collector_ingested_total"]; got != 1 {
		t.Fatalf("ingested %d", got)
	}
	if ts := c.Tracer().Snapshot(); ts.SpansTotal != 0 {
		t.Fatalf("disabled tracer recorded %d spans", ts.SpansTotal)
	}
}
