package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"vmp/internal/simclock"
)

func rec(pub string, dayOffset int, viewSec float64) ViewRecord {
	return ViewRecord{
		Timestamp: simclock.DayTime(dayOffset),
		Publisher: pub,
		VideoID:   "v1",
		URL:       "http://cdn-a/p/v1.m3u8",
		Device:    "Roku",
		OS:        "RokuOS",
		SDK:       "RokuSDK",
		CDNs:      []string{"A"},
		Bitrates:  []int{400, 800},
		ViewSec:   viewSec,
	}
}

func TestViewHours(t *testing.T) {
	r := rec("p1", 0, 1800)
	if got := r.ViewHours(); got != 0.5 {
		t.Fatalf("ViewHours = %v, want 0.5", got)
	}
	if got := r.Views(); got != 1 {
		t.Fatalf("unweighted Views = %v, want 1", got)
	}
	r.Weight = 40
	if got := r.ViewHours(); got != 20 {
		t.Fatalf("weighted ViewHours = %v, want 20", got)
	}
	if got := r.Views(); got != 40 {
		t.Fatalf("Views = %v, want 40", got)
	}
}

func TestTotalViewHoursWeighted(t *testing.T) {
	s := NewStore()
	r := rec("p1", 0, 3600)
	r.Weight = 3
	s.Append(r)
	if got := s.TotalViewHours(); got != 3 {
		t.Fatalf("TotalViewHours = %v, want 3", got)
	}
}

func TestAppView(t *testing.T) {
	r := rec("p1", 0, 60)
	if !r.AppView() {
		t.Error("record with SDK should be an app view")
	}
	r.SDK = ""
	r.UserAgent = "Mozilla/5.0"
	if r.AppView() {
		t.Error("record without SDK is a browser view")
	}
}

func TestStoreWindow(t *testing.T) {
	s := NewStore()
	// Out-of-order appends must still window correctly.
	s.Append(rec("p1", 15, 100))
	s.Append(rec("p1", 0, 100), rec("p2", 1, 200))
	s.Append(rec("p3", 14, 300))
	sched := simclock.DefaultSchedule()
	w0 := s.Window(sched[0]) // days 0-1
	if len(w0) != 2 {
		t.Fatalf("window 0 has %d records, want 2", len(w0))
	}
	w1 := s.Window(sched[1]) // days 14-15
	if len(w1) != 2 {
		t.Fatalf("window 1 has %d records, want 2", len(w1))
	}
	if !w1[0].Timestamp.Before(w1[1].Timestamp) {
		t.Error("window records not time-ordered")
	}
}

func TestStoreWindowCopyIsSafe(t *testing.T) {
	s := NewStore()
	s.Append(rec("p1", 0, 100))
	w := s.Window(simclock.DefaultSchedule()[0])
	w[0].Publisher = "mutated"
	if s.All()[0].Publisher != "p1" {
		t.Fatal("Window leaked internal storage")
	}
}

func TestStorePublishersAndTotals(t *testing.T) {
	s := NewStore()
	s.Append(rec("pb", 0, 3600), rec("pa", 1, 7200), rec("pb", 2, 3600))
	pubs := s.Publishers()
	if len(pubs) != 2 || pubs[0] != "pa" || pubs[1] != "pb" {
		t.Fatalf("Publishers = %v", pubs)
	}
	if got := s.TotalViewHours(); got != 4 {
		t.Fatalf("TotalViewHours = %v, want 4", got)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestStoreSelect(t *testing.T) {
	s := NewStore()
	s.Append(rec("p1", 0, 100), rec("p2", 1, 100), rec("p1", 2, 100))
	got := s.Select(func(r *ViewRecord) bool { return r.Publisher == "p1" })
	if len(got) != 2 {
		t.Fatalf("Select returned %d, want 2", len(got))
	}
}

func TestStoreConcurrent(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s.Append(rec(fmt.Sprintf("p%d", g), i%100, 60))
				if i%10 == 0 {
					s.Window(simclock.DefaultSchedule()[0])
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 8*200 {
		t.Fatalf("Len = %d, want 1600", s.Len())
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	in := []ViewRecord{rec("p1", 0, 100), rec("p2", 3, 250)}
	in[0].Syndicated = true
	in[0].Owner = "p9"
	in[0].ContentID = "c7"
	var buf bytes.Buffer
	if err := EncodeJSONL(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := DecodeJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("decoded %d records", len(out))
	}
	if !out[0].Syndicated || out[0].Owner != "p9" || out[0].ContentID != "c7" {
		t.Fatalf("syndication fields lost: %+v", out[0])
	}
	if !out[0].Timestamp.Equal(in[0].Timestamp) {
		t.Error("timestamp did not round-trip")
	}
}

func TestDecodeJSONLBadInput(t *testing.T) {
	_, err := DecodeJSONL(strings.NewReader("{\"pub\":\"p\"}\nnot json\n"))
	if err == nil {
		t.Fatal("malformed JSONL accepted")
	}
}

func TestCollectorIngest(t *testing.T) {
	col := NewCollector(nil)
	srv := httptest.NewServer(col.Handler())
	defer srv.Close()

	var buf bytes.Buffer
	if err := EncodeJSONL(&buf, []ViewRecord{rec("p1", 0, 100), rec("p2", 1, 50)}); err != nil {
		t.Fatal(err)
	}
	// Include a malformed line and a record without a publisher.
	buf.WriteString("garbage\n{\"viewsec\":3}\n")
	resp, err := http.Post(srv.URL+"/v1/views", "application/x-ndjson", &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status = %s", resp.Status)
	}
	if col.Store().Len() != 2 {
		t.Fatalf("stored %d records, want 2", col.Store().Len())
	}

	stats, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer stats.Body.Close()
	var body bytes.Buffer
	body.ReadFrom(stats.Body)
	for _, want := range []string{`"ingested":2`, `"rejected":2`, `"stored":2`} {
		if !strings.Contains(body.String(), want) {
			t.Errorf("stats missing %s: %s", want, body.String())
		}
	}
}

func TestCollectorMethodChecks(t *testing.T) {
	col := NewCollector(nil)
	srv := httptest.NewServer(col.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/views")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/views = %s", resp.Status)
	}
	resp, err = http.Post(srv.URL+"/v1/stats", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/stats = %s", resp.Status)
	}
}

func TestCollectorSummary(t *testing.T) {
	col := NewCollector(nil)
	srv := httptest.NewServer(col.Handler())
	defer srv.Close()

	a := rec("p1", 0, 3600)         // 1 VH, HLS, Roku
	b := rec("p2", 1, 3600)         // 1 VH
	b.URL = "http://cdn-b/p/v1.mpd" // DASH
	b.Device = "AndroidPhone"
	b.Live = true
	b.Failed = true
	col.Store().Append(a, b)

	s := col.Summarize()
	if s.Records != 2 || s.Publishers != 2 || s.ViewHours != 2 {
		t.Fatalf("summary totals wrong: %+v", s)
	}
	if s.ProtocolVHPct["HLS"] != 50 || s.ProtocolVHPct["DASH"] != 50 {
		t.Fatalf("protocol shares wrong: %+v", s.ProtocolVHPct)
	}
	if s.DeviceVHPct["Roku"] != 50 {
		t.Fatalf("device shares wrong: %+v", s.DeviceVHPct)
	}
	if s.LiveVHPct != 50 || s.FailedViewsPct != 50 {
		t.Fatalf("live/failed shares wrong: %+v", s)
	}

	resp, err := http.Get(srv.URL + "/v1/summary")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got Summary
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Records != 2 || got.ProtocolVHPct["DASH"] != 50 {
		t.Fatalf("HTTP summary = %+v", got)
	}
	// Method check.
	post, err := http.Post(srv.URL+"/v1/summary", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/summary = %s", post.Status)
	}
}

func TestSummaryEmptyStore(t *testing.T) {
	s := NewCollector(nil).Summarize()
	if s.Records != 0 || s.ViewHours != 0 || s.LiveVHPct != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestSensorBatchingAndFlush(t *testing.T) {
	col := NewCollector(nil)
	srv := httptest.NewServer(col.Handler())
	defer srv.Close()

	sensor := NewSensor(srv.URL+"/v1/views", srv.Client(), 3)
	for i := 0; i < 2; i++ {
		if err := sensor.Report(rec("p1", i, 60)); err != nil {
			t.Fatal(err)
		}
	}
	if col.Store().Len() != 0 || sensor.Pending() != 2 {
		t.Fatal("sensor flushed before batch was full")
	}
	if err := sensor.Report(rec("p1", 2, 60)); err != nil {
		t.Fatal(err) // third report triggers auto-flush
	}
	if col.Store().Len() != 3 || sensor.Pending() != 0 {
		t.Fatalf("auto-flush failed: stored=%d pending=%d", col.Store().Len(), sensor.Pending())
	}
	// Explicit flush of an empty batch is a no-op.
	if err := sensor.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestSensorCollectorDown(t *testing.T) {
	sensor := NewSensor("http://127.0.0.1:1/v1/views", &http.Client{Timeout: 200 * time.Millisecond}, 1)
	if err := sensor.Report(rec("p1", 0, 60)); err == nil {
		t.Fatal("report to a dead collector should error")
	}
}

func TestNewSensorDefaults(t *testing.T) {
	s := NewSensor("http://x", nil, 0)
	if s.client == nil || s.batchMax != 100 {
		t.Fatalf("defaults not applied: %+v", s)
	}
}

func TestScanJSONLOversizedLine(t *testing.T) {
	// One good record, then a line exceeding MaxLineBytes: the scan
	// must stop with an error, not silently truncate the batch.
	var buf bytes.Buffer
	if err := EncodeJSONL(&buf, []ViewRecord{rec("p1", 0, 100)}); err != nil {
		t.Fatal(err)
	}
	buf.WriteString(strings.Repeat("x", MaxLineBytes+1) + "\n")
	batch, bad, err := ScanJSONL(&buf)
	if err == nil {
		t.Fatal("oversized line did not surface a scan error")
	}
	if len(batch) != 1 || bad != 0 {
		t.Fatalf("batch = %d records, bad = %d; want 1, 0", len(batch), bad)
	}
}

func TestCollectorRejectsOversizedLine(t *testing.T) {
	col := NewCollector(nil)
	srv := httptest.NewServer(col.Handler())
	defer srv.Close()

	var buf bytes.Buffer
	if err := EncodeJSONL(&buf, []ViewRecord{rec("p1", 0, 100)}); err != nil {
		t.Fatal(err)
	}
	buf.WriteString(strings.Repeat("x", MaxLineBytes+1) + "\n")
	resp, err := http.Post(srv.URL+"/v1/views", "application/x-ndjson", &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %s, want 400", resp.Status)
	}
	if col.Store().Len() != 0 {
		t.Fatalf("store kept %d records from a failed batch", col.Store().Len())
	}
	stats, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer stats.Body.Close()
	var body bytes.Buffer
	if _, err := body.ReadFrom(stats.Body); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"scan_errors":1`, `"rejected":1`, `"ingested":0`} {
		if !strings.Contains(body.String(), want) {
			t.Errorf("stats missing %s: %s", want, body.String())
		}
	}
}
