// Package record defines the per-view telemetry record — the one
// schema every layer of the pipeline speaks. It is a leaf package with
// no intra-module dependencies so that both the storage/analysis
// substrate (internal/telemetry) and the wire codecs (internal/wire)
// can share the type without an import cycle: telemetry's collector
// ingests through wire's negotiated decoders, and wire's binary frames
// decode straight into this layout.
package record

import "time"

// ViewRecord is the metadata of one video view, mirroring the dataset
// schema described in §3: anonymized publisher ID, a URL that retains
// the manifest file extension, device model and OS, user agent (browser
// views) or SDK and SDK version (app views), the CDN(s) used, the set
// of available bitrates, viewing time, and delivery performance
// (average bitrate and rebuffering time). The syndication fields carry
// §6's per-(publisher, video) owned/syndicated flag.
type ViewRecord struct {
	Timestamp time.Time `json:"ts"`
	Publisher string    `json:"pub"`   // anonymized publisher ID
	VideoID   string    `json:"video"` // anonymized video ID
	URL       string    `json:"url"`   // manifest URL, extension retained

	Device     string `json:"device"`           // e.g. "Roku", "iPhone", "HTML5"
	OS         string `json:"os"`               // e.g. "iOS", "RokuOS"
	UserAgent  string `json:"ua,omitempty"`     // browser views
	SDK        string `json:"sdk,omitempty"`    // app views: SDK family
	SDKVersion string `json:"sdkver,omitempty"` // app views: SDK version

	CDNs     []string `json:"cdns"` // CDNs used during the view (§3 fn. 4)
	Bitrates []int    `json:"bitrates"`
	ISP      string   `json:"isp"`
	ConnType string   `json:"conn"`
	Geo      string   `json:"geo"` // e.g. "US-CA"
	Live     bool     `json:"live"`

	Syndicated bool   `json:"synd"`            // owned vs syndicated (§6)
	ContentID  string `json:"content"`         // underlying title identity
	Owner      string `json:"owner,omitempty"` // owning publisher

	ViewSec        float64 `json:"viewsec"`
	AvgBitrateKbps float64 `json:"avgkbps"`
	RebufferSec    float64 `json:"rebufsec"`

	// Failed marks a view that never started or aborted on a fatal
	// error — the raw material of failure triaging (§5).
	Failed bool `json:"failed,omitempty"`

	// Weight is the number of real views this record represents. The
	// paper's dataset is a census of >100 billion views; the simulation
	// stores a stratified per-publisher sample and carries the
	// expansion factor here so view and view-hour totals are unbiased.
	// Zero means 1 (an unsampled record).
	Weight float64 `json:"weight,omitempty"`
}

// Views returns the number of real views the record represents.
//
//vmp:hotpath
func (r *ViewRecord) Views() float64 {
	if r.Weight <= 0 {
		return 1
	}
	return r.Weight
}

// ViewHours returns the view's contribution to view-hours, the paper's
// primary measure, expanded by the sampling weight.
//
//vmp:hotpath
func (r *ViewRecord) ViewHours() float64 { return r.Views() * r.ViewSec / 3600 }

// AppView reports whether the view came through an app (it carries an
// SDK) rather than a browser.
func (r *ViewRecord) AppView() bool { return r.SDK != "" }
