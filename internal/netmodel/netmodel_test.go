package netmodel

import (
	"math"
	"testing"

	"vmp/internal/dist"
)

func TestConnTypeStrings(t *testing.T) {
	if WiFi.String() != "WiFi" || Cellular.String() != "4G" || Wired.String() != "Wired" {
		t.Fatal("connection type names drifted from telemetry schema")
	}
	if ConnType(9).String() != "ConnType(9)" {
		t.Error("unknown conn type should format numerically")
	}
}

func TestISPRegistry(t *testing.T) {
	if len(ISPs) < 2 {
		t.Fatal("need at least ISP X and ISP Y for Fig 15/16")
	}
	x, ok := ISPByName("ISP-X")
	if !ok {
		t.Fatal("ISP-X missing")
	}
	y, ok := ISPByName("ISP-Y")
	if !ok {
		t.Fatal("ISP-Y missing")
	}
	if x.CapacityKbps <= y.CapacityKbps {
		t.Error("ISP-X should out-provision ISP-Y")
	}
	if _, ok := ISPByName("ISP-Q"); ok {
		t.Error("unknown ISP resolved")
	}
}

func TestPathProfileOrdering(t *testing.T) {
	isp, _ := ISPByName("ISP-X")
	wired := PathProfile(isp, Wired, 1.0)
	wifi := PathProfile(isp, WiFi, 1.0)
	cell := PathProfile(isp, Cellular, 1.0)
	if !(wired.MeanKbps > wifi.MeanKbps && wifi.MeanKbps > cell.MeanKbps) {
		t.Fatalf("capacity ordering violated: wired %v wifi %v cell %v",
			wired.MeanKbps, wifi.MeanKbps, cell.MeanKbps)
	}
	if !(cell.RTTms > wifi.RTTms && wifi.RTTms > wired.RTTms) {
		t.Fatalf("RTT ordering violated")
	}
}

func TestPathProfileCDNQuality(t *testing.T) {
	isp, _ := ISPByName("ISP-X")
	good := PathProfile(isp, WiFi, 1.0)
	bad := PathProfile(isp, WiFi, 0.5)
	if bad.MeanKbps >= good.MeanKbps {
		t.Error("poor CDN quality should reduce throughput")
	}
	if bad.RTTms <= good.RTTms {
		t.Error("poor CDN quality should increase RTT")
	}
	// Degenerate qualities clamp rather than break.
	if p := PathProfile(isp, WiFi, -1); p.MeanKbps <= 0 {
		t.Error("negative quality should clamp to a positive floor")
	}
	if p := PathProfile(isp, WiFi, 99); p.MeanKbps > good.MeanKbps*2 {
		t.Error("quality should clamp above")
	}
}

func TestTraceMedianNearMean(t *testing.T) {
	isp, _ := ISPByName("ISP-X")
	prof := PathProfile(isp, Wired, 1.0)
	tr := prof.NewTrace(dist.NewSource(7))
	var samples []float64
	for i := 0; i < 20000; i++ {
		samples = append(samples, tr.NextKbps())
	}
	// Long-run mean of the log-normal process should approximate
	// MeanKbps (the process is mean-corrected by sigma^2/2).
	sum := 0.0
	for _, s := range samples {
		sum += s
	}
	mean := sum / float64(len(samples))
	if mean < prof.MeanKbps*0.85 || mean > prof.MeanKbps*1.15 {
		t.Fatalf("trace mean %v vs profile mean %v", mean, prof.MeanKbps)
	}
}

func TestTraceCorrelation(t *testing.T) {
	isp, _ := ISPByName("ISP-Y")
	prof := PathProfile(isp, WiFi, 1.0)
	tr := prof.NewTrace(dist.NewSource(11))
	var xs []float64
	for i := 0; i < 5000; i++ {
		xs = append(xs, math.Log(tr.NextKbps()))
	}
	// Lag-1 autocorrelation of the log process should be near Rho.
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var num, den float64
	for i := 1; i < len(xs); i++ {
		num += (xs[i] - mean) * (xs[i-1] - mean)
	}
	for _, x := range xs {
		den += (x - mean) * (x - mean)
	}
	rho := num / den
	if rho < 0.7 || rho > 0.95 {
		t.Fatalf("lag-1 autocorrelation %v, want ~0.85", rho)
	}
}

func TestTraceFloor(t *testing.T) {
	// Even a terrible path never reports zero bandwidth.
	prof := Profile{MeanKbps: 60, Sigma: 2.0, Rho: 0.9, RTTms: 100}
	tr := prof.NewTrace(dist.NewSource(13))
	for i := 0; i < 10000; i++ {
		if v := tr.NextKbps(); v < 50 {
			t.Fatalf("bandwidth %v below floor", v)
		}
	}
}

func TestTraceDeterminism(t *testing.T) {
	isp, _ := ISPByName("ISP-Z")
	prof := PathProfile(isp, Cellular, 0.9)
	a := prof.NewTrace(dist.NewSource(42))
	b := prof.NewTrace(dist.NewSource(42))
	for i := 0; i < 100; i++ {
		if a.NextKbps() != b.NextKbps() {
			t.Fatal("traces with equal seeds diverged")
		}
	}
}

func TestDownloadSec(t *testing.T) {
	prof := Profile{MeanKbps: 8000, Sigma: 0.0001, Rho: 0, RTTms: 20}
	tr := prof.NewTrace(dist.NewSource(1))
	// 1 MB at ~8 Mbps ≈ 1 s + RTT.
	sec := tr.DownloadSec(1_000_000)
	if sec < 0.9 || sec > 1.2 {
		t.Fatalf("DownloadSec(1MB @8Mbps) = %v, want ~1.02", sec)
	}
	if rtt := tr.RTT(); rtt != 0.02 {
		t.Fatalf("RTT() = %v, want 0.02", rtt)
	}
}
