// Package netmodel simulates the last-mile network paths that video
// chunks traverse: per-(ISP, connection-type) bandwidth processes with
// temporal correlation, and round-trip-time models. §6 of the paper
// compares delivery performance across ISP×CDN slices (Figs 15 and 16);
// this package supplies the client side of those paths, while cdnsim
// supplies the CDN side.
package netmodel

import (
	"fmt"
	"math"

	"vmp/internal/dist"
)

// ConnType is the access-network type telemetry records for a view;
// the paper conditions bitrate comparisons on it ("WiFi, 4G, Wired").
type ConnType int

// Connection types.
const (
	WiFi ConnType = iota
	Cellular
	Wired
)

// ConnTypes lists all connection types.
var ConnTypes = []ConnType{WiFi, Cellular, Wired}

// String returns the telemetry name for the connection type.
func (c ConnType) String() string {
	switch c {
	case WiFi:
		return "WiFi"
	case Cellular:
		return "4G"
	case Wired:
		return "Wired"
	default:
		return fmt.Sprintf("ConnType(%d)", int(c))
	}
}

// ISP identifies an access network. The paper anonymizes ISPs as
// "ISP X", "ISP Y"; the simulation registers a small set with distinct
// capacity characteristics.
type ISP struct {
	Name string
	// CapacityKbps is the typical (median) downstream rate of the
	// ISP's wired subscribers.
	CapacityKbps float64
	// Jitter scales bandwidth variability on this ISP.
	Jitter float64
}

// ISPs is the simulation's access-network registry. ISP X is a
// high-capacity cable network; ISP Y a slower DSL-grade network; the
// rest fill out the population.
var ISPs = []ISP{
	{Name: "ISP-X", CapacityKbps: 24000, Jitter: 0.35},
	{Name: "ISP-Y", CapacityKbps: 9000, Jitter: 0.55},
	{Name: "ISP-Z", CapacityKbps: 16000, Jitter: 0.45},
	{Name: "ISP-W", CapacityKbps: 32000, Jitter: 0.30},
}

// ISPByName returns the registered ISP with the given name.
func ISPByName(name string) (ISP, bool) {
	for _, isp := range ISPs {
		if isp.Name == name {
			return isp, true
		}
	}
	return ISP{}, false
}

// connFactor scales ISP wired capacity by access type, and connRTT
// gives the access-network RTT contribution in milliseconds.
func connParams(c ConnType) (factor, rttMS, extraJitter float64) {
	switch c {
	case WiFi:
		return 0.70, 18, 0.10
	case Cellular:
		return 0.30, 55, 0.30
	default: // Wired
		return 1.0, 8, 0
	}
}

// Profile describes the stationary characteristics of one network path
// between a client and a CDN edge.
type Profile struct {
	MeanKbps float64 // median achievable throughput
	Sigma    float64 // log-domain standard deviation
	Rho      float64 // AR(1) correlation between consecutive chunks
	RTTms    float64 // round-trip time
}

// PathProfile composes a client access network with a CDN-side quality
// factor (1.0 = perfectly provisioned edge; lower values model poor
// peering or a distant edge) into a path profile.
func PathProfile(isp ISP, conn ConnType, cdnQuality float64) Profile {
	if cdnQuality <= 0 {
		cdnQuality = 0.01
	}
	if cdnQuality > 1.5 {
		cdnQuality = 1.5
	}
	factor, rtt, extra := connParams(conn)
	return Profile{
		MeanKbps: isp.CapacityKbps * factor * cdnQuality,
		Sigma:    isp.Jitter + extra,
		Rho:      0.85,
		RTTms:    rtt + 25*(1.1-math.Min(cdnQuality, 1.1)),
	}
}

// Trace is a realization of a path profile: a temporally correlated
// bandwidth process sampled once per chunk download.
type Trace struct {
	prof  Profile
	src   *dist.Source
	state float64 // AR(1) log-domain state
	init  bool
}

// NewTrace starts a bandwidth trace drawing randomness from src.
func (p Profile) NewTrace(src *dist.Source) *Trace {
	return &Trace{prof: p, src: src}
}

// NextKbps returns the achievable throughput for the next chunk
// download. The process is log-normal around MeanKbps with AR(1)
// correlation Rho, so congestion episodes persist across chunks the way
// real paths behave.
func (t *Trace) NextKbps() float64 {
	if !t.init {
		t.state = t.prof.Sigma * t.src.Norm()
		t.init = true
	} else {
		innovation := t.prof.Sigma * math.Sqrt(1-t.prof.Rho*t.prof.Rho) * t.src.Norm()
		t.state = t.prof.Rho*t.state + innovation
	}
	kbps := t.prof.MeanKbps * math.Exp(t.state-t.prof.Sigma*t.prof.Sigma/2)
	if kbps < 50 {
		kbps = 50 // floor: paths rarely stall to zero for a whole chunk
	}
	return kbps
}

// RTT returns the path round-trip time in seconds.
func (t *Trace) RTT() float64 { return t.prof.RTTms / 1000 }

// DownloadSec returns the simulated wall-clock time to fetch an object
// of the given size over the trace's next bandwidth sample: one RTT of
// request latency plus the transfer itself.
func (t *Trace) DownloadSec(bytes int64) float64 {
	kbps := t.NextKbps()
	return t.RTT() + float64(bytes)*8/(kbps*1000)
}
