package core

import (
	"fmt"
	"io"

	"vmp/internal/device"
	"vmp/internal/ecosystem"
)

// ScoreRow is one paper-versus-measured comparison with its acceptance
// band. Bands encode the *shape* criterion, not exact-value matching:
// the synthetic substrate cannot (and should not) match proprietary
// absolute numbers.
type ScoreRow struct {
	Experiment string
	Quantity   string
	Paper      float64
	Measured   float64
	Lo, Hi     float64
}

// Pass reports whether the measured value lies in the band.
func (r ScoreRow) Pass() bool { return r.Measured >= r.Lo && r.Measured <= r.Hi }

// Scorecard evaluates every headline quantity of the reproduction
// against its acceptance band, in figure order. It is the programmatic
// form of EXPERIMENTS.md and the regression gate for refactoring the
// generator.
func (s *Study) Scorecard() ([]ScoreRow, error) {
	var rows []ScoreRow
	add := func(exp, q string, paper, measured, lo, hi float64) {
		rows = append(rows, ScoreRow{Experiment: exp, Quantity: q,
			Paper: paper, Measured: measured, Lo: lo, Hi: hi})
	}

	macro := s.Macro()
	add("§3", "publishers observed", 100, float64(macro.Publishers), 100, 130)
	add("§3", "distinct geographies", 180, float64(macro.DistinctGeos), 150, 180)

	fig2a := s.Fig2a()
	add("Fig 2a", "HLS support latest (%pubs)", 91, fig2a.Latest("HLS"), 85, 98)
	add("Fig 2a", "DASH support latest (%pubs)", 43, fig2a.Latest("DASH"), 33, 52)
	add("Fig 2a", "HDS support latest (%pubs)", 19, fig2a.Latest("HDS"), 8, 28)
	fig2b := s.Fig2b()
	add("Fig 2b", "DASH view-hours latest (%)", 38, fig2b.Latest("DASH"), 33, 50)
	add("Fig 2b", "DASH view-hours first (%)", 3, fig2b.First("DASH"), 0.5, 10)
	add("Fig 2b", "RTMP view-hours first (%)", 1.6, fig2b.First("RTMP"), 0.2, 4)
	add("Fig 2b", "RTMP view-hours latest (%)", 0.1, fig2b.Latest("RTMP"), 0, 0.5)
	add("Fig 2c", "DASH VH excl. drivers latest (%)", 5, s.Fig2c().Latest("DASH"), 0, 10)

	fig3a := s.Fig3a()
	_, oneProtoVH := fig3a.At(1)
	add("Fig 3a", "1-protocol publishers' VH (%)", 10, oneProtoVH, 0, 15)
	fig3c := s.Fig3c()
	add("Fig 3c", "weighted avg protocols latest", 2.2, fig3c.Weighted[len(fig3c.Weighted)-1], 2.0, 2.8)

	fig6a := s.Fig6a()
	add("Fig 6a", "browser VH latest (%)", 25, fig6a.Latest("Browser"), 15, 30)
	add("Fig 6a", "set-top VH latest (%)", 40, fig6a.Latest("SetTop"), 33, 50)
	add("Fig 6a", "mobile VH latest (%)", 22, fig6a.Latest("Mobile"), 14, 30)
	add("Fig 6a", "smart-TV VH latest (%)", 5, fig6a.Latest("SmartTV"), 1, 7)
	fig6b := s.Fig6b()
	add("Fig 6b", "mobile minus set-top, excl. giants (%)", 10,
		fig6b.Latest("Mobile")-fig6b.Latest("SetTop"), 2, 40)
	add("Fig 6c", "set-top views latest (%)", 20, s.Fig6c().Latest("SetTop"), 12, 30)

	fig7 := s.Fig7()
	add("Fig 7", "set-top support latest (%pubs)", 55, fig7.Latest("SetTop"), 45, 75)
	add("Fig 7", "smart-TV support latest (%pubs)", 62, fig7.Latest("SmartTV"), 50, 85)

	fig9a := s.Fig9a()
	_, all5VH := fig9a.At(5)
	add("Fig 9a", "all-5-platform publishers' VH (%)", 60, all5VH, 60, 99)
	fig9c := s.Fig9c()
	add("Fig 9c", "weighted avg platforms latest", 4.5, fig9c.Weighted[len(fig9c.Weighted)-1], 4.0, 5.0)

	fig10a := s.Fig10(device.Browser)
	add("Fig 10a", "HTML5 browser VH latest (%)", 60, fig10a.Latest("HTML5"), 50, 72)
	add("Fig 10a", "Flash browser VH latest (%)", 40, fig10a.Latest("Flash"), 25, 50)
	fig10c := s.Fig10(device.SetTop)
	add("Fig 10c", "Roku set-top VH latest (%)", 54, fig10c.Latest("Roku"), 40, 65)

	fig11a := s.Fig11a()
	add("Fig 11a", "CDN A usage latest (%pubs)", 80, fig11a.Latest("A"), 70, 95)
	fig11b := s.Fig11b()
	add("Fig 11b", "CDN A VH latest (%)", 28, fig11b.Latest("A"), 18, 40)
	add("Fig 11b", "CDN B VH latest (%)", 30, fig11b.Latest("B"), 18, 40)
	add("Fig 11b", "CDN C VH latest (%)", 30, fig11b.Latest("C"), 18, 40)

	fig12a := s.Fig12a()
	onePub, oneVH := fig12a.At(1)
	add("Fig 12a", "single-CDN publishers (%pubs)", 40, onePub, 40, 55)
	add("Fig 12a", "single-CDN publishers' VH (%)", 5, oneVH, 0, 5)
	fivePub, fiveVH := fig12a.At(5)
	add("Fig 12a", "5-CDN publishers (%pubs)", 10, fivePub, 2, 10)
	add("Fig 12a", "5-CDN publishers' VH (%)", 50, fiveVH, 50, 80)
	fourPub, fourVH := fig12a.At(4)
	_ = fourPub
	add("Fig 12a", "4-5 CDN publishers' VH (%)", 80, fourVH+fiveVH, 70, 95)
	fig12c := s.Fig12c()
	add("Fig 12c", "weighted avg CDNs latest", 4.5, fig12c.Weighted[len(fig12c.Weighted)-1], 3.8, 5.0)

	fig13, err := s.Fig13()
	if err != nil {
		return nil, err
	}
	add("Fig 13a", "combinations factor per decade", 1.72, fig13.Combinations.PerDecadeFactor, 1.3, 2.6)
	add("Fig 13b", "protocol-titles factor per decade", 3.8, fig13.ProtocolTitles.PerDecadeFactor, 2.6, 5.2)
	add("Fig 13c", "unique-SDKs factor per decade", 1.8, fig13.UniqueSDKs.PerDecadeFactor, 1.3, 2.4)
	add("Fig 13c", "max code bases", 85, fig13.MaxUniqueSDKs, 40, 130)

	_, fig14 := s.Fig14()
	add("Fig 14", "owners using ≥1 syndicator (%)", 80, 100*(1-fig14.At(0)), 75, 100)

	comps, err := s.Fig15and16()
	if err != nil {
		return nil, err
	}
	add("Fig 15", "owner/synd median bitrate (slice 1)", 2.5,
		comps[0].Owner.MedianKbps/comps[0].Syndicator.MedianKbps, 2.0, 3.6)
	if comps[1].Syndicator.P90RebufPct > 0 {
		add("Fig 16", "owner/synd p90 rebuffering (slice 2)", 0.6,
			comps[1].Owner.P90RebufPct/comps[1].Syndicator.P90RebufPct, 0, 0.7)
	}

	fig18, err := s.Fig18()
	if err != nil {
		return nil, err
	}
	rep := fig18.Reports[0].Report
	add("Fig 18", "catalogue size (TB)", 1916, float64(rep.TotalBytes)/1e12, 1800, 2050)
	add("Fig 18", "5% tolerance savings (%)", 16.5, rep.Tol5Pct, 12, 21)
	add("Fig 18", "10% tolerance savings (%)", 45.2, rep.Tol10Pct, 38, 55)
	add("Fig 18", "integrated savings (%)", 65.6, rep.IntegratedPct, 58, 72)

	return rows, nil
}

// RenderScorecard writes the scorecard as a markdown table and returns
// the number of failing rows.
func (s *Study) RenderScorecard(w io.Writer) (failures int, err error) {
	rows, err := s.Scorecard()
	if err != nil {
		return 0, err
	}
	fmt.Fprintln(w, "| experiment | quantity | paper | measured | band | |")
	fmt.Fprintln(w, "|---|---|---|---|---|---|")
	for _, r := range rows {
		mark := "✓"
		if !r.Pass() {
			mark = "✗"
			failures++
		}
		fmt.Fprintf(w, "| %s | %s | %.4g | %.4g | [%.4g, %.4g] | %s |\n",
			r.Experiment, r.Quantity, r.Paper, r.Measured, r.Lo, r.Hi, mark)
	}
	fmt.Fprintf(w, "\n%d/%d checks pass\n", len(rows)-failures, len(rows))
	return failures, nil
}

// ensure ecosystem import is used even if future edits drop other uses.
var _ = ecosystem.DefaultSeed
