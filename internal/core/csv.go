package core

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"vmp/internal/analytics"
	"vmp/internal/complexity"
	"vmp/internal/device"
)

// RenderCSV writes the named figure's underlying data as CSV, the
// machine-readable export used for re-plotting. Every figure that
// Render supports is covered; purely tabular exhibits (tab1, 5, 17)
// export their rows.
func (s *Study) RenderCSV(w io.Writer, id string) error {
	cw := csv.NewWriter(w)
	defer cw.Flush()
	switch id {
	case "macro":
		m := s.Macro()
		cw.Write([]string{"publishers", "sampled_views", "views_represented", "daily_view_hours", "distinct_geos"})
		cw.Write([]string{
			strconv.Itoa(m.Publishers), strconv.Itoa(m.SampledViews),
			fmtF(m.ViewsRepresented), fmtF(m.DailyViewHours), strconv.Itoa(m.DistinctGeos),
		})
	case "tab1":
		cw.Write([]string{"protocol", "extension", "sample_url", "inferred"})
		for _, r := range s.Table1() {
			cw.Write([]string{r.Protocol, r.Extension, r.SampleURL, r.Inferred})
		}
	case "2a":
		return timeSeriesCSV(cw, s.Fig2a())
	case "2b":
		return timeSeriesCSV(cw, s.Fig2b())
	case "2c":
		return timeSeriesCSV(cw, s.Fig2c())
	case "3a":
		return histogramCSV(cw, s.Fig3a())
	case "3b":
		return bucketsCSV(cw, s.Fig3b())
	case "3c":
		return averagesCSV(cw, s.Fig3c())
	case "4":
		return cdfMapCSV(cw, s.Fig4())
	case "5":
		cw.Write([]string{"platform", "app_based", "model"})
		for _, r := range s.Fig5() {
			for _, m := range r.Models {
				cw.Write([]string{r.Platform, strconv.FormatBool(r.AppBased), m})
			}
		}
	case "6a":
		return timeSeriesCSV(cw, s.Fig6a())
	case "6b":
		return timeSeriesCSV(cw, s.Fig6b())
	case "6c":
		return timeSeriesCSV(cw, s.Fig6c())
	case "7":
		return timeSeriesCSV(cw, s.Fig7())
	case "8":
		return cdfMapCSV(cw, s.Fig8())
	case "9a":
		return histogramCSV(cw, s.Fig9a())
	case "9b":
		return bucketsCSV(cw, s.Fig9b())
	case "9c":
		return averagesCSV(cw, s.Fig9c())
	case "10a":
		return timeSeriesCSV(cw, s.Fig10(device.Browser))
	case "10b":
		return timeSeriesCSV(cw, s.Fig10(device.Mobile))
	case "10c":
		return timeSeriesCSV(cw, s.Fig10(device.SetTop))
	case "11a":
		return timeSeriesCSV(cw, topCDNsOnly(s.Fig11a()))
	case "11b":
		return timeSeriesCSV(cw, topCDNsOnly(s.Fig11b()))
	case "12a":
		return histogramCSV(cw, s.Fig12a())
	case "12b":
		return bucketsCSV(cw, s.Fig12b())
	case "12c":
		return averagesCSV(cw, s.Fig12c())
	case "cdn-segregation":
		st := s.CDNSegregation()
		cw.Write([]string{"eligible", "vod_only_frac", "live_only_frac", "fully_segregated"})
		cw.Write([]string{
			strconv.Itoa(st.EligiblePublishers),
			fmtF(st.VoDOnlyFrac), fmtF(st.LiveOnlyFrac),
			strconv.Itoa(st.FullySegregated),
		})
	case "crosstab":
		ct := s.ProtocolPlatformCross()
		cw.Write([]string{"platform", "protocol", "view_hours", "row_share"})
		for _, row := range ct.RowKeys {
			for _, col := range ct.ColKeys {
				cw.Write([]string{row, col, fmtF(ct.At(row, col)), fmtF(ct.RowShare(row, col))})
			}
		}
	case "13a", "13b", "13c":
		rep, err := s.Fig13()
		if err != nil {
			return err
		}
		var c complexity.Correlation
		switch id {
		case "13a":
			c = rep.Combinations
		case "13b":
			c = rep.ProtocolTitles
		default:
			c = rep.UniqueSDKs
		}
		cw.Write([]string{"publisher", "daily_vh", "metric_value"})
		for _, p := range c.Points {
			cw.Write([]string{p.Publisher, fmtF(p.DailyVH), fmtF(p.Value)})
		}
	case "14":
		points, _ := s.Fig14()
		cw.Write([]string{"owner", "pct_of_syndicators"})
		for _, p := range points {
			cw.Write([]string{p.Owner, fmtF(p.Percent)})
		}
	case "15", "16":
		comps, err := s.Fig15and16()
		if err != nil {
			return err
		}
		cw.Write([]string{"isp", "cdn", "publisher", "median_kbps", "p90_rebuf_pct"})
		for _, c := range comps {
			cw.Write([]string{c.ISP, c.CDN, "owner", fmtF(c.Owner.MedianKbps), fmtF(c.Owner.P90RebufPct)})
			cw.Write([]string{c.ISP, c.CDN, "syndicator", fmtF(c.Syndicator.MedianKbps), fmtF(c.Syndicator.P90RebufPct)})
		}
	case "17":
		rows, err := s.Fig17()
		if err != nil {
			return err
		}
		cw.Write([]string{"publisher", "rung", "bitrate_kbps"})
		for _, r := range rows {
			for i, kbps := range r.Bitrates {
				cw.Write([]string{r.Publisher, strconv.Itoa(i), strconv.Itoa(kbps)})
			}
		}
	case "18":
		exp, err := s.Fig18()
		if err != nil {
			return err
		}
		cw.Write([]string{"cdn", "total_tb", "tol5_tb", "tol5_pct", "tol10_tb", "tol10_pct", "integrated_tb", "integrated_pct"})
		for _, r := range exp.Reports {
			rep := r.Report
			cw.Write([]string{
				r.CDN,
				fmtF(float64(rep.TotalBytes) / 1e12),
				fmtF(float64(rep.Tol5) / 1e12), fmtF(rep.Tol5Pct),
				fmtF(float64(rep.Tol10) / 1e12), fmtF(rep.Tol10Pct),
				fmtF(float64(rep.Integrated) / 1e12), fmtF(rep.IntegratedPct),
			})
		}
	default:
		return fmt.Errorf("core: no CSV export for figure %q", id)
	}
	cw.Flush()
	return cw.Error()
}

func fmtF(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }

func timeSeriesCSV(cw *csv.Writer, ts *analytics.TimeSeries) error {
	header := append([]string{"key"}, ts.Snapshots...)
	cw.Write(header)
	for _, k := range ts.Keys {
		row := make([]string, 0, len(ts.Snapshots)+1)
		row = append(row, k)
		for _, v := range ts.Series[k] {
			row = append(row, fmtF(v))
		}
		cw.Write(row)
	}
	cw.Flush()
	return cw.Error()
}

func histogramCSV(cw *csv.Writer, h *analytics.Histogram) error {
	cw.Write([]string{"instances", "pct_publishers", "pct_view_hours"})
	for i, n := range h.Counts {
		cw.Write([]string{strconv.Itoa(n), fmtF(h.PubPct[i]), fmtF(h.VHPct[i])})
	}
	cw.Flush()
	return cw.Error()
}

func bucketsCSV(cw *csv.Writer, bb *analytics.BucketBreakdown) error {
	cw.Write([]string{"bucket", "instances", "pct_of_all_publishers"})
	for b, cell := range bb.Buckets {
		counts := make([]int, 0, len(cell))
		for n := range cell {
			counts = append(counts, n)
		}
		sort.Ints(counts)
		for _, n := range counts {
			cw.Write([]string{strconv.Itoa(b), strconv.Itoa(n), fmtF(cell[n])})
		}
	}
	cw.Flush()
	return cw.Error()
}

func averagesCSV(cw *csv.Writer, a *analytics.AveragesSeries) error {
	cw.Write([]string{"snapshot", "mean", "vh_weighted_mean"})
	for i, snap := range a.Snapshots {
		cw.Write([]string{snap, fmtF(a.Mean[i]), fmtF(a.Weighted[i])})
	}
	cw.Flush()
	return cw.Error()
}

func cdfMapCSV(cw *csv.Writer, cdfs map[string]analytics.CDF) error {
	cw.Write([]string{"key", "x", "p"})
	keys := make([]string, 0, len(cdfs))
	for k := range cdfs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		cdf := cdfs[k]
		for i := range cdf.X {
			cw.Write([]string{k, fmtF(cdf.X[i]), fmtF(cdf.P[i])})
		}
	}
	cw.Flush()
	return cw.Error()
}
