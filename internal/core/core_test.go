package core

import (
	"bytes"
	"strings"
	"testing"

	"vmp/internal/analytics"
	"vmp/internal/device"
)

// testStudy is shared across tests in this package; stride keeps the
// longitudinal figures cheap while retaining the latest snapshot.
var sharedStudy *Study

func study(t *testing.T) *Study {
	t.Helper()
	if sharedStudy == nil {
		sharedStudy = NewStudy(StudyConfig{SnapshotStride: 8, QoESessions: 40})
	}
	return sharedStudy
}

func TestTable1(t *testing.T) {
	rows := study(t).Table1()
	if len(rows) != 4 {
		t.Fatalf("Table 1 has %d rows, want 4", len(rows))
	}
	for _, r := range rows {
		if r.Inferred != r.Protocol {
			t.Errorf("row %s: inferred %s", r.Protocol, r.Inferred)
		}
		if r.Extension == "" || !strings.Contains(r.SampleURL, "http://") {
			t.Errorf("malformed row %+v", r)
		}
	}
}

func TestFig2Family(t *testing.T) {
	s := study(t)
	fig2a := s.Fig2a()
	if fig2a.Latest("HLS") < 80 {
		t.Errorf("Fig2a HLS latest = %.1f, want ~91", fig2a.Latest("HLS"))
	}
	if fig2a.Latest("DASH") <= fig2a.First("DASH") {
		t.Error("Fig2a: DASH support must grow")
	}
	fig2b := s.Fig2b()
	if fig2b.Latest("DASH") < 30 {
		t.Errorf("Fig2b DASH latest = %.1f, want ~38-45", fig2b.Latest("DASH"))
	}
	fig2c := s.Fig2c()
	if fig2c.Latest("DASH") > 10 {
		t.Errorf("Fig2c DASH latest (excl. drivers) = %.1f, want < 10", fig2c.Latest("DASH"))
	}
}

func TestFig3Family(t *testing.T) {
	s := study(t)
	h := s.Fig3a()
	if len(h.Counts) == 0 || h.Counts[0] < 1 {
		t.Fatalf("Fig3a degenerate: %+v", h)
	}
	// Single-protocol publishers carry little VH.
	_, vh1 := h.At(1)
	if vh1 > 15 {
		t.Errorf("1-protocol publishers carry %.1f%% VH, want < ~10", vh1)
	}
	bb := s.Fig3b()
	totalPubs := 0.0
	for _, p := range bb.PubsInBucket {
		totalPubs += p
	}
	if totalPubs < 99.9 || totalPubs > 100.1 {
		t.Errorf("Fig3b bucket populations sum to %.1f%%", totalPubs)
	}
	avg := s.Fig3c()
	last := len(avg.Snapshots) - 1
	if avg.Weighted[last] <= avg.Mean[last] {
		t.Error("Fig3c: weighted average should exceed plain average (larger publishers use more protocols)")
	}
	if avg.Mean[last] < 1.4 || avg.Mean[last] > 2.4 {
		t.Errorf("Fig3c mean latest = %.2f, want ~1.9", avg.Mean[last])
	}
}

func TestFig4(t *testing.T) {
	cdfs := study(t).Fig4()
	hls, ok := cdfs["HLS"]
	if !ok || len(hls.X) == 0 {
		t.Fatal("HLS CDF missing")
	}
	dash := cdfs["DASH"]
	// Fig 4: half of DASH supporters use it for at most ~20% of their
	// view-hours; half of HLS supporters use HLS for ≥85%.
	dashMedian := medianOfCDF(dash)
	hlsMedian := medianOfCDF(hls)
	if dashMedian > 40 {
		t.Errorf("median DASH share among supporters = %.1f%%, want ≤ ~20-30%%", dashMedian)
	}
	if hlsMedian < 60 {
		t.Errorf("median HLS share among supporters = %.1f%%, want ≥ ~85%%", hlsMedian)
	}
	if hlsMedian <= dashMedian {
		t.Error("HLS supporters must lean on HLS more than DASH supporters lean on DASH")
	}
}

func medianOfCDF(c analytics.CDF) float64 {
	for i, p := range c.P {
		if p >= 0.5 {
			return c.X[i]
		}
	}
	if len(c.X) == 0 {
		return 0
	}
	return c.X[len(c.X)-1]
}

func TestFig5(t *testing.T) {
	rows := study(t).Fig5()
	if len(rows) != 5 {
		t.Fatalf("Fig5 has %d platforms, want 5", len(rows))
	}
	if rows[0].Platform != "Browser" || rows[0].AppBased {
		t.Errorf("first row = %+v", rows[0])
	}
}

func TestFig6and7(t *testing.T) {
	s := study(t)
	fig6a := s.Fig6a()
	if fig6a.First("Browser") < fig6a.Latest("Browser") {
		t.Error("Fig6a: browser view-hours must decline")
	}
	if fig6a.Latest("SetTop") < fig6a.First("SetTop") {
		t.Error("Fig6a: set-top view-hours must grow")
	}
	fig6b := s.Fig6b()
	// Excluding the giants, mobile surpasses set-top.
	if fig6b.Latest("Mobile") <= fig6b.Latest("SetTop") {
		t.Errorf("Fig6b: mobile (%.1f) should surpass set-top (%.1f) excluding giants",
			fig6b.Latest("Mobile"), fig6b.Latest("SetTop"))
	}
	fig6c := s.Fig6c()
	if fig6c.Latest("SetTop") >= fig6a.Latest("SetTop") {
		t.Error("set-top view share must lag its view-hour share")
	}
	fig7 := s.Fig7()
	if fig7.Latest("SetTop") <= fig7.First("SetTop") {
		t.Error("Fig7: set-top support must grow")
	}
	if fig7.Latest("SmartTV") <= fig7.First("SmartTV") {
		t.Error("Fig7: smart-TV support must grow")
	}
}

func TestFig8(t *testing.T) {
	cdfs := study(t).Fig8()
	for _, pl := range []string{"Browser", "Mobile", "SetTop"} {
		if _, ok := cdfs[pl]; !ok {
			t.Errorf("Fig8 missing %s", pl)
		}
	}
}

func TestFig9(t *testing.T) {
	s := study(t)
	h := s.Fig9a()
	multiPub, multiVH := 0.0, 0.0
	for i, n := range h.Counts {
		if n > 1 {
			multiPub += h.PubPct[i]
			multiVH += h.VHPct[i]
		}
	}
	if multiPub < 80 {
		t.Errorf("multi-platform publishers = %.1f%%, want > 85%%", multiPub)
	}
	if multiVH < 90 {
		t.Errorf("multi-platform VH = %.1f%%, want > 95%%", multiVH)
	}
	avg := s.Fig9c()
	last := len(avg.Snapshots) - 1
	if avg.Mean[last] <= avg.Mean[0] {
		t.Error("Fig9c: average platform count must grow")
	}
	if avg.Weighted[last] < 3.8 {
		t.Errorf("Fig9c weighted latest = %.2f, want ~4.5", avg.Weighted[last])
	}
}

func TestFig10(t *testing.T) {
	s := study(t)
	browser := s.Fig10(device.Browser)
	if browser.Latest("HTML5") <= browser.First("HTML5") {
		t.Error("Fig10a: HTML5 must grow")
	}
	if browser.Latest("Flash") >= browser.First("Flash") {
		t.Error("Fig10a: Flash must decline")
	}
	// Paper: a modest Flash drop, ~60% → ~40% of browser view-hours.
	if f := browser.Latest("Flash"); f < 25 || f > 50 {
		t.Errorf("Fig10a Flash latest = %.1f, want ~37-40", f)
	}
	settop := s.Fig10(device.SetTop)
	if settop.Latest("Roku") < 40 {
		t.Errorf("Fig10c Roku = %.1f, want dominant (~54)", settop.Latest("Roku"))
	}
	mobile := s.Fig10(device.Mobile)
	android := mobile.Latest("AndroidPhone") + mobile.Latest("AndroidTablet")
	ios := mobile.Latest("iPhone") + mobile.Latest("iPad")
	if android < 0.7*ios || android > 1.4*ios {
		t.Errorf("Fig10b: Android (%.1f) and iOS (%.1f) should be comparable", android, ios)
	}
}

func TestFig11and12(t *testing.T) {
	s := study(t)
	fig11a := s.Fig11a()
	if fig11a.Latest("A") < 60 {
		t.Errorf("Fig11a: CDN A used by %.1f%% of publishers, want ~80%%", fig11a.Latest("A"))
	}
	fig11b := s.Fig11b()
	if fig11b.First("A") < 45 {
		t.Errorf("Fig11b: CDN A initially dominant, got %.1f%%", fig11b.First("A"))
	}
	for _, c := range []string{"A", "B", "C"} {
		v := fig11b.Latest(c)
		if v < 18 || v > 40 {
			t.Errorf("Fig11b: CDN %s latest = %.1f%%, want 20-35%%", c, v)
		}
	}
	h := s.Fig12a()
	_, vh1 := h.At(1)
	if vh1 > 5 {
		t.Errorf("single-CDN VH = %.1f%%, want < 5%%", vh1)
	}
	avg := s.Fig12c()
	last := len(avg.Snapshots) - 1
	if avg.Weighted[last] < 3.5 {
		t.Errorf("Fig12c weighted latest = %.2f, want ~4.5", avg.Weighted[last])
	}
	if avg.Weighted[last]-avg.Weighted[0] <= avg.Mean[last]-avg.Mean[0] {
		t.Error("Fig12c: weighted average must grow faster than the mean")
	}
}

func TestCDNSegregation(t *testing.T) {
	st := study(t).CDNSegregation()
	if st.EligiblePublishers == 0 {
		t.Fatal("no eligible publishers")
	}
	if st.VoDOnlyFrac <= 0 || st.LiveOnlyFrac <= 0 {
		t.Errorf("segregation fractions = %.2f/%.2f, want positive", st.VoDOnlyFrac, st.LiveOnlyFrac)
	}
}

func TestFig13(t *testing.T) {
	rep, err := study(t).Fig13()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Combinations.PerDecadeFactor <= 1 || rep.Combinations.PerDecadeFactor >= 10 {
		t.Errorf("combinations factor = %.2f, want sub-linear growth", rep.Combinations.PerDecadeFactor)
	}
	if rep.ProtocolTitles.PerDecadeFactor <= rep.UniqueSDKs.PerDecadeFactor {
		t.Error("protocol-titles should grow faster per decade than unique SDKs (3.8x vs 1.8x)")
	}
}

func TestFig14(t *testing.T) {
	points, cdf := study(t).Fig14()
	if len(points) == 0 || cdf.N() == 0 {
		t.Fatal("empty Fig14")
	}
}

func TestFig15and16(t *testing.T) {
	comps, err := study(t).Fig15and16()
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != 2 {
		t.Fatalf("comparisons = %d, want 2 slices", len(comps))
	}
	for _, c := range comps {
		if c.Owner.MedianKbps <= c.Syndicator.MedianKbps {
			t.Errorf("slice %s/%s: owner median %.0f not above syndicator %.0f",
				c.ISP, c.CDN, c.Owner.MedianKbps, c.Syndicator.MedianKbps)
		}
	}
}

func TestFig17and18(t *testing.T) {
	rows, err := study(t).Fig17()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 11 {
		t.Fatalf("Fig17 rows = %d", len(rows))
	}
	exp, err := study(t).Fig18()
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Reports) != 2 {
		t.Fatalf("Fig18 reports = %d", len(exp.Reports))
	}
}

func TestRenderAllFigures(t *testing.T) {
	s := study(t)
	for _, id := range FigureIDs {
		var buf bytes.Buffer
		if err := s.Render(&buf, id); err != nil {
			t.Fatalf("Render(%s): %v", id, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("Render(%s) produced no output", id)
		}
	}
	var buf bytes.Buffer
	if err := s.Render(&buf, "99z"); err == nil {
		t.Fatal("unknown figure accepted")
	}
}
