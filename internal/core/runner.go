package core

import (
	"io"
	"runtime"
	"sync"
)

// RunAll computes every figure on a bounded worker pool, filling the
// study's memo table. Figures share only the immutable frozen dataset,
// so they parallelize freely; results land in the memo exactly as a
// serial run would produce them. workers <= 0 means GOMAXPROCS.
func (s *Study) RunAll(workers int) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Materialize the store and frozen dataset before fanning out so
	// workers start from a fully built, immutable substrate.
	s.Dataset()
	errs := make([]error, len(FigureIDs))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, id := range FigureIDs {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, id string) {
			defer wg.Done()
			defer func() { <-sem }()
			errs[i] = s.Render(io.Discard, id)
		}(i, id)
	}
	wg.Wait()
	// Report the first failure in presentation order, matching what a
	// serial RenderAll would have surfaced.
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// RenderAllParallel computes every figure concurrently, then renders
// the full study serially from the memoized results. Output is
// byte-identical to RenderAll: rendering order and formatting are
// unchanged, and every figure value is computed exactly once either
// way.
func (s *Study) RenderAllParallel(w io.Writer, workers int) error {
	if err := s.RunAll(workers); err != nil {
		return err
	}
	return s.RenderAll(w)
}
