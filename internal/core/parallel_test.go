package core

import (
	"bytes"
	"math"
	"testing"

	"vmp/internal/analytics"
	"vmp/internal/device"
)

// TestRenderAllParallelByteIdentical is the determinism guarantee of
// the parallel engine: for the documented seed, the full study rendered
// through the worker pool is byte-for-byte the serial output.
func TestRenderAllParallelByteIdentical(t *testing.T) {
	cfg := StudyConfig{SnapshotStride: 12, QoESessions: 20}
	var serial, parallel bytes.Buffer

	if err := NewStudy(cfg).RenderAll(&serial); err != nil {
		t.Fatalf("serial RenderAll: %v", err)
	}
	if err := NewStudy(cfg).RenderAllParallel(&parallel, 8); err != nil {
		t.Fatalf("parallel RenderAll: %v", err)
	}
	if !bytes.Equal(serial.Bytes(), parallel.Bytes()) {
		t.Fatalf("parallel output differs from serial:\n--- serial %d bytes\n--- parallel %d bytes",
			serial.Len(), parallel.Len())
	}
	if serial.Len() == 0 {
		t.Fatal("empty study output")
	}
}

// relEq tolerates ulp-level drift: the legacy functions sum in Go map
// iteration order, which is itself nondeterministic run-to-run.
func relEq(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	return diff <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

func seriesMatch(t *testing.T, name string, got, want *analytics.TimeSeries) {
	t.Helper()
	if len(got.Keys) != len(want.Keys) {
		t.Fatalf("%s: keys %v, want %v", name, got.Keys, want.Keys)
	}
	for i, k := range want.Keys {
		if got.Keys[i] != k {
			t.Fatalf("%s: keys %v, want %v", name, got.Keys, want.Keys)
		}
		for si := range want.Series[k] {
			if !relEq(got.Series[k][si], want.Series[k][si]) {
				t.Errorf("%s[%s][%d] = %v, want %v", name, k, si, got.Series[k][si], want.Series[k][si])
			}
		}
	}
}

// TestFrozenFiguresMatchLegacy re-derives a cross-section of figures
// with the legacy slice-backed analytics and checks the frozen-backed
// study methods agree.
func TestFrozenFiguresMatchLegacy(t *testing.T) {
	s := study(t)
	store, sched := s.Store(), s.Schedule()

	seriesMatch(t, "fig2a", s.Fig2a(), analytics.ShareOfPublishers(store, sched, analytics.ProtocolDim))
	seriesMatch(t, "fig2b", s.Fig2b(), analytics.ShareOfViewHours(store, sched, analytics.ProtocolDim, nil))
	seriesMatch(t, "fig6c", s.Fig6c(), analytics.ShareOfViews(store, sched, analytics.PlatformDim, nil))
	seriesMatch(t, "fig11b", s.Fig11b(), analytics.ShareOfViewHours(store, sched, analytics.CDNDim, nil))
	seriesMatch(t, "fig10a", s.Fig10(device.Browser),
		analytics.ShareOfViewHours(store, sched, analytics.DeviceDim(device.Browser), nil))

	exclude := analytics.TopPublishersByViewHours(store.Window(sched.Latest()), 3)
	seriesMatch(t, "fig6b", s.Fig6b(), analytics.ShareOfViewHours(store, sched, analytics.PlatformDim, exclude))

	legacyAvg := analytics.AverageInstances(store, sched, analytics.CDNDim)
	gotAvg := s.Fig12c()
	for i := range legacyAvg.Snapshots {
		if !relEq(gotAvg.Mean[i], legacyAvg.Mean[i]) || !relEq(gotAvg.Weighted[i], legacyAvg.Weighted[i]) {
			t.Errorf("fig12c[%d] = (%v, %v), want (%v, %v)", i,
				gotAvg.Mean[i], gotAvg.Weighted[i], legacyAvg.Mean[i], legacyAvg.Weighted[i])
		}
	}

	latest := store.Window(sched.Latest())
	wantHist := analytics.InstancesPerPublisher(latest, analytics.ProtocolDim)
	gotHist := s.Fig3a()
	if len(gotHist.Counts) != len(wantHist.Counts) {
		t.Fatalf("fig3a counts %v, want %v", gotHist.Counts, wantHist.Counts)
	}
	for i := range wantHist.Counts {
		if gotHist.Counts[i] != wantHist.Counts[i] ||
			!relEq(gotHist.PubPct[i], wantHist.PubPct[i]) || !relEq(gotHist.VHPct[i], wantHist.VHPct[i]) {
			t.Errorf("fig3a row %d mismatch", i)
		}
	}

	wantMacro := analytics.Macro(latest, sched.Latest().Days)
	gotMacro := s.Macro()
	if gotMacro.Publishers != wantMacro.Publishers || gotMacro.SampledViews != wantMacro.SampledViews ||
		gotMacro.DistinctGeos != wantMacro.DistinctGeos ||
		!relEq(gotMacro.ViewHours, wantMacro.ViewHours) {
		t.Errorf("macro = %+v, want %+v", gotMacro, wantMacro)
	}
}

// TestMemoizationReturnsSameValue: repeated figure calls must hand back
// the identical cached object, not a recomputation.
func TestMemoizationReturnsSameValue(t *testing.T) {
	s := study(t)
	if s.Fig2b() != s.Fig2b() {
		t.Error("Fig2b recomputed instead of memoized")
	}
	if s.Fig3a() != s.Fig3a() {
		t.Error("Fig3a recomputed instead of memoized")
	}
	a, err := s.Fig15and16()
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Fig15and16()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) || (len(a) > 0 && &a[0] != &b[0]) {
		t.Error("Fig15and16 recomputed instead of memoized")
	}
}
