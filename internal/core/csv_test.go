package core

import (
	"bytes"
	"encoding/csv"
	"strconv"
	"testing"
)

func TestRenderCSVAllFigures(t *testing.T) {
	s := study(t)
	for _, id := range FigureIDs {
		var buf bytes.Buffer
		if err := s.RenderCSV(&buf, id); err != nil {
			t.Fatalf("RenderCSV(%s): %v", id, err)
		}
		rows, err := csv.NewReader(&buf).ReadAll()
		if err != nil {
			t.Fatalf("figure %s produced invalid CSV: %v", id, err)
		}
		if len(rows) < 2 {
			t.Fatalf("figure %s CSV has %d rows, want header + data", id, len(rows))
		}
		width := len(rows[0])
		for i, row := range rows {
			if len(row) != width {
				t.Fatalf("figure %s row %d has %d columns, want %d", id, i, len(row), width)
			}
		}
	}
	var buf bytes.Buffer
	if err := s.RenderCSV(&buf, "bogus"); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestRenderCSVFig2bValues(t *testing.T) {
	s := study(t)
	var buf bytes.Buffer
	if err := s.RenderCSV(&buf, "2b"); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// Per-snapshot protocol shares must sum to ~100 in each column.
	nCols := len(rows[0]) - 1
	for col := 1; col <= nCols; col++ {
		sum := 0.0
		for _, row := range rows[1:] {
			v, err := strconv.ParseFloat(row[col], 64)
			if err != nil {
				t.Fatalf("bad value %q: %v", row[col], err)
			}
			sum += v
		}
		if sum < 99.5 || sum > 100.5 {
			t.Fatalf("column %d shares sum to %v, want ~100", col, sum)
		}
	}
}

func TestRenderCSVFig13Scatter(t *testing.T) {
	s := study(t)
	var buf bytes.Buffer
	if err := s.RenderCSV(&buf, "13b"); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// One point per publisher plus the header.
	if len(rows) != len(s.Eco.Publishers)+1 {
		t.Fatalf("scatter rows = %d, want %d", len(rows), len(s.Eco.Publishers)+1)
	}
}

func TestRenderCSVDeterministic(t *testing.T) {
	s := study(t)
	var a, b bytes.Buffer
	if err := s.RenderCSV(&a, "3b"); err != nil {
		t.Fatal(err)
	}
	if err := s.RenderCSV(&b, "3b"); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("CSV output not deterministic across calls")
	}
}
