package core

import (
	"bytes"
	"strings"
	"testing"
)

func TestScorecardAllPass(t *testing.T) {
	s := study(t)
	rows, err := s.Scorecard()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 30 {
		t.Fatalf("scorecard has %d rows, want a comprehensive set", len(rows))
	}
	for _, r := range rows {
		if !r.Pass() {
			t.Errorf("%s / %s: measured %.4g outside [%.4g, %.4g] (paper %.4g)",
				r.Experiment, r.Quantity, r.Measured, r.Lo, r.Hi, r.Paper)
		}
	}
}

func TestRenderScorecard(t *testing.T) {
	s := study(t)
	var buf bytes.Buffer
	failures, err := s.RenderScorecard(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if failures != 0 {
		t.Fatalf("%d scorecard failures:\n%s", failures, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"| experiment |", "Fig 18", "checks pass"} {
		if !strings.Contains(out, want) {
			t.Errorf("scorecard output missing %q", want)
		}
	}
}
