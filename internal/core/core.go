// Package core is the study orchestrator: it wires the synthetic
// ecosystem, the telemetry store, and the analysis packages into the
// paper's experiment suite, one method per table or figure. The root
// vmp package re-exports this API; cmd/vmpstudy and the benchmark
// harness drive it.
package core

import (
	"fmt"
	"sync"

	"vmp/internal/analytics"
	"vmp/internal/complexity"
	"vmp/internal/device"
	"vmp/internal/ecosystem"
	"vmp/internal/manifest"
	"vmp/internal/simclock"
	"vmp/internal/stats"
	"vmp/internal/syndication"
	"vmp/internal/telemetry"
)

// StudyConfig parameterizes a reproduction run.
type StudyConfig struct {
	// Seed drives all randomness; zero means ecosystem.DefaultSeed.
	Seed uint64
	// SnapshotStride thins the bi-weekly schedule (1 = full study).
	// Zero means 1.
	SnapshotStride int
	// QoESessions is the per-publisher session count for the Fig 15/16
	// playback experiments; zero means 150.
	QoESessions int
}

// Study holds a generated dataset and memoizes the analyses.
type Study struct {
	cfg StudyConfig
	Eco *ecosystem.Ecosystem

	once  sync.Once
	store *telemetry.Store
}

// NewStudy builds the ecosystem for cfg. Dataset generation is lazy:
// figures that need records trigger it on first use.
func NewStudy(cfg StudyConfig) *Study {
	return &Study{
		cfg: cfg,
		Eco: ecosystem.New(ecosystem.Config{Seed: cfg.Seed, SnapshotStride: cfg.SnapshotStride}),
	}
}

// Store returns the generated view-record store, generating it on
// first call.
func (s *Study) Store() *telemetry.Store {
	s.once.Do(func() { s.store = s.Eco.GenerateStore() })
	return s.store
}

// Schedule returns the study's snapshot schedule.
func (s *Study) Schedule() simclock.Schedule { return s.Eco.Schedule }

// latest returns the records of the latest snapshot.
func (s *Study) latest() []telemetry.ViewRecord {
	return s.Store().Window(s.Schedule().Latest())
}

// Table1Row is one row of Table 1.
type Table1Row struct {
	Protocol  string
	Extension string
	SampleURL string
	Inferred  string
}

// Table1 regenerates the protocol-inference table against freshly
// minted URLs.
func (s *Study) Table1() []Table1Row {
	var rows []Table1Row
	for _, p := range []manifest.Protocol{manifest.HLS, manifest.DASH, manifest.Smooth, manifest.HDS} {
		url := manifest.ManifestURL(p, "http://cdn-A.example.net/pub000", "v0001")
		rows = append(rows, Table1Row{
			Protocol:  p.String(),
			Extension: p.ManifestExtension(),
			SampleURL: url,
			Inferred:  manifest.InferProtocol(url).String(),
		})
	}
	return rows
}

// Fig2a: percentage of publishers supporting each streaming protocol
// over time.
func (s *Study) Fig2a() *analytics.TimeSeries {
	return analytics.ShareOfPublishers(s.Store(), s.Schedule(), analytics.ProtocolDim)
}

// Fig2b: percentage of view-hours by protocol over time.
func (s *Study) Fig2b() *analytics.TimeSeries {
	return analytics.ShareOfViewHours(s.Store(), s.Schedule(), analytics.ProtocolDim, nil)
}

// Fig2c: Fig2b excluding the N large DASH-driving publishers.
func (s *Study) Fig2c() *analytics.TimeSeries {
	exclude := map[string]bool{}
	for _, p := range s.Eco.Publishers {
		if p.DASHDriver {
			exclude[p.ID] = true
		}
	}
	return analytics.ShareOfViewHours(s.Store(), s.Schedule(), analytics.ProtocolDim, exclude)
}

// Fig3a: number of protocols per publisher, latest snapshot.
func (s *Study) Fig3a() *analytics.Histogram {
	return analytics.InstancesPerPublisher(s.latest(), analytics.ProtocolDim)
}

// Fig3b: protocols per publisher bucketed by view-hours.
func (s *Study) Fig3b() *analytics.BucketBreakdown {
	snap := s.Schedule().Latest()
	return analytics.InstancesByBucket(s.Store().Window(snap), analytics.ProtocolDim, snap.Days, ecosystem.NumBuckets)
}

// Fig3c: average protocols per publisher over time, plain and
// view-hour weighted.
func (s *Study) Fig3c() *analytics.AveragesSeries {
	return analytics.AverageInstances(s.Store(), s.Schedule(), analytics.ProtocolDim)
}

// Fig4: CDF across publishers of the share of their view-hours served
// via DASH and via HLS.
func (s *Study) Fig4() map[string]analytics.CDF {
	recs := s.latest()
	return map[string]analytics.CDF{
		"DASH": analytics.SupporterShareCDF(recs, analytics.ProtocolDim, "DASH"),
		"HLS":  analytics.SupporterShareCDF(recs, analytics.ProtocolDim, "HLS"),
	}
}

// Fig5Row describes one platform category and its device models.
type Fig5Row struct {
	Platform string
	AppBased bool
	Models   []string
}

// Fig5 renders the platform taxonomy.
func (s *Study) Fig5() []Fig5Row {
	var rows []Fig5Row
	for _, pl := range device.Platforms {
		row := Fig5Row{Platform: pl.String(), AppBased: pl.AppBased()}
		for _, m := range device.OfPlatform(pl) {
			row.Models = append(row.Models, m.Name)
		}
		rows = append(rows, row)
	}
	return rows
}

// Fig6a: percentage of view-hours per platform over time.
func (s *Study) Fig6a() *analytics.TimeSeries {
	return analytics.ShareOfViewHours(s.Store(), s.Schedule(), analytics.PlatformDim, nil)
}

// Fig6b: Fig6a excluding the three largest publishers.
func (s *Study) Fig6b() *analytics.TimeSeries {
	exclude := analytics.TopPublishersByViewHours(s.latest(), 3)
	return analytics.ShareOfViewHours(s.Store(), s.Schedule(), analytics.PlatformDim, exclude)
}

// Fig6c: percentage of views per platform over time.
func (s *Study) Fig6c() *analytics.TimeSeries {
	return analytics.ShareOfViews(s.Store(), s.Schedule(), analytics.PlatformDim, nil)
}

// Fig7: percentage of publishers supporting each platform over time.
func (s *Study) Fig7() *analytics.TimeSeries {
	return analytics.ShareOfPublishers(s.Store(), s.Schedule(), analytics.PlatformDim)
}

// Fig8: CDF of individual view duration per platform, latest snapshot.
func (s *Study) Fig8() map[string]analytics.CDF {
	return analytics.DurationCDFs(s.latest())
}

// Fig9a/b/c: platforms per publisher (histogram, bucketed, averages).
func (s *Study) Fig9a() *analytics.Histogram {
	return analytics.InstancesPerPublisher(s.latest(), analytics.PlatformDim)
}

// Fig9b: platforms per publisher bucketed by view-hours.
func (s *Study) Fig9b() *analytics.BucketBreakdown {
	snap := s.Schedule().Latest()
	return analytics.InstancesByBucket(s.Store().Window(snap), analytics.PlatformDim, snap.Days, ecosystem.NumBuckets)
}

// Fig9c: average platforms per publisher over time.
func (s *Study) Fig9c() *analytics.AveragesSeries {
	return analytics.AverageInstances(s.Store(), s.Schedule(), analytics.PlatformDim)
}

// Fig10a/b/c: view-hour shares of devices within browsers, mobile, and
// set-top boxes.
func (s *Study) Fig10(pl device.Platform) *analytics.TimeSeries {
	return analytics.ShareOfViewHours(s.Store(), s.Schedule(), analytics.DeviceDim(pl), nil)
}

// Fig11a: percentage of publishers using each top-5 CDN over time.
func (s *Study) Fig11a() *analytics.TimeSeries {
	return analytics.ShareOfPublishers(s.Store(), s.Schedule(), analytics.CDNDim)
}

// Fig11b: percentage of view-hours per CDN over time.
func (s *Study) Fig11b() *analytics.TimeSeries {
	return analytics.ShareOfViewHours(s.Store(), s.Schedule(), analytics.CDNDim, nil)
}

// Fig12a/b/c: CDNs per publisher.
func (s *Study) Fig12a() *analytics.Histogram {
	return analytics.InstancesPerPublisher(s.latest(), analytics.CDNDim)
}

// Fig12b: CDNs per publisher bucketed by view-hours.
func (s *Study) Fig12b() *analytics.BucketBreakdown {
	snap := s.Schedule().Latest()
	return analytics.InstancesByBucket(s.Store().Window(snap), analytics.CDNDim, snap.Days, ecosystem.NumBuckets)
}

// Fig12c: average CDNs per publisher over time.
func (s *Study) Fig12c() *analytics.AveragesSeries {
	return analytics.AverageInstances(s.Store(), s.Schedule(), analytics.CDNDim)
}

// CDNSegregation reproduces §4.3's live/VoD segregation numbers.
func (s *Study) CDNSegregation() analytics.SegregationStats {
	return analytics.Segregation(s.latest())
}

// Fig13 runs the §5 complexity analysis over the latest inventory.
func (s *Study) Fig13() (complexity.Report, error) {
	return complexity.Analyze(s.Eco.InventoryAt(s.Schedule().Latest().Start))
}

// Fig14 computes the syndication-prevalence CDF.
func (s *Study) Fig14() ([]syndication.PrevalencePoint, *stats.ECDF) {
	return syndication.Prevalence(s.Eco.Publishers)
}

// QoEComparison is the Fig 15/16 outcome for one ISP×CDN slice.
type QoEComparison struct {
	ISP        string
	CDN        string
	Owner      syndication.QoEDist
	Syndicator syndication.QoEDist
}

// Fig15and16 runs the playback-based owner-versus-syndicator
// comparison on the paper's two slices.
func (s *Study) Fig15and16() ([]QoEComparison, error) {
	sessions := s.cfg.QoESessions
	if sessions <= 0 {
		sessions = 150
	}
	seed := s.cfg.Seed
	if seed == 0 {
		seed = ecosystem.DefaultSeed
	}
	slices, err := syndication.DefaultSlices(s.Eco.CDNs, sessions, seed)
	if err != nil {
		return nil, err
	}
	cat := syndication.StarCatalogue()
	s7, ok := cat.SyndicatorByID("S7")
	if !ok {
		return nil, fmt.Errorf("core: star catalogue lost S7")
	}
	var out []QoEComparison
	for _, sl := range slices {
		owner, synd, err := syndication.CompareQoE(cat.Owner, s7, cat.TitleID, sl)
		if err != nil {
			return nil, err
		}
		out = append(out, QoEComparison{
			ISP: sl.ISP.Name, CDN: sl.CDN.Name, Owner: owner, Syndicator: synd,
		})
	}
	return out, nil
}

// Fig17 returns the star catalogue's ladder table.
func (s *Study) Fig17() ([]syndication.LadderRow, error) {
	cat := syndication.StarCatalogue()
	if err := cat.CheckFig17Invariants(); err != nil {
		return nil, err
	}
	return cat.LadderTable(), nil
}

// Fig18 runs the origin-storage redundancy experiment.
func (s *Study) Fig18() (*syndication.StorageExperiment, error) {
	return syndication.RunStorageExperiment(syndication.DefaultStorageConfig())
}

// Macro computes the §3 macroscopic-context statistics over the latest
// snapshot.
func (s *Study) Macro() analytics.MacroStats {
	snap := s.Schedule().Latest()
	return analytics.Macro(s.Store().Window(snap), snap.Days)
}

// ProtocolPlatformCross computes the protocol × platform view-hour
// cross-tabulation over the latest snapshot: the §3 "any slice of the
// data" capability, and a direct view of the §2 coupling between
// packaging choices and device reach (Apple rows are 100% HLS).
func (s *Study) ProtocolPlatformCross() *analytics.CrossTab {
	return analytics.Cross(s.latest(), analytics.PlatformDim, analytics.ProtocolDim)
}
