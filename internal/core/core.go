// Package core is the study orchestrator: it wires the synthetic
// ecosystem, the telemetry store, and the analysis packages into the
// paper's experiment suite, one method per table or figure. The root
// vmp package re-exports this API; cmd/vmpstudy and the benchmark
// harness drive it.
//
// Figure methods run over a frozen telemetry.Dataset (immutable,
// timestamp-sorted, interned dimensions) and memoize their results, so
// each analysis is computed once no matter how many figures share it
// and the RunAll worker pool can fan out without re-scanning records.
package core

import (
	"fmt"
	"sync"

	"vmp/internal/analytics"
	"vmp/internal/complexity"
	"vmp/internal/device"
	"vmp/internal/ecosystem"
	"vmp/internal/manifest"
	"vmp/internal/obs"
	"vmp/internal/simclock"
	"vmp/internal/stats"
	"vmp/internal/syndication"
	"vmp/internal/telemetry"
)

// StudyConfig parameterizes a reproduction run.
type StudyConfig struct {
	// Seed drives all randomness; zero means ecosystem.DefaultSeed.
	Seed uint64
	// SnapshotStride thins the bi-weekly schedule (1 = full study).
	// Zero means 1.
	SnapshotStride int
	// QoESessions is the per-publisher session count for the Fig 15/16
	// playback experiments; zero means 150.
	QoESessions int
}

// Study holds a generated dataset and memoizes the analyses.
type Study struct {
	cfg StudyConfig
	Eco *ecosystem.Ecosystem

	once  sync.Once
	store *telemetry.Store

	dsOnce  sync.Once
	dataset *telemetry.Dataset

	memoMu sync.Mutex
	memo   map[string]*memoEntry

	// tracer, when set, records a figure.<id> span around every Render
	// call; vmpstudy -stats reads the per-figure timings back out of
	// its stage aggregates. Nil (the default) costs nothing: Start on a
	// nil tracer returns an inert span.
	tracer *obs.Tracer
}

// SetTracer attaches a tracer whose figure.<id> spans time every
// Render call. Call it before rendering; it is not synchronized with
// concurrent renders.
func (s *Study) SetTracer(tr *obs.Tracer) { s.tracer = tr }

// Tracer returns the attached tracer, or nil.
func (s *Study) Tracer() *obs.Tracer { return s.tracer }

// memoEntry guards one figure computation: concurrent callers share a
// single evaluation via the Once.
type memoEntry struct {
	once sync.Once
	val  any
	err  error
}

// NewStudy builds the ecosystem for cfg. Dataset generation is lazy:
// figures that need records trigger it on first use.
func NewStudy(cfg StudyConfig) *Study {
	return &Study{
		cfg: cfg,
		Eco: ecosystem.New(ecosystem.Config{Seed: cfg.Seed, SnapshotStride: cfg.SnapshotStride}),
	}
}

// NewStudyFromStore builds a study over an externally provided record
// store (a decoded JSONL dataset, a benchmark's pre-generated store)
// instead of generating one from the ecosystem.
func NewStudyFromStore(cfg StudyConfig, store *telemetry.Store) *Study {
	s := NewStudy(cfg)
	s.store = store
	return s
}

// Store returns the study's view-record store, generating it on first
// call unless one was injected via NewStudyFromStore.
func (s *Study) Store() *telemetry.Store {
	s.once.Do(func() {
		if s.store == nil {
			s.store = s.Eco.GenerateStore()
		}
	})
	return s.store
}

// Dataset returns the frozen, analysis-optimized view of the store.
// All figure methods read from it; it is built once.
func (s *Study) Dataset() *telemetry.Dataset {
	s.dsOnce.Do(func() { s.dataset = s.Store().Freeze() })
	return s.dataset
}

// entry returns the memo slot for key, creating it if needed.
func (s *Study) entry(key string) *memoEntry {
	s.memoMu.Lock()
	defer s.memoMu.Unlock()
	if s.memo == nil {
		s.memo = make(map[string]*memoEntry)
	}
	e := s.memo[key]
	if e == nil {
		e = &memoEntry{}
		s.memo[key] = e
	}
	return e
}

// memoized computes f once per study for key and caches (value, error);
// a package function because Go methods cannot be generic.
func memoized[T any](s *Study, key string, f func() (T, error)) (T, error) {
	e := s.entry(key)
	e.once.Do(func() { e.val, e.err = f() })
	if e.err != nil {
		var zero T
		return zero, e.err
	}
	return e.val.(T), nil
}

// memo is memoized for infallible computations.
func memo[T any](s *Study, key string, f func() T) T {
	v, _ := memoized(s, key, func() (T, error) { return f(), nil })
	return v
}

// Schedule returns the study's snapshot schedule.
func (s *Study) Schedule() simclock.Schedule { return s.Eco.Schedule }

// latest returns the records of the latest snapshot as a zero-copy
// read-only view of the frozen dataset.
func (s *Study) latest() []telemetry.ViewRecord {
	return s.Dataset().Window(s.Schedule().Latest())
}

// bundle memoizes the fused per-dimension analysis (publisher shares,
// view-hour shares, view shares, instance averages in one pass).
func (s *Study) bundle(key string, col func(*telemetry.Dataset) *telemetry.DimColumn) *analytics.DimBundle {
	return memo(s, "bundle:"+key, func() *analytics.DimBundle {
		ds := s.Dataset()
		return analytics.AnalyzeDim(ds, s.Schedule(), col(ds))
	})
}

func (s *Study) protocolBundle() *analytics.DimBundle {
	return s.bundle("protocol", (*telemetry.Dataset).ProtocolCol)
}

func (s *Study) platformBundle() *analytics.DimBundle {
	return s.bundle("platform", (*telemetry.Dataset).PlatformCol)
}

func (s *Study) cdnBundle() *analytics.DimBundle {
	return s.bundle("cdn", (*telemetry.Dataset).CDNCol)
}

// Table1Row is one row of Table 1.
type Table1Row struct {
	Protocol  string
	Extension string
	SampleURL string
	Inferred  string
}

// Table1 regenerates the protocol-inference table against freshly
// minted URLs.
func (s *Study) Table1() []Table1Row {
	var rows []Table1Row
	for _, p := range []manifest.Protocol{manifest.HLS, manifest.DASH, manifest.Smooth, manifest.HDS} {
		url := manifest.ManifestURL(p, "http://cdn-A.example.net/pub000", "v0001")
		rows = append(rows, Table1Row{
			Protocol:  p.String(),
			Extension: p.ManifestExtension(),
			SampleURL: url,
			Inferred:  manifest.InferProtocol(url).String(),
		})
	}
	return rows
}

// Fig2a: percentage of publishers supporting each streaming protocol
// over time.
func (s *Study) Fig2a() *analytics.TimeSeries {
	return s.protocolBundle().Publishers
}

// Fig2b: percentage of view-hours by protocol over time.
func (s *Study) Fig2b() *analytics.TimeSeries {
	return s.protocolBundle().ViewHours
}

// Fig2c: Fig2b excluding the N large DASH-driving publishers.
func (s *Study) Fig2c() *analytics.TimeSeries {
	return memo(s, "fig2c", func() *analytics.TimeSeries {
		ds := s.Dataset()
		exclude := make([]bool, ds.NumPublishers())
		for _, p := range s.Eco.Publishers {
			if p.DASHDriver {
				if id, ok := ds.PublisherIDOf(p.ID); ok {
					exclude[id] = true
				}
			}
		}
		return analytics.ShareOfViewHoursDataset(ds, s.Schedule(), ds.ProtocolCol(), exclude)
	})
}

// Fig3a: number of protocols per publisher, latest snapshot.
func (s *Study) Fig3a() *analytics.Histogram {
	return memo(s, "fig3a", func() *analytics.Histogram {
		ds := s.Dataset()
		return analytics.InstancesPerPublisherDataset(ds, s.Schedule().Latest(), ds.ProtocolCol())
	})
}

// Fig3b: protocols per publisher bucketed by view-hours.
func (s *Study) Fig3b() *analytics.BucketBreakdown {
	return memo(s, "fig3b", func() *analytics.BucketBreakdown {
		ds := s.Dataset()
		snap := s.Schedule().Latest()
		return analytics.InstancesByBucketDataset(ds, snap, ds.ProtocolCol(), snap.Days, ecosystem.NumBuckets)
	})
}

// Fig3c: average protocols per publisher over time, plain and
// view-hour weighted.
func (s *Study) Fig3c() *analytics.AveragesSeries {
	return s.protocolBundle().Averages
}

// Fig4: CDF across publishers of the share of their view-hours served
// via DASH and via HLS.
func (s *Study) Fig4() map[string]analytics.CDF {
	return memo(s, "fig4", func() map[string]analytics.CDF {
		recs := s.latest()
		return map[string]analytics.CDF{
			"DASH": analytics.SupporterShareCDF(recs, analytics.ProtocolDim, "DASH"),
			"HLS":  analytics.SupporterShareCDF(recs, analytics.ProtocolDim, "HLS"),
		}
	})
}

// Fig5Row describes one platform category and its device models.
type Fig5Row struct {
	Platform string
	AppBased bool
	Models   []string
}

// Fig5 renders the platform taxonomy.
func (s *Study) Fig5() []Fig5Row {
	var rows []Fig5Row
	for _, pl := range device.Platforms {
		row := Fig5Row{Platform: pl.String(), AppBased: pl.AppBased()}
		for _, m := range device.OfPlatform(pl) {
			row.Models = append(row.Models, m.Name)
		}
		rows = append(rows, row)
	}
	return rows
}

// Fig6a: percentage of view-hours per platform over time.
func (s *Study) Fig6a() *analytics.TimeSeries {
	return s.platformBundle().ViewHours
}

// Fig6b: Fig6a excluding the three largest publishers.
func (s *Study) Fig6b() *analytics.TimeSeries {
	return memo(s, "fig6b", func() *analytics.TimeSeries {
		ds := s.Dataset()
		exclude := analytics.TopPublisherMask(ds, s.Schedule().Latest(), 3)
		return analytics.ShareOfViewHoursDataset(ds, s.Schedule(), ds.PlatformCol(), exclude)
	})
}

// Fig6c: percentage of views per platform over time.
func (s *Study) Fig6c() *analytics.TimeSeries {
	return s.platformBundle().Views
}

// Fig7: percentage of publishers supporting each platform over time.
func (s *Study) Fig7() *analytics.TimeSeries {
	return s.platformBundle().Publishers
}

// Fig8: CDF of individual view duration per platform, latest snapshot.
func (s *Study) Fig8() map[string]analytics.CDF {
	return memo(s, "fig8", func() map[string]analytics.CDF {
		return analytics.DurationCDFs(s.latest())
	})
}

// Fig9a/b/c: platforms per publisher (histogram, bucketed, averages).
func (s *Study) Fig9a() *analytics.Histogram {
	return memo(s, "fig9a", func() *analytics.Histogram {
		ds := s.Dataset()
		return analytics.InstancesPerPublisherDataset(ds, s.Schedule().Latest(), ds.PlatformCol())
	})
}

// Fig9b: platforms per publisher bucketed by view-hours.
func (s *Study) Fig9b() *analytics.BucketBreakdown {
	return memo(s, "fig9b", func() *analytics.BucketBreakdown {
		ds := s.Dataset()
		snap := s.Schedule().Latest()
		return analytics.InstancesByBucketDataset(ds, snap, ds.PlatformCol(), snap.Days, ecosystem.NumBuckets)
	})
}

// Fig9c: average platforms per publisher over time.
func (s *Study) Fig9c() *analytics.AveragesSeries {
	return s.platformBundle().Averages
}

// Fig10a/b/c: view-hour shares of devices within browsers, mobile, and
// set-top boxes.
func (s *Study) Fig10(pl device.Platform) *analytics.TimeSeries {
	return memo(s, "fig10:"+pl.String(), func() *analytics.TimeSeries {
		ds := s.Dataset()
		return analytics.ShareOfViewHoursDataset(ds, s.Schedule(), ds.DeviceCol(pl.String()), nil)
	})
}

// Fig11a: percentage of publishers using each top-5 CDN over time.
func (s *Study) Fig11a() *analytics.TimeSeries {
	return s.cdnBundle().Publishers
}

// Fig11b: percentage of view-hours per CDN over time.
func (s *Study) Fig11b() *analytics.TimeSeries {
	return s.cdnBundle().ViewHours
}

// Fig12a/b/c: CDNs per publisher.
func (s *Study) Fig12a() *analytics.Histogram {
	return memo(s, "fig12a", func() *analytics.Histogram {
		ds := s.Dataset()
		return analytics.InstancesPerPublisherDataset(ds, s.Schedule().Latest(), ds.CDNCol())
	})
}

// Fig12b: CDNs per publisher bucketed by view-hours.
func (s *Study) Fig12b() *analytics.BucketBreakdown {
	return memo(s, "fig12b", func() *analytics.BucketBreakdown {
		ds := s.Dataset()
		snap := s.Schedule().Latest()
		return analytics.InstancesByBucketDataset(ds, snap, ds.CDNCol(), snap.Days, ecosystem.NumBuckets)
	})
}

// Fig12c: average CDNs per publisher over time.
func (s *Study) Fig12c() *analytics.AveragesSeries {
	return s.cdnBundle().Averages
}

// CDNSegregation reproduces §4.3's live/VoD segregation numbers.
func (s *Study) CDNSegregation() analytics.SegregationStats {
	return memo(s, "cdn-segregation", func() analytics.SegregationStats {
		return analytics.Segregation(s.latest())
	})
}

// Fig13 runs the §5 complexity analysis over the latest inventory.
func (s *Study) Fig13() (complexity.Report, error) {
	return memoized(s, "fig13", func() (complexity.Report, error) {
		return complexity.Analyze(s.Eco.InventoryAt(s.Schedule().Latest().Start))
	})
}

// prevalence pairs Fig14's two results for the memo table.
type prevalence struct {
	points []syndication.PrevalencePoint
	cdf    *stats.ECDF
}

// Fig14 computes the syndication-prevalence CDF.
func (s *Study) Fig14() ([]syndication.PrevalencePoint, *stats.ECDF) {
	p := memo(s, "fig14", func() prevalence {
		points, cdf := syndication.Prevalence(s.Eco.Publishers)
		return prevalence{points, cdf}
	})
	return p.points, p.cdf
}

// QoEComparison is the Fig 15/16 outcome for one ISP×CDN slice.
type QoEComparison struct {
	ISP        string
	CDN        string
	Owner      syndication.QoEDist
	Syndicator syndication.QoEDist
}

// Fig15and16 runs the playback-based owner-versus-syndicator
// comparison on the paper's two slices. The comparison is computed
// once per study; both figures render from the same run.
func (s *Study) Fig15and16() ([]QoEComparison, error) {
	return memoized(s, "fig15and16", func() ([]QoEComparison, error) {
		sessions := s.cfg.QoESessions
		if sessions <= 0 {
			sessions = 150
		}
		seed := s.cfg.Seed
		if seed == 0 {
			seed = ecosystem.DefaultSeed
		}
		slices, err := syndication.DefaultSlices(s.Eco.CDNs, sessions, seed)
		if err != nil {
			return nil, err
		}
		cat := syndication.StarCatalogue()
		s7, ok := cat.SyndicatorByID("S7")
		if !ok {
			return nil, fmt.Errorf("core: star catalogue lost S7")
		}
		var out []QoEComparison
		for _, sl := range slices {
			owner, synd, err := syndication.CompareQoE(cat.Owner, s7, cat.TitleID, sl)
			if err != nil {
				return nil, err
			}
			out = append(out, QoEComparison{
				ISP: sl.ISP.Name, CDN: sl.CDN.Name, Owner: owner, Syndicator: synd,
			})
		}
		return out, nil
	})
}

// Fig17 returns the star catalogue's ladder table.
func (s *Study) Fig17() ([]syndication.LadderRow, error) {
	return memoized(s, "fig17", func() ([]syndication.LadderRow, error) {
		cat := syndication.StarCatalogue()
		if err := cat.CheckFig17Invariants(); err != nil {
			return nil, err
		}
		return cat.LadderTable(), nil
	})
}

// Fig18 runs the origin-storage redundancy experiment.
func (s *Study) Fig18() (*syndication.StorageExperiment, error) {
	return memoized(s, "fig18", func() (*syndication.StorageExperiment, error) {
		return syndication.RunStorageExperiment(syndication.DefaultStorageConfig())
	})
}

// Macro computes the §3 macroscopic-context statistics over the latest
// snapshot.
func (s *Study) Macro() analytics.MacroStats {
	return memo(s, "macro", func() analytics.MacroStats {
		snap := s.Schedule().Latest()
		return analytics.MacroDataset(s.Dataset(), snap, snap.Days)
	})
}

// ProtocolPlatformCross computes the protocol × platform view-hour
// cross-tabulation over the latest snapshot: the §3 "any slice of the
// data" capability, and a direct view of the §2 coupling between
// packaging choices and device reach (Apple rows are 100% HLS).
func (s *Study) ProtocolPlatformCross() *analytics.CrossTab {
	return memo(s, "crosstab", func() *analytics.CrossTab {
		return analytics.Cross(s.latest(), analytics.PlatformDim, analytics.ProtocolDim)
	})
}
