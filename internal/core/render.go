package core

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"vmp/internal/analytics"
	"vmp/internal/complexity"
	"vmp/internal/device"
	"vmp/internal/obs"
	"vmp/internal/stats"
)

// FigureIDs lists every renderable experiment in presentation order.
var FigureIDs = []string{
	"macro", "tab1", "2a", "2b", "2c", "3a", "3b", "3c", "4", "5",
	"6a", "6b", "6c", "7", "8", "9a", "9b", "9c",
	"10a", "10b", "10c", "11a", "11b", "12a", "12b", "12c",
	"cdn-segregation", "crosstab", "13a", "13b", "13c", "14", "15", "16", "17", "18",
}

// Render writes the named table or figure as text. Unknown IDs return
// an error listing the valid ones. When a tracer is attached (see
// SetTracer) each call records a figure.<id> span, so a full-study run
// yields a per-figure timing table.
func (s *Study) Render(w io.Writer, id string) error {
	sp := s.tracer.Start("figure."+id, 0)
	err := s.renderFigure(w, id)
	ok := int64(1)
	if err != nil {
		ok = 0
	}
	sp.End(obs.KV("ok", ok))
	return err
}

func (s *Study) renderFigure(w io.Writer, id string) error {
	switch id {
	case "macro":
		m := s.Macro()
		fmt.Fprintln(w, "§3 macroscopic context (latest snapshot)")
		fmt.Fprintf(w, "  publishers observed:      %d   (paper: >100)\n", m.Publishers)
		fmt.Fprintf(w, "  sampled view records:     %d (expansion-weighted)\n", m.SampledViews)
		fmt.Fprintf(w, "  views represented:        %.2e\n", m.ViewsRepresented)
		fmt.Fprintf(w, "  daily view-hours (X units): %.2e\n", m.DailyViewHours)
		fmt.Fprintf(w, "  distinct geographies:     %d   (paper: 180 countries)\n", m.DistinctGeos)
	case "tab1":
		fmt.Fprintln(w, "Table 1: streaming protocol manifest extensions")
		for _, r := range s.Table1() {
			fmt.Fprintf(w, "  %-16s %-6s %-50s inferred=%s\n", r.Protocol, r.Extension, r.SampleURL, r.Inferred)
		}
	case "2a":
		renderTimeSeries(w, "Fig 2a: % of publishers supporting each protocol", s.Fig2a())
	case "2b":
		renderTimeSeries(w, "Fig 2b: % of view-hours by protocol", s.Fig2b())
	case "2c":
		renderTimeSeries(w, "Fig 2c: % of view-hours by protocol (excl. DASH drivers)", s.Fig2c())
	case "3a":
		renderHistogram(w, "Fig 3a: number of protocols per publisher", s.Fig3a())
	case "3b":
		renderBuckets(w, "Fig 3b: protocols per publisher, by view-hour decade", s.Fig3b())
	case "3c":
		renderAverages(w, "Fig 3c: average protocols per publisher", s.Fig3c())
	case "4":
		renderCDFMap(w, "Fig 4: CDF across publishers of % view-hours via protocol", s.Fig4(),
			[]float64{25, 50, 75, 90})
	case "5":
		fmt.Fprintln(w, "Fig 5: target platforms for video publishers")
		for _, r := range s.Fig5() {
			kind := "browser-based"
			if r.AppBased {
				kind = "app-based"
			}
			fmt.Fprintf(w, "  %-8s (%s): %s\n", r.Platform, kind, strings.Join(r.Models, ", "))
		}
	case "6a":
		renderTimeSeries(w, "Fig 6a: % of view-hours per platform", s.Fig6a())
	case "6b":
		renderTimeSeries(w, "Fig 6b: % of view-hours per platform (excl. 3 largest)", s.Fig6b())
	case "6c":
		renderTimeSeries(w, "Fig 6c: % of views per platform", s.Fig6c())
	case "7":
		renderTimeSeries(w, "Fig 7: % of publishers supporting each platform", s.Fig7())
	case "8":
		renderCDFMap(w, "Fig 8: CDF of view duration (hours) per platform", s.Fig8(), nil)
		recs := s.latest()
		over, count := map[string]float64{}, map[string]float64{}
		for i := range recs {
			keys := analytics.PlatformDim(&recs[i])
			if len(keys) == 0 {
				continue
			}
			count[keys[0]]++
			if recs[i].ViewSec > 0.2*3600 {
				over[keys[0]]++
			}
		}
		for _, pl := range []string{"Mobile", "Browser", "SetTop"} {
			if count[pl] > 0 {
				fmt.Fprintf(w, "  views > 0.2h on %-8s: %5.1f%%\n", pl, 100*over[pl]/count[pl])
			}
		}
	case "9a":
		renderHistogram(w, "Fig 9a: number of platforms per publisher", s.Fig9a())
	case "9b":
		renderBuckets(w, "Fig 9b: platforms per publisher, by view-hour decade", s.Fig9b())
	case "9c":
		renderAverages(w, "Fig 9c: average platforms per publisher", s.Fig9c())
	case "10a":
		renderTimeSeries(w, "Fig 10a: % of browser view-hours by player", s.Fig10(device.Browser))
	case "10b":
		renderTimeSeries(w, "Fig 10b: % of mobile view-hours by device", s.Fig10(device.Mobile))
	case "10c":
		renderTimeSeries(w, "Fig 10c: % of set-top view-hours by device", s.Fig10(device.SetTop))
	case "11a":
		renderTimeSeries(w, "Fig 11a: % of publishers using each CDN", topCDNsOnly(s.Fig11a()))
	case "11b":
		renderTimeSeries(w, "Fig 11b: % of view-hours by CDN", topCDNsOnly(s.Fig11b()))
	case "12a":
		renderHistogram(w, "Fig 12a: number of CDNs per publisher", s.Fig12a())
	case "12b":
		renderBuckets(w, "Fig 12b: CDNs per publisher, by view-hour decade", s.Fig12b())
	case "12c":
		renderAverages(w, "Fig 12c: average CDNs per publisher", s.Fig12c())
	case "cdn-segregation":
		st := s.CDNSegregation()
		fmt.Fprintln(w, "§4.3: live/VoD CDN segregation among eligible publishers")
		fmt.Fprintf(w, "  eligible publishers (multi-CDN, both content types): %d\n", st.EligiblePublishers)
		fmt.Fprintf(w, "  with ≥1 VoD-only CDN:  %5.1f%%  (paper: 30%%)\n", 100*st.VoDOnlyFrac)
		fmt.Fprintf(w, "  with ≥1 live-only CDN: %5.1f%%  (paper: 19%%)\n", 100*st.LiveOnlyFrac)
		fmt.Fprintf(w, "  fully segregated:      %d publisher(s) (paper: one extreme case)\n", st.FullySegregated)
	case "crosstab":
		ct := s.ProtocolPlatformCross()
		fmt.Fprintln(w, "§3 slice: % of each platform's view-hours by protocol (latest snapshot)")
		fmt.Fprintf(w, "  %-10s", "")
		for _, col := range ct.ColKeys {
			fmt.Fprintf(w, " %16s", col)
		}
		fmt.Fprintln(w)
		for _, row := range ct.RowKeys {
			fmt.Fprintf(w, "  %-10s", row)
			for _, col := range ct.ColKeys {
				fmt.Fprintf(w, " %15.1f%%", 100*ct.RowShare(row, col))
			}
			fmt.Fprintln(w)
		}
	case "13a", "13b", "13c":
		rep, err := s.Fig13()
		if err != nil {
			return err
		}
		var c complexity.Correlation
		switch id {
		case "13a":
			c = rep.Combinations
		case "13b":
			c = rep.ProtocolTitles
		default:
			c = rep.UniqueSDKs
		}
		fmt.Fprintf(w, "Fig %s: %s vs publisher view-hours\n", id, c.Metric)
		fmt.Fprintf(w, "  log-log slope %.3f  →  %.2fx per 10x view-hours (R²=%.2f, p=%.2g, n=%d)\n",
			c.Fit.Slope, c.PerDecadeFactor, c.Fit.R2, c.Fit.PValue, c.Fit.N)
		if id == "13c" {
			fmt.Fprintf(w, "  largest publisher maintains %.0f distinct SDK/browser versions (paper: up to 85)\n", rep.MaxUniqueSDKs)
		}
	case "14":
		_, cdf := s.Fig14()
		fmt.Fprintln(w, "Fig 14: CDF over owners of % of full syndicators used")
		for _, q := range []float64{0.2, 0.5, 0.8, 0.95, 1.0} {
			v, err := cdf.Quantile(q)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "  p%-3.0f: %5.1f%% of syndicators\n", q*100, v)
		}
		fmt.Fprintf(w, "  owners using ≥1 syndicator: %.1f%%  (paper: >80%%)\n", 100*(1-cdf.At(0)))
	case "15", "16":
		comps, err := s.Fig15and16()
		if err != nil {
			return err
		}
		if id == "15" {
			fmt.Fprintln(w, "Fig 15: average bitrate, owner vs syndicator (iPad clients)")
			for _, c := range comps {
				fmt.Fprintf(w, "  ISP %s / CDN %s: owner median %.0f Kbps, syndicator %.0f Kbps (%.2fx)\n",
					c.ISP, c.CDN, c.Owner.MedianKbps, c.Syndicator.MedianKbps,
					c.Owner.MedianKbps/c.Syndicator.MedianKbps)
			}
		} else {
			fmt.Fprintln(w, "Fig 16: rebuffering, owner vs syndicator (iPad clients)")
			for _, c := range comps {
				fmt.Fprintf(w, "  ISP %s / CDN %s: p90 rebuffering owner %.2f%%, syndicator %.2f%%\n",
					c.ISP, c.CDN, c.Owner.P90RebufPct, c.Syndicator.P90RebufPct)
			}
		}
	case "17":
		rows, err := s.Fig17()
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "Fig 17: bitrate ladders for one syndicated video ID")
		for _, r := range rows {
			fmt.Fprintf(w, "  %-4s %2d bitrates  [%d..%d Kbps]  %v\n",
				r.Publisher, r.Count, r.MinKbps, r.MaxKbps, r.Bitrates)
		}
	case "18":
		exp, err := s.Fig18()
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "Fig 18: origin storage savings under syndication models")
		for _, r := range exp.Reports {
			rep := r.Report
			fmt.Fprintf(w, "  CDN %s: catalogue %.0f TB\n", r.CDN, float64(rep.TotalBytes)/1e12)
			fmt.Fprintf(w, "    5%% tolerance : %7.1f TB (%.1f%%)   paper: 316.1 TB (16.5%%)\n",
				float64(rep.Tol5)/1e12, rep.Tol5Pct)
			fmt.Fprintf(w, "    10%% tolerance: %7.1f TB (%.1f%%)   paper: 865 TB (45.2%%)\n",
				float64(rep.Tol10)/1e12, rep.Tol10Pct)
			fmt.Fprintf(w, "    integrated   : %7.1f TB (%.1f%%)   paper: 1257 TB (65.6%%)\n",
				float64(rep.Integrated)/1e12, rep.IntegratedPct)
		}
	default:
		return fmt.Errorf("core: unknown figure %q (valid: %s)", id, strings.Join(FigureIDs, ", "))
	}
	return nil
}

// RenderAll renders every experiment in order.
func (s *Study) RenderAll(w io.Writer) error {
	for _, id := range FigureIDs {
		if err := s.Render(w, id); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

// renderTimeSeries prints first/mid/latest values per key.
func renderTimeSeries(w io.Writer, title string, ts *analytics.TimeSeries) {
	fmt.Fprintln(w, title)
	n := len(ts.Snapshots)
	if n == 0 {
		fmt.Fprintln(w, "  (no snapshots)")
		return
	}
	fmt.Fprintf(w, "  %-18s %10s %10s %10s\n", "", ts.Snapshots[0], ts.Snapshots[n/2], ts.Snapshots[n-1])
	for _, k := range ts.Keys {
		row := ts.Series[k]
		fmt.Fprintf(w, "  %-18s %9.1f%% %9.1f%% %9.1f%%\n", k, row[0], row[n/2], row[n-1])
	}
}

// topCDNsOnly filters a CDN series to the anonymized top five, folding
// the regionals into "other".
func topCDNsOnly(ts *analytics.TimeSeries) *analytics.TimeSeries {
	out := &analytics.TimeSeries{Snapshots: ts.Snapshots, Series: map[string][]float64{}}
	other := make([]float64, len(ts.Snapshots))
	hasOther := false
	for _, k := range ts.Keys {
		if len(k) == 1 { // A-E
			out.Keys = append(out.Keys, k)
			out.Series[k] = ts.Series[k]
			continue
		}
		hasOther = true
		for i, v := range ts.Series[k] {
			other[i] += v
		}
	}
	sort.Strings(out.Keys)
	if hasOther {
		out.Keys = append(out.Keys, "other")
		out.Series["other"] = other
	}
	return out
}

func renderHistogram(w io.Writer, title string, h *analytics.Histogram) {
	fmt.Fprintln(w, title)
	fmt.Fprintf(w, "  %-10s %12s %12s\n", "instances", "% publishers", "% view-hours")
	for i, n := range h.Counts {
		fmt.Fprintf(w, "  %-10d %11.1f%% %11.1f%%\n", n, h.PubPct[i], h.VHPct[i])
	}
}

func renderBuckets(w io.Writer, title string, bb *analytics.BucketBreakdown) {
	fmt.Fprintln(w, title)
	labels := []string{"<X", "X-10X", "10X-100X", "100X-1000X", "10^3X-10^4X", "10^4X-10^5X", ">10^5X"}
	for b, cell := range bb.Buckets {
		label := fmt.Sprintf("bucket %d", b)
		if b < len(labels) {
			label = labels[b]
		}
		if bb.PubsInBucket[b] == 0 {
			continue
		}
		var counts []int
		for n := range cell {
			counts = append(counts, n)
		}
		sort.Ints(counts)
		fmt.Fprintf(w, "  %-12s %5.1f%% of publishers:", label, bb.PubsInBucket[b])
		for _, n := range counts {
			fmt.Fprintf(w, "  %d→%.1f%%", n, cell[n])
		}
		fmt.Fprintln(w)
	}
}

func renderAverages(w io.Writer, title string, a *analytics.AveragesSeries) {
	fmt.Fprintln(w, title)
	n := len(a.Snapshots)
	if n == 0 {
		return
	}
	fmt.Fprintf(w, "  %-10s first=%.2f latest=%.2f\n", "mean", a.Mean[0], a.Mean[n-1])
	fmt.Fprintf(w, "  %-10s first=%.2f latest=%.2f\n", "weighted", a.Weighted[0], a.Weighted[n-1])
}

func renderCDFMap(w io.Writer, title string, cdfs map[string]analytics.CDF, quantiles []float64) {
	fmt.Fprintln(w, title)
	var keys []string
	for k := range cdfs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		cdf := cdfs[k]
		e := stats.NewECDF(rebuild(cdf))
		if e.N() == 0 {
			continue
		}
		fmt.Fprintf(w, "  %-10s p25=%.3f p50=%.3f p75=%.3f p90=%.3f\n",
			k, e.MustQuantile(0.25), e.MustQuantile(0.5), e.MustQuantile(0.75), e.MustQuantile(0.9))
	}
	_ = quantiles
}

// rebuild reconstitutes an approximate sample from CDF points so the
// renderer can quote quantiles; exact for the step CDFs we produce.
func rebuild(c analytics.CDF) []float64 {
	var out []float64
	prev := 0.0
	const resolution = 1000
	for i, x := range c.X {
		n := int((c.P[i] - prev) * resolution)
		if n < 1 {
			n = 1
		}
		for j := 0; j < n; j++ {
			out = append(out, x)
		}
		prev = c.P[i]
	}
	return out
}
