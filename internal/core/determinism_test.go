package core

import (
	"bytes"
	"testing"
)

// TestDoubleRunByteIdentical is the repository's reproducibility
// contract, stated end to end: two independent studies built from the
// same seed render the complete figure set byte-for-byte identically,
// on the serial path and on the parallel path — and the two paths
// agree with each other. The vmplint analyzers (nondeterminism,
// maporder, frozenwrite) exist to keep this test passing; a failure
// here means an order- or clock-dependent computation slipped past
// them.
func TestDoubleRunByteIdentical(t *testing.T) {
	cfg := StudyConfig{Seed: 7, SnapshotStride: 12, QoESessions: 20}

	render := func(parallel bool) []byte {
		t.Helper()
		var buf bytes.Buffer
		var err error
		if parallel {
			err = NewStudy(cfg).RenderAllParallel(&buf, 8)
		} else {
			err = NewStudy(cfg).RenderAll(&buf)
		}
		if err != nil {
			t.Fatalf("RenderAll (parallel=%v): %v", parallel, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("RenderAll (parallel=%v): empty output", parallel)
		}
		return buf.Bytes()
	}

	serial1, serial2 := render(false), render(false)
	if !bytes.Equal(serial1, serial2) {
		t.Errorf("two serial runs from seed %d differ (%d vs %d bytes)",
			cfg.Seed, len(serial1), len(serial2))
	}

	parallel1, parallel2 := render(true), render(true)
	if !bytes.Equal(parallel1, parallel2) {
		t.Errorf("two parallel runs from seed %d differ (%d vs %d bytes)",
			cfg.Seed, len(parallel1), len(parallel2))
	}

	if !bytes.Equal(serial1, parallel1) {
		t.Errorf("serial and parallel runs from seed %d differ (%d vs %d bytes)",
			cfg.Seed, len(serial1), len(parallel1))
	}
}
