package core

import (
	"bytes"
	"encoding/json"
	"io"
	"testing"
	"time"

	"vmp/internal/obs"
	"vmp/internal/simclock"
)

// TestRenderFigureSpans checks the per-figure instrumentation: with a
// tracer attached, every Render records one figure.<id> span, and the
// shared study (no tracer) records nothing.
func TestRenderFigureSpans(t *testing.T) {
	s := study(t)
	if s.Tracer() != nil {
		t.Fatal("shared study should have no tracer")
	}
	tr := obs.NewTracer(simclock.NewManual(time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC)), 64)
	s.SetTracer(tr)
	defer s.SetTracer(nil)

	for _, id := range []string{"tab1", "5", "tab1"} {
		if err := s.Render(io.Discard, id); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Render(io.Discard, "no-such-figure"); err == nil {
		t.Fatal("unknown figure should error")
	}

	stats := tr.StageStats()
	byName := map[string]obs.StageStat{}
	for _, st := range stats {
		byName[st.Name] = st
	}
	if byName["figure.tab1"].Count != 2 {
		t.Fatalf("figure.tab1 count: %+v", stats)
	}
	if byName["figure.5"].Count != 1 {
		t.Fatalf("figure.5 count: %+v", stats)
	}
	if byName["figure.no-such-figure"].Count != 1 {
		t.Fatalf("failed renders should still be timed: %+v", stats)
	}
	var snap = tr.Snapshot()
	for _, sp := range snap.Spans {
		want := int64(1)
		if sp.Name == "figure.no-such-figure" {
			want = 0
		}
		if sp.Attrs["ok"] != want {
			t.Fatalf("span %s ok attr %d, want %d", sp.Name, sp.Attrs["ok"], want)
		}
	}
}

// TestRenderTraceDeterministic renders the same cheap figures twice
// under frozen manual clocks and requires byte-identical trace JSON —
// the study engine rides the same determinism contract as the serving
// plane.
func TestRenderTraceDeterministic(t *testing.T) {
	s := study(t)
	run := func() []byte {
		tr := obs.NewTracer(simclock.NewManual(time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC)), 64)
		s.SetTracer(tr)
		defer s.SetTracer(nil)
		for _, id := range []string{"tab1", "5"} {
			if err := s.Render(io.Discard, id); err != nil {
				t.Fatal(err)
			}
		}
		out, err := json.Marshal(tr.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("figure trace diverged:\n%s\n%s", a, b)
	}
}
