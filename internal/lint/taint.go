package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// taintEngine is the shared alias-taint machinery behind frozenwrite,
// atomicdiscipline, and bufalias: starting from analyzer-specific
// sources (Dataset accessors, atomic.Pointer loads, scratch-field
// reads), it propagates taint through local assignments and range
// statements to a fixpoint, then reports writes through tainted
// memory.
//
// The engine is interprocedural to a fixed point over the package call
// graph (see dataflow.go): every function declaration is summarized by
// asking whether any return expression reaches tainted memory, and —
// because summaries feed back into the taint of call expressions — a
// helper chain like
//
//	func (e *Engine) Generation() *Generation { return e.gen.Load() }
//	func (e *Engine) gen() *Generation        { return e.Generation() }
//
// carries its taint to every caller at any depth without whole-program
// analysis. The summary lattice is two-valued and only grows, so the
// worklist terminates, and the result is order-independent (a monotone
// fixed point), which keeps finding output deterministic.
type taintEngine struct {
	p *Pass

	// source reports whether a call originates tainted memory
	// (analyzer-specific: frozen accessors, atomic pointer loads).
	source func(*ast.CallExpr) bool

	// cross reports whether a cross-package callee is summarized as
	// returning tainted memory (see summary.go); nil when the engine
	// runs without whole-program facts.
	cross func(types.Object) bool

	// exprSource optionally taints non-call expressions at origin —
	// bufalias marks selector reads of scratch fields this way.
	exprSource func(ast.Expr) bool

	// propagateRecv additionally taints the result of any method call
	// whose receiver is tainted (v.Dataset.All() when v is tainted).
	propagateRecv bool

	// summaries marks package functions whose results are tainted.
	summaries map[types.Object]bool
}

// newTaintEngine builds an engine with a call-shaped source, an
// optional cross-package fact source, and computes the fixed-point
// interprocedural summaries for the package under analysis.
func (p *Pass) newTaintEngine(source func(*ast.CallExpr) bool, cross func(types.Object) bool, propagateRecv bool) *taintEngine {
	t := &taintEngine{p: p, source: source, cross: cross, propagateRecv: propagateRecv}
	t.computeSummaries()
	return t
}

// newExprTaintEngine builds an engine whose source is an arbitrary
// expression predicate (bufalias: reads of scratch fields).
func (p *Pass) newExprTaintEngine(exprSource func(ast.Expr) bool, propagateRecv bool) *taintEngine {
	t := &taintEngine{p: p, exprSource: exprSource, propagateRecv: propagateRecv}
	t.computeSummaries()
	return t
}

// computeSummaries fills t.summaries by iterating to a fixed point
// over the package call graph: a function is summarized tainted when
// some return expression of its body reaches tainted memory given the
// summaries computed so far; each newly tainted summary re-enqueues
// the function's callers, so taint flows through helper chains of any
// depth. Functions whose results carry no reference type cannot alias
// anything and are skipped. Returns inside function literals belong to
// the literal, not the declaration, and are skipped.
func (t *taintEngine) computeSummaries() {
	t.summaries = make(map[types.Object]bool)
	g := t.p.graph()
	queue := make([]*funcNode, 0, len(g.nodes))
	queued := make(map[types.Object]bool, len(g.nodes))
	for _, n := range g.nodes {
		if summaryCandidate(n) {
			queue = append(queue, n)
			queued[n.obj] = true
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		queued[n.obj] = false
		if t.summaries[n.obj] || !t.returnsTainted(n.decl) {
			continue
		}
		t.summaries[n.obj] = true
		for _, caller := range g.callers[n.obj] {
			if !queued[caller.obj] && !t.summaries[caller.obj] && summaryCandidate(caller) {
				queue = append(queue, caller)
				queued[caller.obj] = true
			}
		}
	}
}

// summaryCandidate reports whether a function can possibly carry a
// tainted summary: it has a body and at least one reference-typed
// result.
func summaryCandidate(n *funcNode) bool {
	fd := n.decl
	if fd.Body == nil || fd.Type.Results == nil || len(fd.Type.Results.List) == 0 {
		return false
	}
	sig, ok := n.obj.Type().(*types.Signature)
	if !ok {
		return false
	}
	results := sig.Results()
	for i := 0; i < results.Len(); i++ {
		if mutableRefType(results.At(i).Type()) {
			return true
		}
	}
	return false
}

// returnsTainted reports whether any return expression of fd's body
// reaches tainted memory under the current summaries.
func (t *taintEngine) returnsTainted(fd *ast.FuncDecl) bool {
	tainted := t.localTaint(fd.Body)
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || found {
			return !found
		}
		for _, res := range ret.Results {
			if t.taintedExpr(res, tainted) {
				found = true
			}
		}
		return true
	})
	return found
}

// localTaint propagates taint through one body's assignments and range
// statements to a fixpoint (the taint lattice only grows, so this
// terminates quickly).
func (t *taintEngine) localTaint(body *ast.BlockStmt) map[types.Object]bool {
	tainted := make(map[types.Object]bool)
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				if len(st.Lhs) != len(st.Rhs) {
					return true
				}
				for i, lhs := range st.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || id.Name == "_" {
						continue
					}
					obj := t.p.objectOf(id)
					if obj == nil || tainted[obj] || !mutableRefType(obj.Type()) {
						continue
					}
					if t.taintedExpr(st.Rhs[i], tainted) {
						tainted[obj] = true
						changed = true
					}
				}
			case *ast.RangeStmt:
				if !t.taintedExpr(st.X, tainted) {
					return true
				}
				if id, ok := st.Value.(*ast.Ident); ok && id.Name != "_" {
					obj := t.p.objectOf(id)
					if obj != nil && !tainted[obj] && mutableRefType(obj.Type()) {
						tainted[obj] = true
						changed = true
					}
				}
			}
			return true
		})
	}
	return tainted
}

// checkBody reports every write through tainted memory in body via
// reportf. Rebinding a tainted variable itself (v = nil) is not a
// write-through and stays legal.
func (t *taintEngine) checkBody(body *ast.BlockStmt, reportf func(pos token.Pos)) {
	tainted := t.localTaint(body)
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if st.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range st.Lhs {
				if _, ok := lhs.(*ast.Ident); ok {
					continue
				}
				if t.taintedExpr(lhs, tainted) {
					reportf(lhs.Pos())
				}
			}
		case *ast.IncDecStmt:
			if _, ok := st.X.(*ast.Ident); ok {
				return true
			}
			if t.taintedExpr(st.X, tainted) {
				reportf(st.X.Pos())
			}
		}
		return true
	})
}

// taintedExpr reports whether e reaches tainted memory.
func (t *taintEngine) taintedExpr(e ast.Expr, tainted map[types.Object]bool) bool {
	if t.exprSource != nil && t.exprSource(e) {
		return true
	}
	switch v := e.(type) {
	case *ast.Ident:
		obj := t.p.objectOf(v)
		return obj != nil && tainted[obj]
	case *ast.CallExpr:
		return t.taintedCall(v, tainted)
	case *ast.IndexExpr:
		return t.taintedExpr(v.X, tainted)
	case *ast.SliceExpr:
		return t.taintedExpr(v.X, tainted)
	case *ast.SelectorExpr:
		return t.taintedExpr(v.X, tainted)
	case *ast.StarExpr:
		return t.taintedExpr(v.X, tainted)
	case *ast.ParenExpr:
		return t.taintedExpr(v.X, tainted)
	case *ast.UnaryExpr:
		return v.Op == token.AND && t.taintedExpr(v.X, tainted)
	}
	return false
}

// taintedCall reports whether a call originates or forwards taint: a
// direct source, a call to a function summarized as returning tainted
// memory, an append whose destination is tainted (append may return
// the same backing array), or (with propagateRecv) a method call on a
// tainted receiver. append(untainted, tainted...) copies the contents
// into the destination's backing array and stays clean.
func (t *taintEngine) taintedCall(call *ast.CallExpr, tainted map[types.Object]bool) bool {
	if t.source != nil && t.source(call) {
		return true
	}
	if id, ok := call.Fun.(*ast.Ident); ok && len(call.Args) > 0 {
		if b, ok := t.p.objectOf(id).(*types.Builtin); ok && b.Name() == "append" {
			return t.taintedExpr(call.Args[0], tainted)
		}
	}
	if obj := t.p.calleeObject(call); obj != nil {
		if t.summaries[obj] {
			return true
		}
		if t.cross != nil && t.cross(obj) {
			return true
		}
	}
	if t.propagateRecv {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if s, ok := t.p.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
				return t.taintedExpr(sel.X, tainted)
			}
		}
	}
	return false
}

// calleeObject resolves the called function or method, or nil for
// indirect calls and conversions.
func (p *Pass) calleeObject(call *ast.CallExpr) types.Object {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return p.objectOf(fn)
	case *ast.SelectorExpr:
		return p.objectOf(fn.Sel)
	}
	return nil
}
