package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// taintEngine is the shared alias-taint machinery behind frozenwrite
// and atomicdiscipline: starting from analyzer-specific source calls
// (Dataset accessors, atomic.Pointer loads), it propagates taint
// through local assignments and range statements to a fixpoint, then
// reports writes through tainted memory.
//
// The engine is one-level interprocedural: before any body is checked,
// every function declaration in the package is summarized by running
// the purely intra-function taint over its body and asking whether any
// return expression reaches tainted memory. A call to a summarized
// function then taints the caller's result — so a helper like
//
//	func (e *Engine) Generation() *Generation { return e.gen.Load() }
//
// carries its taint to every caller without whole-program analysis.
// Summaries are deliberately not iterated to a fixpoint: one level is
// what the serving plane's accessor helpers need, and deeper chains
// stay out of false-positive territory.
type taintEngine struct {
	p *Pass

	// source reports whether a call originates tainted memory
	// (analyzer-specific: frozen accessors, atomic pointer loads).
	source func(*ast.CallExpr) bool

	// propagateRecv additionally taints the result of any method call
	// whose receiver is tainted (v.Dataset.All() when v is tainted).
	propagateRecv bool

	// summaries marks package functions whose results are tainted.
	summaries map[types.Object]bool
}

// newTaintEngine builds an engine and computes the one-level
// interprocedural summaries for the package under analysis.
func (p *Pass) newTaintEngine(source func(*ast.CallExpr) bool, propagateRecv bool) *taintEngine {
	t := &taintEngine{p: p, source: source, propagateRecv: propagateRecv}
	t.computeSummaries()
	return t
}

// computeSummaries fills t.summaries: a function is summarized tainted
// when some return expression of its body reaches tainted memory under
// the intra-function taint alone. Returns inside function literals
// belong to the literal, not the declaration, and are skipped.
func (t *taintEngine) computeSummaries() {
	// Collect into a fresh map while t.summaries stays empty: summaries
	// must be strictly source-derived (one level), not dependent on the
	// order declarations happen to be visited.
	t.summaries = make(map[types.Object]bool)
	sums := make(map[types.Object]bool)
	for _, f := range t.p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Type.Results == nil || len(fd.Type.Results.List) == 0 {
				continue
			}
			obj := t.p.Info.Defs[fd.Name]
			if obj == nil {
				continue
			}
			tainted := t.localTaint(fd.Body)
			returnsTainted := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false
				}
				ret, ok := n.(*ast.ReturnStmt)
				if !ok || returnsTainted {
					return true
				}
				for _, res := range ret.Results {
					if t.taintedExpr(res, tainted) {
						returnsTainted = true
					}
				}
				return true
			})
			if returnsTainted {
				sums[obj] = true
			}
		}
	}
	t.summaries = sums
}

// localTaint propagates taint through one body's assignments and range
// statements to a fixpoint (the taint lattice only grows, so this
// terminates quickly).
func (t *taintEngine) localTaint(body *ast.BlockStmt) map[types.Object]bool {
	tainted := make(map[types.Object]bool)
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				if len(st.Lhs) != len(st.Rhs) {
					return true
				}
				for i, lhs := range st.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || id.Name == "_" {
						continue
					}
					obj := t.p.objectOf(id)
					if obj == nil || tainted[obj] || !mutableRefType(obj.Type()) {
						continue
					}
					if t.taintedExpr(st.Rhs[i], tainted) {
						tainted[obj] = true
						changed = true
					}
				}
			case *ast.RangeStmt:
				if !t.taintedExpr(st.X, tainted) {
					return true
				}
				if id, ok := st.Value.(*ast.Ident); ok && id.Name != "_" {
					obj := t.p.objectOf(id)
					if obj != nil && !tainted[obj] && mutableRefType(obj.Type()) {
						tainted[obj] = true
						changed = true
					}
				}
			}
			return true
		})
	}
	return tainted
}

// checkBody reports every write through tainted memory in body via
// reportf. Rebinding a tainted variable itself (v = nil) is not a
// write-through and stays legal.
func (t *taintEngine) checkBody(body *ast.BlockStmt, reportf func(pos token.Pos)) {
	tainted := t.localTaint(body)
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if st.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range st.Lhs {
				if _, ok := lhs.(*ast.Ident); ok {
					continue
				}
				if t.taintedExpr(lhs, tainted) {
					reportf(lhs.Pos())
				}
			}
		case *ast.IncDecStmt:
			if _, ok := st.X.(*ast.Ident); ok {
				return true
			}
			if t.taintedExpr(st.X, tainted) {
				reportf(st.X.Pos())
			}
		}
		return true
	})
}

// taintedExpr reports whether e reaches tainted memory.
func (t *taintEngine) taintedExpr(e ast.Expr, tainted map[types.Object]bool) bool {
	switch v := e.(type) {
	case *ast.Ident:
		obj := t.p.objectOf(v)
		return obj != nil && tainted[obj]
	case *ast.CallExpr:
		return t.taintedCall(v, tainted)
	case *ast.IndexExpr:
		return t.taintedExpr(v.X, tainted)
	case *ast.SliceExpr:
		return t.taintedExpr(v.X, tainted)
	case *ast.SelectorExpr:
		return t.taintedExpr(v.X, tainted)
	case *ast.StarExpr:
		return t.taintedExpr(v.X, tainted)
	case *ast.ParenExpr:
		return t.taintedExpr(v.X, tainted)
	case *ast.UnaryExpr:
		return v.Op == token.AND && t.taintedExpr(v.X, tainted)
	}
	return false
}

// taintedCall reports whether a call originates or forwards taint: a
// direct source, a call to a function summarized as returning tainted
// memory, or (with propagateRecv) a method call on a tainted receiver.
func (t *taintEngine) taintedCall(call *ast.CallExpr, tainted map[types.Object]bool) bool {
	if t.source(call) {
		return true
	}
	if obj := t.p.calleeObject(call); obj != nil && t.summaries[obj] {
		return true
	}
	if t.propagateRecv {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if s, ok := t.p.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
				return t.taintedExpr(sel.X, tainted)
			}
		}
	}
	return false
}

// calleeObject resolves the called function or method, or nil for
// indirect calls and conversions.
func (p *Pass) calleeObject(call *ast.CallExpr) types.Object {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return p.objectOf(fn)
	case *ast.SelectorExpr:
		return p.objectOf(fn.Sel)
	}
	return nil
}
