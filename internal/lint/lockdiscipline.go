package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockDiscipline checks the two lock-hygiene rules the telemetry.Store
// read path (and every future mutex-holding type) depends on. For each
// struct type in the package holding a sync.Mutex or sync.RWMutex
// field, it flags:
//
//   - a method that, while holding the lock, calls another method of
//     the same receiver that itself acquires the same receiver's lock
//     (self-deadlock with a Mutex or a write-locked RWMutex; a lost
//     reader-writer fairness guarantee otherwise);
//   - a method that returns an internal slice- or map-typed field
//     while holding the lock via a deferred unlock — the caller
//     receives an aliased view of guarded state, so the method must
//     copy before returning.
//
// The scan is linear over each method body (events in source order;
// a deferred unlock keeps the lock held to the end) and does not
// descend into function literals, whose execution time is unknown.
var LockDiscipline = &Analyzer{
	Name: "lockdiscipline",
	Doc:  "forbid nested same-receiver locking and leaking guarded slices",
	Run:  runLockDiscipline,
}

// lockEvent is one lock-relevant action in a method body, in source
// order.
type lockEvent struct {
	pos  token.Pos
	kind int // evAcquire, evRelease, evCall, evReturnField
	name string
	expr ast.Expr
}

const (
	evAcquire = iota
	evRelease
	evDeferRelease
	evCall
	evReturnField
)

func runLockDiscipline(p *Pass) {
	mutexTypes := p.mutexHolders()
	if len(mutexTypes) == 0 {
		return
	}
	methods := p.collectMethods(mutexTypes)
	// lockers: methods that acquire their receiver's lock anywhere.
	lockers := make(map[*types.Named]map[string]bool)
	for named, byName := range methods {
		set := make(map[string]bool)
		for name, m := range byName {
			for _, ev := range m.events {
				if ev.kind == evAcquire {
					set[name] = true
					break
				}
			}
		}
		lockers[named] = set
	}
	for named, byName := range methods {
		for name, m := range byName {
			p.checkMethodLocking(named, name, m, lockers[named])
		}
	}
}

// mutexHolders finds named struct types in the package with a
// sync.Mutex or sync.RWMutex field, mapping them to those field
// names.
func (p *Pass) mutexHolders() map[*types.Named]map[string]bool {
	out := make(map[*types.Named]map[string]bool)
	scope := p.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if isSyncMutex(f.Type()) {
				if out[named] == nil {
					out[named] = make(map[string]bool)
				}
				out[named][f.Name()] = true
			}
		}
	}
	return out
}

func isSyncMutex(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// methodLock is one method body reduced to its lock-relevant events.
type methodLock struct {
	decl   *ast.FuncDecl
	events []lockEvent
}

func (p *Pass) collectMethods(mutexTypes map[*types.Named]map[string]bool) map[*types.Named]map[string]*methodLock {
	out := make(map[*types.Named]map[string]*methodLock)
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || len(fd.Recv.List) != 1 {
				continue
			}
			named := p.receiverNamed(fd)
			if named == nil {
				continue
			}
			fields, ok := mutexTypes[named]
			if !ok {
				continue
			}
			recvObj := p.receiverObject(fd)
			if recvObj == nil {
				continue
			}
			if out[named] == nil {
				out[named] = make(map[string]*methodLock)
			}
			out[named][fd.Name.Name] = &methodLock{
				decl:   fd,
				events: p.lockEvents(fd.Body, recvObj, fields),
			}
		}
	}
	return out
}

// receiverNamed resolves the receiver's named type (through one
// pointer).
func (p *Pass) receiverNamed(fd *ast.FuncDecl) *types.Named {
	t := p.Info.TypeOf(fd.Recv.List[0].Type)
	if t == nil {
		return nil
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

func (p *Pass) receiverObject(fd *ast.FuncDecl) types.Object {
	names := fd.Recv.List[0].Names
	if len(names) != 1 || names[0].Name == "_" {
		return nil
	}
	return p.objectOf(names[0])
}

// lockEvents reduces a method body to its source-ordered lock events.
// Function literals are skipped: when they run is unknown.
func (p *Pass) lockEvents(body *ast.BlockStmt, recvObj types.Object, mutexFields map[string]bool) []lockEvent {
	var events []lockEvent
	deferredCalls := make(map[*ast.CallExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			deferredCalls[d.Call] = true
		}
		return true
	})

	isRecv := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && p.objectOf(id) == recvObj
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			for _, res := range v.Results {
				target := res
				if sl, ok := target.(*ast.SliceExpr); ok {
					target = sl.X
				}
				sel, ok := target.(*ast.SelectorExpr)
				if !ok || !isRecv(sel.X) {
					continue
				}
				if t := p.Info.TypeOf(sel); t != nil {
					switch t.Underlying().(type) {
					case *types.Slice, *types.Map:
						events = append(events, lockEvent{pos: res.Pos(), kind: evReturnField, name: sel.Sel.Name, expr: res})
					}
				}
			}
		case *ast.CallExpr:
			sel, ok := v.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			// recv.mu.Lock() / recv.mu.Unlock() and friends.
			if inner, ok := sel.X.(*ast.SelectorExpr); ok &&
				isRecv(inner.X) && mutexFields[inner.Sel.Name] {
				switch sel.Sel.Name {
				case "Lock", "RLock":
					if !deferredCalls[v] {
						events = append(events, lockEvent{pos: v.Pos(), kind: evAcquire, name: inner.Sel.Name})
					}
				case "Unlock", "RUnlock":
					kind := evRelease
					if deferredCalls[v] {
						kind = evDeferRelease
					}
					events = append(events, lockEvent{pos: v.Pos(), kind: kind, name: inner.Sel.Name})
				}
			}
			// recv.Method(...): same-receiver method call.
			if isRecv(sel.X) {
				events = append(events, lockEvent{pos: v.Pos(), kind: evCall, name: sel.Sel.Name})
			}
		}
		return true
	})
	return events
}

// checkMethodLocking runs the linear held/not-held scan over one
// method's events.
func (p *Pass) checkMethodLocking(named *types.Named, name string, m *methodLock, lockers map[string]bool) {
	held := false
	for _, ev := range m.events {
		switch ev.kind {
		case evAcquire:
			held = true
		case evRelease:
			held = false
		case evDeferRelease:
			// Lock stays held until the method returns.
		case evCall:
			if held && lockers[ev.name] && ev.name != name {
				p.Reportf(ev.pos,
					"%s.%s calls %s while holding the receiver's lock; %s acquires the same lock (deadlock risk) — call it before locking or split out an unlocked variant",
					named.Obj().Name(), name, ev.name, ev.name)
			}
		case evReturnField:
			if held {
				p.Reportf(ev.pos,
					"%s.%s returns internal field %s while holding the lock; the caller gets an aliased view of guarded state — copy before returning",
					named.Obj().Name(), name, ev.name)
			}
		}
	}
}
