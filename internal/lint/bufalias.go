package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// BufAlias guards the reuse contract of scratch buffers: in packages
// that reset and reuse slice-typed struct fields (the wire decoder's
// frame/record scratch, the encoder's payload buffer, sensor batches),
// a subslice of the reused buffer is only valid until the next reset.
// Letting one escape into long-lived state — a struct field, a
// package-level variable, a map — is the silent-corruption bug the
// zero-copy wire path makes possible: the next decode rewrites the
// bytes under an alias someone kept.
//
// Scratch fields are declared with //vmp:scratch or inferred from the
// reset idiom (d.buf = d.buf[:0]). Reads of a scratch field taint, and
// the shared fixed-point engine (see taintEngine) carries that taint
// through helpers that return scratch views. Two shapes are reported:
//
//   - a scratch-derived value assigned into a non-scratch struct field
//     or package-level variable. Copying (append into a fresh backing
//     array, string conversion) launders the taint; a three-index
//     subslice (s[i:j:j]) is treated as a deliberate capacity-capped
//     handoff and is exempt.
//   - append through an uncapped mid-buffer subslice of scratch
//     (append(d.buf[2:4], ...)): with spare capacity the append writes
//     into the shared backing array past the window. Appending from
//     the start (d.buf[:0], d.buf[:n]) is the reset-reuse idiom and
//     stays legal; so does any three-index subslice.
//
// The analysis is package-local by design: cross-package callers of
// e.g. wire.DecodeAll are governed by the documented ownership rule
// ("records are valid until the next DecodeAll"), which this analyzer
// enforces where the scratch actually lives.
var BufAlias = &Analyzer{
	Name: "bufalias",
	Doc:  "forbid subslices of reset-and-reused scratch buffers escaping into long-lived state",
	Run:  runBufAlias,
}

func runBufAlias(p *Pass) {
	if !strings.HasPrefix(p.Path, "vmp/internal/") && !strings.HasPrefix(p.Path, "vmp/cmd/") {
		return
	}
	g := p.graph()
	if len(g.scratch) == 0 {
		return
	}
	source := func(e ast.Expr) bool {
		f := selectedField(e, p.Info)
		return f != nil && g.scratch[f]
	}
	eng := p.newExprTaintEngine(source, false)
	for _, n := range g.nodes {
		if n.decl.Body == nil {
			continue
		}
		p.checkBufAliasBody(n.decl.Body, g, eng)
	}
}

func (p *Pass) checkBufAliasBody(body *ast.BlockStmt, g *callGraph, eng *taintEngine) {
	tainted := eng.localTaint(body)
	ast.Inspect(body, func(node ast.Node) bool {
		switch v := node.(type) {
		case *ast.AssignStmt:
			if len(v.Lhs) != len(v.Rhs) {
				return true
			}
			for i, lhs := range v.Lhs {
				target := p.escapeTarget(lhs)
				if target == nil || g.scratch[target] {
					continue
				}
				rhs := unparen(v.Rhs[i])
				if !eng.taintedExpr(rhs, tainted) {
					continue
				}
				if sl, ok := rhs.(*ast.SliceExpr); ok && sl.Slice3 {
					continue // capacity-capped handoff
				}
				p.Reportf(rhs.Pos(),
					"subslice of reused scratch buffer escapes into long-lived state through %s; copy it (append(nil, s...)) or hand off a three-index subslice",
					target.Name())
			}
		case *ast.CallExpr:
			id, ok := v.Fun.(*ast.Ident)
			if !ok || len(v.Args) == 0 {
				return true
			}
			if b, ok := p.objectOf(id).(*types.Builtin); !ok || b.Name() != "append" {
				return true
			}
			sl, ok := unparen(v.Args[0]).(*ast.SliceExpr)
			if !ok || sl.Slice3 || !nonZeroLow(p, sl.Low) {
				return true
			}
			if eng.taintedExpr(sl.X, tainted) {
				p.Reportf(v.Pos(),
					"append through an uncapped mid-buffer subslice of reused scratch can clobber the shared backing array; use a three-index subslice or append from the start")
			}
		}
		return true
	})
}

// escapeTarget resolves an assignment LHS to the long-lived location
// it writes, if any: a struct field (possibly through indexing or
// dereference, as in out[i].CDNs) or a package-level variable. Locals
// are not escape targets — the taint engine tracks those.
func (p *Pass) escapeTarget(e ast.Expr) types.Object {
	e = unparen(e)
	for {
		switch v := e.(type) {
		case *ast.IndexExpr:
			e = unparen(v.X)
			continue
		case *ast.StarExpr:
			e = unparen(v.X)
			continue
		}
		break
	}
	if f := selectedField(e, p.Info); f != nil {
		return f
	}
	if id, ok := e.(*ast.Ident); ok {
		if v, ok := p.objectOf(id).(*types.Var); ok && !v.IsField() &&
			v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v
		}
	}
	return nil
}

// nonZeroLow reports whether a slice low bound is present and not the
// constant zero (d.buf[:n] and d.buf[0:] are the reset-reuse idiom).
func nonZeroLow(p *Pass, low ast.Expr) bool {
	if low == nil {
		return false
	}
	if tv, ok := p.Info.Types[low]; ok && tv.Value != nil {
		if val, exact := constant.Int64Val(tv.Value); exact && val == 0 {
			return false
		}
	}
	return true
}
