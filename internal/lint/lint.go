// Package lint is a self-contained static-analysis driver (in the
// spirit of golang.org/x/tools/go/analysis, but stdlib-only) that
// machine-checks the invariants the study engine and the live serving
// plane depend on. Nine analyzers enforce the contracts that keep
// every figure byte-identical across runs, across the serial and
// parallel render paths, and across the offline and online query
// paths:
//
//   - nondeterminism: wall-clock and process-seeded randomness stay
//     out of library code; time flows through simclock, randomness
//     through seeded generators.
//   - maporder: accumulation loops never depend on Go's randomized
//     map iteration order.
//   - frozenwrite: telemetry.Dataset is immutable outside its own
//     package — the contract the race-free parallel figure pool
//     relies on. One-level interprocedural: helpers returning views
//     taint their callers.
//   - lockdiscipline: mutex-holding types neither re-enter their own
//     locks nor leak internal slices from under them.
//   - errcheck: internal/ and cmd/ code does not silently drop error
//     returns.
//   - atomicdiscipline: atomically-accessed state is never touched
//     plainly, and values published through an atomic.Pointer are
//     never mutated afterwards.
//   - goroutinelifecycle: every long-lived goroutine is tied to a
//     shutdown path, so daemons cannot leak consumers.
//   - chandiscipline: sends in daemon loops are cancellable, channels
//     are closed only by their owner, and queue channels are bounded.
//   - ctxflow: caller contexts (r.Context(), ctx parameters) are
//     threaded into blocking work; bare time.Sleep is forbidden.
//
// Findings can be suppressed, one line at a time, with a directive
// comment carrying an explicit reason:
//
//	//lint:ignore <analyzer|all> <reason>
//
// placed on the offending line or the line directly above it. The
// reason is load-bearing: a directive without one (or with a trailing
// comment posing as one) is itself reported, as analyzer "ignore",
// and suppresses nothing.
package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	Name string // short lowercase identifier, used in flags and ignore directives
	Doc  string // one-line contract statement
	Run  func(*Pass)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Path     string // import path of the package under analysis
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// objectOf resolves an identifier to its object, whether it is a use
// or a definition site.
func (p *Pass) objectOf(id *ast.Ident) types.Object {
	if obj := p.Info.Uses[id]; obj != nil {
		return obj
	}
	return p.Info.Defs[id]
}

// pkgNameOf returns the imported package an identifier denotes, or nil.
func (p *Pass) pkgNameOf(id *ast.Ident) *types.PkgName {
	pn, _ := p.objectOf(id).(*types.PkgName)
	return pn
}

// Diagnostic is one finding, positioned for editors and CI.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Analyzers returns the full suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		Nondeterminism, MapOrder, FrozenWrite, LockDiscipline, ErrCheck,
		AtomicDiscipline, GoroutineLifecycle, ChanDiscipline, CtxFlow,
	}
}

// RunPackage runs the analyzers over one loaded package and returns
// the surviving diagnostics: sorted, deduplicated, and filtered
// through //lint:ignore directives.
func RunPackage(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Path:     pkg.Path,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			report:   func(d Diagnostic) { diags = append(diags, d) },
		}
		a.Run(pass)
	}
	ignores, malformed := collectIgnores(pkg)
	diags = suppress(diags, ignores)
	// Malformed directives are findings in their own right — a missing
	// reason breaks the suite's audit trail — and cannot be suppressed.
	diags = append(diags, malformed...)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	out := diags[:0]
	for i, d := range diags {
		if i == 0 || d != diags[i-1] {
			out = append(out, d)
		}
	}
	return out
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	analyzer string // analyzer name or "all"
}

// collectIgnores parses //lint:ignore directives, keyed by file and
// line. A well-formed directive needs an analyzer name (or "all") and
// a non-empty reason that is real prose, not a trailing comment.
// Malformed directives are inert — the diagnostic they meant to
// silence still fires — and are additionally returned as "ignore"
// findings so a reasonless suppression can never merge.
func collectIgnores(pkg *Package) (map[string]map[int][]ignoreDirective, []Diagnostic) {
	out := make(map[string]map[int][]ignoreDirective)
	var malformed []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // some other directive, e.g. //lint:ignoreme
				}
				pos := pkg.Fset.Position(c.Pos())
				name, reason, _ := strings.Cut(strings.TrimSpace(rest), " ")
				reason = strings.TrimSpace(reason)
				if name == "" || reason == "" || strings.HasPrefix(reason, "//") {
					malformed = append(malformed, Diagnostic{
						Analyzer: "ignore",
						File:     pos.Filename,
						Line:     pos.Line,
						Col:      pos.Column,
						Message:  "//lint:ignore directive is missing its mandatory reason; write //lint:ignore <analyzer|all> <reason>",
					})
					continue
				}
				byLine := out[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]ignoreDirective)
					out[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], ignoreDirective{analyzer: name})
			}
		}
	}
	return out, malformed
}

// suppress drops diagnostics covered by a directive on the same line
// (trailing comment) or the line directly above (own-line comment).
func suppress(diags []Diagnostic, ignores map[string]map[int][]ignoreDirective) []Diagnostic {
	if len(ignores) == 0 {
		return diags
	}
	matches := func(d Diagnostic, line int) bool {
		for _, dir := range ignores[d.File][line] {
			if dir.analyzer == "all" || dir.analyzer == d.Analyzer {
				return true
			}
		}
		return false
	}
	out := diags[:0]
	for _, d := range diags {
		if matches(d, d.Line) || matches(d, d.Line-1) {
			continue
		}
		out = append(out, d)
	}
	return out
}

// Report is the -json output document.
type Report struct {
	Count    int          `json:"count"`
	Findings []Diagnostic `json:"findings"`
}

// JSON renders diagnostics as the stable machine-readable report.
func JSON(diags []Diagnostic) ([]byte, error) {
	if diags == nil {
		diags = []Diagnostic{}
	}
	return json.MarshalIndent(Report{Count: len(diags), Findings: diags}, "", "  ")
}
