// Package lint is a self-contained static-analysis driver (in the
// spirit of golang.org/x/tools/go/analysis, but stdlib-only) that
// machine-checks the invariants the study engine and the live serving
// plane depend on. Fourteen analyzers enforce the contracts that keep
// every figure byte-identical across runs, across the serial and
// parallel render paths, and across the offline and online query
// paths — and that keep the zero-copy wire path and the zero-alloc
// observability fast path from silently regressing:
//
//   - nondeterminism: wall-clock and process-seeded randomness stay
//     out of library code; time flows through simclock, randomness
//     through seeded generators.
//   - maporder: accumulation loops never depend on Go's randomized
//     map iteration order.
//   - frozenwrite: telemetry.Dataset is immutable outside its own
//     package — the contract the race-free parallel figure pool
//     relies on. Interprocedural to a fixed point over the package
//     call graph: helper chains returning views taint their callers
//     at any depth.
//   - lockdiscipline: mutex-holding types neither re-enter their own
//     locks nor leak internal slices from under them.
//   - errcheck: internal/ and cmd/ code does not silently drop error
//     returns.
//   - atomicdiscipline: atomically-accessed state is never touched
//     plainly, and values published through an atomic.Pointer are
//     never mutated afterwards.
//   - goroutinelifecycle: every long-lived goroutine is tied to a
//     shutdown path, so daemons cannot leak consumers.
//   - chandiscipline: sends in daemon loops are cancellable, channels
//     are closed only by their owner, and queue channels are bounded.
//   - ctxflow: caller contexts (r.Context(), ctx parameters) are
//     threaded into blocking work; bare time.Sleep is forbidden.
//   - bufalias: in packages that reset and reuse slice-field scratch
//     buffers (//vmp:scratch, or the d.buf = d.buf[:0] reset idiom),
//     subslices of a reused buffer must not escape into long-lived
//     state without a copy or a capacity-capped three-index subslice,
//     and append must not run through an uncapped mid-buffer subslice.
//   - hotalloc: functions annotated //vmp:hotpath may not contain
//     allocating constructs — make, new, slice/map/pointer composite
//     literals, capturing closures, string concatenation or
//     string<->[]byte conversions, fmt calls — unless the line carries
//     //vmp:alloc <reason>; calls into same-package helpers that
//     allocate are traced through the call graph.
//   - httpdiscipline: every HTTP handler path writes its status at
//     most once, mutates headers only before the first body write,
//     and returns sync.Pool objects on every path after Get.
//   - fsyncdiscipline: a file written via a temp path is fsynced
//     before the rename and its directory fsynced after (the WAL
//     checkpoint protocol, DESIGN §11), and a handler never writes an
//     HTTP 202 before the WAL append that makes the ack durable.
//   - lockorder: mutex classes (type fields, package-level mutexes)
//     are acquired in one global order; a cycle in the cross-package
//     acquisition graph is a potential deadlock.
//
// The suite is whole-program: packages are analyzed in import-DAG
// order, each one publishing per-function summaries (taint returns,
// allocation facts, lifecycle facts, lock-acquisition sets — see
// summary.go) that dependents consult at cross-package call sites, so
// the fixed-point engines keep their in-package precision through
// exported helper chains.
//
// Findings can be suppressed, one line at a time, with a directive
// comment carrying an explicit reason:
//
//	//lint:ignore <analyzer|all> <reason>
//
// placed on the offending line or the line directly above it. The
// reason is load-bearing: a directive without one (or with a trailing
// comment posing as one) is itself reported, as analyzer "ignore",
// and suppresses nothing.
package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	Name string // short lowercase identifier, used in flags and ignore directives
	Doc  string // one-line contract statement
	Run  func(*Pass)

	// Finish, when set, runs once after every package has been
	// analyzed, over the assembled whole-program facts — the hook for
	// properties no single package can decide (lockorder's global
	// cycle detection). Its findings are not line-suppressible: they
	// have no single offending line.
	Finish func(*Program) []Diagnostic
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Path     string // import path of the package under analysis
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	report func(Diagnostic)

	// cg is the package call graph plus //vmp annotations, built once
	// per package by RunPackage and shared by every analyzer (see
	// dataflow.go). Accessed through Pass.graph, which fills it lazily
	// for passes constructed by hand.
	cg *callGraph

	// prog is the whole-program fact store: summaries of every
	// dependency analyzed before this package (nil for passes built by
	// hand, in which case cross-package facts simply resolve to
	// nothing and the engines fall back to per-package precision).
	prog *Program
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// objectOf resolves an identifier to its object, whether it is a use
// or a definition site.
func (p *Pass) objectOf(id *ast.Ident) types.Object {
	if obj := p.Info.Uses[id]; obj != nil {
		return obj
	}
	return p.Info.Defs[id]
}

// pkgNameOf returns the imported package an identifier denotes, or nil.
func (p *Pass) pkgNameOf(id *ast.Ident) *types.PkgName {
	pn, _ := p.objectOf(id).(*types.PkgName)
	return pn
}

// Diagnostic is one finding, positioned for editors and CI.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Analyzers returns the full suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		Nondeterminism, MapOrder, FrozenWrite, LockDiscipline, ErrCheck,
		AtomicDiscipline, GoroutineLifecycle, ChanDiscipline, CtxFlow,
		BufAlias, HotAlloc, HTTPDiscipline, FsyncDiscipline, LockOrder,
	}
}

// RunPackage runs the analyzers over one loaded package in isolation —
// a fresh whole-program store holding only this package's own summary —
// and returns the surviving diagnostics: sorted, deduplicated, and
// filtered through //lint:ignore directives. For cross-package
// precision, load dependencies too and use RunPackages (or RunTree).
func RunPackage(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	prog := NewProgram()
	diags, _ := runOnePackage(pkg, prog, analyzers)
	diags = append(diags, runFinishers(prog, analyzers)...)
	return sortDedup(diags)
}

// sortDedup orders diagnostics by (file, line, col, analyzer, message)
// and drops exact duplicates — the stable output contract of both
// RunPackage and the parallel RunPackages.
func sortDedup(diags []Diagnostic) []Diagnostic {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	out := diags[:0]
	for i, d := range diags {
		if i == 0 || d != diags[i-1] {
			out = append(out, d)
		}
	}
	return out
}

// RunPackages runs the analyzers over every loaded package in
// import-DAG order — dependencies first, so each package analyzes with
// its dependencies' summaries in scope — fanning independent packages
// out across GOMAXPROCS workers, and returns the merged findings sorted
// by path. Loading must happen before the call (the Loader is not safe
// for concurrent use), but loaded packages are read-only during
// analysis (token.FileSet position lookups are internally locked), so
// analyzing them in parallel is safe. The output is deterministic
// regardless of scheduling: the fixed-point engines are monotone and
// order-independent, the DAG fixes which summaries each package sees,
// and the merge is globally sorted.
func RunPackages(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	byPath := make(map[string]int, len(pkgs))
	for i, pkg := range pkgs {
		byPath[pkg.Path] = i
	}
	deps := make([][]int, len(pkgs))
	for i, pkg := range pkgs {
		if pkg.Types == nil {
			continue
		}
		for _, imp := range pkg.Types.Imports() {
			if j, ok := byPath[imp.Path()]; ok && j != i {
				deps[i] = append(deps[i], j)
			}
		}
	}
	prog := NewProgram()
	results := make([][]Diagnostic, len(pkgs))
	runDAG(deps, func(i int) {
		results[i], _ = runOnePackage(pkgs[i], prog, analyzers)
	})
	var merged []Diagnostic
	for _, r := range results {
		merged = append(merged, r...)
	}
	merged = append(merged, runFinishers(prog, analyzers)...)
	return sortDedup(merged)
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	analyzer string // analyzer name or "all"
}

// collectIgnores parses //lint:ignore directives, keyed by file and
// line. A well-formed directive needs an analyzer name (or "all") and
// a non-empty reason that is real prose, not a trailing comment.
// Malformed directives are inert — the diagnostic they meant to
// silence still fires — and are additionally returned as "ignore"
// findings so a reasonless suppression can never merge.
func collectIgnores(pkg *Package) (map[string]map[int][]ignoreDirective, []Diagnostic) {
	out := make(map[string]map[int][]ignoreDirective)
	var malformed []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // some other directive, e.g. //lint:ignoreme
				}
				pos := pkg.Fset.Position(c.Pos())
				name, reason, _ := strings.Cut(strings.TrimSpace(rest), " ")
				reason = strings.TrimSpace(reason)
				if name == "" || reason == "" || strings.HasPrefix(reason, "//") {
					malformed = append(malformed, Diagnostic{
						Analyzer: "ignore",
						File:     pos.Filename,
						Line:     pos.Line,
						Col:      pos.Column,
						Message:  "//lint:ignore directive is missing its mandatory reason; write //lint:ignore <analyzer|all> <reason>",
					})
					continue
				}
				byLine := out[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]ignoreDirective)
					out[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], ignoreDirective{analyzer: name})
			}
		}
	}
	return out, malformed
}

// suppress drops diagnostics covered by a directive on the same line
// (trailing comment) or the line directly above (own-line comment).
func suppress(diags []Diagnostic, ignores map[string]map[int][]ignoreDirective) []Diagnostic {
	if len(ignores) == 0 {
		return diags
	}
	matches := func(d Diagnostic, line int) bool {
		for _, dir := range ignores[d.File][line] {
			if dir.analyzer == "all" || dir.analyzer == d.Analyzer {
				return true
			}
		}
		return false
	}
	out := diags[:0]
	for _, d := range diags {
		if matches(d, d.Line) || matches(d, d.Line-1) {
			continue
		}
		out = append(out, d)
	}
	return out
}

// Report is the -json output document.
type Report struct {
	Count    int          `json:"count"`
	Findings []Diagnostic `json:"findings"`
}

// JSON renders diagnostics as the stable machine-readable report.
func JSON(diags []Diagnostic) ([]byte, error) {
	if diags == nil {
		diags = []Diagnostic{}
	}
	return json.MarshalIndent(Report{Count: len(diags), Findings: diags}, "", "  ")
}
