package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"sync"
)

// This file lifts the per-package dataflow substrate (dataflow.go,
// taint.go) to whole-program analysis. After a package is analyzed,
// buildPackageSummary distills every exported function into FuncFacts —
// does its result alias frozen-dataset memory, does it return an
// atomic.Pointer-published value, may it allocate, does it loop without
// a shutdown path, does it reach a WAL append, which lock classes does
// it (transitively) acquire — and the facts are published into a
// Program. Dependent packages, analyzed later along the import DAG,
// consult those facts wherever their own fixed-point engines previously
// went blind at a cross-package call: a telemetry accessor wrapped by a
// helper in another package carries its taint to the caller exactly as
// an in-package helper chain does.
//
// Facts are keyed by the function's fully qualified name
// ((*vmp/internal/wal.Log).AppendBatch, vmp/internal/telemetry.Scan) so
// they resolve across separately type-checked package instances, and
// only exported functions on exported receivers are published — nothing
// else is callable from a dependent, and the narrow surface keeps the
// summary hash (the incremental cache's dependency key, see cache.go)
// stable under internal refactors.

// FuncFacts is the exported dataflow summary of one function.
type FuncFacts struct {
	// TaintFrozen: some result aliases telemetry.Dataset/DimColumn
	// internals (consumed by frozenwrite in dependents).
	TaintFrozen bool `json:"taintFrozen,omitempty"`
	// TaintAtomic: some result aliases a value loaded from an
	// atomic.Pointer or atomic.Value (consumed by atomicdiscipline).
	TaintAtomic bool `json:"taintAtomic,omitempty"`
	// Allocates: the function (transitively) contains an unapproved
	// allocating construct (consumed by hotalloc at cross-package call
	// sites on //vmp:hotpath paths).
	Allocates bool `json:"allocates,omitempty"`
	// Hotpath: the function is //vmp:hotpath-annotated, so its own
	// package polices its allocations and callers trust it.
	Hotpath bool `json:"hotpath,omitempty"`
	// Loops / Shutdown: the body contains a for/range statement, and
	// whether it shows a recognized shutdown construct (consumed by
	// goroutinelifecycle for cross-package `go pkg.F(...)` spawns).
	Loops    bool `json:"loops,omitempty"`
	Shutdown bool `json:"shutdown,omitempty"`
	// WALAppend: the function (transitively) reaches a WAL AppendBatch
	// (consumed by fsyncdiscipline's ack-ordering rule).
	WALAppend bool `json:"walAppend,omitempty"`
	// Locks: the lock classes the function (transitively) acquires,
	// sorted (consumed by lockorder at cross-package call sites).
	Locks []string `json:"locks,omitempty"`
}

// isZero reports whether the facts carry no information worth
// publishing; empty facts are omitted to keep summary hashes stable.
func (f FuncFacts) isZero() bool {
	return !f.TaintFrozen && !f.TaintAtomic && !f.Allocates && !f.Hotpath &&
		!f.Loops && !f.Shutdown && !f.WALAppend && len(f.Locks) == 0
}

// LockEdge is one observed lock-order constraint: Acquired was taken
// (directly or through a call) while Held was held, at the recorded
// position. The lockorder analyzer assembles these into the global
// acquisition-order graph and reports cycles.
type LockEdge struct {
	Held     string `json:"held"`
	Acquired string `json:"acquired"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
}

// PackageSummary is one package's published facts: per-function
// dataflow summaries plus its lock-order edges, and a content hash
// that doubles as the dependency component of cache keys.
type PackageSummary struct {
	Path  string               `json:"path"`
	Funcs map[string]FuncFacts `json:"funcs,omitempty"`
	Edges []LockEdge           `json:"edges,omitempty"`
	Hash  string               `json:"hash"`
}

// Program is the whole-program view: the summaries of every package
// processed so far in one run, keyed by import path. It is safe for
// concurrent use — the DAG scheduler publishes summaries from parallel
// workers while dependents read them.
type Program struct {
	mu        sync.RWMutex
	summaries map[string]*PackageSummary
}

// NewProgram returns an empty whole-program fact store.
func NewProgram() *Program {
	return &Program{summaries: make(map[string]*PackageSummary)}
}

func (pr *Program) add(s *PackageSummary) {
	pr.mu.Lock()
	pr.summaries[s.Path] = s
	pr.mu.Unlock()
}

// Summary returns the published summary for an import path, or nil.
func (pr *Program) Summary(path string) *PackageSummary {
	pr.mu.RLock()
	defer pr.mu.RUnlock()
	return pr.summaries[path]
}

// Summaries returns every published summary, sorted by import path.
func (pr *Program) Summaries() []*PackageSummary {
	pr.mu.RLock()
	defer pr.mu.RUnlock()
	paths := make([]string, 0, len(pr.summaries))
	for path := range pr.summaries {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	out := make([]*PackageSummary, 0, len(paths))
	for _, path := range paths {
		out = append(out, pr.summaries[path])
	}
	return out
}

// depFacts resolves the published facts for a cross-package callee, or
// ok=false when the object is local, not a function, or its package has
// no summary in the program.
func (p *Pass) depFacts(obj types.Object) (FuncFacts, bool) {
	if p.prog == nil || obj == nil {
		return FuncFacts{}, false
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg() == p.Pkg {
		return FuncFacts{}, false
	}
	s := p.prog.Summary(fn.Pkg().Path())
	if s == nil {
		return FuncFacts{}, false
	}
	f, ok := s.Funcs[fn.FullName()]
	return f, ok
}

// depTaint adapts a facts predicate into the taint engines'
// cross-package source shape.
func (p *Pass) depTaint(sel func(FuncFacts) bool) func(types.Object) bool {
	return func(obj types.Object) bool {
		f, ok := p.depFacts(obj)
		return ok && sel(f)
	}
}

// summaryPass is the synthetic analyzer identity under which package
// facts are computed; it never reports.
var summaryPass = &Analyzer{Name: "summary", Doc: "internal: whole-program fact extraction"}

// buildPackageSummary computes a package's exported facts on top of the
// shared call graph. The intermediate per-function results (allocation
// sites, lock sets, WAL reachability, taint engines) are stashed on the
// graph so the analyzers that run next reuse them instead of
// recomputing.
func buildPackageSummary(pkg *Package, prog *Program, g *callGraph) *PackageSummary {
	p := &Pass{
		Analyzer: summaryPass,
		Path:     pkg.Path,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
		report:   func(Diagnostic) {},
		cg:       g,
		prog:     prog,
	}
	frozen := p.frozenEngine().summaries
	atomicT := p.atomicEngine().summaries
	p.ensureAllocFacts()
	p.ensureLockFacts()
	p.ensureWALFacts()
	sum := &PackageSummary{Path: pkg.Path, Funcs: make(map[string]FuncFacts)}
	for _, n := range g.nodes {
		fn, ok := n.obj.(*types.Func)
		if !ok || !exportableFunc(fn) {
			continue
		}
		facts := FuncFacts{
			TaintFrozen: frozen[n.obj],
			TaintAtomic: atomicT[n.obj],
			Allocates:   g.mayAlloc[n.obj],
			Hotpath:     g.hotpath[n.obj],
			WALAppend:   g.walReach[n.obj],
			Locks:       g.lockSets[n.obj],
		}
		if n.decl.Body != nil {
			facts.Loops = hasLoop(n.decl.Body)
			if facts.Loops {
				facts.Shutdown = p.bodyHasShutdownPath(n.decl.Body)
			}
		}
		if !facts.isZero() {
			sum.Funcs[fn.FullName()] = facts
		}
	}
	sum.Edges = g.lockEdges
	sum.Hash = summaryHash(sum)
	return sum
}

// summaryHash content-hashes a summary (hash field excluded). The JSON
// encoding is canonical — map keys marshal sorted, edge and lock lists
// are pre-sorted — so the hash is stable across runs and machines.
func summaryHash(s *PackageSummary) string {
	blob, err := json.Marshal(struct {
		Path  string               `json:"path"`
		Funcs map[string]FuncFacts `json:"funcs"`
		Edges []LockEdge           `json:"edges"`
	}{s.Path, s.Funcs, s.Edges})
	if err != nil {
		return "unhashable"
	}
	h := sha256.Sum256(blob)
	return hex.EncodeToString(h[:])
}

// exportableFunc reports whether a function is callable from a
// dependent package: exported, and (for methods) declared on an
// exported receiver type.
func exportableFunc(fn *types.Func) bool {
	if fn.Pkg() == nil || !fn.Exported() {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	recv := sig.Recv()
	if recv == nil {
		return true
	}
	t := recv.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Exported()
}

// frozenEngine returns the package's frozen-dataset taint engine,
// building it once per call graph; frozenwrite and the summary builder
// share it. Cross-package calls consult dependency TaintFrozen facts.
func (p *Pass) frozenEngine() *taintEngine {
	g := p.graph()
	if g.frozenEng == nil {
		g.frozenEng = p.newTaintEngine(p.isFrozenAccessor,
			p.depTaint(func(f FuncFacts) bool { return f.TaintFrozen }), false)
	}
	return g.frozenEng
}

// atomicEngine returns the package's atomic-publication taint engine
// (shared by atomicdiscipline and the summary builder), with
// cross-package calls consulting dependency TaintAtomic facts.
func (p *Pass) atomicEngine() *taintEngine {
	g := p.graph()
	if g.atomicEng == nil {
		g.atomicEng = p.newTaintEngine(p.isAtomicPointerLoad,
			p.depTaint(func(f FuncFacts) bool { return f.TaintAtomic }), true)
	}
	return g.atomicEng
}

// crossAllocSite is a call to a cross-package function whose summary
// says it allocates off-hotpath, recorded for hotalloc.
type crossAllocSite struct {
	pos  token.Pos
	name string
}

// ensureAllocFacts computes, once per call graph, each function's
// unapproved direct allocation sites, its calls into allocating
// cross-package dependencies, and the may-allocate fixed point over
// the package call graph.
func (p *Pass) ensureAllocFacts() {
	g := p.graph()
	if g.mayAlloc != nil {
		return
	}
	g.allocDirect = make(map[types.Object][]allocSite)
	g.allocCross = make(map[types.Object][]crossAllocSite)
	g.mayAlloc = make(map[types.Object]bool)
	for _, n := range g.nodes {
		if n.decl.Body == nil {
			continue
		}
		g.allocDirect[n.obj] = p.allocSites(n.decl.Body, g)
		obj := n.obj
		ast.Inspect(n.decl.Body, func(node ast.Node) bool {
			call, ok := node.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := p.calleeObject(call)
			f, ok := p.depFacts(callee)
			if !ok || !f.Allocates || f.Hotpath {
				return true
			}
			pos := p.Fset.Position(call.Pos())
			if g.allocApproved(pos.Filename, pos.Line) {
				return true
			}
			g.allocCross[obj] = append(g.allocCross[obj], crossAllocSite{
				pos:  call.Pos(),
				name: callee.Pkg().Name() + "." + callee.Name(),
			})
			return true
		})
	}
	// Fixed point: a function may allocate when it has a direct site, a
	// cross-package allocating call, or calls a same-package function
	// that may. Monotone, so the worklist terminates.
	var queue []*funcNode
	for _, n := range g.nodes {
		if len(g.allocDirect[n.obj]) > 0 || len(g.allocCross[n.obj]) > 0 {
			g.mayAlloc[n.obj] = true
			queue = append(queue, n)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, caller := range g.callers[n.obj] {
			if !g.mayAlloc[caller.obj] {
				g.mayAlloc[caller.obj] = true
				queue = append(queue, caller)
			}
		}
	}
}

// ensureWALFacts computes, once per call graph, which functions
// (transitively) reach a WAL append: a direct call to an AppendBatch
// method declared under vmp/internal/ (concrete or interface), a call
// to a cross-package function whose summary says WALAppend, or a call
// to a same-package function that does either.
func (p *Pass) ensureWALFacts() {
	g := p.graph()
	if g.walReach != nil {
		return
	}
	g.walReach = make(map[types.Object]bool)
	var queue []*funcNode
	for _, n := range g.nodes {
		if n.decl.Body == nil {
			continue
		}
		direct := false
		ast.Inspect(n.decl.Body, func(node ast.Node) bool {
			if direct {
				return false
			}
			call, ok := node.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := p.calleeObject(call)
			if isWALAppend(callee) {
				direct = true
			} else if f, ok := p.depFacts(callee); ok && f.WALAppend {
				direct = true
			}
			return !direct
		})
		if direct {
			g.walReach[n.obj] = true
			queue = append(queue, n)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, caller := range g.callers[n.obj] {
			if !g.walReach[caller.obj] {
				g.walReach[caller.obj] = true
				queue = append(queue, caller)
			}
		}
	}
}

// isWALAppend reports whether obj is an AppendBatch method declared
// under vmp/internal/ — the WAL's durability entry point, whether
// reached concretely ((*wal.Log).AppendBatch) or through an interface
// (live.WAL).
func isWALAppend(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Name() != "AppendBatch" || fn.Pkg() == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return strings.HasPrefix(fn.Pkg().Path(), "vmp/internal/")
}

// Lock-order fact extraction. Lock classes are named
// "pkgpath.Type.field" for mutex fields of named struct types and
// "pkgpath.var" for package-level mutexes; same-class pairs are skipped
// (different instances of one type commonly nest, and lockdiscipline
// already polices same-receiver re-entrance), so every recorded edge is
// an inter-class ordering constraint.
const (
	loAcquire = iota
	loRelease
	loDeferRelease
	loCall
)

// lockOrderEvent is one lock-relevant action in a body, source order.
type lockOrderEvent struct {
	pos    token.Pos
	kind   int
	class  string
	callee types.Object
}

// ensureLockFacts computes, once per call graph, each function's
// transitive lock-acquisition set and the package's lock-order edges
// (acquisitions and lock-holding calls observed while another class was
// held).
func (p *Pass) ensureLockFacts() {
	g := p.graph()
	if g.lockSets != nil {
		return
	}
	g.lockSets = make(map[types.Object][]string)
	events := make(map[types.Object][]lockOrderEvent)
	sets := make(map[types.Object]map[string]bool)
	for _, n := range g.nodes {
		set := make(map[string]bool)
		if n.decl.Body != nil {
			evs := p.lockOrderEvents(n.decl.Body)
			events[n.obj] = evs
			for _, ev := range evs {
				if ev.kind == loAcquire {
					set[ev.class] = true
				}
			}
		}
		sets[n.obj] = set
	}
	// Transitive closure over same-package call edges plus dependency
	// Locks facts, to a fixed point (monotone: sets only grow).
	for changed := true; changed; {
		changed = false
		for _, n := range g.nodes {
			set := sets[n.obj]
			for _, ev := range events[n.obj] {
				if ev.kind != loCall {
					continue
				}
				for _, class := range p.calleeLockSet(ev.callee, sets) {
					if !set[class] {
						set[class] = true
						changed = true
					}
				}
			}
		}
	}
	// Edge emission: a linear held-set scan per body (deferred unlocks
	// hold to the end, mirroring lockdiscipline); acquisitions and
	// lock-holding calls under a held class record an ordering edge.
	var edges []LockEdge
	addEdge := func(held, acquired string, pos token.Pos) {
		if held == acquired {
			return
		}
		position := p.Fset.Position(pos)
		edges = append(edges, LockEdge{
			Held: held, Acquired: acquired,
			File: position.Filename, Line: position.Line, Col: position.Column,
		})
	}
	for _, n := range g.nodes {
		var held []string
		for _, ev := range events[n.obj] {
			switch ev.kind {
			case loAcquire:
				for _, h := range held {
					addEdge(h, ev.class, ev.pos)
				}
				held = append(held, ev.class)
			case loRelease:
				for i := len(held) - 1; i >= 0; i-- {
					if held[i] == ev.class {
						held = append(held[:i], held[i+1:]...)
						break
					}
				}
			case loDeferRelease:
				// Held until return.
			case loCall:
				if len(held) == 0 {
					continue
				}
				for _, class := range p.calleeLockSet(ev.callee, sets) {
					for _, h := range held {
						addEdge(h, class, ev.pos)
					}
				}
			}
		}
	}
	g.lockEdges = sortLockEdges(edges)
	for _, n := range g.nodes {
		if classes := sortedStringSet(sets[n.obj]); len(classes) > 0 {
			g.lockSets[n.obj] = classes
		}
	}
}

// calleeLockSet returns the lock classes a callee (transitively)
// acquires: the local fixed-point set for same-package functions, the
// published Locks fact for cross-package ones.
func (p *Pass) calleeLockSet(callee types.Object, sets map[types.Object]map[string]bool) []string {
	if set, ok := sets[callee]; ok {
		return sortedStringSet(set)
	}
	if f, ok := p.depFacts(callee); ok {
		return f.Locks
	}
	return nil
}

// lockOrderEvents reduces a body to its source-ordered lock-order
// events. Function literals are skipped: when they run is unknown.
func (p *Pass) lockOrderEvents(body *ast.BlockStmt) []lockOrderEvent {
	var events []lockOrderEvent
	deferred := make(map[*ast.CallExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			deferred[d.Call] = true
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			switch sel.Sel.Name {
			case "Lock", "RLock":
				if class := p.lockClass(sel.X); class != "" {
					if !deferred[call] {
						events = append(events, lockOrderEvent{pos: call.Pos(), kind: loAcquire, class: class})
					}
					return true
				}
			case "Unlock", "RUnlock":
				if class := p.lockClass(sel.X); class != "" {
					kind := loRelease
					if deferred[call] {
						kind = loDeferRelease
					}
					events = append(events, lockOrderEvent{pos: call.Pos(), kind: kind, class: class})
					return true
				}
			}
		}
		if callee, ok := p.calleeObject(call).(*types.Func); ok && callee.Pkg() != nil {
			events = append(events, lockOrderEvent{pos: call.Pos(), kind: loCall, callee: callee})
		}
		return true
	})
	return events
}

// lockClass names the global lock class of a mutex expression:
// x.field (sync.Mutex/RWMutex field of a named struct) becomes
// "pkgpath.Type.field"; a package-level mutex variable (pkg.Mu or a
// bare identifier) becomes "pkgpath.var". Locals and unresolvable
// shapes return "".
func (p *Pass) lockClass(e ast.Expr) string {
	switch v := unparen(e).(type) {
	case *ast.SelectorExpr:
		obj := p.objectOf(v.Sel)
		vr, ok := obj.(*types.Var)
		if !ok || !isSyncMutex(vr.Type()) || vr.Pkg() == nil {
			return ""
		}
		if !vr.IsField() {
			// otherpkg.GlobalMu: a package-qualified mutex variable.
			if id, ok := unparen(v.X).(*ast.Ident); ok && p.pkgNameOf(id) != nil {
				return vr.Pkg().Path() + "." + vr.Name()
			}
			return ""
		}
		t := p.Info.TypeOf(v.X)
		if t == nil {
			return ""
		}
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok || named.Obj().Pkg() == nil {
			return ""
		}
		tn := named.Obj()
		return tn.Pkg().Path() + "." + tn.Name() + "." + vr.Name()
	case *ast.Ident:
		vr, ok := p.objectOf(v).(*types.Var)
		if !ok || !isSyncMutex(vr.Type()) || vr.Pkg() == nil {
			return ""
		}
		if vr.Parent() != p.Pkg.Scope() {
			return "" // a local mutex is per-instance state
		}
		return vr.Pkg().Path() + "." + vr.Name()
	}
	return ""
}

// sortLockEdges canonicalizes an edge list: sorted by (held, acquired,
// file, line, col), exact duplicates dropped.
func sortLockEdges(edges []LockEdge) []LockEdge {
	sort.Slice(edges, func(i, j int) bool {
		a, b := edges[i], edges[j]
		if a.Held != b.Held {
			return a.Held < b.Held
		}
		if a.Acquired != b.Acquired {
			return a.Acquired < b.Acquired
		}
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Col < b.Col
	})
	out := edges[:0]
	for i, e := range edges {
		if i == 0 || e != edges[i-1] {
			out = append(out, e)
		}
	}
	return out
}

// sortedStringSet flattens a set to a sorted slice.
func sortedStringSet(set map[string]bool) []string {
	if len(set) == 0 {
		return nil
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
