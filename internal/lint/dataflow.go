package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file is the shared interprocedural substrate under the v3
// analyzers: one call graph per package, built once by RunPackage and
// handed to every Pass, plus the //vmp annotation grammar that lets
// hot-path code declare its contracts to the suite:
//
//	//vmp:hotpath            on a func declaration: the body may not
//	                         allocate outside approved patterns
//	                         (checked by hotalloc).
//	//vmp:scratch            on a slice-typed struct field: the field
//	                         is reset and reused across calls, so
//	                         subslices of it must not escape into
//	                         long-lived state (checked by bufalias).
//	//vmp:alloc <reason>     on an allocating line (or the line above):
//	                         the allocation is deliberate — arena grow,
//	                         pool refill, cold error path. The reason
//	                         is mandatory, exactly like //lint:ignore.
//
// Scratch fields are also inferred without annotation from the reset
// idiom itself: a field assigned a subslice of itself (d.buf =
// d.buf[:0]) is reused by construction.

// funcNode is one function declaration in the package call graph.
type funcNode struct {
	decl *ast.FuncDecl
	obj  types.Object

	// callees lists the same-package functions and methods called
	// (directly, by name) anywhere in the body, deduplicated, in
	// source order. Indirect calls through function values are not
	// edges; the engines treat them as opaque.
	callees []types.Object
}

// callGraph is the per-package substrate shared by every analyzer in
// one RunPackage invocation: declaration nodes, forward and reverse
// call edges, and the parsed //vmp annotations.
type callGraph struct {
	nodes   []*funcNode // declaration order
	byObj   map[types.Object]*funcNode
	callers map[types.Object][]*funcNode // reverse edges, declaration order

	hotpath   map[types.Object]bool   // //vmp:hotpath-annotated functions
	scratch   map[types.Object]bool   // scratch slice fields (annotated or inferred)
	allocOK   map[string]map[int]bool // file -> line carrying //vmp:alloc <reason>
	malformed []Diagnostic            // reasonless //vmp:alloc directives

	// Whole-program fact layers, built lazily and idempotently on top of
	// the graph (see summary.go) and shared between the summary builder
	// and the analyzers so neither recomputes the other's fixed points.
	frozenEng   *taintEngine                      // frozen-dataset taint (frozenwrite)
	atomicEng   *taintEngine                      // atomic-publication taint (atomicdiscipline)
	allocDirect map[types.Object][]allocSite      // unapproved direct allocations per function
	allocCross  map[types.Object][]crossAllocSite // calls to allocating cross-package deps
	mayAlloc    map[types.Object]bool             // transitive may-allocate fixed point
	lockSets    map[types.Object][]string         // transitive lock classes acquired, sorted
	lockEdges   []LockEdge                        // lock-order edges observed in this package
	walReach    map[types.Object]bool             // transitively reaches a WAL AppendBatch
}

// graph returns the package call graph, building it lazily so passes
// constructed outside RunPackage (tests, ad-hoc drivers) still work.
func (p *Pass) graph() *callGraph {
	if p.cg == nil {
		p.cg = buildCallGraph(p.Fset, p.Files, p.Info)
	}
	return p.cg
}

// buildCallGraph walks the package once: function declarations become
// nodes, resolvable same-package calls become edges, and the //vmp
// annotation grammar is parsed off the comment map.
func buildCallGraph(fset *token.FileSet, files []*ast.File, info *types.Info) *callGraph {
	g := &callGraph{
		byObj:   make(map[types.Object]*funcNode),
		callers: make(map[types.Object][]*funcNode),
		hotpath: make(map[types.Object]bool),
		scratch: make(map[types.Object]bool),
		allocOK: make(map[string]map[int]bool),
	}
	objectOf := func(id *ast.Ident) types.Object {
		if obj := info.Uses[id]; obj != nil {
			return obj
		}
		return info.Defs[id]
	}
	// Pass 1: nodes, hotpath annotations, scratch field annotations.
	for _, f := range files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				obj := info.Defs[d.Name]
				if obj == nil {
					continue
				}
				n := &funcNode{decl: d, obj: obj}
				g.nodes = append(g.nodes, n)
				g.byObj[obj] = n
				if commentGroupHasDirective(d.Doc, "//vmp:hotpath") {
					g.hotpath[obj] = true
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					for _, field := range st.Fields.List {
						if !commentGroupHasDirective(field.Doc, "//vmp:scratch") &&
							!commentGroupHasDirective(field.Comment, "//vmp:scratch") {
							continue
						}
						for _, name := range field.Names {
							obj := info.Defs[name]
							if obj == nil {
								continue
							}
							if _, ok := obj.Type().Underlying().(*types.Slice); ok {
								g.scratch[obj] = true
							}
						}
					}
				}
			}
		}
	}
	// Pass 2: call edges and inferred scratch fields (reset idiom:
	// a slice field assigned a subslice of itself).
	for _, n := range g.nodes {
		if n.decl.Body == nil {
			continue
		}
		seen := make(map[types.Object]bool)
		ast.Inspect(n.decl.Body, func(node ast.Node) bool {
			switch v := node.(type) {
			case *ast.CallExpr:
				var id *ast.Ident
				switch fn := v.Fun.(type) {
				case *ast.Ident:
					id = fn
				case *ast.SelectorExpr:
					id = fn.Sel
				default:
					return true
				}
				obj := objectOf(id)
				if obj == nil || seen[obj] {
					return true
				}
				if _, ok := obj.(*types.Func); !ok {
					return true
				}
				if _, declared := g.byObj[obj]; !declared {
					return true
				}
				seen[obj] = true
				n.callees = append(n.callees, obj)
			case *ast.AssignStmt:
				for i, lhs := range v.Lhs {
					if i >= len(v.Rhs) {
						break
					}
					fieldObj := selectedField(lhs, info)
					if fieldObj == nil || g.scratch[fieldObj] {
						continue
					}
					sl, ok := v.Rhs[i].(*ast.SliceExpr)
					if !ok || selectedField(sl.X, info) != fieldObj {
						continue
					}
					if _, isSlice := fieldObj.Type().Underlying().(*types.Slice); isSlice {
						g.scratch[fieldObj] = true
					}
				}
			}
			return true
		})
	}
	for _, n := range g.nodes {
		for _, callee := range n.callees {
			g.callers[callee] = append(g.callers[callee], n)
		}
	}
	// Pass 3: //vmp:alloc approvals off the comment lists.
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//vmp:alloc")
				if !ok {
					continue
				}
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // some other directive, e.g. //vmp:allocator
				}
				pos := fset.Position(c.Pos())
				reason := strings.TrimSpace(rest)
				if reason == "" || strings.HasPrefix(reason, "//") {
					g.malformed = append(g.malformed, Diagnostic{
						Analyzer: "hotalloc",
						File:     pos.Filename,
						Line:     pos.Line,
						Col:      pos.Column,
						Message:  "//vmp:alloc directive is missing its mandatory reason; write //vmp:alloc <reason>",
					})
					continue
				}
				byLine := g.allocOK[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]bool)
					g.allocOK[pos.Filename] = byLine
				}
				byLine[pos.Line] = true
			}
		}
	}
	return g
}

// allocApproved reports whether the given file:line carries (or is
// directly below) a well-formed //vmp:alloc directive.
func (g *callGraph) allocApproved(file string, line int) bool {
	byLine := g.allocOK[file]
	return byLine != nil && (byLine[line] || byLine[line-1])
}

// commentGroupHasDirective reports whether any line of the group is
// the given directive, optionally followed by free text.
func commentGroupHasDirective(cg *ast.CommentGroup, directive string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		rest, ok := strings.CutPrefix(c.Text, directive)
		if !ok {
			continue
		}
		if rest == "" || rest[0] == ' ' || rest[0] == '\t' {
			return true
		}
	}
	return false
}

// selectedField resolves an expression of the shape x.f (possibly
// parenthesized) to the struct field object it selects, or nil.
func selectedField(e ast.Expr, info *types.Info) types.Object {
	e = unparen(e)
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	obj := info.Uses[sel.Sel]
	if obj == nil {
		obj = info.Defs[sel.Sel]
	}
	if v, ok := obj.(*types.Var); ok && v.IsField() {
		return v
	}
	return nil
}

// unparen strips any number of enclosing parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
