package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// RunTree is the cached whole-tree entry point behind vmplint: scan
// the requested directories plus their module-local import closure
// (header-only, no parsing), schedule the resulting nodes along the
// import DAG, and for each node either replay a cached result or load,
// analyze, and cache it. Cache keys cover the suite fingerprint, the
// node's file contents, and its dependencies' summary hashes, so a hit
// is byte-identical to re-analysis by construction — and an edit
// invalidates exactly the edited package plus the dependents whose
// view of it (its summary) actually changed.

// WallClock is the clock RunTree times packages with. It is satisfied
// by simclock.Wall() — declared structurally here so the lint engine
// itself never reads the wall clock (its own nondeterminism analyzer
// forbids it) and never imports the clock package outside tests.
type WallClock interface {
	Now() time.Time
}

// TreeOptions configures one RunTree invocation.
type TreeOptions struct {
	Analyzers []*Analyzer
	Tests     bool      // include _test.go files and external test packages
	CacheDir  string    // "" runs uncached
	Clock     WallClock // nil disables per-package timing in stats
}

// PackageStat is one node's timing entry.
type PackageStat struct {
	Path   string  `json:"path"`
	Millis float64 `json:"millis"`
	Cached bool    `json:"cached"`
}

// RunStats is the -stats surface: where findings came from and where
// the time went.
type RunStats struct {
	Findings    map[string]int `json:"findings"` // per-analyzer finding counts
	Packages    []PackageStat  `json:"packages"` // sorted by path
	Cached      int            `json:"cached"`
	Analyzed    int            `json:"analyzed"`
	TotalMillis float64        `json:"totalMillis"`
}

// treeNode is one directory scheduled for analysis: a package plus,
// under Tests, its merged test variant and external test package.
type treeNode struct {
	dir       string
	path      string
	requested bool     // findings reported (vs. loaded only for its summary)
	files     []string // build-selected file names, sorted
	deps      []string // module-local imports, sorted, self excluded
	fileHash  string
}

// RunTree analyzes the packages in dirs (module directories) with the
// given options and returns the findings for the requested packages —
// dependency packages pulled in for their summaries do not report —
// plus run statistics.
func RunTree(root string, dirs []string, opts TreeOptions) ([]Diagnostic, *RunStats, error) {
	loader, err := NewLoader(root)
	if err != nil {
		return nil, nil, err
	}
	var start time.Time
	if opts.Clock != nil {
		start = opts.Clock.Now()
	}
	nodes, err := scanTree(loader, dirs, opts.Tests)
	if err != nil {
		return nil, nil, err
	}
	var cache *Cache
	if opts.CacheDir != "" {
		if cache, err = OpenCache(opts.CacheDir); err != nil {
			return nil, nil, err
		}
	}
	salt, err := suiteSalt(loader, opts)
	if err != nil {
		return nil, nil, err
	}

	index := make(map[string]int, len(nodes))
	for i, n := range nodes {
		index[n.path] = i
	}
	deps := make([][]int, len(nodes))
	for i, n := range nodes {
		for _, d := range n.deps {
			if j, ok := index[d]; ok {
				deps[i] = append(deps[i], j)
			}
		}
	}

	prog := NewProgram()
	findings := make([][]Diagnostic, len(nodes))
	sumHashes := make([]string, len(nodes)) // concatenated summary hashes, post-processing
	stats := &RunStats{Findings: make(map[string]int), Packages: make([]PackageStat, len(nodes))}
	errs := make([]error, len(nodes))
	var loaderMu sync.Mutex // the Loader is not safe for concurrent use
	var statMu sync.Mutex

	runDAG(deps, func(i int) {
		n := nodes[i]
		var nodeStart time.Time
		if opts.Clock != nil {
			nodeStart = opts.Clock.Now()
		}
		key := nodeKey(salt, n, deps[i], nodes, sumHashes, opts.Tests)
		cached := false
		var sums []*PackageSummary
		if cache != nil {
			if e := cache.get(key); e != nil {
				for _, s := range e.Summaries {
					prog.add(s)
				}
				sums = e.Summaries
				findings[i] = e.Findings
				cached = true
			}
		}
		if !cached {
			loaderMu.Lock()
			pkgs, err := loadNode(loader, n, opts.Tests)
			loaderMu.Unlock()
			if err != nil {
				errs[i] = err
				return
			}
			var diags []Diagnostic
			for _, pkg := range pkgs {
				d, sum := runOnePackage(pkg, prog, opts.Analyzers)
				diags = append(diags, d...)
				sums = append(sums, sum)
			}
			findings[i] = sortDedup(diags)
			if cache != nil {
				cache.put(key, sums, findings[i])
			}
		}
		sumHashes[i] = concatSummaryHashes(sums)
		statMu.Lock()
		stats.Packages[i] = PackageStat{Path: n.path, Cached: cached}
		if opts.Clock != nil {
			stats.Packages[i].Millis = float64(opts.Clock.Now().Sub(nodeStart)) / float64(time.Millisecond)
		}
		if cached {
			stats.Cached++
		} else {
			stats.Analyzed++
		}
		statMu.Unlock()
	})
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}

	var merged []Diagnostic
	for i, n := range nodes {
		if n.requested {
			merged = append(merged, findings[i]...)
		}
	}
	merged = append(merged, runFinishers(prog, opts.Analyzers)...)
	merged = sortDedup(merged)
	for _, d := range merged {
		stats.Findings[d.Analyzer]++
	}
	if opts.Clock != nil {
		stats.TotalMillis = float64(opts.Clock.Now().Sub(start)) / float64(time.Millisecond)
	}
	return merged, stats, nil
}

// loadNode loads a node's packages: with tests (requested nodes only),
// the merged-test and external-test shape of LoadDirTests; otherwise
// the plain package. Dependency nodes always load without tests —
// dependents import the non-test package.
func loadNode(l *Loader, n *treeNode, tests bool) ([]*Package, error) {
	if tests && n.requested {
		return l.LoadDirTests(n.dir)
	}
	pkg, err := l.LoadDirWithPath(n.dir, n.path)
	if err != nil || pkg == nil {
		return nil, err
	}
	return []*Package{pkg}, nil
}

// scanTree header-scans the requested directories, then expands the
// module-local import closure so every dependency becomes a
// (non-reporting) node whose summary the dependents can consume.
// Nodes come back sorted by import path.
func scanTree(l *Loader, dirs []string, tests bool) ([]*treeNode, error) {
	byPath := make(map[string]*treeNode)
	var queue []string // import paths pending a dependency scan
	addDeps := func(n *treeNode, imports []string) {
		for _, imp := range imports {
			if imp != l.ModulePath() && !strings.HasPrefix(imp, l.ModulePath()+"/") {
				continue
			}
			if imp == n.path {
				continue // an external test package imports its own package
			}
			n.deps = append(n.deps, imp)
			if _, ok := byPath[imp]; !ok {
				byPath[imp] = nil // reserve; scanned below
				queue = append(queue, imp)
			}
		}
		sort.Strings(n.deps)
	}
	for _, dir := range dirs {
		path, err := l.pathFor(dir)
		if err != nil {
			return nil, err
		}
		if existing, ok := byPath[path]; ok && existing != nil {
			existing.requested = true
			continue
		}
		files, imports, err := l.ScanDir(dir, tests)
		if err != nil {
			return nil, fmt.Errorf("lint: scanning %s: %w", dir, err)
		}
		if len(files) == 0 {
			continue
		}
		n := &treeNode{dir: dir, path: path, requested: true, files: files}
		byPath[path] = n
		addDeps(n, imports)
	}
	for len(queue) > 0 {
		path := queue[0]
		queue = queue[1:]
		if byPath[path] != nil {
			continue // already scanned as a requested dir
		}
		dir := l.dirFor(path)
		files, imports, err := l.ScanDir(dir, false)
		if err != nil {
			return nil, fmt.Errorf("lint: scanning dependency %s: %w", path, err)
		}
		if len(files) == 0 {
			delete(byPath, path)
			continue
		}
		n := &treeNode{dir: dir, path: path, files: files}
		byPath[path] = n
		addDeps(n, imports)
	}
	paths := make([]string, 0, len(byPath))
	for path, n := range byPath {
		if n != nil {
			paths = append(paths, path)
		}
	}
	sort.Strings(paths)
	nodes := make([]*treeNode, 0, len(paths))
	for _, path := range paths {
		n := byPath[path]
		var err error
		if n.fileHash, err = hashFiles(n.dir, n.files); err != nil {
			return nil, err
		}
		nodes = append(nodes, n)
	}
	return nodes, nil
}

// hashFiles content-hashes a node's files (names and bytes, sorted
// order).
func hashFiles(dir string, files []string) (string, error) {
	h := sha256.New()
	for _, name := range files {
		writeHashed(h, name)
		blob, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return "", err
		}
		_, _ = h.Write(blob)
		_, _ = h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// suiteSalt fingerprints everything that can change results besides
// package contents and dependency summaries: the cache schema, the
// analyzer set, the tests flag, and — when linting from a checkout
// that contains them — the lint engine's and driver's own sources, so
// changing an analyzer invalidates the whole cache instead of
// replaying stale verdicts.
func suiteSalt(l *Loader, opts TreeOptions) (string, error) {
	h := sha256.New()
	writeHashed(h, cacheSchema)
	for _, a := range opts.Analyzers {
		writeHashed(h, a.Name)
	}
	writeHashed(h, fmt.Sprintf("tests=%t", opts.Tests))
	for _, rel := range []string{filepath.Join("internal", "lint"), filepath.Join("cmd", "vmplint")} {
		dir := filepath.Join(l.ModuleRoot(), rel)
		entries, err := os.ReadDir(dir)
		if err != nil {
			continue // a tree without the lint sources has nothing to fingerprint
		}
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				names = append(names, e.Name())
			}
		}
		sort.Strings(names)
		for _, name := range names {
			writeHashed(h, filepath.Join(rel, name))
			f, err := os.Open(filepath.Join(dir, name))
			if err != nil {
				return "", err
			}
			_, err = io.Copy(h, f)
			_ = f.Close()
			if err != nil {
				return "", err
			}
		}
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// nodeKey derives a node's cache key from the suite salt, its identity
// and contents, and its dependencies' published summary hashes (the
// early cutoff: a dependency edit that leaves its exported facts
// unchanged leaves dependents cached).
func nodeKey(salt string, n *treeNode, depIdx []int, nodes []*treeNode, sumHashes []string, tests bool) string {
	h := sha256.New()
	writeHashed(h, salt)
	writeHashed(h, n.path)
	writeHashed(h, fmt.Sprintf("tests=%t", tests && n.requested))
	writeHashed(h, n.fileHash)
	idx := append([]int(nil), depIdx...)
	sort.Ints(idx)
	for _, j := range idx {
		writeHashed(h, nodes[j].path)
		writeHashed(h, sumHashes[j])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// concatSummaryHashes flattens a node's summaries into the dependency
// component of its dependents' keys.
func concatSummaryHashes(sums []*PackageSummary) string {
	hashes := make([]string, 0, len(sums))
	for _, s := range sums {
		hashes = append(hashes, s.Path+"="+s.Hash)
	}
	sort.Strings(hashes)
	return strings.Join(hashes, ",")
}

// writeHashed writes a length-delimited string into a hash.
func writeHashed(h hash.Hash, s string) {
	_, _ = fmt.Fprintf(h, "%d:%s", len(s), s)
}
