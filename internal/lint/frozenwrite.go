package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// FrozenWrite enforces the immutability contract of the frozen
// analysis substrate: outside package telemetry itself, nothing may
// write through a telemetry.Dataset or telemetry.DimColumn — their
// accessors (All, Window, Record, IDs, ...) hand back zero-copy views
// of shared state, and the parallel figure pool is race-free only
// because every worker treats them as read-only.
//
// The analyzer taints the results of Dataset/DimColumn method calls
// and any reference-typed local derived from them (slices, pointers —
// including &recs[i] and range over a tainted slice), then reports
// assignments, compound assignments, and ++/-- that write through a
// tainted expression. Rebinding a tainted variable itself (recs = nil)
// is not a write-through and stays legal.
//
// The taint is interprocedural to a fixed point over the package call
// graph (see taintEngine): a package-local helper that returns a
// Dataset view taints its callers' results through chains of any
// depth, so no amount of accessor-wrapping launders the alias.
var FrozenWrite = &Analyzer{
	Name: "frozenwrite",
	Doc:  "forbid writes through telemetry.Dataset views outside internal/telemetry",
	Run:  runFrozenWrite,
}

const telemetryPath = "vmp/internal/telemetry"

// frozenTypes are the telemetry types whose method results alias
// immutable internals.
var frozenTypes = map[string]bool{"Dataset": true, "DimColumn": true}

func runFrozenWrite(p *Pass) {
	if p.Path == telemetryPath || strings.HasPrefix(p.Path, telemetryPath+"/") {
		return
	}
	eng := p.frozenEngine()
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			eng.checkBody(fd.Body, func(pos token.Pos) {
				p.Reportf(pos,
					"write through a telemetry.Dataset view; the frozen dataset is immutable outside internal/telemetry (copy before mutating)")
			})
		}
	}
}

// isFrozenAccessor reports whether call is a method call on
// telemetry.Dataset or telemetry.DimColumn.
func (p *Pass) isFrozenAccessor(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	selection, ok := p.Info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return false
	}
	t := selection.Recv()
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == telemetryPath && frozenTypes[obj.Name()]
}

// mutableRefType reports whether t can alias the memory it was
// derived from (value copies of structs and scalars cannot).
func mutableRefType(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Slice, *types.Pointer, *types.Map:
		return true
	}
	return false
}
