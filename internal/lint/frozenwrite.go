package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// FrozenWrite enforces the immutability contract of the frozen
// analysis substrate: outside package telemetry itself, nothing may
// write through a telemetry.Dataset or telemetry.DimColumn — their
// accessors (All, Window, Record, IDs, ...) hand back zero-copy views
// of shared state, and the parallel figure pool is race-free only
// because every worker treats them as read-only.
//
// The analyzer taints the results of Dataset/DimColumn method calls
// and any reference-typed local derived from them (slices, pointers —
// including &recs[i] and range over a tainted slice), then reports
// assignments, compound assignments, and ++/-- that write through a
// tainted expression. Rebinding a tainted variable itself (recs = nil)
// is not a write-through and stays legal.
var FrozenWrite = &Analyzer{
	Name: "frozenwrite",
	Doc:  "forbid writes through telemetry.Dataset views outside internal/telemetry",
	Run:  runFrozenWrite,
}

const telemetryPath = "vmp/internal/telemetry"

// frozenTypes are the telemetry types whose method results alias
// immutable internals.
var frozenTypes = map[string]bool{"Dataset": true, "DimColumn": true}

func runFrozenWrite(p *Pass) {
	if p.Path == telemetryPath || strings.HasPrefix(p.Path, telemetryPath+"/") {
		return
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			p.checkFrozenWrites(fd.Body)
		}
	}
}

func (p *Pass) checkFrozenWrites(body *ast.BlockStmt) {
	tainted := make(map[types.Object]bool)

	// Propagate taint through local assignments to a fixpoint (the
	// taint lattice only grows, so this terminates quickly).
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				if len(st.Lhs) != len(st.Rhs) {
					return true
				}
				for i, lhs := range st.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || id.Name == "_" {
						continue
					}
					obj := p.objectOf(id)
					if obj == nil || tainted[obj] || !mutableRefType(obj.Type()) {
						continue
					}
					if p.taintedExpr(st.Rhs[i], tainted) {
						tainted[obj] = true
						changed = true
					}
				}
			case *ast.RangeStmt:
				if !p.taintedExpr(st.X, tainted) {
					return true
				}
				if id, ok := st.Value.(*ast.Ident); ok && id.Name != "_" {
					obj := p.objectOf(id)
					if obj != nil && !tainted[obj] && mutableRefType(obj.Type()) {
						tainted[obj] = true
						changed = true
					}
				}
			}
			return true
		})
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if st.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range st.Lhs {
				p.reportFrozenWrite(lhs, tainted)
			}
		case *ast.IncDecStmt:
			p.reportFrozenWrite(st.X, tainted)
		}
		return true
	})
}

// reportFrozenWrite flags lhs when it writes through tainted memory.
// A bare identifier only rebinds the variable, so it is skipped.
func (p *Pass) reportFrozenWrite(lhs ast.Expr, tainted map[types.Object]bool) {
	if _, ok := lhs.(*ast.Ident); ok {
		return
	}
	if p.taintedExpr(lhs, tainted) {
		p.Reportf(lhs.Pos(),
			"write through a telemetry.Dataset view; the frozen dataset is immutable outside internal/telemetry (copy before mutating)")
	}
}

// taintedExpr reports whether e reaches Dataset-aliased memory.
func (p *Pass) taintedExpr(e ast.Expr, tainted map[types.Object]bool) bool {
	switch v := e.(type) {
	case *ast.Ident:
		obj := p.objectOf(v)
		return obj != nil && tainted[obj]
	case *ast.CallExpr:
		return p.isFrozenAccessor(v)
	case *ast.IndexExpr:
		return p.taintedExpr(v.X, tainted)
	case *ast.SliceExpr:
		return p.taintedExpr(v.X, tainted)
	case *ast.SelectorExpr:
		return p.taintedExpr(v.X, tainted)
	case *ast.StarExpr:
		return p.taintedExpr(v.X, tainted)
	case *ast.ParenExpr:
		return p.taintedExpr(v.X, tainted)
	case *ast.UnaryExpr:
		return v.Op == token.AND && p.taintedExpr(v.X, tainted)
	}
	return false
}

// isFrozenAccessor reports whether call is a method call on
// telemetry.Dataset or telemetry.DimColumn.
func (p *Pass) isFrozenAccessor(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	selection, ok := p.Info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return false
	}
	t := selection.Recv()
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == telemetryPath && frozenTypes[obj.Name()]
}

// mutableRefType reports whether t can alias the memory it was
// derived from (value copies of structs and scalars cannot).
func mutableRefType(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Slice, *types.Pointer, *types.Map:
		return true
	}
	return false
}
