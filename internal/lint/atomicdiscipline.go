package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicDiscipline enforces the serving plane's two atomics contracts
// in internal/ and cmd/ code:
//
//  1. Mixed access: a variable or struct field that is ever passed to a
//     sync/atomic function (atomic.AddInt64(&s.n, 1), atomic.LoadUint32,
//     ...) must never be read or written plainly. A plain s.n++ next to
//     an atomic add is a data race the race detector only catches when
//     a test happens to interleave it; the analyzer rejects the mix
//     outright. (Typed atomics — atomic.Int64, atomic.Pointer — are
//     enforced by the type system and go vet's copylocks.)
//
//  2. Publish-then-mutate: a value reachable from an atomic.Pointer is
//     shared with every reader the moment Store returns, and readers
//     synchronize on nothing else — mutating it afterwards is a race.
//     The analyzer flags writes through a value after it was passed to
//     Store, and writes through anything derived from a Load result.
//     The Load check rides the shared taint engine (one-level
//     interprocedural), so a helper like Engine.Generation() that
//     returns e.gen.Load() taints its callers too: the published
//     generation stays immutable no matter how it is reached.
var AtomicDiscipline = &Analyzer{
	Name: "atomicdiscipline",
	Doc:  "forbid plain access to atomically-accessed fields and mutation of atomic.Pointer-published values",
	Run:  runAtomicDiscipline,
}

func runAtomicDiscipline(p *Pass) {
	if !strings.HasPrefix(p.Path, "vmp/internal/") && !strings.HasPrefix(p.Path, "vmp/cmd/") {
		return
	}
	p.checkMixedAtomicAccess()
	p.checkPublishedMutation()
}

// checkMixedAtomicAccess implements rule 1: collect every variable the
// package accesses through a sync/atomic function, then flag each
// plain (non-atomic) read or write of the same variable.
func (p *Pass) checkMixedAtomicAccess() {
	// atomicObjs: variables (fields or package-level vars) whose
	// address is passed to a sync/atomic function anywhere.
	atomicObjs := make(map[types.Object]bool)
	// insideAtomicArg: the &x argument nodes themselves, so the
	// sanctioned access inside the atomic call is not reported.
	insideAtomicArg := make(map[*ast.UnaryExpr]bool)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !p.isAtomicPkgCall(call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				if obj := p.addressedVar(un.X); obj != nil {
					atomicObjs[obj] = true
					insideAtomicArg[un] = true
				}
			}
			return true
		})
	}
	if len(atomicObjs) == 0 {
		return
	}
	for _, f := range p.Files {
		// Composite-literal keys name the field without accessing shared
		// state (the value is not yet published); skip them.
		litKeys := make(map[*ast.Ident]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			if kv, ok := n.(*ast.KeyValueExpr); ok {
				if id, ok := kv.Key.(*ast.Ident); ok {
					litKeys[id] = true
				}
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			if un, ok := n.(*ast.UnaryExpr); ok && insideAtomicArg[un] {
				return false // the sanctioned atomic access itself
			}
			switch v := n.(type) {
			case *ast.SelectorExpr:
				if obj := p.Info.Uses[v.Sel]; obj != nil && atomicObjs[obj] {
					p.reportMixedAtomic(v.Sel)
				}
			case *ast.Ident:
				// Bare identifiers cover package-level variables; field
				// uses always arrive through a SelectorExpr above (their
				// objects are not package-scoped, so no double report).
				if litKeys[v] {
					return true
				}
				if obj := p.Info.Uses[v]; obj != nil && atomicObjs[obj] && obj.Parent() == p.Pkg.Scope() {
					p.reportMixedAtomic(v)
				}
			}
			return true
		})
	}
}

func (p *Pass) reportMixedAtomic(id *ast.Ident) {
	p.Reportf(id.Pos(),
		"plain access to %s, which is accessed via sync/atomic elsewhere in this package; every read and write must go through atomic operations",
		id.Name)
}

// isAtomicPkgCall reports whether call is a sync/atomic package
// function call (atomic.AddInt64, atomic.LoadPointer, ...).
func (p *Pass) isAtomicPkgCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn := p.pkgNameOf(id)
	return pn != nil && pn.Imported().Path() == "sync/atomic"
}

// addressedVar resolves &expr's operand to a struct field or
// package-level variable object worth tracking.
func (p *Pass) addressedVar(e ast.Expr) types.Object {
	switch v := e.(type) {
	case *ast.SelectorExpr:
		obj := p.objectOf(v.Sel)
		if _, ok := obj.(*types.Var); ok {
			return obj
		}
	case *ast.Ident:
		if obj, ok := p.objectOf(v).(*types.Var); ok {
			// Only package-level variables are shared state worth
			// tracking; a local passed to atomic is its own business.
			if obj.Parent() == p.Pkg.Scope() {
				return obj
			}
		}
	}
	return nil
}

// checkPublishedMutation implements rule 2. Writes through Load
// results go through the taint engine; writes after Store are a
// source-position scan within each body.
func (p *Pass) checkPublishedMutation() {
	eng := p.atomicEngine()
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			eng.checkBody(fd.Body, func(pos token.Pos) {
				p.Reportf(pos,
					"write through a value loaded from an atomic.Pointer; published generations are immutable — build a new value and Store it")
			})
			p.checkMutationAfterStore(fd.Body)
		}
	}
}

// isAtomicPointerLoad reports whether call is a Load on a sync/atomic
// typed atomic whose result aliases published memory (Pointer[T] or
// Value).
func (p *Pass) isAtomicPointerLoad(call *ast.CallExpr) bool {
	name, ok := p.atomicMethod(call)
	return ok && name == "Load"
}

// atomicMethod resolves call to a method name on a sync/atomic
// Pointer or Value receiver.
func (p *Pass) atomicMethod(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	selection, ok := p.Info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return "", false
	}
	t := selection.Recv()
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return "", false
	}
	if obj.Name() != "Pointer" && obj.Name() != "Value" {
		return "", false
	}
	return sel.Sel.Name, true
}

// checkMutationAfterStore flags writes through a variable after it was
// passed to an atomic Store in the same body: once published, the
// value belongs to every concurrent reader.
func (p *Pass) checkMutationAfterStore(body *ast.BlockStmt) {
	// stored: object -> position of the Store that published it.
	stored := make(map[types.Object]token.Pos)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		if name, ok := p.atomicMethod(call); !ok || name != "Store" {
			return true
		}
		arg := call.Args[0]
		if un, ok := arg.(*ast.UnaryExpr); ok && un.Op == token.AND {
			arg = un.X
		}
		if id, ok := arg.(*ast.Ident); ok {
			if obj := p.objectOf(id); obj != nil {
				if _, seen := stored[obj]; !seen {
					stored[obj] = call.Pos()
				}
			}
		}
		return true
	})
	if len(stored) == 0 {
		return
	}
	report := func(lhs ast.Expr) {
		if _, ok := lhs.(*ast.Ident); ok {
			return // rebinding the variable, not mutating the published value
		}
		root := rootExpr(lhs)
		id, ok := root.(*ast.Ident)
		if !ok {
			return
		}
		obj := p.objectOf(id)
		pos, ok := stored[obj]
		if !ok || lhs.Pos() <= pos {
			return
		}
		p.Reportf(lhs.Pos(),
			"%s was published via atomic Store and is now shared with every reader; mutating it afterwards is a race — build a new value and Store that",
			id.Name)
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if st.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range st.Lhs {
				report(lhs)
			}
		case *ast.IncDecStmt:
			report(st.X)
		}
		return true
	})
}
