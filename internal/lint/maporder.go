package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags accumulation loops whose result depends on Go's
// randomized map iteration order — the exact bug class that silently
// breaks byte-identical figure rendering. Inside a `range` over a map
// it reports:
//
//   - appends to a slice declared outside the loop, unless the slice
//     is later canonically sorted (sort.Strings/Ints/Float64s or
//     slices.Sort — total orders the analyzer can prove; a
//     sort.Slice comparator cannot be proven total, so it does not
//     count);
//   - floating-point accumulation (+=, -=, *=, /=, ++, --): float
//     addition is not associative, so map-ordered sums drift in the
//     last ulp from run to run;
//   - writes through the result of a call (the callee observes keys
//     in random order, e.g. a row() that interns keys as it goes);
//   - output written via the fmt print family.
//
// Writing `m[k] = ...` where k is the range key is a per-key
// transform and always allowed. The fix is to iterate sorted keys at
// the accumulation site so the invariant is local, not delegated to
// downstream sorting.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "forbid order-dependent accumulation inside range-over-map loops",
	Run:  runMapOrder,
}

// totalOrderSorts are the sort entry points guaranteed to produce one
// canonical permutation regardless of input order.
var totalOrderSorts = map[string]map[string]bool{
	"sort":   {"Strings": true, "Ints": true, "Float64s": true},
	"slices": {"Sort": true},
}

// comparatorSorts take a caller-supplied less function, which the
// analyzer cannot prove total.
var comparatorSorts = map[string]map[string]bool{
	"sort":   {"Slice": true, "SliceStable": true, "Sort": true, "Stable": true},
	"slices": {"SortFunc": true, "SortStableFunc": true},
}

func runMapOrder(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			var ranges []*ast.RangeStmt
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if rs, ok := n.(*ast.RangeStmt); ok && p.isMapRange(rs) {
					ranges = append(ranges, rs)
				}
				return true
			})
			for _, rs := range ranges {
				p.checkMapRange(fd.Body, rs)
			}
		}
	}
}

func (p *Pass) isMapRange(rs *ast.RangeStmt) bool {
	t := p.Info.TypeOf(rs.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// appendSite is one `x = append(x, ...)` inside a map range, pending
// the search for a canonical sort downstream.
type appendSite struct {
	target string // canonical expression string of the appended slice
	pos    token.Pos
}

func (p *Pass) checkMapRange(funcBody *ast.BlockStmt, rs *ast.RangeStmt) {
	keyObj := p.rangeKeyObject(rs)
	var appends []appendSite

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		// Nested map ranges get their own independent check.
		if inner, ok := n.(*ast.RangeStmt); ok && inner != rs && p.isMapRange(inner) {
			return false
		}
		switch st := n.(type) {
		case *ast.AssignStmt:
			p.checkMapRangeAssign(rs, st, keyObj, &appends)
		case *ast.IncDecStmt:
			if p.isFloat(st.X) && !p.isPerKeyWrite(st.X, keyObj) {
				p.Reportf(st.Pos(),
					"floating-point accumulation in map iteration order drifts run to run; iterate sorted keys")
			}
		case *ast.CallExpr:
			if name, ok := p.pkgFunc(st, "fmt"); ok &&
				(hasPrefix(name, "Print") || hasPrefix(name, "Fprint")) {
				p.Reportf(st.Pos(),
					"output written in map iteration order; iterate sorted keys")
			}
		}
		return true
	})

	for _, site := range appends {
		p.checkAppendSorted(funcBody, rs, site)
	}
}

func hasPrefix(s, prefix string) bool {
	return len(s) >= len(prefix) && s[:len(prefix)] == prefix
}

// rangeKeyObject returns the object bound to the range key, or nil.
func (p *Pass) rangeKeyObject(rs *ast.RangeStmt) types.Object {
	id, ok := rs.Key.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	return p.objectOf(id)
}

func (p *Pass) checkMapRangeAssign(rs *ast.RangeStmt, st *ast.AssignStmt, keyObj types.Object, appends *[]appendSite) {
	switch st.Tok {
	case token.ASSIGN, token.DEFINE:
		for i, lhs := range st.Lhs {
			if i < len(st.Rhs) && len(st.Lhs) == len(st.Rhs) {
				if target, ok := p.selfAppend(lhs, st.Rhs[i]); ok {
					if p.declaredOutside(lhs, rs) {
						*appends = append(*appends, appendSite{target: target, pos: st.Pos()})
					}
					continue
				}
			}
			if st.Tok == token.DEFINE {
				continue
			}
			if p.isPerKeyWrite(lhs, keyObj) {
				continue
			}
			if root := rootExpr(lhs); root != nil {
				if _, isCall := root.(*ast.CallExpr); isCall {
					p.Reportf(st.Pos(),
						"write through a call result inside map iteration; the callee observes keys in random order — iterate sorted keys")
				}
			}
		}
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		for _, lhs := range st.Lhs {
			if p.isFloat(lhs) && !p.isPerKeyWrite(lhs, keyObj) {
				p.Reportf(st.Pos(),
					"floating-point accumulation in map iteration order drifts run to run; iterate sorted keys")
			}
		}
	}
}

// selfAppend recognizes `x = append(x, ...)` (by canonical expression
// string, so selector targets like h.Counts work) and returns the
// target's string form.
func (p *Pass) selfAppend(lhs ast.Expr, rhs ast.Expr) (string, bool) {
	call, ok := rhs.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return "", false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" {
		return "", false
	}
	if b, ok := p.objectOf(fn).(*types.Builtin); !ok || b.Name() != "append" {
		return "", false
	}
	target := types.ExprString(lhs)
	if types.ExprString(call.Args[0]) != target {
		return "", false
	}
	return target, true
}

// declaredOutside reports whether the written variable was declared
// before the range statement (an accumulator), as opposed to a
// per-iteration local.
func (p *Pass) declaredOutside(lhs ast.Expr, rs *ast.RangeStmt) bool {
	root := rootExpr(lhs)
	id, ok := root.(*ast.Ident)
	if !ok {
		return false
	}
	obj := p.objectOf(id)
	if obj == nil {
		return false
	}
	return obj.Pos() < rs.Pos()
}

// isPerKeyWrite reports whether lhs is `m[k]...` for the range key k —
// a per-key map transform that visits each entry exactly once, safe in
// any order.
func (p *Pass) isPerKeyWrite(lhs ast.Expr, keyObj types.Object) bool {
	if keyObj == nil {
		return false
	}
	idx, ok := lhs.(*ast.IndexExpr)
	if !ok {
		return false
	}
	if t := p.Info.TypeOf(idx.X); t == nil {
		return false
	} else if _, isMap := t.Underlying().(*types.Map); !isMap {
		return false
	}
	id, ok := idx.Index.(*ast.Ident)
	return ok && p.objectOf(id) == keyObj
}

func (p *Pass) isFloat(e ast.Expr) bool {
	t := p.Info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// rootExpr peels index, selector, star, and paren layers off an
// lvalue, returning the base expression.
func rootExpr(e ast.Expr) ast.Expr {
	for {
		switch v := e.(type) {
		case *ast.IndexExpr:
			e = v.X
		case *ast.SelectorExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.SliceExpr:
			e = v.X
		default:
			return e
		}
	}
}

// pkgFunc returns the function name if call is pkgPath.Name(...).
func (p *Pass) pkgFunc(call *ast.CallExpr, pkgPath string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn := p.pkgNameOf(id)
	if pn == nil || pn.Imported().Path() != pkgPath {
		return "", false
	}
	return sel.Sel.Name, true
}

// checkAppendSorted looks for a canonical sort of the appended slice
// after the loop and reports if none (or only a comparator sort) is
// found.
func (p *Pass) checkAppendSorted(funcBody *ast.BlockStmt, rs *ast.RangeStmt, site appendSite) {
	foundTotal, foundComparator := false, false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rs.End() || len(call.Args) == 0 {
			return true
		}
		if types.ExprString(call.Args[0]) != site.target {
			return true
		}
		for _, pkg := range []string{"sort", "slices"} {
			if name, ok := p.pkgFunc(call, pkg); ok {
				foundTotal = foundTotal || totalOrderSorts[pkg][name]
				foundComparator = foundComparator || comparatorSorts[pkg][name]
			}
		}
		return true
	})
	switch {
	case foundTotal:
	case foundComparator:
		p.Reportf(site.pos,
			"slice appended in map iteration order is only comparator-sorted afterwards, which cannot be proven total; iterate sorted keys at the accumulation site")
	default:
		p.Reportf(site.pos,
			"slice appended in map iteration order and never canonically sorted; iterate sorted keys")
	}
}
