package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxFlow enforces context threading in internal/ and cmd/ code: a
// function that already has a caller's context — a context.Context
// parameter, or an *http.Request whose Context() carries the client's
// cancellation — must thread it into blocking work instead of minting
// a fresh root with context.Background() or context.TODO(). A handler
// that ignores r.Context() keeps computing for clients that hung up;
// an engine entry point that substitutes Background() detaches itself
// from the daemon's shutdown.
//
// Independently, time.Sleep is flagged everywhere in internal/ and
// cmd/: a bare wall sleep can be neither cancelled nor observed, which
// stalls drains and makes retry loops unkillable — use
// simclock.Wait(ctx, d), which returns early when the context is done.
//
// main functions are exempt from the context rules (something has to
// mint the root context), and package simclock is exempt entirely: it
// owns time.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "require caller contexts to be threaded into blocking calls; forbid bare time.Sleep",
	Run:  runCtxFlow,
}

func runCtxFlow(p *Pass) {
	if !strings.HasPrefix(p.Path, "vmp/internal/") && !strings.HasPrefix(p.Path, "vmp/cmd/") {
		return
	}
	if strings.HasSuffix(p.Path, "internal/simclock") {
		return
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			p.checkSleeps(fd.Body)
			if fd.Recv == nil && fd.Name.Name == "main" {
				continue // the root context has to come from somewhere
			}
			if src := p.contextSource(fd); src != "" {
				p.checkFreshRoots(fd.Body, src)
			}
		}
	}
}

// contextSource names the caller context available to fd: a
// context.Context parameter or an *http.Request parameter, or "" when
// the function has neither.
func (p *Pass) contextSource(fd *ast.FuncDecl) string {
	for _, field := range fd.Type.Params.List {
		t := p.Info.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if isContextType(t) {
			name := "its context parameter"
			if len(field.Names) == 1 {
				name = field.Names[0].Name
			}
			return name
		}
		if isHTTPRequest(t) {
			name := "r"
			if len(field.Names) == 1 {
				name = field.Names[0].Name
			}
			return name + ".Context()"
		}
	}
	return ""
}

func isHTTPRequest(t types.Type) bool {
	ptr, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "Request"
}

// checkFreshRoots flags context.Background() / context.TODO() in a
// function that already has a caller context.
func (p *Pass) checkFreshRoots(body *ast.BlockStmt, src string) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, ok := p.pkgFunc(call, "context"); ok && (name == "Background" || name == "TODO") {
			p.Reportf(call.Pos(),
				"context.%s mints a fresh root in a function that already has a caller context; thread %s so cancellation reaches this call",
				name, src)
		}
		return true
	})
}

// checkSleeps flags time.Sleep calls.
func (p *Pass) checkSleeps(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, ok := p.pkgFunc(call, "time"); ok && name == "Sleep" {
			p.Reportf(call.Pos(),
				"time.Sleep blocks with no way to cancel or observe it; use simclock.Wait(ctx, d) so shutdown and callers can interrupt the wait")
		}
		return true
	})
}
