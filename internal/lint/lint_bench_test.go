package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// BenchmarkLintTree times one cold fourteen-analyzer run over the
// whole module: loader construction, parsing, type-checking, summary
// building, and every analyzer over every package — the same work
// `make lint`'s first uncached invocation does, with RunTree walking
// the import DAG level by level and fanning each level across
// GOMAXPROCS workers. `make bench-lint` runs it; the result is
// recorded in BENCH_lint.json so analyzer additions that regress lint
// latency show up in review.
func BenchmarkLintTree(b *testing.B) {
	dirs := moduleDirs(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		diags, _, err := RunTree("../..", dirs, TreeOptions{Analyzers: Analyzers()})
		if err != nil {
			b.Fatal(err)
		}
		if len(diags) != 0 {
			b.Fatalf("tree is not lint-clean: %s", diags[0])
		}
	}
}

// BenchmarkLintTreeWarm times the same run against a populated cache:
// every package replays from its content-hash entry, so an op is scan
// + hash + cache reads — no parsing, no type-checking, no analysis.
// The cold/warm ratio recorded in BENCH_lint.json is the incremental
// cache's headline number.
func BenchmarkLintTreeWarm(b *testing.B) {
	dirs := moduleDirs(b)
	cacheDir := b.TempDir()
	opts := TreeOptions{Analyzers: Analyzers(), CacheDir: cacheDir}
	if _, _, err := RunTree("../..", dirs, opts); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		diags, stats, err := RunTree("../..", dirs, opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(diags) != 0 {
			b.Fatalf("tree is not lint-clean: %s", diags[0])
		}
		if stats.Analyzed != 0 {
			b.Fatalf("warm run re-analyzed %d package(s)", stats.Analyzed)
		}
	}
}

// moduleDirs lists the module's package directories the same way
// vmplint's ./... expansion does.
func moduleDirs(b *testing.B) []string {
	b.Helper()
	root := filepath.Join("..", "..")
	var dirs []string
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() {
			return nil
		}
		name := info.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	return dirs
}
