package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// BenchmarkLintTree times one cold twelve-analyzer run over the whole
// module: loader construction, parsing, type-checking, and every
// analyzer over every package — the same work `make lint`'s first
// invocation does, including vmplint's serial-load-then-parallel-
// analyze split (RunPackages fans packages out across GOMAXPROCS
// workers). `make bench-lint` runs it; the result is recorded in
// BENCH_lint.json so analyzer additions that regress lint latency
// show up in review.
func BenchmarkLintTree(b *testing.B) {
	dirs := moduleDirs(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		loader, err := NewLoader("../..")
		if err != nil {
			b.Fatal(err)
		}
		var pkgs []*Package
		for _, dir := range dirs {
			pkg, err := loader.LoadDir(dir)
			if err != nil {
				b.Fatal(err)
			}
			if pkg != nil {
				pkgs = append(pkgs, pkg)
			}
		}
		if len(pkgs) == 0 {
			b.Fatal("no packages loaded")
		}
		if diags := RunPackages(pkgs, Analyzers()); len(diags) != 0 {
			b.Fatalf("tree is not lint-clean: %s", diags[0])
		}
	}
}

// moduleDirs lists the module's package directories the same way
// vmplint's ./... expansion does.
func moduleDirs(b *testing.B) []string {
	b.Helper()
	root := filepath.Join("..", "..")
	var dirs []string
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() {
			return nil
		}
		name := info.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	return dirs
}
