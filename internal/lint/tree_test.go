package lint

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// The cache-correctness suite builds a throwaway two-package module —
// beta imports alpha — and walks the invalidation matrix: warm runs
// replay byte-identical findings without analyzing anything, editing a
// package re-analyzes only it and its dependents, and a dependency
// edit that leaves the exported summary unchanged stops at the
// summary-hash cutoff without touching dependents.

const cacheAlphaSrc = `// Package alpha is a cache-correctness fixture dependency.
package alpha

import "time"

// Stamp returns the wall-clock time.
func Stamp() time.Time { return time.Now() }
`

const cacheBetaSrc = `// Package beta is a cache-correctness fixture dependent.
package beta

import "vmp/internal/alpha"

// Latest wraps alpha.Stamp.
func Latest() int64 { return alpha.Stamp().Unix() }
`

// writeCacheModule lays out the fixture module and returns its root
// plus the two package directories.
func writeCacheModule(t *testing.T) (root, alphaDir, betaDir string) {
	t.Helper()
	root = t.TempDir()
	alphaDir = filepath.Join(root, "internal", "alpha")
	betaDir = filepath.Join(root, "internal", "beta")
	for path, src := range map[string]string{
		filepath.Join(root, "go.mod"):       "module vmp\n\ngo 1.22\n",
		filepath.Join(alphaDir, "alpha.go"): cacheAlphaSrc,
		filepath.Join(betaDir, "beta.go"):   cacheBetaSrc,
	} {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root, alphaDir, betaDir
}

// runCached is one RunTree pass over the fixture module with the full
// analyzer suite and the given cache directory.
func runCached(t *testing.T, root string, dirs []string, cacheDir string) ([]Diagnostic, *RunStats) {
	t.Helper()
	diags, stats, err := RunTree(root, dirs, TreeOptions{Analyzers: Analyzers(), CacheDir: cacheDir})
	if err != nil {
		t.Fatal(err)
	}
	return diags, stats
}

// marshalFindings renders findings the way vmplint -json does, so
// "byte-identical" below means what the CI poisoning guard measures.
func marshalFindings(t *testing.T, diags []Diagnostic) []byte {
	t.Helper()
	blob, err := JSON(diags)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

func TestRunTreeCacheCorrectness(t *testing.T) {
	root, alphaDir, betaDir := writeCacheModule(t)
	dirs := []string{alphaDir, betaDir}
	cacheDir := filepath.Join(root, ".vmplint-cache")

	// Cold: both packages analyzed, and alpha's time.Now surfaces.
	cold, stats := runCached(t, root, dirs, cacheDir)
	if stats.Analyzed != 2 || stats.Cached != 0 {
		t.Fatalf("cold run: analyzed=%d cached=%d, want 2/0", stats.Analyzed, stats.Cached)
	}
	if len(cold) != 1 || cold[0].Analyzer != "nondeterminism" {
		t.Fatalf("cold findings = %v, want one nondeterminism finding", cold)
	}
	coldJSON := marshalFindings(t, cold)

	// Warm: everything replays from cache, byte-identical.
	warm, stats := runCached(t, root, dirs, cacheDir)
	if stats.Analyzed != 0 || stats.Cached != 2 {
		t.Fatalf("warm run: analyzed=%d cached=%d, want 0/2", stats.Analyzed, stats.Cached)
	}
	if got := marshalFindings(t, warm); !bytes.Equal(got, coldJSON) {
		t.Fatalf("warm findings differ from cold:\ncold: %s\nwarm: %s", coldJSON, got)
	}

	// Edit the dependent: only beta re-analyzes.
	edited := cacheBetaSrc + "\n// Epoch is the zero instant.\nfunc Epoch() int64 { return 0 }\n"
	if err := os.WriteFile(filepath.Join(betaDir, "beta.go"), []byte(edited), 0o644); err != nil {
		t.Fatal(err)
	}
	after, stats := runCached(t, root, dirs, cacheDir)
	if stats.Analyzed != 1 || stats.Cached != 1 {
		t.Fatalf("beta edit: analyzed=%d cached=%d, want 1/1", stats.Analyzed, stats.Cached)
	}
	for _, p := range stats.Packages {
		if wantCached := p.Path == "vmp/internal/alpha"; p.Cached != wantCached {
			t.Fatalf("beta edit: %s cached=%t, want %t", p.Path, p.Cached, wantCached)
		}
	}
	if got := marshalFindings(t, after); !bytes.Equal(got, coldJSON) {
		t.Fatalf("beta edit changed unrelated findings:\nbefore: %s\nafter: %s", coldJSON, got)
	}

	// Edit the dependency without changing its exported facts: alpha
	// re-analyzes, but its summary hash is unchanged, so beta stays
	// cached — the early cutoff.
	rephrased := cacheAlphaSrc + "\nfunc ignoredDetail() int { return 1 }\n"
	if err := os.WriteFile(filepath.Join(alphaDir, "alpha.go"), []byte(rephrased), 0o644); err != nil {
		t.Fatal(err)
	}
	_, stats = runCached(t, root, dirs, cacheDir)
	if stats.Analyzed != 1 || stats.Cached != 1 {
		t.Fatalf("neutral alpha edit: analyzed=%d cached=%d, want 1/1 (summary-hash cutoff)", stats.Analyzed, stats.Cached)
	}
	for _, p := range stats.Packages {
		if wantCached := p.Path == "vmp/internal/beta"; p.Cached != wantCached {
			t.Fatalf("neutral alpha edit: %s cached=%t, want %t", p.Path, p.Cached, wantCached)
		}
	}

	// Change alpha's exported facts (a new looping exported function):
	// the summary hash moves, so beta's key misses too.
	factful := cacheAlphaSrc + "\n// Spin busy-loops forever.\nfunc Spin() {\n\tfor {\n\t}\n}\n"
	if err := os.WriteFile(filepath.Join(alphaDir, "alpha.go"), []byte(factful), 0o644); err != nil {
		t.Fatal(err)
	}
	_, stats = runCached(t, root, dirs, cacheDir)
	if stats.Analyzed != 2 || stats.Cached != 0 {
		t.Fatalf("fact-changing alpha edit: analyzed=%d cached=%d, want 2/0", stats.Analyzed, stats.Cached)
	}
}

// TestRunTreeUncachedMatchesRunPackages pins RunTree (no cache) to the
// legacy whole-program path: same findings, every package analyzed.
func TestRunTreeUncachedMatchesRunPackages(t *testing.T) {
	root, alphaDir, betaDir := writeCacheModule(t)
	diags, stats, err := RunTree(root, []string{alphaDir, betaDir}, TreeOptions{Analyzers: Analyzers()})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Analyzed != 2 || stats.Cached != 0 {
		t.Fatalf("uncached run: analyzed=%d cached=%d, want 2/0", stats.Analyzed, stats.Cached)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	var pkgs []*Package
	for _, dir := range []string{alphaDir, betaDir} {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		pkgs = append(pkgs, pkg)
	}
	want := RunPackages(pkgs, Analyzers())
	if got, wantJSON := marshalFindings(t, diags), marshalFindings(t, want); !bytes.Equal(got, wantJSON) {
		t.Fatalf("RunTree findings diverge from RunPackages:\ntree: %s\npkgs: %s", got, wantJSON)
	}
}

// TestRunTreeDependencySummariesWithoutRequest checks that a package
// imported by a requested one is pulled in for its summary (the
// cross-package taint flows) without reporting its own findings.
func TestRunTreeDependencySummariesWithoutRequest(t *testing.T) {
	root, _, betaDir := writeCacheModule(t)
	diags, stats, err := RunTree(root, []string{betaDir}, TreeOptions{Analyzers: Analyzers()})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Analyzed != 2 {
		t.Fatalf("analyzed=%d, want 2 (beta plus its alpha dependency)", stats.Analyzed)
	}
	if len(diags) != 0 {
		t.Fatalf("findings = %v, want none (alpha's finding is not requested)", diags)
	}
}

// TestCacheRejectsForeignEntries checks the poisoning guards: a torn
// entry, a foreign schema, and a key mismatch all degrade to misses.
func TestCacheRejectsForeignEntries(t *testing.T) {
	dir := t.TempDir()
	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	cache.put("good", []*PackageSummary{{Path: "vmp/internal/x", Hash: "h"}}, nil)
	if cache.get("good") == nil {
		t.Fatal("round-trip miss")
	}
	for name, blob := range map[string]string{
		"torn":   `{"schema":"vmplint-cache-v1","key":"torn","summ`,
		"schema": `{"schema":"other-tool-v9","key":"schema"}`,
		"moved":  `{"schema":"vmplint-cache-v1","key":"elsewhere"}`,
	} {
		if err := os.WriteFile(filepath.Join(dir, name+".json"), []byte(blob), 0o644); err != nil {
			t.Fatal(err)
		}
		if cache.get(name) != nil {
			t.Fatalf("%s entry was accepted; want miss", name)
		}
	}
}
