package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotAlloc is the static complement to the AllocsPerRun pinning tests:
// a function annotated //vmp:hotpath (the wire decode loop, shard
// consume, Span.Start, histogram observe) may not contain allocating
// constructs unless each one is individually approved with
// //vmp:alloc <reason> on its line or the line above. The alloc tests
// catch a regression after the fact on the paths they happen to
// exercise; this analyzer catches it in review, on every path.
//
// Flagged constructs: make, new, slice/map composite literals,
// &T{...} (heap-escaping pointer literals), closures that capture
// variables, string concatenation, string<->[]byte/[]rune conversions,
// and fmt calls. Deliberately not flagged:
//
//   - append: amortized arena/scratch growth is the approved pattern
//     the hot paths are built on.
//   - sync.Pool Get/Put: pooling is the approved alternative to
//     allocation (httpdiscipline checks the Put side).
//   - m[string(b)] map lookups: the compiler elides this conversion.
//   - fmt.Errorf and errors.New: cold error paths may construct
//     errors.
//   - non-capturing function literals: static closures are compiled
//     without an allocation.
//
// Calls into same-package helpers are traced through the call graph to
// a fixed point: a hotpath function calling a helper that (transitively)
// allocates is flagged at the call site, unless the helper is itself
// //vmp:hotpath (then its own body is checked directly, and the
// approvals live there). Cross-package calls consult the callee's
// published summary (summary.go): a call into a dependency whose
// Allocates fact is set — and which is not itself //vmp:hotpath,
// policed by its own package — is flagged at the call site too.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "forbid unapproved allocating constructs in //vmp:hotpath functions",
	Run:  runHotAlloc,
}

func runHotAlloc(p *Pass) {
	if !strings.HasPrefix(p.Path, "vmp/internal/") && !strings.HasPrefix(p.Path, "vmp/cmd/") {
		return
	}
	g := p.graph()
	if len(g.hotpath) == 0 {
		return
	}
	// Direct sites, cross-package allocating calls, and the transitive
	// may-allocate fixed point are the shared fact layer computed once
	// per call graph (summary.go) — the summary builder publishes them,
	// this analyzer reports them.
	p.ensureAllocFacts()
	for _, n := range g.nodes {
		if !g.hotpath[n.obj] || n.decl.Body == nil {
			continue
		}
		for _, site := range g.allocDirect[n.obj] {
			p.Reportf(site.pos,
				"%s allocates on a //vmp:hotpath path; hoist it off the hot path or approve it with //vmp:alloc <reason>", site.what)
		}
		for _, site := range g.allocCross[n.obj] {
			p.Reportf(site.pos,
				"call to %s, which allocates per its package summary, on a //vmp:hotpath path; annotate %s //vmp:hotpath (approving its allocations) or hoist the call",
				site.name, site.name)
		}
		ast.Inspect(n.decl.Body, func(node ast.Node) bool {
			call, ok := node.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := p.calleeObject(call)
			if callee == nil || g.hotpath[callee] || !g.mayAlloc[callee] {
				return true
			}
			if _, declared := g.byObj[callee]; !declared {
				return true
			}
			pos := p.Fset.Position(call.Pos())
			if g.allocApproved(pos.Filename, pos.Line) {
				return true
			}
			p.Reportf(call.Pos(),
				"call to %s, which allocates, on a //vmp:hotpath path; annotate %s //vmp:hotpath (approving its allocations) or hoist the call",
				callee.Name(), callee.Name())
			return true
		})
	}
}

// allocSite is one unapproved allocating construct.
type allocSite struct {
	pos  token.Pos
	what string
}

// allocSites collects the allocating constructs in body that are not
// approved by a //vmp:alloc directive. Function literal bodies are
// included: code inside a closure on a hot path runs on the hot path.
func (p *Pass) allocSites(body *ast.BlockStmt, g *callGraph) []allocSite {
	var sites []allocSite
	add := func(pos token.Pos, what string) {
		position := p.Fset.Position(pos)
		if g.allocApproved(position.Filename, position.Line) {
			return
		}
		sites = append(sites, allocSite{pos: pos, what: what})
	}
	// m[string(b)] conversions are elided by the compiler; collect the
	// exempt conversion nodes up front.
	mapIndexConv := make(map[*ast.CallExpr]bool)
	ast.Inspect(body, func(node ast.Node) bool {
		ix, ok := node.(*ast.IndexExpr)
		if !ok {
			return true
		}
		if tv, ok := p.Info.Types[ix.X]; ok {
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				if call, ok := unparen(ix.Index).(*ast.CallExpr); ok && p.isConversion(call) {
					mapIndexConv[call] = true
				}
			}
		}
		return true
	})
	skipLit := make(map[*ast.CompositeLit]bool)
	ast.Inspect(body, func(node ast.Node) bool {
		switch v := node.(type) {
		case *ast.CallExpr:
			if id, ok := v.Fun.(*ast.Ident); ok {
				if b, ok := p.objectOf(id).(*types.Builtin); ok {
					switch b.Name() {
					case "make":
						add(v.Pos(), "make")
					case "new":
						add(v.Pos(), "new")
					}
					return true
				}
			}
			if p.isConversion(v) && !mapIndexConv[v] && p.allocatingConversion(v) {
				add(v.Pos(), "string conversion")
				return true
			}
			if name, ok := p.pkgFunc(v, "fmt"); ok && name != "Errorf" {
				add(v.Pos(), "fmt."+name)
			}
		case *ast.UnaryExpr:
			if v.Op == token.AND {
				if lit, ok := unparen(v.X).(*ast.CompositeLit); ok {
					skipLit[lit] = true
					add(v.Pos(), "heap-allocated composite literal")
				}
			}
		case *ast.CompositeLit:
			if skipLit[v] {
				return true
			}
			if tv, ok := p.Info.Types[v]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Slice:
					add(v.Pos(), "slice literal")
				case *types.Map:
					add(v.Pos(), "map literal")
				}
			}
		case *ast.FuncLit:
			if p.capturesVariables(v) {
				add(v.Pos(), "capturing closure")
			}
		case *ast.BinaryExpr:
			if v.Op != token.ADD {
				return true
			}
			tv, ok := p.Info.Types[v]
			if !ok || tv.Value != nil { // constants fold at compile time
				return true
			}
			if basic, ok := tv.Type.Underlying().(*types.Basic); ok && basic.Info()&types.IsString != 0 {
				add(v.Pos(), "string concatenation")
			}
		}
		return true
	})
	return sites
}

// isConversion reports whether call is a type conversion.
func (p *Pass) isConversion(call *ast.CallExpr) bool {
	tv, ok := p.Info.Types[call.Fun]
	return ok && tv.IsType()
}

// allocatingConversion reports whether a conversion copies memory:
// string<->[]byte and string<->[]rune in either direction.
func (p *Pass) allocatingConversion(call *ast.CallExpr) bool {
	if len(call.Args) != 1 {
		return false
	}
	dst, ok := p.Info.Types[call.Fun]
	if !ok {
		return false
	}
	src, ok := p.Info.Types[call.Args[0]]
	if !ok {
		return false
	}
	return (isStringType(dst.Type) && isByteOrRuneSlice(src.Type)) ||
		(isByteOrRuneSlice(dst.Type) && isStringType(src.Type))
}

func isStringType(t types.Type) bool {
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	basic, ok := sl.Elem().Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return basic.Kind() == types.Byte || basic.Kind() == types.Rune ||
		basic.Kind() == types.Uint8 || basic.Kind() == types.Int32
}

// capturesVariables reports whether a function literal references
// variables declared outside itself; non-capturing literals compile to
// static functions and do not allocate.
func (p *Pass) capturesVariables(lit *ast.FuncLit) bool {
	captures := false
	ast.Inspect(lit.Body, func(node ast.Node) bool {
		if captures {
			return false
		}
		id, ok := node.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := p.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() || v.Pkg() == nil {
			return true
		}
		if v.Parent() == v.Pkg().Scope() {
			return true // package-level variable, not a capture
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			captures = true
			return false
		}
		return true
	})
	return captures
}
