// Package errcheck exercises the errcheck analyzer: bare, deferred,
// and go-spawned calls that drop an error return are flagged; explicit
// assignment and the contractually never-failing writers are not. The
// tests load this package once under a vmp/internal/ pose path (in
// scope) and once under an external path (out of scope).
package errcheck

import (
	"bytes"
	"encoding/csv"
	"fmt"
	"hash/fnv"
	"os"
	"strings"
)

func dropped(f *os.File) {
	f.Close() // want errcheck "call to f.Close drops its error"
}

func deferredDrop(f *os.File) {
	defer f.Close() // want errcheck "deferred call to f.Close drops its error"
}

func goDrop(f *os.File) {
	go f.Sync() // want errcheck "go call to f.Sync drops its error" // want goroutinelifecycle "no visible body and no context argument"
}

func acknowledged(f *os.File) {
	_ = f.Close() // explicit assignment acknowledges the drop
}

func printing(v int) {
	fmt.Println(v) // fmt print family: exempt by convention
}

func neverFailingWriters(sb *strings.Builder, buf *bytes.Buffer, cw *csv.Writer) string {
	sb.WriteString("a")     // strings.Builder documents a nil error
	buf.WriteString("b")    // bytes.Buffer panics rather than failing
	cw.Write([]string{"c"}) // csv.Writer latches; surfaced via Flush+Error
	h := fnv.New64a()
	h.Write([]byte("d")) // hash.Hash.Write never returns an error
	_ = h.Sum64()
	return sb.String() + buf.String()
}
