// Package httpfix exercises the httpdiscipline analyzer: every handler
// path calls WriteHeader at most once, mutates headers and writes the
// status before the first body write, and returns sync.Pool objects on
// every path after Get.
package httpfix

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
)

// encodeThenError is the canonical pre-fix bug this analyzer was built
// to catch (the shape fixed in live/server.go, the obs handlers, and
// the collector): by the time Encode fails, the body bytes are on the
// wire, so http.Error appends noise to an already-committed response.
func encodeThenError(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, "encode error", http.StatusInternalServerError) // want httpdiscipline "http.Error after the response body was already written"
	}
}

// marshalFirst is the fix: marshal to memory, then headers, then one
// body write — no path has an ordering violation.
func marshalFirst(w http.ResponseWriter, v any) {
	buf, err := json.Marshal(v)
	if err != nil {
		http.Error(w, "encode error", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(append(buf, '\n'))
}

func doubleWriteHeader(w http.ResponseWriter) {
	w.WriteHeader(http.StatusAccepted)
	w.WriteHeader(http.StatusNoContent) // want httpdiscipline "WriteHeader called more than once on this path"
}

func headerAfterBody(w http.ResponseWriter) {
	_, _ = fmt.Fprintln(w, "hello")
	w.Header().Set("Content-Type", "text/plain") // want httpdiscipline "header Set after the first body write has no effect"
}

func headerAfterStatus(w http.ResponseWriter) {
	w.WriteHeader(http.StatusOK)
	w.Header().Set("Retry-After", "1") // want httpdiscipline "header Set after WriteHeader has no effect"
}

func statusAfterBody(w http.ResponseWriter) {
	_, _ = w.Write([]byte("partial"))
	w.WriteHeader(http.StatusInternalServerError) // want httpdiscipline "WriteHeader after the first body write"
}

func doubleError(w http.ResponseWriter) {
	http.Error(w, "first", http.StatusBadRequest)
	http.Error(w, "second", http.StatusInternalServerError) // want httpdiscipline "http.Error after the response body was already written"
}

// writeAfterError pins that findings inside branch bodies are real:
// on the !ok path the Error has already written status and body.
func writeAfterError(w http.ResponseWriter, ok bool) {
	if !ok {
		http.Error(w, "bad", http.StatusBadRequest)
		w.WriteHeader(http.StatusBadRequest) // want httpdiscipline "WriteHeader called more than once on this path"
	}
}

// earlyReturnGuard is the classic clean shape: the error branch writes
// its own complete response and returns; because branch effects are
// not merged, the straight-line path below stays clean.
func earlyReturnGuard(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("{}\n"))
}

// derivedWriter: enc is writer-derived (one level), so using it writes
// the body; the header mutation after it is dead.
func derivedWriter(w http.ResponseWriter, v any) {
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
	w.Header().Set("Content-Type", "application/json") // want httpdiscipline "header Set after the first body write"
}

// handlerLiteral: function literals with a ResponseWriter parameter are
// handlers too.
var handlerLiteral = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
	_, _ = w.Write([]byte("ok\n"))
	w.WriteHeader(http.StatusOK) // want httpdiscipline "WriteHeader after the first body write"
})

// readers recycles pooled readers across requests.
var readers sync.Pool

// leakNoPut never returns the pooled object at all.
func leakNoPut() int {
	r := readers.Get() // want httpdiscipline "pooled object from readers.Get is never returned to the pool in this function"
	if r == nil {
		return 0
	}
	return 1
}

// leakOnErrorPath covers the happy path with a plain Put but leaks on
// the error return between Get and Put.
func leakOnErrorPath(fail bool) error {
	r := readers.Get()
	if fail {
		return errors.New("httpfix: boom") // want httpdiscipline "return leaks the pooled object obtained from readers.Get"
	}
	readers.Put(r)
	return nil
}

// deferPut is the approved shape: a deferred Put covers every return.
func deferPut(fail bool) error {
	r := readers.Get()
	defer readers.Put(r)
	if fail {
		return errors.New("httpfix: boom")
	}
	return nil
}

// putBeforeReturn is also legal when every return follows the Put.
func putBeforeReturn() int {
	r := readers.Get()
	n := 0
	if r != nil {
		n = 1
	}
	readers.Put(r)
	return n
}

// deferredClosurePut: a Put inside a defer-invoked literal counts as
// deferred and covers later returns.
func deferredClosurePut(fail bool) error {
	r := readers.Get()
	defer func() { readers.Put(r) }()
	if fail {
		return errors.New("httpfix: boom")
	}
	return nil
}

// innerLiteralReturn: returns inside a non-deferred literal belong to
// the literal, not the enclosing function, and do not leak the Get.
func innerLiteralReturn() func() int {
	r := readers.Get()
	defer readers.Put(r)
	return func() int { return 2 }
}
