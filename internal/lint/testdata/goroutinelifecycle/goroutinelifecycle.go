// Package goroutinelifecycle exercises the goroutinelifecycle
// analyzer: looping goroutines must carry a shutdown path (context or
// signal-channel receive, range over a channel, or WaitGroup.Done);
// one-shot goroutines are exempt; opaque callees need a context
// argument. The tests also load this package under an external import
// path, which the analyzer does not police.
package goroutinelifecycle

import (
	"context"
	"sync"
	"time"
)

type worker struct {
	quit chan struct{}
	jobs chan int
	wg   sync.WaitGroup
}

func spin() {}

func leakyDaemon() {
	go func() { // want goroutinelifecycle "long-lived goroutine has no shutdown path"
		for {
			spin()
		}
	}()
}

func ctxSelectLoop(ctx context.Context, jobs chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case j := <-jobs:
				_ = j
			}
		}
	}()
}

func quitChanLoop(w *worker) {
	go func() {
		for {
			select {
			case <-w.quit:
				return
			case j := <-w.jobs:
				_ = j
			}
		}
	}()
}

func rangeOverChannel(jobs chan int) {
	go func() {
		for j := range jobs { // ends when the owner closes jobs
			_ = j
		}
	}()
}

func waitGroupWorker(w *worker, jobs []int) {
	w.wg.Add(1)
	go func() {
		defer w.wg.Done() // tied into the owner's Wait
		for _, j := range jobs {
			_ = j
		}
	}()
}

func oneShot() {
	go spin() // no loop: runs to completion on its own
}

func (w *worker) run() {
	for {
		select {
		case <-w.quit:
			return
		case j := <-w.jobs:
			_ = j
		}
	}
}

func samePackageMethod(w *worker) {
	go w.run() // blessed through run's own select loop
}

func indirectWithContext(ctx context.Context, f func(context.Context)) {
	go f(ctx) // opaque callee, but the context argument ties it to shutdown
}

func indirectOpaque(f func()) {
	go f() // want goroutinelifecycle "no visible body and no context argument"
}

// tickerRangeIsNotAShutdownPath: Stop never closes a Ticker's C, so
// ranging over it loops forever.
func tickerRangeIsNotAShutdownPath(work func()) {
	tick := time.NewTicker(time.Second)
	go func() { // want goroutinelifecycle "long-lived goroutine has no shutdown path"
		for range tick.C {
			work()
		}
	}()
}

func tickerSelectLoop(ctx context.Context, work func()) {
	tick := time.NewTicker(time.Second)
	go func() {
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
				work()
			}
		}
	}()
}
