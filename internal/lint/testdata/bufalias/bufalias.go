// Package bufaliasfix exercises the bufalias analyzer: subslices of
// reset-and-reused scratch buffers (declared //vmp:scratch, or inferred
// from the d.buf = d.buf[:0] reset idiom) must not escape into
// long-lived state without a copy or a capacity-capped three-index
// subslice, and append must not run through an uncapped mid-buffer
// subslice of the shared backing array.
package bufaliasfix

// decoder models the wire decoder's reuse contract: frame is scratch,
// rewritten by every decode; held and name are long-lived retention.
type decoder struct {
	frame []byte //vmp:scratch reused across Decode calls
	held  []byte
	name  string
}

// retained is long-lived package state.
var retained []byte

func (d *decoder) escapeIntoField(n int) {
	d.held = d.frame[4:n] // want bufalias "subslice of reused scratch buffer escapes into long-lived state through held"
}

func (d *decoder) escapeIntoPackageVar(n int) {
	retained = d.frame[:n] // want bufalias "escapes into long-lived state through retained"
}

func (d *decoder) escapeThroughLocal() {
	v := d.frame[4:8]
	d.held = v // want bufalias "escapes into long-lived state through held"
}

// view and viewOfView are the fixed-point chain: the scratch taint
// flows through two levels of helper summaries before it escapes.
func (d *decoder) view() []byte { return d.frame[8:16] }

func (d *decoder) viewOfView() []byte { return d.view() }

func (d *decoder) escapeThroughChain() {
	d.held = d.viewOfView() // want bufalias "escapes into long-lived state through held"
}

// appendClobber appends through an uncapped mid-buffer subslice: with
// spare capacity the append rewrites scratch bytes past the window.
func (d *decoder) appendClobber(n int) {
	_ = append(d.frame[2:n], 0xFF) // want bufalias "append through an uncapped mid-buffer subslice of reused scratch"
}

// threeIndexHandoff is the deliberate capacity-capped handoff: an
// append through it cannot touch bytes past the window, so it is exempt.
func (d *decoder) threeIndexHandoff(n int) {
	d.held = d.frame[4:n:n]
}

// copyLaunders: appending into a fresh backing array copies the bytes
// out of the scratch buffer.
func (d *decoder) copyLaunders(n int) {
	d.held = append([]byte(nil), d.frame[4:n]...)
}

// stringLaunders: a string conversion copies too.
func (d *decoder) stringLaunders(n int) {
	d.name = string(d.frame[:n])
}

// reset is the reuse idiom itself: the target is the scratch field, not
// long-lived state.
func (d *decoder) reset() {
	d.frame = d.frame[:0]
}

// growFromStart is the amortized-reuse idiom: append from the start of
// the scratch buffer is how the buffer grows.
func (d *decoder) growFromStart(b []byte) {
	d.frame = append(d.frame[:0], b...)
}

// localUseIsLegal: locals are not long-lived state; the taint engine
// tracks them, but only stores into fields or package variables report.
func (d *decoder) localUseIsLegal(n int) int {
	total := 0
	for _, b := range d.frame[:n] {
		total += int(b)
	}
	return total
}

// View is legal: returning a scratch view to a caller is governed by
// the documented ownership rule (valid until the next decode); only
// stores into long-lived state are flagged.
func (d *decoder) View(n int) []byte {
	return d.frame[:n]
}

// sensor carries no annotation: batch is inferred scratch from the
// reset idiom in flush.
type sensor struct {
	batch []int
	last  []int
}

func (s *sensor) flush() {
	s.batch = s.batch[:0]
}

func (s *sensor) escapeInferred(n int) {
	s.last = s.batch[:n] // want bufalias "escapes into long-lived state through last"
}
