// Package chanown owns a type with an exported channel; closing it
// from outside is the ownership violation chandiscipline rejects.
package chanown

// Feed carries events to subscribers; only this package may close C.
type Feed struct {
	C chan int
}
