// Package chandiscipline exercises the chandiscipline analyzer:
// sends in long-lived loops need a cancellation branch, only the
// owning package closes a channel, and data-carrying channels in
// queue positions must be bounded. The tests also load this package
// under an external import path, which the analyzer does not police.
package chandiscipline

import (
	"context"

	"vmp/internal/lint/testdata/chandiscipline/chanown"
)

type ingest struct {
	queue chan []byte
	quit  chan struct{}
	flush chan chan struct{}
}

func newIngest() *ingest {
	return &ingest{
		queue: make(chan []byte),        // want chandiscipline "unbuffered channel in a queue position"
		quit:  make(chan struct{}),      // signal channel: exempt
		flush: make(chan chan struct{}), // ack plumbing: exempt
	}
}

func newBoundedIngest() *ingest {
	return &ingest{
		queue: make(chan []byte, 128), // capacity is the backpressure contract
		quit:  make(chan struct{}),
		flush: make(chan chan struct{}),
	}
}

func (in *ingest) rebindUnbounded() {
	in.queue = make(chan []byte) // want chandiscipline "unbuffered channel in a queue position"
}

func unguardedSend(out chan int) {
	for {
		out <- 1 // want chandiscipline "send inside a long-lived loop without a cancellation branch"
	}
}

func guardedSend(ctx context.Context, out chan int) {
	for {
		select {
		case out <- 1:
		case <-ctx.Done():
			return
		}
	}
}

func quitGuardedSend(quit chan struct{}, out chan int) {
	for {
		select {
		case out <- 1:
		case <-quit:
			return
		}
	}
}

func boundedLoopSend(out chan int, xs []int) {
	for _, x := range xs {
		out <- x // counted loop: the producer finishes on its own
	}
}

func closeOwnChannel() {
	ch := make(chan int, 1)
	close(ch) // the creator owns the close
}

func (in *ingest) shutdown() {
	close(in.quit) // own package's field: the owner closing its channel
}

func closeParam(ch chan int) {
	close(ch) // want chandiscipline "close of channel parameter ch"
}

func closeForeign(f *chanown.Feed) {
	close(f.C) // want chandiscipline "close of a channel owned by another package's type"
}
