// Package simclockpose is loaded by the tests under the import path
// vmp/internal/simclock — the one package allowed to own the wall
// clock — to prove the nondeterminism analyzer's exemption.
package simclockpose

import "time"

func now() time.Time { return time.Now() }
