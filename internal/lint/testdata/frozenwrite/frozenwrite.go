// Package frozenwrite exercises the frozenwrite analyzer: writes
// through any view handed out by telemetry.Dataset or
// telemetry.DimColumn are flagged; value copies and rebinding are
// not. The tests also load this package under a pose path inside
// vmp/internal/telemetry to prove the owning-package exemption.
package frozenwrite

import "vmp/internal/telemetry"

func writeThroughAll(d *telemetry.Dataset) {
	recs := d.All()
	recs[0].Publisher = "p" // want frozenwrite "write through a telemetry.Dataset view"
}

func writeThroughRecordPointer(d *telemetry.Dataset) {
	r := d.Record(0)
	r.Live = true // want frozenwrite "write through a telemetry.Dataset view"
}

func writeThroughSubslice(d *telemetry.Dataset) {
	view := d.All()[1:3]
	view[0].Live = true // want frozenwrite "write through a telemetry.Dataset view"
}

func writeThroughNestedSlice(d *telemetry.Dataset) {
	r := d.Record(0)
	r.CDNs[0] = "x" // want frozenwrite "write through a telemetry.Dataset view"
}

func writeThroughElementPointer(d *telemetry.Dataset) {
	recs := d.All()
	for i := range recs {
		p := &recs[i]
		p.Live = true // want frozenwrite "write through a telemetry.Dataset view"
	}
}

func writeThroughDimColumn(c *telemetry.DimColumn) {
	ids := c.IDs(0)
	ids[0] = 7 // want frozenwrite "write through a telemetry.Dataset view"
}

func rebindIsLegal(d *telemetry.Dataset) []telemetry.ViewRecord {
	recs := d.All()
	recs = recs[:0] // rebinding the variable writes no shared memory
	return recs
}

func valueCopyIsLegal(d *telemetry.Dataset) telemetry.ViewRecord {
	rec := *d.Record(0)
	rec.Live = true // the copy is the caller's to mutate
	return rec
}

// viewHelper is the one-level interprocedural case: it returns a view,
// so its summary taints every caller's result.
func viewHelper(d *telemetry.Dataset) []telemetry.ViewRecord {
	return d.All()
}

func writeThroughHelper(d *telemetry.Dataset) {
	recs := viewHelper(d)
	recs[0].Live = true // want frozenwrite "write through a telemetry.Dataset view"
}

func helperValueCopyIsLegal(d *telemetry.Dataset) telemetry.ViewRecord {
	rec := viewHelper(d)[0]
	rec.Live = true // the element copy is the caller's to mutate
	return rec
}

// viewDepth1/viewDepth2 are the fixed-point chain the v3 engine added:
// the view flows through two helper levels before the write, which the
// old one-level summaries could not see.
func viewDepth1(d *telemetry.Dataset) []telemetry.ViewRecord { return viewHelper(d) }

func viewDepth2(d *telemetry.Dataset) []telemetry.ViewRecord { return viewDepth1(d) }

func writeThroughDeepChain(d *telemetry.Dataset) {
	recs := viewDepth2(d)
	recs[0].Live = true // want frozenwrite "write through a telemetry.Dataset view"
}
