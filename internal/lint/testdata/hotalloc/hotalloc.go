// Package hotallocfix exercises the hotalloc analyzer: functions
// annotated //vmp:hotpath may not contain allocating constructs unless
// the line (or the line above) carries //vmp:alloc <reason>, and calls
// into same-package helpers that transitively allocate are flagged at
// the call site.
package hotallocfix

import (
	"fmt"
	"sync"
)

// index models a lookup structure the hot path reads.
type index struct {
	m map[string]int
}

// hotDirect holds one of every flagged construct.
//
//vmp:hotpath
func hotDirect(n int) int {
	b := make([]byte, n)         // want hotalloc "make allocates on a //vmp:hotpath path"
	p := new(int)                // want hotalloc "new allocates on a //vmp:hotpath path"
	s := []int{1, 2}             // want hotalloc "slice literal allocates on a //vmp:hotpath path"
	m := map[string]int{}        // want hotalloc "map literal allocates on a //vmp:hotpath path"
	t := &index{}                // want hotalloc "heap-allocated composite literal allocates on a //vmp:hotpath path"
	f := func() int { return n } // want hotalloc "capturing closure allocates on a //vmp:hotpath path"
	return len(b) + *p + s[0] + len(m) + len(t.m) + f()
}

//vmp:hotpath
func hotStrings(name string, raw []byte) string {
	s := string(raw)          // want hotalloc "string conversion allocates on a //vmp:hotpath path"
	u := name + s             // want hotalloc "string concatenation allocates on a //vmp:hotpath path"
	u = fmt.Sprintf("%s!", u) // want hotalloc "fmt.Sprintf allocates on a //vmp:hotpath path"
	return u
}

// hotApproved: deliberate allocations carry //vmp:alloc with a reason,
// trailing or on the line above.
//
//vmp:hotpath
func hotApproved(n int) []byte {
	b := make([]byte, n) //vmp:alloc fixture: amortized scratch grow
	//vmp:alloc fixture: cold-start arena
	a := make([]int, n)
	return append(b, byte(len(a)))
}

// hotLegal: the approved patterns — append, constant concatenation,
// m[string(b)] lookups, fmt.Errorf on the cold error path, and
// non-capturing literals — need no approval.
//
//vmp:hotpath
func hotLegal(ix *index, dst []byte, key []byte) ([]byte, error) {
	dst = append(dst, key...)
	const greeting = "a" + "b"
	if ix == nil {
		return nil, fmt.Errorf("hotallocfix: nil index on %s", greeting)
	}
	n := ix.m[string(key)]
	double := func(v int) int { return v * 2 }
	return append(dst, byte(double(n))), nil
}

// bufs recycles buffers; Get/Put is the approved alternative to
// allocating (httpdiscipline checks the Put side).
var bufs = sync.Pool{New: func() any { return new([]byte) }}

//vmp:hotpath
func hotPooled() int {
	b := bufs.Get().(*[]byte)
	defer bufs.Put(b)
	return len(*b)
}

// leafAlloc is a plain helper that allocates; mid only forwards it, so
// the fixed point marks both as may-allocate.
func leafAlloc(n int) []byte { return make([]byte, n) }

func mid(n int) []byte { return leafAlloc(n) }

//vmp:hotpath
func hotTransitive(n int) []byte {
	return mid(n) // want hotalloc "call to mid, which allocates"
}

// hotCallsApproved: a call-site approval silences the transitive
// finding without annotating the helper.
//
//vmp:hotpath
func hotCallsApproved(n int) []byte {
	return mid(n) //vmp:alloc fixture: cold-path refill
}

// hotHelper is itself //vmp:hotpath: its body is checked directly (and
// is clean), so hot callers do not flag the call.
//
//vmp:hotpath
func hotHelper(dst []byte, b byte) []byte { return append(dst, b) }

//vmp:hotpath
func hotChain(dst []byte) []byte {
	return hotHelper(dst, 1)
}
