// Package lockorderfix exercises the global lock-order analyzer: Grab
// and Steal acquire the A/B mutex classes in opposite orders (Steal
// through a helper, so the edge comes from the transitive lock set),
// which is the deadlock shape lockorder reports; the C/D pair always
// nests the same way and stays clean.
package lockorderfix

import "sync"

// A and B are two lock classes with no inherent order.
type A struct {
	mu sync.Mutex
	n  int
}

// B is the second class of the inverted pair.
type B struct {
	mu sync.Mutex
	n  int
}

// Grab nests B under A.
func Grab(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want lockorder "lock-order cycle"
	b.n++
	b.mu.Unlock()
	a.n++
}

// Steal nests A under B — through lockA, so the inversion is only
// visible in Grab's direction plus Steal's transitive call edge.
func Steal(a *A, b *B) {
	b.mu.Lock()
	defer b.mu.Unlock()
	lockA(a) // want lockorder "lock-order cycle"
	b.n++
}

func lockA(a *A) {
	a.mu.Lock()
	a.n++
	a.mu.Unlock()
}

// C and D are consistently ordered: both paths nest D under C.
type C struct {
	mu sync.Mutex
	n  int
}

// D is always the inner lock of the clean pair.
type D struct {
	mu sync.Mutex
	n  int
}

// Feed nests D under C with a deferred outer release.
func Feed(c *C, d *D) {
	c.mu.Lock()
	defer c.mu.Unlock()
	d.mu.Lock()
	d.n++
	d.mu.Unlock()
	c.n++
}

// Drain nests D under C with explicit releases.
func Drain(c *C, d *D) {
	c.mu.Lock()
	d.mu.Lock()
	c.n++
	d.n++
	d.mu.Unlock()
	c.mu.Unlock()
}
