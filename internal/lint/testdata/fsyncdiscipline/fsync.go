// Package fsyncfix exercises the fsyncdiscipline contract from DESIGN
// §11: a temp file must be fsynced before the rename that publishes
// it and the directory fsynced after, and an ingest handler must reach
// the WAL append before writing its 202 ack.
package fsyncfix

import (
	"net/http"
	"os"
	"path/filepath"
)

// Log is a stand-in WAL: AppendBatch on a vmp/internal/ receiver is
// what the analyzer recognizes as the durability entry point.
type Log struct{}

// AppendBatch appends one batch of frames.
func (l *Log) AppendBatch(parts [][]byte) error { return nil }

// saveBad publishes via os.WriteFile, which never syncs: the data can
// still be in the page cache when the rename lands.
func saveBad(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path) // want fsyncdiscipline "renamed into place without an fsync"
}

// saveNoSync writes through a handle but closes it without Sync.
func saveNoSync(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path) // want fsyncdiscipline "before its handle is fsynced"
}

// saveNoDir syncs the content but not the directory: the file is
// durable, the rename that made it visible is not.
func saveNoDir(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path) // want fsyncdiscipline "not followed by a directory fsync"
}

// saveGood is the full atomic-replace protocol: write, Sync, Close,
// Rename, then fsync the directory.
func saveGood(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	dir, err := os.Open(filepath.Dir(path))
	if err != nil {
		return err
	}
	if err := dir.Sync(); err != nil {
		_ = dir.Close()
		return err
	}
	return dir.Close()
}

// handleBad acks before the append: a crash between the two loses a
// batch the client believes durable.
func handleBad(l *Log, w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusAccepted)
	if err := l.AppendBatch(nil); err != nil { // want fsyncdiscipline "after the HTTP 202"
		return
	}
}

// handleBadIndirect reaches the append through a same-package helper;
// the call-graph fixed point carries the fact to the call site.
func handleBadIndirect(l *Log, w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusAccepted)
	if err := persist(l); err != nil { // want fsyncdiscipline "after the HTTP 202"
		return
	}
}

func persist(l *Log) error { return l.AppendBatch(nil) }

// handleGood appends first and acks after.
func handleGood(l *Log, w http.ResponseWriter, r *http.Request) {
	if err := l.AppendBatch(nil); err != nil {
		http.Error(w, "wal append failed", http.StatusInternalServerError)
		return
	}
	w.WriteHeader(http.StatusAccepted)
}
