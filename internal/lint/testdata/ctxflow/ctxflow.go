// Package ctxflow exercises the ctxflow analyzer: functions that
// already have a caller context (a context.Context parameter or an
// *http.Request) must thread it instead of minting a fresh root, and
// time.Sleep is forbidden outright. The tests also load this package
// under an external import path, which the analyzer does not police.
package ctxflow

import (
	"context"
	"net/http"
	"time"
)

func run(ctx context.Context, q string) error {
	_ = q
	return ctx.Err()
}

func sleepy() {
	time.Sleep(time.Millisecond) // want ctxflow "time.Sleep blocks with no way to cancel"
}

func freshRootWithCtx(ctx context.Context, q string) error {
	sub := context.Background() // want ctxflow "context.Background mints a fresh root"
	return run(sub, q)
}

func todoWithCtx(ctx context.Context) error {
	return run(context.TODO(), "") // want ctxflow "context.TODO mints a fresh root"
}

func handler(w http.ResponseWriter, r *http.Request) {
	_ = run(context.Background(), r.URL.Path) // want ctxflow "context.Background mints a fresh root"
}

func goodHandler(w http.ResponseWriter, r *http.Request) {
	_ = run(r.Context(), r.URL.Path) // the client's cancellation reaches run
}

func threaded(ctx context.Context) error {
	return run(ctx, "ok")
}

func noCallerContext(q string) error {
	return run(context.Background(), q) // nothing to thread: minting is legal here
}

// main is exempt even in scope: the root context has to come from
// somewhere.
func main() {
	_ = run(context.Background(), "boot")
}
