// Package nondet exercises the nondeterminism analyzer: wall-clock
// reads and the process-seeded global math/rand source are flagged;
// seeded generators and bare type references are not.
package nondet

import (
	"math/rand"
	"time"
)

func wallClock() time.Duration {
	start := time.Now()      // want nondeterminism "time.Now reads the wall clock"
	return time.Since(start) // want nondeterminism "time.Since reads the wall clock"
}

func ticking(stop chan bool) int {
	n := 0
	for {
		select {
		case <-time.Tick(time.Second): // want nondeterminism "time.Tick reads the wall clock"
			n++
		case <-stop:
			return n
		}
	}
}

func globalSource() int {
	return rand.Intn(6) // want nondeterminism "rand.Intn draws from the process-seeded global source"
}

func seeded(seed int64) float64 {
	r := rand.New(rand.NewSource(seed)) // explicitly seeded: allowed
	return r.Float64()
}

func typesOnly(t time.Time, r *rand.Rand) (time.Time, *rand.Rand) {
	return t, r // references to time.Time and rand.Rand carry no nondeterminism
}
