// Package ignore exercises //lint:ignore suppression: a well-formed
// directive (analyzer or "all", plus a non-empty reason) on the
// finding's line or the line above silences it; malformed or
// mismatched directives are inert.
package ignore

import "time"

func ownLineDirective() time.Time {
	//lint:ignore nondeterminism fixture: operational logging wants the wall clock
	return time.Now()
}

func trailingDirective() time.Time {
	return time.Now() //lint:ignore all fixture: trailing suppression form
}

func missingReason() time.Time {
	//lint:ignore nondeterminism
	return time.Now() // want nondeterminism "time.Now reads the wall clock"
}

func wrongAnalyzer() time.Time {
	//lint:ignore maporder fixture: directive names a different analyzer
	return time.Now() // want nondeterminism "time.Now reads the wall clock"
}
