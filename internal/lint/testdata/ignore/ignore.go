// Package ignore exercises //lint:ignore suppression: a well-formed
// directive (analyzer or "all", plus a non-empty reason) on the
// finding's line or the line above silences it; a directive without a
// reason is inert and is itself reported as an "ignore" finding; a
// directive naming analyzer A never silences analyzer B, even on the
// same line.
package ignore

import "time"

func ownLineDirective() time.Time {
	//lint:ignore nondeterminism fixture: operational logging wants the wall clock
	return time.Now()
}

func trailingDirective() time.Time {
	return time.Now() //lint:ignore all fixture: trailing suppression form
}

func missingReason() time.Time {
	//lint:ignore nondeterminism // want ignore "missing its mandatory reason"
	return time.Now() // want nondeterminism "time.Now reads the wall clock"
}

func wrongAnalyzer() time.Time {
	//lint:ignore maporder fixture: directive names a different analyzer
	return time.Now() // want nondeterminism "time.Now reads the wall clock"
}

// sameLineOtherAnalyzer pins that suppression is per-analyzer even in
// the trailing position: the directive silences ctxflow's time.Sleep
// finding but nondeterminism still fires on time.Since, on the very
// same line.
func sameLineOtherAnalyzer(t0 time.Time) {
	time.Sleep(time.Since(t0)) //lint:ignore ctxflow fixture: sleep is the construct under test // want nondeterminism "time.Since reads the wall clock"
}

// allocMissingReason pins that the //vmp:alloc grammar shares the
// mandatory-reason rule: a reasonless directive (or one whose "reason"
// is a trailing comment) approves nothing and is itself reported, as
// analyzer "hotalloc".
//
//vmp:hotpath
func allocMissingReason() []byte {
	//vmp:alloc // want hotalloc "missing its mandatory reason"
	return make([]byte, 8) // want hotalloc "make allocates on a //vmp:hotpath path"
}
