// Package maporder exercises the maporder analyzer: accumulation in
// map iteration order is flagged unless canonically sorted; per-key
// transforms and order-insensitive folds are not.
package maporder

import (
	"fmt"
	"sort"
)

func appendNeverSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want maporder "never canonically sorted"
	}
	return keys
}

func appendTotallySorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // sort.Strings below proves a canonical order
	}
	sort.Strings(keys)
	return keys
}

func appendComparatorSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want maporder "cannot be proven total"
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func floatAccumulation(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v // want maporder "floating-point accumulation"
	}
	return total
}

func floatIncrement(m map[string]bool) float64 {
	n := 0.0
	for range m {
		n++ // want maporder "floating-point accumulation"
	}
	return n
}

func intAccumulation(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v // integer addition is associative: clean
	}
	return total
}

func perKeyTransform(m map[string]float64) {
	for k := range m {
		m[k] *= 2 // per-key write through the range key: clean
	}
}

func writeThroughCall(rows map[string][]float64, m map[string]float64) {
	row := func(k string) []float64 { return rows[k] }
	for k, v := range m {
		row(k)[0] = v // want maporder "write through a call result"
	}
}

func printing(m map[string]int) {
	for k := range m {
		fmt.Println(k) // want maporder "output written in map iteration order"
	}
}
