// Package atomicdiscipline exercises both atomicdiscipline rules.
// Mixed access: fields and package-level variables that are ever
// passed to a sync/atomic function must never be touched plainly.
// Publish-then-mutate: values reachable from an atomic.Pointer (by
// Load, through a one-level helper, or after Store) are immutable.
// The tests also load this package under an external import path,
// which the analyzer does not police.
package atomicdiscipline

import (
	"sync"
	"sync/atomic"
)

type counter struct {
	mu sync.Mutex
	n  int64 // accessed via sync/atomic
	m  int64 // accessed only under mu
}

func (c *counter) inc() {
	atomic.AddInt64(&c.n, 1)
}

func (c *counter) load() int64 {
	return atomic.LoadInt64(&c.n) // the sanctioned access form
}

func (c *counter) racyRead() int64 {
	return c.n // want atomicdiscipline "plain access to n"
}

func (c *counter) racyWrite() {
	c.n++ // want atomicdiscipline "plain access to n"
}

func (c *counter) lockedFieldIsFine() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m++ // m never goes through sync/atomic; the mutex is its story
	return c.m
}

func newCounter() *counter {
	return &counter{n: 0} // a literal key names the field before publication
}

var hits int64 // package-level state accessed via sync/atomic

func recordHit() {
	atomic.AddInt64(&hits, 1)
}

func reportHits() int64 {
	return hits // want atomicdiscipline "plain access to hits"
}

type generation struct {
	id    int
	items []string
}

type engine struct {
	gen atomic.Pointer[generation]
}

// current is the one-level interprocedural case: its summary carries
// the Load taint to every caller.
func (e *engine) current() *generation {
	return e.gen.Load()
}

func (e *engine) mutateLoaded() {
	g := e.gen.Load()
	g.id = 7 // want atomicdiscipline "write through a value loaded from an atomic.Pointer"
}

func (e *engine) mutateViaHelper() {
	g := e.current()
	g.items[0] = "x" // want atomicdiscipline "write through a value loaded from an atomic.Pointer"
}

func (e *engine) mutateAfterStore() {
	g := &generation{id: 1}
	e.gen.Store(g)
	g.id = 2 // want atomicdiscipline "published via atomic Store"
}

func (e *engine) buildThenStoreIsLegal() {
	g := &generation{id: 1}
	g.items = append(g.items, "a") // mutation before publication is private
	e.gen.Store(g)
}

func (e *engine) copyIsLegal() generation {
	g := *e.gen.Load()
	g.id = 9 // the value copy is the caller's to mutate
	return g
}
