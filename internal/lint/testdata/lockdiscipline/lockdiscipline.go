// Package lockdiscipline exercises the lockdiscipline analyzer:
// re-entering the receiver's own lock and returning guarded slices
// from under it are flagged; copy-before-return and unlock-first call
// sequences are not.
package lockdiscipline

import "sync"

// Registry is a mutex-holding type in the telemetry.Store mold.
type Registry struct {
	mu    sync.RWMutex
	items map[string]int
	order []string
}

func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.items)
}

func (r *Registry) LeakedSnapshot() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.order // want lockdiscipline "returns internal field order while holding the lock"
}

func (r *Registry) CopiedSnapshot() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, len(r.order))
	copy(out, r.order)
	return out // copies leave the guarded slice behind: clean
}

func (r *Registry) Reentrant() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.Len() // want lockdiscipline "calls Len while holding the receiver's lock"
}

func (r *Registry) UnlockFirst() int {
	r.mu.RLock()
	n := len(r.items)
	r.mu.RUnlock()
	return n + r.Len() // lock already released: clean
}

// locked assumes the caller holds the lock and does not acquire it.
func (r *Registry) locked() int { return len(r.items) }

func (r *Registry) Total() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.locked() // callee never locks: clean
}

func (r *Registry) UnguardedReturn() []string {
	return r.order // no lock held on this path: not the analyzer's concern
}
