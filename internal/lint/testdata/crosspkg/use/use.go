// Package use consumes alias-wrapped state and mutates it — the
// cross-package laundering chain the whole-program summaries exist to
// see through. Analyzed alone (no dependency summaries in scope) this
// package is clean; analyzed after alias along the import DAG, both
// writes below are findings.
package use

import (
	"vmp/internal/lint/testdata/crosspkg/alias"
	"vmp/internal/telemetry"
)

// Rename mutates a frozen dataset view obtained through the two-hop
// cross-package accessor chain.
func Rename(d *telemetry.Dataset) {
	recs := alias.Records(d)
	recs[0].Publisher = "relabeled" // want frozenwrite "telemetry.Dataset view"
}

// Reset mutates a generation loaded from an atomic pointer through the
// cross-package wrapper.
func Reset(b *alias.Box) {
	st := b.Current()
	st.Hits[0] = 0 // want atomicdiscipline "published generations are immutable"
}
