// Package alias wraps telemetry accessors and atomic publication
// behind one more exported hop: dependents receive frozen-dataset
// views and atomic-published state without ever calling telemetry or
// sync/atomic themselves. Before whole-program summaries this hop
// laundered the taint; the cross-package fixture test pins that it no
// longer does.
package alias

import (
	"sync/atomic"

	"vmp/internal/telemetry"
)

// Records returns the dataset's backing view records, through an
// unexported helper so the in-package fixed point has to carry the
// taint one extra level before it is exported.
func Records(d *telemetry.Dataset) []telemetry.ViewRecord {
	return rows(d)
}

func rows(d *telemetry.Dataset) []telemetry.ViewRecord { return d.All() }

// State is one published generation of counters.
type State struct {
	Hits []int64
}

// Box publishes a State behind an atomic pointer.
type Box struct {
	cur atomic.Pointer[State]
}

// Publish stores s as the current state.
func (b *Box) Publish(s *State) { b.cur.Store(s) }

// Current returns the published state.
func (b *Box) Current() *State { return b.cur.Load() }
