package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GoroutineLifecycle ties every goroutine in internal/ and cmd/ code
// to a shutdown path, so daemons cannot leak consumers: a `go`
// statement whose function loops forever must be stoppable. A spawned
// function passes when its body (or the body of the same-package
// function it calls) shows one of:
//
//   - a receive from a context's Done() channel or from a signal
//     channel (chan struct{} — the quit/done idiom), in a select or
//     directly;
//   - a range over a channel, which terminates when the owner closes
//     it;
//   - a sync.WaitGroup.Done call, tying the goroutine into an owner's
//     Wait;
//   - for cross-package callees whose body is not visible: the
//     callee's published lifecycle summary (it does not loop, or loops
//     with one of the constructs above — see summary.go), or a
//     context.Context argument threaded into the call.
//
// Goroutine bodies with no loop at all run to completion on their own
// and are exempt — the analyzer polices daemons, not one-shot helpers.
var GoroutineLifecycle = &Analyzer{
	Name: "goroutinelifecycle",
	Doc:  "require every long-lived goroutine to have a shutdown path",
	Run:  runGoroutineLifecycle,
}

func runGoroutineLifecycle(p *Pass) {
	if !strings.HasPrefix(p.Path, "vmp/internal/") && !strings.HasPrefix(p.Path, "vmp/cmd/") {
		return
	}
	decls := p.packageFuncBodies()
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			p.checkGoStmt(gs, decls)
			return true
		})
	}
}

// packageFuncBodies maps every function and method declared in the
// package to its body, so `go e.runShard(sh)` can be checked against
// runShard's own select loop.
func (p *Pass) packageFuncBodies() map[types.Object]*ast.BlockStmt {
	out := make(map[types.Object]*ast.BlockStmt)
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj := p.Info.Defs[fd.Name]; obj != nil {
				out[obj] = fd.Body
			}
		}
	}
	return out
}

func (p *Pass) checkGoStmt(gs *ast.GoStmt, decls map[types.Object]*ast.BlockStmt) {
	var body *ast.BlockStmt
	switch fn := gs.Call.Fun.(type) {
	case *ast.FuncLit:
		body = fn.Body
	default:
		if obj := p.calleeObject(gs.Call); obj != nil {
			body = decls[obj]
		}
	}
	if body == nil {
		// Cross-package callee: consult its published lifecycle facts
		// first (summary.go) — a callee that does not loop, or loops
		// with a recognized shutdown construct, is exonerated exactly
		// as a visible body would be. Facts only ever exonerate: with
		// no summary the check falls back to requiring a context
		// argument, the same rule as before.
		if f, ok := p.depFacts(p.calleeObject(gs.Call)); ok && (!f.Loops || f.Shutdown) {
			return
		}
		if p.callPassesContext(gs.Call) {
			return
		}
		p.Reportf(gs.Pos(),
			"goroutine calls a function with no visible body and no context argument; thread a context.Context (or spawn a same-package wrapper with a shutdown path) so the daemon can be stopped")
		return
	}
	if !hasLoop(body) {
		return // one-shot goroutine, runs to completion
	}
	if p.bodyHasShutdownPath(body) || p.callPassesContext(gs.Call) {
		return
	}
	p.Reportf(gs.Pos(),
		"long-lived goroutine has no shutdown path (no context/done-channel receive, channel range, or WaitGroup.Done); a daemon that cannot be stopped leaks on shutdown")
}

// hasLoop reports whether body contains any for or range statement
// (function literals included: a loop is a loop wherever it hides).
func hasLoop(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			found = true
		}
		return !found
	})
	return found
}

// callPassesContext reports whether any argument of the call is a
// context.Context.
func (p *Pass) callPassesContext(call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		if t := p.Info.TypeOf(arg); t != nil && isContextType(t) {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// bodyHasShutdownPath looks for the blessing constructs inside a
// goroutine body.
func (p *Pass) bodyHasShutdownPath(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch v := n.(type) {
		case *ast.UnaryExpr:
			// <-ctx.Done(), <-quit: a receive from a cancellation source.
			if v.Op == token.ARROW && p.isCancellationChan(v.X) {
				found = true
			}
		case *ast.RangeStmt:
			// range over a channel ends when the owner closes it — except
			// a time.Ticker's C, which Stop never closes: ranging over it
			// loops forever.
			if t := p.Info.TypeOf(v.X); t != nil && !p.isTickerChan(v.X) {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case *ast.CallExpr:
			if p.isWaitGroupDone(v) {
				found = true
			}
		}
		return !found
	})
	return found
}

// isTickerChan reports whether e is the C field of a time.Ticker or
// time.Timer — channels the runtime never closes, so ranging over
// them is not a termination path.
func (p *Pass) isTickerChan(e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "C" {
		return false
	}
	t := p.Info.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "time" &&
		(obj.Name() == "Ticker" || obj.Name() == "Timer")
}

// isCancellationChan reports whether e is a channel expression that
// carries cancellation: a Done() call on a context.Context, or any
// chan struct{} (the quit/done signal idiom).
func (p *Pass) isCancellationChan(e ast.Expr) bool {
	if call, ok := e.(*ast.CallExpr); ok {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
			if t := p.Info.TypeOf(sel.X); t != nil && isContextType(t) {
				return true
			}
		}
	}
	t := p.Info.TypeOf(e)
	if t == nil {
		return false
	}
	ch, ok := t.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}

// isWaitGroupDone reports whether call is Done on a sync.WaitGroup.
func (p *Pass) isWaitGroupDone(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	selection, ok := p.Info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return false
	}
	t := selection.Recv()
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}
