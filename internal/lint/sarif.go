package lint

import (
	"encoding/json"
	"path/filepath"
)

// SARIF rendering: the -sarif output is a minimal, valid SARIF 2.1.0
// document (the interchange format code-scanning UIs ingest), carrying
// the same findings as the -json report. One run, one tool, one rule
// per analyzer; every finding becomes a "result" at error level with a
// single physical location.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

const sarifSchema = "https://json.schemastore.org/sarif-2.1.0.json"

// SARIF renders diagnostics as a SARIF 2.1.0 document. The analyzers
// parameter supplies the rule metadata; a synthetic "ignore" rule is
// always present because malformed //lint:ignore directives report
// under that name without being an analyzer.
func SARIF(diags []Diagnostic, analyzers []*Analyzer) ([]byte, error) {
	rules := make([]sarifRule, 0, len(analyzers)+1)
	for _, a := range analyzers {
		rules = append(rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: a.Doc},
		})
	}
	rules = append(rules, sarifRule{
		ID:               "ignore",
		ShortDescription: sarifMessage{Text: "malformed //lint:ignore suppression directive"},
	})
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: filepath.ToSlash(d.File)},
					Region:           sarifRegion{StartLine: d.Line, StartColumn: d.Col},
				},
			}},
		})
	}
	doc := sarifLog{
		Schema:  sarifSchema,
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "vmplint", Rules: rules}},
			Results: results,
		}},
	}
	return json.MarshalIndent(doc, "", "  ")
}
