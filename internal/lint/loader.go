package lint

import (
	"bufio"
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked lint target: its syntax (with comments,
// for //lint:ignore directives), its type information, and the import
// path the analyzers use for scoping decisions.
type Package struct {
	Path  string // import path, e.g. "vmp/internal/telemetry"
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages from source using only the
// standard library: module-local import paths map onto directories
// under the module root, and everything else resolves from GOROOT/src
// (the srcimporter strategy). It never shells out to the go tool, so
// lint runs are hermetic and deterministic.
//
// A Loader is not safe for concurrent use.
type Loader struct {
	Fset *token.FileSet

	ctx        build.Context
	root       string // module root directory (holds go.mod)
	modulePath string // module path declared in go.mod

	imported  map[string]*types.Package // completed dependency imports
	importing map[string]bool           // cycle guard
}

// NewLoader returns a loader rooted at the module directory containing
// go.mod.
func NewLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modulePath, err := readModulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	ctx := build.Default
	// Type-check the pure-Go variants of stdlib packages so the loader
	// never needs a C toolchain.
	ctx.CgoEnabled = false
	return &Loader{
		Fset:       token.NewFileSet(),
		ctx:        ctx,
		root:       abs,
		modulePath: modulePath,
		imported:   make(map[string]*types.Package),
		importing:  make(map[string]bool),
	}, nil
}

// ModuleRoot returns the absolute module root directory.
func (l *Loader) ModuleRoot() string { return l.root }

// ModulePath returns the module path from go.mod.
func (l *Loader) ModulePath() string { return l.modulePath }

// readModulePath extracts the module path from a go.mod file.
func readModulePath(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", fmt.Errorf("lint: locating module: %w", err)
	}
	defer func() { _ = f.Close() }()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", fmt.Errorf("lint: no module directive in %s", path)
}

// dirFor maps an import path to the directory holding its source.
func (l *Loader) dirFor(path string) string {
	if path == l.modulePath {
		return l.root
	}
	if rest, ok := strings.CutPrefix(path, l.modulePath+"/"); ok {
		return filepath.Join(l.root, filepath.FromSlash(rest))
	}
	dir := filepath.Join(l.ctx.GOROOT, "src", filepath.FromSlash(path))
	if _, err := os.Stat(dir); err != nil {
		// The standard library vendors its golang.org/x dependencies.
		if vendored := filepath.Join(l.ctx.GOROOT, "src", "vendor", filepath.FromSlash(path)); dirExists(vendored) {
			return vendored
		}
	}
	return dir
}

func dirExists(dir string) bool {
	info, err := os.Stat(dir)
	return err == nil && info.IsDir()
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.importPkg(path)
}

// ImportFrom implements types.ImporterFrom; srcDir is ignored because
// the loader resolves purely by import path.
func (l *Loader) ImportFrom(path, _ string, _ types.ImportMode) (*types.Package, error) {
	return l.importPkg(path)
}

func (l *Loader) importPkg(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.imported[path]; ok {
		return pkg, nil
	}
	if l.importing[path] {
		return nil, fmt.Errorf("lint: import cycle through %q", path)
	}
	l.importing[path] = true
	defer func() { l.importing[path] = false }()

	files, err := l.parseDir(l.dirFor(path), parser.SkipObjectResolution)
	if err != nil {
		return nil, fmt.Errorf("lint: importing %q: %w", path, err)
	}
	conf := types.Config{Importer: l, FakeImportC: true}
	pkg, err := conf.Check(path, l.Fset, files, nil)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking import %q: %w", path, err)
	}
	l.imported[path] = pkg
	return pkg, nil
}

// parseDir parses the non-test Go files build-selected for the
// directory.
func (l *Loader) parseDir(dir string, mode parser.Mode) ([]*ast.File, error) {
	bp, err := l.ctx.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	return l.parseFiles(dir, bp.GoFiles, mode)
}

// parseFiles parses the named files in dir.
func (l *Loader) parseFiles(dir string, names []string, mode parser.Mode) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, mode)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// LoadDir loads the package in dir as a lint target, deriving its
// import path from the module root. Directories holding no buildable
// Go files return (nil, nil).
func (l *Loader) LoadDir(dir string) (*Package, error) {
	path, err := l.pathFor(dir)
	if err != nil {
		return nil, err
	}
	return l.LoadDirWithPath(dir, path)
}

// pathFor derives a directory's import path from the module root.
func (l *Loader) pathFor(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(l.root, abs)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.modulePath, nil
	}
	return l.modulePath + "/" + filepath.ToSlash(rel), nil
}

// LoadDirTests loads dir with its test files included: the package
// re-type-checked with in-package _test.go files merged in, plus the
// external test package (import path + "_test") when one exists —
// the shape `go test` compiles. Directories with no Go files at all
// return (nil, nil).
func (l *Loader) LoadDirTests(dir string) ([]*Package, error) {
	path, err := l.pathFor(dir)
	if err != nil {
		return nil, err
	}
	bp, err := l.ctx.ImportDir(dir, 0)
	if err != nil {
		if _, ok := err.(*build.NoGoError); ok {
			return nil, nil
		}
		return nil, err
	}
	mode := parser.ParseComments | parser.SkipObjectResolution
	var pkgs []*Package
	names := append(append([]string(nil), bp.GoFiles...), bp.TestGoFiles...)
	if len(names) > 0 {
		files, err := l.parseFiles(dir, names, mode)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %w", dir, err)
		}
		pkg, err := l.checkFiles(dir, path, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	if len(bp.XTestGoFiles) > 0 {
		files, err := l.parseFiles(dir, bp.XTestGoFiles, mode)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %w", dir, err)
		}
		pkg, err := l.checkFiles(dir, path+"_test", files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// ScanDir reads a directory's build metadata without parsing or
// type-checking: the build-selected Go file names and the imports they
// declare (test files and test imports included when tests is set).
// This is the cheap pass RunTree keys its cache on — content hashes
// need file names, dependency closure needs imports, and neither needs
// an AST. Directories with no Go files return (nil, nil, nil); note a
// directory holding only test files is NOT a NoGoError, so scanning
// with tests=false still surfaces it with zero files.
func (l *Loader) ScanDir(dir string, tests bool) (files []string, imports []string, err error) {
	bp, err := l.ctx.ImportDir(dir, 0)
	if err != nil {
		if _, ok := err.(*build.NoGoError); ok {
			return nil, nil, nil
		}
		return nil, nil, err
	}
	files = append(files, bp.GoFiles...)
	seen := make(map[string]bool)
	add := func(paths []string) {
		for _, p := range paths {
			if !seen[p] {
				seen[p] = true
				imports = append(imports, p)
			}
		}
	}
	add(bp.Imports)
	if tests {
		files = append(files, bp.TestGoFiles...)
		files = append(files, bp.XTestGoFiles...)
		add(bp.TestImports)
		add(bp.XTestImports)
	}
	sort.Strings(files)
	sort.Strings(imports)
	return files, imports, nil
}

// LoadDirWithPath loads the package in dir under an explicit import
// path. The override is what lets fixture packages exercise the
// analyzers' path-scoped exemptions (e.g. a testdata package posing as
// vmp/internal/telemetry).
func (l *Loader) LoadDirWithPath(dir, path string) (*Package, error) {
	if _, err := l.ctx.ImportDir(dir, 0); err != nil {
		if _, ok := err.(*build.NoGoError); ok {
			return nil, nil
		}
		return nil, err
	}
	files, err := l.parseDir(dir, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		return nil, fmt.Errorf("lint: parsing %s: %w", dir, err)
	}
	return l.checkFiles(dir, path, files)
}

// checkFiles type-checks already-parsed files as one lint target under
// the given import path.
func (l *Loader) checkFiles(dir, path string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l, FakeImportC: true}
	pkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", dir, err)
	}
	return &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: pkg, Info: info}, nil
}
