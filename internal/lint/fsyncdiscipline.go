package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// FsyncDiscipline machine-checks the two durability orderings the WAL
// introduced (DESIGN §11):
//
//  1. Atomic replace: a file written via a temp path and renamed into
//     place must be fsynced before the rename — os.WriteFile followed
//     by os.Rename is flagged (WriteFile never syncs), and an
//     os.Create/os.OpenFile handle must see a Sync call before its
//     path is renamed — and the rename must be followed by a directory
//     fsync (a Sync on an *os.File opened after the rename), or the
//     rename itself can vanish in a crash.
//  2. Ack after append: a handler body must not write an HTTP 202
//     (StatusAccepted) before the call that reaches the WAL append —
//     an ack the log has not seen is a record a crash can lose.
//     Append reachability is transitive through same-package helpers
//     and cross-package summaries (summary.go).
//
// Both checks are per function body, source order, function literals
// analyzed as their own bodies — the temp-write/rename pairs and the
// ack/append pairs this analyzer exists for live inside one function
// (wal.writeFileDurable, a handler closure), and a cross-function
// pairing would be guesswork.
var FsyncDiscipline = &Analyzer{
	Name: "fsyncdiscipline",
	Doc:  "require fsync before rename (and a directory fsync after) and WAL append before HTTP 202",
	Run:  runFsyncDiscipline,
}

func runFsyncDiscipline(p *Pass) {
	if !strings.HasPrefix(p.Path, "vmp/internal/") && !strings.HasPrefix(p.Path, "vmp/cmd/") {
		return
	}
	p.ensureWALFacts()
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			p.checkFsyncBody(fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					p.checkFsyncBody(lit.Body)
				}
				return true
			})
		}
	}
}

// fsyncWrite records how a path came to hold unflushed data: an
// os.WriteFile (handle == nil, unsyncable by construction) or a
// write handle opened on it.
type fsyncWrite struct {
	pos    token.Pos
	handle types.Object // the *os.File variable, nil for os.WriteFile
}

// checkFsyncBody runs both orderings over one body, shallowly — nested
// function literals are separate bodies with their own orderings.
func (p *Pass) checkFsyncBody(body *ast.BlockStmt) {
	written := make(map[types.Object]*fsyncWrite) // path root -> pending write
	syncs := make(map[types.Object][]token.Pos)   // handle -> Sync positions
	var allSyncs []token.Pos                      // every *os.File Sync, any handle
	type renameAt struct {
		pos token.Pos
		src types.Object
	}
	var renames []renameAt
	var ackPos, appendPos token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			if v.Body == body {
				return true // the body under analysis itself
			}
			return false
		case *ast.AssignStmt:
			// f, err := os.Create(path) / os.OpenFile(path, ...): bind
			// the handle to the path it writes.
			if len(v.Rhs) != 1 || len(v.Lhs) == 0 {
				return true
			}
			call, ok := v.Rhs[0].(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			name, ok := p.pkgFunc(call, "os")
			if !ok || (name != "Create" && name != "OpenFile") {
				return true
			}
			handleID, ok := v.Lhs[0].(*ast.Ident)
			if !ok || handleID.Name == "_" {
				return true
			}
			handle := p.objectOf(handleID)
			if pathRoot := p.rootIdentObject(call.Args[0]); pathRoot != nil && handle != nil {
				written[pathRoot] = &fsyncWrite{pos: call.Pos(), handle: handle}
			}
		case *ast.CallExpr:
			if name, ok := p.pkgFunc(v, "os"); ok {
				switch name {
				case "WriteFile":
					if len(v.Args) > 0 {
						if pathRoot := p.rootIdentObject(v.Args[0]); pathRoot != nil {
							written[pathRoot] = &fsyncWrite{pos: v.Pos()}
						}
					}
				case "Rename":
					if len(v.Args) > 0 {
						if pathRoot := p.rootIdentObject(v.Args[0]); pathRoot != nil {
							renames = append(renames, renameAt{pos: v.Pos(), src: pathRoot})
						}
					}
				}
				return true
			}
			if sel, ok := v.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Sync" && len(v.Args) == 0 {
				if t := p.Info.TypeOf(sel.X); t != nil && isOSFile(t) {
					allSyncs = append(allSyncs, v.Pos())
					if obj := p.rootIdentObject(sel.X); obj != nil {
						syncs[obj] = append(syncs[obj], v.Pos())
					}
				}
				return true
			}
			if p.isAcceptedWriteHeader(v) {
				if ackPos == token.NoPos {
					ackPos = v.Pos()
				}
				return true
			}
			if appendPos == token.NoPos && p.reachesWALAppend(v) {
				appendPos = v.Pos()
			}
		}
		return true
	})
	for _, r := range renames {
		w := written[r.src]
		if w == nil || w.pos > r.pos {
			continue // not a path this body wrote beforehand
		}
		if w.handle == nil {
			p.Reportf(r.pos,
				"file written with os.WriteFile is renamed into place without an fsync; open the temp file, write, Sync, Close, then os.Rename (DESIGN §11 atomic-replace protocol)")
			continue
		}
		syncedBefore := false
		for _, sp := range syncs[w.handle] {
			if sp > w.pos && sp < r.pos {
				syncedBefore = true
				break
			}
		}
		if !syncedBefore {
			p.Reportf(r.pos,
				"temp file is renamed into place before its handle is fsynced; call Sync on the file before os.Rename (DESIGN §11 atomic-replace protocol)")
			continue
		}
		// The content made it down; the rename itself needs a directory
		// fsync after it (any *os.File Sync past the rename — the
		// protocol opens the directory and syncs that handle).
		dirSynced := false
		for _, sp := range allSyncs {
			if sp > r.pos {
				dirSynced = true
				break
			}
		}
		if !dirSynced {
			p.Reportf(r.pos,
				"rename into place is not followed by a directory fsync; open the directory and Sync it so the rename itself survives a crash (DESIGN §11 atomic-replace protocol)")
		}
	}
	if ackPos != token.NoPos && appendPos != token.NoPos && ackPos < appendPos {
		p.Reportf(appendPos,
			"WAL append happens after the HTTP 202 was already written; append (and sync per policy) before acking, or a crash loses a batch the client believes durable")
	}
}

// isAcceptedWriteHeader reports whether call is WriteHeader with a
// constant argument equal to 202 (http.StatusAccepted).
func (p *Pass) isAcceptedWriteHeader(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "WriteHeader" || len(call.Args) != 1 {
		return false
	}
	tv, ok := p.Info.Types[call.Args[0]]
	if !ok || tv.Value == nil {
		return false
	}
	code, ok := constant.Int64Val(constant.ToInt(tv.Value))
	return ok && code == 202
}

// reachesWALAppend reports whether a call (transitively) reaches a WAL
// AppendBatch: the append itself, a same-package helper summarized as
// reaching it, or a cross-package callee whose WALAppend fact is set.
func (p *Pass) reachesWALAppend(call *ast.CallExpr) bool {
	callee := p.calleeObject(call)
	if callee == nil {
		return false
	}
	if isWALAppend(callee) {
		return true
	}
	if p.graph().walReach[callee] {
		return true
	}
	f, ok := p.depFacts(callee)
	return ok && f.WALAppend
}

// rootIdentObject unwraps parentheses and string concatenation
// (path + ".tmp") to the leftmost identifier's object — the variable a
// path or handle expression is rooted in.
func (p *Pass) rootIdentObject(e ast.Expr) types.Object {
	for {
		switch v := e.(type) {
		case *ast.ParenExpr:
			e = v.X
		case *ast.BinaryExpr:
			if v.Op != token.ADD {
				return nil
			}
			e = v.X
		case *ast.Ident:
			return p.objectOf(v)
		default:
			return nil
		}
	}
}

// isOSFile reports whether t is *os.File (or os.File).
func isOSFile(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "os" && obj.Name() == "File"
}
