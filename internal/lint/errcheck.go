package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrCheck flags dropped error returns in internal/ and cmd/
// packages: an error-returning call used as a bare statement — or
// behind defer or go — silently swallows I/O failures, which the
// analytics and CLI writers must surface. Assigning the error
// explicitly (even to _) is an acknowledged drop and is not flagged.
//
// Four call families are exempt because their error returns are
// interface formality, not signal:
//
//   - the fmt print family: best-effort rendering to a writer is this
//     repo's convention, with write failures surfaced where they are
//     actionable — on Close and Flush, which this analyzer does check;
//   - strings.Builder and bytes.Buffer methods: documented to return
//     nil (Builder) or panic rather than fail (Buffer);
//   - hash.Hash writes: Write is documented to never return an error;
//   - (*encoding/csv.Writer).Write: the writer latches the first error
//     and every caller in this repo surfaces it via Flush+Error().
var ErrCheck = &Analyzer{
	Name: "errcheck",
	Doc:  "forbid silently dropped error returns in internal/ and cmd/",
	Run:  runErrCheck,
}

func runErrCheck(p *Pass) {
	if !strings.HasPrefix(p.Path, "vmp/internal/") && !strings.HasPrefix(p.Path, "vmp/cmd/") {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				if call, ok := st.X.(*ast.CallExpr); ok {
					p.checkDroppedError(call, "")
				}
			case *ast.DeferStmt:
				p.checkDroppedError(st.Call, "deferred ")
			case *ast.GoStmt:
				p.checkDroppedError(st.Call, "go ")
			}
			return true
		})
	}
}

func (p *Pass) checkDroppedError(call *ast.CallExpr, context string) {
	if p.isFmtPrint(call) || p.isNeverFails(call) {
		return
	}
	t := p.Info.TypeOf(call)
	if t == nil {
		return
	}
	switch v := t.(type) {
	case *types.Tuple:
		if v.Len() == 0 || !isErrorType(v.At(v.Len()-1).Type()) {
			return
		}
	default:
		if !isErrorType(v) {
			return
		}
	}
	p.Reportf(call.Pos(),
		"%scall to %s drops its error; handle it or assign it explicitly (e.g. _ = ...)",
		context, callName(call))
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return types.Identical(t, errorType)
}

func (p *Pass) isFmtPrint(call *ast.CallExpr) bool {
	name, ok := p.pkgFunc(call, "fmt")
	return ok && (strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint"))
}

// isNeverFails reports whether call is a method whose error return is
// contractually nil: strings.Builder and bytes.Buffer writers,
// hash.Hash writes, and csv.Writer.Write (whose latched error the
// repo's renderers surface via Flush+Error).
func (p *Pass) isNeverFails(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	selection, ok := p.Info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return false
	}
	recv := selection.Recv()
	if ptr, ok := recv.Underlying().(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	pkg, typ := named.Obj().Pkg().Path(), named.Obj().Name()
	switch {
	case pkg == "strings" && typ == "Builder":
		return true
	case pkg == "bytes" && typ == "Buffer":
		return true
	case pkg == "hash" || strings.HasPrefix(pkg, "hash/"):
		return sel.Sel.Name == "Write"
	case pkg == "encoding/csv" && typ == "Writer":
		return sel.Sel.Name == "Write"
	}
	return false
}

// callName renders a readable name for the called function.
func callName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		if id, ok := fn.X.(*ast.Ident); ok {
			return id.Name + "." + fn.Sel.Name
		}
		return fn.Sel.Name
	}
	return "function"
}
