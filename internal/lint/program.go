package lint

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file is the whole-program driver core shared by RunPackage,
// RunPackages, and the cached RunTree: one canonical per-package code
// path (build call graph → publish summary → run analyzers → apply
// ignore directives) and a deterministic parallel scheduler over the
// import DAG.

// runOnePackage analyzes one package with the program's dependency
// facts in scope, publishes the package's own summary into the
// program, and returns its sorted, directive-filtered findings plus
// the summary. Finishers are the caller's job — they need the whole
// program assembled first.
func runOnePackage(pkg *Package, prog *Program, analyzers []*Analyzer) ([]Diagnostic, *PackageSummary) {
	graph := buildCallGraph(pkg.Fset, pkg.Files, pkg.Info)
	sum := buildPackageSummary(pkg, prog, graph)
	prog.add(sum)
	var diags []Diagnostic
	for _, a := range analyzers {
		if a.Run == nil {
			continue
		}
		pass := &Pass{
			Analyzer: a,
			Path:     pkg.Path,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			report:   func(d Diagnostic) { diags = append(diags, d) },
			cg:       graph,
			prog:     prog,
		}
		a.Run(pass)
	}
	ignores, malformed := collectIgnores(pkg)
	diags = suppress(diags, ignores)
	// Malformed directives are findings in their own right — a missing
	// reason breaks the suite's audit trail — and cannot be suppressed.
	diags = append(diags, malformed...)
	diags = append(diags, graph.malformed...)
	return sortDedup(diags), sum
}

// runFinishers runs every analyzer's Finish hook over the assembled
// whole-program facts.
func runFinishers(prog *Program, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		if a.Finish != nil {
			diags = append(diags, a.Finish(prog)...)
		}
	}
	return diags
}

// runDAG calls fn(i) for every node of a dependency graph, each node
// strictly after all of its dependencies (deps[i] lists the indices i
// depends on): a Kahn pass peels the graph into topological levels,
// and each level's nodes fan out across GOMAXPROCS workers with a
// barrier between levels. Import graphs are acyclic by construction,
// but a cyclic input degrades to running the leftover nodes serially
// (in index order, dependency facts incomplete) instead of
// deadlocking.
func runDAG(deps [][]int, fn func(int)) {
	n := len(deps)
	if n == 0 {
		return
	}
	dependents := make([][]int, n)
	indegree := make([]int, n)
	for i, ds := range deps {
		indegree[i] = len(ds)
		for _, d := range ds {
			dependents[d] = append(dependents[d], i)
		}
	}
	scheduled := 0
	var level []int
	for i := 0; i < n; i++ {
		if indegree[i] == 0 {
			level = append(level, i)
		}
	}
	for len(level) > 0 {
		runLevel(level, fn)
		scheduled += len(level)
		var next []int
		for _, i := range level {
			for _, j := range dependents[i] {
				indegree[j]--
				if indegree[j] == 0 {
					next = append(next, j)
				}
			}
		}
		level = next
	}
	if scheduled < n {
		for i := 0; i < n; i++ {
			if indegree[i] > 0 {
				fn(i)
			}
		}
	}
}

// runLevel runs fn over one level of mutually independent nodes in
// parallel.
func runLevel(level []int, fn func(int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > len(level) {
		workers = len(level)
	}
	if workers <= 1 {
		for _, i := range level {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				k := int(next.Add(1)) - 1
				if k >= len(level) {
					return
				}
				fn(level[k])
			}
		}()
	}
	wg.Wait()
}
