package lint

import (
	"encoding/json"
	"os"
	"path/filepath"
)

// The incremental cache stores, per analyzed tree node, the node's
// published summary (summaries — the merged-tests node can carry two)
// and its findings, keyed by a content hash that covers everything the
// result can depend on: the suite fingerprint (analyzer set, flags,
// and the lint engine's own sources — see suiteSalt in tree.go), the
// node's file contents, and its dependencies' summary hashes. Keys are
// exact: a hit is byte-identical to re-analysis by construction, and
// anything else — torn file, schema bump, hand-edited entry — fails
// decode or key validation and degrades to a miss.
//
// Entries are flat <key>.json files written with a plain os.WriteFile,
// deliberately not the tmp+fsync+rename protocol fsyncdiscipline
// enforces on durability paths: a cache is a throwaway accelerator,
// a torn write is detected and re-analyzed, and syncing every entry
// would cost more than the cache saves.

// cacheSchema versions the entry encoding; bump on any change to the
// entry shape or meaning.
const cacheSchema = "vmplint-cache-v1"

// cacheEntry is one cached node result.
type cacheEntry struct {
	Schema    string            `json:"schema"`
	Key       string            `json:"key"`
	Summaries []*PackageSummary `json:"summaries,omitempty"`
	Findings  []Diagnostic      `json:"findings,omitempty"`
}

// Cache is a content-addressed store of per-package lint results.
type Cache struct {
	dir string
}

// OpenCache opens (creating if needed) a cache directory.
func OpenCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Cache{dir: dir}, nil
}

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// get returns the entry for key, or nil on any miss (absent, torn,
// foreign schema, or key mismatch).
func (c *Cache) get(key string) *cacheEntry {
	blob, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil
	}
	var e cacheEntry
	if err := json.Unmarshal(blob, &e); err != nil {
		return nil
	}
	if e.Schema != cacheSchema || e.Key != key {
		return nil
	}
	return &e
}

// put stores an entry; failures are swallowed (a read-only cache
// directory degrades to cold runs, it does not fail the lint).
func (c *Cache) put(key string, summaries []*PackageSummary, findings []Diagnostic) {
	blob, err := json.Marshal(cacheEntry{
		Schema:    cacheSchema,
		Key:       key,
		Summaries: summaries,
		Findings:  findings,
	})
	if err != nil {
		return
	}
	_ = os.WriteFile(c.path(key), blob, 0o644)
}
