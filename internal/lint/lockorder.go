package lint

import (
	"sort"
	"strings"
)

// LockOrder enforces one global mutex-acquisition order across the
// tree. Every package's summary (summary.go) carries its observed
// lock-order edges — "class B was acquired (directly or through a
// call, local or cross-package) while class A was held" — where a
// class is a mutex field of a named type (vmp/internal/live.shard.mu)
// or a package-level mutex variable. The whole-program Finish hook
// assembles the edges into one directed graph; a cycle means two code
// paths acquire the same locks in opposite orders, which is a
// potential deadlock the race detector only catches when the schedules
// actually collide.
//
// The analyzer has no per-package Run: a single package cannot decide
// a global order. Consequently its findings are not //lint:ignore
// suppressible — there is no single offending line; break the cycle
// instead (or narrow a critical section so the nested acquire moves
// out from under the held lock).
//
// Edges observed in _test.go bodies are excluded: tests deliberately
// hold production locks to wedge a component (a consumer stalled on
// its shard mutex) and then drive the system single-schedule, which
// inverts the production order on purpose without ever racing it. The
// order contract this analyzer enforces is the production one.
var LockOrder = &Analyzer{
	Name:   "lockorder",
	Doc:    "forbid cycles in the whole-program mutex acquisition order",
	Finish: finishLockOrder,
}

func finishLockOrder(prog *Program) []Diagnostic {
	// One representative edge per ordered class pair, from the scoped
	// packages, first source position in canonical edge order wins.
	type pair struct{ held, acquired string }
	first := make(map[pair]LockEdge)
	var pairs []pair
	adj := make(map[string][]string)
	for _, sum := range prog.Summaries() {
		if !strings.HasPrefix(sum.Path, "vmp/internal/") && !strings.HasPrefix(sum.Path, "vmp/cmd/") {
			continue
		}
		for _, e := range sum.Edges {
			if strings.HasSuffix(e.File, "_test.go") {
				continue
			}
			k := pair{e.Held, e.Acquired}
			if _, seen := first[k]; !seen {
				first[k] = e
				pairs = append(pairs, k)
				adj[e.Held] = append(adj[e.Held], e.Acquired)
			}
		}
	}
	var diags []Diagnostic
	for _, k := range pairs {
		if !lockReaches(adj, k.acquired, k.held) {
			continue
		}
		e := first[k]
		diags = append(diags, Diagnostic{
			Analyzer: "lockorder",
			File:     e.File,
			Line:     e.Line,
			Col:      e.Col,
			Message: "lock-order cycle: " + e.Acquired + " is acquired while " + e.Held +
				" is held here, but another path acquires " + e.Held + " while holding " + e.Acquired +
				" (transitively); pick one global acquisition order or narrow a critical section — opposite orders deadlock when schedules collide",
		})
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Message < diags[j].Message })
	return diags
}

// lockReaches reports whether the acquisition graph has a path
// from -> to.
func lockReaches(adj map[string][]string, from, to string) bool {
	if from == to {
		return true
	}
	seen := map[string]bool{from: true}
	stack := []string{from}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, next := range adj[cur] {
			if next == to {
				return true
			}
			if !seen[next] {
				seen[next] = true
				stack = append(stack, next)
			}
		}
	}
	return false
}
