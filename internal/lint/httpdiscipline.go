package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HTTPDiscipline checks the response-ordering and resource contracts
// every handler in the serving plane must keep:
//
//  1. WriteHeader (or http.Error) runs at most once per path — the
//     second call is a no-op that logs "superfluous response.WriteHeader"
//     and, worse, hides which status the client actually saw.
//
//  2. Headers (Content-Type, Retry-After) are set, and the status
//     written, before the first body write. The first body write
//     flushes the headers; mutations after it silently do nothing.
//     The canonical bug is encode-then-error:
//
//     if err := json.NewEncoder(w).Encode(v); err != nil {
//     http.Error(w, "encode error", 500)   // body already sent
//     }
//
//     Marshal to memory first, then set headers and write.
//
//  3. Objects taken from a sync.Pool are returned on every path: each
//     return after pool.Get must be covered by a deferred Put or a
//     plain Put earlier on the path, so an error return cannot leak a
//     pooled decoder or gzip reader under sustained error load.
//
// Path analysis is deliberately sequential-per-branch: a branch's
// effects are explored (and reported) inside the branch but are not
// merged into the state after it, so early-return guards stay clean
// and every report corresponds to a real straight-line path.
var HTTPDiscipline = &Analyzer{
	Name: "httpdiscipline",
	Doc:  "enforce WriteHeader-once, headers-before-body, and pooled-object return on all handler paths",
	Run:  runHTTPDiscipline,
}

func runHTTPDiscipline(p *Pass) {
	if !strings.HasPrefix(p.Path, "vmp/internal/") && !strings.HasPrefix(p.Path, "vmp/cmd/") {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.FuncDecl:
				if v.Body == nil {
					return true
				}
				if w := p.responseWriterParam(v.Type); w != nil {
					p.checkHandler(v.Body, w)
				}
				p.checkPoolDiscipline(v.Body)
			case *ast.FuncLit:
				if w := p.responseWriterParam(v.Type); w != nil {
					p.checkHandler(v.Body, w)
				}
				p.checkPoolDiscipline(v.Body)
			}
			return true
		})
	}
}

// responseWriterParam returns the http.ResponseWriter parameter's
// object, or nil when the signature has none (or it is blank).
func (p *Pass) responseWriterParam(ft *ast.FuncType) types.Object {
	if ft.Params == nil {
		return nil
	}
	for _, f := range ft.Params.List {
		for _, name := range f.Names {
			if name.Name == "_" {
				continue
			}
			obj := p.Info.Defs[name]
			if obj == nil {
				continue
			}
			named, ok := obj.Type().(*types.Named)
			if !ok {
				continue
			}
			tn := named.Obj()
			if tn.Pkg() != nil && tn.Pkg().Path() == "net/http" && tn.Name() == "ResponseWriter" {
				return obj
			}
		}
	}
	return nil
}

// hstate is the per-path response state: the positions of the first
// status write and the first body write (NoPos = not yet).
type hstate struct {
	status token.Pos
	body   token.Pos
}

// handlerCheck walks one handler body.
type handlerCheck struct {
	p       *Pass
	writer  types.Object
	derived map[types.Object]bool // locals holding writer-derived values (json.NewEncoder(w))
}

func (p *Pass) checkHandler(body *ast.BlockStmt, writer types.Object) {
	h := &handlerCheck{p: p, writer: writer, derived: make(map[types.Object]bool)}
	// One-level derivation pass: a local defined from an expression
	// that mentions the writer (enc := json.NewEncoder(w)) writes the
	// body when used.
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			if h.mentionsWriter(as.Rhs[i]) {
				if obj := p.objectOf(id); obj != nil {
					h.derived[obj] = true
				}
			}
		}
		return true
	})
	h.walkStmts(body.List, hstate{})
}

// mentionsWriter reports whether the expression references the writer
// or a writer-derived local, ignoring nested function literals.
func (h *handlerCheck) mentionsWriter(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			obj := h.p.objectOf(id)
			if obj != nil && (obj == h.writer || h.derived[obj]) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// walkStmts threads state through a statement list; a return or branch
// statement terminates the path.
func (h *handlerCheck) walkStmts(list []ast.Stmt, st hstate) (hstate, bool) {
	for _, s := range list {
		var terminal bool
		st, terminal = h.walkStmt(s, st)
		if terminal {
			return st, true
		}
	}
	return st, false
}

// walkStmt applies one statement to the path state. Branch bodies are
// explored with a copy of the state — findings inside them are real —
// but their effects are not merged back: only straight-line effects
// (including if-statement inits and conditions) propagate, which keeps
// every report a true sequential ordering violation.
func (h *handlerCheck) walkStmt(s ast.Stmt, st hstate) (hstate, bool) {
	switch v := s.(type) {
	case *ast.ExprStmt:
		return h.apply(v.X, st), false
	case *ast.AssignStmt:
		for _, rhs := range v.Rhs {
			st = h.apply(rhs, st)
		}
		return st, false
	case *ast.DeclStmt:
		return h.apply(v, st), false
	case *ast.ReturnStmt:
		for _, res := range v.Results {
			st = h.apply(res, st)
		}
		return st, true
	case *ast.BranchStmt:
		return st, true
	case *ast.IfStmt:
		if v.Init != nil {
			st, _ = h.walkStmt(v.Init, st)
		}
		st = h.apply(v.Cond, st)
		h.walkStmts(v.Body.List, st)
		if v.Else != nil {
			h.walkStmt(v.Else, st)
		}
		return st, false
	case *ast.BlockStmt:
		return h.walkStmts(v.List, st)
	case *ast.SwitchStmt:
		if v.Init != nil {
			st, _ = h.walkStmt(v.Init, st)
		}
		if v.Tag != nil {
			st = h.apply(v.Tag, st)
		}
		for _, c := range v.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				h.walkStmts(cc.Body, st)
			}
		}
		return st, false
	case *ast.TypeSwitchStmt:
		if v.Init != nil {
			st, _ = h.walkStmt(v.Init, st)
		}
		for _, c := range v.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				h.walkStmts(cc.Body, st)
			}
		}
		return st, false
	case *ast.SelectStmt:
		for _, c := range v.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				h.walkStmts(cc.Body, st)
			}
		}
		return st, false
	case *ast.ForStmt:
		h.walkStmts(v.Body.List, st)
		return st, false
	case *ast.RangeStmt:
		st = h.apply(v.X, st)
		h.walkStmts(v.Body.List, st)
		return st, false
	case *ast.LabeledStmt:
		return h.walkStmt(v.Stmt, st)
	case *ast.DeferStmt, *ast.GoStmt:
		return st, false
	}
	return st, false
}

// writerOpKind classifies one writer-touching call.
type writerOpKind int

const (
	opNone   writerOpKind = iota
	opHeader              // w.Header().Set/Add/Del
	opStatus              // w.WriteHeader
	opError               // http.Error / NotFound / Redirect / ServeFile / ServeContent: status + body
	opBody                // anything else the writer flows into
)

type writerOp struct {
	pos  token.Pos
	kind writerOpKind
	name string
}

// apply collects the writer operations under node in source order and
// threads them through the path state, reporting violations.
func (h *handlerCheck) apply(node ast.Node, st hstate) hstate {
	var ops []writerOp
	ast.Inspect(node, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // a literal's body is its own handler path
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if kind, name := h.classify(call); kind != opNone {
			ops = append(ops, writerOp{pos: call.Pos(), kind: kind, name: name})
		}
		return true
	})
	// ast.Inspect is already in source order; positions only tie-break
	// nested calls, which classify independently.
	for _, op := range ops {
		switch op.kind {
		case opHeader:
			if st.body.IsValid() {
				h.p.Reportf(op.pos, "%s after the first body write has no effect; set headers before writing the body", op.name)
			} else if st.status.IsValid() {
				h.p.Reportf(op.pos, "%s after WriteHeader has no effect; set headers before writing the status", op.name)
			}
		case opStatus:
			if st.status.IsValid() {
				h.p.Reportf(op.pos, "WriteHeader called more than once on this path (status already written at line %d)", h.line(st.status))
			} else if st.body.IsValid() {
				h.p.Reportf(op.pos, "WriteHeader after the first body write; the status was already sent implicitly at line %d", h.line(st.body))
			}
			if !st.status.IsValid() {
				st.status = op.pos
			}
		case opError:
			if st.body.IsValid() {
				h.p.Reportf(op.pos, "%s after the response body was already written at line %d; marshal to memory first, then set headers and write once", op.name, h.line(st.body))
			} else if st.status.IsValid() {
				h.p.Reportf(op.pos, "%s after the status was already written at line %d on this path", op.name, h.line(st.status))
			}
			if !st.status.IsValid() {
				st.status = op.pos
			}
			if !st.body.IsValid() {
				st.body = op.pos
			}
		case opBody:
			if !st.body.IsValid() {
				st.body = op.pos
			}
		}
	}
	return st
}

func (h *handlerCheck) line(pos token.Pos) int {
	return h.p.Fset.Position(pos).Line
}

// classify decides what one call does to the response.
func (h *handlerCheck) classify(call *ast.CallExpr) (writerOpKind, string) {
	if name, ok := h.p.pkgFunc(call, "net/http"); ok {
		switch name {
		case "Error", "NotFound", "Redirect", "ServeFile", "ServeContent":
			if len(call.Args) > 0 && h.mentionsWriter(call.Args[0]) {
				return opError, "http." + name
			}
		}
		return opNone, ""
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		switch sel.Sel.Name {
		case "Set", "Add", "Del":
			if h.isHTTPHeader(sel.X) && h.mentionsWriter(sel.X) {
				return opHeader, "header " + sel.Sel.Name
			}
		case "WriteHeader":
			if h.mentionsWriter(sel.X) {
				return opStatus, "WriteHeader"
			}
		case "Header":
			if len(call.Args) == 0 && h.mentionsWriter(sel.X) {
				return opNone, "" // reading the header map writes nothing
			}
		}
	}
	if h.mentionsWriter(call) {
		return opBody, "body write"
	}
	return opNone, ""
}

// isHTTPHeader reports whether the expression has type net/http.Header.
func (h *handlerCheck) isHTTPHeader(e ast.Expr) bool {
	tv, ok := h.p.Info.Types[e]
	if !ok {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	tn := named.Obj()
	return tn.Pkg() != nil && tn.Pkg().Path() == "net/http" && tn.Name() == "Header"
}

// --- sync.Pool discipline ---

// poolGet is one pool.Get whose result must come back.
type poolGet struct {
	pos  token.Pos
	line int
	pool string // textual path of the pool expression, e.g. "gzPool", "s.decoders"
}

type poolPut struct {
	pos     token.Pos
	pool    string
	inDefer bool
}

// checkPoolDiscipline verifies rule 3 for one function body: every
// return after a sync.Pool Get is preceded by a deferred Put (which
// covers every later return) or a plain Put earlier on the path.
// Nested function literals are separate functions and are skipped,
// except literals invoked directly by a defer, whose Puts count as
// deferred.
func (p *Pass) checkPoolDiscipline(body *ast.BlockStmt) {
	var (
		gets    []poolGet
		puts    []poolPut
		returns []token.Pos
	)
	var deferRanges [][2]token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			deferRanges = append(deferRanges, [2]token.Pos{d.Pos(), d.End()})
		}
		return true
	})
	inDefer := func(pos token.Pos) bool {
		for _, r := range deferRanges {
			if pos >= r[0] && pos <= r[1] {
				return true
			}
		}
		return false
	}
	var walk func(blk *ast.BlockStmt, inLit bool)
	walk = func(blk *ast.BlockStmt, inLit bool) {
		ast.Inspect(blk, func(node ast.Node) bool {
			switch v := node.(type) {
			case *ast.FuncLit:
				// Only descend into literals that defer invokes
				// directly; everything else is its own function.
				if inDefer(v.Pos()) {
					walk(v.Body, true)
				}
				return false
			case *ast.ReturnStmt:
				if !inLit {
					returns = append(returns, v.Pos())
				}
			case *ast.CallExpr:
				sel, ok := v.Fun.(*ast.SelectorExpr)
				if !ok || !p.isSyncPool(sel.X) {
					return true
				}
				switch sel.Sel.Name {
				case "Get":
					if len(v.Args) == 0 && !inLit {
						gets = append(gets, poolGet{
							pos:  v.Pos(),
							line: p.Fset.Position(v.Pos()).Line,
							pool: exprPath(sel.X),
						})
					}
				case "Put":
					if len(v.Args) == 1 {
						puts = append(puts, poolPut{pos: v.Pos(), pool: exprPath(sel.X), inDefer: inDefer(v.Pos())})
					}
				}
			}
			return true
		})
	}
	walk(body, false)
	for _, get := range gets {
		if get.pool == "" {
			continue
		}
		covered := false
		for _, put := range puts {
			if put.pool == get.pool {
				covered = true
				break
			}
		}
		if !covered {
			p.Reportf(get.pos,
				"pooled object from %s.Get is never returned to the pool in this function; defer %s.Put right after Get", get.pool, get.pool)
			continue
		}
		for _, ret := range returns {
			if ret <= get.pos {
				continue
			}
			ok := false
			for _, put := range puts {
				// A deferred Put registered before the return covers
				// it; a plain Put must sit between Get and return.
				if put.pool == get.pool && put.pos < ret && (put.inDefer || put.pos > get.pos) {
					ok = true
					break
				}
			}
			if !ok {
				p.Reportf(ret,
					"return leaks the pooled object obtained from %s.Get at line %d; defer %s.Put right after Get so every path returns it", get.pool, get.line, get.pool)
			}
		}
	}
}

// isSyncPool reports whether e has type sync.Pool or *sync.Pool.
func (p *Pass) isSyncPool(e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok {
		return false
	}
	t := tv.Type
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	tn := named.Obj()
	return tn.Pkg() != nil && tn.Pkg().Path() == "sync" && tn.Name() == "Pool"
}

// exprPath renders a pool expression as a stable textual path for
// matching Gets to Puts; unrenderable shapes return "".
func exprPath(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		if base := exprPath(v.X); base != "" {
			return base + "." + v.Sel.Name
		}
	case *ast.ParenExpr:
		return exprPath(v.X)
	case *ast.UnaryExpr:
		if v.Op == token.AND {
			return exprPath(v.X)
		}
	}
	return ""
}
