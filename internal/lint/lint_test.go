package lint

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// Fixture packages under testdata/ carry their expected findings as
// golden comments in the analysis/go style:
//
//	code() // want <analyzer> "<message regexp>"
//
// checkFixture runs the full suite over a fixture and requires an
// exact match: every diagnostic must be claimed by a want on its line,
// and every want must be claimed by a diagnostic.
var wantRe = regexp.MustCompile(`// want ([a-z]+) "([^"]+)"`)

type expectation struct {
	file     string // base name of the fixture file
	line     int
	analyzer string
	re       *regexp.Regexp
	matched  bool
}

func loadFixture(t *testing.T, dir, path string) *Package {
	t.Helper()
	loader, err := NewLoader("../..")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDirWithPath(filepath.Join("testdata", dir), path)
	if err != nil {
		t.Fatal(err)
	}
	if pkg == nil {
		t.Fatalf("no buildable fixture package in testdata/%s", dir)
	}
	return pkg
}

func collectWants(t *testing.T, dir string) []*expectation {
	t.Helper()
	entries, err := os.ReadDir(filepath.Join("testdata", dir))
	if err != nil {
		t.Fatal(err)
	}
	var wants []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := os.Open(filepath.Join("testdata", dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			for _, m := range wantRe.FindAllStringSubmatch(sc.Text(), -1) {
				re, err := regexp.Compile(m[2])
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", e.Name(), line, m[2], err)
				}
				wants = append(wants, &expectation{
					file: e.Name(), line: line, analyzer: m[1], re: re,
				})
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		_ = f.Close()
	}
	return wants
}

func claim(wants []*expectation, d Diagnostic) bool {
	base := filepath.Base(d.File)
	for _, w := range wants {
		if w.matched || w.file != base || w.line != d.Line || w.analyzer != d.Analyzer {
			continue
		}
		if w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

func checkFixture(t *testing.T, dir, path string) {
	t.Helper()
	diags := RunPackage(loadFixture(t, dir, path), Analyzers())
	wants := collectWants(t, dir)
	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no %s finding matching %q", w.file, w.line, w.analyzer, w.re)
		}
	}
}

func TestNondeterminismFixture(t *testing.T) { checkFixture(t, "nondet", "vmp/internal/nondetfix") }

func TestMapOrderFixture(t *testing.T) { checkFixture(t, "maporder", "vmp/internal/maporderfix") }

func TestFrozenWriteFixture(t *testing.T) {
	checkFixture(t, "frozenwrite", "vmp/internal/frozenfix")
}

func TestLockDisciplineFixture(t *testing.T) {
	checkFixture(t, "lockdiscipline", "vmp/internal/lockfix")
}

func TestErrCheckFixture(t *testing.T) { checkFixture(t, "errcheck", "vmp/internal/errfix") }

func TestAtomicDisciplineFixture(t *testing.T) {
	checkFixture(t, "atomicdiscipline", "vmp/internal/atomicfix")
}

func TestGoroutineLifecycleFixture(t *testing.T) {
	checkFixture(t, "goroutinelifecycle", "vmp/internal/gofix")
}

func TestChanDisciplineFixture(t *testing.T) {
	checkFixture(t, "chandiscipline", "vmp/internal/chanfix")
}

func TestCtxFlowFixture(t *testing.T) { checkFixture(t, "ctxflow", "vmp/internal/ctxfix") }

func TestIgnoreDirectives(t *testing.T) { checkFixture(t, "ignore", "vmp/internal/ignorefix") }

func TestBufAliasFixture(t *testing.T) { checkFixture(t, "bufalias", "vmp/internal/bufaliasfix") }

func TestHotAllocFixture(t *testing.T) { checkFixture(t, "hotalloc", "vmp/internal/hotallocfix") }

func TestHTTPDisciplineFixture(t *testing.T) {
	checkFixture(t, "httpdiscipline", "vmp/internal/httpfix")
}

// TestV3AnalyzersScopedToModule reloads each v3 fixture under an
// external import path; like the rest of the suite, the dataflow
// analyzers police only vmp/internal and vmp/cmd.
func TestV3AnalyzersScopedToModule(t *testing.T) {
	for _, dir := range []string{"bufalias", "hotalloc", "httpdiscipline"} {
		diags := RunPackage(loadFixture(t, dir, "example.com/outside"), Analyzers())
		for _, d := range diags {
			t.Errorf("%s: unexpected finding outside vmp/internal and vmp/cmd: %s", dir, d)
		}
	}
}

// TestSimclockExemption proves wall-clock reads are legal in the one
// package that owns the clock.
func TestSimclockExemption(t *testing.T) {
	diags := RunPackage(loadFixture(t, "simclockpose", "vmp/internal/simclock"), Analyzers())
	for _, d := range diags {
		t.Errorf("unexpected finding inside simclock: %s", d)
	}
}

// TestFrozenWriteExemptInsideTelemetry reloads the frozenwrite fixture
// under a pose path inside internal/telemetry, where the writes are
// the owning package's business.
func TestFrozenWriteExemptInsideTelemetry(t *testing.T) {
	diags := RunPackage(loadFixture(t, "frozenwrite", "vmp/internal/telemetry/pose"), Analyzers())
	for _, d := range diags {
		t.Errorf("unexpected finding inside telemetry: %s", d)
	}
}

// TestErrCheckScopedToModule reloads the errcheck fixture under an
// external import path, which the analyzer does not police.
func TestErrCheckScopedToModule(t *testing.T) {
	diags := RunPackage(loadFixture(t, "errcheck", "example.com/outside"), Analyzers())
	for _, d := range diags {
		t.Errorf("unexpected finding outside vmp/internal and vmp/cmd: %s", d)
	}
}

// TestConcurrencyAnalyzersScopedToModule reloads each concurrency
// fixture under an external import path; the whole v2 suite is scoped
// to vmp/internal and vmp/cmd.
func TestConcurrencyAnalyzersScopedToModule(t *testing.T) {
	for _, dir := range []string{"atomicdiscipline", "goroutinelifecycle", "chandiscipline", "ctxflow"} {
		diags := RunPackage(loadFixture(t, dir, "example.com/outside"), Analyzers())
		for _, d := range diags {
			t.Errorf("%s: unexpected finding outside vmp/internal and vmp/cmd: %s", dir, d)
		}
	}
}

// TestSelfLint runs the full suite over the lint package and its
// command: the analyzers hold their own code to the same contracts
// they enforce on the rest of the tree.
func TestSelfLint(t *testing.T) {
	loader, err := NewLoader("../..")
	if err != nil {
		t.Fatal(err)
	}
	for _, dir := range []string{".", filepath.Join("..", "..", "cmd", "vmplint")} {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		if pkg == nil {
			t.Fatalf("no package in %s", dir)
		}
		for _, d := range RunPackage(pkg, Analyzers()) {
			t.Errorf("self-lint finding: %s", d)
		}
	}
}

// TestLoadDirTests pins the -tests loading shape: in-package test
// files merge into the package, and an external _test package loads
// under its own path so the suite can police test code too.
func TestLoadDirTests(t *testing.T) {
	loader, err := NewLoader("../..")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadDirTests(filepath.Join("..", "manifest"))
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("LoadDirTests(internal/manifest) = %d packages, want 2 (merged + external test)", len(pkgs))
	}
	if pkgs[0].Path != "vmp/internal/manifest" || pkgs[1].Path != "vmp/internal/manifest_test" {
		t.Fatalf("paths = %q, %q", pkgs[0].Path, pkgs[1].Path)
	}
	hasTestFile := false
	for _, f := range pkgs[0].Files {
		if strings.HasSuffix(pkgs[0].Fset.Position(f.Pos()).Filename, "_test.go") {
			hasTestFile = true
		}
	}
	if !hasTestFile {
		t.Error("merged package contains no in-package _test.go files")
	}
	if len(pkgs[1].Files) == 0 {
		t.Error("external test package loaded no files")
	}
}

// TestAnalyzerSubset checks that disabling an analyzer removes its
// findings — the mechanism behind vmplint's per-analyzer flags.
func TestAnalyzerSubset(t *testing.T) {
	pkg := loadFixture(t, "nondet", "vmp/internal/nondetfix")
	if diags := RunPackage(pkg, []*Analyzer{MapOrder}); len(diags) != 0 {
		t.Errorf("maporder alone reported %d findings on the nondet fixture, want 0", len(diags))
	}
	if diags := RunPackage(pkg, Analyzers()); len(diags) == 0 {
		t.Error("full suite reported no findings on the nondet fixture")
	}
}

// TestJSONShape pins the -json document: a count plus a findings array
// whose entries expose analyzer/file/line/col/message.
func TestJSONShape(t *testing.T) {
	diags := RunPackage(loadFixture(t, "nondet", "vmp/internal/nondetfix"), Analyzers())
	if len(diags) == 0 {
		t.Fatal("nondet fixture produced no findings")
	}
	out, err := JSON(diags)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Count    int `json:"count"`
		Findings []struct {
			Analyzer string `json:"analyzer"`
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Message  string `json:"message"`
		} `json:"findings"`
	}
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatalf("unmarshaling JSON report: %v", err)
	}
	if doc.Count != len(diags) || len(doc.Findings) != len(diags) {
		t.Fatalf("count = %d, findings = %d, want both %d", doc.Count, len(doc.Findings), len(diags))
	}
	for i, f := range doc.Findings {
		if f.Analyzer == "" || f.File == "" || f.Line <= 0 || f.Col <= 0 || f.Message == "" {
			t.Errorf("finding %d is missing fields: %+v", i, f)
		}
	}
}

// TestRunPackagesMatchesSerial pins the parallel runner's contract:
// fanning packages out across workers yields exactly the findings the
// serial path yields, in the same path-sorted order, every time.
func TestRunPackagesMatchesSerial(t *testing.T) {
	dirs := []struct{ dir, path string }{
		{"nondet", "vmp/internal/nondetfix"},
		{"bufalias", "vmp/internal/bufaliasfix"},
		{"hotalloc", "vmp/internal/hotallocfix"},
		{"httpdiscipline", "vmp/internal/httpfix"},
	}
	var pkgs []*Package
	var serial []Diagnostic
	for _, d := range dirs {
		pkg := loadFixture(t, d.dir, d.path)
		pkgs = append(pkgs, pkg)
		serial = append(serial, RunPackage(pkg, Analyzers())...)
	}
	serial = sortDedup(serial)
	if len(serial) == 0 {
		t.Fatal("fixture packages produced no findings")
	}
	first := RunPackages(pkgs, Analyzers())
	if len(first) != len(serial) {
		t.Fatalf("RunPackages reported %d findings, serial %d", len(first), len(serial))
	}
	for i := range first {
		if first[i] != serial[i] {
			t.Errorf("finding %d differs: parallel %s, serial %s", i, first[i], serial[i])
		}
	}
	for round := 0; round < 3; round++ {
		again := RunPackages(pkgs, Analyzers())
		if len(again) != len(first) {
			t.Fatalf("round %d: %d findings, want %d", round, len(again), len(first))
		}
		for i := range again {
			if again[i] != first[i] {
				t.Errorf("round %d: finding %d reordered: %s vs %s", round, i, again[i], first[i])
			}
		}
	}
}

// TestSARIFShape pins the -sarif document: a 2.1.0 log with one run,
// the vmplint driver, one rule per analyzer (plus the synthetic
// "ignore" rule), and one error-level result per finding with a
// physical location.
func TestSARIFShape(t *testing.T) {
	diags := RunPackage(loadFixture(t, "nondet", "vmp/internal/nondetfix"), Analyzers())
	if len(diags) == 0 {
		t.Fatal("nondet fixture produced no findings")
	}
	out, err := SARIF(diags, Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID               string `json:"id"`
						ShortDescription struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID  string `json:"ruleId"`
				Level   string `json:"level"`
				Message struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatalf("unmarshaling SARIF report: %v", err)
	}
	if doc.Version != "2.1.0" || doc.Schema == "" || len(doc.Runs) != 1 {
		t.Fatalf("log envelope = version %q, schema %q, %d runs", doc.Version, doc.Schema, len(doc.Runs))
	}
	run := doc.Runs[0]
	if run.Tool.Driver.Name != "vmplint" {
		t.Errorf("driver name = %q, want vmplint", run.Tool.Driver.Name)
	}
	if len(run.Tool.Driver.Rules) != len(Analyzers())+1 {
		t.Errorf("%d rules, want %d analyzers + the ignore rule", len(run.Tool.Driver.Rules), len(Analyzers()))
	}
	ruleIDs := make(map[string]bool)
	for _, r := range run.Tool.Driver.Rules {
		if r.ID == "" || r.ShortDescription.Text == "" {
			t.Errorf("rule %+v is missing fields", r)
		}
		ruleIDs[r.ID] = true
	}
	if len(run.Results) != len(diags) {
		t.Fatalf("%d results, want %d", len(run.Results), len(diags))
	}
	for i, r := range run.Results {
		if !ruleIDs[r.RuleID] {
			t.Errorf("result %d names unknown rule %q", i, r.RuleID)
		}
		if r.Level != "error" || r.Message.Text == "" || len(r.Locations) != 1 {
			t.Errorf("result %d is malformed: %+v", i, r)
		}
		loc := r.Locations[0].PhysicalLocation
		if loc.ArtifactLocation.URI == "" || loc.Region.StartLine <= 0 || loc.Region.StartColumn <= 0 {
			t.Errorf("result %d location is malformed: %+v", i, loc)
		}
	}
}

// TestSARIFEmpty pins the clean-run SARIF document: still a valid log
// with the full rule table and an empty (non-null) results array.
func TestSARIFEmpty(t *testing.T) {
	out, err := SARIF(nil, Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Runs []struct {
			Results []json.RawMessage `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Runs) != 1 || doc.Runs[0].Results == nil || len(doc.Runs[0].Results) != 0 {
		t.Fatalf("empty report rendered as %s", out)
	}
}

func TestFsyncDisciplineFixture(t *testing.T) {
	checkFixture(t, "fsyncdiscipline", "vmp/internal/fsyncfix")
}

func TestLockOrderFixture(t *testing.T) {
	checkFixture(t, "lockorder", "vmp/internal/lockorderfix")
}

// TestV4AnalyzersScopedToModule reloads the v4 fixtures under an
// external import path; fsyncdiscipline and lockorder police only
// vmp/internal and vmp/cmd.
func TestV4AnalyzersScopedToModule(t *testing.T) {
	for _, dir := range []string{"fsyncdiscipline", "lockorder"} {
		diags := RunPackage(loadFixture(t, dir, "example.com/outside"), Analyzers())
		for _, d := range diags {
			t.Errorf("%s: unexpected finding outside vmp/internal and vmp/cmd: %s", dir, d)
		}
	}
}

// crosspkgAlias and crosspkgUse are the real module paths of the
// cross-package laundering fixture: use imports alias by this path, so
// the pair loads exactly as tree packages do.
const (
	crosspkgAlias = "vmp/internal/lint/testdata/crosspkg/alias"
	crosspkgUse   = "vmp/internal/lint/testdata/crosspkg/use"
)

func loadCrossPackagePair(t *testing.T) (*Package, *Package) {
	t.Helper()
	loader, err := NewLoader("../..")
	if err != nil {
		t.Fatal(err)
	}
	aliasPkg, err := loader.LoadDirWithPath(filepath.Join("testdata", "crosspkg", "alias"), crosspkgAlias)
	if err != nil {
		t.Fatal(err)
	}
	usePkg, err := loader.LoadDirWithPath(filepath.Join("testdata", "crosspkg", "use"), crosspkgUse)
	if err != nil {
		t.Fatal(err)
	}
	if aliasPkg == nil || usePkg == nil {
		t.Fatal("cross-package fixture did not load")
	}
	return aliasPkg, usePkg
}

// TestCrossPackageLaundering is the tentpole pin: a telemetry accessor
// and an atomic.Pointer load wrapped by exported helpers in another
// package no longer launder their taint. Analyzed together along the
// import DAG, the mutations in use/ are findings; analyzed alone
// (the pre-summary behavior, and the fallback when dependencies are
// not in scope), use/ is clean.
func TestCrossPackageLaundering(t *testing.T) {
	aliasPkg, usePkg := loadCrossPackagePair(t)
	diags := RunPackages([]*Package{aliasPkg, usePkg}, Analyzers())
	wants := collectWants(t, filepath.Join("crosspkg", "use"))
	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no %s finding matching %q", w.file, w.line, w.analyzer, w.re)
		}
	}
	if alone := RunPackage(usePkg, Analyzers()); len(alone) != 0 {
		for _, d := range alone {
			t.Errorf("use/ analyzed without its dependency's summary should be clean, got: %s", d)
		}
	}
}

// TestPackageSummaryFacts pins the exported-fact surface the tentpole
// rests on: summaries key functions by their fully qualified name and
// carry the taint facts dependents consume.
func TestPackageSummaryFacts(t *testing.T) {
	aliasPkg, _ := loadCrossPackagePair(t)
	_, sum := runOnePackage(aliasPkg, NewProgram(), Analyzers())
	if sum.Path != crosspkgAlias || sum.Hash == "" {
		t.Fatalf("summary path %q, hash %q", sum.Path, sum.Hash)
	}
	records := sum.Funcs[crosspkgAlias+".Records"]
	if !records.TaintFrozen {
		t.Errorf("Records facts = %+v, want TaintFrozen", records)
	}
	current := sum.Funcs["(*"+crosspkgAlias+".Box).Current"]
	if !current.TaintAtomic {
		t.Errorf("Current facts = %+v, want TaintAtomic", current)
	}
	if _, ok := sum.Funcs[crosspkgAlias+".rows"]; ok {
		t.Error("unexported rows should not be published in the summary")
	}
}

// TestJSONEmpty pins the clean-run document so CI consumers can rely
// on findings always being an array.
func TestJSONEmpty(t *testing.T) {
	out, err := JSON(nil)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Count    int               `json:"count"`
		Findings []json.RawMessage `json:"findings"`
	}
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Count != 0 || doc.Findings == nil || len(doc.Findings) != 0 {
		t.Fatalf("empty report rendered as %s", out)
	}
}
