package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Nondeterminism enforces the reproduction's time-and-randomness
// contract: every figure renders byte-identically from a seed, so
// library code must take time from simclock (or an injected clock)
// and randomness from explicitly seeded generators. Wall-clock reads
// and the process-seeded global math/rand source are forbidden
// everywhere except package simclock itself (test files are never
// linted).
var Nondeterminism = &Analyzer{
	Name: "nondeterminism",
	Doc:  "forbid wall-clock reads and global math/rand outside simclock",
	Run:  runNondeterminism,
}

// wallClockFuncs are the time package entry points that observe the
// wall clock (directly or by ticking on it).
var wallClockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
	"Tick":  true,
}

// seededRandCtors are the math/rand (and v2) names that construct
// explicitly seeded generators; everything else on the package drives
// the shared process-seeded source.
var seededRandCtors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

func runNondeterminism(p *Pass) {
	if strings.HasSuffix(p.Path, "internal/simclock") {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn := p.pkgNameOf(id)
			if pn == nil {
				return true
			}
			// References to types (time.Time, rand.Rand) are fine;
			// only functions and variables carry nondeterminism.
			if _, isType := p.objectOf(sel.Sel).(*types.TypeName); isType {
				return true
			}
			switch pn.Imported().Path() {
			case "time":
				if wallClockFuncs[sel.Sel.Name] {
					p.Reportf(sel.Pos(),
						"time.%s reads the wall clock; take time from simclock or an injected clock so runs stay reproducible",
						sel.Sel.Name)
				}
			case "math/rand", "math/rand/v2":
				if !seededRandCtors[sel.Sel.Name] {
					p.Reportf(sel.Pos(),
						"rand.%s draws from the process-seeded global source; use an explicitly seeded generator (e.g. dist.NewSource) so runs stay reproducible",
						sel.Sel.Name)
				}
			}
			return true
		})
	}
}
