package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ChanDiscipline enforces the channel ownership and backpressure
// contracts of the serving plane in internal/ and cmd/ code:
//
//   - a send inside a long-lived loop (`for {}` / `for cond {}` /
//     range over a channel) must sit in a select with a cancellation
//     branch — a context Done() or signal-channel receive — or the
//     sending goroutine wedges forever the moment its receiver stops
//     draining;
//   - only the owning package closes a channel: closing a channel that
//     arrived as a function parameter, or one reached through another
//     package's type, races the true owner's sends;
//   - a channel stored into a struct field whose element type carries
//     data must be bounded: `make(chan T)` in a queue position has no
//     admission control, so producers block instead of shedding load —
//     the explicit-backpressure contract requires a capacity. Signal
//     channels (struct{} elements) and channel-of-channel plumbing
//     (flush-ack protocols) are exempt.
var ChanDiscipline = &Analyzer{
	Name: "chandiscipline",
	Doc:  "enforce cancellable sends, owner-only close, and bounded queue channels",
	Run:  runChanDiscipline,
}

func runChanDiscipline(p *Pass) {
	if !strings.HasPrefix(p.Path, "vmp/internal/") && !strings.HasPrefix(p.Path, "vmp/cmd/") {
		return
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			p.checkSendsInLoops(fd.Body)
			p.checkCloseOwnership(fd)
		}
		p.checkUnboundedQueues(f)
	}
}

// checkSendsInLoops flags sends in long-lived loops that are not
// select cases guarded by a cancellation branch.
func (p *Pass) checkSendsInLoops(body *ast.BlockStmt) {
	// Collect the send statements that are properly guarded: a case of
	// a select that also has a cancellation-receive case.
	guarded := make(map[*ast.SendStmt]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasCancel := false
		var sends []*ast.SendStmt
		for _, c := range sel.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			switch comm := cc.Comm.(type) {
			case *ast.SendStmt:
				sends = append(sends, comm)
			case *ast.ExprStmt:
				if un, ok := comm.X.(*ast.UnaryExpr); ok && p.isCancellationChan(un.X) {
					hasCancel = true
				}
			case *ast.AssignStmt:
				for _, rhs := range comm.Rhs {
					if un, ok := rhs.(*ast.UnaryExpr); ok && p.isCancellationChan(un.X) {
						hasCancel = true
					}
				}
			}
		}
		if hasCancel {
			for _, s := range sends {
				guarded[s] = true
			}
		}
		return true
	})

	var walk func(n ast.Node, inLongLoop bool)
	walk = func(n ast.Node, inLongLoop bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch v := m.(type) {
			case *ast.FuncLit:
				if m == n {
					return true
				}
				walk(v.Body, false)
				return false
			case *ast.ForStmt:
				if m == n {
					return true
				}
				// Init/Post clauses mean a counted loop; a bare or
				// condition-only for is the daemon-loop shape.
				walk(v.Body, inLongLoop || (v.Init == nil && v.Post == nil))
				return false
			case *ast.RangeStmt:
				if m == n {
					return true
				}
				long := inLongLoop
				if t := p.Info.TypeOf(v.X); t != nil {
					if _, ok := t.Underlying().(*types.Chan); ok {
						long = true // receive loop runs until close
					}
				}
				walk(v.Body, long)
				return false
			case *ast.SendStmt:
				if inLongLoop && !guarded[v] {
					p.Reportf(v.Pos(),
						"send inside a long-lived loop without a cancellation branch; a stopped receiver wedges this goroutine — select on the send with a context/quit receive")
				}
			}
			return true
		})
	}
	walk(body, false)
}

// checkCloseOwnership flags close calls on channels the function does
// not own: parameters (the sender that handed them in owns them) and
// channels reached through another package's type.
func (p *Pass) checkCloseOwnership(fd *ast.FuncDecl) {
	params := make(map[types.Object]bool)
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if obj := p.Info.Defs[name]; obj != nil {
				params[obj] = true
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || fn.Name != "close" {
			return true
		}
		if b, ok := p.objectOf(fn).(*types.Builtin); !ok || b.Name() != "close" {
			return true
		}
		switch arg := call.Args[0].(type) {
		case *ast.Ident:
			if obj := p.objectOf(arg); obj != nil && params[obj] {
				p.Reportf(call.Pos(),
					"close of channel parameter %s; the sender that created the channel owns closing it — return instead, or document transfer of ownership in the owning package",
					arg.Name)
			}
		case *ast.SelectorExpr:
			if base := p.Info.TypeOf(arg.X); base != nil && p.foreignNamed(base) {
				p.Reportf(call.Pos(),
					"close of a channel owned by another package's type; only the owning package may close — add a Close/Stop method there")
			}
		}
		return true
	})
}

// foreignNamed reports whether t (through one pointer) is a named type
// defined outside the package under analysis.
func (p *Pass) foreignNamed(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg() != p.Pkg
}

// checkUnboundedQueues flags unbuffered make(chan T) stored into
// struct fields when T carries data.
func (p *Pass) checkUnboundedQueues(f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.KeyValueExpr:
			call, ok := v.Value.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := v.Key.(*ast.Ident); ok {
				if fv, ok := p.objectOf(id).(*types.Var); ok && fv.IsField() {
					p.checkQueueMake(call)
				}
			}
		case *ast.AssignStmt:
			if len(v.Lhs) != len(v.Rhs) {
				return true
			}
			for i, lhs := range v.Lhs {
				if _, ok := lhs.(*ast.SelectorExpr); !ok {
					continue
				}
				if call, ok := v.Rhs[i].(*ast.CallExpr); ok {
					p.checkQueueMake(call)
				}
			}
		}
		return true
	})
}

// checkQueueMake reports call if it is an unbuffered make of a
// data-carrying channel.
func (p *Pass) checkQueueMake(call *ast.CallExpr) {
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "make" || len(call.Args) != 1 {
		return // buffered (capacity argument present) or not a make
	}
	if b, ok := p.objectOf(fn).(*types.Builtin); !ok || b.Name() != "make" {
		return
	}
	t := p.Info.TypeOf(call)
	if t == nil {
		return
	}
	ch, ok := t.Underlying().(*types.Chan)
	if !ok {
		return
	}
	elem := ch.Elem().Underlying()
	if st, ok := elem.(*types.Struct); ok && st.NumFields() == 0 {
		return // signal channel
	}
	if _, ok := elem.(*types.Chan); ok {
		return // ack/handshake plumbing
	}
	p.Reportf(call.Pos(),
		"unbuffered channel in a queue position; unbounded blocking replaces the explicit-backpressure contract — give make a capacity and reject when full")
}
