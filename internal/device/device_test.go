package device

import (
	"strings"
	"testing"
	"time"

	"vmp/internal/manifest"
	"vmp/internal/simclock"
)

func TestPlatformStrings(t *testing.T) {
	want := map[Platform]string{
		Browser: "Browser", Mobile: "Mobile", SetTop: "SetTop",
		SmartTV: "SmartTV", Console: "Console",
	}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(p), p.String(), s)
		}
	}
	if Platform(99).String() != "Platform(99)" {
		t.Error("unknown platform should format numerically")
	}
}

func TestFivePlatforms(t *testing.T) {
	if len(Platforms) != 5 {
		t.Fatalf("paper defines 5 platform categories, registry has %d", len(Platforms))
	}
	if Browser.AppBased() {
		t.Error("browser is not app-based")
	}
	for _, p := range Platforms[1:] {
		if !p.AppBased() {
			t.Errorf("%v should be app-based", p)
		}
	}
}

func TestRegistryCoversAllPlatforms(t *testing.T) {
	for _, p := range Platforms {
		if len(OfPlatform(p)) == 0 {
			t.Errorf("no models registered for platform %v", p)
		}
	}
	// The devices named in the paper must exist.
	for _, name := range []string{"Roku", "AppleTV", "FireTV", "iPhone", "iPad",
		"SamsungTV", "Xbox", "HTML5", "Flash", "Silverlight", "Chromecast"} {
		if _, ok := ByName(name); !ok {
			t.Errorf("device %q missing from registry", name)
		}
	}
	if _, ok := ByName("Betamax"); ok {
		t.Error("ByName should miss unknown devices")
	}
}

func TestRegistryNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, m := range Registry {
		if seen[m.Name] {
			t.Errorf("duplicate model name %q", m.Name)
		}
		seen[m.Name] = true
	}
}

func TestAppleDevicesRequireHLS(t *testing.T) {
	// §2: "Apple's devices only support HLS".
	for _, name := range []string{"iPhone", "iPad", "AppleTV"} {
		m, _ := ByName(name)
		if !m.Supports(manifest.HLS) {
			t.Errorf("%s must support HLS", name)
		}
		for _, p := range []manifest.Protocol{manifest.DASH, manifest.Smooth, manifest.HDS} {
			if m.Supports(p) {
				t.Errorf("%s must not support %v", name, p)
			}
		}
	}
}

func TestPlayerTechProtocols(t *testing.T) {
	flash, _ := ByName("Flash")
	if !flash.Supports(manifest.HDS) || !flash.Supports(manifest.RTMP) {
		t.Error("Flash pairs with HDS and RTMP")
	}
	if !flash.Supports(manifest.HLS) {
		t.Error("Flash players (JW Player et al.) also played HLS")
	}
	if flash.Supports(manifest.DASH) {
		t.Error("Flash should not play DASH")
	}
	sl, _ := ByName("Silverlight")
	if !sl.Supports(manifest.Smooth) || sl.Supports(manifest.DASH) {
		t.Error("Silverlight is SmoothStreaming-only")
	}
	html5, _ := ByName("HTML5")
	for _, p := range []manifest.Protocol{manifest.HLS, manifest.DASH, manifest.Smooth} {
		if !html5.Supports(p) {
			t.Errorf("HTML5/MSE should support %v", p)
		}
	}
	xbox, _ := ByName("Xbox")
	if !xbox.Supports(manifest.Smooth) {
		t.Error("Xbox is a Microsoft device; it plays SmoothStreaming")
	}
}

func TestEveryModelPlaysSomething(t *testing.T) {
	for _, m := range Registry {
		if len(m.PlayableProtocols()) == 0 {
			// Flash plays HDS which is in the HTTP list; everything
			// must support at least one HTTP protocol.
			t.Errorf("%s plays no HTTP streaming protocol", m.Name)
		}
	}
}

func TestPlayableProtocolsPreferenceOrder(t *testing.T) {
	roku, _ := ByName("Roku")
	ps := roku.PlayableProtocols()
	if ps[0] != manifest.HLS {
		t.Errorf("preference order should lead with HLS, got %v", ps)
	}
}

func TestVersionAtAdvances(t *testing.T) {
	m, _ := ByName("Roku")
	early := m.VersionAt(simclock.StudyStart)
	late := m.VersionAt(simclock.StudyEnd)
	if early == late {
		t.Fatalf("SDK version did not advance over 27 months: %v", early)
	}
	if early.Family != "RokuSDK" {
		t.Errorf("family = %q", early.Family)
	}
}

func TestVersionAtClampsBeforeEpoch(t *testing.T) {
	m, _ := ByName("Roku")
	v := m.VersionAt(time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC))
	if v.Version != "1.0" {
		t.Fatalf("pre-epoch version = %q, want 1.0", v.Version)
	}
}

func TestBrowserSDKFamilyIsPlayerTech(t *testing.T) {
	html5, _ := ByName("HTML5")
	if v := html5.VersionAt(simclock.StudyStart); v.Family != "HTML5" {
		t.Fatalf("browser SDK family = %q, want HTML5", v.Family)
	}
}

func TestVersionsInUse(t *testing.T) {
	m, _ := ByName("AndroidPhone")
	vs := m.VersionsInUse(simclock.StudyEnd, 3)
	if len(vs) != 4 {
		t.Fatalf("lag 3 should give 4 versions, got %d (%v)", len(vs), vs)
	}
	seen := map[SDKVersion]bool{}
	for _, v := range vs {
		if seen[v] {
			t.Fatalf("duplicate version %v", v)
		}
		seen[v] = true
	}
	// Newest version must be included.
	if vs[0] != m.VersionAt(simclock.StudyEnd) {
		t.Error("newest version missing")
	}
	if got := m.VersionsInUse(simclock.StudyEnd, -5); len(got) != 1 {
		t.Errorf("negative lag should clamp to newest-only, got %v", got)
	}
}

func TestVersionsInUseDedupAtEpoch(t *testing.T) {
	m, _ := ByName("Roku")
	// Near the epoch every lagged lookup clamps to 1.0.
	vs := m.VersionsInUse(sdkEpoch.Add(24*time.Hour), 8)
	if len(vs) != 1 {
		t.Fatalf("epoch-clamped versions should dedup to 1, got %v", vs)
	}
}

func TestUserAgent(t *testing.T) {
	html5, _ := ByName("HTML5")
	ua := html5.UserAgent(SDKVersion{Family: "HTML5", Version: "8.1"})
	if !strings.HasPrefix(ua, "Mozilla/5.0") {
		t.Errorf("browser UA should be Mozilla-style: %q", ua)
	}
	roku, _ := ByName("Roku")
	ua = roku.UserAgent(SDKVersion{Family: "RokuSDK", Version: "9.2"})
	if !strings.Contains(ua, "RokuApp/9.2") || !strings.Contains(ua, "RokuOS") {
		t.Errorf("app identifier malformed: %q", ua)
	}
}

func TestSDKVersionString(t *testing.T) {
	v := SDKVersion{Family: "ExoPlayer", Version: "2.3"}
	if v.String() != "ExoPlayer/2.3" {
		t.Fatalf("String() = %q", v.String())
	}
}
