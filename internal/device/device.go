// Package device models the playback side of the management plane
// (§2, §4.2): the five platform categories of Fig. 5 (browser, mobile
// app, streaming set-top box, smart TV, gaming console), the concrete
// device models within each, the SDK / application-framework zoo that
// publishers must build against, and the device→protocol compatibility
// constraints that couple packaging decisions to device support (e.g.
// Apple devices requiring HLS).
package device

import (
	"fmt"
	"time"

	"vmp/internal/manifest"
	"vmp/internal/simclock"
)

// Platform is one of the five platform categories of Fig. 5.
type Platform int

// Platform categories. Browser covers browser playback on any device
// (including mobile browsers, per §4.2); the other four are app-based.
const (
	Browser Platform = iota
	Mobile
	SetTop
	SmartTV
	Console
)

// Platforms lists all platform categories in the paper's presentation
// order.
var Platforms = []Platform{Browser, Mobile, SetTop, SmartTV, Console}

// String returns the display name used in figures.
func (p Platform) String() string {
	switch p {
	case Browser:
		return "Browser"
	case Mobile:
		return "Mobile"
	case SetTop:
		return "SetTop"
	case SmartTV:
		return "SmartTV"
	case Console:
		return "Console"
	default:
		return fmt.Sprintf("Platform(%d)", int(p))
	}
}

// AppBased reports whether playback on this platform goes through a
// publisher app built on a device SDK (vs a browser player).
func (p Platform) AppBased() bool { return p != Browser }

// Model identifies a concrete device model or, for browsers, a player
// technology (the within-platform split of Fig. 10a is by player tech:
// HTML5, Flash, Silverlight).
type Model struct {
	Name     string   // e.g. "Roku", "iPhone", "HTML5"
	Platform Platform // category the model belongs to
	OS       string   // operating system reported in telemetry
	SDK      string   // SDK family apps are built with; empty for browsers
	Apple    bool     // subject to the Apple HLS requirement
}

// Registry is the fixed device-model catalogue of the simulation,
// in a stable order (analytics index into it by name).
var Registry = []Model{
	// Browser player technologies (Fig 10a).
	{Name: "HTML5", Platform: Browser, OS: "any"},
	{Name: "Flash", Platform: Browser, OS: "any"},
	{Name: "Silverlight", Platform: Browser, OS: "any"},
	// Mobile devices (Fig 10b tracks iOS vs Android view-hours).
	{Name: "iPhone", Platform: Mobile, OS: "iOS", SDK: "AVFoundation", Apple: true},
	{Name: "iPad", Platform: Mobile, OS: "iOS", SDK: "AVFoundation", Apple: true},
	{Name: "AndroidPhone", Platform: Mobile, OS: "Android", SDK: "ExoPlayer"},
	{Name: "AndroidTablet", Platform: Mobile, OS: "Android", SDK: "ExoPlayer"},
	// Streaming set-top boxes (Fig 10c: Roku dominant; AppleTV and
	// FireTV non-negligible).
	{Name: "Roku", Platform: SetTop, OS: "RokuOS", SDK: "RokuSDK"},
	{Name: "AppleTV", Platform: SetTop, OS: "tvOS", SDK: "TVMLKit", Apple: true},
	{Name: "FireTV", Platform: SetTop, OS: "FireOS", SDK: "FireAppBuilder"},
	{Name: "Chromecast", Platform: SetTop, OS: "CastOS", SDK: "CastSDK"},
	// Smart TVs.
	{Name: "SamsungTV", Platform: SmartTV, OS: "Tizen", SDK: "TizenAVPlay"},
	{Name: "LGTV", Platform: SmartTV, OS: "webOS", SDK: "webOSMedia"},
	{Name: "VizioTV", Platform: SmartTV, OS: "SmartCast", SDK: "SmartCastSDK"},
	// Gaming consoles.
	{Name: "Xbox", Platform: Console, OS: "XboxOS", SDK: "XDK"},
	{Name: "PlayStation", Platform: Console, OS: "Orbis", SDK: "PSMedia"},
}

// ByName returns the registered model with the given name.
func ByName(name string) (Model, bool) {
	for _, m := range Registry {
		if m.Name == name {
			return m, true
		}
	}
	return Model{}, false
}

// OfPlatform returns the registered models in the given category.
func OfPlatform(p Platform) []Model {
	var out []Model
	for _, m := range Registry {
		if m.Platform == p {
			out = append(out, m)
		}
	}
	return out
}

// Supports reports whether the model can play the protocol. The matrix
// encodes the constraints §2 and §4.1 describe: Apple devices play HLS
// (recent ones gained limited fMP4/DASH support, which we expose as
// HLS-only to match the study period); Flash pairs with HDS and RTMP;
// Silverlight with SmoothStreaming; modern app SDKs and HTML5 (MSE)
// handle HLS and DASH, with SmoothStreaming on Microsoft-lineage
// devices.
func (m Model) Supports(p manifest.Protocol) bool {
	if m.Apple {
		return p == manifest.HLS
	}
	switch m.Name {
	case "HTML5":
		return p == manifest.HLS || p == manifest.DASH || p == manifest.Smooth
	case "Flash":
		// Flash pairs natively with HDS and RTMP; commercial Flash
		// players (JW Player, OSMF plugins) also played HLS.
		return p == manifest.HDS || p == manifest.RTMP || p == manifest.HLS
	case "Silverlight":
		return p == manifest.Smooth
	case "Xbox":
		return p == manifest.Smooth || p == manifest.DASH
	case "Chromecast":
		return p == manifest.HLS || p == manifest.DASH || p == manifest.Smooth
	default:
		// Android, Roku, FireTV, smart TVs, PlayStation: HLS + DASH,
		// and Smooth on Roku/smart TVs whose SDKs ship a Smooth stack.
		switch p {
		case manifest.HLS, manifest.DASH:
			return true
		case manifest.Smooth:
			return m.Name == "Roku" || m.Platform == SmartTV
		default:
			return false
		}
	}
}

// PlayableProtocols returns the HTTP streaming protocols the model
// supports, in ladder preference order (publishers serve the first
// supported protocol they package).
func (m Model) PlayableProtocols() []manifest.Protocol {
	var out []manifest.Protocol
	for _, p := range []manifest.Protocol{manifest.HLS, manifest.DASH, manifest.Smooth, manifest.HDS} {
		if m.Supports(p) {
			out = append(out, p)
		}
	}
	return out
}

// SDKVersion identifies one version of one SDK family: the unit the §5
// Unique-SDKs complexity metric counts ("the number of unique versions
// of SDKs and browsers supported by a publisher across all devices").
type SDKVersion struct {
	Family  string
	Version string
}

// String renders the version as reported in telemetry.
func (v SDKVersion) String() string { return v.Family + "/" + v.Version }

// sdkEpoch anchors version numbering so versions are stable across the
// study window.
var sdkEpoch = time.Date(2014, time.January, 1, 0, 0, 0, 0, time.UTC)

// VersionAt returns the newest version of the model's SDK family
// available at time t. SDK families release quarterly; versions are
// numbered <major>.<minor> from the family's epoch.
func (m Model) VersionAt(t time.Time) SDKVersion {
	family := m.SDK
	if family == "" {
		family = m.Name // browsers: the player tech is the "SDK"
	}
	quarters := int(t.Sub(sdkEpoch) / (91 * simclock.Day))
	if quarters < 0 {
		quarters = 0
	}
	return SDKVersion{Family: family, Version: fmt.Sprintf("%d.%d", 1+quarters/4, quarters%4)}
}

// VersionsInUse returns the SDK versions a publisher must support for
// this model at time t given that users lag up to lagQuarters releases
// behind (§2: "users may take time to upgrade their device SDKs").
// The newest version is always included.
func (m Model) VersionsInUse(t time.Time, lagQuarters int) []SDKVersion {
	if lagQuarters < 0 {
		lagQuarters = 0
	}
	out := make([]SDKVersion, 0, lagQuarters+1)
	for lag := 0; lag <= lagQuarters; lag++ {
		v := m.VersionAt(t.Add(-time.Duration(lag) * 91 * simclock.Day))
		// Quarter arithmetic can collide at the epoch clamp; keep the
		// list duplicate-free.
		dup := false
		for _, have := range out {
			if have == v {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, v)
		}
	}
	return out
}

// UserAgent fabricates the HTTP user-agent string telemetry reports
// for browser views, or the app identifier for app views.
func (m Model) UserAgent(v SDKVersion) string {
	if m.Platform == Browser {
		return fmt.Sprintf("Mozilla/5.0 (compatible; %s/%s; player)", m.Name, v.Version)
	}
	return fmt.Sprintf("%sApp/%s (%s; %s)", m.Name, v.Version, m.OS, v.Family)
}
