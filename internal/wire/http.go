package wire

import (
	"compress/gzip"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"vmp/internal/telemetry/record"
)

// BodyInfo describes how an ingest request body was decoded; ingest
// handlers attach it to their scan spans so traces say which encoding
// a batch arrived in and how many payload bytes it decoded to.
type BodyInfo struct {
	Binary bool  // binary batch frames (vs the JSONL fallback)
	Gzip   bool  // body arrived Content-Encoding: gzip
	Bytes  int64 // decoded (post-decompression) payload bytes
}

// jsonlContentTypes are the media types the JSONL fallback accepts.
// The empty type keeps bare POSTs working; x-www-form-urlencoded is
// what curl --data-binary stamps on piped uploads.
var jsonlContentTypes = map[string]bool{
	"":                                  true,
	ContentTypeJSONL:                    true,
	"application/json":                  true,
	"application/x-www-form-urlencoded": true,
	"text/plain":                        true,
}

// gzPool recycles gzip readers across requests; inflating a fresh
// reader per batch costs more than decoding the batch itself.
var gzPool = sync.Pool{New: func() any { return new(gzip.Reader) }}

// countingReader counts bytes as they are consumed.
type countingReader struct {
	r io.Reader
	n int64
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n += int64(n)
	return n, err
}

// DecodeBody negotiates and decodes one ingest request body: the
// Content-Type header picks the decoder (ContentTypeBinary for frame
// streams, the JSONL fallback otherwise) and Content-Encoding: gzip
// is transparently inflated for both. It is the one decode path the
// live serving plane and the collector share.
//
// A media type or content coding the ingest path does not speak fails
// with ErrUnsupportedMedia before any body bytes are read (handlers
// map it to 415). Binary decode errors reject the whole batch (recs
// nil, bad 0); JSONL keeps its per-line bad count with err reserved
// for a cut-short stream. Binary records decode through dec and obey
// its reuse contract: they are valid until dec's next DecodeAll.
func DecodeBody(hdr http.Header, body io.Reader, dec *Decoder) (recs []record.ViewRecord, bad int, info BodyInfo, err error) {
	ct := hdr.Get("Content-Type")
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	ct = strings.TrimSpace(ct)
	switch {
	case ct == ContentTypeBinary:
		info.Binary = true
	case jsonlContentTypes[strings.ToLower(ct)]:
	default:
		return nil, 0, info, fmt.Errorf("%w: Content-Type %q", ErrUnsupportedMedia, ct)
	}

	switch ce := strings.ToLower(strings.TrimSpace(hdr.Get("Content-Encoding"))); ce {
	case "", "identity":
	case "gzip", "x-gzip":
		info.Gzip = true
		gz := gzPool.Get().(*gzip.Reader)
		if err := gz.Reset(body); err != nil {
			gzPool.Put(gz)
			return nil, 0, info, fmt.Errorf("wire: bad gzip body: %w", err)
		}
		defer func() {
			// A Close error means a corrupt trailing checksum: surface it
			// as a decode failure unless one is already being returned.
			if cerr := gz.Close(); cerr != nil && err == nil {
				recs, bad, err = nil, 0, fmt.Errorf("wire: closing gzip body: %w", cerr)
			}
			gzPool.Put(gz)
		}()
		body = gz
	default:
		return nil, 0, info, fmt.Errorf("%w: Content-Encoding %q", ErrUnsupportedMedia, ce)
	}

	cr := &countingReader{r: body}
	defer func() { info.Bytes = cr.n }()
	if info.Binary {
		recs, err = dec.DecodeAll(cr)
		return recs, 0, info, err
	}
	recs, bad, err = ScanJSONL(cr)
	return recs, bad, info, err
}
