package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"math/bits"

	"vmp/internal/telemetry/record"
)

// Encoder writes batches of view records as binary frames. It owns an
// intern index and payload/ID scratch buffers that are reused across
// Encode calls, so a steady encode loop allocates only when a batch
// outgrows every previous one. An Encoder is not safe for concurrent
// use; give each goroutine its own.
//
// Encoding is deterministic: the string table is built in first-
// appearance order over a fixed field walk, so the same record slice
// always produces byte-identical frames — the property the canonical
// round-trip tests pin.
type Encoder struct {
	index   map[string]uint64
	names   []string //vmp:scratch string table scratch, rebuilt per frame
	ids     []uint64 //vmp:scratch N×numStringFields interned IDs, record-major
	payload []byte   //vmp:scratch payload buffer reused across Encode calls
	lenbuf  [4]byte
}

// NewEncoder returns an empty encoder.
func NewEncoder() *Encoder {
	return &Encoder{index: make(map[string]uint64)}
}

// intern returns the table ID for s, adding it on first sight.
//
//vmp:hotpath
func (e *Encoder) intern(s string) uint64 {
	id, ok := e.index[s]
	if !ok {
		id = uint64(len(e.names))
		e.index[s] = id
		e.names = append(e.names, s)
	}
	return id
}

// stringFields appends the values of every single-valued string field
// of r, in the fixed column order the frame layout defines. Keeping
// the walk in one place keeps the encoder's intern pass and the
// decoder's column order from drifting apart.
//
//vmp:hotpath
func stringFields(r *record.ViewRecord, dst []string) []string {
	return append(dst,
		r.Publisher, r.VideoID, r.URL, r.Device, r.OS, r.UserAgent,
		r.SDK, r.SDKVersion, r.ISP, r.ConnType, r.Geo, r.ContentID, r.Owner)
}

// numStringFields is the number of single-valued string columns; it
// must match stringFields.
const numStringFields = 13

// zigzag maps a signed value to an unsigned one with small absolute
// values staying small, the standard varint-friendly transform.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// floatBits maps a float to a varint-friendly pattern: byte-reversing
// IEEE 754 bits moves the sign/exponent bytes — the ones that are
// almost always populated — to the low end and the usually-zero
// mantissa tail to the high end, so typical telemetry values varint-
// code in 3–5 bytes instead of 9.
func floatBits(f float64) uint64 { return bits.ReverseBytes64(math.Float64bits(f)) }

// unfloatBits inverts floatBits.
func unfloatBits(u uint64) float64 { return math.Float64frombits(bits.ReverseBytes64(u)) }

// AppendFrame appends one frame holding recs to dst and returns the
// extended slice. An empty batch encodes to a valid empty frame. It
// fails only if the encoded payload would exceed MaxFrameBytes —
// split the batch and encode multiple frames instead; the decode side
// accepts any number of frames per stream.
//
//vmp:hotpath
func (e *Encoder) AppendFrame(dst []byte, recs []record.ViewRecord) ([]byte, error) {
	if len(recs) > MaxFrameRecords {
		return dst, fmt.Errorf("wire: %d records exceed MaxFrameRecords %d; split the batch", len(recs), MaxFrameRecords)
	}
	// Pass 1: build the string table in first-appearance order and
	// stash every single-valued field's ID so the column-major emit
	// pass below doesn't re-walk the structs per column.
	clear(e.index)
	e.names = e.names[:0]
	e.ids = e.ids[:0]
	var fieldsArr [numStringFields]string
	for i := range recs {
		r := &recs[i]
		for _, s := range stringFields(r, fieldsArr[:0]) {
			e.ids = append(e.ids, e.intern(s))
		}
		for _, c := range r.CDNs {
			e.intern(c)
		}
	}

	// Pass 2: emit the payload into the scratch buffer.
	p := e.payload[:0]
	p = append(p, frameMagic0, frameMagic1, Version, 0)
	p = binary.AppendUvarint(p, uint64(len(recs)))
	p = binary.AppendUvarint(p, uint64(len(e.names)))
	for _, s := range e.names {
		p = binary.AppendUvarint(p, uint64(len(s)))
		p = append(p, s...)
	}
	// Timestamps: absolute unix-nanos for the first record, zigzag
	// deltas after it. Canonically sorted batches are timestamp-sorted,
	// so deltas are small non-negative values.
	prev := int64(0)
	for i := range recs {
		ns := recs[i].Timestamp.UnixNano()
		p = binary.AppendUvarint(p, zigzag(ns-prev))
		prev = ns
	}
	// Single-valued string columns, column-major.
	for f := 0; f < numStringFields; f++ {
		for i := range recs {
			p = binary.AppendUvarint(p, e.ids[i*numStringFields+f])
		}
	}
	// CDN lists.
	for i := range recs {
		cdns := recs[i].CDNs
		p = binary.AppendUvarint(p, uint64(len(cdns)))
		for _, c := range cdns {
			p = binary.AppendUvarint(p, e.index[c])
		}
	}
	// Bitrate ladders.
	for i := range recs {
		brs := recs[i].Bitrates
		p = binary.AppendUvarint(p, uint64(len(brs)))
		for _, b := range brs {
			p = binary.AppendUvarint(p, zigzag(int64(b)))
		}
	}
	// Boolean bitset columns.
	p = appendBitset(p, recs, func(r *record.ViewRecord) bool { return r.Live })
	p = appendBitset(p, recs, func(r *record.ViewRecord) bool { return r.Syndicated })
	p = appendBitset(p, recs, func(r *record.ViewRecord) bool { return r.Failed })
	// Float columns.
	for i := range recs {
		p = binary.AppendUvarint(p, floatBits(recs[i].ViewSec))
	}
	for i := range recs {
		p = binary.AppendUvarint(p, floatBits(recs[i].AvgBitrateKbps))
	}
	for i := range recs {
		p = binary.AppendUvarint(p, floatBits(recs[i].RebufferSec))
	}
	for i := range recs {
		p = binary.AppendUvarint(p, floatBits(recs[i].Weight))
	}
	e.payload = p
	if len(p) > MaxFrameBytes {
		return dst, fmt.Errorf("wire: frame payload %d bytes exceeds MaxFrameBytes %d; split the batch", len(p), MaxFrameBytes)
	}

	binary.LittleEndian.PutUint32(e.lenbuf[:], uint32(len(p)))
	dst = append(dst, e.lenbuf[:]...)
	return append(dst, p...), nil
}

// appendBitset packs one boolean per record into a ceil(n/8)-byte
// bitset, LSB-first.
//
//vmp:hotpath
func appendBitset(p []byte, recs []record.ViewRecord, get func(*record.ViewRecord) bool) []byte {
	var cur byte
	for i := range recs {
		if get(&recs[i]) {
			cur |= 1 << (uint(i) % 8)
		}
		if i%8 == 7 {
			p = append(p, cur)
			cur = 0
		}
	}
	if len(recs)%8 != 0 {
		p = append(p, cur)
	}
	return p
}

// Encode writes recs to w as one binary frame.
func (e *Encoder) Encode(w io.Writer, recs []record.ViewRecord) error {
	frame, err := e.AppendFrame(nil, recs)
	if err != nil {
		return err
	}
	if _, err := w.Write(frame); err != nil {
		return fmt.Errorf("wire: writing frame: %w", err)
	}
	return nil
}
