package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"vmp/internal/telemetry/record"
)

// MaxFrameRecords bounds the record count a single frame may declare.
// Together with MaxFrameBytes and the per-record minimum-size check it
// keeps a hostile count varint from provoking an allocation that is
// wildly out of proportion to the bytes actually sent.
const MaxFrameRecords = 1 << 20

// errTruncated reports a stream that ended mid-frame.
var errTruncated = errors.New("wire: truncated frame")

// Decoder parses binary frame streams straight into the columnar
// []record.ViewRecord layout: no intermediate per-record structs, no
// per-field allocations. The record slice, frame buffer, and table
// scratch are reused across DecodeAll calls and distinct string
// values are interned in a persistent cache, so a steady decode loop
// over similar batches allocates only the per-call CDN/bitrate
// arenas — zero allocations per record.
//
// Ownership contract: the slice DecodeAll returns (and the structs in
// it) is valid only until the next DecodeAll call on the same
// decoder. Both ingest paths copy records out synchronously (the live
// engine partitions into per-shard slices inside Ingest, the
// collector's Store.Append copies into its backing array), which is
// what makes the reuse safe. A Decoder is not safe for concurrent
// use; pool decoders per request instead.
type Decoder struct {
	frame  []byte              //vmp:scratch reused frame buffer, valid until the next DecodeAll
	recs   []record.ViewRecord //vmp:scratch reused record slice handed to callers per the ownership contract
	names  []string            //vmp:scratch per-frame string table scratch
	intern map[string]string
	lenbuf [4]byte

	// arena sizing hints carried across calls so steady-state decoding
	// pays one allocation per arena per call, not per growth step.
	cdnCap, brCap int
}

// NewDecoder returns an empty decoder.
func NewDecoder() *Decoder {
	return &Decoder{intern: make(map[string]string)}
}

// internCap bounds the persistent string cache; past it the cache is
// cleared rather than grown, so a stream of unique strings cannot
// grow the decoder without bound.
const internCap = 1 << 15

// internBytes returns the canonical string for b, allocating only on
// first sight of a value.
//
//vmp:hotpath
func (d *Decoder) internBytes(b []byte) string {
	if s, ok := d.intern[string(b)]; ok {
		return s
	}
	if len(d.intern) >= internCap {
		clear(d.intern)
	}
	s := string(b) //vmp:alloc first sight of a distinct value enters the persistent intern cache
	d.intern[s] = s
	return s
}

// DecodeAll reads every frame from r and returns the decoded records.
// The returned slice is valid until the next DecodeAll call; see the
// type comment. Any framing or layout violation — a truncated frame,
// an unknown version or flag, an out-of-range table ID, trailing
// bytes — fails the whole stream: ingest handlers reject the batch so
// a retry is exact.
//
//vmp:hotpath
func (d *Decoder) DecodeAll(r io.Reader) ([]record.ViewRecord, error) {
	d.recs = d.recs[:0]
	st := decodeState{
		cdns: make([]string, 0, d.cdnCap), //vmp:alloc per-call arena; admitted records retain views, so it is never reused
		brs:  make([]int, 0, d.brCap),     //vmp:alloc per-call arena; admitted records retain views, so it is never reused
	}
	for {
		if _, err := io.ReadFull(r, d.lenbuf[:]); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("wire: reading frame length: %w", err)
		}
		n := binary.LittleEndian.Uint32(d.lenbuf[:])
		if n > MaxFrameBytes {
			return nil, fmt.Errorf("wire: frame payload %d bytes exceeds MaxFrameBytes %d", n, MaxFrameBytes)
		}
		if cap(d.frame) < int(n) {
			d.frame = make([]byte, n) //vmp:alloc amortized scratch grow, reused across calls
		}
		d.frame = d.frame[:n]
		if _, err := io.ReadFull(r, d.frame); err != nil {
			return nil, fmt.Errorf("%w: payload short of %d bytes", errTruncated, n)
		}
		if err := d.decodeFrame(d.frame, &st); err != nil {
			return nil, err
		}
	}
	if cap(st.cdns) > d.cdnCap {
		d.cdnCap = cap(st.cdns)
	}
	if cap(st.brs) > d.brCap {
		d.brCap = cap(st.brs)
	}
	return d.recs, nil
}

// decodeState holds the per-call arenas the variable-length record
// fields sub-slice. They are freshly allocated each DecodeAll call —
// never reused — because admitted records retain views into them.
type decodeState struct {
	cdns []string
	brs  []int
}

// frameReader is a bounds-checked cursor over one frame payload.
type frameReader struct {
	b   []byte
	pos int
}

//vmp:hotpath
func (fr *frameReader) remaining() int { return len(fr.b) - fr.pos }

//vmp:hotpath
func (fr *frameReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(fr.b[fr.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad varint at offset %d", errTruncated, fr.pos)
	}
	fr.pos += n
	return v, nil
}

//vmp:hotpath
func (fr *frameReader) take(n int) ([]byte, error) {
	if n < 0 || fr.remaining() < n {
		return nil, fmt.Errorf("%w: need %d bytes at offset %d, have %d", errTruncated, n, fr.pos, fr.remaining())
	}
	b := fr.b[fr.pos : fr.pos+n]
	fr.pos += n
	return b, nil
}

// decodeFrame parses one payload, appending its records to d.recs.
//
//vmp:hotpath
func (d *Decoder) decodeFrame(payload []byte, st *decodeState) error {
	fr := &frameReader{b: payload} //vmp:alloc cursor stays on the stack (escape analysis; pinned by the wire alloc benchmark)
	hdr, err := fr.take(4)
	if err != nil {
		return err
	}
	if hdr[0] != frameMagic0 || hdr[1] != frameMagic1 {
		return fmt.Errorf("wire: bad frame magic %q", hdr[:2])
	}
	if hdr[2] != Version {
		return fmt.Errorf("wire: unknown frame version %d (decoder speaks %d)", hdr[2], Version)
	}
	if hdr[3] != 0 {
		return fmt.Errorf("wire: unknown frame flags 0x%02x", hdr[3])
	}
	count64, err := fr.uvarint()
	if err != nil {
		return err
	}
	if count64 > MaxFrameRecords {
		return fmt.Errorf("wire: frame declares %d records, cap is %d", count64, MaxFrameRecords)
	}
	n := int(count64)
	// A record costs at least one byte in each varint column plus its
	// bitset bits; reject counts the remaining bytes cannot possibly
	// hold before allocating anything proportional to them.
	minBytes := n*(1+numStringFields+1+1+4) + 3*((n+7)/8)
	if fr.remaining() < minBytes {
		return fmt.Errorf("%w: %d records need at least %d payload bytes, have %d", errTruncated, n, minBytes, fr.remaining())
	}

	// String table.
	tcount64, err := fr.uvarint()
	if err != nil {
		return err
	}
	if tcount64 > uint64(fr.remaining()) {
		return fmt.Errorf("%w: table declares %d entries with %d bytes left", errTruncated, tcount64, fr.remaining())
	}
	tcount := int(tcount64)
	names := d.names[:0]
	for i := 0; i < tcount; i++ {
		l, err := fr.uvarint()
		if err != nil {
			return err
		}
		if l > uint64(fr.remaining()) {
			return fmt.Errorf("%w: table entry %d declares %d bytes with %d left", errTruncated, i, l, fr.remaining())
		}
		b, err := fr.take(int(l))
		if err != nil {
			return err
		}
		names = append(names, d.internBytes(b))
	}
	d.names = names

	// Grow the output slice; all fields of every new slot are assigned
	// below, so reused slots need no zeroing.
	base := len(d.recs)
	if cap(d.recs)-base < n {
		grown := make([]record.ViewRecord, base, base+n) //vmp:alloc amortized record-slice grow, reused across calls
		copy(grown, d.recs)
		d.recs = grown
	}
	d.recs = d.recs[:base+n]
	out := d.recs[base:]

	// Timestamp column.
	prev := int64(0)
	for i := 0; i < n; i++ {
		u, err := fr.uvarint()
		if err != nil {
			return err
		}
		prev += unzigzag(u)
		out[i].Timestamp = time.Unix(0, prev).UTC()
	}
	// Single-valued string columns.
	for f := 0; f < numStringFields; f++ {
		for i := 0; i < n; i++ {
			id, err := fr.uvarint()
			if err != nil {
				return err
			}
			if id >= uint64(tcount) {
				return fmt.Errorf("wire: string ID %d out of table range %d", id, tcount)
			}
			setStringField(&out[i], f, names[id])
		}
	}
	// CDN lists.
	for i := 0; i < n; i++ {
		k64, err := fr.uvarint()
		if err != nil {
			return err
		}
		if k64 > uint64(fr.remaining()) {
			return fmt.Errorf("%w: CDN list declares %d entries with %d bytes left", errTruncated, k64, fr.remaining())
		}
		k := int(k64)
		if k == 0 {
			out[i].CDNs = nil
			continue
		}
		start := len(st.cdns)
		for j := 0; j < k; j++ {
			id, err := fr.uvarint()
			if err != nil {
				return err
			}
			if id >= uint64(tcount) {
				return fmt.Errorf("wire: CDN ID %d out of table range %d", id, tcount)
			}
			st.cdns = append(st.cdns, names[id])
		}
		out[i].CDNs = st.cdns[start : start+k : start+k]
	}
	// Bitrate ladders.
	for i := 0; i < n; i++ {
		k64, err := fr.uvarint()
		if err != nil {
			return err
		}
		if k64 > uint64(fr.remaining()) {
			return fmt.Errorf("%w: bitrate ladder declares %d entries with %d bytes left", errTruncated, k64, fr.remaining())
		}
		k := int(k64)
		if k == 0 {
			out[i].Bitrates = nil
			continue
		}
		start := len(st.brs)
		for j := 0; j < k; j++ {
			u, err := fr.uvarint()
			if err != nil {
				return err
			}
			st.brs = append(st.brs, int(unzigzag(u)))
		}
		out[i].Bitrates = st.brs[start : start+k : start+k]
	}
	// Boolean bitset columns.
	if err := readBitset(fr, out, func(r *record.ViewRecord, v bool) { r.Live = v }); err != nil {
		return err
	}
	if err := readBitset(fr, out, func(r *record.ViewRecord, v bool) { r.Syndicated = v }); err != nil {
		return err
	}
	if err := readBitset(fr, out, func(r *record.ViewRecord, v bool) { r.Failed = v }); err != nil {
		return err
	}
	// Float columns.
	for _, set := range floatSetters {
		for i := 0; i < n; i++ {
			u, err := fr.uvarint()
			if err != nil {
				return err
			}
			set(&out[i], unfloatBits(u))
		}
	}
	if fr.remaining() != 0 {
		return fmt.Errorf("wire: %d trailing bytes after columns", fr.remaining())
	}
	return nil
}

// setStringField assigns string column f of r; the order must match
// stringFields.
//
//vmp:hotpath
func setStringField(r *record.ViewRecord, f int, s string) {
	switch f {
	case 0:
		r.Publisher = s
	case 1:
		r.VideoID = s
	case 2:
		r.URL = s
	case 3:
		r.Device = s
	case 4:
		r.OS = s
	case 5:
		r.UserAgent = s
	case 6:
		r.SDK = s
	case 7:
		r.SDKVersion = s
	case 8:
		r.ISP = s
	case 9:
		r.ConnType = s
	case 10:
		r.Geo = s
	case 11:
		r.ContentID = s
	case 12:
		r.Owner = s
	}
}

// floatSetters assigns the float columns in frame order.
var floatSetters = [4]func(*record.ViewRecord, float64){
	func(r *record.ViewRecord, v float64) { r.ViewSec = v },
	func(r *record.ViewRecord, v float64) { r.AvgBitrateKbps = v },
	func(r *record.ViewRecord, v float64) { r.RebufferSec = v },
	func(r *record.ViewRecord, v float64) { r.Weight = v },
}

// readBitset unpacks one LSB-first bitset column into out via set.
//
//vmp:hotpath
func readBitset(fr *frameReader, out []record.ViewRecord, set func(*record.ViewRecord, bool)) error {
	b, err := fr.take((len(out) + 7) / 8)
	if err != nil {
		return err
	}
	for i := range out {
		set(&out[i], b[i/8]&(1<<(uint(i)%8)) != 0)
	}
	return nil
}
