package wire_test

import (
	"bytes"
	"testing"

	"vmp/internal/telemetry"
	"vmp/internal/wire"
)

// FuzzDecodeFrame throws arbitrary bytes at the binary decoder. The
// invariants: never panic, never allocate out of proportion to the
// input (pinned structurally by the record-count-vs-bytes check — a
// decode can never yield more records than input bytes), and any
// stream that does decode must re-encode and re-decode to a stable
// frame: encode(decode(x)) is a fixed point of encode∘decode, byte
// for byte, which is the canonical round-trip contract.
func FuzzDecodeFrame(f *testing.F) {
	small := genRecords(9)
	f.Add(encodeFrames(f, small))
	sorted := genRecords(40)
	telemetry.CanonicalSort(sorted)
	twoFrames, err := wire.NewEncoder().AppendFrame(encodeFrames(f, sorted), small)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(twoFrames)
	f.Add(encodeFrames(f, nil))
	f.Add([]byte{})
	f.Add([]byte{4, 0, 0, 0, 'V', 'B', 1, 0})
	f.Add(bytes.Repeat([]byte{0x80}, 40))

	f.Fuzz(func(t *testing.T, data []byte) {
		dec := wire.NewDecoder()
		recs, err := dec.DecodeAll(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(recs) > len(data) {
			t.Fatalf("decoded %d records from %d input bytes: over-allocation guard failed", len(recs), len(data))
		}
		// Round-trip stability. The original stream may intern in a
		// different order or split frames differently, so compare the
		// re-encoding of the decode result against itself one more
		// trip around, through a reused decoder to exercise scratch
		// reuse on the way.
		f1, err := wire.NewEncoder().AppendFrame(nil, recs)
		if err != nil {
			t.Fatalf("re-encoding %d decoded records: %v", len(recs), err)
		}
		recs2, err := dec.DecodeAll(bytes.NewReader(f1))
		if err != nil {
			t.Fatalf("decoding re-encoded frame: %v", err)
		}
		f2, err := wire.NewEncoder().AppendFrame(nil, recs2)
		if err != nil {
			t.Fatalf("second re-encode: %v", err)
		}
		if !bytes.Equal(f1, f2) {
			t.Fatalf("encode∘decode is not a fixed point: %d vs %d bytes", len(f1), len(f2))
		}
	})
}
