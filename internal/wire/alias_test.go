package wire_test

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"vmp/internal/telemetry/record"
	"vmp/internal/wire"
)

// TestDecodeReuseKeepsAdmittedBatchStable pins the decoder's ownership
// contract from the admitting side — the invariant the bufalias
// analyzer guards statically. Live ingest admits a decoded batch by
// shallow-copying the record structs (strings are immutable and the
// CDN/bitrate views point into per-call arenas that are never reused),
// then the decoder is fed a second, larger batch that rewrites and
// grows every piece of reused scratch: the frame buffer, the record
// slice, and the string-table scratch. If any admitted field secretly
// aliased decoder scratch, the second decode would rewrite it.
func TestDecodeReuseKeepsAdmittedBatchStable(t *testing.T) {
	dec := wire.NewDecoder()
	got, err := dec.DecodeAll(bytes.NewReader(encodeFrames(t, genRecords(64))))
	if err != nil {
		t.Fatalf("first DecodeAll: %v", err)
	}
	if len(got) != 64 {
		t.Fatalf("first decode returned %d records, want 64", len(got))
	}
	// Admit the batch the way the ingest paths do: copy the structs out
	// of the decoder-owned slice before the next DecodeAll call.
	admitted := append([]record.ViewRecord(nil), got...)
	want := deepCloneRecords(admitted)
	stable := encodeFrames(t, admitted)

	// Second batch: larger (forces the frame buffer and record slice to
	// grow, not just rewrite) and with disjoint string values (forces
	// fresh interning and rebuilds the table scratch end to end).
	second := genRecords(512)
	for i := range second {
		second[i].Publisher = "second-" + second[i].Publisher
		second[i].VideoID = "second-" + second[i].VideoID
		second[i].URL = strings.Replace(second[i].URL, "example", "elsewhere", 1)
		second[i].CDNs = []string{"cdn-z", "cdn-y"}
		second[i].Bitrates = []int{9999, 8888, 7777}
	}
	if _, err := dec.DecodeAll(bytes.NewReader(encodeFrames(t, second))); err != nil {
		t.Fatalf("second DecodeAll: %v", err)
	}

	// The admitted batch must be untouched: field for field against the
	// deep snapshot, and byte for byte through the canonical encoding.
	for i := range admitted {
		if !reflect.DeepEqual(admitted[i], want[i]) {
			t.Errorf("admitted record %d changed after scratch reuse:\n got %+v\nwant %+v", i, admitted[i], want[i])
		}
	}
	if after := encodeFrames(t, admitted); !bytes.Equal(stable, after) {
		t.Errorf("admitted batch is not byte-stable across a reusing decode: %d vs %d frame bytes", len(stable), len(after))
	}
}

// deepCloneRecords copies records with no shared backing memory at
// all — fresh string bytes and fresh CDN/bitrate arrays — so later
// comparisons cannot be fooled by a shared-but-corrupted alias.
func deepCloneRecords(recs []record.ViewRecord) []record.ViewRecord {
	out := make([]record.ViewRecord, len(recs))
	for i, r := range recs {
		c := r
		c.Publisher = strings.Clone(r.Publisher)
		c.VideoID = strings.Clone(r.VideoID)
		c.URL = strings.Clone(r.URL)
		c.Device = strings.Clone(r.Device)
		c.OS = strings.Clone(r.OS)
		c.UserAgent = strings.Clone(r.UserAgent)
		c.SDK = strings.Clone(r.SDK)
		c.SDKVersion = strings.Clone(r.SDKVersion)
		c.ISP = strings.Clone(r.ISP)
		c.ConnType = strings.Clone(r.ConnType)
		c.Geo = strings.Clone(r.Geo)
		c.ContentID = strings.Clone(r.ContentID)
		c.Owner = strings.Clone(r.Owner)
		if r.CDNs != nil {
			c.CDNs = make([]string, len(r.CDNs))
			for j, s := range r.CDNs {
				c.CDNs[j] = strings.Clone(s)
			}
		}
		if r.Bitrates != nil {
			c.Bitrates = append([]int(nil), r.Bitrates...)
		}
		out[i] = c
	}
	return out
}
