package wire

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"vmp/internal/telemetry/record"
)

// MaxLineBytes is the largest JSONL line the wire-level ingest paths
// accept. bufio.Scanner's default cap is 64 KiB, which a record with a
// long CDN list or bitrate ladder can exceed; every ingest scanner in
// the module (collector and live serving plane) shares this limit so a
// long line is a surfaced scan error, never a silent truncation.
const MaxLineBytes = 1 << 20

// ScanJSONL reads JSON-lines view records from r with the module-wide
// MaxLineBytes line cap. Blank lines are skipped; lines that fail to
// parse or lack a publisher are counted in bad, not returned. A
// non-nil err (an oversized line or a transport read error) means the
// stream was cut short: batch holds the records scanned up to that
// point and the caller decides whether to keep them.
func ScanJSONL(r io.Reader) (batch []record.ViewRecord, bad int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), MaxLineBytes)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec record.ViewRecord
		if err := json.Unmarshal(line, &rec); err != nil || rec.Publisher == "" {
			bad++
			continue
		}
		batch = append(batch, rec)
	}
	return batch, bad, sc.Err()
}

// EncodeJSONL writes records to w as JSON lines.
func EncodeJSONL(w io.Writer, records []record.ViewRecord) error {
	enc := json.NewEncoder(w)
	for i := range records {
		if err := enc.Encode(&records[i]); err != nil {
			return fmt.Errorf("wire: encoding record %d: %w", i, err)
		}
	}
	return nil
}

// DecodeJSONL reads JSON-lines records from r until EOF.
func DecodeJSONL(r io.Reader) ([]record.ViewRecord, error) {
	var out []record.ViewRecord
	dec := json.NewDecoder(r)
	for {
		var rec record.ViewRecord
		if err := dec.Decode(&rec); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, fmt.Errorf("wire: decoding record %d: %w", len(out), err)
		}
		out = append(out, rec)
	}
}
