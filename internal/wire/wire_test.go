package wire_test

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
	"time"

	"vmp/internal/telemetry"
	"vmp/internal/telemetry/record"
	"vmp/internal/wire"
)

// genRecords builds a deterministic, dimension-diverse batch: repeated
// publishers/devices/CDNs (the interning win), app and browser views,
// multi-CDN views, empty optional fields, weighted and failed records.
func genRecords(n int) []record.ViewRecord {
	base := time.Date(2012, 3, 1, 0, 0, 0, 0, time.UTC)
	cdnSets := [][]string{{"cdn-a"}, {"cdn-b"}, {"cdn-a", "cdn-b"}, {"cdn-c", "cdn-a", "cdn-b"}, nil}
	ladders := [][]int{{400, 800, 1600}, {235, 375, 560, 750, 1050, 1750, 2350}, nil, {3000}}
	recs := make([]record.ViewRecord, n)
	for i := range recs {
		r := record.ViewRecord{
			Timestamp:      base.Add(time.Duration(i) * 37 * time.Second),
			Publisher:      fmt.Sprintf("pub-%02d", i%7),
			VideoID:        fmt.Sprintf("vid-%04d", i%101),
			URL:            fmt.Sprintf("http://v.example/%d/master.m3u8", i%11),
			Device:         []string{"Roku", "iPhone", "HTML5", "XBox"}[i%4],
			OS:             []string{"RokuOS", "iOS", "", "Windows"}[i%4],
			CDNs:           cdnSets[i%len(cdnSets)],
			Bitrates:       ladders[i%len(ladders)],
			ISP:            fmt.Sprintf("isp-%d", i%3),
			ConnType:       []string{"wifi", "cell", ""}[i%3],
			Geo:            []string{"US-CA", "US-NY", "DE-BE"}[i%3],
			Live:           i%5 == 0,
			Syndicated:     i%6 == 0,
			ContentID:      fmt.Sprintf("title-%d", i%13),
			ViewSec:        float64(i%900) + 0.25,
			AvgBitrateKbps: 600 + float64(i%8)*150,
			RebufferSec:    float64(i%10) / 4,
			Failed:         i%17 == 0,
		}
		if i%4 == 1 {
			r.SDK = "roku-sdk"
			r.SDKVersion = "2.1"
		} else {
			r.UserAgent = fmt.Sprintf("UA/%d", i%5)
		}
		if i%6 == 0 {
			r.Owner = "pub-00"
		}
		if i%9 == 0 {
			r.Weight = float64(i%50) + 0.5
		}
		recs[i] = r
	}
	return recs
}

func encodeFrames(t testing.TB, recs []record.ViewRecord) []byte {
	t.Helper()
	frame, err := wire.NewEncoder().AppendFrame(nil, recs)
	if err != nil {
		t.Fatalf("AppendFrame: %v", err)
	}
	return frame
}

func TestRoundTrip(t *testing.T) {
	in := genRecords(257) // not a multiple of 8: exercises the bitset tail
	out, err := wire.NewDecoder().DecodeAll(bytes.NewReader(encodeFrames(t, in)))
	if err != nil {
		t.Fatalf("DecodeAll: %v", err)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d records, want %d", len(out), len(in))
	}
	for i := range in {
		if !reflect.DeepEqual(in[i], out[i]) {
			t.Fatalf("record %d mismatch:\n in: %+v\nout: %+v", i, in[i], out[i])
		}
	}
}

func TestRoundTripEmptyBatch(t *testing.T) {
	out, err := wire.NewDecoder().DecodeAll(bytes.NewReader(encodeFrames(t, nil)))
	if err != nil {
		t.Fatalf("DecodeAll: %v", err)
	}
	if len(out) != 0 {
		t.Fatalf("decoded %d records from empty batch", len(out))
	}
}

// TestCanonicalByteIdentity pins the determinism contract: encoding a
// canonically sorted batch, decoding it, and re-encoding the decode
// result — with a fresh encoder — must reproduce the frame bytes
// exactly.
func TestCanonicalByteIdentity(t *testing.T) {
	recs := genRecords(200)
	telemetry.CanonicalSort(recs)
	f1 := encodeFrames(t, recs)
	dec := wire.NewDecoder()
	out, err := dec.DecodeAll(bytes.NewReader(f1))
	if err != nil {
		t.Fatalf("DecodeAll: %v", err)
	}
	f2 := encodeFrames(t, out)
	if !bytes.Equal(f1, f2) {
		t.Fatalf("encode→decode→encode changed the frame: %d vs %d bytes", len(f1), len(f2))
	}
	// Same batch through the same encoder twice is also identical.
	f3 := encodeFrames(t, recs)
	if !bytes.Equal(f1, f3) {
		t.Fatal("re-encoding the same batch produced different bytes")
	}
}

// TestMultiFrameStream checks a body holding several frames decodes to
// the concatenated record sequence — the shape a streaming client
// produces when it splits a large batch.
func TestMultiFrameStream(t *testing.T) {
	recs := genRecords(90)
	enc := wire.NewEncoder()
	var stream []byte
	var err error
	for lo := 0; lo < len(recs); lo += 40 {
		hi := min(lo+40, len(recs))
		stream, err = enc.AppendFrame(stream, recs[lo:hi])
		if err != nil {
			t.Fatalf("AppendFrame: %v", err)
		}
	}
	out, err := wire.NewDecoder().DecodeAll(bytes.NewReader(stream))
	if err != nil {
		t.Fatalf("DecodeAll: %v", err)
	}
	if !reflect.DeepEqual(recs, out) {
		t.Fatalf("multi-frame decode mismatch: got %d records, want %d", len(out), len(recs))
	}
}

// TestDecoderReuse pins the ownership contract both ingest paths rely
// on: records copied out of one DecodeAll result stay intact after the
// decoder is reused for a different batch.
func TestDecoderReuse(t *testing.T) {
	a, b := genRecords(64), genRecords(128)[64:]
	dec := wire.NewDecoder()
	got, err := dec.DecodeAll(bytes.NewReader(encodeFrames(t, a)))
	if err != nil {
		t.Fatalf("DecodeAll(a): %v", err)
	}
	kept := make([]record.ViewRecord, len(got))
	copy(kept, got) // what Engine.Ingest / Store.Append do, synchronously
	if _, err := dec.DecodeAll(bytes.NewReader(encodeFrames(t, b))); err != nil {
		t.Fatalf("DecodeAll(b): %v", err)
	}
	if !reflect.DeepEqual(a, kept) {
		t.Fatal("records copied out of the first decode were corrupted by the second")
	}
}

func TestDecodeErrors(t *testing.T) {
	valid := encodeFrames(t, genRecords(10))
	corrupt := func(mutate func([]byte) []byte) []byte {
		c := append([]byte(nil), valid...)
		return mutate(c)
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"truncated length prefix", valid[:2]},
		{"truncated payload", valid[:len(valid)-3]},
		{"bad magic", corrupt(func(b []byte) []byte { b[4] = 'X'; return b })},
		{"unknown version", corrupt(func(b []byte) []byte { b[6] = 99; return b })},
		{"unknown flags", corrupt(func(b []byte) []byte { b[7] = 0x80; return b })},
		{"oversized length prefix", []byte{0xff, 0xff, 0xff, 0xff}},
		{"garbage", bytes.Repeat([]byte{0xa5}, 64)},
		{"trailing bytes", func() []byte {
			// Grow the declared payload length past the columns.
			c := append([]byte(nil), valid...)
			c = append(c, 0, 0, 0)
			c[0] += 3
			return c
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := wire.NewDecoder().DecodeAll(bytes.NewReader(tc.data)); err == nil {
				t.Fatal("decode succeeded on corrupt input")
			}
		})
	}
}

// TestDecodeSteadyStateAllocs pins the zero-allocations-per-record
// claim: decoding a warm 1000-record batch must cost at most a
// handful of per-call allocations (the CDN/bitrate arenas plus the
// reader), independent of the record count.
func TestDecodeSteadyStateAllocs(t *testing.T) {
	recs := genRecords(1000)
	stream := encodeFrames(t, recs)
	dec := wire.NewDecoder()
	rd := bytes.NewReader(stream)
	decode := func() {
		rd.Reset(stream)
		if _, err := dec.DecodeAll(rd); err != nil {
			t.Fatalf("DecodeAll: %v", err)
		}
	}
	decode() // warm scratch buffers and the intern cache
	allocs := testing.AllocsPerRun(50, decode)
	if allocs > 8 {
		t.Fatalf("steady-state DecodeAll of 1000 records costs %.1f allocs/op, want <= 8", allocs)
	}
}

func BenchmarkWireEncode(b *testing.B) {
	recs := genRecords(2000)
	telemetry.CanonicalSort(recs)
	enc := wire.NewEncoder()
	var frame []byte
	var err error
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		frame, err = enc.AppendFrame(frame[:0], recs)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(2000*b.N)/b.Elapsed().Seconds(), "records/s")
	b.ReportMetric(float64(len(frame))/2000, "bytes/record")
}

// BenchmarkWireDecode is the decode half of the wire-gap bench pair
// (BenchmarkScanJSONL in internal/telemetry is the other): one op
// decodes a 2000-record binary frame through a warm decoder.
func BenchmarkWireDecode(b *testing.B) {
	recs := genRecords(2000)
	telemetry.CanonicalSort(recs)
	stream := encodeFrames(b, recs)
	dec := wire.NewDecoder()
	rd := bytes.NewReader(stream)
	b.SetBytes(int64(len(stream)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd.Reset(stream)
		out, err := dec.DecodeAll(rd)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) != len(recs) {
			b.Fatalf("decoded %d records, want %d", len(out), len(recs))
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(len(recs)*b.N)/b.Elapsed().Seconds(), "records/s")
}
