// Package wire implements the telemetry ingest wire formats: the
// JSON-lines encoding publishers' monitoring libraries have always
// reported in, and a compact binary batch encoding that closes the
// gap between the engine's in-process admission rate and what the
// HTTP ingest path can parse.
//
// A binary stream is a sequence of length-prefixed frames. Each frame
// carries a fixed header (magic, version, flags, record count), one
// interned string table shipped once per frame, and column-major
// varint-coded record fields: every string field is a small table
// index, timestamps are zigzag-delta-coded, booleans are bitsets, and
// floats are varint-coded bit patterns. The decoder parses a frame
// straight into the columnar []record.ViewRecord layout with no
// intermediate per-record structs and no per-field allocations,
// reusing its scratch buffers across batches; see Decoder for the
// buffer-ownership contract. DESIGN.md §10 specifies the layout.
//
// Transport negotiation lives here too: DecodeBody picks the decoder
// from Content-Type (application/vnd.vmp.batch versus the JSONL
// fallback) and transparently decompresses Content-Encoding: gzip, so
// vmpd's serving plane and the vmpcollector backend share one decode
// path.
package wire

import "errors"

// ContentTypeBinary is the negotiated media type of the binary batch
// encoding. Anything else falls back to JSONL or is rejected with
// ErrUnsupportedMedia; see DecodeBody.
const ContentTypeBinary = "application/vnd.vmp.batch"

// ContentTypeJSONL is the canonical media type of the JSON-lines
// encoding.
const ContentTypeJSONL = "application/x-ndjson"

// ErrUnsupportedMedia reports a Content-Type or Content-Encoding the
// ingest path does not speak; HTTP handlers map it to 415 before any
// body bytes are read.
var ErrUnsupportedMedia = errors.New("wire: unsupported media type")

// Frame header constants. A frame on the wire is a 4-byte little-
// endian payload length followed by the payload itself; the payload
// opens with magic, version, and flags bytes plus a varint record
// count. Version bumps when the column layout changes; decoders
// reject versions and flag bits they do not know, so old decoders
// fail loudly on new frames instead of misparsing them.
const (
	frameMagic0 = 'V'
	frameMagic1 = 'B'

	// Version is the binary frame layout version this package encodes
	// and decodes.
	Version = 1

	// MaxFrameBytes bounds a single frame's payload. The decoder
	// rejects larger length prefixes before allocating, so a hostile
	// or corrupt prefix cannot trigger an over-allocation.
	MaxFrameBytes = 64 << 20
)
