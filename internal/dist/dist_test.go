package dist

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSourceDeterminism(t *testing.T) {
	a, b := NewSource(42), NewSource(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSplitIndependentOfParentPosition(t *testing.T) {
	a := NewSource(7)
	b := NewSource(7)
	// Advance a but not b; splits must still agree.
	for i := 0; i < 10; i++ {
		a.Uint64()
	}
	ca, cb := a.Split("child"), b.Split("child")
	for i := 0; i < 50; i++ {
		if ca.Uint64() != cb.Uint64() {
			t.Fatal("Split depends on parent stream position")
		}
	}
}

func TestSplitLabelsDistinct(t *testing.T) {
	s := NewSource(1)
	if s.Split("a").Uint64() == s.Split("b").Uint64() {
		t.Fatal("different labels produced identical first draw")
	}
	if s.Splitf("a", 0).Uint64() == s.Splitf("a", 1).Uint64() {
		t.Fatal("different indices produced identical first draw")
	}
}

func TestFloat64Range(t *testing.T) {
	s := NewSource(3)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := NewSource(5)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean of uniforms = %v, want ~0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	s := NewSource(9)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := s.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) only produced %d distinct values", len(seen))
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	NewSource(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	s := NewSource(11)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := s.Norm()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestLogNormalMedian(t *testing.T) {
	s := NewSource(13)
	const n = 100001
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = s.LogNormal(2, 0.5)
	}
	// Median of LogNormal(mu, sigma) is exp(mu).
	below := 0
	target := math.Exp(2)
	for _, x := range xs {
		if x < target {
			below++
		}
	}
	frac := float64(below) / n
	if math.Abs(frac-0.5) > 0.01 {
		t.Fatalf("fraction below exp(mu) = %v, want ~0.5", frac)
	}
}

func TestExponentialMean(t *testing.T) {
	s := NewSource(17)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Exponential(3.5)
	}
	if mean := sum / n; math.Abs(mean-3.5) > 0.05 {
		t.Fatalf("exponential mean = %v, want ~3.5", mean)
	}
}

func TestParetoTail(t *testing.T) {
	s := NewSource(19)
	const n = 100000
	min := math.Inf(1)
	above := 0
	for i := 0; i < n; i++ {
		x := s.Pareto(2, 1.5)
		if x < min {
			min = x
		}
		if x > 4 { // P(X > 2k) = (1/2)^alpha = 2^-1.5 ≈ 0.3536
			above++
		}
	}
	if min < 2 {
		t.Fatalf("Pareto(2, ·) produced value %v below xm", min)
	}
	frac := float64(above) / n
	if math.Abs(frac-math.Pow(2, -1.5)) > 0.01 {
		t.Fatalf("P(X>4) = %v, want ~%v", frac, math.Pow(2, -1.5))
	}
}

func TestCategorical(t *testing.T) {
	s := NewSource(23)
	counts := [3]int{}
	const n = 90000
	for i := 0; i < n; i++ {
		counts[s.Categorical([]float64{1, 2, 3})]++
	}
	for i, want := range []float64{1.0 / 6, 2.0 / 6, 3.0 / 6} {
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("category %d frequency %v, want ~%v", i, got, want)
		}
	}
}

func TestCategoricalPanics(t *testing.T) {
	for name, weights := range map[string][]float64{
		"zero-total": {0, 0},
		"negative":   {1, -1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s weights should panic", name)
				}
			}()
			NewSource(1).Categorical(weights)
		}()
	}
}

func TestZipfSkew(t *testing.T) {
	z := NewZipf(100, 1.0)
	s := NewSource(29)
	counts := make([]int, 100)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Draw(s)]++
	}
	if counts[0] <= counts[10] || counts[10] <= counts[50] {
		t.Fatalf("Zipf counts not decreasing: c0=%d c10=%d c50=%d",
			counts[0], counts[10], counts[50])
	}
	// Rank 0 should get roughly 1/H(100) ≈ 19% of the mass for exponent 1.
	frac0 := float64(counts[0]) / n
	if frac0 < 0.15 || frac0 > 0.25 {
		t.Fatalf("Zipf rank-0 mass = %v, want ~0.19", frac0)
	}
}

func TestBool(t *testing.T) {
	s := NewSource(45)
	hits := 0
	const n = 50000
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) fired %v of the time", frac)
	}
	if s.Bool(0) {
		t.Error("Bool(0) fired")
	}
	if !s.Bool(1.5) {
		t.Error("Bool(>1) should always fire")
	}
}

func TestZipfN(t *testing.T) {
	if NewZipf(17, 1).N() != 17 {
		t.Fatal("Zipf.N wrong")
	}
}

func TestZipfDrawInRange(t *testing.T) {
	z := NewZipf(5, 0.8)
	s := NewSource(31)
	for i := 0; i < 10000; i++ {
		if r := z.Draw(s); r < 0 || r >= 5 {
			t.Fatalf("Zipf.Draw = %d out of range", r)
		}
	}
}

func TestZipfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewZipf(0, ·) should panic")
		}
	}()
	NewZipf(0, 1)
}

func TestPerm(t *testing.T) {
	s := NewSource(37)
	p := s.Perm(10)
	seen := make([]bool, 10)
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("Perm produced invalid permutation %v", p)
		}
		seen[v] = true
	}
}

func TestLogisticShape(t *testing.T) {
	// A curve from 0.1 to 0.9 centred at 0.5.
	lo := Logistic(0, 0.1, 0.9, 0.5, 10)
	mid := Logistic(0.5, 0.1, 0.9, 0.5, 10)
	hi := Logistic(1, 0.1, 0.9, 0.5, 10)
	if !(lo < mid && mid < hi) {
		t.Fatalf("logistic not increasing: %v %v %v", lo, mid, hi)
	}
	if math.Abs(mid-0.5) > 1e-9 {
		t.Fatalf("logistic midpoint = %v, want 0.5", mid)
	}
	if lo < 0.1 || hi > 0.9 {
		t.Fatalf("logistic escaped [floor, ceil]: %v %v", lo, hi)
	}
}

func TestLinearClamps(t *testing.T) {
	if v := Linear(-1, 2, 4); v != 2 {
		t.Errorf("Linear(-1) = %v, want 2", v)
	}
	if v := Linear(2, 2, 4); v != 4 {
		t.Errorf("Linear(2) = %v, want 4", v)
	}
	if v := Linear(0.5, 2, 4); v != 3 {
		t.Errorf("Linear(0.5) = %v, want 3", v)
	}
}

// Property: Uniform(lo, hi) always lands in [lo, hi) for lo < hi.
func TestUniformProperty(t *testing.T) {
	s := NewSource(41)
	f := func(a, b float64, n uint8) bool {
		lo, hi := a, b
		if !(lo < hi) || math.IsNaN(lo) || math.IsInf(hi-lo, 0) {
			return true // skip degenerate inputs
		}
		v := s.Uniform(lo, hi)
		return v >= lo && v < hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: Categorical with a single positive weight always returns 0.
func TestCategoricalSingletonProperty(t *testing.T) {
	s := NewSource(43)
	f := func(w float64) bool {
		if !(w > 0) || math.IsInf(w, 0) {
			return true
		}
		return s.Categorical([]float64{w}) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
