// Package dist provides the deterministic randomness substrate for the
// reproduction: a splittable pseudo-random source addressed by string
// labels, plus the distribution families the ecosystem generator and the
// network model draw from (power laws, log-normals, categorical mixes,
// logistic adoption curves).
//
// Everything in the library derives its randomness from a single root
// seed through labelled splits, so a given (seed, label path) always
// yields the same stream regardless of evaluation order. That property
// is what makes every figure in EXPERIMENTS.md bit-reproducible.
package dist

import (
	"hash/fnv"
	"math"
)

// Source is a deterministic pseudo-random stream. It implements a
// SplitMix64-style generator: tiny state, good equidistribution, and
// cheap label-based splitting. The zero value is a valid stream seeded
// with zero.
type Source struct {
	seed  uint64 // immutable; the basis for Split
	state uint64 // advances with each draw
}

// NewSource returns a stream seeded with seed.
func NewSource(seed uint64) *Source { return &Source{seed: seed, state: seed} }

// Split derives an independent child stream from the parent's seed and a
// label. Splitting does not advance the parent, and children are derived
// from the parent's original seed, so the set of children is stable no
// matter how many values the parent has produced.
func (s *Source) Split(label string) *Source {
	h := fnv.New64a()
	h.Write([]byte(label))
	child := mix(s.seed ^ h.Sum64())
	return &Source{seed: child, state: child}
}

// Splitf is Split for integer-indexed children, avoiding the cost and
// allocation of formatting labels at call sites.
func (s *Source) Splitf(label string, i int) *Source {
	h := fnv.New64a()
	h.Write([]byte(label))
	var buf [8]byte
	v := uint64(i)
	for b := 0; b < 8; b++ {
		buf[b] = byte(v >> (8 * b))
	}
	h.Write(buf[:])
	child := mix(s.seed ^ h.Sum64())
	return &Source{seed: child, state: child}
}

// mix is the SplitMix64 finalizer.
func mix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 uniformly random bits.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	return mix(s.state)
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("dist: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Bool returns true with probability p (clamped to [0, 1]).
func (s *Source) Bool(p float64) bool {
	return s.Float64() < p
}

// Norm returns a standard normal variate via the Box-Muller transform.
func (s *Source) Norm() float64 {
	// Guard against log(0).
	u1 := s.Float64()
	for u1 == 0 {
		u1 = s.Float64()
	}
	u2 := s.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// LogNormal returns exp(N(mu, sigma)).
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*s.Norm())
}

// Exponential returns an exponential variate with the given mean.
func (s *Source) Exponential(mean float64) float64 {
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	return -mean * math.Log(u)
}

// Pareto returns a Pareto(xm, alpha) variate: xm * U^(-1/alpha).
// Heavy-tailed; used for publisher view-hour scale.
func (s *Source) Pareto(xm, alpha float64) float64 {
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	return xm * math.Pow(u, -1/alpha)
}

// Uniform returns a uniform value in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// Perm returns a deterministic pseudo-random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Categorical draws an index from a discrete distribution given by
// non-negative weights. Zero-total weights panic: the caller has
// constructed an impossible choice.
func (s *Source) Categorical(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("dist: negative categorical weight")
		}
		total += w
	}
	if total == 0 {
		panic("dist: zero-total categorical weights")
	}
	x := s.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Zipf draws ranks in [0, n) with probability proportional to
// 1/(rank+1)^exponent. Used for video popularity within catalogues.
type Zipf struct {
	cum []float64
}

// NewZipf precomputes the cumulative mass for n ranks with the given
// exponent. It panics if n <= 0.
func NewZipf(n int, exponent float64) *Zipf {
	if n <= 0 {
		panic("dist: Zipf with non-positive n")
	}
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), exponent)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return &Zipf{cum: cum}
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cum) }

// Draw samples a rank using randomness from s.
func (z *Zipf) Draw(s *Source) int {
	x := s.Float64()
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Logistic evaluates the logistic adoption curve
//
//	floor + (ceil-floor) / (1 + exp(-steepness*(t-midpoint)))
//
// for t in [0, 1] study-fraction coordinates. The ecosystem generator
// expresses every longitudinal trend in the paper (DASH growth, HDS
// decline, set-top adoption, ...) as one of these.
func Logistic(t, floor, ceil, midpoint, steepness float64) float64 {
	return floor + (ceil-floor)/(1+math.Exp(-steepness*(t-midpoint)))
}

// Linear evaluates the straight-line trend from v0 at t=0 to v1 at t=1,
// clamping t into [0, 1].
func Linear(t, v0, v1 float64) float64 {
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	return v0 + (v1-v0)*t
}
