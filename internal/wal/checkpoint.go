package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"vmp/internal/obs"
	"vmp/internal/telemetry/record"
	"vmp/internal/wire"
)

// On-disk checkpoint layout. A checkpoint is the published generation
// made durable, so the segments whose records it covers can be
// deleted without ever shrinking what a replay reconstructs:
//
//	"VWCK"          — magic
//	u8 version      — 1
//	uvarint epoch   — engine epoch that published the generation
//	uvarint total   — record count across all frames
//	uvarint nshards — shard count at commit time
//	nshards×uvarint — per-shard WAL bounds: segment records with
//	                  seq <= bounds[i] are in this checkpoint
//	frames          — the generation's records as wire binary frames
//	u32le crc32c    — Castagnoli CRC over every preceding byte
//
// The file is written to a temp name, fsynced, renamed into place,
// and the directory fsynced — so a crash anywhere in Commit leaves
// either the old checkpoint or the new one, both intact. Checkpoint
// names carry a WAL-internal monotonic ID (engine epochs restart at
// zero each boot, so they cannot order files across restarts); the
// epoch inside is metadata.
const (
	ckptVersion      = 1
	ckptHeaderMin    = 5
	ckptChunkRecords = 8192
)

var ckptMagic = []byte{'V', 'W', 'C', 'K'}

// ckptInfo is one on-disk checkpoint file.
type ckptInfo struct {
	id   uint64
	path string
}

// ckptHeader is a parsed checkpoint minus its frames.
type ckptHeader struct {
	epoch  int64
	total  uint64
	bounds []uint64
	frames []byte // the wire frames region, CRC already verified
}

// parseCheckpoint validates data's CRC and parses the header. Any
// mismatch is a hard error: a checkpoint is written atomically, so
// unlike a segment tail there is no benign torn form.
func parseCheckpoint(data []byte) (*ckptHeader, error) {
	if len(data) < ckptHeaderMin+4 {
		return nil, fmt.Errorf("wal: checkpoint too short (%d bytes)", len(data))
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("wal: checkpoint CRC mismatch")
	}
	if !bytes.Equal(body[:4], ckptMagic) {
		return nil, fmt.Errorf("wal: bad checkpoint magic %q", body[:4])
	}
	if body[4] != ckptVersion {
		return nil, fmt.Errorf("wal: unknown checkpoint version %d", body[4])
	}
	rest := body[ckptHeaderMin:]
	var h ckptHeader
	u, n := binary.Uvarint(rest)
	if n <= 0 {
		return nil, fmt.Errorf("wal: checkpoint: bad epoch varint")
	}
	h.epoch = int64(u)
	rest = rest[n:]
	if h.total, n = binary.Uvarint(rest); n <= 0 {
		return nil, fmt.Errorf("wal: checkpoint: bad total varint")
	}
	rest = rest[n:]
	nshards, n := binary.Uvarint(rest)
	if n <= 0 || nshards > 1<<16 {
		return nil, fmt.Errorf("wal: checkpoint: bad shard count")
	}
	rest = rest[n:]
	h.bounds = make([]uint64, nshards)
	for i := range h.bounds {
		if h.bounds[i], n = binary.Uvarint(rest); n <= 0 {
			return nil, fmt.Errorf("wal: checkpoint: bad bound varint for shard %d", i)
		}
		rest = rest[n:]
	}
	h.frames = rest
	return &h, nil
}

// loadCheckpointBounds reads just what Open needs from the latest
// checkpoint: its per-shard bounds, CRC-verified.
func loadCheckpointBounds(path string) ([]uint64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	h, err := parseCheckpoint(data)
	if err != nil {
		return nil, fmt.Errorf("%w (%s)", err, path)
	}
	return h.bounds, nil
}

// replayCheckpoint streams a checkpoint's records through fn one frame
// at a time. The slice passed to fn obeys dec's reuse contract.
func replayCheckpoint(path string, dec *wire.Decoder, fn func(recs []record.ViewRecord) error) (*ckptHeader, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	h, err := parseCheckpoint(data)
	if err != nil {
		return nil, fmt.Errorf("%w (%s)", err, path)
	}
	frames := h.frames
	delivered := uint64(0)
	for len(frames) > 0 {
		if len(frames) < 4 {
			return nil, fmt.Errorf("wal: checkpoint %s: truncated frame length", path)
		}
		n := int64(binary.LittleEndian.Uint32(frames))
		if n > wire.MaxFrameBytes || int64(len(frames))-4 < n {
			return nil, fmt.Errorf("wal: checkpoint %s: bad frame length %d", path, n)
		}
		recs, err := dec.DecodeAll(bytes.NewReader(frames[:4+n]))
		if err != nil {
			return nil, fmt.Errorf("wal: checkpoint %s: %w", path, err)
		}
		if err := fn(recs); err != nil {
			return nil, err
		}
		delivered += uint64(len(recs))
		frames = frames[4+n:]
	}
	if delivered != h.total {
		return nil, fmt.Errorf("wal: checkpoint %s: frames hold %d records, header declares %d", path, delivered, h.total)
	}
	return h, nil
}

// encodeCheckpoint builds the full checkpoint file image.
func encodeCheckpoint(epoch int64, records []record.ViewRecord, bounds []uint64) ([]byte, error) {
	enc := wire.NewEncoder()
	buf := make([]byte, 0, 1<<16+len(records)*32)
	buf = append(buf, ckptMagic...)
	buf = append(buf, ckptVersion)
	buf = binary.AppendUvarint(buf, uint64(epoch))
	buf = binary.AppendUvarint(buf, uint64(len(records)))
	buf = binary.AppendUvarint(buf, uint64(len(bounds)))
	for _, b := range bounds {
		buf = binary.AppendUvarint(buf, b)
	}
	for len(records) > 0 {
		n := len(records)
		if n > ckptChunkRecords {
			n = ckptChunkRecords
		}
		var err error
		if buf, err = enc.AppendFrame(buf, records[:n]); err != nil {
			return nil, err
		}
		records = records[n:]
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli)), nil
}

// Commit folds the log forward to a published generation: it writes
// records (the generation's full contents) as a new checkpoint, then
// deletes every segment whose records the checkpoint covers — the
// epoch-boundary truncation. bounds must be the Bounds() reading the
// engine took under its admission lock before flushing the epoch, so
// "covered" is exact: seq <= bounds[i] is in records, seq > bounds[i]
// is not.
//
// Commit is degradation-safe: any failure leaves the previous
// checkpoint and all segments intact, so the log keeps growing but
// loses nothing — callers count the error and carry on. Commits are
// expected to be serialized by the caller (the engine's snapshot
// lock); appends may run concurrently.
func (l *Log) Commit(epoch int64, records []record.ViewRecord, bounds []uint64, parent obs.SpanID) error {
	sp := l.tracer.Start("wal.truncate", parent)
	truncated, err := l.commit(epoch, records, bounds)
	if err != nil {
		sp.End(obs.KV("error", 1))
		return err
	}
	sp.End(obs.KV("epoch", epoch), obs.KV("records", int64(len(records))), obs.KV("truncated", truncated))
	return nil
}

func (l *Log) commit(epoch int64, records []record.ViewRecord, bounds []uint64) (int64, error) {
	l.mu.Lock()
	if len(bounds) != len(l.shards) {
		l.mu.Unlock()
		return 0, fmt.Errorf("wal: commit with %d bounds for %d shards", len(bounds), len(l.shards))
	}
	if l.lastCommit != nil && boundsEqual(bounds, l.lastCommit) {
		// Nothing appended since the last commit: the checkpoint on
		// disk already describes this generation. Idle epochs must not
		// rewrite it.
		l.mu.Unlock()
		return 0, nil
	}
	id := l.nextCkptID
	l.mu.Unlock()

	// Build and persist the new checkpoint without holding mu —
	// appends continue while the generation is written out.
	img, err := encodeCheckpoint(epoch, records, bounds)
	if err != nil {
		return 0, fmt.Errorf("wal: encoding checkpoint: %w", err)
	}
	path := filepath.Join(l.dir, fmt.Sprintf("checkpoint-%016x.ckpt", id))
	if err := writeFileDurable(path, img); err != nil {
		return 0, err
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	old := l.ckpts
	l.ckpts = []ckptInfo{{id: id, path: path}}
	l.nextCkptID = id + 1
	l.cpBounds = append([]uint64(nil), bounds...)
	l.lastCommit = append([]uint64(nil), bounds...)

	// Everything at or below the bounds is durable in the checkpoint;
	// drop the segments (and superseded checkpoints) that carried it.
	// Removal failures are reported but cannot lose data — replay
	// filters seq <= bounds anyway.
	truncated := int64(0)
	var firstErr error
	for i, sh := range l.shards {
		keep := sh.segs[:0]
		for j, seg := range sh.segs {
			if seg.last > bounds[i] || seg.last < seg.first {
				keep = append(keep, seg)
				continue
			}
			if j == len(sh.segs)-1 && sh.f != nil {
				// The active segment is fully covered: close it so the
				// next append starts a fresh file above the bound.
				err := sh.f.Close()
				sh.f = nil
				sh.size = 0
				if err != nil && firstErr == nil {
					firstErr = fmt.Errorf("wal: closing shard %d segment: %w", i, err)
				}
			}
			if err := os.Remove(seg.path); err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("wal: %w", err)
				}
				keep = append(keep, seg)
				continue
			}
			truncated += int64(seg.last - seg.first + 1)
		}
		sh.segs = keep
	}
	for _, st := range l.stale {
		for _, seg := range st.segs {
			if seg.last >= seg.first {
				truncated += int64(seg.last - seg.first + 1)
			}
		}
		if err := os.RemoveAll(st.dir); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("wal: %w", err)
		}
	}
	l.stale = nil
	for _, c := range old {
		if err := os.Remove(c.path); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("wal: %w", err)
		}
	}
	l.truncated.Add(truncated)
	return truncated, firstErr
}

func boundsEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// writeFileDurable writes data at path atomically and durably: temp
// file, fsync, rename, directory fsync.
func writeFileDurable(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close() // the write error is the one worth reporting
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close() // the sync error is the one worth reporting
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	dir, err := os.Open(filepath.Dir(path))
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	syncErr := dir.Sync()
	if err := dir.Close(); err != nil && syncErr == nil {
		syncErr = err
	}
	if syncErr != nil {
		return fmt.Errorf("wal: syncing directory: %w", syncErr)
	}
	return nil
}
