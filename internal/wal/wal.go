// Package wal is the serving plane's durability subsystem: a per-shard
// append-only write-ahead log in front of internal/live's in-memory
// shard queues, so a crash between admission and the next epoch cannot
// lose a batch the daemon acknowledged.
//
// Each admitted sub-batch is appended to its shard's active segment as
// a length-prefixed, CRC32C-checksummed record carrying a per-shard
// monotonic sequence number and the batch itself as internal/wire
// binary frames — the same encoding the ingest wire path speaks, and
// the same monotonic-sequence framing discipline the obs event
// pipeline uses to make a truncated prefix detectable. Appends are
// made durable by a configurable fsync policy: PolicyBatch syncs
// before the append returns (an acknowledged batch survives kill -9
// and power loss), PolicyInterval group-commits on a background
// cadence (ack precedes durability by at most one interval), and
// PolicyOff never syncs (the OS page cache still survives a process
// kill, but not a kernel crash).
//
// Each published epoch folds the log forward: Commit writes the new
// generation as a checkpoint (atomically, via tmp + rename), then
// truncates every segment whose records the checkpoint covers. On
// boot, Replay streams the latest checkpoint and every surviving
// segment record back through the caller — in vmpd, the normal
// Engine.Ingest path, where telemetry.CanonicalSort makes replay
// order-insensitive — before the HTTP listener opens. A torn final
// record (the expected aftermath of a crash mid-append) stops a
// shard's replay cleanly at the last good sequence, logged and
// counted, never with a panic. DESIGN.md §11 specifies the formats
// and the crash matrix.
package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"sync"

	"vmp/internal/obs"
	"vmp/internal/simclock"
	"vmp/internal/telemetry/record"
	"vmp/internal/wire"
)

// ErrClosed is returned by appends after Close.
var ErrClosed = errors.New("wal: log closed")

// Policy selects when appended records are fsynced.
type Policy int

const (
	// PolicyBatch syncs every shard file a batch touched before
	// AppendBatch returns: an acknowledged batch is durable against
	// kill -9 and power loss.
	PolicyBatch Policy = iota
	// PolicyInterval group-commits: appends return after write(), and
	// a background loop syncs dirty shard files every SyncEvery. The
	// acknowledgement-to-durability window is at most one interval.
	PolicyInterval
	// PolicyOff never syncs. Appends still write() synchronously, so
	// the data survives a process kill in the OS page cache; a kernel
	// crash or power loss inside the cache window loses it.
	PolicyOff
)

// ParsePolicy parses the -wal-fsync flag vocabulary.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "batch":
		return PolicyBatch, nil
	case "interval":
		return PolicyInterval, nil
	case "off":
		return PolicyOff, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want batch, interval, or off)", s)
}

func (p Policy) String() string {
	switch p {
	case PolicyBatch:
		return "batch"
	case PolicyInterval:
		return "interval"
	case PolicyOff:
		return "off"
	}
	return "unknown"
}

// Options parameterizes a Log. The zero value of every field gets a
// sensible default: 8 shards, PolicyBatch, 25 ms group-commit
// cadence, 16 MiB segments, the wall clock, a fresh registry, and a
// disabled tracer.
type Options struct {
	Dir          string         // log directory, created if absent
	Shards       int            // shard count for new appends
	Policy       Policy         // fsync policy
	SyncEvery    time.Duration  // group-commit cadence for PolicyInterval
	SegmentBytes int64          // active-segment rotation threshold
	ChunkRecords int            // records per appended record (frame)
	Clock        simclock.Clock // time source for fsync latency
	Metrics      *obs.Registry  // counter/histogram destination
	Trace        *obs.Tracer    // span/event destination (nil = disabled)
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = 8
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = 25 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 16 << 20
	}
	if o.ChunkRecords <= 0 || o.ChunkRecords > wire.MaxFrameRecords {
		o.ChunkRecords = 1 << 14
	}
	if o.Clock == nil {
		o.Clock = simclock.Wall()
	}
	if o.Metrics == nil {
		o.Metrics = obs.NewRegistry()
	}
	if o.Trace == nil {
		t := obs.NewTracer(o.Clock, 256)
		t.SetEnabled(false)
		o.Trace = t
	}
	return o
}

// segmentInfo is one segment file's place in a shard's log. Records in
// a segment carry the contiguous sequences [first, last]; last < first
// means the segment is empty.
type segmentInfo struct {
	path  string
	first uint64
	last  uint64
}

// shardLog is one shard's append state: its closed and active
// segments, the open handle on the active one, and the next sequence
// to assign. All fields are guarded by the owning Log's mu.
type shardLog struct {
	idx     int
	dir     string
	segs    []segmentInfo
	f       *os.File // active segment handle; nil when no segment is open
	size    int64
	dirty   bool // written since the last fsync
	nextSeq uint64
}

// staleShard is a shard directory left over from a previous run with a
// higher shard count. Replay still reads it; the first Commit removes
// it — by then its records are covered by the published generation.
type staleShard struct {
	idx  int
	dir  string
	segs []segmentInfo
}

// Log is a per-shard write-ahead log rooted at one directory. Append
// methods are safe for concurrent use with Sync, Commit, and Replay;
// the live engine additionally serializes AppendBatch and Bounds under
// its admission lock, which is what makes a Bounds reading coherent
// with the batches flushed into an epoch.
type Log struct {
	opts   Options
	dir    string
	clock  simclock.Clock
	tracer *obs.Tracer

	mu         sync.Mutex
	shards     []*shardLog
	stale      []staleShard
	ckpts      []ckptInfo // on-disk checkpoints, ascending by id
	nextCkptID uint64
	cpBounds   []uint64 // per-shard bounds of the latest checkpoint
	lastCommit []uint64 // bounds of the last Commit (skip no-op commits)
	closed     bool

	quit chan struct{} // stops the PolicyInterval sync loop
	done chan struct{}

	enc *wire.Encoder
	buf []byte //vmp:scratch record encode buffer, reused across appends

	appended  *obs.Counter // wal_appended_total: records appended
	replayed  *obs.Counter // wal_replayed_total: records replayed
	truncated *obs.Counter // wal_truncated_total: log entries (sequences) truncated
	fsyncs    *obs.Counter // wal_fsync_total: fsync syscalls issued
	tornTails *obs.Counter // wal_torn_tail_total: torn tails recovered
	errors    *obs.Counter // wal_errors_total: background sync failures
	fsyncSec  *obs.Histogram
	backSegs  *obs.Gauge // wal_backlog_segments: live segment files
	backBytes *obs.Gauge // wal_backlog_bytes: bytes not yet folded into a checkpoint
}

// Open opens (creating if needed) the log rooted at opts.Dir: it
// loads the latest checkpoint's bounds, indexes every shard's
// segments, scans each shard's final segment to find its last durable
// sequence — truncating any torn tail left by a crash mid-append, so
// new appends never land after garbage — and starts the group-commit
// loop when the policy asks for one. Open does not replay; call
// Replay before the first append to stream surviving records back.
func Open(opts Options) (*Log, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, errors.New("wal: Options.Dir is required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{
		opts:      opts,
		dir:       opts.Dir,
		clock:     opts.Clock,
		tracer:    opts.Trace,
		enc:       wire.NewEncoder(),
		appended:  opts.Metrics.Counter("wal_appended_total"),
		replayed:  opts.Metrics.Counter("wal_replayed_total"),
		truncated: opts.Metrics.Counter("wal_truncated_total"),
		fsyncs:    opts.Metrics.Counter("wal_fsync_total"),
		tornTails: opts.Metrics.Counter("wal_torn_tail_total"),
		errors:    opts.Metrics.Counter("wal_errors_total"),
		fsyncSec:  opts.Metrics.Histogram("wal_fsync_seconds", []float64{0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5}),
		backSegs:  opts.Metrics.Gauge("wal_backlog_segments"),
		backBytes: opts.Metrics.Gauge("wal_backlog_bytes"),
	}
	if err := l.scanDir(); err != nil {
		return nil, err
	}
	if opts.Policy == PolicyInterval {
		l.quit = make(chan struct{})
		l.done = make(chan struct{})
		go l.syncLoop()
	}
	return l, nil
}

// scanDir indexes checkpoints and shard segments, removes leftover
// checkpoint temp files, and recovers each shard's tail.
func (l *Log) scanDir() error {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	var shardDirs []int
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasPrefix(name, "checkpoint-") && strings.HasSuffix(name, ".tmp"):
			// A crash mid-checkpoint leaves a temp file; the rename
			// never happened, so it holds nothing the log needs.
			if err := os.Remove(filepath.Join(l.dir, name)); err != nil {
				return fmt.Errorf("wal: removing stale %s: %w", name, err)
			}
		case strings.HasPrefix(name, "checkpoint-") && strings.HasSuffix(name, ".ckpt"):
			id, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "checkpoint-"), ".ckpt"), 16, 64)
			if err != nil {
				return fmt.Errorf("wal: bad checkpoint name %q", name)
			}
			l.ckpts = append(l.ckpts, ckptInfo{id: id, path: filepath.Join(l.dir, name)})
		case e.IsDir() && strings.HasPrefix(name, "shard-"):
			idx, err := strconv.Atoi(strings.TrimPrefix(name, "shard-"))
			if err != nil || idx < 0 {
				return fmt.Errorf("wal: bad shard directory %q", name)
			}
			shardDirs = append(shardDirs, idx)
		}
	}
	sort.Slice(l.ckpts, func(i, j int) bool { return l.ckpts[i].id < l.ckpts[j].id })
	if n := len(l.ckpts); n > 0 {
		l.nextCkptID = l.ckpts[n-1].id + 1
		bounds, err := loadCheckpointBounds(l.ckpts[n-1].path)
		if err != nil {
			return err
		}
		l.cpBounds = bounds
		l.lastCommit = append([]uint64(nil), bounds...)
	}

	l.shards = make([]*shardLog, l.opts.Shards)
	for i := range l.shards {
		l.shards[i] = &shardLog{idx: i, dir: l.shardDir(i), nextSeq: 1}
	}
	sort.Ints(shardDirs)
	for _, idx := range shardDirs {
		dir := l.shardDir(idx)
		segs, err := l.scanShard(idx, dir)
		if err != nil {
			return err
		}
		if idx < len(l.shards) {
			sh := l.shards[idx]
			sh.segs = segs
			if n := len(segs); n > 0 {
				sh.nextSeq = segs[n-1].last + 1
			}
			if b := l.bound(idx); sh.nextSeq <= b {
				// Every segment was truncated past this point; sequences
				// must stay above the checkpoint bound or replay would
				// filter fresh appends out.
				sh.nextSeq = b + 1
			}
		} else {
			l.stale = append(l.stale, staleShard{idx: idx, dir: dir, segs: segs})
		}
	}
	return nil
}

// bound returns the latest checkpoint's bound for shard idx (0 when
// the checkpoint predates the shard).
func (l *Log) bound(idx int) uint64 {
	if idx < len(l.cpBounds) {
		return l.cpBounds[idx]
	}
	return 0
}

func (l *Log) shardDir(idx int) string {
	return filepath.Join(l.dir, fmt.Sprintf("shard-%04d", idx))
}

// scanShard indexes one shard directory's segments and recovers the
// final segment's tail: its records are scanned (CRC-checked, frames
// skipped), a torn tail is physically truncated away — counted and
// logged as a wal_torn_tail event — and the segment's last sequence is
// established from what survives.
func (l *Log) scanShard(idx int, dir string) ([]segmentInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var segs []segmentInfo
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".wal") {
			continue
		}
		first, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "seg-"), ".wal"), 16, 64)
		if err != nil {
			return nil, fmt.Errorf("wal: bad segment name %q in %s", name, dir)
		}
		segs = append(segs, segmentInfo{path: filepath.Join(dir, name), first: first})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })
	for i := range segs {
		if i+1 < len(segs) {
			// Closed segments hold the contiguous run up to the next
			// segment's first sequence; replay verifies record by record.
			if segs[i+1].first <= segs[i].first {
				return nil, fmt.Errorf("wal: shard %d: segments %s and %s overlap", idx, segs[i].path, segs[i+1].path)
			}
			segs[i].last = segs[i+1].first - 1
			continue
		}
		last, err := l.recoverTail(idx, segs[i])
		if err != nil {
			return nil, err
		}
		segs[i].last = last
	}
	return segs, nil
}

// recoverTail scans the final segment of a shard, truncates a torn
// tail, and returns the last durable sequence (first-1 when empty).
func (l *Log) recoverTail(idx int, seg segmentInfo) (uint64, error) {
	data, err := os.ReadFile(seg.path)
	if err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	last := seg.first - 1
	torn, err := DecodeSegment(data, nil, func(seq uint64, _ []record.ViewRecord) error {
		if seq != last+1 {
			return fmt.Errorf("wal: shard %d %s: sequence %d after %d", idx, seg.path, seq, last)
		}
		last = seq
		return nil
	})
	if err != nil {
		return 0, err
	}
	if torn != nil {
		if err := os.Truncate(seg.path, torn.Off); err != nil {
			return 0, fmt.Errorf("wal: truncating torn tail of %s: %w", seg.path, err)
		}
		l.tornTails.Add(1)
		l.tracer.Emit("wal_torn_tail",
			obs.KV("shard", int64(idx)), obs.KV("offset", torn.Off), obs.KV("last_seq", int64(last)))
	}
	return last, nil
}

// Bounds returns the last sequence assigned to each shard. The live
// engine reads it under its admission lock while cutting an epoch, so
// the result is exact: every record with seq <= Bounds()[i] is in the
// generation being published, and nothing beyond is.
func (l *Log) Bounds() []uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	bounds := make([]uint64, len(l.shards))
	for i, sh := range l.shards {
		bounds[i] = sh.nextSeq - 1
	}
	return bounds
}

// AppendBatch durably appends each non-empty parts[i] to shard
// i mod Shards. Parts larger than ChunkRecords are split across
// records; under PolicyBatch every touched file is fsynced before the
// call returns. An error means nothing should be acknowledged: the
// caller rejects the batch and the client retries it whole.
//
//vmp:hotpath
func (l *Log) AppendBatch(parts [][]record.ViewRecord, parent obs.SpanID) error {
	sp := l.tracer.Start("wal.append", parent)
	total := int64(0)
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		sp.End(obs.KV("closed", 1))
		return ErrClosed
	}
	for i, part := range parts {
		if len(part) == 0 {
			continue
		}
		if err := l.appendLocked(l.shards[i%len(l.shards)], part); err != nil {
			l.mu.Unlock()
			sp.End(obs.KV("error", 1))
			return err
		}
		total += int64(len(part))
	}
	if l.opts.Policy == PolicyBatch {
		if err := l.syncLocked(sp.ID()); err != nil {
			l.mu.Unlock()
			sp.End(obs.KV("error", 1))
			return err
		}
	}
	l.mu.Unlock()
	l.appended.Add(total)
	sp.End(obs.KV("records", total))
	return nil
}

// appendLocked writes part to sh as one or more records. Caller holds
// mu.
//
//vmp:hotpath
func (l *Log) appendLocked(sh *shardLog, part []record.ViewRecord) error {
	for len(part) > 0 {
		n := len(part)
		if n > l.opts.ChunkRecords {
			n = l.opts.ChunkRecords
		}
		if sh.f == nil {
			if err := l.openSegment(sh); err != nil { //vmp:alloc segment create/rotate is amortized over SegmentBytes of appends
				return err
			}
		}
		seq := sh.nextSeq
		buf, err := appendRecord(l.buf[:0], l.enc, seq, part[:n])
		l.buf = buf
		if err != nil {
			return err
		}
		if _, err := sh.f.Write(buf); err != nil {
			// A partial write leaves a torn tail; recovery on the next
			// open truncates it, so the sequence is not consumed.
			return fmt.Errorf("wal: shard %d append: %w", sh.idx, err)
		}
		sh.nextSeq = seq + 1
		sh.size += int64(len(buf))
		sh.dirty = true
		sh.segs[len(sh.segs)-1].last = seq
		part = part[n:]
		if sh.size >= l.opts.SegmentBytes {
			if err := l.rotateLocked(sh); err != nil { //vmp:alloc segment create/rotate is amortized over SegmentBytes of appends
				return err
			}
		}
	}
	return nil
}

// openSegment creates and opens a fresh active segment named after
// the next sequence the shard will assign.
func (l *Log) openSegment(sh *shardLog) error {
	if err := os.MkdirAll(sh.dir, 0o755); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	path := filepath.Join(sh.dir, fmt.Sprintf("seg-%016x.wal", sh.nextSeq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	sh.f = f
	sh.size = 0
	sh.segs = append(sh.segs, segmentInfo{path: path, first: sh.nextSeq, last: sh.nextSeq - 1})
	return nil
}

// rotateLocked closes the active segment so the next append starts a
// fresh one; a final sync flushes whatever the policy had not yet.
func (l *Log) rotateLocked(sh *shardLog) error {
	if sh.f == nil {
		return nil
	}
	if sh.dirty && l.opts.Policy != PolicyOff {
		if err := l.syncShard(sh); err != nil {
			return err
		}
	}
	err := sh.f.Close()
	sh.f = nil
	sh.size = 0
	if err != nil {
		return fmt.Errorf("wal: closing segment: %w", err)
	}
	return nil
}

// syncShard fsyncs one shard's active segment and clears its dirty
// flag. Caller holds mu.
func (l *Log) syncShard(sh *shardLog) error {
	start := l.clock.Now()
	if err := sh.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync shard %d: %w", sh.idx, err)
	}
	sh.dirty = false
	l.fsyncs.Add(1)
	l.fsyncSec.Observe(l.clock.Now().Sub(start).Seconds())
	return nil
}

// syncLocked fsyncs every dirty shard file under one wal.fsync span.
// Caller holds mu.
//
//vmp:hotpath
func (l *Log) syncLocked(parent obs.SpanID) error {
	sp := l.tracer.Start("wal.fsync", parent)
	n := int64(0)
	for _, sh := range l.shards {
		if sh.f == nil || !sh.dirty {
			continue
		}
		if err := l.syncShard(sh); err != nil {
			sp.End(obs.KV("error", 1))
			return err
		}
		n++
	}
	sp.End(obs.KV("files", n))
	return nil
}

// Backlog reports the log's replay debt: how many segment files exist
// (active and closed, across live and stale shards) and how many bytes
// they hold — everything a boot-time Replay would have to stream
// before the listener opens. Active segments report their tracked
// write offset; closed segments are stat'ed, and one that cannot be
// stat'ed (racing a concurrent Commit truncation) contributes its file
// to the count but no bytes.
func (l *Log) Backlog() (segments int, bytes int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	count := func(segs []segmentInfo, active *os.File, activeSize int64) {
		for i, seg := range segs {
			segments++
			if active != nil && i == len(segs)-1 {
				bytes += activeSize
				continue
			}
			if fi, err := os.Stat(seg.path); err == nil {
				bytes += fi.Size()
			}
		}
	}
	for _, sh := range l.shards {
		count(sh.segs, sh.f, sh.size)
	}
	for _, st := range l.stale {
		count(st.segs, nil, 0)
	}
	return segments, bytes
}

// PublishGauges refreshes the log's backlog gauges from Backlog. The
// obs sampler calls it on every sampling pass.
func (l *Log) PublishGauges() {
	segs, bytes := l.Backlog()
	l.backSegs.Set(int64(segs))
	l.backBytes.Set(bytes)
}

// Sync forces an fsync of every dirty shard file — the group-commit
// step, also usable directly by tests and shutdown paths.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked(0)
}

// syncLoop is the PolicyInterval group-commit daemon: every SyncEvery
// it fsyncs whatever the appenders dirtied. The ticker is operational
// heartbeat, not study time, so the real ticker is correct here —
// determinism-sensitive tests call Sync directly instead.
func (l *Log) syncLoop() {
	defer close(l.done)
	tick := time.NewTicker(l.opts.SyncEvery)
	defer tick.Stop()
	for {
		select {
		case <-l.quit:
			return
		case <-tick.C:
			if err := l.Sync(); err != nil {
				// The data is still in the OS cache and the next tick
				// retries; count it so operators see a sick disk.
				l.errors.Add(1)
				l.tracer.Emit("wal_sync_error")
			}
		}
	}
}

// Close stops the group-commit loop, syncs everything dirty, and
// closes the shard files. The log directory remains valid for a later
// Open. Close is idempotent; appends after it return ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	if l.quit != nil {
		close(l.quit)
		<-l.done
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var first error
	for _, sh := range l.shards {
		if sh.f == nil {
			continue
		}
		if sh.dirty && l.opts.Policy != PolicyOff {
			if err := l.syncShard(sh); err != nil && first == nil {
				first = err
			}
		}
		if err := sh.f.Close(); err != nil && first == nil {
			first = fmt.Errorf("wal: closing shard %d: %w", sh.idx, err)
		}
		sh.f = nil
	}
	return first
}
