package wal

import (
	"os"
	"testing"

	"vmp/internal/obs"
)

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

// TestBacklogAndGauges pins the self-measurement contract: Backlog
// reports the segment files and bytes a boot-time Replay would stream,
// PublishGauges mirrors it into the registry, and a covering Commit
// returns both to zero.
func TestBacklogAndGauges(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	l := openLog(t, dir, Options{Policy: PolicyBatch, Metrics: reg})

	if segs, bytes := l.Backlog(); segs != 0 || bytes != 0 {
		t.Fatalf("empty log backlog = %d segments, %d bytes", segs, bytes)
	}

	recs := genRecords(800)
	if err := l.AppendBatch(partition(recs, 4), 0); err != nil {
		t.Fatal(err)
	}
	segs, bytes := l.Backlog()
	if segs != 4 {
		t.Fatalf("backlog segments = %d, want one active per shard", segs)
	}
	if bytes <= 0 {
		t.Fatalf("backlog bytes = %d, want > 0", bytes)
	}

	l.PublishGauges()
	snap := reg.Snapshot()
	if snap.Gauges["wal_backlog_segments"] != int64(segs) {
		t.Fatalf("wal_backlog_segments gauge = %d, want %d", snap.Gauges["wal_backlog_segments"], segs)
	}
	if snap.Gauges["wal_backlog_bytes"] != bytes {
		t.Fatalf("wal_backlog_bytes gauge = %d, want %d", snap.Gauges["wal_backlog_bytes"], bytes)
	}

	// A covering commit truncates every segment the checkpoint covers,
	// so the backlog — and, after the next publish, the gauges — drop
	// to zero.
	if err := l.Commit(1, recs, l.Bounds(), 0); err != nil {
		t.Fatal(err)
	}
	if segs, bytes := l.Backlog(); segs != 0 || bytes != 0 {
		t.Fatalf("post-commit backlog = %d segments, %d bytes", segs, bytes)
	}
	l.PublishGauges()
	snap = reg.Snapshot()
	if snap.Gauges["wal_backlog_segments"] != 0 || snap.Gauges["wal_backlog_bytes"] != 0 {
		t.Fatalf("post-commit gauges = %+v", snap.Gauges)
	}
}

// TestBacklogCountsClosedSegments forces rotation with a tiny segment
// threshold and checks closed segments' on-disk bytes are counted, not
// just the active files' write offsets.
func TestBacklogCountsClosedSegments(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, dir, Options{Shards: 2, Policy: PolicyOff, SegmentBytes: 1024})
	if err := l.AppendBatch(partition(genRecords(2000), 2), 0); err != nil {
		t.Fatal(err)
	}
	files := segmentFiles(t, dir)
	segs, bytes := l.Backlog()
	if segs != len(files) {
		t.Fatalf("backlog segments = %d, want %d on-disk files", segs, len(files))
	}
	var disk int64
	for _, p := range files {
		disk += fileSize(t, p)
	}
	if bytes != disk {
		t.Fatalf("backlog bytes = %d, want %d on disk", bytes, disk)
	}
}
