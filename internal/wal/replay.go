package wal

import (
	"fmt"
	"os"

	"vmp/internal/obs"
	"vmp/internal/telemetry/record"
	"vmp/internal/wire"
)

// ReplayStats summarizes one Replay pass.
type ReplayStats struct {
	Epoch             int64 // engine epoch of the replayed checkpoint (0 if none)
	CheckpointRecords int64 // records delivered from the checkpoint
	SegmentRecords    int64 // records delivered from segments
	SkippedRecords    int64 // segment records filtered as checkpoint-covered
	TornTails         int   // shards whose final segment stopped at a torn record
}

// Delivered is the total record count handed to fn.
func (s ReplayStats) Delivered() int64 { return s.CheckpointRecords + s.SegmentRecords }

// Replay streams everything the log holds through fn: first the
// latest checkpoint (the last published generation), then every
// surviving segment record above the checkpoint's bounds, shard by
// shard in sequence order. In vmpd, fn is the normal Engine.Ingest
// path, and telemetry.CanonicalSort makes the delivery order
// irrelevant to the generation that results — which is what lets
// per-shard logs replay independently.
//
// The slice passed to fn is only valid for the duration of the call
// (it shares the decoder's reuse contract); fn must copy what it
// keeps, which Engine.Ingest does.
//
// A torn final record in a shard's last segment — the signature of a
// crash mid-append — stops that shard's replay cleanly at the last
// good sequence, counted and logged, never a panic or an error. Any
// other inconsistency (a sequence gap, corruption inside a closed
// segment, a CRC-valid record that does not parse) is a hard error:
// the log is not trustworthy and the operator must decide.
//
// Replay only reads; it may be run repeatedly (replay idempotence is
// pinned by tests) and concurrently with appends, though the boot
// sequence naturally runs it before the first append.
func (l *Log) Replay(fn func(recs []record.ViewRecord) error, parent obs.SpanID) (ReplayStats, error) {
	sp := l.tracer.Start("wal.replay", parent)
	stats, err := l.replay(fn)
	if err != nil {
		sp.End(obs.KV("error", 1))
		return stats, err
	}
	l.replayed.Add(stats.Delivered())
	sp.End(
		obs.KV("checkpoint_records", stats.CheckpointRecords),
		obs.KV("segment_records", stats.SegmentRecords),
		obs.KV("skipped", stats.SkippedRecords),
		obs.KV("torn_tails", int64(stats.TornTails)),
	)
	return stats, nil
}

// replaySource is one shard's worth of segment files to read.
type replaySource struct {
	idx   int
	bound uint64
	segs  []segmentInfo
}

func (l *Log) replay(fn func(recs []record.ViewRecord) error) (ReplayStats, error) {
	// Snapshot the file lists under mu; the reads below run unlocked.
	l.mu.Lock()
	var ckpt *ckptInfo
	if n := len(l.ckpts); n > 0 {
		c := l.ckpts[n-1]
		ckpt = &c
	}
	sources := make([]replaySource, 0, len(l.shards)+len(l.stale))
	for i, sh := range l.shards {
		sources = append(sources, replaySource{idx: i, bound: l.bound(i), segs: append([]segmentInfo(nil), sh.segs...)})
	}
	for _, st := range l.stale {
		sources = append(sources, replaySource{idx: st.idx, bound: l.bound(st.idx), segs: append([]segmentInfo(nil), st.segs...)})
	}
	l.mu.Unlock()

	var stats ReplayStats
	dec := wire.NewDecoder()
	if ckpt != nil {
		h, err := replayCheckpoint(ckpt.path, dec, func(recs []record.ViewRecord) error {
			stats.CheckpointRecords += int64(len(recs))
			return fn(recs)
		})
		if err != nil {
			return stats, err
		}
		stats.Epoch = h.epoch
	}
	for _, src := range sources {
		torn, err := l.replayShard(src, dec, fn, &stats)
		if err != nil {
			return stats, err
		}
		if torn {
			stats.TornTails++
		}
	}
	return stats, nil
}

// replayShard streams one shard's segments through fn in sequence
// order, filtering records the checkpoint already covers.
func (l *Log) replayShard(src replaySource, dec *wire.Decoder, fn func(recs []record.ViewRecord) error, stats *ReplayStats) (bool, error) {
	for si, seg := range src.segs {
		if seg.last < seg.first {
			continue // empty active segment
		}
		if seg.last <= src.bound {
			// Entirely covered by the checkpoint (Commit failed to
			// remove it, or crashed before it could): skip the file.
			stats.SkippedRecords += int64(seg.last - seg.first + 1)
			continue
		}
		data, err := os.ReadFile(seg.path)
		if err != nil {
			return false, fmt.Errorf("wal: %w", err)
		}
		expected := seg.first
		torn, err := DecodeSegment(data, dec, func(seq uint64, recs []record.ViewRecord) error {
			if seq != expected {
				return fmt.Errorf("wal: shard %d %s: sequence %d where %d expected", src.idx, seg.path, seq, expected)
			}
			expected++
			if seq <= src.bound {
				stats.SkippedRecords += int64(len(recs))
				return nil
			}
			stats.SegmentRecords += int64(len(recs))
			return fn(recs)
		})
		if err != nil {
			return false, err
		}
		if torn != nil {
			if si != len(src.segs)-1 {
				// A torn record below the tail cannot be a crashed
				// append: the next segment exists, so the log was
				// written past this point.
				return false, fmt.Errorf("wal: shard %d %s: %s at offset %d in a non-final segment", src.idx, seg.path, torn.Reason, torn.Off)
			}
			l.tracer.Emit("wal_replay_torn",
				obs.KV("shard", int64(src.idx)), obs.KV("offset", torn.Off), obs.KV("last_seq", int64(expected-1)))
			return true, nil
		}
	}
	return false, nil
}
