package wal

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"vmp/internal/obs"
	"vmp/internal/simclock"
	"vmp/internal/telemetry"
	"vmp/internal/telemetry/record"
)

// genRecords builds a deterministic record set with enough field
// variety to exercise the string table, CDN lists, and bitsets.
func genRecords(n int) []record.ViewRecord {
	base := time.Date(2012, 3, 1, 0, 0, 0, 0, time.UTC)
	cdnSets := [][]string{{"cdn-a"}, {"cdn-b"}, {"cdn-a", "cdn-b"}, nil}
	recs := make([]record.ViewRecord, n)
	for i := range recs {
		recs[i] = record.ViewRecord{
			Timestamp: base.Add(time.Duration(i%97) * 37 * time.Second),
			Publisher: fmt.Sprintf("pub-%02d", i%7),
			VideoID:   fmt.Sprintf("vid-%04d", i%101),
			URL:       fmt.Sprintf("http://v.example/%d/master.m3u8", i%11),
			Device:    []string{"Roku", "iPhone", "HTML5", "XBox"}[i%4],
			CDNs:      cdnSets[i%len(cdnSets)],
			Geo:       []string{"US-CA", "US-NY", "DE-BE"}[i%3],
			Live:      i%5 == 0,
			ViewSec:   float64(30 + i%900),
			Weight:    1 + float64(i%5),
		}
	}
	return recs
}

// partition splits records round-robin into the per-shard shape
// AppendBatch takes. Any deterministic partition works: replay order
// is canonicalized downstream.
func partition(recs []record.ViewRecord, shards int) [][]record.ViewRecord {
	parts := make([][]record.ViewRecord, shards)
	for i := range recs {
		parts[i%shards] = append(parts[i%shards], recs[i])
	}
	return parts
}

func openLog(t *testing.T, dir string, opts Options) *Log {
	t.Helper()
	opts.Dir = dir
	if opts.Shards == 0 {
		opts.Shards = 4
	}
	if opts.Clock == nil {
		opts.Clock = simclock.NewManual(simclock.StudyStart)
	}
	l, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = l.Close() })
	return l
}

// replayAll collects every replayed record (copied out of the
// decoder's reuse window).
func replayAll(t *testing.T, l *Log) ([]record.ViewRecord, ReplayStats) {
	t.Helper()
	var out []record.ViewRecord
	stats, err := l.Replay(func(recs []record.ViewRecord) error {
		out = append(out, recs...)
		return nil
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	return out, stats
}

// canonBytes renders a record multiset in canonical JSONL form — the
// equality the whole pipeline uses for "same data".
func canonBytes(t *testing.T, recs []record.ViewRecord) []byte {
	t.Helper()
	sorted := append([]record.ViewRecord(nil), recs...)
	telemetry.CanonicalSort(sorted)
	var buf bytes.Buffer
	if err := telemetry.EncodeJSONL(&buf, sorted); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func segmentFiles(t *testing.T, dir string) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, "shard-*", "seg-*.wal"))
	if err != nil {
		t.Fatal(err)
	}
	return paths
}

func checkpointFiles(t *testing.T, dir string) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, "checkpoint-*.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	return paths
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	l := openLog(t, dir, Options{Policy: PolicyBatch, Metrics: reg})
	recs := genRecords(1000)
	for lo := 0; lo < len(recs); lo += 100 {
		if err := l.AppendBatch(partition(recs[lo:lo+100], 4), 0); err != nil {
			t.Fatal(err)
		}
	}
	got, stats := replayAll(t, l)
	if stats.SegmentRecords != 1000 || stats.CheckpointRecords != 0 {
		t.Fatalf("stats = %+v, want 1000 segment records", stats)
	}
	if !bytes.Equal(canonBytes(t, got), canonBytes(t, recs)) {
		t.Fatalf("replay is not the appended multiset: %d records back, %d in", len(got), len(recs))
	}
	snap := reg.Snapshot()
	if snap.Counters["wal_appended_total"] != 1000 || snap.Counters["wal_replayed_total"] != 1000 {
		t.Fatalf("counters = %v", snap.Counters)
	}
	if snap.Counters["wal_fsync_total"] == 0 {
		t.Fatal("PolicyBatch appended without fsyncing")
	}
}

func TestReplayIdempotent(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, dir, Options{Policy: PolicyOff})
	recs := genRecords(600)
	if err := l.AppendBatch(partition(recs, 4), 0); err != nil {
		t.Fatal(err)
	}
	// Fold half into a checkpoint so both sources are exercised.
	bounds := l.Bounds()
	if err := l.Commit(1, recs, bounds, 0); err != nil {
		t.Fatal(err)
	}
	more := genRecords(200)
	if err := l.AppendBatch(partition(more, 4), 0); err != nil {
		t.Fatal(err)
	}
	first, _ := replayAll(t, l)
	second, _ := replayAll(t, l)
	b1, b2 := canonBytes(t, first), canonBytes(t, second)
	if !bytes.Equal(b1, b2) {
		t.Fatal("double replay is not byte-identical")
	}
	if want := canonBytes(t, append(append([]record.ViewRecord(nil), recs...), more...)); !bytes.Equal(b1, want) {
		t.Fatal("replay does not reconstruct checkpoint + tail records")
	}
}

func TestReopenContinuesSequences(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, dir, Options{Policy: PolicyBatch})
	recs := genRecords(400)
	if err := l.AppendBatch(partition(recs, 4), 0); err != nil {
		t.Fatal(err)
	}
	before := l.Bounds()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2 := openLog(t, dir, Options{Policy: PolicyBatch})
	if got := l2.Bounds(); !boundsEqual(got, before) {
		t.Fatalf("reopen bounds = %v, want %v", got, before)
	}
	more := genRecords(100)
	if err := l2.AppendBatch(partition(more, 4), 0); err != nil {
		t.Fatal(err)
	}
	got, _ := replayAll(t, l2)
	if len(got) != 500 {
		t.Fatalf("replayed %d records after reopen, want 500", len(got))
	}
}

func TestCommitCheckpointsAndTruncates(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	l := openLog(t, dir, Options{Policy: PolicyBatch, Metrics: reg})
	recs := genRecords(800)
	if err := l.AppendBatch(partition(recs, 4), 0); err != nil {
		t.Fatal(err)
	}
	bounds := l.Bounds()
	if err := l.Commit(1, recs, bounds, 0); err != nil {
		t.Fatal(err)
	}
	if segs := segmentFiles(t, dir); len(segs) != 0 {
		t.Fatalf("segments survive a covering commit: %v", segs)
	}
	if ckpts := checkpointFiles(t, dir); len(ckpts) != 1 {
		t.Fatalf("checkpoints = %v, want exactly one", ckpts)
	}
	// One AppendBatch = one log entry per non-empty shard part; the
	// truncation counter counts entries (sequences), not view records.
	if n := reg.Snapshot().Counters["wal_truncated_total"]; n != 4 {
		t.Fatalf("wal_truncated_total = %d, want 4 entries", n)
	}

	// An idle commit (same bounds) must not rewrite the checkpoint.
	ckpt1 := checkpointFiles(t, dir)
	if err := l.Commit(2, recs, bounds, 0); err != nil {
		t.Fatal(err)
	}
	ckpt2 := checkpointFiles(t, dir)
	if len(ckpt2) != 1 || ckpt1[0] != ckpt2[0] {
		t.Fatalf("idle commit rewrote the checkpoint: %v -> %v", ckpt1, ckpt2)
	}

	// Replay reconstructs the generation from the checkpoint alone.
	got, stats := replayAll(t, l)
	if stats.CheckpointRecords != 800 || stats.SegmentRecords != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if !bytes.Equal(canonBytes(t, got), canonBytes(t, recs)) {
		t.Fatal("checkpoint replay does not match the committed generation")
	}
	if stats.Epoch != 1 {
		t.Fatalf("replayed checkpoint epoch = %d, want 1", stats.Epoch)
	}

	// Appends after truncation must take sequences above the committed
	// bounds — otherwise replay would filter them out as covered.
	more := genRecords(100)
	if err := l.AppendBatch(partition(more, 4), 0); err != nil {
		t.Fatal(err)
	}
	got2, _ := replayAll(t, l)
	if len(got2) != 900 {
		t.Fatalf("post-commit append replay = %d records, want 900", len(got2))
	}
}

func TestCommitBoundsSurviveReopen(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, dir, Options{Policy: PolicyBatch})
	recs := genRecords(300)
	if err := l.AppendBatch(partition(recs, 4), 0); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(1, recs, l.Bounds(), 0); err != nil {
		t.Fatal(err)
	}
	before := l.Bounds()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// After truncation no segment files exist: the reopened log must
	// take its sequence floor from the checkpoint, or fresh appends
	// would be filtered as checkpoint-covered on the next replay.
	l2 := openLog(t, dir, Options{Policy: PolicyBatch})
	if got := l2.Bounds(); !boundsEqual(got, before) {
		t.Fatalf("reopen bounds = %v, want %v", got, before)
	}
	more := genRecords(150)
	if err := l2.AppendBatch(partition(more, 4), 0); err != nil {
		t.Fatal(err)
	}
	got, stats := replayAll(t, l2)
	if stats.SkippedRecords != 0 {
		t.Fatalf("fresh appends were filtered as covered: %+v", stats)
	}
	if len(got) != 450 {
		t.Fatalf("replayed %d records, want 450", len(got))
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation on nearly every append.
	l := openLog(t, dir, Options{Shards: 2, Policy: PolicyOff, SegmentBytes: 1024})
	recs := genRecords(2000)
	for lo := 0; lo < len(recs); lo += 100 {
		if err := l.AppendBatch(partition(recs[lo:lo+100], 2), 0); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(segmentFiles(t, dir)); n < 4 {
		t.Fatalf("%d segment files under a 1 KiB rotation threshold, expected several", n)
	}
	got, _ := replayAll(t, l)
	if !bytes.Equal(canonBytes(t, got), canonBytes(t, recs)) {
		t.Fatal("multi-segment replay is not the appended multiset")
	}
}

func TestShardCountShrinkReplaysStaleDirs(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, dir, Options{Shards: 8, Policy: PolicyBatch})
	recs := genRecords(640)
	if err := l.AppendBatch(partition(recs, 8), 0); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen narrower: shards 4..7 become stale directories. Their
	// records still replay, and the first commit retires them.
	l2 := openLog(t, dir, Options{Shards: 4, Policy: PolicyBatch})
	got, _ := replayAll(t, l2)
	if !bytes.Equal(canonBytes(t, got), canonBytes(t, recs)) {
		t.Fatal("stale shard directories were not replayed")
	}
	if err := l2.Commit(1, got, l2.Bounds(), 0); err != nil {
		t.Fatal(err)
	}
	if dirs, _ := filepath.Glob(filepath.Join(dir, "shard-000[4-7]")); len(dirs) != 0 {
		t.Fatalf("stale shard dirs survive a commit: %v", dirs)
	}
	got2, _ := replayAll(t, l2)
	if !bytes.Equal(canonBytes(t, got2), canonBytes(t, recs)) {
		t.Fatal("post-commit replay lost stale-shard records")
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	l := openLog(t, t.TempDir(), Options{})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendBatch(partition(genRecords(8), 4), 0); err != ErrClosed {
		t.Fatalf("append after close = %v, want ErrClosed", err)
	}
}

func TestIntervalPolicyCloseIsClean(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	l := openLog(t, dir, Options{Policy: PolicyInterval, SyncEvery: time.Millisecond, Metrics: reg})
	recs := genRecords(200)
	if err := l.AppendBatch(partition(recs, 4), 0); err != nil {
		t.Fatal(err)
	}
	// The group-commit loop runs on a real ticker; poll briefly for at
	// least one background sync, then Close must stop the loop and
	// leave everything durable.
	for i := 0; i < 1000 && reg.Snapshot().Counters["wal_fsync_total"] == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	if reg.Snapshot().Counters["wal_fsync_total"] == 0 {
		t.Fatal("group-commit loop never synced")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2 := openLog(t, dir, Options{Policy: PolicyBatch})
	got, _ := replayAll(t, l2)
	if !bytes.Equal(canonBytes(t, got), canonBytes(t, recs)) {
		t.Fatal("interval-policy log lost records across close/reopen")
	}
}

func TestParsePolicy(t *testing.T) {
	for s, want := range map[string]Policy{"batch": PolicyBatch, "interval": PolicyInterval, "off": PolicyOff} {
		got, err := ParsePolicy(s)
		if err != nil || got != want {
			t.Fatalf("ParsePolicy(%q) = %v, %v", s, got, err)
		}
		if got.String() != s {
			t.Fatalf("Policy(%q).String() = %q", s, got.String())
		}
	}
	if _, err := ParsePolicy("sometimes"); err == nil {
		t.Fatal("ParsePolicy accepted garbage")
	}
}
