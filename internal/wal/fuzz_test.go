package wal

import (
	"bytes"
	"testing"

	"vmp/internal/telemetry/record"
	"vmp/internal/wire"
)

// FuzzDecodeSegment throws arbitrary bytes at the segment record
// decoder, mirroring wire's FuzzDecodeFrame. The invariants: never
// panic, never deliver records out of proportion to the input, a torn
// classification always points inside the input at a record boundary
// the scan actually reached, and everything before a torn tail is
// delivered — the crash-recovery contract replay is built on.
func FuzzDecodeSegment(f *testing.F) {
	intact := buildSegment(f, [][]record.ViewRecord{genRecords(9)[:4], genRecords(9)[4:]})
	f.Add(intact)
	f.Add(truncatedSeed(f))
	f.Add(corruptCRCSeed(f))
	f.Add(maxSeqSeed(f))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x80}, 40))

	f.Fuzz(func(t *testing.T, data []byte) {
		delivered := 0
		entries := 0
		torn, err := DecodeSegment(data, wire.NewDecoder(), func(seq uint64, recs []record.ViewRecord) error {
			delivered += len(recs)
			entries++
			return nil
		})
		if err != nil {
			return
		}
		if delivered > len(data) {
			t.Fatalf("delivered %d records from %d input bytes: over-allocation guard failed", delivered, len(data))
		}
		if torn != nil {
			if torn.Off < 0 || torn.Off > int64(len(data)) {
				t.Fatalf("torn offset %d outside input of %d bytes", torn.Off, len(data))
			}
			// Re-scanning the intact prefix must deliver the same
			// entries and report no tear: the tear was the tail.
			n2 := 0
			torn2, err2 := DecodeSegment(data[:torn.Off], wire.NewDecoder(), func(uint64, []record.ViewRecord) error {
				n2++
				return nil
			})
			if err2 != nil || torn2 != nil || n2 != entries {
				t.Fatalf("prefix rescan: %d entries (want %d), torn %v, err %v", n2, entries, torn2, err2)
			}
		}
	})
}
