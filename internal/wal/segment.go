package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"vmp/internal/telemetry/record"
	"vmp/internal/wire"
)

// On-disk segment record layout. A segment file is a sequence of
// records, nothing else — no file header, no index; the segment's
// place in the log is carried by its name (seg-<first-seq>.wal) and
// each record's own sequence number.
//
//	u32le  length   — byte count of everything after the CRC field
//	u32le  crc32c   — Castagnoli CRC over those length bytes
//	uvarint seq     — per-shard monotonic sequence number
//	frames          — one or more wire binary frames (internal/wire),
//	                  exactly as Encoder.AppendFrame lays them out
//
// The CRC covers the sequence number and the frame bytes, so a torn
// write — a crash mid-record — is detected no matter where it lands:
// a short header, a short body, or a complete-looking body whose
// bytes never all reached the disk.
const (
	recordHeaderBytes = 8

	// MaxRecordBytes bounds one record's post-CRC byte count. The
	// appender chunks batches well below it; the decoder rejects
	// larger declared lengths before allocating, so a corrupt length
	// field cannot provoke an over-allocation.
	MaxRecordBytes = wire.MaxFrameBytes + 64
)

// castagnoli is the CRC32C table; hardware-accelerated on amd64/arm64.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Torn describes a segment tail the decoder could not use: the offset
// where intact records end and why the rest is unusable. A torn tail
// is the expected aftermath of a crash mid-append; replay stops
// cleanly at the last good record rather than failing the boot.
type Torn struct {
	Off    int64  // byte offset of the first unusable record
	Reason string // "partial header", "partial body", "crc mismatch", "oversized length", "zero length"
}

// DecodeSegment scans one segment's bytes, invoking fn for each intact
// record in order. The record slice passed to fn obeys dec's reuse
// contract: it is valid only until the next record is decoded, so fn
// must copy what it keeps. A nil dec verifies framing and CRCs without
// decoding the frame payloads (fn sees each sequence with nil records)
// — the cheap scan Open uses to find a shard's last durable sequence.
//
// A truncated or CRC-failing tail returns a non-nil *Torn with a nil
// error: every record before it was delivered, and the caller decides
// whether a torn tail is routine (crash recovery) or fatal. An error
// is returned only for corruption a torn write cannot explain — a
// record whose CRC verifies but whose contents do not parse — or when
// fn fails.
func DecodeSegment(data []byte, dec *wire.Decoder, fn func(seq uint64, recs []record.ViewRecord) error) (*Torn, error) {
	off := int64(0)
	for int64(len(data))-off > 0 {
		rest := data[off:]
		if len(rest) < recordHeaderBytes {
			return &Torn{Off: off, Reason: "partial header"}, nil
		}
		n := int64(binary.LittleEndian.Uint32(rest))
		if n > MaxRecordBytes {
			// A garbage length field cannot be CRC-checked; it reads as
			// a torn write, which on the final record it always is.
			return &Torn{Off: off, Reason: "oversized length"}, nil
		}
		if n == 0 {
			// The appender never writes an empty body (every record
			// holds a sequence and a frame), but a zero-filled tail —
			// preallocated blocks a crash left unwritten — decodes as
			// one, and its CRC check passes vacuously. Torn, not valid.
			return &Torn{Off: off, Reason: "zero length"}, nil
		}
		if int64(len(rest))-recordHeaderBytes < n {
			return &Torn{Off: off, Reason: "partial body"}, nil
		}
		sum := binary.LittleEndian.Uint32(rest[4:])
		body := rest[recordHeaderBytes : recordHeaderBytes+n]
		if crc32.Checksum(body, castagnoli) != sum {
			return &Torn{Off: off, Reason: "crc mismatch"}, nil
		}
		seq, sn := binary.Uvarint(body)
		if sn <= 0 {
			// The CRC verified, so these are the bytes the appender
			// wrote — corruption a torn write cannot explain.
			return nil, fmt.Errorf("wal: record at offset %d: bad sequence varint", off)
		}
		var recs []record.ViewRecord
		if dec != nil {
			var err error
			if recs, err = dec.DecodeAll(bytes.NewReader(body[sn:])); err != nil {
				return nil, fmt.Errorf("wal: record seq %d at offset %d: %w", seq, off, err)
			}
		}
		if fn != nil {
			if err := fn(seq, recs); err != nil {
				return nil, err
			}
		}
		off += recordHeaderBytes + n
	}
	return nil, nil
}

// appendRecord appends one framed record (header, CRC, sequence,
// frames) for recs to dst and returns the extended slice. enc's
// scratch is reused across calls.
//
//vmp:hotpath
func appendRecord(dst []byte, enc *wire.Encoder, seq uint64, recs []record.ViewRecord) ([]byte, error) {
	base := len(dst)
	var hdr [recordHeaderBytes]byte
	dst = append(dst, hdr[:]...)
	dst = binary.AppendUvarint(dst, seq)
	dst, err := enc.AppendFrame(dst, recs)
	if err != nil {
		return dst[:base], err
	}
	body := dst[base+recordHeaderBytes:]
	binary.LittleEndian.PutUint32(dst[base:], uint32(len(body)))
	binary.LittleEndian.PutUint32(dst[base+4:], crc32.Checksum(body, castagnoli))
	return dst, nil
}
