package wal

import (
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"vmp/internal/simclock"
	"vmp/internal/telemetry/record"
)

// benchAppend measures AppendBatch throughput under one fsync policy:
// one op = one 2000-record batch landed across 4 shards, durable to
// whatever degree the policy promises. The log is recycled every 200
// ops outside the timer so segment accumulation doesn't turn this into
// a filesystem benchmark. The spread between the three policies is the
// durability tax EXPERIMENTS.md tracks.
func benchAppend(b *testing.B, policy Policy) {
	root := b.TempDir()
	parts := partition(genRecords(2000), 4)

	var (
		l   *Log
		gen int
		err error
	)
	boot := func() {
		dir := filepath.Join(root, "wal-"+strconv.Itoa(gen))
		gen++
		l, err = Open(Options{
			Dir:    dir,
			Shards: 4,
			Policy: policy,
			Clock:  simclock.NewManual(simclock.StudyStart),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	shutdown := func() {
		if err := l.Close(); err != nil {
			b.Fatal(err)
		}
		_ = os.RemoveAll(filepath.Join(root, "wal-"+strconv.Itoa(gen-1)))
	}
	boot()
	defer func() { shutdown() }()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i > 0 && i%200 == 0 {
			b.StopTimer()
			shutdown()
			boot()
			b.StartTimer()
		}
		if err := l.AppendBatch(parts, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(2000*b.N)/b.Elapsed().Seconds(), "records/s")
}

// BenchmarkWALAppendBatch fsyncs every batch before returning — the
// strongest guarantee and the ceiling on per-batch latency.
func BenchmarkWALAppendBatch(b *testing.B) { benchAppend(b, PolicyBatch) }

// BenchmarkWALAppendInterval group-commits on the sync loop's cadence;
// appends only pay the write() syscall.
func BenchmarkWALAppendInterval(b *testing.B) { benchAppend(b, PolicyInterval) }

// BenchmarkWALAppendOff never fsyncs — the page-cache-only floor that
// isolates the WAL's CPU cost (framing, CRC, one write per record).
func BenchmarkWALAppendOff(b *testing.B) { benchAppend(b, PolicyOff) }

// BenchmarkWALReplay measures boot-time recovery: decode and deliver
// every record from a 100k-record log (50 segments-worth of appends,
// no checkpoint). One op = one full replay. The records/s here bounds
// how much WAL backlog a daemon can absorb per second of downtime.
func BenchmarkWALReplay(b *testing.B) {
	dir := b.TempDir()
	l, err := Open(Options{
		Dir:    dir,
		Shards: 4,
		Policy: PolicyOff,
		Clock:  simclock.NewManual(simclock.StudyStart),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = l.Close() }()
	parts := partition(genRecords(2000), 4)
	const batches = 50
	for i := 0; i < batches; i++ {
		if err := l.AppendBatch(parts, 0); err != nil {
			b.Fatal(err)
		}
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats, err := l.Replay(func(recs []record.ViewRecord) error { return nil }, 0)
		if err != nil {
			b.Fatal(err)
		}
		if stats.Delivered() != 2000*batches {
			b.Fatalf("replay delivered %d records, want %d", stats.Delivered(), 2000*batches)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(2000*batches*b.N)/b.Elapsed().Seconds(), "records/s")
}
