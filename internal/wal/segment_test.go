package wal

import (
	"bytes"
	"encoding/binary"
	"flag"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"vmp/internal/obs"
	"vmp/internal/telemetry/record"
	"vmp/internal/wire"
)

var update = flag.Bool("update", false, "rewrite golden files and fuzz seed corpus")

// buildSegment encodes batches as consecutive segment records with
// sequences 1..len(batches) — the raw bytes a shard file would hold.
func buildSegment(t testing.TB, batches [][]record.ViewRecord) []byte {
	t.Helper()
	enc := wire.NewEncoder()
	var data []byte
	for i, b := range batches {
		var err error
		if data, err = appendRecord(data, enc, uint64(i+1), b); err != nil {
			t.Fatal(err)
		}
	}
	return data
}

// decodeCount runs DecodeSegment and returns how many records were
// delivered and the torn tail, failing on hard errors.
func decodeCount(t *testing.T, data []byte) (int, *Torn) {
	t.Helper()
	n := 0
	torn, err := DecodeSegment(data, wire.NewDecoder(), func(seq uint64, recs []record.ViewRecord) error {
		n += len(recs)
		return nil
	})
	if err != nil {
		t.Fatalf("DecodeSegment: %v", err)
	}
	return n, torn
}

func TestDecodeSegmentDamageMatrix(t *testing.T) {
	recs := genRecords(30)
	data := buildSegment(t, [][]record.ViewRecord{recs[:10], recs[10:20], recs[20:]})
	intactN, torn := decodeCount(t, data)
	if torn != nil || intactN != 30 {
		t.Fatalf("intact segment: %d records, torn %v", intactN, torn)
	}
	// The offset of the final record, for prefix assertions.
	var offsets []int64
	off := int64(0)
	for off < int64(len(data)) {
		offsets = append(offsets, off)
		off += recordHeaderBytes + int64(binary.LittleEndian.Uint32(data[off:]))
	}
	lastOff := offsets[len(offsets)-1]

	damage := []struct {
		name   string
		mutate func([]byte) []byte
		reason string
		prefix int // records still delivered
	}{
		{"truncated header", func(b []byte) []byte { return b[:lastOff+3] }, "partial header", 20},
		{"truncated body", func(b []byte) []byte { return b[:len(b)-5] }, "partial body", 20},
		{"corrupt crc", func(b []byte) []byte { b[len(b)-3] ^= 0x40; return b }, "crc mismatch", 20},
		{"oversized length", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[lastOff:], uint32(MaxRecordBytes+1))
			return b
		}, "oversized length", 20},
		{"zeroed tail", func(b []byte) []byte {
			for i := lastOff; i < int64(len(b)); i++ {
				b[i] = 0
			}
			return b
		}, "zero length", 20},
	}
	for _, d := range damage {
		t.Run(d.name, func(t *testing.T) {
			b := d.mutate(append([]byte(nil), data...))
			n, torn := decodeCount(t, b)
			if torn == nil {
				t.Fatal("damage not detected")
			}
			if torn.Reason != d.reason {
				t.Fatalf("reason = %q, want %q", torn.Reason, d.reason)
			}
			if torn.Off != lastOff {
				t.Fatalf("torn offset = %d, want %d", torn.Off, lastOff)
			}
			if n != d.prefix {
				t.Fatalf("delivered %d records before the tear, want %d", n, d.prefix)
			}
		})
	}
}

func TestDecodeSegmentCRCValidCorruptionIsHardError(t *testing.T) {
	// A record whose CRC verifies but whose body does not parse cannot
	// be a torn write — the appender never produced it — so it must be
	// a hard error, not a clean stop.
	body := bytes.Repeat([]byte{0x80}, 12) // unterminated varint: bad sequence
	data := make([]byte, recordHeaderBytes+len(body))
	binary.LittleEndian.PutUint32(data, uint32(len(body)))
	binary.LittleEndian.PutUint32(data[4:], crc32.Checksum(body, castagnoli))
	copy(data[recordHeaderBytes:], body)
	if _, err := DecodeSegment(data, wire.NewDecoder(), nil); err == nil {
		t.Fatal("bad sequence varint under a valid CRC was not a hard error")
	}

	// Same for a valid sequence followed by an undecodable frame.
	body = binary.AppendUvarint(nil, 7)
	body = append(body, []byte{4, 0, 0, 0, 'X', 'X', 9, 9}...)
	data = make([]byte, recordHeaderBytes+len(body))
	binary.LittleEndian.PutUint32(data, uint32(len(body)))
	binary.LittleEndian.PutUint32(data[4:], crc32.Checksum(body, castagnoli))
	copy(data[recordHeaderBytes:], body)
	if _, err := DecodeSegment(data, wire.NewDecoder(), nil); err == nil {
		t.Fatal("undecodable frame under a valid CRC was not a hard error")
	}
}

// TestGoldenSegment pins the on-disk record format: the checked-in
// segment must keep decoding, and today's encoder must keep producing
// exactly those bytes. If this fails, the format changed — which needs
// a version bump and migration thinking, not a golden refresh.
func TestGoldenSegment(t *testing.T) {
	recs := genRecords(12)
	data := buildSegment(t, [][]record.ViewRecord{recs[:5], recs[5:]})
	path := filepath.Join("testdata", "golden.segment")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(data, want) {
		t.Fatalf("segment encoding changed: %d bytes now vs %d golden", len(data), len(want))
	}
	n, torn := decodeCount(t, want)
	if torn != nil || n != 12 {
		t.Fatalf("golden segment decodes to %d records, torn %v", n, torn)
	}
}

// TestGoldenCorruptSegment is the corrupt-segment golden test: a
// checked-in segment with a damaged final record must decode to
// exactly the undamaged prefix with the pinned torn classification.
func TestGoldenCorruptSegment(t *testing.T) {
	path := filepath.Join("testdata", "corrupt.segment")
	if *update {
		recs := genRecords(12)
		data := buildSegment(t, [][]record.ViewRecord{recs[:5], recs[5:]})
		data[len(data)-3] ^= 0x40 // CRC-breaking flip inside the final body
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	n, torn := decodeCount(t, data)
	if torn == nil || torn.Reason != "crc mismatch" {
		t.Fatalf("torn = %+v, want crc mismatch", torn)
	}
	if n != 5 {
		t.Fatalf("delivered %d records from the corrupt segment, want the 5-record prefix", n)
	}
}

func TestTornTailRecoveredOnOpen(t *testing.T) {
	for _, tc := range []struct {
		name   string
		mutate func(t *testing.T, path string)
	}{
		{"truncated write", func(t *testing.T, path string) {
			info, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(path, info.Size()-5); err != nil {
				t.Fatal(err)
			}
		}},
		{"corrupt crc", func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)-3] ^= 0x40
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			l := openLog(t, dir, Options{Shards: 1, Policy: PolicyBatch})
			recs := genRecords(300)
			for lo := 0; lo < 300; lo += 100 {
				if err := l.AppendBatch([][]record.ViewRecord{recs[lo : lo+100]}, 0); err != nil {
					t.Fatal(err)
				}
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			segs := segmentFiles(t, dir)
			if len(segs) != 1 {
				t.Fatalf("segments = %v", segs)
			}
			tc.mutate(t, segs[0])

			// Open recovers the tail: the damaged final record is
			// truncated away, counted, and the log is immediately
			// appendable again at the right sequence.
			reg := obs.NewRegistry()
			l2 := openLog(t, dir, Options{Shards: 1, Policy: PolicyBatch, Metrics: reg})
			if n := reg.Snapshot().Counters["wal_torn_tail_total"]; n != 1 {
				t.Fatalf("wal_torn_tail_total = %d, want 1", n)
			}
			if got := l2.Bounds(); got[0] != 2 {
				t.Fatalf("bounds after torn-tail recovery = %v, want [2]", got)
			}
			got, stats := replayAll(t, l2)
			if stats.TornTails != 0 {
				t.Fatalf("replay saw a torn tail Open should have truncated: %+v", stats)
			}
			if !bytes.Equal(canonBytes(t, got), canonBytes(t, recs[:200])) {
				t.Fatal("replay after recovery is not the durable prefix")
			}
			if err := l2.AppendBatch([][]record.ViewRecord{recs[200:]}, 0); err != nil {
				t.Fatal(err)
			}
			got2, _ := replayAll(t, l2)
			if !bytes.Equal(canonBytes(t, got2), canonBytes(t, recs)) {
				t.Fatal("append after torn-tail recovery lost records")
			}
		})
	}
}

func TestReplayCorruptClosedSegmentIsHardError(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: three appends land in separate files.
	l := openLog(t, dir, Options{Shards: 1, Policy: PolicyBatch, SegmentBytes: 1})
	recs := genRecords(300)
	for lo := 0; lo < 300; lo += 100 {
		if err := l.AppendBatch([][]record.ViewRecord{recs[lo : lo+100]}, 0); err != nil {
			t.Fatal(err)
		}
	}
	segs := segmentFiles(t, dir)
	if len(segs) < 2 {
		t.Fatalf("wanted multiple segments, got %v", segs)
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0x40
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	// Corruption below the tail cannot be a crashed append: replay
	// must refuse rather than silently drop interior records.
	if _, err := l.Replay(func([]record.ViewRecord) error { return nil }, 0); err == nil {
		t.Fatal("replay accepted a corrupt non-final segment")
	}
}

// writeSeedCorpus regenerates the checked-in fuzz seed corpus when the
// golden -update flag is set; see FuzzDecodeSegment.
func TestWriteFuzzSeedCorpus(t *testing.T) {
	if !*update {
		t.Skip("run with -update to regenerate the fuzz seed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzDecodeSegment")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, data := range map[string][]byte{
		"seed-truncated-record": truncatedSeed(t),
		"seed-corrupt-crc":      corruptCRCSeed(t),
		"seed-max-seq-varint":   maxSeqSeed(t),
	} {
		content := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")"
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func truncatedSeed(t testing.TB) []byte {
	data := buildSegment(t, [][]record.ViewRecord{genRecords(6)[:3], genRecords(6)[3:]})
	return data[:len(data)-7]
}

func corruptCRCSeed(t testing.TB) []byte {
	data := buildSegment(t, [][]record.ViewRecord{genRecords(4)})
	data[len(data)-2] ^= 0xff
	return data
}

// maxSeqSeed is a well-formed record whose sequence varint is
// MaxInt64 — the boundary the decoder must take without overflow.
func maxSeqSeed(t testing.TB) []byte {
	enc := wire.NewEncoder()
	var body []byte
	body = binary.AppendUvarint(body, uint64(1)<<63-1)
	var err error
	if body, err = enc.AppendFrame(body, genRecords(2)); err != nil {
		t.Fatal(err)
	}
	data := make([]byte, recordHeaderBytes+len(body))
	binary.LittleEndian.PutUint32(data, uint32(len(body)))
	binary.LittleEndian.PutUint32(data[4:], crc32.Checksum(body, castagnoli))
	copy(data[recordHeaderBytes:], body)
	return data
}
