// Package complexity implements the §5 management-complexity measures
// and their correlation with publisher size: management-plane
// combinations (CDN × protocol × device), protocol-titles (packaging
// cost), and unique SDKs (software-maintenance cost), each regressed
// on log-log axes against daily view-hours to obtain the per-decade
// growth factors Fig 13 reports (1.72x, 3.8x, 1.8x).
package complexity

import (
	"fmt"

	"vmp/internal/ecosystem"
	"vmp/internal/stats"
)

// Metric identifies one of the §5 complexity measures.
type Metric int

// The three measures of Fig 13.
const (
	Combinations   Metric = iota // Fig 13a
	ProtocolTitles               // Fig 13b
	UniqueSDKs                   // Fig 13c
)

// String returns the paper's name for the metric.
func (m Metric) String() string {
	switch m {
	case Combinations:
		return "management-plane combinations"
	case ProtocolTitles:
		return "protocol-titles"
	case UniqueSDKs:
		return "unique SDKs"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// Of evaluates the metric on one publisher's inventory.
func (m Metric) Of(inv ecosystem.Inventory) float64 {
	switch m {
	case Combinations:
		// The failure-triaging surface: every (CDN, protocol, device)
		// interaction is a potential failure cause.
		return float64(len(inv.CDNs) * len(inv.Protocols) * len(inv.DeviceModels))
	case ProtocolTitles:
		// Packaging cost: each title is packaged once per protocol.
		return float64(len(inv.Protocols) * inv.CatalogSize)
	case UniqueSDKs:
		// Maintenance cost: one code base per SDK/browser version.
		return float64(len(inv.SDKVersions))
	default:
		return 0
	}
}

// Point is one publisher's position on a Fig 13 scatter plot.
type Point struct {
	Publisher string
	DailyVH   float64
	Value     float64
}

// Correlation is the Fig 13 result for one metric: the scatter points
// and the log-log regression against view-hours.
type Correlation struct {
	Metric          Metric
	Points          []Point
	Fit             stats.Regression
	PerDecadeFactor float64 // multiplicative growth per 10x view-hours
	// SpearmanRho is the rank correlation between view-hours and the
	// metric: a tail-robust check that the relationship is monotone,
	// not an artifact of the fit.
	SpearmanRho float64
}

// Correlate evaluates the metric over every inventory and fits
// log10(metric) against log10(daily view-hours).
func Correlate(m Metric, invs []ecosystem.Inventory) (Correlation, error) {
	c := Correlation{Metric: m}
	var xs, ys []float64
	for _, inv := range invs {
		v := m.Of(inv)
		c.Points = append(c.Points, Point{Publisher: inv.Publisher, DailyVH: inv.DailyVH, Value: v})
		xs = append(xs, inv.DailyVH)
		ys = append(ys, v)
	}
	fit, err := stats.LogLogFit(xs, ys)
	if err != nil {
		return c, fmt.Errorf("complexity: fitting %v: %w", m, err)
	}
	c.Fit = fit
	c.PerDecadeFactor = stats.PerDecadeFactor(fit.Slope)
	if rho, err := stats.Spearman(xs, ys); err == nil {
		c.SpearmanRho = rho
	}
	return c, nil
}

// Report bundles all three Fig 13 correlations.
type Report struct {
	Combinations   Correlation
	ProtocolTitles Correlation
	UniqueSDKs     Correlation
	MaxUniqueSDKs  float64 // the "up to 85 code bases" headline number
}

// Analyze computes the full §5 analysis over a population inventory.
func Analyze(invs []ecosystem.Inventory) (Report, error) {
	var (
		rep Report
		err error
	)
	if rep.Combinations, err = Correlate(Combinations, invs); err != nil {
		return rep, err
	}
	if rep.ProtocolTitles, err = Correlate(ProtocolTitles, invs); err != nil {
		return rep, err
	}
	if rep.UniqueSDKs, err = Correlate(UniqueSDKs, invs); err != nil {
		return rep, err
	}
	for _, p := range rep.UniqueSDKs.Points {
		if p.Value > rep.MaxUniqueSDKs {
			rep.MaxUniqueSDKs = p.Value
		}
	}
	return rep, nil
}
