package complexity

import (
	"math"
	"testing"

	"vmp/internal/device"
	"vmp/internal/ecosystem"
	"vmp/internal/manifest"
)

func inv(pub string, vh float64, nProto, nCDN, nDev, nSDK, catalog int) ecosystem.Inventory {
	i := ecosystem.Inventory{Publisher: pub, DailyVH: vh, CatalogSize: catalog}
	for k := 0; k < nProto; k++ {
		i.Protocols = append(i.Protocols, manifest.HTTPProtocols[k%4])
	}
	for k := 0; k < nCDN; k++ {
		i.CDNs = append(i.CDNs, string(rune('A'+k)))
	}
	for k := 0; k < nDev; k++ {
		i.DeviceModels = append(i.DeviceModels, device.Registry[k%len(device.Registry)].Name)
	}
	for k := 0; k < nSDK; k++ {
		i.SDKVersions = append(i.SDKVersions, device.SDKVersion{Family: "F", Version: string(rune('0' + k))}.String())
	}
	return i
}

func TestMetricValues(t *testing.T) {
	i := inv("p", 100, 2, 3, 4, 7, 50)
	if got := Combinations.Of(i); got != 2*3*4 {
		t.Errorf("Combinations = %v, want 24", got)
	}
	if got := ProtocolTitles.Of(i); got != 100 {
		t.Errorf("ProtocolTitles = %v, want 100", got)
	}
	if got := UniqueSDKs.Of(i); got != 7 {
		t.Errorf("UniqueSDKs = %v, want 7", got)
	}
	if Metric(9).Of(i) != 0 {
		t.Error("unknown metric should evaluate to 0")
	}
}

func TestMetricNames(t *testing.T) {
	for _, m := range []Metric{Combinations, ProtocolTitles, UniqueSDKs} {
		if m.String() == "" || m.String() == "Metric(9)" {
			t.Errorf("bad name for metric %d", int(m))
		}
	}
}

func TestCorrelateExactPowerLaw(t *testing.T) {
	// Construct publishers where combinations = VH^0.25 exactly; the
	// fitted per-decade factor must be 10^0.25.
	var invs []ecosystem.Inventory
	for i := 0; i < 6; i++ {
		vh := math.Pow(10, float64(i))
		n := int(math.Round(math.Pow(vh, 0.25)))
		invs = append(invs, inv("p", vh, 1, 1, n, 1, 1))
	}
	c, err := Correlate(Combinations, invs)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Pow(10, 0.25)
	if math.Abs(c.PerDecadeFactor-want) > 0.05 {
		t.Fatalf("PerDecadeFactor = %v, want ~%v", c.PerDecadeFactor, want)
	}
	if len(c.Points) != 6 {
		t.Fatalf("points = %d", len(c.Points))
	}
}

func TestCorrelateInsufficientData(t *testing.T) {
	if _, err := Correlate(Combinations, nil); err == nil {
		t.Fatal("empty inventory should error")
	}
}

// TestFig13Anchors runs the real population through the §5 analysis
// and checks the per-decade factors against the paper's: combinations
// 1.72x, protocol-titles 3.8x, unique SDKs 1.8x (tolerant bands — the
// shape criterion is sub-linear growth of the right magnitude), with
// all fits statistically significant.
func TestFig13Anchors(t *testing.T) {
	e := ecosystem.New(ecosystem.Config{SnapshotStride: 30})
	rep, err := Analyze(e.InventoryAt(e.Schedule.Latest().Start))
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		name   string
		c      Correlation
		lo, hi float64
	}{
		{"combinations", rep.Combinations, 1.3, 2.6},
		{"protocol-titles", rep.ProtocolTitles, 2.6, 5.2},
		{"unique SDKs", rep.UniqueSDKs, 1.4, 2.4},
	}
	for _, c := range checks {
		if c.c.PerDecadeFactor < c.lo || c.c.PerDecadeFactor > c.hi {
			t.Errorf("%s per-decade factor = %.2f, want in [%v, %v]",
				c.name, c.c.PerDecadeFactor, c.lo, c.hi)
		}
		// Sub-linear: factor well below 10 per decade.
		if c.c.PerDecadeFactor >= 10 {
			t.Errorf("%s grows super-linearly", c.name)
		}
		if c.c.Fit.PValue > 1e-9 {
			t.Errorf("%s fit p-value = %v, want < 1e-9 (paper: < 1e-9)", c.name, c.c.Fit.PValue)
		}
	}
	// §5 headline: the biggest publishers maintain up to ~85 code
	// bases.
	if rep.MaxUniqueSDKs < 40 || rep.MaxUniqueSDKs > 130 {
		t.Errorf("max unique SDKs = %v, want near 85", rep.MaxUniqueSDKs)
	}
	// Rank-correlation robustness: all three metrics are strongly
	// monotone in publisher size.
	for name, rho := range map[string]float64{
		"combinations":    rep.Combinations.SpearmanRho,
		"protocol-titles": rep.ProtocolTitles.SpearmanRho,
		"unique SDKs":     rep.UniqueSDKs.SpearmanRho,
	} {
		if rho < 0.5 {
			t.Errorf("%s Spearman rho = %.2f, want strongly positive", name, rho)
		}
	}
}
