package drm

import (
	"sync"
	"testing"
	"time"

	"vmp/internal/device"
	"vmp/internal/dist"
)

func model(t *testing.T, name string) device.Model {
	t.Helper()
	m, ok := device.ByName(name)
	if !ok {
		t.Fatalf("device %q missing", name)
	}
	return m
}

func TestSystemNames(t *testing.T) {
	names := map[string]bool{}
	for _, s := range Systems {
		if names[s.String()] {
			t.Fatalf("duplicate system name %q", s)
		}
		names[s.String()] = true
	}
	if System(9).String() != "System(9)" {
		t.Error("unknown system should format numerically")
	}
}

func TestCompatibilityMatrix(t *testing.T) {
	cases := []struct {
		device string
		system System
		want   bool
	}{
		{"iPhone", FairPlay, true},
		{"iPhone", Widevine, false},
		{"iPhone", PlayReady, false},
		{"AppleTV", FairPlay, true},
		{"AndroidPhone", Widevine, true},
		{"AndroidPhone", FairPlay, false},
		{"Xbox", PlayReady, true},
		{"Xbox", Widevine, false},
		{"Silverlight", PlayReady, true},
		{"Roku", Widevine, true},
		{"Roku", PlayReady, true},
		{"HTML5", Widevine, true},
		{"Flash", Widevine, false},
	}
	for _, c := range cases {
		if got := c.system.SupportsDevice(model(t, c.device)); got != c.want {
			t.Errorf("%v on %s = %v, want %v", c.system, c.device, got, c.want)
		}
	}
}

func TestEveryAppDeviceHasSomeDRM(t *testing.T) {
	// Every modern app platform must be protectable; only legacy
	// browser plugins may fall outside.
	for _, m := range device.Registry {
		if m.Name == "Flash" {
			continue // Flash-era content used RTMPE, out of scope
		}
		if len(SystemsFor(m)) == 0 {
			t.Errorf("%s has no usable DRM system", m.Name)
		}
	}
}

func TestRequiredSystemsFullZoo(t *testing.T) {
	var all []device.Model
	for _, m := range device.Registry {
		if m.Name == "Flash" {
			continue
		}
		all = append(all, m)
	}
	systems, uncovered := RequiredSystems(all)
	if len(uncovered) != 0 {
		t.Fatalf("uncovered devices: %v", uncovered)
	}
	// Covering Apple + Microsoft-lineage + the rest takes all three
	// systems at least two of which are mandatory (FairPlay for Apple,
	// Widevine or PlayReady elsewhere).
	if len(systems) < 2 || len(systems) > 3 {
		t.Fatalf("multi-DRM set = %v, want 2-3 systems", systems)
	}
	hasFairPlay := false
	for _, s := range systems {
		if s == FairPlay {
			hasFairPlay = true
		}
	}
	if !hasFairPlay {
		t.Fatal("covering Apple devices requires FairPlay")
	}
}

func TestRequiredSystemsUncovered(t *testing.T) {
	systems, uncovered := RequiredSystems([]device.Model{model(t, "Flash")})
	if len(systems) != 0 || len(uncovered) != 1 || uncovered[0] != "Flash" {
		t.Fatalf("systems=%v uncovered=%v", systems, uncovered)
	}
}

func TestIssueAndValidity(t *testing.T) {
	ks, err := NewKeyServer(dist.NewSource(1), time.Minute, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Date(2018, 3, 1, 12, 0, 0, 0, time.UTC)
	lic, latency, err := ks.Issue(Request{
		ContentID: "c1", Device: model(t, "AndroidPhone"), System: Widevine, Now: now,
	})
	if err != nil {
		t.Fatal(err)
	}
	if latency < 30*time.Millisecond || latency > 80*time.Millisecond {
		t.Fatalf("license latency = %v, want 30-80ms", latency)
	}
	if !lic.Valid(now) || !lic.Valid(now.Add(59*time.Minute)) {
		t.Fatal("license should be valid within its TTL")
	}
	if lic.Valid(now.Add(2 * time.Hour)) {
		t.Fatal("license should expire after its TTL")
	}
}

func TestIssueRefusesIncompatibleCDM(t *testing.T) {
	ks, _ := NewKeyServer(dist.NewSource(1), 0, 0)
	_, _, err := ks.Issue(Request{
		ContentID: "c1", Device: model(t, "iPhone"), System: Widevine,
		Now: time.Date(2017, time.June, 1, 0, 0, 0, 0, time.UTC),
	})
	if err == nil {
		t.Fatal("Widevine on iPhone accepted")
	}
	if _, _, err := ks.Issue(Request{Device: model(t, "iPhone"), System: FairPlay}); err == nil {
		t.Fatal("empty content ID accepted")
	}
	issued, refused := ks.Stats()
	if issued != 0 || refused != 1 {
		t.Fatalf("stats = %d/%d, want 0 issued, 1 refused", issued, refused)
	}
}

func TestLiveKeyRotation(t *testing.T) {
	rotation := 10 * time.Minute
	ks, _ := NewKeyServer(dist.NewSource(2), rotation, time.Hour)
	now := time.Date(2018, 3, 1, 12, 1, 0, 0, time.UTC)
	req := Request{ContentID: "live1", Device: model(t, "Roku"), System: Widevine, Live: true, Now: now}
	lic1, _, err := ks.Issue(req)
	if err != nil {
		t.Fatal(err)
	}
	// The live license must not outlive its key epoch.
	if lic1.Valid(now.Add(rotation)) {
		t.Fatal("live license survived key rotation")
	}
	// A request in the next epoch gets a new key.
	req.Now = now.Add(rotation)
	lic2, _, err := ks.Issue(req)
	if err != nil {
		t.Fatal(err)
	}
	if lic2.KeyEpoch == lic1.KeyEpoch {
		t.Fatal("key epoch did not advance")
	}
	// VoD licenses are unaffected by rotation.
	vod, _, err := ks.Issue(Request{ContentID: "v1", Device: model(t, "Roku"), System: Widevine, Now: now})
	if err != nil {
		t.Fatal(err)
	}
	if !vod.Valid(now.Add(59 * time.Minute)) {
		t.Fatal("VoD license truncated by rotation")
	}
}

func TestNewKeyServerValidation(t *testing.T) {
	if _, err := NewKeyServer(nil, 0, 0); err == nil {
		t.Fatal("nil source accepted")
	}
	ks, err := NewKeyServer(dist.NewSource(1), 0, 0)
	if err != nil || ks.ttl != 24*time.Hour {
		t.Fatalf("default TTL not applied: %v %v", ks.ttl, err)
	}
}

func TestKeyServerConcurrent(t *testing.T) {
	ks, _ := NewKeyServer(dist.NewSource(3), time.Minute, time.Hour)
	now := time.Date(2018, 3, 1, 12, 0, 0, 0, time.UTC)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				ks.Issue(Request{ContentID: "c", Device: model(t, "Roku"), System: Widevine, Now: now})
			}
		}()
	}
	wg.Wait()
	if issued, _ := ks.Stats(); issued != 1600 {
		t.Fatalf("issued = %d, want 1600", issued)
	}
}
