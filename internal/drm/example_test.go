package drm_test

import (
	"fmt"

	"vmp/internal/device"
	"vmp/internal/drm"
)

// ExampleRequiredSystems computes the multi-DRM set a publisher needs
// to protect content on a mixed device fleet.
func ExampleRequiredSystems() {
	var fleet []device.Model
	for _, name := range []string{"iPhone", "AndroidPhone", "Roku", "Xbox"} {
		m, _ := device.ByName(name)
		fleet = append(fleet, m)
	}
	systems, uncovered := drm.RequiredSystems(fleet)
	fmt.Println("systems needed:", systems)
	fmt.Println("uncovered:", uncovered)
	// Output:
	// systems needed: [Widevine PlayReady FairPlay]
	// uncovered: []
}
