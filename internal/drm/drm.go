// Package drm models the Digital Rights Management step of packaging
// (§2: "Publishers optionally use DRM software to encrypt the video so
// that only authenticated users can access it"). The paper's dataset
// could not observe DRM usage (§3, dataset limitations); this package
// supplies the substitute substrate: the three commercial DRM systems,
// their device compatibility (which multiplies the §5 management
// matrix), a license server with key rotation, and the license-exchange
// latency a protected session pays at startup.
package drm

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"vmp/internal/device"
	"vmp/internal/dist"
)

// System is a commercial DRM system.
type System int

// The three systems that between them cover the device zoo: a
// publisher protecting content on all platforms must package and
// manage licenses for all three (multi-DRM).
const (
	Widevine System = iota
	PlayReady
	FairPlay
)

// Systems lists all DRM systems.
var Systems = []System{Widevine, PlayReady, FairPlay}

// String names the system.
func (s System) String() string {
	switch s {
	case Widevine:
		return "Widevine"
	case PlayReady:
		return "PlayReady"
	case FairPlay:
		return "FairPlay"
	default:
		return fmt.Sprintf("System(%d)", int(s))
	}
}

// SupportsDevice reports whether the system's CDM ships on the device:
// FairPlay is Apple-only; PlayReady covers the Microsoft lineage
// (Xbox, Silverlight) and most smart TVs; Widevine covers Android,
// Chrome-lineage browsers, and the open set-top ecosystem.
func (s System) SupportsDevice(m device.Model) bool {
	switch s {
	case FairPlay:
		return m.Apple
	case PlayReady:
		switch m.Name {
		case "Xbox", "Silverlight", "SamsungTV", "LGTV", "Roku":
			return true
		}
		return false
	case Widevine:
		if m.Apple {
			return false
		}
		switch m.Name {
		case "Xbox", "Silverlight", "Flash":
			return false
		}
		return true
	default:
		return false
	}
}

// SystemsFor returns the DRM systems usable on a device.
func SystemsFor(m device.Model) []System {
	var out []System
	for _, s := range Systems {
		if s.SupportsDevice(m) {
			out = append(out, s)
		}
	}
	return out
}

// RequiredSystems returns the minimal multi-DRM set covering every
// given device (greedy by coverage; exact for this three-system
// matrix). Devices no system covers are reported in uncovered.
func RequiredSystems(models []device.Model) (systems []System, uncovered []string) {
	need := map[string]device.Model{}
	for _, m := range models {
		need[m.Name] = m
	}
	for len(need) > 0 {
		best, bestCover := System(-1), 0
		for _, s := range Systems {
			if containsSystem(systems, s) {
				continue
			}
			cover := 0
			for _, m := range need {
				if s.SupportsDevice(m) {
					cover++
				}
			}
			if cover > bestCover {
				best, bestCover = s, cover
			}
		}
		if bestCover == 0 {
			for name := range need {
				uncovered = append(uncovered, name)
			}
			sort.Strings(uncovered)
			break
		}
		systems = append(systems, best)
		for name, m := range need {
			if best.SupportsDevice(m) {
				delete(need, name)
			}
		}
	}
	return systems, uncovered
}

func containsSystem(xs []System, s System) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

// License grants playback of one piece of content on one device class.
type License struct {
	System    System
	ContentID string
	KeyEpoch  int64 // which rotation epoch the key belongs to
	ExpiresAt time.Time
}

// Valid reports whether the license covers playback at time t.
func (l License) Valid(t time.Time) bool { return t.Before(l.ExpiresAt) }

// KeyServer issues licenses and rotates content keys. Live content
// rotates keys periodically, forcing mid-session license renewals; VoD
// keys are stable. KeyServer is safe for concurrent use.
type KeyServer struct {
	rotation time.Duration
	ttl      time.Duration

	mu      sync.Mutex
	src     *dist.Source
	issued  int64
	refused int64
}

// NewKeyServer returns a key server rotating live keys every rotation
// (0 disables rotation) and issuing licenses valid for ttl (0 means
// 24h).
func NewKeyServer(src *dist.Source, rotation, ttl time.Duration) (*KeyServer, error) {
	if src == nil {
		return nil, fmt.Errorf("drm: nil randomness source")
	}
	if ttl <= 0 {
		ttl = 24 * time.Hour
	}
	return &KeyServer{rotation: rotation, ttl: ttl, src: src}, nil
}

// Request is a license request from a player.
type Request struct {
	ContentID string
	Device    device.Model
	System    System
	Live      bool
	Now       time.Time // simulated time of the request
}

// Issue grants a license, or an error when the device cannot run the
// requested system's CDM. The returned latency is the license-exchange
// round trip the session pays before its first frame.
func (ks *KeyServer) Issue(req Request) (License, time.Duration, error) {
	if req.ContentID == "" {
		return License{}, 0, fmt.Errorf("drm: empty content ID")
	}
	if !req.System.SupportsDevice(req.Device) {
		ks.mu.Lock()
		ks.refused++
		ks.mu.Unlock()
		return License{}, 0, fmt.Errorf("drm: %v has no %v CDM", req.Device.Name, req.System)
	}
	epoch := int64(0)
	ttl := ks.ttl
	if req.Live && ks.rotation > 0 {
		epoch = req.Now.UnixNano() / int64(ks.rotation)
		// A live license dies with its key epoch.
		epochEnd := time.Unix(0, (epoch+1)*int64(ks.rotation))
		if epochEnd.Before(req.Now.Add(ttl)) {
			ttl = epochEnd.Sub(req.Now)
		}
	}
	ks.mu.Lock()
	ks.issued++
	// License exchange: server processing plus provisioning jitter.
	latency := time.Duration((30 + ks.src.Float64()*50) * float64(time.Millisecond))
	ks.mu.Unlock()
	return License{
		System:    req.System,
		ContentID: req.ContentID,
		KeyEpoch:  epoch,
		ExpiresAt: req.Now.Add(ttl),
	}, latency, nil
}

// Stats returns the issue/refuse counters.
func (ks *KeyServer) Stats() (issued, refused int64) {
	ks.mu.Lock()
	defer ks.mu.Unlock()
	return ks.issued, ks.refused
}
