package packaging

import (
	"strings"
	"testing"

	"vmp/internal/manifest"
)

func liveSpec(chunkSec float64) manifest.Spec {
	return manifest.Spec{
		VideoID:  "live1",
		ChunkSec: chunkSec,
		Live:     true,
		Ladder:   GuidelineLadder(4000, 1.8),
	}
}

func TestGlassToGlassRequiresLive(t *testing.T) {
	spec := vodSpec()
	if _, err := GlassToGlass(spec, SelfHosted, 2, 0.05); err == nil {
		t.Fatal("VoD spec accepted")
	}
	bad := liveSpec(4)
	bad.Ladder = nil
	if _, err := GlassToGlass(bad, SelfHosted, 2, 0.05); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

func TestGlassToGlassAddsAFewSeconds(t *testing.T) {
	// §4.1: HTTP protocols "may add a few seconds of encoding and
	// packaging delay to live streams" over RTMP.
	l, err := GlassToGlass(liveSpec(4), SelfHosted, 2, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	rtmp := RTMPGlassToGlass(0.05)
	diff := l.Total() - rtmp.Total()
	if diff < 2 || diff > 20 {
		t.Fatalf("HTTP adds %.1fs over RTMP, want a few seconds", diff)
	}
	if l.Total() < 5 || l.Total() > 30 {
		t.Fatalf("HTTP glass-to-glass = %.1fs, implausible", l.Total())
	}
	if rtmp.Total() > 3 {
		t.Fatalf("RTMP glass-to-glass = %.1fs, should be low-latency", rtmp.Total())
	}
}

func TestGlassToGlassScalesWithChunkDuration(t *testing.T) {
	prev := 0.0
	for _, chunk := range []float64{2, 4, 6, 10} {
		l, err := GlassToGlass(liveSpec(chunk), SelfHosted, 3, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if l.Total() <= prev {
			t.Fatalf("latency not increasing with chunk duration at %vs", chunk)
		}
		prev = l.Total()
	}
}

func TestGlassToGlassCDNHostedCostsAnIngestHop(t *testing.T) {
	self, err := GlassToGlass(liveSpec(4), SelfHosted, 2, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	cdn, err := GlassToGlass(liveSpec(4), CDNHosted, 2, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if cdn.Total() <= self.Total() {
		t.Fatal("CDN-hosted packaging should add an ingest hop")
	}
	if cdn.Total()-self.Total() > 1 {
		t.Fatal("ingest hop should be sub-second")
	}
}

func TestGlassToGlassBufferTerm(t *testing.T) {
	two, _ := GlassToGlass(liveSpec(4), SelfHosted, 2, 0)
	four, _ := GlassToGlass(liveSpec(4), SelfHosted, 4, 0)
	if four.BufferSec-two.BufferSec != 8 {
		t.Fatalf("buffer delta = %v, want 2 chunks = 8s", four.BufferSec-two.BufferSec)
	}
	// Defaults clamp.
	def, _ := GlassToGlass(liveSpec(4), SelfHosted, 0, -1)
	if def.BufferSec != two.BufferSec || def.DeliverSec > two.DeliverSec {
		t.Fatal("defaults not applied for non-positive startup/RTT")
	}
}

func TestLatencyBreakdownString(t *testing.T) {
	l, _ := GlassToGlass(liveSpec(4), SelfHosted, 2, 0.05)
	s := l.String()
	for _, want := range []string{"encode=", "package=", "total="} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}
