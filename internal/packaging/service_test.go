package packaging

import (
	"testing"

	"vmp/internal/manifest"
)

func TestLocationStrings(t *testing.T) {
	if SelfHosted.String() != "self-hosted" || CDNHosted.String() != "cdn-hosted" {
		t.Fatal("location names wrong")
	}
	if Location(7).String() != "Location(7)" {
		t.Fatal("unknown location should format numerically")
	}
}

func TestPlanPipelineSelfHosted(t *testing.T) {
	spec := vodSpec()
	protos := []manifest.Protocol{manifest.HLS, manifest.DASH}
	plan, err := PlanPipeline(SelfHosted, spec, protos, false, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Packages) != 2 {
		t.Fatalf("packages = %d", len(plan.Packages))
	}
	if plan.PublisherCPU <= 0 || plan.CDNCPU != 0 {
		t.Fatalf("self-hosted CPU attribution wrong: pub=%v cdn=%v", plan.PublisherCPU, plan.CDNCPU)
	}
	// Upload = packaged bytes × CDN count.
	if plan.UploadBytes != plan.Cost.StorageBytes*3 {
		t.Fatalf("upload = %d, want storage×3", plan.UploadBytes)
	}
}

func TestPlanPipelineCDNHosted(t *testing.T) {
	// A large publisher's configuration: tall ladder, all four
	// protocols — the regime where shipping one mezzanine per CDN
	// beats shipping every packaged rendition.
	spec := vodSpec()
	spec.Ladder = GuidelineLadder(8000, 1.7)
	protos := manifest.HTTPProtocols
	self, err := PlanPipeline(SelfHosted, spec, protos, false, 3)
	if err != nil {
		t.Fatal(err)
	}
	cdn, err := PlanPipeline(CDNHosted, spec, protos, false, 3)
	if err != nil {
		t.Fatal(err)
	}
	if cdn.PublisherCPU != 0 || cdn.CDNCPU <= 0 {
		t.Fatalf("cdn-hosted CPU attribution wrong: %+v", cdn)
	}
	// Economy of scale: CDN fleet cheaper than publisher encoders.
	if cdn.CDNCPU >= self.PublisherCPU {
		t.Fatalf("CDN packaging CPU %v not below self-hosted %v", cdn.CDNCPU, self.PublisherCPU)
	}
	// With a multi-protocol ladder, shipping one mezzanine per CDN
	// beats shipping all packaged renditions to every CDN.
	if cdn.UploadBytes >= self.UploadBytes {
		t.Fatalf("mezzanine upload %d not below packaged upload %d", cdn.UploadBytes, self.UploadBytes)
	}
}

func TestPlanPipelineSingleProtocolUploadTradeoff(t *testing.T) {
	// With one protocol and a short ladder, the packaged output can be
	// smaller than the mezzanine — the trade-off §2 implies. Verify
	// the model expresses both regimes.
	spec := manifest.Spec{
		VideoID: "v", DurationSec: 600, ChunkSec: 4, AudioKbps: 0,
		Ladder: manifest.Ladder{{BitrateKbps: 400}},
	}
	self, err := PlanPipeline(SelfHosted, spec, []manifest.Protocol{manifest.HLS}, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	cdn, err := PlanPipeline(CDNHosted, spec, []manifest.Protocol{manifest.HLS}, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	if self.UploadBytes >= cdn.UploadBytes {
		t.Fatalf("tiny ladder should upload less self-hosted (%d) than a mezzanine (%d)",
			self.UploadBytes, cdn.UploadBytes)
	}
}

func TestPlanPipelineValidation(t *testing.T) {
	if _, err := PlanPipeline(SelfHosted, vodSpec(), []manifest.Protocol{manifest.HLS}, false, 0); err == nil {
		t.Error("zero CDNs accepted")
	}
	if _, err := PlanPipeline(Location(9), vodSpec(), []manifest.Protocol{manifest.HLS}, false, 1); err == nil {
		t.Error("unknown location accepted")
	}
	if _, err := PlanPipeline(SelfHosted, manifest.Spec{}, []manifest.Protocol{manifest.HLS}, false, 1); err == nil {
		t.Error("invalid spec accepted")
	}
}

func TestPlanPipelineLiveWindow(t *testing.T) {
	spec := vodSpec()
	spec.Live = true
	plan, err := PlanPipeline(CDNHosted, spec, []manifest.Protocol{manifest.HLS}, false, 2)
	if err != nil {
		t.Fatal(err)
	}
	vod, err := PlanPipeline(CDNHosted, vodSpec(), []manifest.Protocol{manifest.HLS}, false, 2)
	if err != nil {
		t.Fatal(err)
	}
	if plan.UploadBytes >= vod.UploadBytes {
		t.Fatal("live mezzanine should be windowed, not full-duration")
	}
}
