package packaging

import (
	"fmt"

	"vmp/internal/manifest"
)

// Live latency model (§4.1): "our publishers prefer HTTP-based
// streaming protocols even though these protocols may add a few
// seconds of encoding and packaging delay to live streams". This file
// models glass-to-glass latency — camera to viewer's screen — as the
// sum of the pipeline stages the management plane controls.

// LatencyBreakdown itemizes one live stream's glass-to-glass latency.
type LatencyBreakdown struct {
	EncodeSec     float64 // ingest + transcode lookahead
	PackageSec    float64 // chunk accumulation before a chunk can publish
	DistributeSec float64 // origin → edge propagation
	DeliverSec    float64 // client request + download of the first chunk
	BufferSec     float64 // client startup buffer before playout
}

// Total returns the end-to-end latency.
func (l LatencyBreakdown) Total() float64 {
	return l.EncodeSec + l.PackageSec + l.DistributeSec + l.DeliverSec + l.BufferSec
}

// String itemizes the breakdown.
func (l LatencyBreakdown) String() string {
	return fmt.Sprintf("encode=%.1fs package=%.1fs distribute=%.1fs deliver=%.1fs buffer=%.1fs total=%.1fs",
		l.EncodeSec, l.PackageSec, l.DistributeSec, l.DeliverSec, l.BufferSec, l.Total())
}

// Latency-model constants: encoder lookahead, origin→edge propagation,
// and the CDN-packaging ingest hop.
const (
	encodeLookaheadSec  = 1.0
	originToEdgeSec     = 0.5
	cdnIngestSec        = 0.4 // extra hop when the CDN packages (mezzanine ingest)
	deliverFractionOfRT = 0.8 // first chunk downloads slightly faster than real time
)

// GlassToGlass models a live stream's end-to-end latency for a chunked
// HTTP protocol, given the packaging location and the client's startup
// buffer in chunks. RTMP-style streaming would avoid the packaging and
// buffer terms, which is the low-latency appeal §4.1 notes — and the
// scalability trade-off that nonetheless pushed publishers to HTTP.
func GlassToGlass(spec manifest.Spec, loc Location, startupChunks int, rttSec float64) (LatencyBreakdown, error) {
	if !spec.Live {
		return LatencyBreakdown{}, fmt.Errorf("packaging: glass-to-glass latency applies to live specs")
	}
	if err := spec.Validate(); err != nil {
		return LatencyBreakdown{}, err
	}
	if startupChunks <= 0 {
		startupChunks = 2
	}
	if rttSec < 0 {
		rttSec = 0
	}
	l := LatencyBreakdown{
		EncodeSec:     encodeLookaheadSec,
		PackageSec:    spec.ChunkSec, // a chunk publishes only when complete
		DistributeSec: originToEdgeSec,
		DeliverSec:    rttSec + spec.ChunkSec*deliverFractionOfRT,
		BufferSec:     float64(startupChunks-1) * spec.ChunkSec,
	}
	if loc == CDNHosted {
		l.DistributeSec += cdnIngestSec
	}
	return l, nil
}

// RTMPGlassToGlass is the comparison point: a persistent-connection
// streaming protocol with no chunk accumulation and a sub-second
// client buffer.
func RTMPGlassToGlass(rttSec float64) LatencyBreakdown {
	if rttSec < 0 {
		rttSec = 0
	}
	return LatencyBreakdown{
		EncodeSec:     encodeLookaheadSec,
		DistributeSec: originToEdgeSec,
		DeliverSec:    rttSec,
		BufferSec:     0.8,
	}
}
