package packaging_test

import (
	"fmt"

	"vmp/internal/manifest"
	"vmp/internal/packaging"
)

// ExampleGuidelineLadder builds an HLS-guideline bitrate ladder: a
// floor rung under 192 Kbps and 1.5-2x steps up to the ceiling.
func ExampleGuidelineLadder() {
	ladder := packaging.GuidelineLadder(3000, 1.8)
	fmt.Println(ladder.Bitrates())
	// Output:
	// [150 270 486 875 1575 2834 3000]
}

// ExampleGlassToGlass itemizes the live latency a chunked HTTP
// protocol costs over RTMP (§4.1's "a few seconds").
func ExampleGlassToGlass() {
	spec := manifest.Spec{
		VideoID:  "match-day",
		ChunkSec: 4,
		Live:     true,
		Ladder:   packaging.GuidelineLadder(4000, 1.8),
	}
	http, err := packaging.GlassToGlass(spec, packaging.SelfHosted, 2, 0.05)
	if err != nil {
		panic(err)
	}
	rtmp := packaging.RTMPGlassToGlass(0.05)
	fmt.Printf("chunked HTTP: %.2fs\n", http.Total())
	fmt.Printf("RTMP:         %.2fs\n", rtmp.Total())
	fmt.Printf("HTTP penalty: %.2fs\n", http.Total()-rtmp.Total())
	// Output:
	// chunked HTTP: 12.75s
	// RTMP:         2.35s
	// HTTP penalty: 10.40s
}
