package packaging

import (
	"testing"
	"testing/quick"

	"vmp/internal/dist"
	"vmp/internal/manifest"
)

func vodSpec() manifest.Spec {
	return manifest.Spec{
		VideoID:     "v1",
		DurationSec: 600,
		ChunkSec:    4,
		AudioKbps:   96,
		Ladder:      GuidelineLadder(4000, 1.8),
	}
}

func TestGuidelineLadderFloor(t *testing.T) {
	// HLS guidance: at least one bitrate under 192 Kbps.
	for _, max := range []int{500, 2000, 8000, 20000} {
		l := GuidelineLadder(max, 1.8)
		if l.Min() > 192 {
			t.Errorf("max=%d: ladder floor %d exceeds 192 Kbps", max, l.Min())
		}
		if l.Max() != max {
			t.Errorf("max=%d: ladder top is %d", max, l.Max())
		}
	}
}

func TestGuidelineLadderSteps(t *testing.T) {
	l := GuidelineLadder(8000, 1.7)
	for i := 1; i < len(l); i++ {
		ratio := float64(l[i].BitrateKbps) / float64(l[i-1].BitrateKbps)
		// Successive bitrates within 1.5-2x, with slack for the final
		// rung which is pinned to maxKbps and for rounding.
		if ratio < 1.05 || ratio > 2.1 {
			t.Errorf("rung %d/%d ratio %v outside guideline", l[i].BitrateKbps, l[i-1].BitrateKbps, ratio)
		}
	}
}

func TestGuidelineLadderClamps(t *testing.T) {
	// Degenerate inputs must still produce a usable ladder.
	l := GuidelineLadder(10, 0.5)
	if len(l) == 0 || l.Max() < 150 {
		t.Fatalf("clamped ladder unusable: %v", l)
	}
	l = GuidelineLadder(8000, 99)
	for i := 1; i < len(l); i++ {
		if float64(l[i].BitrateKbps)/float64(l[i-1].BitrateKbps) > 2.1 {
			t.Fatal("step should clamp to 2")
		}
	}
}

func TestRenditionFor(t *testing.T) {
	r := RenditionFor(250)
	if r.Width != 416 || r.Height != 234 {
		t.Errorf("250 Kbps -> %dx%d", r.Width, r.Height)
	}
	r = RenditionFor(4000)
	if r.Height != 1080 {
		t.Errorf("4000 Kbps -> height %d, want 1080", r.Height)
	}
	r = RenditionFor(50000)
	if r.Height != 2160 {
		t.Errorf("50 Mbps -> height %d, want 2160 (4K)", r.Height)
	}
	if r.BitrateKbps != 50000 {
		t.Error("RenditionFor must preserve the bitrate")
	}
}

func TestPerTitleLadderDeterminism(t *testing.T) {
	s1 := dist.NewSource(5).Split("ladder")
	s2 := dist.NewSource(5).Split("ladder")
	l1 := PerTitleLadder(s1, 6000, 1.1)
	l2 := PerTitleLadder(s2, 6000, 1.1)
	if len(l1) != len(l2) {
		t.Fatal("same seed produced different ladder sizes")
	}
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Fatal("same seed produced different ladders")
		}
	}
}

func TestPerTitleLadderVariesAcrossPublishers(t *testing.T) {
	root := dist.NewSource(5)
	a := PerTitleLadder(root.Split("pub-a"), 6000, 1)
	b := PerTitleLadder(root.Split("pub-b"), 6000, 1)
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i].BitrateKbps != b[i].BitrateKbps {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("independent publishers produced identical per-title ladders")
	}
}

func TestPerTitleLadderComplexityClamp(t *testing.T) {
	l := PerTitleLadder(dist.NewSource(1), 4000, -5)
	if len(l) == 0 {
		t.Fatal("non-positive complexity should clamp, not break")
	}
}

func TestNewPackageValidates(t *testing.T) {
	if _, err := NewPackage(manifest.Spec{}, manifest.HLS, false); err == nil {
		t.Error("invalid spec accepted")
	}
	if _, err := NewPackage(vodSpec(), manifest.RTMP, false); err == nil {
		t.Error("RTMP is not packageable")
	}
	if _, err := NewPackage(vodSpec(), manifest.HLS, true); err != nil {
		t.Errorf("valid package rejected: %v", err)
	}
}

func TestChunkBytes(t *testing.T) {
	pkg, err := NewPackage(vodSpec(), manifest.DASH, false)
	if err != nil {
		t.Fatal(err)
	}
	// Rendition 0 is the 150 Kbps floor: (150+96)Kbps * 4s / 8.
	want := int64(246 * 1000 * 4 / 8)
	if got := pkg.ChunkBytes(0); got != want {
		t.Fatalf("ChunkBytes(0) = %d, want %d", got, want)
	}
}

func TestStorageBytesMatchesPaperModel(t *testing.T) {
	spec := manifest.Spec{
		VideoID: "v", DurationSec: 100, ChunkSec: 4, AudioKbps: 0,
		Ladder: manifest.Ladder{{BitrateKbps: 800}, {BitrateKbps: 1600}},
	}
	pkg, err := NewPackage(spec, manifest.HLS, false)
	if err != nil {
		t.Fatal(err)
	}
	// (800 + 1600) Kbps * 100 s / 8 = 30 MB.
	want := int64((800 + 1600) * 1000 * 100 / 8)
	if got := pkg.StorageBytes(); got != want {
		t.Fatalf("StorageBytes = %d, want %d", got, want)
	}
}

func TestLiveStorageIsWindowed(t *testing.T) {
	spec := vodSpec()
	spec.Live = true
	pkg, err := NewPackage(spec, manifest.HLS, false)
	if err != nil {
		t.Fatal(err)
	}
	vodPkg, _ := NewPackage(vodSpec(), manifest.HLS, false)
	if pkg.StorageBytes() >= vodPkg.StorageBytes() {
		t.Fatal("live storage should be bounded by the sliding window")
	}
}

func TestJobCost(t *testing.T) {
	pkg, err := NewPackage(vodSpec(), manifest.HLS, false)
	if err != nil {
		t.Fatal(err)
	}
	c := pkg.JobCost()
	if c.CPUSeconds <= 0 || c.StorageBytes <= 0 || c.Objects <= 0 {
		t.Fatalf("degenerate cost %+v", c)
	}
	if c.Objects != len(pkg.Spec.Ladder)*pkg.Spec.ChunkCount() {
		t.Fatalf("Objects = %d, want renditions×chunks", c.Objects)
	}
	if c.LatencySec != pkg.Spec.ChunkSec {
		t.Fatalf("LatencySec = %v, want one chunk duration", c.LatencySec)
	}
	drm, _ := NewPackage(vodSpec(), manifest.HLS, true)
	if drm.JobCost().CPUSeconds <= c.CPUSeconds {
		t.Fatal("DRM packaging should cost more CPU")
	}
}

func TestPipelineCostScalesWithProtocols(t *testing.T) {
	spec := vodSpec()
	one, c1, err := Pipeline(spec, []manifest.Protocol{manifest.HLS}, false)
	if err != nil {
		t.Fatal(err)
	}
	three, c3, err := Pipeline(spec, []manifest.Protocol{manifest.HLS, manifest.DASH, manifest.Smooth}, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 || len(three) != 3 {
		t.Fatalf("package counts %d, %d", len(one), len(three))
	}
	// The §5 claim: packaging work is proportional to protocol count.
	if c3.CPUSeconds < 2.9*c1.CPUSeconds || c3.CPUSeconds > 3.1*c1.CPUSeconds {
		t.Fatalf("3-protocol CPU %v not ~3x 1-protocol %v", c3.CPUSeconds, c1.CPUSeconds)
	}
	if c3.StorageBytes != 3*c1.StorageBytes {
		t.Fatalf("3-protocol storage %d != 3x %d", c3.StorageBytes, c1.StorageBytes)
	}
}

func TestPipelineRejectsBadProtocol(t *testing.T) {
	if _, _, err := Pipeline(vodSpec(), []manifest.Protocol{manifest.Unknown}, false); err == nil {
		t.Fatal("Unknown protocol accepted")
	}
}

func TestPackageManifestParses(t *testing.T) {
	for _, proto := range manifest.HTTPProtocols {
		pkg, err := NewPackage(vodSpec(), proto, false)
		if err != nil {
			t.Fatal(err)
		}
		text, err := pkg.Manifest("http://cdn/pub")
		if err != nil {
			t.Fatalf("%v: %v", proto, err)
		}
		url := manifest.ManifestURL(proto, "http://cdn/pub", pkg.Spec.VideoID)
		if _, err := manifest.Parse(url, text); err != nil {
			t.Fatalf("%v: generated manifest does not parse: %v", proto, err)
		}
	}
}

// Property: guideline ladders are strictly increasing and respect the
// floor/ceiling invariants for any max bitrate and step.
func TestGuidelineLadderProperty(t *testing.T) {
	f := func(maxK uint16, stepHundredths uint8) bool {
		max := int(maxK%20000) + 200
		step := 1.5 + float64(stepHundredths%51)/100
		l := GuidelineLadder(max, step)
		if len(l) == 0 || l.Min() > 192 || l.Max() != max {
			return false
		}
		for i := 1; i < len(l); i++ {
			if l[i].BitrateKbps <= l[i-1].BitrateKbps {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: storage is additive over the ladder.
func TestStorageAdditiveProperty(t *testing.T) {
	f := func(b1, b2 uint16, dur uint16) bool {
		k1, k2 := int(b1%5000)+100, int(b2%5000)+100
		d := float64(dur%3600) + 60
		mk := func(ladder manifest.Ladder) int64 {
			spec := manifest.Spec{VideoID: "v", DurationSec: d, ChunkSec: 4, Ladder: ladder}
			pkg, err := NewPackage(spec, manifest.HLS, false)
			if err != nil {
				return -1
			}
			return pkg.StorageBytes()
		}
		both := mk(manifest.Ladder{{BitrateKbps: k1}, {BitrateKbps: k2}})
		solo1 := mk(manifest.Ladder{{BitrateKbps: k1}})
		solo2 := mk(manifest.Ladder{{BitrateKbps: k2}})
		if both < 0 || solo1 < 0 || solo2 < 0 {
			return false
		}
		diff := both - solo1 - solo2
		return diff >= -2 && diff <= 2 // integer truncation slack
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
