package packaging

import (
	"fmt"

	"vmp/internal/manifest"
)

// Location says where packaging runs (§2): publishers either push
// packaged chunks to each CDN themselves, or push the mezzanine master
// once and let a CDN packaging service encapsulate it on their behalf.
type Location int

// Packaging locations.
const (
	SelfHosted Location = iota
	CDNHosted
)

// String names the location.
func (l Location) String() string {
	switch l {
	case SelfHosted:
		return "self-hosted"
	case CDNHosted:
		return "cdn-hosted"
	default:
		return fmt.Sprintf("Location(%d)", int(l))
	}
}

// mezzanineKbps is the bitrate of the master ("mezzanine") copy a
// publisher uploads when the CDN packages on its behalf — masters are
// lightly compressed, well above the top delivery rung.
const mezzanineKbps = 30000

// cdnScaleFactor is the economy of scale a CDN packaging fleet enjoys
// over a publisher's own encoders (§5: "packaging performed by CDNs
// may offer better economies of scale, the associated overheads remain
// irrespective of who does the packaging").
const cdnScaleFactor = 0.8

// Plan is the outcome of planning packaging for one title across a
// publisher's protocols and CDNs: the packages produced, the resource
// cost, who bears the compute, and what crosses the publisher→CDN
// link.
type Plan struct {
	Location     Location
	Packages     []*Package
	Cost         Cost // total compute/storage regardless of payer
	PublisherCPU float64
	CDNCPU       float64
	// UploadBytes is the publisher→CDN transfer: packaged chunks to
	// every CDN when self-hosted, one mezzanine per CDN when
	// CDN-hosted.
	UploadBytes int64
}

// PlanPipeline packages spec for every protocol at the given location,
// fanning out to cdnCount CDNs. It generalizes Pipeline with cost
// attribution.
func PlanPipeline(loc Location, spec manifest.Spec, protocols []manifest.Protocol, drm bool, cdnCount int) (*Plan, error) {
	if cdnCount <= 0 {
		return nil, fmt.Errorf("packaging: need at least one CDN, got %d", cdnCount)
	}
	pkgs, cost, err := Pipeline(spec, protocols, drm)
	if err != nil {
		return nil, err
	}
	plan := &Plan{Location: loc, Packages: pkgs, Cost: cost}
	dur := spec.DurationSec
	if spec.Live {
		dur = spec.ChunkSec * float64(spec.ChunkCount())
	}
	mezzanine := int64(mezzanineKbps * 1000 * dur / 8)
	switch loc {
	case SelfHosted:
		plan.PublisherCPU = cost.CPUSeconds
		// Every CDN receives the full packaged output.
		plan.UploadBytes = cost.StorageBytes * int64(cdnCount)
	case CDNHosted:
		plan.CDNCPU = cost.CPUSeconds * cdnScaleFactor
		plan.Cost.CPUSeconds = plan.CDNCPU
		// One mezzanine upload per CDN; the CDN fans out internally.
		plan.UploadBytes = mezzanine * int64(cdnCount)
	default:
		return nil, fmt.Errorf("packaging: unknown location %v", loc)
	}
	return plan, nil
}
