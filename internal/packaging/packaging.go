// Package packaging models the content-preparation half of the video
// management plane (§2): transcoding a master file into a bitrate
// ladder, breaking each rendition into chunks, encapsulating the chunks
// for one or more streaming protocols, and accounting for the compute
// and storage that packaging consumes. The paper's Protocol-titles
// complexity metric (§5) and origin-storage analysis (§6) both rest on
// this model.
package packaging

import (
	"fmt"
	"math"

	"vmp/internal/dist"
	"vmp/internal/manifest"
)

// Codec identifies a video encoding format.
type Codec string

// The encodings named in §2.
const (
	H264 Codec = "H.264"
	H265 Codec = "H.265"
	VP9  Codec = "VP9"
)

// rungs maps a video bitrate to a plausible resolution, following
// common encoding guidelines (e.g. Apple TN2224).
var rungs = []struct {
	maxKbps       int
	width, height int
	codecTag      string
}{
	{300, 416, 234, "avc1.42c00d"},
	{600, 640, 360, "avc1.42c01e"},
	{1200, 768, 432, "avc1.4d401e"},
	{2500, 1280, 720, "avc1.4d401f"},
	{5000, 1920, 1080, "avc1.640028"},
	{10000, 2560, 1440, "avc1.640032"},
	{math.MaxInt, 3840, 2160, "hvc1.1.6.L120"},
}

// RenditionFor returns a fully populated rendition (resolution, codec
// tag) for a video bitrate.
func RenditionFor(kbps int) manifest.Rendition {
	for _, r := range rungs {
		if kbps <= r.maxKbps {
			return manifest.Rendition{BitrateKbps: kbps, Width: r.width, Height: r.height, Codec: r.codecTag}
		}
	}
	last := rungs[len(rungs)-1]
	return manifest.Rendition{BitrateKbps: kbps, Width: last.width, Height: last.height, Codec: last.codecTag}
}

// GuidelineLadder builds a bitrate ladder following the HLS
// specification guidance cited in §6: at least one rendition at or
// below 192 Kbps, and each successive bitrate within a multiplicative
// factor of 1.5-2x of the previous, up to maxKbps. step controls the
// growth factor and must lie in [1.5, 2]; values outside are clamped.
func GuidelineLadder(maxKbps int, step float64) manifest.Ladder {
	if maxKbps < 150 {
		maxKbps = 150
	}
	if step < 1.5 {
		step = 1.5
	}
	if step > 2 {
		step = 2
	}
	var ladder manifest.Ladder
	b := 150.0 // the ≤192 Kbps floor rung
	for {
		kbps := int(math.Round(b))
		if kbps >= maxKbps {
			ladder = append(ladder, RenditionFor(maxKbps))
			break
		}
		ladder = append(ladder, RenditionFor(kbps))
		b *= step
	}
	return ladder
}

// PerTitleLadder perturbs a guideline ladder the way per-title encoding
// does (§6, Netflix per-title optimization): each publisher picks its
// own rung count and scales rung bitrates by content complexity, so two
// publishers encoding the same title land on similar-but-not-identical
// ladders. src drives the perturbation deterministically.
func PerTitleLadder(src *dist.Source, maxKbps int, complexity float64) manifest.Ladder {
	if complexity <= 0 {
		complexity = 1
	}
	step := src.Uniform(1.5, 2.0)
	base := GuidelineLadder(int(float64(maxKbps)*complexity), step)
	out := make(manifest.Ladder, 0, len(base))
	for _, r := range base {
		jitter := src.Uniform(0.92, 1.08)
		out = append(out, RenditionFor(int(float64(r.BitrateKbps)*jitter)))
	}
	return out
}

// Package is one packaged form of one video: a (title, protocol,
// ladder) triple with chunking already applied, ready for distribution
// to a CDN origin.
type Package struct {
	Spec     manifest.Spec
	Protocol manifest.Protocol
	DRM      bool // encrypted with a DRM system before encapsulation
}

// NewPackage encapsulates spec with the given protocol. It validates
// the spec because a Package is the boundary where content leaves the
// publisher and malformed specs must not propagate to CDNs.
func NewPackage(spec manifest.Spec, p manifest.Protocol, drm bool) (*Package, error) {
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("packaging: %w", err)
	}
	switch p {
	case manifest.HLS, manifest.DASH, manifest.Smooth, manifest.HDS:
	default:
		return nil, fmt.Errorf("packaging: %v is not a packageable protocol", p)
	}
	return &Package{Spec: spec, Protocol: p, DRM: drm}, nil
}

// Manifest renders the package's manifest for distribution under
// baseURL.
func (p *Package) Manifest(baseURL string) (string, error) {
	return manifest.Generate(p.Protocol, &p.Spec, baseURL)
}

// ChunkBytes returns the size in bytes of one chunk of the given
// rendition: bitrate × chunk duration (plus the audio track, which
// streaming packagers mux into or alongside each video chunk).
func (p *Package) ChunkBytes(rendition int) int64 {
	r := p.Spec.Ladder[rendition]
	bitsPerSec := float64(r.BitrateKbps+p.Spec.AudioKbps) * 1000
	return int64(bitsPerSec * p.Spec.ChunkSec / 8)
}

// StorageBytes returns the total bytes this package occupies at an
// origin: the §6 storage model ("multiplying for each video ID, its
// encoded bitrates by its duration in seconds, and summing these
// products").
func (p *Package) StorageBytes() int64 {
	var total int64
	dur := p.Spec.DurationSec
	if p.Spec.Live {
		// Live content retains only the sliding window.
		dur = p.Spec.ChunkSec * float64(p.Spec.ChunkCount())
	}
	for _, r := range p.Spec.Ladder {
		total += int64(float64(r.BitrateKbps+p.Spec.AudioKbps) * 1000 * dur / 8)
	}
	return total
}

// Cost captures the resources one packaging job consumes.
type Cost struct {
	CPUSeconds   float64 // transcode + encapsulation compute
	StorageBytes int64   // origin bytes produced
	Objects      int     // chunk objects written (renditions × chunks)
	LatencySec   float64 // added end-to-end delay for live content (§4.1)
}

// transcodeSpeed is the simulated transcode throughput in output
// seconds per CPU second per rendition; DRM encryption adds overhead.
const (
	transcodeSpeed = 8.0
	drmOverhead    = 1.15
)

// JobCost returns the cost of packaging p from a mezzanine master.
func (p *Package) JobCost() Cost {
	dur := p.Spec.DurationSec
	if p.Spec.Live {
		dur = p.Spec.ChunkSec * float64(p.Spec.ChunkCount())
	}
	cpu := dur * float64(len(p.Spec.Ladder)) / transcodeSpeed
	if p.DRM {
		cpu *= drmOverhead
	}
	return Cost{
		CPUSeconds:   cpu,
		StorageBytes: p.StorageBytes(),
		Objects:      len(p.Spec.Ladder) * p.Spec.ChunkCount(),
		// Chunked HTTP protocols add roughly one chunk duration of
		// packaging delay to live streams (§4.1: "a few seconds").
		LatencySec: p.Spec.ChunkSec,
	}
}

// Pipeline packages one title for every protocol a publisher supports
// and accumulates the total cost — the Protocol-titles intuition from
// §5: "each publisher has to package each video separately for each
// protocol".
func Pipeline(spec manifest.Spec, protocols []manifest.Protocol, drm bool) ([]*Package, Cost, error) {
	var (
		pkgs  []*Package
		total Cost
	)
	for _, proto := range protocols {
		pkg, err := NewPackage(spec, proto, drm)
		if err != nil {
			return nil, Cost{}, err
		}
		c := pkg.JobCost()
		total.CPUSeconds += c.CPUSeconds
		total.StorageBytes += c.StorageBytes
		total.Objects += c.Objects
		if c.LatencySec > total.LatencySec {
			total.LatencySec = c.LatencySec
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, total, nil
}
