package cdnsim

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"vmp/internal/dist"
)

func TestOriginPushAndTotal(t *testing.T) {
	o := NewOrigin()
	o.Push("pub1", "c1", map[int]int64{800: 1000, 1600: 2000})
	if got := o.TotalBytes(); got != 3000 {
		t.Fatalf("TotalBytes = %d, want 3000", got)
	}
	// Re-pushing the same rendition replaces it.
	o.Push("pub1", "c1", map[int]int64{800: 1500})
	if got := o.TotalBytes(); got != 3500 {
		t.Fatalf("TotalBytes after replace = %d, want 3500", got)
	}
	if len(o.Copies()) != 2 {
		t.Fatalf("copies = %d, want 2", len(o.Copies()))
	}
	// Non-positive sizes are ignored.
	o.Push("pub1", "c1", map[int]int64{400: 0})
	if len(o.Copies()) != 2 {
		t.Fatal("zero-byte rendition admitted")
	}
}

func TestOriginHasContent(t *testing.T) {
	o := NewOrigin()
	o.Push("pub1", "c1", map[int]int64{800: 1})
	if !o.HasContent("pub1", "c1") || o.HasContent("pub2", "c1") || o.HasContent("pub1", "c2") {
		t.Fatal("HasContent wrong")
	}
}

func TestDedupExactMatch(t *testing.T) {
	o := NewOrigin()
	// Two publishers store the same title at an identical bitrate.
	o.Push("owner", "c1", map[int]int64{800: 1000})
	o.Push("synd", "c1", map[int]int64{800: 900})
	if got := o.DedupSavings(0); got != 900 {
		t.Fatalf("exact dedup = %d, want 900 (the smaller copy)", got)
	}
	// Different content must never merge.
	o2 := NewOrigin()
	o2.Push("owner", "c1", map[int]int64{800: 1000})
	o2.Push("synd", "c2", map[int]int64{800: 900})
	if got := o2.DedupSavings(0.10); got != 0 {
		t.Fatalf("cross-content dedup = %d, want 0", got)
	}
}

func TestDedupTolerance(t *testing.T) {
	o := NewOrigin()
	o.Push("owner", "c1", map[int]int64{1000: 1000})
	o.Push("synd", "c1", map[int]int64{1040: 900})  // within 5%
	o.Push("synd2", "c1", map[int]int64{1200: 800}) // within 10% of 1100? 1200/1040=1.15 of rep
	if got := o.DedupSavings(0); got != 0 {
		t.Fatalf("exact dedup merged unequal bitrates: %d", got)
	}
	if got := o.DedupSavings(0.05); got != 900 {
		t.Fatalf("5%% dedup = %d, want 900", got)
	}
	// At 25% tolerance all three cluster together.
	if got := o.DedupSavings(0.25); got != 900+800 {
		t.Fatalf("25%% dedup = %d, want 1700", got)
	}
	// Negative tolerance clamps to exact.
	if got := o.DedupSavings(-1); got != 0 {
		t.Fatalf("negative tolerance = %d, want 0", got)
	}
}

func TestDedupMonotoneInTolerance(t *testing.T) {
	src := dist.NewSource(3)
	o := NewOrigin()
	for p := 0; p < 5; p++ {
		ladder := map[int]int64{}
		for r := 0; r < 8; r++ {
			kbps := int(src.Uniform(150, 8000))
			ladder[kbps] = int64(kbps) * 1000
		}
		o.Push(fmt.Sprintf("pub%d", p), "c1", ladder)
	}
	prev := int64(-1)
	for _, tol := range []float64{0, 0.02, 0.05, 0.10, 0.20, 0.50} {
		s := o.DedupSavings(tol)
		if s < prev {
			t.Fatalf("savings not monotone: tol %v gave %d < %d", tol, s, prev)
		}
		if s > o.TotalBytes() {
			t.Fatalf("savings %d exceed stored bytes %d", s, o.TotalBytes())
		}
		prev = s
	}
}

func TestDedupKeepsLargerCopy(t *testing.T) {
	// The higher-quality (larger) copy must be the survivor.
	o := NewOrigin()
	o.Push("a", "c1", map[int]int64{1000: 500})
	o.Push("b", "c1", map[int]int64{1000: 2000})
	if got := o.DedupSavings(0); got != 500 {
		t.Fatalf("dedup reclaimed %d, want 500 (keep the 2000-byte copy)", got)
	}
}

func TestIntegratedSavings(t *testing.T) {
	o := NewOrigin()
	o.Push("owner", "c1", map[int]int64{800: 1000, 1600: 2000})
	o.Push("s1", "c1", map[int]int64{750: 900})
	o.Push("s2", "c1", map[int]int64{820: 950, 1700: 1800})
	owners := map[string]string{"c1": "owner"}
	if got := o.IntegratedSavings(owners); got != 900+950+1800 {
		t.Fatalf("integrated savings = %d, want 3650", got)
	}
	// Unknown ownership: nothing reclaimed.
	if got := o.IntegratedSavings(map[string]string{}); got != 0 {
		t.Fatalf("unowned content reclaimed %d bytes", got)
	}
}

func TestIntegratedBeatsToleranceDedup(t *testing.T) {
	// Fig 18's ordering: integrated ≥ 10% ≥ 5% ≥ exact.
	src := dist.NewSource(5)
	o := NewOrigin()
	owners := map[string]string{}
	for c := 0; c < 10; c++ {
		cid := fmt.Sprintf("c%d", c)
		owners[cid] = "owner"
		o.Push("owner", cid, map[int]int64{800: 8000, 1600: 16000, 3200: 32000})
		for s := 0; s < 2; s++ {
			ladder := map[int]int64{}
			for r := 0; r < 5; r++ {
				kbps := int(src.Uniform(300, 5000))
				ladder[kbps] = int64(kbps) * 10
			}
			o.Push(fmt.Sprintf("synd%d", s), cid, ladder)
		}
	}
	rep := o.Savings(owners)
	if !(rep.Integrated >= rep.Tol10 && rep.Tol10 >= rep.Tol5 && rep.Tol5 >= rep.Exact) {
		t.Fatalf("savings ordering violated: %+v", rep)
	}
	if rep.IntegratedPct <= 0 || rep.IntegratedPct > 100 {
		t.Fatalf("integrated pct %v out of range", rep.IntegratedPct)
	}
	if rep.String() == "" {
		t.Fatal("empty report string")
	}
}

func TestEdgeCacheLRU(t *testing.T) {
	c := NewEdgeCache(100)
	if c.Serve("a", 40) {
		t.Fatal("first access cannot hit")
	}
	if !c.Serve("a", 40) {
		t.Fatal("second access must hit")
	}
	c.Serve("b", 40)
	// Touch a so b is the LRU victim.
	c.Serve("a", 40)
	c.Serve("c", 40) // evicts b
	if c.Contains("b") {
		t.Fatal("b should have been evicted")
	}
	if !c.Contains("a") || !c.Contains("c") {
		t.Fatal("a and c should remain")
	}
	if c.UsedBytes() != 80 {
		t.Fatalf("UsedBytes = %d, want 80", c.UsedBytes())
	}
}

func TestEdgeCacheOversizeObject(t *testing.T) {
	c := NewEdgeCache(100)
	if c.Serve("huge", 500) {
		t.Fatal("oversize object cannot hit")
	}
	if c.Contains("huge") || c.UsedBytes() != 0 {
		t.Fatal("oversize object must not be admitted")
	}
}

func TestEdgeCacheStats(t *testing.T) {
	c := NewEdgeCache(1000)
	c.Serve("a", 10)
	c.Serve("a", 10)
	c.Serve("b", 10)
	hits, misses := c.Stats()
	if hits != 1 || misses != 2 {
		t.Fatalf("stats = %d/%d, want 1/2", hits, misses)
	}
	if r := c.HitRatio(); r < 0.33 || r > 0.34 {
		t.Fatalf("HitRatio = %v, want 1/3", r)
	}
	if NewEdgeCache(10).HitRatio() != 0 {
		t.Fatal("fresh cache hit ratio should be 0")
	}
}

func TestEdgeCachePanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive capacity should panic")
		}
	}()
	NewEdgeCache(0)
}

func TestEdgeCacheConcurrency(t *testing.T) {
	c := NewEdgeCache(1 << 20)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				c.Serve(fmt.Sprintf("k%d", (g*31+i)%100), 1000)
			}
		}(g)
	}
	wg.Wait()
	if c.UsedBytes() > 1<<20 {
		t.Fatal("capacity exceeded under concurrency")
	}
}

func TestRegistryShape(t *testing.T) {
	r := NewRegistry(dist.NewSource(1))
	if len(r.All()) != TotalCDNCount {
		t.Fatalf("registry has %d CDNs, want %d", len(r.All()), TotalCDNCount)
	}
	if len(r.Top()) != 5 {
		t.Fatalf("top list has %d CDNs", len(r.Top()))
	}
	for i, name := range TopCDNNames {
		if r.Top()[i].Name != name {
			t.Fatalf("top CDN %d is %q, want %q", i, r.Top()[i].Name, name)
		}
	}
	// Exactly one of the top 3 uses anycast (§4.3).
	anycast := 0
	for _, c := range r.Top()[:3] {
		if c.Anycast {
			anycast++
		}
	}
	if anycast != 1 {
		t.Fatalf("%d of the top 3 CDNs use anycast, want exactly 1", anycast)
	}
	if _, ok := r.ByName("A"); !ok {
		t.Fatal("ByName(A) missed")
	}
	if _, ok := r.ByName("nope"); ok {
		t.Fatal("ByName resolved a ghost CDN")
	}
}

func TestRegistryDeterminism(t *testing.T) {
	r1 := NewRegistry(dist.NewSource(9))
	r2 := NewRegistry(dist.NewSource(9))
	for i, c := range r1.All() {
		if c.Quality("ISP-X") != r2.All()[i].Quality("ISP-X") {
			t.Fatal("registry quality not deterministic")
		}
	}
}

func TestCDNQualityDefaultsAndClamps(t *testing.T) {
	c := NewCDN("T", false, false, 1<<20)
	if q := c.Quality("ISP-X"); q != 0.7 {
		t.Fatalf("default quality = %v, want 0.7", q)
	}
	c.SetQuality("ISP-X", -5)
	if q := c.Quality("ISP-X"); q <= 0 {
		t.Fatal("quality must clamp positive")
	}
	c.SetQuality("ISP-X", 99)
	if q := c.Quality("ISP-X"); q > 1.5 {
		t.Fatal("quality must clamp at 1.5")
	}
}

func TestCDNServeChunkPerISPEdges(t *testing.T) {
	c := NewCDN("T", false, false, 1<<20)
	c.ServeChunk("ISP-X", "u1", 100)
	if c.ServeChunk("ISP-Y", "u1", 100) {
		t.Fatal("edges must be per-ISP: ISP-Y cannot hit ISP-X's cache")
	}
	if !c.ServeChunk("ISP-X", "u1", 100) {
		t.Fatal("second request from same ISP should hit")
	}
}

func TestCDNTrafficAccounting(t *testing.T) {
	c := NewCDN("T", false, false, 1<<20)
	c.ServeChunk("ISP-X", "u1", 100)
	c.ServeChunk("ISP-X", "u1", 100) // hit — still accounted
	c.ServeChunk("ISP-Y", "u2", 50)
	total := c.Served()
	if total.Requests != 3 || total.Bytes != 250 {
		t.Fatalf("Served = %+v, want 3 requests / 250 bytes", total)
	}
	x := c.ServedByISP("ISP-X")
	if x.Requests != 2 || x.Bytes != 200 {
		t.Fatalf("ServedByISP(X) = %+v", x)
	}
	if z := c.ServedByISP("ISP-Z"); z.Requests != 0 {
		t.Fatalf("untouched ISP has traffic: %+v", z)
	}
}

func TestCDNTrafficAccountingConcurrent(t *testing.T) {
	c := NewCDN("T", false, false, 1<<20)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				c.ServeChunk("ISP-X", "u", 10)
			}
		}()
	}
	wg.Wait()
	if got := c.Served(); got.Requests != 4000 || got.Bytes != 40000 {
		t.Fatalf("Served = %+v", got)
	}
}

func TestBrokerSelection(t *testing.T) {
	r := NewRegistry(dist.NewSource(2))
	a, _ := r.ByName("A")
	b, _ := r.ByName("B")
	assigns := []Assignment{
		{CDN: a, Weight: 3},
		{CDN: b, Weight: 1},
	}
	src := dist.NewSource(77)
	counts := map[string]int{}
	var broker Broker
	for i := 0; i < 10000; i++ {
		c := broker.Select(assigns, false, src)
		counts[c.Name]++
	}
	fracA := float64(counts["A"]) / 10000
	if fracA < 0.70 || fracA > 0.80 {
		t.Fatalf("A selected %v of the time, want ~0.75", fracA)
	}
}

func TestBrokerSegregation(t *testing.T) {
	r := NewRegistry(dist.NewSource(2))
	a, _ := r.ByName("A")
	b, _ := r.ByName("B")
	assigns := []Assignment{
		{CDN: a, Weight: 1, VoDOnly: true},
		{CDN: b, Weight: 1, LiveOnly: true},
	}
	src := dist.NewSource(5)
	var broker Broker
	for i := 0; i < 100; i++ {
		if got := broker.Select(assigns, true, src); got != b {
			t.Fatal("live session routed to a VoD-only CDN")
		}
		if got := broker.Select(assigns, false, src); got != a {
			t.Fatal("VoD session routed to a live-only CDN")
		}
	}
	if got := Eligible(assigns, true); len(got) != 1 || got[0] != b {
		t.Fatalf("Eligible(live) = %v", got)
	}
}

func TestBrokerNoEligible(t *testing.T) {
	var broker Broker
	if broker.Select(nil, false, dist.NewSource(1)) != nil {
		t.Fatal("empty assignment should select nil")
	}
	r := NewRegistry(dist.NewSource(2))
	a, _ := r.ByName("A")
	assigns := []Assignment{{CDN: a, Weight: 1, VoDOnly: true}}
	if broker.Select(assigns, true, dist.NewSource(1)) != nil {
		t.Fatal("live session with only VoD CDNs should select nil")
	}
	if broker.Select([]Assignment{{CDN: a, Weight: 0}}, false, dist.NewSource(1)) != nil {
		t.Fatal("zero-weight assignment should be ineligible")
	}
}

// Property: dedup savings never exceed total bytes and integrated
// savings never exceed total bytes.
func TestSavingsBoundedProperty(t *testing.T) {
	f := func(seed uint32, nPubs, nRends uint8) bool {
		src := dist.NewSource(uint64(seed))
		o := NewOrigin()
		owners := map[string]string{"c": "pub0"}
		pubs := int(nPubs%5) + 1
		rends := int(nRends%6) + 1
		for p := 0; p < pubs; p++ {
			ladder := map[int]int64{}
			for r := 0; r < rends; r++ {
				kbps := int(src.Uniform(100, 4000))
				ladder[kbps] = int64(src.Uniform(1000, 100000))
			}
			o.Push(fmt.Sprintf("pub%d", p), "c", ladder)
		}
		rep := o.Savings(owners)
		return rep.Exact <= rep.TotalBytes && rep.Tol10 <= rep.TotalBytes &&
			rep.Integrated <= rep.TotalBytes && rep.Exact >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestOriginConcurrentPush(t *testing.T) {
	o := NewOrigin()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				o.Push(fmt.Sprintf("pub%d", g), fmt.Sprintf("c%d", i), map[int]int64{800: 10})
			}
		}(g)
	}
	wg.Wait()
	if got := o.TotalBytes(); got != 8*100*10 {
		t.Fatalf("TotalBytes = %d after concurrent pushes, want 8000", got)
	}
}
