// Package cdnsim simulates the content-distribution substrate of the
// management plane (§2, §4.3, §6): CDNs with origin storage and edge
// caches, the publisher→CDN assignment including live/VoD segregation,
// a CDN broker, and the origin-storage redundancy analysis that Fig. 18
// quantifies for syndicated content.
package cdnsim

import (
	"fmt"
	"sort"
	"sync"
)

// RenditionCopy is one publisher's stored copy of one rendition of one
// piece of content at an origin. ContentID names the underlying title
// (an owner's video ID): syndicated copies of the same title share a
// ContentID even though each syndicator publishes it under its own
// video ID, which is what makes cross-publisher dedup well-defined.
type RenditionCopy struct {
	Publisher   string
	ContentID   string
	BitrateKbps int
	Bytes       int64
}

// Origin is a CDN origin store to which publishers proactively push
// packaged content (§6: publishers "proactively push video content to
// a CDN origin server which serves cache misses from CDN edge
// servers"). It is safe for concurrent use.
type Origin struct {
	mu     sync.RWMutex
	copies []RenditionCopy
	index  map[originKey]int // (publisher, content, bitrate) → copies idx
	bytes  int64
}

type originKey struct {
	publisher string
	contentID string
	kbps      int
}

// NewOrigin returns an empty origin store.
func NewOrigin() *Origin { return &Origin{index: make(map[originKey]int)} }

// Push stores one publisher's rendition ladder for one piece of
// content. bitrateBytes maps each stored video bitrate (Kbps) to the
// bytes that rendition occupies (bitrate × duration / 8, as computed by
// the packaging layer). Pushing the same (publisher, content, bitrate)
// again replaces the copy, as re-packaging would.
func (o *Origin) Push(publisher, contentID string, bitrateBytes map[int]int64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	ladder := make([]int, 0, len(bitrateBytes))
	for kbps := range bitrateBytes {
		ladder = append(ladder, kbps)
	}
	sort.Ints(ladder)
	for _, kbps := range ladder {
		b := bitrateBytes[kbps]
		if b <= 0 {
			continue
		}
		key := originKey{publisher: publisher, contentID: contentID, kbps: kbps}
		if i, ok := o.index[key]; ok {
			o.bytes += b - o.copies[i].Bytes
			o.copies[i].Bytes = b
			continue
		}
		o.index[key] = len(o.copies)
		o.copies = append(o.copies, RenditionCopy{
			Publisher: publisher, ContentID: contentID, BitrateKbps: kbps, Bytes: b,
		})
		o.bytes += b
	}
}

// TotalBytes returns the bytes currently stored.
func (o *Origin) TotalBytes() int64 {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.bytes
}

// Copies returns a snapshot of all stored rendition copies.
func (o *Origin) Copies() []RenditionCopy {
	o.mu.RLock()
	defer o.mu.RUnlock()
	out := make([]RenditionCopy, len(o.copies))
	copy(out, o.copies)
	return out
}

// HasContent reports whether publisher stores any rendition of
// contentID here.
func (o *Origin) HasContent(publisher, contentID string) bool {
	o.mu.RLock()
	defer o.mu.RUnlock()
	for _, c := range o.copies {
		if c.Publisher == publisher && c.ContentID == contentID {
			return true
		}
	}
	return false
}

// DedupSavings returns the bytes this origin would reclaim by removing
// "redundant copies of chunks with the same, or similar bitrates (those
// within a small tolerance factor)" (§6). For each content item, the
// stored renditions across all publishers are clustered greedily in
// ascending bitrate order: a rendition is redundant when its bitrate is
// within tolerance (e.g. 0.05 = 5%) of a cluster representative, and
// the smaller copy of any merged pair is the one reclaimed. tolerance 0
// deduplicates only exact bitrate matches.
func (o *Origin) DedupSavings(tolerance float64) int64 {
	if tolerance < 0 {
		tolerance = 0
	}
	o.mu.RLock()
	defer o.mu.RUnlock()
	byContent := make(map[string][]RenditionCopy)
	for _, c := range o.copies {
		byContent[c.ContentID] = append(byContent[c.ContentID], c)
	}
	var saved int64
	for _, group := range byContent {
		sort.Slice(group, func(i, j int) bool {
			if group[i].BitrateKbps != group[j].BitrateKbps {
				return group[i].BitrateKbps < group[j].BitrateKbps
			}
			// Keep the larger copy as the cluster representative so
			// quality is preserved; ties broken by publisher for
			// determinism.
			if group[i].Bytes != group[j].Bytes {
				return group[i].Bytes > group[j].Bytes
			}
			return group[i].Publisher < group[j].Publisher
		})
		repBitrate := -1 << 30
		var repBytes int64
		for _, c := range group {
			if repBitrate > 0 && float64(c.BitrateKbps) <= float64(repBitrate)*(1+tolerance) {
				// Redundant with the current cluster representative:
				// reclaim the smaller of the two copies.
				if c.Bytes < repBytes {
					saved += c.Bytes
				} else {
					saved += repBytes
					repBytes = c.Bytes
				}
				continue
			}
			repBitrate, repBytes = c.BitrateKbps, c.Bytes
		}
	}
	return saved
}

// IntegratedSavings returns the bytes reclaimed under integrated
// syndication (§6): syndicators use the owner's manifest and CDN copy,
// so every copy stored by a publisher other than the content's owner is
// removed outright. ownerOf maps ContentID → owning publisher; content
// without an entry is treated as owned by whoever stored it.
func (o *Origin) IntegratedSavings(ownerOf map[string]string) int64 {
	o.mu.RLock()
	defer o.mu.RUnlock()
	var saved int64
	for _, c := range o.copies {
		owner, ok := ownerOf[c.ContentID]
		if ok && c.Publisher != owner {
			saved += c.Bytes
		}
	}
	return saved
}

// SavingsReport bundles the Fig. 18 quantities for one origin.
type SavingsReport struct {
	TotalBytes    int64
	Exact         int64 // tolerance 0
	Tol5          int64 // 5% tolerance
	Tol10         int64 // 10% tolerance
	Integrated    int64
	ExactPct      float64
	Tol5Pct       float64
	Tol10Pct      float64
	IntegratedPct float64
}

// Savings computes the full Fig. 18 sweep for this origin.
func (o *Origin) Savings(ownerOf map[string]string) SavingsReport {
	r := SavingsReport{
		TotalBytes: o.TotalBytes(),
		Exact:      o.DedupSavings(0),
		Tol5:       o.DedupSavings(0.05),
		Tol10:      o.DedupSavings(0.10),
		Integrated: o.IntegratedSavings(ownerOf),
	}
	if r.TotalBytes > 0 {
		t := float64(r.TotalBytes)
		r.ExactPct = 100 * float64(r.Exact) / t
		r.Tol5Pct = 100 * float64(r.Tol5) / t
		r.Tol10Pct = 100 * float64(r.Tol10) / t
		r.IntegratedPct = 100 * float64(r.Integrated) / t
	}
	return r
}

// String summarizes the report in Fig. 18's terms.
func (r SavingsReport) String() string {
	return fmt.Sprintf("total=%dB exact=%dB(%.1f%%) 5%%=%dB(%.1f%%) 10%%=%dB(%.1f%%) integrated=%dB(%.1f%%)",
		r.TotalBytes, r.Exact, r.ExactPct, r.Tol5, r.Tol5Pct, r.Tol10, r.Tol10Pct, r.Integrated, r.IntegratedPct)
}
