package cdnsim

import (
	"sync"
	"testing"

	"vmp/internal/dist"
)

func TestMonitorEWMA(t *testing.T) {
	m := NewMonitor(0.5)
	m.Record("A", 10)
	if s, ok := m.Score("A"); !ok || s != 10 {
		t.Fatalf("first score = %v, %v", s, ok)
	}
	m.Record("A", 0)
	if s, _ := m.Score("A"); s != 5 {
		t.Fatalf("EWMA(0.5) after 10,0 = %v, want 5", s)
	}
	if _, ok := m.Score("B"); ok {
		t.Fatal("unreported CDN has a score")
	}
	if m.Sessions("A") != 2 || m.Sessions("B") != 0 {
		t.Fatal("session counters wrong")
	}
}

func TestMonitorAlphaDefault(t *testing.T) {
	m := NewMonitor(-1)
	m.Record("A", 10)
	m.Record("A", 0)
	if s, _ := m.Score("A"); s != 8 { // alpha 0.2 → 0.2*0 + 0.8*10
		t.Fatalf("default alpha score = %v, want 8", s)
	}
}

func TestMonitorRanked(t *testing.T) {
	m := NewMonitor(1)
	m.Record("C", 3)
	m.Record("A", 9)
	m.Record("B", 6)
	got := m.Ranked()
	want := []string{"A", "B", "C"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranked = %v, want %v", got, want)
		}
	}
}

func TestAdaptiveWeights(t *testing.T) {
	reg := NewRegistry(dist.NewSource(1))
	a, _ := reg.ByName("A")
	b, _ := reg.ByName("B")
	c, _ := reg.ByName("C")
	assigns := []Assignment{
		{CDN: a, Weight: 1},
		{CDN: b, Weight: 1},
		{CDN: c, Weight: 1},
	}
	m := NewMonitor(1)
	m.Record("A", 8000)
	m.Record("B", 2000) // B delivering a quarter of A's quality
	out := m.AdaptiveWeights(assigns, false)
	if out[0].Weight != 1 {
		t.Errorf("best CDN weight = %v, want unchanged 1", out[0].Weight)
	}
	if out[1].Weight != 0.25 {
		t.Errorf("degraded CDN weight = %v, want 0.25", out[1].Weight)
	}
	if out[2].Weight != 1 {
		t.Errorf("unmonitored CDN weight = %v, want unchanged", out[2].Weight)
	}
	// The original slice must not be mutated.
	if assigns[1].Weight != 1 {
		t.Fatal("AdaptiveWeights mutated its input")
	}
}

func TestAdaptiveWeightsFloor(t *testing.T) {
	reg := NewRegistry(dist.NewSource(1))
	a, _ := reg.ByName("A")
	b, _ := reg.ByName("B")
	m := NewMonitor(1)
	m.Record("A", 10000)
	m.Record("B", 1) // essentially dead
	out := m.AdaptiveWeights([]Assignment{{CDN: a, Weight: 1}, {CDN: b, Weight: 1}}, false)
	if out[1].Weight < 0.049 || out[1].Weight > 0.051 {
		t.Fatalf("dead CDN weight = %v, want the 0.05 floor", out[1].Weight)
	}
}

func TestSelectAdaptiveShiftsTraffic(t *testing.T) {
	reg := NewRegistry(dist.NewSource(1))
	a, _ := reg.ByName("A")
	b, _ := reg.ByName("B")
	assigns := []Assignment{{CDN: a, Weight: 1}, {CDN: b, Weight: 1}}
	m := NewMonitor(1)
	m.Record("A", 9000)
	m.Record("B", 900)
	var broker Broker
	src := dist.NewSource(5)
	counts := map[string]int{}
	for i := 0; i < 10000; i++ {
		counts[broker.SelectAdaptive(assigns, false, src, m).Name]++
	}
	fracB := float64(counts["B"]) / 10000
	// B's weight should drop to ~0.1 of A's: ≈ 9% of traffic.
	if fracB > 0.15 {
		t.Fatalf("degraded CDN still gets %.2f of traffic", fracB)
	}
	// Nil monitor falls back to plain selection.
	counts = map[string]int{}
	for i := 0; i < 10000; i++ {
		counts[broker.SelectAdaptive(assigns, false, src, nil).Name]++
	}
	if f := float64(counts["B"]) / 10000; f < 0.4 {
		t.Fatalf("nil monitor should restore 50/50, got B=%.2f", f)
	}
}

func TestAdaptiveWeightsRespectSegregation(t *testing.T) {
	reg := NewRegistry(dist.NewSource(1))
	a, _ := reg.ByName("A")
	b, _ := reg.ByName("B")
	// B is live-only and the only monitored CDN: for VoD it must not
	// become the "best" reference.
	m := NewMonitor(1)
	m.Record("B", 9000)
	out := m.AdaptiveWeights([]Assignment{
		{CDN: a, Weight: 1},
		{CDN: b, Weight: 1, LiveOnly: true},
	}, false)
	if out[0].Weight != 1 {
		t.Fatalf("VoD weights distorted by a live-only CDN's score: %v", out[0].Weight)
	}
}

func TestMonitorConcurrent(t *testing.T) {
	m := NewMonitor(0.2)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				m.Record("A", float64(i%100))
				m.Score("A")
				m.Ranked()
			}
		}(g)
	}
	wg.Wait()
	if m.Sessions("A") != 8*500 {
		t.Fatalf("sessions = %d", m.Sessions("A"))
	}
}
