package cdnsim

import (
	"container/list"
	"sync"
)

// EdgeCache is a byte-capacity LRU cache standing in for one CDN edge
// (POP). Cache misses are served from the origin, which costs the
// client an extra origin round trip; the hit ratio therefore feeds the
// delivery-performance model. It is safe for concurrent use.
type EdgeCache struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	order    *list.List               // front = most recently used
	entries  map[string]*list.Element // key → element in order
	hits     int64
	misses   int64
}

type edgeEntry struct {
	key   string
	bytes int64
}

// NewEdgeCache returns an LRU edge cache holding at most capacity
// bytes. It panics on non-positive capacities, which indicate a
// misconfigured simulation rather than bad runtime input.
func NewEdgeCache(capacity int64) *EdgeCache {
	if capacity <= 0 {
		panic("cdnsim: non-positive edge cache capacity")
	}
	return &EdgeCache{
		capacity: capacity,
		order:    list.New(),
		entries:  make(map[string]*list.Element),
	}
}

// Serve fetches the object identified by key with the given size,
// returning true on a cache hit. On a miss the object is admitted,
// evicting least-recently-used objects as needed. Objects larger than
// the whole cache are served from origin without admission.
func (c *EdgeCache) Serve(key string, bytes int64) (hit bool) {
	if bytes < 0 {
		bytes = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		c.hits++
		return true
	}
	c.misses++
	if bytes > c.capacity {
		return false
	}
	for c.used+bytes > c.capacity {
		oldest := c.order.Back()
		if oldest == nil {
			break
		}
		ent := oldest.Value.(edgeEntry)
		c.order.Remove(oldest)
		delete(c.entries, ent.key)
		c.used -= ent.bytes
	}
	c.entries[key] = c.order.PushFront(edgeEntry{key: key, bytes: bytes})
	c.used += bytes
	return false
}

// Contains reports whether key is currently cached, without touching
// recency or statistics.
func (c *EdgeCache) Contains(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[key]
	return ok
}

// UsedBytes returns the bytes currently cached.
func (c *EdgeCache) UsedBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// HitRatio returns hits/(hits+misses), or 0 before any traffic.
func (c *EdgeCache) HitRatio() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}

// Stats returns the raw hit and miss counters.
func (c *EdgeCache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
