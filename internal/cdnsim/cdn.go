package cdnsim

import (
	"fmt"
	"sync"

	"vmp/internal/dist"
)

// CDN is one content delivery network: an origin store plus per-ISP
// edge caches and a per-ISP delivery-quality profile. The paper
// observes 36 CDNs with over 93% of view-hours concentrated on the top
// 5 (anonymized A-E), one of the top 3 using anycast.
type CDN struct {
	Name            string
	Anycast         bool
	OffersPackaging bool // CDN-side packaging service (§2)

	Origin *Origin

	mu       sync.Mutex
	quality  map[string]float64    // ISP name → delivery quality in (0, 1.5]
	edges    map[string]*EdgeCache // ISP name → edge POP
	edgeCap  int64
	requests int64
	bytes    int64
	byISP    map[string]*TrafficCounters
}

// TrafficCounters is the served-traffic accounting a CDN keeps per
// ISP — the delivery-side view of the dataset.
type TrafficCounters struct {
	Requests int64
	Bytes    int64
}

// NewCDN creates a CDN with the given edge capacity per POP.
func NewCDN(name string, anycast, packaging bool, edgeCapacity int64) *CDN {
	return &CDN{
		Name:            name,
		Anycast:         anycast,
		OffersPackaging: packaging,
		Origin:          NewOrigin(),
		quality:         make(map[string]float64),
		edges:           make(map[string]*EdgeCache),
		edgeCap:         edgeCapacity,
		byISP:           make(map[string]*TrafficCounters),
	}
}

// SetQuality sets the delivery-quality factor toward an ISP. Values are
// clamped into (0, 1.5].
func (c *CDN) SetQuality(isp string, q float64) {
	if q <= 0 {
		q = 0.01
	}
	if q > 1.5 {
		q = 1.5
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.quality[isp] = q
}

// Quality returns the delivery-quality factor toward an ISP, defaulting
// to a mediocre 0.7 for ISPs without explicit peering configuration.
func (c *CDN) Quality(isp string) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if q, ok := c.quality[isp]; ok {
		return q
	}
	return 0.7
}

// Edge returns the edge cache serving an ISP, creating it on first use.
func (c *CDN) Edge(isp string) *EdgeCache {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.edges[isp]
	if !ok {
		e = NewEdgeCache(c.edgeCap)
		c.edges[isp] = e
	}
	return e
}

// ServeChunk serves one chunk request arriving from an ISP: it consults
// the ISP's edge cache, accounts the traffic, and reports whether the
// chunk was an edge hit.
func (c *CDN) ServeChunk(isp, chunkURL string, bytes int64) (hit bool) {
	c.mu.Lock()
	c.requests++
	c.bytes += bytes
	tc := c.byISP[isp]
	if tc == nil {
		tc = &TrafficCounters{}
		c.byISP[isp] = tc
	}
	tc.Requests++
	tc.Bytes += bytes
	c.mu.Unlock()
	return c.Edge(isp).Serve(chunkURL, bytes)
}

// Served returns the CDN-wide served-traffic counters.
func (c *CDN) Served() TrafficCounters {
	c.mu.Lock()
	defer c.mu.Unlock()
	return TrafficCounters{Requests: c.requests, Bytes: c.bytes}
}

// ServedByISP returns the served-traffic counters toward one ISP.
func (c *CDN) ServedByISP(isp string) TrafficCounters {
	c.mu.Lock()
	defer c.mu.Unlock()
	if tc := c.byISP[isp]; tc != nil {
		return *tc
	}
	return TrafficCounters{}
}

// Registry is the simulation's CDN population.
type Registry struct {
	cdns   []*CDN
	byName map[string]*CDN
}

// TopCDNNames are the anonymized top-5 CDNs of §4.3 in paper order.
var TopCDNNames = []string{"A", "B", "C", "D", "E"}

// TotalCDNCount is the number of distinct CDNs observed in the dataset
// (§4.3: "we observed 36 different CDNs").
const TotalCDNCount = 36

// defaultEdgeCapacity sizes each simulated POP.
const defaultEdgeCapacity = 8 << 30 // 8 GiB

// NewRegistry builds the 36-CDN population: the top five (A-E) with
// deliberate quality profiles — A is the long-standing incumbent used
// by most publishers, B and C are strong challengers that come to carry
// comparable view-hours, B uses anycast (one of the top 3 does, §4.3) —
// plus 31 regional/internal CDNs with middling quality. src perturbs
// the minor CDNs' quality deterministically.
func NewRegistry(src *dist.Source) *Registry {
	r := &Registry{byName: make(map[string]*CDN)}
	add := func(c *CDN) {
		r.cdns = append(r.cdns, c)
		r.byName[c.Name] = c
	}
	top := []struct {
		name      string
		anycast   bool
		packaging bool
		quality   map[string]float64
	}{
		{"A", false, true, map[string]float64{"ISP-X": 1.00, "ISP-Y": 0.85, "ISP-Z": 0.95, "ISP-W": 1.00}},
		{"B", true, true, map[string]float64{"ISP-X": 1.05, "ISP-Y": 0.90, "ISP-Z": 1.00, "ISP-W": 0.95}},
		{"C", false, false, map[string]float64{"ISP-X": 0.95, "ISP-Y": 0.95, "ISP-Z": 1.00, "ISP-W": 0.90}},
		{"D", false, false, map[string]float64{"ISP-X": 0.85, "ISP-Y": 0.80, "ISP-Z": 0.85, "ISP-W": 0.85}},
		{"E", false, true, map[string]float64{"ISP-X": 0.80, "ISP-Y": 0.85, "ISP-Z": 0.80, "ISP-W": 0.80}},
	}
	for _, t := range top {
		c := NewCDN(t.name, t.anycast, t.packaging, defaultEdgeCapacity)
		for isp, q := range t.quality {
			c.SetQuality(isp, q)
		}
		add(c)
	}
	for i := len(top); i < TotalCDNCount; i++ {
		name := fmt.Sprintf("R%02d", i)
		c := NewCDN(name, false, false, defaultEdgeCapacity/4)
		qsrc := src.Split("cdn-quality-" + name)
		for _, isp := range []string{"ISP-X", "ISP-Y", "ISP-Z", "ISP-W"} {
			c.SetQuality(isp, qsrc.Uniform(0.5, 0.9))
		}
		add(c)
	}
	return r
}

// All returns every CDN in registry order (top five first).
func (r *Registry) All() []*CDN { return r.cdns }

// Top returns the top-5 CDNs A-E.
func (r *Registry) Top() []*CDN { return r.cdns[:len(TopCDNNames)] }

// ByName returns the CDN with the given name.
func (r *Registry) ByName(name string) (*CDN, bool) {
	c, ok := r.byName[name]
	return c, ok
}

// Assignment is one entry of a publisher's multi-CDN configuration:
// which CDN, what share of sessions it should receive, and whether the
// publisher segregates it to live or VoD traffic (§4.3 finds 30% of
// eligible publishers keep at least one CDN VoD-only and 19% keep one
// live-only).
type Assignment struct {
	CDN      *CDN
	Weight   float64
	LiveOnly bool
	VoDOnly  bool
}

// Broker selects a CDN for each session from a publisher's assignments,
// the role CDN brokers play in §2 (selection plus monitoring). A Broker
// is stateless and safe for concurrent use.
type Broker struct{}

// Select picks the CDN for a session with the given content type using
// weighted random selection over the eligible assignments. It returns
// nil when no assignment is eligible (a publisher misconfiguration the
// caller must surface).
func (Broker) Select(assignments []Assignment, live bool, src *dist.Source) *CDN {
	var weights []float64
	var eligible []*CDN
	for _, a := range assignments {
		if a.CDN == nil || a.Weight <= 0 {
			continue
		}
		if live && a.VoDOnly || !live && a.LiveOnly {
			continue
		}
		weights = append(weights, a.Weight)
		eligible = append(eligible, a.CDN)
	}
	if len(eligible) == 0 {
		return nil
	}
	return eligible[src.Categorical(weights)]
}

// Eligible returns the CDNs an assignment set can serve for the given
// content type, in assignment order.
func Eligible(assignments []Assignment, live bool) []*CDN {
	var out []*CDN
	for _, a := range assignments {
		if a.CDN == nil || a.Weight <= 0 {
			continue
		}
		if live && a.VoDOnly || !live && a.LiveOnly {
			continue
		}
		out = append(out, a.CDN)
	}
	return out
}
