package cdnsim

import (
	"sort"
	"sync"

	"vmp/internal/dist"
)

// Monitor aggregates per-CDN session quality, the monitoring and
// fault-isolation service §2 describes brokers providing ("Even some
// publishers who only use a single CDN use a CDN broker for management
// services such as monitoring and fault isolation"). Scores are
// exponentially-weighted moving averages of a caller-defined quality
// signal (e.g. delivered bitrate, or 1 − rebuffer ratio). Monitor is
// safe for concurrent use.
type Monitor struct {
	mu    sync.RWMutex
	alpha float64
	ewma  map[string]float64
	count map[string]int64
}

// NewMonitor returns a monitor smoothing with factor alpha in (0, 1];
// out-of-range values default to 0.2 (recent sessions dominate within
// a few reports).
func NewMonitor(alpha float64) *Monitor {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.2
	}
	return &Monitor{
		alpha: alpha,
		ewma:  make(map[string]float64),
		count: make(map[string]int64),
	}
}

// Record feeds one session's quality score for a CDN.
func (m *Monitor) Record(cdnName string, score float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.count[cdnName] == 0 {
		m.ewma[cdnName] = score
	} else {
		m.ewma[cdnName] = m.alpha*score + (1-m.alpha)*m.ewma[cdnName]
	}
	m.count[cdnName]++
}

// Score returns the smoothed quality for a CDN and whether any session
// has reported for it.
func (m *Monitor) Score(cdnName string) (float64, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.count[cdnName] == 0 {
		return 0, false
	}
	return m.ewma[cdnName], true
}

// Sessions returns the number of sessions recorded for a CDN.
func (m *Monitor) Sessions(cdnName string) int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.count[cdnName]
}

// Ranked returns the monitored CDN names best-first; unmonitored CDNs
// are absent.
func (m *Monitor) Ranked() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	names := make([]string, 0, len(m.ewma))
	for name := range m.ewma {
		names = append(names, name)
	}
	// Canonicalize by name first; the stable sort then ranks by score
	// with ties left in name order, independent of map iteration.
	sort.Strings(names)
	sort.SliceStable(names, func(i, j int) bool {
		return m.ewma[names[i]] > m.ewma[names[j]]
	})
	return names
}

// AdaptiveWeights rescales assignment weights by monitored quality
// relative to the best-scoring eligible CDN: a CDN delivering half the
// best CDN's quality receives half its configured share (floored so no
// CDN starves entirely and recovery remains observable). Assignments
// without telemetry keep their configured weight. The returned slice
// is a modified copy.
func (m *Monitor) AdaptiveWeights(assignments []Assignment, live bool) []Assignment {
	const floor = 0.05
	out := make([]Assignment, len(assignments))
	copy(out, assignments)
	best := 0.0
	for _, a := range out {
		if a.CDN == nil {
			continue
		}
		if live && a.VoDOnly || !live && a.LiveOnly {
			continue
		}
		if s, ok := m.Score(a.CDN.Name); ok && s > best {
			best = s
		}
	}
	if best <= 0 {
		return out
	}
	for i := range out {
		a := &out[i]
		if a.CDN == nil {
			continue
		}
		s, ok := m.Score(a.CDN.Name)
		if !ok {
			continue
		}
		factor := s / best
		if factor < floor {
			factor = floor
		}
		a.Weight *= factor
	}
	return out
}

// SelectAdaptive is Broker.Select with monitor feedback applied: the
// data-driven CDN selection loop of C3/CFA-style control planes that
// the paper cites publishers delegating to brokers.
func (b Broker) SelectAdaptive(assignments []Assignment, live bool, src *dist.Source, monitor *Monitor) *CDN {
	if monitor == nil {
		return b.Select(assignments, live, src)
	}
	return b.Select(monitor.AdaptiveWeights(assignments, live), live, src)
}
