// Package graceful is the shared shutdown path of the repo's HTTP
// daemons (cmd/vmpd, cmd/vmpcollector): serve until SIGINT/SIGTERM,
// then drain in-flight requests with http.Server.Shutdown under a
// deadline, so a terminating daemon never races its own handlers —
// the dump-on-exit and snapshot-on-exit steps run only after every
// POST has completed or the drain deadline has passed.
package graceful

import (
	"context"
	"errors"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// Run serves srv until the process receives SIGINT or SIGTERM (or
// stop closes, which tests use in place of a signal), then shuts the
// server down, waiting up to drainTimeout for in-flight requests. ln
// may be nil, in which case srv listens on srv.Addr. Run returns nil
// after a clean drain; a listener failure or an expired drain deadline
// is returned as an error.
func Run(srv *http.Server, ln net.Listener, drainTimeout time.Duration, stop <-chan struct{}) error {
	return RunNotify(srv, ln, drainTimeout, stop, nil)
}

// RunNotify is Run with a lifecycle callback: notify (if non-nil) is
// called with "drain_begin" when a shutdown request arrives and
// "drain_end" after the drain completes, before RunNotify returns.
// Daemons use it to land shutdown phases in their structured event
// log so a trace dump shows where drain time went.
func RunNotify(srv *http.Server, ln net.Listener, drainTimeout time.Duration, stop <-chan struct{}, notify func(phase string)) error {
	errc := make(chan error, 1)
	go func() {
		var err error
		if ln != nil {
			err = srv.Serve(ln)
		} else {
			err = srv.ListenAndServe()
		}
		if errors.Is(err, http.ErrServerClosed) {
			err = nil
		}
		errc <- err
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)

	select {
	case err := <-errc:
		// The listener failed (or closed) before any shutdown request.
		return err
	case <-sig:
	case <-stop:
	}

	if notify != nil {
		notify("drain_begin")
	}
	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return err
	}
	err := <-errc
	if notify != nil {
		notify("drain_end")
	}
	return err
}
