package graceful

import (
	"io"
	"net"
	"net/http"
	"sync/atomic"
	"testing"
	"time"
)

func listen(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return ln
}

// TestDrainCompletesInFlight shuts down while a slow POST is in
// flight and expects the request to finish — the race the dump-on-exit
// paths used to lose.
func TestDrainCompletesInFlight(t *testing.T) {
	var completed atomic.Int64
	mux := http.NewServeMux()
	started := make(chan struct{}, 1)
	mux.HandleFunc("/slow", func(w http.ResponseWriter, r *http.Request) {
		started <- struct{}{}
		time.Sleep(200 * time.Millisecond)
		completed.Add(1)
		w.WriteHeader(http.StatusAccepted)
	})
	ln := listen(t)
	srv := &http.Server{Handler: mux}
	stop := make(chan struct{})
	runDone := make(chan error, 1)
	go func() { runDone <- Run(srv, ln, 5*time.Second, stop) }()

	reqDone := make(chan error, 1)
	go func() {
		resp, err := http.Post("http://"+ln.Addr().String()+"/slow", "text/plain", nil)
		if err == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				err = io.ErrUnexpectedEOF
			}
		}
		reqDone <- err
	}()
	<-started
	close(stop)

	if err := <-runDone; err != nil {
		t.Fatalf("Run = %v", err)
	}
	if err := <-reqDone; err != nil {
		t.Fatalf("in-flight request = %v", err)
	}
	if completed.Load() != 1 {
		t.Fatal("handler did not complete before shutdown returned")
	}
}

// TestDrainDeadline expects an over-deadline handler to surface as a
// Run error instead of hanging shutdown forever.
func TestDrainDeadline(t *testing.T) {
	mux := http.NewServeMux()
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	mux.HandleFunc("/stuck", func(w http.ResponseWriter, r *http.Request) {
		started <- struct{}{}
		<-release
	})
	ln := listen(t)
	srv := &http.Server{Handler: mux}
	stop := make(chan struct{})
	runDone := make(chan error, 1)
	go func() { runDone <- Run(srv, ln, 50*time.Millisecond, stop) }()

	go func() {
		resp, err := http.Post("http://"+ln.Addr().String()+"/stuck", "text/plain", nil)
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-started
	close(stop)
	if err := <-runDone; err == nil {
		t.Fatal("Run returned nil despite a stuck handler")
	}
	close(release)
}

// TestListenerFailure expects Run to return promptly when the address
// can't be served.
func TestListenerFailure(t *testing.T) {
	ln := listen(t)
	defer ln.Close()
	srv := &http.Server{Addr: ln.Addr().String(), Handler: http.NewServeMux()}
	if err := Run(srv, nil, time.Second, nil); err == nil {
		t.Fatal("Run on an occupied port returned nil")
	}
}
