package obs

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"vmp/internal/simclock"
)

func testClock() *simclock.ManualClock {
	c := simclock.NewManual(time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC))
	c.SetAutoAdvance(time.Millisecond)
	return c
}

func TestSpanParentLinks(t *testing.T) {
	tr := NewTracer(testClock(), 16)
	root := tr.Start("ingest.batch", 0)
	child := tr.Start("ingest.scan", root.ID())
	child.End(KV("records", 3))
	root.End(KV("accepted", 3))
	tr.Emit("batch_admitted", KV("records", 3))

	s := tr.Snapshot()
	if !s.Enabled {
		t.Fatal("snapshot should report enabled")
	}
	if len(s.Spans) != 2 || s.SpansTotal != 2 {
		t.Fatalf("want 2 spans, got %d (total %d)", len(s.Spans), s.SpansTotal)
	}
	// Spans sort by ID: root started first.
	if s.Spans[0].Name != "ingest.batch" || s.Spans[0].Parent != 0 {
		t.Fatalf("bad root span: %+v", s.Spans[0])
	}
	if s.Spans[1].Name != "ingest.scan" || s.Spans[1].Parent != s.Spans[0].ID {
		t.Fatalf("child not linked to root: %+v", s.Spans[1])
	}
	if s.Spans[1].Attrs["records"] != 3 {
		t.Fatalf("child attrs lost: %+v", s.Spans[1].Attrs)
	}
	if s.Spans[0].DurUS <= 0 {
		t.Fatalf("auto-advance clock should yield positive duration, got %d", s.Spans[0].DurUS)
	}
	if len(s.Events) != 1 || s.Events[0].Type != "batch_admitted" || s.Events[0].Seq != 1 {
		t.Fatalf("bad events: %+v", s.Events)
	}
	if len(s.Stages) != 2 || s.Stages[0].Name != "ingest.batch" || s.Stages[1].Name != "ingest.scan" {
		t.Fatalf("stages not sorted by name: %+v", s.Stages)
	}
}

func TestNilAndDisabledTracer(t *testing.T) {
	var nilTr *Tracer
	if nilTr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	nilTr.SetEnabled(true) // must not panic
	sp := nilTr.Start("x", 0)
	sp.End(KV("k", 1))
	nilTr.Emit("e")
	s := nilTr.Snapshot()
	if len(s.Spans) != 0 || len(s.Events) != 0 || s.Enabled {
		t.Fatalf("nil tracer snapshot not empty: %+v", s)
	}

	tr := NewTracer(testClock(), 4)
	tr.SetEnabled(false)
	tr.Start("x", 0).End()
	tr.Emit("e")
	s = tr.Snapshot()
	if s.SpansTotal != 0 || s.EventsTotal != 0 {
		t.Fatalf("disabled tracer recorded: %+v", s)
	}
}

// TestDisabledZeroAlloc pins the hot-path contract: with tracing off,
// an instrumentation site (Start + End with attrs, plus an Emit) does
// not allocate. The variadic attr slices must stay on the caller's
// stack, which End/Emit guarantee by copying only when recording.
func TestDisabledZeroAlloc(t *testing.T) {
	tr := NewTracer(testClock(), 16)
	tr.SetEnabled(false)
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Start("ingest.admit", 0)
		sp.End(KV("records", 500), KV("shards", 8))
		tr.Emit("batch_admitted", KV("records", 500))
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing allocated %.1f per op, want 0", allocs)
	}
}

func TestRingWrap(t *testing.T) {
	tr := NewTracer(testClock(), 4)
	for i := 0; i < 10; i++ {
		tr.Start("s", 0).End()
		tr.Emit("e", KV("i", int64(i)))
	}
	s := tr.Snapshot()
	if s.SpansTotal != 10 || s.EventsTotal != 10 {
		t.Fatalf("lifetime counters: %d spans, %d events", s.SpansTotal, s.EventsTotal)
	}
	if len(s.Spans) != 4 || len(s.Events) != 4 {
		t.Fatalf("ring should retain 4, got %d spans, %d events", len(s.Spans), len(s.Events))
	}
	// The retained entries are the most recent, in order.
	if s.Events[0].Seq != 7 || s.Events[3].Seq != 10 {
		t.Fatalf("wrong tail retained: %+v", s.Events)
	}
}

// TestTraceDeterministic is the tentpole's determinism contract: the
// same call sequence against a ManualClock with auto-advance renders
// byte-identical trace JSON on a repeated run.
func TestTraceDeterministic(t *testing.T) {
	render := func() []byte {
		tr := NewTracer(testClock(), 64)
		root := tr.Start("ingest.batch", 0)
		scan := tr.Start("ingest.scan", root.ID())
		scan.End(KV("records", 500), KV("bad", 2))
		tr.Emit("batch_admitted", KV("records", 500), KV("shards", 8))
		root.End(KV("accepted", 500))
		cut := tr.Start("epoch.cut", 0)
		tr.Emit("epoch_cut", KV("epoch", 1))
		cut.End(KV("epoch", 1), KV("records", 500))
		tr.Emit("generation_published", KV("epoch", 1), KV("records", 500))
		out, err := json.Marshal(tr.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Fatalf("double run diverged:\n%s\n%s", a, b)
	}
}

// TestConcurrentTrace exercises the lock-free rings under -race:
// writers append spans and events while a reader snapshots.
func TestConcurrentTrace(t *testing.T) {
	tr := NewTracer(testClock(), 128)
	const writers, perWriter = 8, 200
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
				tr.Snapshot()
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				sp := tr.Start("shard.consume", 0)
				sp.End(KV("records", int64(i)))
				tr.Emit("batch_admitted", KV("shard", int64(w)))
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-readerDone
	s := tr.Snapshot()
	if s.SpansTotal != writers*perWriter || s.EventsTotal != writers*perWriter {
		t.Fatalf("lost appends: %d spans, %d events", s.SpansTotal, s.EventsTotal)
	}
	if len(s.Spans) != 128 || len(s.Events) != 128 {
		t.Fatalf("full rings should retain capacity: %d spans, %d events", len(s.Spans), len(s.Events))
	}
}

// TestTraceHandlerJSON checks the /v1/trace payload: valid JSON with
// sorted attr-map keys, and byte-identical across repeated GETs when
// nothing new was recorded (the determinism the smoke test and diff
// tooling rely on).
func TestTraceHandlerJSON(t *testing.T) {
	tr := NewTracer(testClock(), 32)
	root := tr.Start("ingest.batch", 0)
	tr.Start("ingest.scan", root.ID()).End(KV("records", 10), KV("bad", 1))
	root.End(KV("accepted", 10), KV("bad", 1))
	tr.Emit("batch_admitted", KV("records", 10))

	srv := httptest.NewServer(tr.Handler())
	defer srv.Close()
	get := func() []byte {
		resp, err := http.Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = resp.Body.Close() }()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return bytes.TrimSpace(buf.Bytes())
	}
	body := get()
	var snap TraceSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, body)
	}
	if snap.SpansTotal != 2 || len(snap.Events) != 1 {
		t.Fatalf("payload content: %+v", snap)
	}
	// encoding/json serializes map keys sorted; pin that the attr maps
	// actually came out that way on the wire.
	if !bytes.Contains(body, []byte(`"attrs":{"accepted":10,"bad":1}`)) {
		t.Fatalf("attr keys not sorted on the wire:\n%s", body)
	}
	if again := get(); !bytes.Equal(body, again) {
		t.Fatalf("repeated GET diverged:\n%s\n%s", body, again)
	}

	post, err := http.Post(srv.URL, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST should 405, got %d", post.StatusCode)
	}
}

func TestMountAndDebugHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("live_ingest_records_total").Add(7)
	tr := NewTracer(testClock(), 8)
	tr.Start("epoch.cut", 0).End(KV("epoch", 1))

	mux := http.NewServeMux()
	Mount(mux, reg, tr, nil)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	for _, path := range []string{"/v1/metrics", "/v1/trace", "/debug/vmp", "/v1/series"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		var v any
		if err := json.Unmarshal(buf.Bytes(), &v); err != nil {
			t.Fatalf("GET %s: invalid JSON: %v", path, err)
		}
	}

	var dbg DebugSnapshot
	resp, err := http.Get(srv.URL + "/debug/vmp")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if err := json.NewDecoder(resp.Body).Decode(&dbg); err != nil {
		t.Fatal(err)
	}
	if dbg.Metrics.Counters["live_ingest_records_total"] != 7 {
		t.Fatalf("debug metrics: %+v", dbg.Metrics.Counters)
	}
	if dbg.Trace.SpansTotal != 1 || dbg.Trace.Spans[0].Name != "epoch.cut" {
		t.Fatalf("debug trace: %+v", dbg.Trace)
	}
}

// TestHistogramCountMatchesBuckets pins the relaxed-consistency fix:
// a snapshot taken while writers are mid-flight must always satisfy
// count == Σbuckets, because the count is derived from the buckets.
func TestHistogramCountMatchesBuckets(t *testing.T) {
	h := NewHistogram([]float64{0.5})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					h.Observe(0.25)
					h.Observe(0.75)
				}
			}
		}()
	}
	for i := 0; i < 500; i++ {
		s := h.Snapshot()
		var sum int64
		for _, n := range s.Counts {
			sum += n
		}
		if s.Count != sum {
			close(stop)
			wg.Wait()
			t.Fatalf("snapshot %d: count %d != Σbuckets %d", i, s.Count, sum)
		}
	}
	close(stop)
	wg.Wait()
}
