package obs

// This file is the exposition half of the self-measurement plane:
// Prometheus text format (version 0.0.4) rendered from the same
// Snapshot that /v1/metrics serializes as JSON, so external scrapers
// and in-process consumers always read the same values. The rendering
// is byte-stable for a given snapshot: families group by kind
// (counters, then gauges, then histograms), names sort within each
// kind, bucket lines follow ascending bounds, and floats format with
// strconv's shortest round-trip representation.

import (
	"net/http"
	"sort"
	"strconv"
)

// ContentTypeProm is the Prometheus text exposition content type.
const ContentTypeProm = "text/plain; version=0.0.4; charset=utf-8"

// promName maps a registry metric name onto the Prometheus metric-name
// grammar [a-zA-Z_:][a-zA-Z0-9_:]*: every other byte becomes '_', and
// a leading digit gets a '_' prefix. Registry names are already clean
// identifiers, so in practice this is the identity function — the
// sanitizer exists so an unusual name degrades to a legal one instead
// of corrupting the exposition.
func promName(s string) string {
	ok := true
	for i := 0; i < len(s); i++ {
		if !promNameByte(s[i], i == 0) {
			ok = false
			break
		}
	}
	if ok && s != "" {
		return s
	}
	b := make([]byte, 0, len(s)+1)
	if s == "" || (s[0] >= '0' && s[0] <= '9') {
		b = append(b, '_')
	}
	for i := 0; i < len(s); i++ {
		if promNameByte(s[i], false) {
			b = append(b, s[i])
		} else {
			b = append(b, '_')
		}
	}
	return string(b)
}

// promNameByte reports whether c is legal in a metric name (first
// restricts to the leading-character grammar).
func promNameByte(c byte, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':':
		return true
	case c >= '0' && c <= '9':
		return !first
	}
	return false
}

// promFloat renders a float the one canonical way.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// AppendProm renders snap in the Prometheus text exposition format,
// appending to b. The output is byte-stable for a given snapshot.
func AppendProm(b []byte, snap Snapshot) []byte {
	names := make([]string, 0, len(snap.Counters))
	for name := range snap.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		n := promName(name)
		b = append(b, "# TYPE "...)
		b = append(b, n...)
		b = append(b, " counter\n"...)
		b = append(b, n...)
		b = append(b, ' ')
		b = strconv.AppendInt(b, snap.Counters[name], 10)
		b = append(b, '\n')
	}

	names = names[:0]
	for name := range snap.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		n := promName(name)
		b = append(b, "# TYPE "...)
		b = append(b, n...)
		b = append(b, " gauge\n"...)
		b = append(b, n...)
		b = append(b, ' ')
		b = strconv.AppendInt(b, snap.Gauges[name], 10)
		b = append(b, '\n')
	}

	names = names[:0]
	for name := range snap.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := snap.Histograms[name]
		n := promName(name)
		b = append(b, "# TYPE "...)
		b = append(b, n...)
		b = append(b, " histogram\n"...)
		// Buckets are cumulative in the exposition format; the
		// registry's are not, so fold as we emit.
		var cum int64
		for i, bound := range h.Bounds {
			if i < len(h.Counts) {
				cum += h.Counts[i]
			}
			b = append(b, n...)
			b = append(b, `_bucket{le="`...)
			b = append(b, promFloat(bound)...)
			b = append(b, `"} `...)
			b = strconv.AppendInt(b, cum, 10)
			b = append(b, '\n')
		}
		b = append(b, n...)
		b = append(b, `_bucket{le="+Inf"} `...)
		b = strconv.AppendInt(b, h.Count, 10)
		b = append(b, '\n')
		b = append(b, n...)
		b = append(b, "_sum "...)
		b = append(b, promFloat(h.Sum)...)
		b = append(b, '\n')
		b = append(b, n...)
		b = append(b, "_count "...)
		b = strconv.AppendInt(b, h.Count, 10)
		b = append(b, '\n')
	}
	return b
}

// PromHandler serves the registry in Prometheus text format on GET.
// Each request takes one registry snapshot — the same reading
// /v1/metrics would serialize at that instant.
func PromHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		buf := AppendProm(nil, r.Snapshot())
		w.Header().Set("Content-Type", ContentTypeProm)
		_, _ = w.Write(buf)
	})
}
