package obs

// This file is the in-process time series — the flight recorder of the
// self-measurement plane. A SeriesRing holds the last N periodic
// registry snapshots in a bounded lock-free ring (the same
// publish-whole-records-behind-atomic-pointers discipline as the trace
// rings in trace.go), and its snapshot derives per-second rates
// between consecutive retained points plus per-histogram quantiles, so
// /v1/series answers "what has the daemon been doing for the last N
// minutes" without any external scraper having run. Under a
// simclock.ManualClock a fixed record sequence renders byte-identical
// JSON: points sort by sequence, every map serializes with sorted
// keys, and timestamps render RFC3339Nano UTC.

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync/atomic"
	"time"
)

// seriesSample is one recorded registry snapshot, immutable after
// Store. The snapshot's maps are freshly built by Registry.Snapshot
// and never mutated after publication.
type seriesSample struct {
	seq  uint64
	at   time.Time
	snap Snapshot
}

// SeriesRing is a bounded lock-free ring of periodic registry
// snapshots. Record is safe for concurrent use with Snapshot: each
// sample is published whole behind an atomic pointer, and the sequence
// number is monotonic for the ring's lifetime, so a consumer can
// detect wrapped-away points the way a WAL reader detects a truncated
// prefix.
type SeriesRing struct {
	seq   atomic.Uint64
	slots []atomic.Pointer[seriesSample]
}

// NewSeriesRing returns a ring retaining capacity points (values < 1
// default to 256).
func NewSeriesRing(capacity int) *SeriesRing {
	if capacity < 1 {
		capacity = 256
	}
	return &SeriesRing{slots: make([]atomic.Pointer[seriesSample], capacity)}
}

// Record appends one timestamped registry snapshot, overwriting the
// oldest point once the ring is full. The caller must not mutate
// snap's maps after the call (Registry.Snapshot returns fresh ones).
func (s *SeriesRing) Record(at time.Time, snap Snapshot) {
	rec := &seriesSample{seq: s.seq.Add(1), at: at, snap: snap}
	s.slots[(rec.seq-1)%uint64(len(s.slots))].Store(rec)
}

// SeriesHist is one histogram's reading at one series point: the
// cumulative count and sum plus the interpolated SLO quantiles.
type SeriesHist struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
}

// SeriesPoint is one retained sample in the /v1/series payload. Rates
// holds per-second deltas of every counter present in both this point
// and the previous retained one; the oldest retained point has none.
type SeriesPoint struct {
	Seq      uint64                `json:"seq"`
	Time     string                `json:"time"`
	Counters map[string]int64      `json:"counters"`
	Gauges   map[string]int64      `json:"gauges"`
	Rates    map[string]float64    `json:"rates,omitempty"`
	Hists    map[string]SeriesHist `json:"hists,omitempty"`
}

// SeriesSnapshot is the /v1/series payload. SamplesTotal is a lifetime
// counter; when it exceeds Capacity the ring has wrapped and only the
// most recent points are retained.
type SeriesSnapshot struct {
	SamplesTotal uint64        `json:"samples_total"`
	Capacity     int           `json:"capacity"`
	Points       []SeriesPoint `json:"points"`
}

// Snapshot reads the ring: retained points sorted by sequence, rates
// derived between consecutive points, quantiles interpolated per
// histogram. Concurrent Records may land between slot reads; each
// retained sample is individually complete.
func (s *SeriesRing) Snapshot() SeriesSnapshot {
	out := SeriesSnapshot{
		SamplesTotal: s.seq.Load(),
		Capacity:     len(s.slots),
		Points:       []SeriesPoint{},
	}
	var recs []*seriesSample
	for i := range s.slots {
		if r := s.slots[i].Load(); r != nil {
			recs = append(recs, r)
		}
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].seq < recs[j].seq })
	for i, r := range recs {
		p := SeriesPoint{
			Seq:      r.seq,
			Time:     traceTime(r.at),
			Counters: r.snap.Counters,
			Gauges:   r.snap.Gauges,
		}
		if len(r.snap.Histograms) > 0 {
			p.Hists = make(map[string]SeriesHist, len(r.snap.Histograms))
			for _, name := range sortedKeys(r.snap.Histograms) {
				h := r.snap.Histograms[name]
				p.Hists[name] = SeriesHist{
					Count: h.Count,
					Sum:   h.Sum,
					P50:   h.Quantile(0.50),
					P90:   h.Quantile(0.90),
					P99:   h.Quantile(0.99),
					P999:  h.Quantile(0.999),
				}
			}
		}
		if i > 0 {
			p.Rates = counterRates(recs[i-1], r)
		}
		out.Points = append(out.Points, p)
	}
	return out
}

// counterRates derives per-second rates for every counter present in
// both samples. A non-positive time delta (possible under a manual
// clock that was never advanced) or a counter reset yields no rate for
// that pair — a missing key is honest, a negative rate is noise.
func counterRates(prev, cur *seriesSample) map[string]float64 {
	dt := cur.at.Sub(prev.at).Seconds()
	if dt <= 0 {
		return nil
	}
	var rates map[string]float64
	for _, name := range sortedKeys(cur.snap.Counters) {
		old, ok := prev.snap.Counters[name]
		if !ok {
			continue
		}
		delta := cur.snap.Counters[name] - old
		if delta < 0 {
			continue
		}
		if rates == nil {
			rates = make(map[string]float64, len(cur.snap.Counters))
		}
		rates[name] = float64(delta) / dt
	}
	return rates
}

// sortedKeys returns m's keys in ascending order — the canonical
// iteration order for every map walk in this file.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Handler serves the series snapshot as JSON on GET.
func (s *SeriesRing) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		buf, err := json.Marshal(s.Snapshot())
		if err != nil {
			http.Error(w, "encode error", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(append(buf, '\n'))
	})
}
