package obs

import (
	"context"
	"runtime"
	"testing"
	"time"

	"vmp/internal/simclock"
)

// TestSamplerSample drives one sampling pass by hand and checks the
// three effects: runtime gauges are populated, plane sources ran, and
// one series point was recorded carrying the sampled registry.
func TestSamplerSample(t *testing.T) {
	reg := NewRegistry()
	ring := NewSeriesRing(4)
	clk := simclock.NewManual(time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC))
	s := NewSampler(reg, ring, clk, time.Second)

	depth := reg.Gauge("live_queue_depth_batches")
	s.AddSource(func() { depth.Set(9) })

	s.Sample()
	s.Sample()

	snap := reg.Snapshot()
	if snap.Counters["obs_samples_total"] != 2 {
		t.Fatalf("obs_samples_total = %d, want 2", snap.Counters["obs_samples_total"])
	}
	if snap.Gauges["go_heap_alloc_bytes"] <= 0 {
		t.Fatalf("go_heap_alloc_bytes = %d, want > 0", snap.Gauges["go_heap_alloc_bytes"])
	}
	if snap.Gauges["go_goroutines"] <= 0 {
		t.Fatalf("go_goroutines = %d, want > 0", snap.Gauges["go_goroutines"])
	}
	if snap.Gauges["live_queue_depth_batches"] != 9 {
		t.Fatalf("source did not run: depth = %d", snap.Gauges["live_queue_depth_batches"])
	}

	series := ring.Snapshot()
	if series.SamplesTotal != 2 {
		t.Fatalf("series recorded %d points, want 2", series.SamplesTotal)
	}
	last := series.Points[len(series.Points)-1]
	if last.Gauges["live_queue_depth_batches"] != 9 {
		t.Fatalf("series point missing sampled gauge: %+v", last.Gauges)
	}
	if last.Counters["obs_samples_total"] != 2 {
		t.Fatalf("series point counter = %d, want 2", last.Counters["obs_samples_total"])
	}
}

// TestSamplerNilSeries checks a ring-less sampler still publishes.
func TestSamplerNilSeries(t *testing.T) {
	reg := NewRegistry()
	s := NewSampler(reg, nil, nil, 0)
	s.Sample()
	if reg.Counter("obs_samples_total").Load() != 1 {
		t.Fatal("nil-series sampler did not sample")
	}
}

// TestSamplerRunStops checks Run samples at least once and exits
// promptly when its context is cancelled.
func TestSamplerRunStops(t *testing.T) {
	reg := NewRegistry()
	s := NewSampler(reg, NewSeriesRing(4), nil, time.Hour)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		s.Run(ctx)
		close(done)
	}()
	// Run samples once before entering the ticker loop, so a bounded
	// poll (not a wall-clock wait) sees the first sample.
	for i := 0; i < 100000; i++ {
		if reg.Counter("obs_samples_total").Load() >= 1 {
			break
		}
		runtime.Gosched()
	}
	if reg.Counter("obs_samples_total").Load() < 1 {
		t.Fatal("Run never sampled")
	}
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not exit after cancel")
	}
}
