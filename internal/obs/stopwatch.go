package obs

// Stopwatch is the latency-SLO instrumentation primitive: one clock
// read at the start of an interval, one at the end, and an Observe
// into whichever histogram the end of the interval picks (the ingest
// ack path, for example, chooses the wire- or JSONL-encoding histogram
// only after the body has been decoded). It is a small value, not a
// pointer — starting and stopping a stopwatch allocates nothing on
// either path, and the disabled form (a nil clock) reduces Start and
// Stop to a single nil check, which is what keeps instrumented-but-
// disabled daemons inside the PR-5 overhead budget.

import (
	"time"

	"vmp/internal/simclock"
)

// Stopwatch measures one latency interval. The zero Stopwatch is the
// disabled one: Stop on it reads no clock, observes nothing, and
// returns 0.
type Stopwatch struct {
	clock simclock.Clock
	start time.Time
}

// StartWatch reads clock once and returns a running stopwatch. A nil
// clock returns the zero (disabled) Stopwatch.
//
//vmp:hotpath
func StartWatch(clock simclock.Clock) Stopwatch {
	if clock == nil {
		return Stopwatch{}
	}
	return Stopwatch{clock: clock, start: clock.Now()}
}

// Stop ends the interval, observes it in seconds into h (skipped when
// h is nil), and returns the measured duration. On the zero Stopwatch
// it is a no-op returning 0.
//
//vmp:hotpath
func (w Stopwatch) Stop(h *Histogram) time.Duration {
	if w.clock == nil {
		return 0
	}
	d := w.clock.Now().Sub(w.start)
	if h != nil {
		h.Observe(d.Seconds())
	}
	return d
}
