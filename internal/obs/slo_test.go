package obs

import (
	"math"
	"strings"
	"testing"
	"time"
)

// TestQuantileInterpolation pins the estimator against a distribution
// whose quantiles are computable by hand: 100 observations spread
// uniformly through the (0,1] bucket interpolate linearly across it.
func TestQuantileInterpolation(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for i := 0; i < 100; i++ {
		h.Observe(0.5)
	}
	s := h.Snapshot()
	// All mass in the first bucket (lower edge 0, upper 1): the q-th
	// quantile is simply q.
	for _, tc := range []struct{ q, want float64 }{
		{0.50, 0.50}, {0.90, 0.90}, {0.99, 0.99}, {1.0, 1.0},
	} {
		if got := s.Quantile(tc.q); math.Abs(got-tc.want) > 1e-9 {
			t.Fatalf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	// Clamping: out-of-range probes behave as 0 and 1.
	if got := s.Quantile(-3); got != s.Quantile(0) {
		t.Fatalf("Quantile(-3) = %v, want clamp to Quantile(0)", got)
	}
	if got := s.Quantile(7); got != s.Quantile(1) {
		t.Fatalf("Quantile(7) = %v, want clamp to Quantile(1)", got)
	}
}

// TestQuantileAcrossBuckets spreads mass over two buckets and checks
// the rank lands in the right one before interpolating.
func TestQuantileAcrossBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	for i := 0; i < 50; i++ {
		h.Observe(0.5) // bucket (0,1]
	}
	for i := 0; i < 50; i++ {
		h.Observe(1.5) // bucket (1,2]
	}
	s := h.Snapshot()
	// p25 is halfway through the first bucket's 50 observations.
	if got := s.Quantile(0.25); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("p25 = %v, want 0.5", got)
	}
	// p75 is halfway through the second bucket: 1 + (2-1)*0.5.
	if got := s.Quantile(0.75); math.Abs(got-1.5) > 1e-9 {
		t.Fatalf("p75 = %v, want 1.5", got)
	}
}

// TestQuantileEmpty pins the empty-histogram contract: 0, and no
// Quantiles map in the snapshot.
func TestQuantileEmpty(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	s := h.Snapshot()
	if got := s.Quantile(0.99); got != 0 {
		t.Fatalf("empty Quantile(0.99) = %v, want 0", got)
	}
	if s.Quantiles != nil {
		t.Fatalf("empty snapshot exported quantiles: %v", s.Quantiles)
	}
}

// TestQuantileSingleBucket: with one bound and all mass under it, every
// quantile interpolates within [0, bound].
func TestQuantileSingleBucket(t *testing.T) {
	h := NewHistogram([]float64{10})
	h.Observe(3)
	s := h.Snapshot()
	if got := s.Quantile(0.5); math.Abs(got-5) > 1e-9 {
		// One observation: rank 0.5 interpolates to the bucket midpoint.
		t.Fatalf("single-bucket p50 = %v, want 5", got)
	}
}

// TestQuantileAllOverflow pins the tail contract: when the rank lands
// in the overflow bucket the estimator reports the highest finite
// bound instead of inventing a value it never measured.
func TestQuantileAllOverflow(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.01})
	for i := 0; i < 10; i++ {
		h.Observe(99)
	}
	s := h.Snapshot()
	for _, q := range []float64{0, 0.5, 0.999} {
		if got := s.Quantile(q); got != 0.01 {
			t.Fatalf("all-overflow Quantile(%v) = %v, want 0.01", q, got)
		}
	}
}

// TestSnapshotExportsProbes checks a non-empty snapshot carries all
// four SLO probes.
func TestSnapshotExportsProbes(t *testing.T) {
	h := NewHistogram([]float64{1})
	h.Observe(0.5)
	s := h.Snapshot()
	for _, name := range []string{"p50", "p90", "p99", "p999"} {
		if _, ok := s.Quantiles[name]; !ok {
			t.Fatalf("snapshot missing probe %s: %v", name, s.Quantiles)
		}
	}
}

// TestHistogramReboundsPanic pins the satellite fix: re-registering a
// histogram under the same name with different bounds must fail loudly
// instead of silently handing back the first registration.
func TestHistogramReboundsPanic(t *testing.T) {
	r := NewRegistry()
	r.Histogram("lat", []float64{0.1, 1})
	// Same bounds: idempotent get-or-create, same instance.
	a := r.Histogram("lat", []float64{0.1, 1})
	b := r.Histogram("lat", []float64{0.1, 1})
	if a != b {
		t.Fatal("same-bounds re-registration returned a different histogram")
	}
	defer func() {
		msg, ok := recover().(string)
		if !ok {
			t.Fatal("different-bounds re-registration did not panic")
		}
		if !strings.Contains(msg, "lat") {
			t.Fatalf("panic message %q does not name the histogram", msg)
		}
	}()
	r.Histogram("lat", []float64{0.5, 5})
}

// TestStopwatchMeasures drives a stopwatch on the manual clock and
// checks both the return value and the observation.
func TestStopwatchMeasures(t *testing.T) {
	clk := testClock() // auto-advances 1ms per Now()
	h := NewHistogram([]float64{0.0005, 0.01})
	w := StartWatch(clk)
	d := w.Stop(h)
	if d != time.Millisecond {
		t.Fatalf("measured %v, want 1ms", d)
	}
	s := h.Snapshot()
	if s.Count != 1 || s.Counts[1] != 1 {
		t.Fatalf("observation landed wrong: %+v", s)
	}
	// Nil histogram: measured but not observed.
	if d := StartWatch(clk).Stop(nil); d != time.Millisecond {
		t.Fatalf("nil-histogram Stop = %v, want 1ms", d)
	}
}

// TestStopwatchDisabled pins the disabled contract: a nil clock makes
// Start and Stop no-ops that read no clock and observe nothing.
func TestStopwatchDisabled(t *testing.T) {
	h := NewHistogram([]float64{1})
	if d := StartWatch(nil).Stop(h); d != 0 {
		t.Fatalf("disabled Stop = %v, want 0", d)
	}
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatalf("disabled stopwatch observed: %+v", s)
	}
}

// TestStopwatchZeroAlloc pins the hot-path budget: neither the enabled
// nor the disabled stopwatch may allocate.
func TestStopwatchZeroAlloc(t *testing.T) {
	clk := testClock()
	h := NewHistogram([]float64{0.001, 1})
	if allocs := testing.AllocsPerRun(1000, func() {
		StartWatch(clk).Stop(h)
	}); allocs != 0 {
		t.Fatalf("enabled stopwatch allocated %.1f per op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		StartWatch(nil).Stop(h)
	}); allocs != 0 {
		t.Fatalf("disabled stopwatch allocated %.1f per op, want 0", allocs)
	}
}
