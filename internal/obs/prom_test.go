package obs

import (
	"bytes"
	"math"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// promLine is the text-exposition line grammar this exporter is allowed
// to emit: a # TYPE comment, or a sample with an optional le label.
var promLine = regexp.MustCompile(`^(# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)|[a-zA-Z_:][a-zA-Z0-9_:]*(_bucket\{le="[^"]+"\})? [-+0-9.eE(Inf)]+)$`)

func promTestRegistry() *Registry {
	r := NewRegistry()
	r.Counter("live_ingest_records_total").Add(42)
	r.Counter("wal_fsync_total").Add(7)
	r.Gauge("live_queue_depth_batches").Set(3)
	h := r.Histogram("wal_fsync_seconds", []float64{0.001, 0.01, 0.1})
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(99) // overflow
	return r
}

// TestPromGrammar checks every rendered line against the exposition
// line grammar — the same class of check the smoke script runs against
// a live daemon.
func TestPromGrammar(t *testing.T) {
	out := string(AppendProm(nil, promTestRegistry().Snapshot()))
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if !promLine.MatchString(line) {
			t.Fatalf("line violates exposition grammar: %q", line)
		}
	}
}

// TestPromMatchesSnapshot renders one snapshot both ways and checks
// the exposition carries exactly the snapshot's values: same counters,
// same gauges, cumulative buckets that sum to the histogram count.
func TestPromMatchesSnapshot(t *testing.T) {
	snap := promTestRegistry().Snapshot()
	out := string(AppendProm(nil, snap))
	samples := map[string]string{}
	for _, line := range strings.Split(out, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("unparseable sample line %q", line)
		}
		samples[name] = val
	}
	for name, v := range snap.Counters {
		if samples[name] != strconv.FormatInt(v, 10) {
			t.Fatalf("counter %s rendered %q, want %d", name, samples[name], v)
		}
	}
	for name, v := range snap.Gauges {
		if samples[name] != strconv.FormatInt(v, 10) {
			t.Fatalf("gauge %s rendered %q, want %d", name, samples[name], v)
		}
	}
	h := snap.Histograms["wal_fsync_seconds"]
	if got := samples[`wal_fsync_seconds_bucket{le="+Inf"}`]; got != strconv.FormatInt(h.Count, 10) {
		t.Fatalf("+Inf bucket = %q, want %d", got, h.Count)
	}
	if got := samples["wal_fsync_seconds_count"]; got != strconv.FormatInt(h.Count, 10) {
		t.Fatalf("_count = %q, want %d", got, h.Count)
	}
	sum, err := strconv.ParseFloat(samples["wal_fsync_seconds_sum"], 64)
	if err != nil || math.Abs(sum-h.Sum) > 1e-9 {
		t.Fatalf("_sum = %q, want %v", samples["wal_fsync_seconds_sum"], h.Sum)
	}
	// Cumulative folding: le=0.01 still only covers the 0.0005
	// observation; le=0.1 adds the 0.05 one; the 99 sits in +Inf.
	if got := samples[`wal_fsync_seconds_bucket{le="0.01"}`]; got != "1" {
		t.Fatalf(`le="0.01" bucket = %q, want 1`, got)
	}
	if got := samples[`wal_fsync_seconds_bucket{le="0.1"}`]; got != "2" {
		t.Fatalf(`le="0.1" bucket = %q, want 2`, got)
	}
}

// TestPromByteStable renders the same snapshot twice and expects
// byte-identical output.
func TestPromByteStable(t *testing.T) {
	snap := promTestRegistry().Snapshot()
	if !bytes.Equal(AppendProm(nil, snap), AppendProm(nil, snap)) {
		t.Fatal("exposition differs between identical renders")
	}
}

// TestPromHandler checks the /metrics endpoint: content type, GET-only,
// same bytes as a direct render.
func TestPromHandler(t *testing.T) {
	r := promTestRegistry()
	rec := httptest.NewRecorder()
	PromHandler(r).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != ContentTypeProm {
		t.Fatalf("content type = %q", ct)
	}
	if !bytes.Equal(rec.Body.Bytes(), AppendProm(nil, r.Snapshot())) {
		t.Fatal("handler output differs from direct render")
	}
	rec = httptest.NewRecorder()
	PromHandler(r).ServeHTTP(rec, httptest.NewRequest("POST", "/metrics", nil))
	if rec.Code != 405 {
		t.Fatalf("POST status = %d, want 405", rec.Code)
	}
}

// TestPromName pins the sanitizer: clean names pass through, dirty
// ones degrade to legal ones.
func TestPromName(t *testing.T) {
	for in, want := range map[string]string{
		"live_ingest_records_total":         "live_ingest_records_total",
		"live_query_top-publishers_seconds": "live_query_top_publishers_seconds",
		"9lives":                            "_9lives",
		"":                                  "_",
	} {
		if got := promName(in); got != want {
			t.Fatalf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}
