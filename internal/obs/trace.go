package obs

// This file is the request/batch-scoped half of the observability
// substrate: lightweight spans with parent links and a structured
// event log, both appended lock-free into bounded rings. Metrics
// (obs.go) answer "how much, how fast, in aggregate"; spans answer
// "where did THIS batch spend its time" — admission, shard queue,
// coalesced consume, epoch freeze, merge, publish — and events record
// the discrete decisions (batch admitted/rejected, epoch cut,
// generation published) with WAL-style monotonic sequence numbers.
//
// The contracts the serving plane relies on:
//
//   - Disabled tracing is free on the hot path: Start and Emit reduce
//     to one atomic load and allocate nothing (the variadic attr slice
//     never escapes, so call sites keep it on the stack).
//   - Appends are lock-free and safe under -race: a completed span or
//     event is a fully built record published into its ring slot with
//     one atomic.Pointer.Store, never mutated afterwards.
//   - Snapshots are deterministic: spans sort by ID, events by
//     sequence, per-stage aggregates by name, and every map in the
//     JSON form serializes with sorted keys — under a
//     simclock.ManualClock a repeated run renders byte-identical
//     trace JSON.

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync/atomic"
	"time"

	"vmp/internal/simclock"
)

// SpanID identifies a span within one Tracer; 0 means "no parent".
type SpanID uint64

// Attr is one integer-valued span or event attribute (record counts,
// epoch numbers, shard indices — the vocabulary of this pipeline is
// counts, so attributes are int64 and stay allocation-free).
type Attr struct {
	Key string
	Val int64
}

// KV builds an attribute.
func KV(key string, val int64) Attr { return Attr{Key: key, Val: val} }

// spanRecord is a completed span as published into the ring. It is
// immutable after Store.
type spanRecord struct {
	id     uint64
	parent uint64
	name   string
	start  time.Time
	dur    time.Duration
	attrs  []Attr
}

// eventRecord is one structured log entry, immutable after Store.
type eventRecord struct {
	seq   uint64
	at    time.Time
	typ   string
	attrs []Attr
}

// Tracer is the span and event sink. All methods are safe for
// concurrent use and safe on a nil receiver (a nil Tracer is a
// disabled one), so instrumented code never branches on "is tracing
// configured".
type Tracer struct {
	clock   simclock.Clock
	enabled atomic.Bool
	spanSeq atomic.Uint64 // span IDs, assigned at Start
	spanIdx atomic.Uint64 // ring write cursor, advanced at End
	evSeq   atomic.Uint64 // event sequence numbers (WAL-style)
	spans   []atomic.Pointer[spanRecord]
	events  []atomic.Pointer[eventRecord]
}

// NewTracer returns an enabled tracer timed by clock (nil means the
// wall clock) whose span and event rings each hold capacity entries
// (values < 1 default to 1024). Use SetEnabled(false) for a tracer
// that keeps the endpoints mountable but records nothing.
func NewTracer(clock simclock.Clock, capacity int) *Tracer {
	if clock == nil {
		clock = simclock.Wall()
	}
	if capacity < 1 {
		capacity = 1024
	}
	t := &Tracer{
		clock:  clock,
		spans:  make([]atomic.Pointer[spanRecord], capacity),
		events: make([]atomic.Pointer[eventRecord], capacity),
	}
	t.enabled.Store(true)
	return t
}

// Enabled reports whether spans and events are being recorded.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled.Load() }

// SetEnabled turns recording on or off. Disabling does not clear the
// rings; the snapshot keeps serving what was already captured.
func (t *Tracer) SetEnabled(on bool) {
	if t != nil {
		t.enabled.Store(on)
	}
}

// Span is an open span handle. It is a small value, not a pointer:
// starting and ending a span allocates nothing until the completed
// record is published (and nothing at all when tracing is disabled,
// where the zero Span makes End a no-op).
type Span struct {
	tr     *Tracer
	id     uint64
	parent uint64
	name   string
	start  time.Time
}

// ID returns the span's ID for parent links, 0 if tracing is off.
func (s Span) ID() SpanID { return SpanID(s.id) }

// Start opens a span. parent links it under an enclosing span (0 for
// a root). When the tracer is nil or disabled this is one atomic load
// and returns the zero Span.
//
//vmp:hotpath
func (t *Tracer) Start(name string, parent SpanID) Span {
	if t == nil || !t.enabled.Load() {
		return Span{}
	}
	return Span{
		tr:     t,
		id:     t.spanSeq.Add(1),
		parent: uint64(parent),
		name:   name,
		start:  t.clock.Now(),
	}
}

// End completes the span and publishes it into the ring. attrs are
// copied, so the caller's variadic slice never escapes.
//
//vmp:hotpath
func (s Span) End(attrs ...Attr) {
	if s.tr == nil {
		return
	}
	rec := &spanRecord{ //vmp:alloc enabled path publishes one record into the ring; the disabled path returns above
		id:     s.id,
		parent: s.parent,
		name:   s.name,
		start:  s.start,
		dur:    s.tr.clock.Now().Sub(s.start),
	}
	if len(attrs) > 0 {
		rec.attrs = make([]Attr, len(attrs)) //vmp:alloc attrs are copied so the caller's variadic slice never escapes
		copy(rec.attrs, attrs)
	}
	i := s.tr.spanIdx.Add(1) - 1
	s.tr.spans[i%uint64(len(s.tr.spans))].Store(rec)
}

// Emit appends one structured event. The sequence number is monotonic
// for the tracer's lifetime even after the ring wraps, so a consumer
// tailing the log can detect dropped entries the way a WAL reader
// detects a truncated prefix. Disabled tracers record nothing and
// allocate nothing.
//
//vmp:hotpath
func (t *Tracer) Emit(typ string, attrs ...Attr) {
	if t == nil || !t.enabled.Load() {
		return
	}
	rec := &eventRecord{seq: t.evSeq.Add(1), at: t.clock.Now(), typ: typ} //vmp:alloc enabled path publishes one record into the ring; the disabled path returns above
	if len(attrs) > 0 {
		rec.attrs = make([]Attr, len(attrs)) //vmp:alloc attrs are copied so the caller's variadic slice never escapes
		copy(rec.attrs, attrs)
	}
	t.events[(rec.seq-1)%uint64(len(t.events))].Store(rec)
}

// SpanJSON is one completed span in the /v1/trace payload.
type SpanJSON struct {
	ID     uint64           `json:"id"`
	Parent uint64           `json:"parent,omitempty"`
	Name   string           `json:"name"`
	Start  string           `json:"start"`
	DurUS  int64            `json:"dur_us"`
	Attrs  map[string]int64 `json:"attrs,omitempty"`
}

// EventJSON is one structured log entry in the /v1/trace payload.
type EventJSON struct {
	Seq   uint64           `json:"seq"`
	Time  string           `json:"time"`
	Type  string           `json:"type"`
	Attrs map[string]int64 `json:"attrs,omitempty"`
}

// StageStat aggregates the retained spans of one stage name — the
// per-stage latency decomposition, computed over the ring at snapshot
// time rather than double-counted into histograms on the hot path.
type StageStat struct {
	Name  string `json:"name"`
	Count int64  `json:"count"`
	SumUS int64  `json:"sum_us"`
	MinUS int64  `json:"min_us"`
	MaxUS int64  `json:"max_us"`
}

// TraceSnapshot is the /v1/trace payload. SpansTotal and EventsTotal
// are lifetime counters; when they exceed len(Spans)/len(Events) the
// rings have wrapped and only the most recent entries are retained.
type TraceSnapshot struct {
	Enabled     bool        `json:"enabled"`
	SpansTotal  uint64      `json:"spans_total"`
	EventsTotal uint64      `json:"events_total"`
	Stages      []StageStat `json:"stages"`
	Spans       []SpanJSON  `json:"spans"`
	Events      []EventJSON `json:"events"`
}

// traceTime renders an instant the one canonical way.
func traceTime(t time.Time) string { return t.UTC().Format(time.RFC3339Nano) }

// attrMap converts copied attrs to the JSON form (map keys serialize
// sorted, which keeps the payload deterministic).
func attrMap(attrs []Attr) map[string]int64 {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]int64, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Val
	}
	return m
}

// Snapshot reads the rings. Concurrent appends may land between slot
// reads; each retained record is individually complete (published
// whole behind its atomic pointer). Spans sort by ID, events by
// sequence, stages by name. Safe on a nil tracer.
func (t *Tracer) Snapshot() TraceSnapshot {
	s := TraceSnapshot{
		Stages: []StageStat{},
		Spans:  []SpanJSON{},
		Events: []EventJSON{},
	}
	if t == nil {
		return s
	}
	s.Enabled = t.enabled.Load()
	s.SpansTotal = t.spanIdx.Load()
	s.EventsTotal = t.evSeq.Load()

	var recs []*spanRecord
	for i := range t.spans {
		if r := t.spans[i].Load(); r != nil {
			recs = append(recs, r)
		}
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].id < recs[j].id })
	byStage := make(map[string]*StageStat, 8)
	var stageNames []string
	for _, r := range recs {
		us := r.dur.Microseconds()
		s.Spans = append(s.Spans, SpanJSON{
			ID:     r.id,
			Parent: r.parent,
			Name:   r.name,
			Start:  traceTime(r.start),
			DurUS:  us,
			Attrs:  attrMap(r.attrs),
		})
		st := byStage[r.name]
		if st == nil {
			st = &StageStat{Name: r.name, MinUS: us, MaxUS: us}
			byStage[r.name] = st
			stageNames = append(stageNames, r.name)
		}
		st.Count++
		st.SumUS += us
		if us < st.MinUS {
			st.MinUS = us
		}
		if us > st.MaxUS {
			st.MaxUS = us
		}
	}
	sort.Strings(stageNames)
	for _, name := range stageNames {
		s.Stages = append(s.Stages, *byStage[name])
	}

	var evs []*eventRecord
	for i := range t.events {
		if r := t.events[i].Load(); r != nil {
			evs = append(evs, r)
		}
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].seq < evs[j].seq })
	for _, r := range evs {
		s.Events = append(s.Events, EventJSON{
			Seq:   r.seq,
			Time:  traceTime(r.at),
			Type:  r.typ,
			Attrs: attrMap(r.attrs),
		})
	}
	return s
}

// StageStats returns just the per-stage aggregates (the -stats table
// of cmd/vmpstudy), sorted by name.
func (t *Tracer) StageStats() []StageStat { return t.Snapshot().Stages }

// Handler serves the trace snapshot as JSON on GET.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		buf, err := json.Marshal(t.Snapshot())
		if err != nil {
			http.Error(w, "encode error", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(append(buf, '\n'))
	})
}

// DebugSnapshot is the /debug/vmp payload: one page with everything —
// aggregate metrics (counters, queue-depth gauges, latency
// histograms) next to the trace's per-stage decomposition, recent
// spans, and the event tail.
type DebugSnapshot struct {
	Metrics Snapshot      `json:"metrics"`
	Trace   TraceSnapshot `json:"trace"`
}

// DebugHandler serves the combined operational snapshot on GET.
func DebugHandler(reg *Registry, tr *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		snap := DebugSnapshot{Metrics: reg.Snapshot(), Trace: tr.Snapshot()}
		buf, err := json.Marshal(snap)
		if err != nil {
			http.Error(w, "encode error", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(append(buf, '\n'))
	})
}

// Mount registers the shared observability surface on mux — the one
// substrate both daemons (vmpd and vmpcollector) report through:
//
//	GET /v1/metrics — registry snapshot (counters, gauges, histograms) as JSON
//	GET /metrics    — the same registry in Prometheus text exposition format
//	GET /v1/series  — the in-process time series (recent registry snapshots + rates)
//	GET /v1/trace   — recent spans, per-stage latency, event tail
//	GET /debug/vmp  — metrics and trace combined
//
// A nil series mounts an empty ring, so the endpoint shape is the same
// whether or not the daemon runs a Sampler.
func Mount(mux *http.ServeMux, reg *Registry, tr *Tracer, series *SeriesRing) {
	if series == nil {
		series = NewSeriesRing(1)
	}
	mux.Handle("/v1/metrics", reg.Handler())
	mux.Handle("/metrics", PromHandler(reg))
	mux.Handle("/v1/series", series.Handler())
	mux.Handle("/v1/trace", tr.Handler())
	mux.Handle("/debug/vmp", DebugHandler(reg, tr))
}
