package obs

// This file is the runtime collector of the self-measurement plane: a
// ctx-guarded sampler goroutine that, on a fixed cadence, publishes Go
// runtime health (heap, GC, goroutines, scheduler shape) into the
// registry, asks each registered source to publish its plane-internal
// gauges (shard queue depths, WAL backlog, generation age), and then
// records one registry snapshot into the series ring — so the
// /v1/series flight recorder and the /metrics exposition always agree,
// because they are views of the same sampled registry.

import (
	"context"
	"runtime"
	"time"

	"vmp/internal/simclock"
)

// Sampler drives periodic self-measurement. Configure it fully (all
// AddSource calls) before starting Run; Sample itself is safe to call
// concurrently with readers of the registry and ring.
type Sampler struct {
	reg     *Registry
	series  *SeriesRing
	clock   simclock.Clock
	every   time.Duration
	sources []func()

	samples    *Counter
	heapAlloc  *Gauge
	heapSys    *Gauge
	heapObjs   *Gauge
	stackInuse *Gauge
	gcPauseNS  *Gauge
	gcRuns     *Gauge
	goroutines *Gauge
	gomaxprocs *Gauge
	cpus       *Gauge
}

// NewSampler returns a sampler publishing into reg and recording
// snapshots into series (nil series just skips the recording). A nil
// clock means the wall clock; cadences < 1s default to 1s.
func NewSampler(reg *Registry, series *SeriesRing, clock simclock.Clock, every time.Duration) *Sampler {
	if clock == nil {
		clock = simclock.Wall()
	}
	if every < time.Second {
		every = time.Second
	}
	return &Sampler{
		reg:        reg,
		series:     series,
		clock:      clock,
		every:      every,
		samples:    reg.Counter("obs_samples_total"),
		heapAlloc:  reg.Gauge("go_heap_alloc_bytes"),
		heapSys:    reg.Gauge("go_heap_sys_bytes"),
		heapObjs:   reg.Gauge("go_heap_objects"),
		stackInuse: reg.Gauge("go_stack_inuse_bytes"),
		gcPauseNS:  reg.Gauge("go_gc_pause_total_ns"),
		gcRuns:     reg.Gauge("go_gc_runs"),
		goroutines: reg.Gauge("go_goroutines"),
		gomaxprocs: reg.Gauge("go_sched_gomaxprocs"),
		cpus:       reg.Gauge("go_sched_cpus"),
	}
}

// AddSource registers a plane-internal gauge publisher invoked on
// every sample (the live engine's queue depths, the WAL's backlog).
// Not safe to call after Run has started.
func (s *Sampler) AddSource(fn func()) {
	if fn != nil {
		s.sources = append(s.sources, fn)
	}
}

// Sample performs one sampling pass: runtime stats, plane sources,
// then one series point recording the registry as it stands.
func (s *Sampler) Sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.heapAlloc.Set(int64(ms.HeapAlloc))
	s.heapSys.Set(int64(ms.HeapSys))
	s.heapObjs.Set(int64(ms.HeapObjects))
	s.stackInuse.Set(int64(ms.StackInuse))
	s.gcPauseNS.Set(int64(ms.PauseTotalNs))
	s.gcRuns.Set(int64(ms.NumGC))
	s.goroutines.Set(int64(runtime.NumGoroutine()))
	s.gomaxprocs.Set(int64(runtime.GOMAXPROCS(0)))
	s.cpus.Set(int64(runtime.NumCPU()))
	for _, fn := range s.sources {
		fn()
	}
	s.samples.Add(1)
	if s.series != nil {
		s.series.Record(s.clock.Now(), s.reg.Snapshot())
	}
}

// Run samples immediately, then on the configured cadence until ctx is
// done. The ticker is operational heartbeat, not study time, so the
// real ticker is correct here; determinism-sensitive tests drive
// Sample (or SeriesRing.Record) directly instead.
func (s *Sampler) Run(ctx context.Context) {
	s.Sample()
	tick := time.NewTicker(s.every)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			s.Sample()
		}
	}
}
