// Package obs is the serving plane's observability substrate: atomic
// counters, gauges, and fixed-bucket histograms behind a named
// registry (this file), plus a batch-scoped tracing layer — spans
// with parent links and a structured event log in bounded lock-free
// rings (trace.go) — exposed as deterministic JSON (map keys
// serialize sorted) on shared HTTP handlers (obs.Mount). It is
// deliberately tiny — the operational counterpart of the study's
// figure suite, not a metrics framework — and everything here is safe
// for concurrent use on the ingest hot path: Observe, Add, Start, and
// Emit are lock-free, reading a snapshot never blocks a writer, and a
// disabled tracer costs one atomic load and zero allocations per
// instrumentation site.
package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing count.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
//
//vmp:hotpath
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an instantaneous level (queue depth, generation size).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's value.
//
//vmp:hotpath
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n.
//
//vmp:hotpath
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Histogram is a fixed-bucket distribution. Bucket i counts
// observations v <= bounds[i]; one overflow bucket counts the rest.
// Observe is lock-free: a bucket hit is one atomic add, the running
// sum a CAS loop on the float bits. There is deliberately no separate
// count cell: an Observe racing a snapshot could otherwise leave the
// snapshot showing count ≠ Σbuckets, so the count is always derived
// from the buckets themselves (see Snapshot for the consistency
// contract).
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1, last is overflow
	sumBits atomic.Uint64
}

// NewHistogram returns a histogram over ascending upper bounds. It
// panics on unsorted or empty bounds, which indicate programmer error.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 || !sort.Float64sAreSorted(bounds) {
		panic("obs: histogram bounds must be ascending and non-empty")
	}
	bs := make([]float64, len(bounds))
	copy(bs, bounds)
	return &Histogram{bounds: bs, buckets: make([]atomic.Int64, len(bs)+1)}
}

// Observe records one value.
//
//vmp:hotpath
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// HistogramSnapshot is a histogram's point-in-time reading: Counts has
// one entry per bound plus a final overflow entry, and Quantiles holds
// the exported SLO probes (p50/p90/p99/p999) interpolated from the
// buckets at snapshot time — estimation is a read-side cost, never an
// Observe-side one.
type HistogramSnapshot struct {
	Count     int64              `json:"count"`
	Sum       float64            `json:"sum"`
	Bounds    []float64          `json:"le"`
	Counts    []int64            `json:"n"`
	Quantiles map[string]float64 `json:"q,omitempty"`
}

// quantileProbes are the SLO quantiles every histogram snapshot
// exports. The names double as the JSON keys, so they sort (and render)
// deterministically: p50 < p90 < p99 < p999.
var quantileProbes = []struct {
	name string
	q    float64
}{
	{"p50", 0.50},
	{"p90", 0.90},
	{"p99", 0.99},
	{"p999", 0.999},
}

// Quantile estimates the q-quantile (clamped to [0, 1]) of the
// recorded distribution by linear interpolation inside the bucket
// holding the target rank, the same estimator Prometheus's
// histogram_quantile uses: the first bucket's lower edge is 0, and a
// rank landing in the overflow bucket reports the highest finite
// bound (the histogram cannot see past its own buckets). An empty
// histogram reports 0.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum int64
	for i, n := range s.Counts {
		prev := float64(cum)
		cum += n
		if n == 0 || float64(cum) < rank {
			continue
		}
		if i >= len(s.Bounds) {
			// Overflow bucket: the distribution's tail is beyond the
			// last finite bound; report the bound rather than invent a
			// shape for territory the histogram never measured.
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		return lo + (s.Bounds[i]-lo)*((rank-prev)/float64(n))
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Snapshot reads the histogram under a relaxed-consistency contract:
// Count is reported as the sum of the bucket reads, so every snapshot
// satisfies count == Σbuckets by construction (concurrent observers
// may land between individual bucket loads, so the buckets themselves
// are consistent with *some* interleaving of the observation stream,
// not necessarily a single prefix). Sum is read last and may include
// observations whose bucket increment was not yet visible — it is an
// aggregate for averages, not an exact pair with Count.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.buckets)),
	}
	for i := range h.buckets {
		n := h.buckets[i].Load()
		s.Counts[i] = n
		s.Count += n
	}
	s.Sum = math.Float64frombits(h.sumBits.Load())
	if s.Count > 0 {
		s.Quantiles = make(map[string]float64, len(quantileProbes))
		for _, p := range quantileProbes {
			s.Quantiles[p.name] = s.Quantile(p.q)
		}
	}
	return s
}

// Registry is a named set of metrics. Get-or-create accessors are
// idempotent, so packages can look metrics up by name at use sites
// instead of threading pointers.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with bounds on
// first use. A later call with the same bounds returns the existing
// histogram; a later call with *different* bounds panics — silently
// returning the first registration would skew every observation the
// second call site records into buckets it never asked for, which is
// programmer error exactly like unsorted bounds.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram(bounds)
		r.histograms[name] = h
		return h
	}
	if !boundsEqual(h.bounds, bounds) {
		panic(fmt.Sprintf("obs: histogram %q re-registered with different bounds (%v, was %v)",
			name, bounds, h.bounds))
	}
	return h
}

// boundsEqual reports whether two bound slices are element-wise equal.
func boundsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Snapshot is the registry's point-in-time reading, the /v1/metrics
// payload. encoding/json serializes map keys sorted, so the rendered
// form is deterministic for a given set of values.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot reads every registered metric.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Load()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Load()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// Handler serves the registry snapshot as JSON on GET.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		buf, err := json.Marshal(r.Snapshot())
		if err != nil {
			http.Error(w, "encode error", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(append(buf, '\n'))
	})
}
