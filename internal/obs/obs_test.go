package obs

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ingested")
	c.Add(3)
	c.Add(2)
	if got := r.Counter("ingested").Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("depth")
	g.Set(7)
	g.Add(-2)
	if got := r.Gauge("depth").Load(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	if s.Sum != 556.5 {
		t.Fatalf("sum = %v, want 556.5", s.Sum)
	}
	want := []int64{2, 1, 1, 1} // {<=1}=2 (0.5 and the boundary 1), (1,10]=1, (10,100]=1, overflow=1
	for i, n := range want {
		if s.Counts[i] != n {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, s.Counts[i], n, s.Counts)
		}
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram([]float64{0.5})
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(1)
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("count = %d, want %d", s.Count, workers*per)
	}
	if s.Sum != workers*per {
		t.Fatalf("sum = %v, want %d", s.Sum, workers*per)
	}
}

func TestBadBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unsorted bounds did not panic")
		}
	}()
	NewHistogram([]float64{2, 1})
}

// TestHandlerDeterministic renders the same registry twice and expects
// byte-identical JSON: the /v1/metrics payload must not depend on map
// iteration order.
func TestHandlerDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Add(2)
	r.Counter("a_total").Add(1)
	r.Gauge("depth").Set(4)
	r.Histogram("lat", []float64{0.1, 1}).Observe(0.05)

	render := func() []byte {
		rec := httptest.NewRecorder()
		r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/metrics", nil))
		if rec.Code != 200 {
			t.Fatalf("status = %d", rec.Code)
		}
		return rec.Body.Bytes()
	}
	first := render()
	if !bytes.Equal(first, render()) {
		t.Fatal("metrics payload differs between identical renders")
	}
	var snap Snapshot
	if err := json.Unmarshal(first, &snap); err != nil {
		t.Fatalf("payload not valid JSON: %v", err)
	}
	if snap.Counters["a_total"] != 1 || snap.Counters["b_total"] != 2 {
		t.Fatalf("counters round-trip = %+v", snap.Counters)
	}
}
