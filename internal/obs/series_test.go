package obs

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"vmp/internal/simclock"
)

// recordN drives n samples into the ring from a registry whose counter
// advances by 100 per sample and a clock advancing one second per
// sample, returning the clock for further use.
func recordN(ring *SeriesRing, n int) *simclock.ManualClock {
	clk := simclock.NewManual(time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC))
	reg := NewRegistry()
	c := reg.Counter("live_ingest_records_total")
	for i := 0; i < n; i++ {
		c.Add(100)
		ring.Record(clk.Now(), reg.Snapshot())
		clk.Advance(time.Second)
	}
	return clk
}

// TestSeriesRingWrap records past the ring's capacity and checks only
// the newest points survive, in sequence order, with the lifetime
// total intact.
func TestSeriesRingWrap(t *testing.T) {
	ring := NewSeriesRing(4)
	recordN(ring, 10)
	s := ring.Snapshot()
	if s.SamplesTotal != 10 || s.Capacity != 4 {
		t.Fatalf("totals = %d/%d, want 10/4", s.SamplesTotal, s.Capacity)
	}
	if len(s.Points) != 4 {
		t.Fatalf("retained %d points, want 4", len(s.Points))
	}
	for i, p := range s.Points {
		if want := uint64(7 + i); p.Seq != want {
			t.Fatalf("point %d seq = %d, want %d", i, p.Seq, want)
		}
	}
}

// TestSeriesRates checks the per-second derivation: +100 records per
// one-second step is a rate of 100/s on every point but the oldest.
func TestSeriesRates(t *testing.T) {
	ring := NewSeriesRing(8)
	recordN(ring, 3)
	s := ring.Snapshot()
	if len(s.Points) != 3 {
		t.Fatalf("retained %d points, want 3", len(s.Points))
	}
	if s.Points[0].Rates != nil {
		t.Fatalf("oldest point has rates: %v", s.Points[0].Rates)
	}
	for _, p := range s.Points[1:] {
		if got := p.Rates["live_ingest_records_total"]; got != 100 {
			t.Fatalf("seq %d rate = %v, want 100", p.Seq, got)
		}
	}
}

// TestSeriesRatesDegenerate pins the honesty cases: a zero time delta
// and a counter reset both yield no rate, never a garbage one.
func TestSeriesRatesDegenerate(t *testing.T) {
	ring := NewSeriesRing(8)
	reg := NewRegistry()
	c := reg.Counter("x_total")
	at := time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC)

	c.Add(5)
	ring.Record(at, reg.Snapshot())
	ring.Record(at, reg.Snapshot()) // same instant: dt = 0
	s := ring.Snapshot()
	if s.Points[1].Rates != nil {
		t.Fatalf("zero-dt point has rates: %v", s.Points[1].Rates)
	}

	// A "reset" (snapshot with a smaller value, as a restarted daemon
	// would produce) must not yield a negative rate.
	down := reg.Snapshot()
	down.Counters["x_total"] = 1
	ring.Record(at.Add(time.Second), down)
	s = ring.Snapshot()
	last := s.Points[len(s.Points)-1]
	if _, ok := last.Rates["x_total"]; ok {
		t.Fatalf("counter reset produced a rate: %v", last.Rates)
	}
}

// TestSeriesHistQuantiles checks histogram points carry the
// interpolated SLO quantiles.
func TestSeriesHistQuantiles(t *testing.T) {
	ring := NewSeriesRing(4)
	reg := NewRegistry()
	h := reg.Histogram("lat_seconds", []float64{1, 2})
	for i := 0; i < 100; i++ {
		h.Observe(0.5)
	}
	ring.Record(time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC), reg.Snapshot())
	s := ring.Snapshot()
	sh, ok := s.Points[0].Hists["lat_seconds"]
	if !ok {
		t.Fatalf("histogram missing from point: %+v", s.Points[0])
	}
	if sh.Count != 100 || sh.P50 != 0.5 || sh.P99 != 0.99 {
		t.Fatalf("hist point = %+v", sh)
	}
}

// TestSeriesDeterministicJSON renders the same ring twice through the
// HTTP handler and expects byte-identical JSON — the determinism
// contract /v1/series inherits from the rest of the obs surface.
func TestSeriesDeterministicJSON(t *testing.T) {
	ring := NewSeriesRing(4)
	recordN(ring, 6)
	render := func() []byte {
		rec := httptest.NewRecorder()
		ring.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/series", nil))
		if rec.Code != 200 {
			t.Fatalf("status = %d", rec.Code)
		}
		return rec.Body.Bytes()
	}
	first := render()
	if !bytes.Equal(first, render()) {
		t.Fatal("series payload differs between identical renders")
	}
	var snap SeriesSnapshot
	if err := json.Unmarshal(first, &snap); err != nil {
		t.Fatalf("payload not valid JSON: %v", err)
	}
	if snap.SamplesTotal != 6 || len(snap.Points) != 4 {
		t.Fatalf("round-trip = %d samples, %d points", snap.SamplesTotal, len(snap.Points))
	}
	if snap.Points[0].Time != "2016-01-01T00:00:02Z" {
		t.Fatalf("oldest retained time = %q", snap.Points[0].Time)
	}
}

// TestSeriesHandlerMethod pins GET-only.
func TestSeriesHandlerMethod(t *testing.T) {
	ring := NewSeriesRing(4)
	rec := httptest.NewRecorder()
	ring.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/v1/series", nil))
	if rec.Code != 405 {
		t.Fatalf("POST status = %d, want 405", rec.Code)
	}
}
