package player

import (
	"math"
	"sort"

	"vmp/internal/dist"
	"vmp/internal/manifest"
	"vmp/internal/netmodel"
)

// Oboe-style ABR auto-tuning (Akhtar et al., SIGCOMM 2018 — reference
// [48] of the paper, by the same authors): instead of one fixed ABR
// configuration for every session, precompute offline the best
// buffer-based parameters for a grid of network states, then pick the
// configuration matching each session's observed throughput statistics.
// §1 motivates studying the management plane partly by "the effort
// needed to incorporate control plane innovations such as new bitrate
// selection algorithms" — this file is one such innovation layered on
// the substrate.

// NetState characterizes a network path for tuning purposes.
type NetState struct {
	MeanKbps float64
	CV       float64 // coefficient of variation of chunk throughput
}

// OboeTable maps network states to the best buffer-based configuration
// found offline for each.
type OboeTable struct {
	states []NetState
	cfgs   []BufferBased
}

// candidate configurations explored per state.
var oboeCandidates = []BufferBased{
	{ReservoirSec: 2, CushionSec: 15},
	{ReservoirSec: 5, CushionSec: 25},
	{ReservoirSec: 5, CushionSec: 40},
	{ReservoirSec: 10, CushionSec: 30},
	{ReservoirSec: 12, CushionSec: 50},
}

// oboeGrid is the offline state grid.
var oboeGrid = []NetState{
	{1200, 0.25}, {1200, 0.7},
	{3000, 0.25}, {3000, 0.7},
	{7000, 0.25}, {7000, 0.7},
	{16000, 0.25}, {16000, 0.7},
}

// rebufPenaltyKbps converts rebuffering ratio into bitrate-equivalent
// loss in the tuning objective: one percent of stall costs as much as
// 250 Kbps of average bitrate. QoE studies (Dobrian et al., SIGCOMM'11,
// the paper's reference [57]) find rebuffering dominates engagement, so
// the objective weights it heavily.
const rebufPenaltyKbps = 25000

// BuildOboeTable runs the offline tuning stage: for every grid state,
// simulate candidate configurations over synthetic paths with that
// state's statistics and keep the configuration maximizing
// avgBitrate − penalty × rebufferRatio. Deterministic in src.
func BuildOboeTable(ladder manifest.Ladder, chunkSec float64, src *dist.Source) (*OboeTable, error) {
	spec := &manifest.Spec{
		VideoID:     "oboe-cal",
		DurationSec: 1200,
		ChunkSec:    chunkSec,
		AudioKbps:   96,
		Ladder:      ladder,
	}
	text, err := manifest.Generate(manifest.HLS, spec, "http://oboe.local/cal")
	if err != nil {
		return nil, err
	}
	m, err := manifest.Parse("http://oboe.local/cal/oboe-cal.m3u8", text)
	if err != nil {
		return nil, err
	}
	table := &OboeTable{}
	const sessionsPerCandidate = 12
	for si, state := range oboeGrid {
		sigma := math.Sqrt(math.Log(1 + state.CV*state.CV))
		profile := netmodel.Profile{MeanKbps: state.MeanKbps, Sigma: sigma, Rho: 0.85, RTTms: 30}
		best, bestScore := oboeCandidates[0], math.Inf(-1)
		for ci, cand := range oboeCandidates {
			var bitrates, rebufs []float64
			for k := 0; k < sessionsPerCandidate; k++ {
				res, err := Play(Config{
					Manifest: m,
					ABR:      cand,
					Trace:    profile.NewTrace(src.Splitf("cal", si*1000+ci*100+k)),
					WatchSec: 600,
				})
				if err != nil {
					return nil, err
				}
				bitrates = append(bitrates, res.AvgBitrateKbps)
				rebufs = append(rebufs, res.RebufferRatio())
			}
			// Tail-sensitive objective: mean bitrate minus a heavy
			// penalty on the worst-decile rebuffering — stalls, not
			// averages, are what drive viewers away.
			sort.Float64s(rebufs)
			p90 := rebufs[(len(rebufs)*9)/10]
			score := mean(bitrates) - rebufPenaltyKbps*p90
			if score > bestScore {
				best, bestScore = cand, score
			}
		}
		table.states = append(table.states, state)
		table.cfgs = append(table.cfgs, best)
	}
	return table, nil
}

// Lookup returns the tuned configuration for the estimated state:
// nearest grid mean on a log scale, with the CV rounded *up* to the
// next grid level. Probe-based CV estimates are noisy and
// underestimating variability is the expensive direction (it selects
// aggressive configurations that stall on volatile paths), so the
// lookup is deliberately conservative.
func (t *OboeTable) Lookup(state NetState) BufferBased {
	if len(t.states) == 0 {
		return BufferBased{}
	}
	// Round CV up to the smallest grid CV >= estimate (or the grid max).
	cvLevel := math.Inf(1)
	maxCV := 0.0
	for _, s := range t.states {
		if s.CV > maxCV {
			maxCV = s.CV
		}
		if s.CV >= state.CV && s.CV < cvLevel {
			cvLevel = s.CV
		}
	}
	if math.IsInf(cvLevel, 1) {
		cvLevel = maxCV
	}
	bestIdx, bestDist := -1, math.Inf(1)
	for i, s := range t.states {
		if s.CV != cvLevel {
			continue
		}
		d := math.Abs(math.Log(maxPos(state.MeanKbps)) - math.Log(maxPos(s.MeanKbps)))
		if d < bestDist {
			bestIdx, bestDist = i, d
		}
	}
	if bestIdx < 0 {
		bestIdx = 0
	}
	return t.cfgs[bestIdx]
}

// States returns the table's grid, for inspection.
func (t *OboeTable) States() []NetState { return append([]NetState(nil), t.states...) }

// Config returns the tuned configuration for grid entry i.
func (t *OboeTable) Config(i int) BufferBased { return t.cfgs[i] }

func maxPos(x float64) float64 {
	if x <= 1 {
		return 1
	}
	return x
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// AutoTuned is the per-session online half of Oboe: it probes the path
// for the first ProbeChunks chunks with a conservative configuration,
// estimates the session's network state from the observed throughput,
// and then runs the offline-tuned configuration for that state.
//
// AutoTuned is stateful: use a fresh instance per playback session.
type AutoTuned struct {
	Table *OboeTable
	// ProbeChunks is the probe length; zero defaults to 5.
	ProbeChunks int

	samples []float64
	tuned   *BufferBased
}

// Name implements ABR.
func (*AutoTuned) Name() string { return "oboe" }

// Choose implements ABR.
func (a *AutoTuned) Choose(ladder manifest.Ladder, s State) int {
	probe := a.ProbeChunks
	if probe <= 0 {
		probe = 12
	}
	if a.tuned == nil {
		if s.ThroughputKbps > 0 {
			a.samples = append(a.samples, s.ThroughputKbps)
		}
		if len(a.samples) < probe {
			// Conservative probe configuration.
			return BufferBased{ReservoirSec: 8, CushionSec: 30}.Choose(ladder, s)
		}
		mean := 0.0
		for _, x := range a.samples {
			mean += x
		}
		mean /= float64(len(a.samples))
		variance := 0.0
		for _, x := range a.samples {
			variance += (x - mean) * (x - mean)
		}
		variance /= float64(len(a.samples))
		cv := 0.0
		if mean > 0 {
			cv = math.Sqrt(variance) / mean
		}
		// The probe observes the player's EWMA-smoothed throughput,
		// which shrinks variance by roughly (1-α)/(1+α); undo the
		// shrinkage so the state lookup sees path-level variability.
		cv *= math.Sqrt((1 + throughputEWMA) / (1 - throughputEWMA))
		cfg := BufferBased{}
		if a.Table != nil {
			cfg = a.Table.Lookup(NetState{MeanKbps: mean, CV: cv})
		}
		a.tuned = &cfg
	}
	return a.tuned.Choose(ladder, s)
}

// TunedConfig returns the configuration the session locked onto, or
// false while still probing.
func (a *AutoTuned) TunedConfig() (BufferBased, bool) {
	if a.tuned == nil {
		return BufferBased{}, false
	}
	return *a.tuned, true
}
