package player

import (
	"errors"
	"fmt"

	"vmp/internal/cdnsim"
	"vmp/internal/dist"
	"vmp/internal/manifest"
	"vmp/internal/netmodel"
)

// Config describes one playback session.
type Config struct {
	Manifest *manifest.Manifest // parsed manifest to play
	ABR      ABR                // adaptation algorithm; nil uses BufferBased
	Trace    *netmodel.Trace    // network path to the chosen CDN; required
	CDN      *cdnsim.CDN        // serving CDN; nil disables edge-cache effects
	ISP      string             // client ISP, selects the CDN edge POP
	WatchSec float64            // how long the user intends to watch
	// StartupChunks is the buffer (in chunks) required before playback
	// starts; zero defaults to 2.
	StartupChunks int
	// RouteFlipSrc enables anycast route-instability modeling (§4.3:
	// "anycast is susceptible to BGP route changes that sever ongoing
	// TCP connections"). When non-nil and the CDN uses anycast, each
	// chunk download risks a route flip that severs the connection and
	// forces a reconnect. Nil disables the model.
	RouteFlipSrc *dist.Source
	// RouteFlipPerChunk overrides the per-chunk flip probability; zero
	// defaults to 0.2% (a flip every ~30 minutes of 4s chunks).
	RouteFlipPerChunk float64
	// Fallback enables midstream CDN switching, the behavior behind
	// §3's footnote that "during a single view, chunks may be
	// downloaded from multiple CDNs": after SwitchAfterStalls stalls,
	// the session fails over to the fallback CDN and path.
	Fallback      *cdnsim.CDN
	FallbackTrace *netmodel.Trace
	// SwitchAfterStalls is the stall count that triggers failover;
	// zero defaults to 2.
	SwitchAfterStalls int
	// LicenseSec is the DRM license-exchange time paid before the
	// first chunk of protected content (see internal/drm); zero for
	// unprotected content.
	LicenseSec float64
}

// Result is what one session measures: the per-view metrics the
// telemetry layer reports to the collector (§3 — viewing time, average
// bitrate, rebuffering time).
type Result struct {
	PlayedSec       float64 // media seconds actually played
	RebufferSec     float64 // stall time after startup
	StartupSec      float64 // join time before first frame
	AvgBitrateKbps  float64 // time-weighted average video bitrate
	ChunksFetched   int
	EdgeHits        int
	BitrateSwitches int
	RouteFlips      int      // anycast route changes that severed the connection
	CDNsUsed        []string // CDNs chunks were downloaded from, in order of use
}

// RebufferRatio returns stall time as a fraction of the view (§6's
// "fraction of the view that experiences rebuffering").
func (r Result) RebufferRatio() float64 {
	total := r.PlayedSec + r.RebufferSec
	if total <= 0 {
		return 0
	}
	return r.RebufferSec / total
}

// originMissPenalty scales a chunk's download time when the edge misses
// and must fetch through to the origin.
const originMissPenalty = 1.35

// Anycast route-flip model: defaultRouteFlipPerChunk is the per-chunk
// probability of a BGP route change severing the connection, and
// routeFlipPenaltySec is the reconnect cost (TCP handshake plus
// slow-start ramp) added to that chunk's download.
const (
	defaultRouteFlipPerChunk = 0.002
	routeFlipPenaltySec      = 1.2
)

// throughputEWMA is the smoothing factor for the throughput estimate
// fed to the ABR.
const throughputEWMA = 0.65

// Play runs one playback session to completion: either the user's
// intended watch time is reached or (for VoD) the content ends.
func Play(cfg Config) (Result, error) {
	m := cfg.Manifest
	switch {
	case m == nil:
		return Result{}, errors.New("player: nil manifest")
	case len(m.Ladder) == 0:
		return Result{}, errors.New("player: manifest has empty ladder")
	case cfg.Trace == nil:
		return Result{}, errors.New("player: nil network trace")
	case cfg.WatchSec <= 0:
		return Result{}, errors.New("player: non-positive watch duration")
	}
	abr := cfg.ABR
	if abr == nil {
		abr = BufferBased{}
	}
	startup := cfg.StartupChunks
	if startup <= 0 {
		startup = 2
	}

	var (
		res        Result
		bufferSec  float64
		throughput float64 // EWMA Kbps
		lastRend   = -1
		weighted   float64 // Σ bitrate × seconds played at it
		stalls     int
	)
	curCDN, curTrace := cfg.CDN, cfg.Trace
	if curCDN != nil {
		res.CDNsUsed = append(res.CDNsUsed, curCDN.Name)
	}
	if cfg.LicenseSec > 0 {
		// Protected content: the license exchange completes before
		// the first media request.
		res.StartupSec += cfg.LicenseSec
	}
	switchAfter := cfg.SwitchAfterStalls
	if switchAfter <= 0 {
		switchAfter = 2
	}

	// contentChunks is how many chunks the session may fetch: bounded
	// by the manifest for VoD, by watch time for live (new chunks keep
	// being produced).
	maxChunks := m.ChunkCount()
	if m.Live {
		maxChunks = int(cfg.WatchSec/m.ChunkSec) + startup + 2
	}

	for i := 0; i < maxChunks && res.PlayedSec < cfg.WatchSec; i++ {
		rend := abr.Choose(m.Ladder, State{
			BufferSec:      bufferSec,
			ThroughputKbps: throughput,
			ChunkSec:       m.ChunkSec,
		})
		if rend < 0 || rend >= len(m.Ladder) {
			return Result{}, fmt.Errorf("player: ABR %q chose rendition %d of %d", abr.Name(), rend, len(m.Ladder))
		}
		if lastRend >= 0 && rend != lastRend {
			res.BitrateSwitches++
		}

		chunkBytes := int64(float64(m.Ladder[rend].BitrateKbps+m.AudioKbps) * 1000 * m.ChunkSec / 8)
		dlSec := curTrace.DownloadSec(chunkBytes)
		if curCDN != nil {
			key := chunkKey(m, rend, i)
			if curCDN.ServeChunk(cfg.ISP, key, chunkBytes) {
				res.EdgeHits++
			} else {
				dlSec *= originMissPenalty
			}
			if curCDN.Anycast && cfg.RouteFlipSrc != nil {
				p := cfg.RouteFlipPerChunk
				if p <= 0 {
					p = defaultRouteFlipPerChunk
				}
				if cfg.RouteFlipSrc.Bool(p) {
					res.RouteFlips++
					dlSec += routeFlipPenaltySec
				}
			}
		}
		res.ChunksFetched++

		// Update the throughput estimate from this download.
		sample := float64(chunkBytes) * 8 / 1000 / dlSec
		if throughput == 0 {
			throughput = sample
		} else {
			throughput = throughputEWMA*throughput + (1-throughputEWMA)*sample
		}

		if res.ChunksFetched <= startup {
			// Still joining: downloads accrue to startup delay.
			res.StartupSec += dlSec
			bufferSec += m.ChunkSec
		} else {
			// Playing while downloading: the buffer drains by the
			// download time; hitting empty stalls the user.
			drain := dlSec
			if drain > bufferSec {
				stall := drain - bufferSec
				res.RebufferSec += stall
				playedNow := bufferSec
				res.PlayedSec += playedNow
				weighted += playedNow * playedAt(m, lastRend)
				bufferSec = 0
				stalls++
				// Midstream CDN failover: persistent stalling sends
				// the rest of the view to the fallback CDN (§3 fn. 4).
				if stalls >= switchAfter && cfg.Fallback != nil && cfg.FallbackTrace != nil &&
					(curCDN == nil || curCDN.Name != cfg.Fallback.Name) {
					curCDN, curTrace = cfg.Fallback, cfg.FallbackTrace
					res.CDNsUsed = append(res.CDNsUsed, curCDN.Name)
					throughput = 0 // re-probe the new path
				}
			} else {
				bufferSec -= drain
				res.PlayedSec += drain
				weighted += drain * playedAt(m, lastRend)
			}
			bufferSec += m.ChunkSec
		}
		lastRend = rend

		if !m.Live && i == maxChunks-1 {
			// Content exhausted: drain the buffer.
			remaining := cfg.WatchSec - res.PlayedSec
			drain := bufferSec
			if drain > remaining {
				drain = remaining
			}
			if drain > 0 {
				res.PlayedSec += drain
				weighted += drain * playedAt(m, lastRend)
			}
		}
	}
	// Live sessions (and early exits) may end with media buffered;
	// the user watches what remains up to their intent.
	if remaining := cfg.WatchSec - res.PlayedSec; remaining > 0 && bufferSec > 0 && m.Live {
		drain := bufferSec
		if drain > remaining {
			drain = remaining
		}
		res.PlayedSec += drain
		weighted += drain * playedAt(m, lastRend)
	}
	if res.PlayedSec > 0 {
		res.AvgBitrateKbps = weighted / res.PlayedSec
	}
	return res, nil
}

// playedAt returns the video bitrate playing while rendition r's chunk
// downloads; before any chunk has completed the lowest rung plays.
func playedAt(m *manifest.Manifest, lastRend int) float64 {
	if lastRend < 0 {
		lastRend = 0
	}
	return float64(m.Ladder[lastRend].BitrateKbps)
}

// chunkKey builds the cache key for chunk i. Live chunks are unique per
// sequence number — a live segment produced now is a different object
// from the one produced a window ago. Byte-range chunks share a URL but
// cache per range, as HTTP caches keyed on (URL, Range) do.
func chunkKey(m *manifest.Manifest, rend, i int) string {
	if m.Live {
		return fmt.Sprintf("%s#seq=%d", m.ChunkURL(rend, i%m.ChunkCount()), i)
	}
	if off, length, ok := m.ChunkRange(rend, i); ok {
		return fmt.Sprintf("%s#range=%d-%d", m.ChunkURL(rend, i), off, off+length-1)
	}
	return m.ChunkURL(rend, i)
}
