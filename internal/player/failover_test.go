package player

import (
	"testing"

	"vmp/internal/cdnsim"
	"vmp/internal/dist"
	"vmp/internal/netmodel"
)

func TestMidstreamCDNSwitch(t *testing.T) {
	m := testManifest(t, false)
	primary := cdnsim.NewCDN("A", false, true, 8<<30)
	fallback := cdnsim.NewCDN("B", false, true, 8<<30)
	// A badly degraded primary path and a healthy fallback.
	badPath := netmodel.Profile{MeanKbps: 250, Sigma: 0.4, Rho: 0.85, RTTms: 80}
	goodPath := netmodel.Profile{MeanKbps: 15000, Sigma: 0.2, Rho: 0.8, RTTms: 20}

	res, err := Play(Config{
		Manifest:      m,
		ABR:           Fixed{Rendition: 3}, // forces stalls on the bad path
		Trace:         badPath.NewTrace(dist.NewSource(1)),
		CDN:           primary,
		ISP:           "ISP-X",
		WatchSec:      600,
		Fallback:      fallback,
		FallbackTrace: goodPath.NewTrace(dist.NewSource(2)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CDNsUsed) != 2 || res.CDNsUsed[0] != "A" || res.CDNsUsed[1] != "B" {
		t.Fatalf("CDNsUsed = %v, want [A B]", res.CDNsUsed)
	}
	if res.RebufferSec <= 0 {
		t.Fatal("switch should have been triggered by stalls")
	}
	// After failing over, the session must complete healthily.
	if res.PlayedSec < 550 {
		t.Fatalf("played only %v after failover", res.PlayedSec)
	}
}

func TestNoSwitchWhenHealthy(t *testing.T) {
	m := testManifest(t, false)
	primary := cdnsim.NewCDN("A", false, true, 8<<30)
	fallback := cdnsim.NewCDN("B", false, true, 8<<30)
	good := netmodel.Profile{MeanKbps: 15000, Sigma: 0.2, Rho: 0.8, RTTms: 20}
	res, err := Play(Config{
		Manifest:      m,
		ABR:           BufferBased{},
		Trace:         good.NewTrace(dist.NewSource(3)),
		CDN:           primary,
		ISP:           "ISP-X",
		WatchSec:      400,
		Fallback:      fallback,
		FallbackTrace: good.NewTrace(dist.NewSource(4)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CDNsUsed) != 1 || res.CDNsUsed[0] != "A" {
		t.Fatalf("healthy session switched CDNs: %v", res.CDNsUsed)
	}
}

func TestNoSwitchWithoutFallback(t *testing.T) {
	m := testManifest(t, false)
	primary := cdnsim.NewCDN("A", false, true, 8<<30)
	bad := netmodel.Profile{MeanKbps: 250, Sigma: 0.4, Rho: 0.85, RTTms: 80}
	res, err := Play(Config{
		Manifest: m,
		ABR:      Fixed{Rendition: 3},
		Trace:    bad.NewTrace(dist.NewSource(5)),
		CDN:      primary,
		ISP:      "ISP-X",
		WatchSec: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CDNsUsed) != 1 {
		t.Fatalf("session without fallback used %v", res.CDNsUsed)
	}
}

func TestSwitchThresholdConfigurable(t *testing.T) {
	m := testManifest(t, false)
	primary := cdnsim.NewCDN("A", false, true, 8<<30)
	fallback := cdnsim.NewCDN("B", false, true, 8<<30)
	bad := netmodel.Profile{MeanKbps: 250, Sigma: 0.4, Rho: 0.85, RTTms: 80}
	good := netmodel.Profile{MeanKbps: 15000, Sigma: 0.2, Rho: 0.8, RTTms: 20}
	// With a very high threshold the session never switches.
	res, err := Play(Config{
		Manifest:          m,
		ABR:               Fixed{Rendition: 3},
		Trace:             bad.NewTrace(dist.NewSource(6)),
		CDN:               primary,
		ISP:               "ISP-X",
		WatchSec:          200,
		Fallback:          fallback,
		FallbackTrace:     good.NewTrace(dist.NewSource(7)),
		SwitchAfterStalls: 10_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CDNsUsed) != 1 {
		t.Fatalf("high threshold still switched: %v", res.CDNsUsed)
	}
}
