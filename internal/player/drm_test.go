package player

import (
	"testing"
	"time"

	"vmp/internal/device"
	"vmp/internal/dist"
	"vmp/internal/drm"
)

// TestProtectedSessionStartup drives the DRM → player integration: a
// protected session acquires a license from the key server and pays
// the exchange latency at startup.
func TestProtectedSessionStartup(t *testing.T) {
	m := testManifest(t, false)
	ks, err := drm.NewKeyServer(dist.NewSource(1), 0, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	dev, _ := device.ByName("AndroidPhone")
	lic, latency, err := ks.Issue(drm.Request{
		ContentID: m.VideoID,
		Device:    dev,
		System:    drm.Widevine,
		Now:       time.Date(2018, 3, 1, 0, 0, 0, 0, time.UTC),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !lic.Valid(time.Date(2018, 3, 1, 0, 30, 0, 0, time.UTC)) {
		t.Fatal("license invalid immediately after issue")
	}

	clear, err := Play(Config{Manifest: m, Trace: fastTrace(41), WatchSec: 120})
	if err != nil {
		t.Fatal(err)
	}
	protected, err := Play(Config{Manifest: m, Trace: fastTrace(41), WatchSec: 120,
		LicenseSec: latency.Seconds()})
	if err != nil {
		t.Fatal(err)
	}
	delta := protected.StartupSec - clear.StartupSec
	if delta < 0.02 || delta > 0.09 {
		t.Fatalf("license added %.3fs to startup, want the 30-80ms exchange", delta)
	}
	if protected.PlayedSec != clear.PlayedSec {
		t.Fatal("license exchange should not change playback itself")
	}
}
