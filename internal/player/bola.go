package player

import (
	"math"

	"vmp/internal/manifest"
)

// BOLA is the Lyapunov-optimization ABR of Spiteri, Urgaonkar and
// Sitaraman ("BOLA: Near-Optimal Bitrate Adaptation for Online
// Videos", INFOCOM 2016), one of the control-plane innovations the
// paper cites publishers adopting (§1, §2). This is BOLA-BASIC: at
// each step it picks the rendition m maximizing
//
//	(V·(υ_m + γp) − Q) / S_m
//
// where υ_m = ln(S_m/S_min) is the utility of rendition m, S_m its
// chunk size, Q the buffer level in chunk units, p the chunk duration,
// and V, γp are derived from the configured buffer target so that the
// maximum buffer maps onto the top rendition.
type BOLA struct {
	// BufferTargetSec is the buffer level at which BOLA is willing to
	// stream the top rendition; zero defaults to 25s.
	BufferTargetSec float64
	// MinBufferSec is the level below which the lowest rendition is
	// forced; zero defaults to 3s.
	MinBufferSec float64
}

// Name implements ABR.
func (BOLA) Name() string { return "bola" }

// Choose implements ABR.
func (b BOLA) Choose(ladder manifest.Ladder, s State) int {
	if len(ladder) == 1 {
		return 0
	}
	target := b.BufferTargetSec
	if target <= 0 {
		target = 25
	}
	minBuf := b.MinBufferSec
	if minBuf <= 0 {
		minBuf = 3
	}
	if target <= minBuf {
		target = minBuf + 10
	}
	chunkSec := s.ChunkSec
	if chunkSec <= 0 {
		chunkSec = 4
	}

	// Sizes and utilities; sizes in arbitrary units proportional to
	// bitrate (chunk duration cancels in the objective's ordering).
	minKbps := float64(ladder.Min())
	utilTop := math.Log(float64(ladder.Max()) / minKbps)

	// Derive V and γp from the buffer bounds (BOLA §IV): the buffer
	// level at which rendition m's score crosses zero is V·(υ_m + γp);
	// pinning that level to minBuf for the bottom rung (υ = 0) and to
	// the target for the top rung gives:
	qLow := minBuf / chunkSec
	qHigh := target / chunkSec
	v := (qHigh - qLow) / utilTop
	gp := qLow / v

	q := s.BufferSec / chunkSec
	best, bestScore := 0, math.Inf(-1)
	for m, r := range ladder {
		size := float64(r.BitrateKbps)
		util := math.Log(size / minKbps)
		score := (v*(util+gp) - q) / size * minKbps // normalize by S_min for stability
		if score > bestScore {
			best, bestScore = m, score
		}
	}
	// Safety interlock: never pick above the lowest rung on a nearly
	// empty buffer.
	if s.BufferSec <= minBuf {
		return 0
	}
	return best
}
