// Package player implements chunked adaptive streaming playback: the
// client half of the video data and control planes (§2). A session
// fetches a manifest, runs a bitrate-adaptation loop over simulated
// network paths and CDN edges, and measures what the paper's telemetry
// measures — viewing time, average bitrate, and rebuffering — so that
// the syndication performance comparisons (Figs 15 and 16) emerge from
// actual playback rather than assumed numbers.
package player

import (
	"fmt"

	"vmp/internal/manifest"
)

// State is the control-plane input to a bitrate decision.
type State struct {
	BufferSec      float64 // seconds of media buffered ahead of playhead
	ThroughputKbps float64 // smoothed recent download throughput; 0 before first chunk
	ChunkSec       float64 // chunk duration of the stream
}

// ABR is a bitrate-adaptation algorithm: given the ladder and the
// current state, it returns the rendition index to fetch next. §2 notes
// SDKs ship adaptation logic; the paper cites buffer-based and
// rate-based designs (BBA, FESTIVE, MPC, Pensieve).
type ABR interface {
	Name() string
	Choose(ladder manifest.Ladder, s State) int
}

// RateBased selects the highest bitrate sustainable at a safety factor
// of the measured throughput — the classic throughput-rule ABR.
type RateBased struct {
	// Safety discounts measured throughput; 0 defaults to 0.8.
	Safety float64
}

// Name implements ABR.
func (RateBased) Name() string { return "rate" }

// Choose implements ABR.
func (r RateBased) Choose(ladder manifest.Ladder, s State) int {
	safety := r.Safety
	if safety <= 0 || safety > 1 {
		safety = 0.8
	}
	if s.ThroughputKbps <= 0 {
		return 0 // start conservative
	}
	budget := s.ThroughputKbps * safety
	best := 0
	for i, rend := range ladder {
		if float64(rend.BitrateKbps) <= budget {
			best = i
		}
	}
	return best
}

// BufferBased implements a BBA-style map from buffer occupancy to
// bitrate (Huang et al., SIGCOMM'14): below Reservoir play the lowest
// rung, above Cushion the highest, and interpolate linearly in between.
type BufferBased struct {
	// ReservoirSec and CushionSec bound the linear region. Zero values
	// default to 5s and 30s.
	ReservoirSec float64
	CushionSec   float64
}

// Name implements ABR.
func (BufferBased) Name() string { return "buffer" }

// Choose implements ABR.
func (b BufferBased) Choose(ladder manifest.Ladder, s State) int {
	reservoir, cushion := b.ReservoirSec, b.CushionSec
	if reservoir <= 0 {
		reservoir = 5
	}
	if cushion <= reservoir {
		cushion = reservoir + 25
	}
	switch {
	case s.BufferSec <= reservoir:
		return 0
	case s.BufferSec >= cushion:
		return len(ladder) - 1
	default:
		frac := (s.BufferSec - reservoir) / (cushion - reservoir)
		idx := int(frac * float64(len(ladder)-1))
		if idx >= len(ladder) {
			idx = len(ladder) - 1
		}
		return idx
	}
}

// Fixed always plays one rendition — the degenerate policy used by
// legacy players and as an ablation baseline.
type Fixed struct {
	Rendition int
}

// Name implements ABR.
func (Fixed) Name() string { return "fixed" }

// Choose implements ABR.
func (f Fixed) Choose(ladder manifest.Ladder, s State) int {
	if f.Rendition < 0 {
		return 0
	}
	if f.Rendition >= len(ladder) {
		return len(ladder) - 1
	}
	return f.Rendition
}

// ByName returns the ABR algorithm with the given name, defaulting all
// tuning parameters. Recognized names: "rate", "buffer", "bola",
// "fixed".
func ByName(name string) (ABR, error) {
	switch name {
	case "rate":
		return RateBased{}, nil
	case "buffer":
		return BufferBased{}, nil
	case "bola":
		return BOLA{}, nil
	case "fixed":
		return Fixed{}, nil
	default:
		return nil, fmt.Errorf("player: unknown ABR %q", name)
	}
}
