package player

import (
	"testing"

	"vmp/internal/cdnsim"
	"vmp/internal/dist"
	"vmp/internal/manifest"
	"vmp/internal/netmodel"
	"vmp/internal/packaging"
)

func testManifest(t *testing.T, live bool) *manifest.Manifest {
	t.Helper()
	spec := &manifest.Spec{
		VideoID:     "v1",
		DurationSec: 1200,
		ChunkSec:    4,
		AudioKbps:   96,
		Ladder:      packaging.GuidelineLadder(6000, 1.8),
		Live:        live,
	}
	text, err := manifest.Generate(manifest.DASH, spec, "http://cdn-a/pub")
	if err != nil {
		t.Fatal(err)
	}
	m, err := manifest.Parse("http://cdn-a/pub/v1.mpd", text)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func fastTrace(seed uint64) *netmodel.Trace {
	return netmodel.Profile{MeanKbps: 20000, Sigma: 0.2, Rho: 0.8, RTTms: 15}.NewTrace(dist.NewSource(seed))
}

func slowTrace(seed uint64) *netmodel.Trace {
	return netmodel.Profile{MeanKbps: 700, Sigma: 0.6, Rho: 0.8, RTTms: 60}.NewTrace(dist.NewSource(seed))
}

func TestPlayValidation(t *testing.T) {
	m := testManifest(t, false)
	tr := fastTrace(1)
	cases := []Config{
		{},
		{Manifest: m},
		{Manifest: m, Trace: tr},
		{Manifest: m, Trace: tr, WatchSec: -1},
		{Manifest: &manifest.Manifest{}, Trace: tr, WatchSec: 10},
	}
	for i, cfg := range cases {
		if _, err := Play(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestPlayFastPathHighBitrate(t *testing.T) {
	m := testManifest(t, false)
	res, err := Play(Config{Manifest: m, ABR: BufferBased{}, Trace: fastTrace(2), WatchSec: 600})
	if err != nil {
		t.Fatal(err)
	}
	if res.PlayedSec < 550 || res.PlayedSec > 605 {
		t.Fatalf("PlayedSec = %v, want ~600", res.PlayedSec)
	}
	if res.RebufferRatio() > 0.01 {
		t.Fatalf("fast path rebuffered %.3f", res.RebufferRatio())
	}
	// A 20 Mbps path should sustain an average well above the floor.
	if res.AvgBitrateKbps < 1000 {
		t.Fatalf("AvgBitrate = %v on a 20 Mbps path", res.AvgBitrateKbps)
	}
	if res.ChunksFetched == 0 || res.StartupSec <= 0 {
		t.Fatalf("degenerate result %+v", res)
	}
}

func TestPlaySlowPathLowBitrateAndRebuffering(t *testing.T) {
	m := testManifest(t, false)
	fast, err := Play(Config{Manifest: m, ABR: RateBased{}, Trace: fastTrace(3), WatchSec: 600})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Play(Config{Manifest: m, ABR: RateBased{}, Trace: slowTrace(3), WatchSec: 600})
	if err != nil {
		t.Fatal(err)
	}
	if slow.AvgBitrateKbps >= fast.AvgBitrateKbps {
		t.Fatalf("slow path avg bitrate %v >= fast %v", slow.AvgBitrateKbps, fast.AvgBitrateKbps)
	}
	if slow.RebufferSec < 0 {
		t.Fatal("negative rebuffering")
	}
}

func TestPlayVoDEndsAtContent(t *testing.T) {
	m := testManifest(t, false) // 1200s of content
	res, err := Play(Config{Manifest: m, Trace: fastTrace(4), WatchSec: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if res.PlayedSec > 1201 {
		t.Fatalf("played %v seconds of a 1200s VoD", res.PlayedSec)
	}
	if res.PlayedSec < 1100 {
		t.Fatalf("played only %v of a 1200s VoD on a fast path", res.PlayedSec)
	}
}

func TestPlayLiveRunsToWatchTime(t *testing.T) {
	m := testManifest(t, true)
	res, err := Play(Config{Manifest: m, Trace: fastTrace(5), WatchSec: 300})
	if err != nil {
		t.Fatal(err)
	}
	if res.PlayedSec < 280 || res.PlayedSec > 305 {
		t.Fatalf("live PlayedSec = %v, want ~300", res.PlayedSec)
	}
}

func TestPlayDeterminism(t *testing.T) {
	m := testManifest(t, false)
	r1, err := Play(Config{Manifest: m, Trace: fastTrace(9), WatchSec: 400})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Play(Config{Manifest: m, Trace: fastTrace(9), WatchSec: 400})
	if err != nil {
		t.Fatal(err)
	}
	if r1.PlayedSec != r2.PlayedSec || r1.AvgBitrateKbps != r2.AvgBitrateKbps ||
		r1.RebufferSec != r2.RebufferSec || r1.ChunksFetched != r2.ChunksFetched {
		t.Fatalf("same seed diverged: %+v vs %+v", r1, r2)
	}
}

func TestPlayEdgeCacheHits(t *testing.T) {
	m := testManifest(t, false)
	cdn := cdnsim.NewCDN("A", false, true, 8<<30)
	cfg := Config{Manifest: m, ABR: Fixed{Rendition: 2}, Trace: fastTrace(11),
		CDN: cdn, ISP: "ISP-X", WatchSec: 200}
	first, err := Play(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if first.EdgeHits != 0 {
		t.Fatalf("first viewer got %d edge hits on a cold cache", first.EdgeHits)
	}
	cfg.Trace = fastTrace(12)
	second, err := Play(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if second.EdgeHits == 0 {
		t.Fatal("second viewer of same content should hit the edge")
	}
}

func TestPlayColdCacheSlowerThanWarm(t *testing.T) {
	m := testManifest(t, false)
	cdn := cdnsim.NewCDN("A", false, true, 8<<30)
	cfg := Config{Manifest: m, ABR: Fixed{Rendition: 3}, Trace: slowTrace(21),
		CDN: cdn, ISP: "ISP-X", WatchSec: 300}
	cold, err := Play(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Trace = slowTrace(21) // identical network randomness
	warm, err := Play(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if warm.RebufferSec > cold.RebufferSec {
		t.Fatalf("warm cache rebuffered more (%v) than cold (%v)", warm.RebufferSec, cold.RebufferSec)
	}
}

func TestRebufferRatio(t *testing.T) {
	r := Result{PlayedSec: 90, RebufferSec: 10}
	if got := r.RebufferRatio(); got != 0.1 {
		t.Fatalf("RebufferRatio = %v, want 0.1", got)
	}
	if (Result{}).RebufferRatio() != 0 {
		t.Fatal("empty result ratio should be 0")
	}
}

func TestRateBasedABR(t *testing.T) {
	ladder := packaging.GuidelineLadder(6000, 1.8)
	r := RateBased{}
	if got := r.Choose(ladder, State{ThroughputKbps: 0}); got != 0 {
		t.Errorf("no throughput estimate should start at rung 0, got %d", got)
	}
	hi := r.Choose(ladder, State{ThroughputKbps: 50000})
	if hi != len(ladder)-1 {
		t.Errorf("50 Mbps should pick the top rung, got %d", hi)
	}
	// 1000 Kbps * 0.8 = 800 budget: must pick the largest rung <= 800.
	mid := r.Choose(ladder, State{ThroughputKbps: 1000})
	if float64(ladder[mid].BitrateKbps) > 800 {
		t.Errorf("rate ABR exceeded budget: rung %d = %d Kbps", mid, ladder[mid].BitrateKbps)
	}
	// Custom safety.
	strict := RateBased{Safety: 0.5}
	if strict.Choose(ladder, State{ThroughputKbps: 1000}) > mid {
		t.Error("stricter safety should never pick a higher rung")
	}
}

func TestBufferBasedABR(t *testing.T) {
	ladder := packaging.GuidelineLadder(6000, 1.8)
	b := BufferBased{}
	if got := b.Choose(ladder, State{BufferSec: 0}); got != 0 {
		t.Errorf("empty buffer should pick rung 0, got %d", got)
	}
	if got := b.Choose(ladder, State{BufferSec: 100}); got != len(ladder)-1 {
		t.Errorf("full buffer should pick top rung, got %d", got)
	}
	lo := b.Choose(ladder, State{BufferSec: 10})
	hi := b.Choose(ladder, State{BufferSec: 25})
	if lo > hi {
		t.Errorf("buffer map not monotone: %d @10s > %d @25s", lo, hi)
	}
}

func TestFixedABRClamps(t *testing.T) {
	ladder := packaging.GuidelineLadder(6000, 1.8)
	if got := (Fixed{Rendition: -3}).Choose(ladder, State{}); got != 0 {
		t.Errorf("negative rendition should clamp to 0, got %d", got)
	}
	if got := (Fixed{Rendition: 99}).Choose(ladder, State{}); got != len(ladder)-1 {
		t.Errorf("overflow rendition should clamp to top, got %d", got)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"rate", "buffer", "fixed"} {
		abr, err := ByName(name)
		if err != nil || abr.Name() != name {
			t.Errorf("ByName(%q) = %v, %v", name, abr, err)
		}
	}
	if _, err := ByName("pensieve"); err == nil {
		t.Error("unknown ABR accepted")
	}
}

func TestLadderDifferenceDrivesQoE(t *testing.T) {
	// The §6 mechanism: the same client on the same path gets better
	// average bitrate from a publisher with a taller ladder.
	rich := &manifest.Spec{VideoID: "v", DurationSec: 600, ChunkSec: 4, AudioKbps: 96,
		Ladder: packaging.GuidelineLadder(8000, 1.7)}
	poor := &manifest.Spec{VideoID: "v", DurationSec: 600, ChunkSec: 4, AudioKbps: 96,
		Ladder: packaging.GuidelineLadder(1100, 1.7)}
	parse := func(s *manifest.Spec) *manifest.Manifest {
		text, err := manifest.Generate(manifest.HLS, s, "http://cdn/p")
		if err != nil {
			t.Fatal(err)
		}
		m, err := manifest.Parse("http://cdn/p/v.m3u8", text)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	prof := netmodel.Profile{MeanKbps: 12000, Sigma: 0.3, Rho: 0.8, RTTms: 20}
	richRes, err := Play(Config{Manifest: parse(rich), Trace: prof.NewTrace(dist.NewSource(31)), WatchSec: 400})
	if err != nil {
		t.Fatal(err)
	}
	poorRes, err := Play(Config{Manifest: parse(poor), Trace: prof.NewTrace(dist.NewSource(31)), WatchSec: 400})
	if err != nil {
		t.Fatal(err)
	}
	if richRes.AvgBitrateKbps < 2*poorRes.AvgBitrateKbps {
		t.Fatalf("tall ladder avg %v not >> short ladder avg %v",
			richRes.AvgBitrateKbps, poorRes.AvgBitrateKbps)
	}
}
