package player

import (
	"testing"

	"vmp/internal/dist"
	"vmp/internal/netmodel"
	"vmp/internal/packaging"
)

// oboeTable is built once per test binary: the offline stage is the
// expensive part.
var oboeTableCache *OboeTable

func oboeTable(t *testing.T) *OboeTable {
	t.Helper()
	if oboeTableCache == nil {
		var err error
		oboeTableCache, err = BuildOboeTable(packaging.GuidelineLadder(8000, 1.8), 4, dist.NewSource(2024))
		if err != nil {
			t.Fatal(err)
		}
	}
	return oboeTableCache
}

func TestBuildOboeTableShape(t *testing.T) {
	table := oboeTable(t)
	states := table.States()
	if len(states) != len(oboeGrid) {
		t.Fatalf("table has %d states, want %d", len(states), len(oboeGrid))
	}
	// The offline stage must actually discriminate: not every state
	// should land on the same configuration.
	distinct := map[BufferBased]bool{}
	for i := range states {
		distinct[table.Config(i)] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("tuning found only %d distinct configs — no discrimination", len(distinct))
	}
}

func TestOboeLookupNearest(t *testing.T) {
	table := oboeTable(t)
	// Exact grid states return their own configs.
	for i, s := range table.States() {
		if got := table.Lookup(s); got != table.Config(i) {
			t.Fatalf("Lookup(%+v) = %+v, want grid config %+v", s, got, table.Config(i))
		}
	}
	// Off-grid states return something from the table.
	got := table.Lookup(NetState{MeanKbps: 4200, CV: 0.4})
	found := false
	for i := range table.States() {
		if table.Config(i) == got {
			found = true
		}
	}
	if !found {
		t.Fatal("Lookup fabricated a config not in the table")
	}
	// Degenerate inputs.
	if (&OboeTable{}).Lookup(NetState{}) != (BufferBased{}) {
		t.Fatal("empty table should return the zero config")
	}
	table.Lookup(NetState{MeanKbps: -5, CV: 0}) // must not panic on log(≤0)
}

func TestAutoTunedLocksAfterProbe(t *testing.T) {
	table := oboeTable(t)
	abr := &AutoTuned{Table: table, ProbeChunks: 3}
	ladder := packaging.GuidelineLadder(8000, 1.8)
	if _, ok := abr.TunedConfig(); ok {
		t.Fatal("tuned before any chunk")
	}
	for i := 0; i < 4; i++ {
		idx := abr.Choose(ladder, State{BufferSec: 10, ThroughputKbps: 5000, ChunkSec: 4})
		if idx < 0 || idx >= len(ladder) {
			t.Fatalf("invalid rendition %d", idx)
		}
	}
	cfg, ok := abr.TunedConfig()
	if !ok {
		t.Fatal("not tuned after probe window")
	}
	if cfg.CushionSec <= 0 {
		t.Fatalf("degenerate tuned config %+v", cfg)
	}
}

func TestAutoTunedPlaysEndToEnd(t *testing.T) {
	table := oboeTable(t)
	m := testManifest(t, false)
	res, err := Play(Config{
		Manifest: m,
		ABR:      &AutoTuned{Table: table},
		Trace:    fastTrace(91),
		WatchSec: 400,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PlayedSec < 350 || res.AvgBitrateKbps < 1000 {
		t.Fatalf("auto-tuned session degenerate: %+v", res)
	}
}

// TestAutoTunedCompetitive: across heterogeneous paths, the tuned ABR
// must not lose badly to the one-size default on the combined
// bitrate/rebuffering objective — the Oboe premise.
func TestAutoTunedCompetitive(t *testing.T) {
	table := oboeTable(t)
	m := testManifest(t, false)
	profiles := []netmodel.Profile{
		{MeanKbps: 1500, Sigma: 0.65, Rho: 0.85, RTTms: 50},
		{MeanKbps: 7000, Sigma: 0.25, Rho: 0.85, RTTms: 25},
		{MeanKbps: 16000, Sigma: 0.65, Rho: 0.85, RTTms: 15},
	}
	score := func(abrFor func() ABR, seedBase uint64) float64 {
		total := 0.0
		for pi, prof := range profiles {
			for k := 0; k < 6; k++ {
				res, err := Play(Config{
					Manifest: m,
					ABR:      abrFor(),
					Trace:    prof.NewTrace(dist.NewSource(seedBase + uint64(pi*100+k))),
					WatchSec: 400,
				})
				if err != nil {
					t.Fatal(err)
				}
				total += res.AvgBitrateKbps - rebufPenaltyKbps*res.RebufferRatio()
			}
		}
		return total
	}
	tuned := score(func() ABR { return &AutoTuned{Table: table} }, 7)
	fixed := score(func() ABR { return BufferBased{} }, 7)
	if tuned < 0.9*fixed {
		t.Fatalf("auto-tuned score %.0f badly below default %.0f", tuned, fixed)
	}
}

func TestAutoTunedNilTable(t *testing.T) {
	abr := &AutoTuned{}
	ladder := packaging.GuidelineLadder(4000, 1.8)
	for i := 0; i < 20; i++ {
		if idx := abr.Choose(ladder, State{BufferSec: 20, ThroughputKbps: 3000, ChunkSec: 4}); idx < 0 || idx >= len(ladder) {
			t.Fatalf("invalid rendition %d", idx)
		}
	}
	if cfg, ok := abr.TunedConfig(); !ok || cfg != (BufferBased{}) {
		t.Fatalf("nil table should fall back to the default config, got %+v ok=%v", cfg, ok)
	}
}
