package player

import (
	"testing"
	"testing/quick"

	"vmp/internal/cdnsim"
	"vmp/internal/dist"
	"vmp/internal/manifest"
	"vmp/internal/netmodel"
	"vmp/internal/packaging"
)

func TestBOLAMonotoneInBuffer(t *testing.T) {
	ladder := packaging.GuidelineLadder(8000, 1.8)
	b := BOLA{}
	prev := -1
	for buf := 0.0; buf <= 40; buf += 0.5 {
		got := b.Choose(ladder, State{BufferSec: buf, ChunkSec: 4})
		if got < prev {
			t.Fatalf("BOLA not monotone: rendition %d at %.1fs after %d", got, buf, prev)
		}
		prev = got
	}
}

func TestBOLABoundaries(t *testing.T) {
	ladder := packaging.GuidelineLadder(8000, 1.8)
	b := BOLA{BufferTargetSec: 25, MinBufferSec: 3}
	if got := b.Choose(ladder, State{BufferSec: 0, ChunkSec: 4}); got != 0 {
		t.Errorf("empty buffer picked rung %d", got)
	}
	if got := b.Choose(ladder, State{BufferSec: 2.5, ChunkSec: 4}); got != 0 {
		t.Errorf("below MinBuffer picked rung %d", got)
	}
	if got := b.Choose(ladder, State{BufferSec: 60, ChunkSec: 4}); got != len(ladder)-1 {
		t.Errorf("saturated buffer picked rung %d, want top", got)
	}
}

func TestBOLASingleRendition(t *testing.T) {
	ladder := manifest.Ladder{{BitrateKbps: 800}}
	if got := (BOLA{}).Choose(ladder, State{BufferSec: 10, ChunkSec: 4}); got != 0 {
		t.Fatalf("single-rung ladder picked %d", got)
	}
}

func TestBOLADegenerateParams(t *testing.T) {
	ladder := packaging.GuidelineLadder(4000, 1.8)
	// Target below minimum must self-correct rather than divide by zero.
	b := BOLA{BufferTargetSec: 1, MinBufferSec: 5}
	if got := b.Choose(ladder, State{BufferSec: 50, ChunkSec: 4}); got != len(ladder)-1 {
		t.Fatalf("degenerate params broke saturation: %d", got)
	}
	// Zero chunk duration defaults sanely.
	if got := b.Choose(ladder, State{BufferSec: 50}); got < 0 || got >= len(ladder) {
		t.Fatalf("zero ChunkSec produced invalid rung %d", got)
	}
}

// Property: BOLA always returns a valid index.
func TestBOLAValidIndexProperty(t *testing.T) {
	f := func(buf uint16, target uint8, rungs uint8) bool {
		n := int(rungs%12) + 1
		var ladder manifest.Ladder
		for i := 0; i < n; i++ {
			ladder = append(ladder, manifest.Rendition{BitrateKbps: 200 * (i + 1)})
		}
		b := BOLA{BufferTargetSec: float64(target % 60), MinBufferSec: 2}
		got := b.Choose(ladder, State{BufferSec: float64(buf % 120), ChunkSec: 4})
		return got >= 0 && got < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestBOLAPlaysEndToEnd(t *testing.T) {
	m := testManifest(t, false)
	res, err := Play(Config{Manifest: m, ABR: BOLA{}, Trace: fastTrace(77), WatchSec: 400})
	if err != nil {
		t.Fatal(err)
	}
	if res.PlayedSec < 350 {
		t.Fatalf("BOLA session played only %v", res.PlayedSec)
	}
	if res.AvgBitrateKbps < 1000 {
		t.Fatalf("BOLA on a fast path averaged %v Kbps", res.AvgBitrateKbps)
	}
}

func TestByNameBOLA(t *testing.T) {
	abr, err := ByName("bola")
	if err != nil || abr.Name() != "bola" {
		t.Fatalf("ByName(bola) = %v, %v", abr, err)
	}
}

func TestAnycastRouteFlips(t *testing.T) {
	m := testManifest(t, false)
	anycast := cdnsim.NewCDN("B", true, true, 8<<30)
	unicast := cdnsim.NewCDN("A", false, true, 8<<30)

	play := func(cdn *cdnsim.CDN, flipSrc *dist.Source, prob float64) Result {
		res, err := Play(Config{
			Manifest:          m,
			ABR:               Fixed{Rendition: 2},
			Trace:             fastTrace(5),
			CDN:               cdn,
			ISP:               "ISP-X",
			WatchSec:          600,
			RouteFlipSrc:      flipSrc,
			RouteFlipPerChunk: prob,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	// High flip probability on an anycast CDN: flips must occur and
	// cost time.
	flipped := play(anycast, dist.NewSource(3), 0.5)
	if flipped.RouteFlips == 0 {
		t.Fatal("no route flips at 50% per-chunk probability")
	}
	// Unicast CDN: the model must not engage.
	clean := play(unicast, dist.NewSource(3), 0.5)
	if clean.RouteFlips != 0 {
		t.Fatal("route flips on a unicast CDN")
	}
	// Nil source disables the model even on anycast.
	off := play(anycast, nil, 0.5)
	if off.RouteFlips != 0 {
		t.Fatal("route flips with a nil source")
	}
}

// TestAnycastNotBlocking reproduces the §4.3 observation: at realistic
// flip rates, anycast instability is not a blocking factor for video —
// rebuffering stays near the unicast level.
func TestAnycastNotBlocking(t *testing.T) {
	m := testManifest(t, false)
	anycast := cdnsim.NewCDN("B", true, true, 8<<30)
	prof := netmodel.Profile{MeanKbps: 9000, Sigma: 0.4, Rho: 0.85, RTTms: 25}
	var withFlips, without float64
	const sessions = 40
	for i := 0; i < sessions; i++ {
		res, err := Play(Config{
			Manifest: m, ABR: BufferBased{},
			Trace: prof.NewTrace(dist.NewSource(uint64(i + 1))),
			CDN:   anycast, ISP: "ISP-X", WatchSec: 900,
			RouteFlipSrc: dist.NewSource(uint64(1000 + i)),
		})
		if err != nil {
			t.Fatal(err)
		}
		withFlips += res.RebufferRatio()
		res2, err := Play(Config{
			Manifest: m, ABR: BufferBased{},
			Trace: prof.NewTrace(dist.NewSource(uint64(i + 1))),
			CDN:   anycast, ISP: "ISP-X", WatchSec: 900,
		})
		if err != nil {
			t.Fatal(err)
		}
		without += res2.RebufferRatio()
	}
	withFlips /= sessions
	without /= sessions
	if withFlips > without+0.01 {
		t.Fatalf("anycast flips raised mean rebuffering from %.4f to %.4f — should be negligible",
			without, withFlips)
	}
}

func TestByteRangePlayback(t *testing.T) {
	spec := &manifest.Spec{
		VideoID:     "br1",
		DurationSec: 800,
		ChunkSec:    4,
		AudioKbps:   96,
		Ladder:      packaging.GuidelineLadder(4000, 1.8),
		ByteRange:   true,
	}
	text, err := manifest.Generate(manifest.HLS, spec, "http://cdn-a/pub")
	if err != nil {
		t.Fatal(err)
	}
	m, err := manifest.Parse("http://cdn-a/pub/br1.m3u8", text)
	if err != nil {
		t.Fatal(err)
	}
	cdn := cdnsim.NewCDN("A", false, true, 8<<30)
	cfg := Config{Manifest: m, ABR: Fixed{Rendition: 1}, Trace: fastTrace(8),
		CDN: cdn, ISP: "ISP-X", WatchSec: 200}
	first, err := Play(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if first.PlayedSec < 150 {
		t.Fatalf("byte-range session played %v", first.PlayedSec)
	}
	if first.EdgeHits != 0 {
		t.Fatal("cold cache should not hit")
	}
	// Replay must hit the per-range cache entries.
	cfg.Trace = fastTrace(9)
	second, err := Play(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if second.EdgeHits == 0 {
		t.Fatal("byte-range chunks did not cache per range")
	}
}
