package live

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"vmp/internal/telemetry"
	"vmp/internal/wire"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server, *Engine) {
	t.Helper()
	e := newTestEngine(t, cfg)
	s := NewServer(e)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return s, srv, e
}

func postViews(t *testing.T, client *http.Client, url string, recs []telemetry.ViewRecord) *http.Response {
	t.Helper()
	var buf bytes.Buffer
	if err := telemetry.EncodeJSONL(&buf, recs); err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url+"/v1/views", "application/x-ndjson", &buf)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestServerIngestAndQuery(t *testing.T) {
	_, srv, e := newTestServer(t, Config{Shards: 4})
	recs := genRecords(1500)
	resp := postViews(t, srv.Client(), srv.URL, recs)
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest status = %s: %s", resp.Status, body)
	}
	if !strings.Contains(string(body), `"accepted":1500`) {
		t.Fatalf("ingest body = %s", body)
	}

	// Cut an epoch over the wire and query it.
	snap, err := srv.Client().Post(srv.URL+"/v1/snapshot", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	sbody, _ := io.ReadAll(snap.Body)
	snap.Body.Close()
	if !strings.Contains(string(sbody), `"records":1500`) {
		t.Fatalf("snapshot body = %s", sbody)
	}

	q, err := srv.Client().Get(srv.URL + "/v1/query/share?dim=protocol")
	if err != nil {
		t.Fatal(err)
	}
	qbody, _ := io.ReadAll(q.Body)
	q.Body.Close()
	if q.StatusCode != http.StatusOK {
		t.Fatalf("share status = %s", q.Status)
	}
	var want bytes.Buffer
	wantResp, err := ShareOver(e.Generation().Dataset, "protocol", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&want, wantResp); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(qbody, want.Bytes()) {
		t.Fatalf("HTTP share differs from direct query:\nhttp:   %s\ndirect: %s", qbody, want.String())
	}

	top, err := srv.Client().Get(srv.URL + "/v1/query/top-publishers?n=3")
	if err != nil {
		t.Fatal(err)
	}
	var topResp TopPublishersResponse
	err = json.NewDecoder(top.Body).Decode(&topResp)
	top.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(topResp.Top) != 3 || topResp.Records != 1500 {
		t.Fatalf("top = %+v", topResp)
	}

	win, err := srv.Client().Get(srv.URL + "/v1/query/window?start=2016-01-01&days=50")
	if err != nil {
		t.Fatal(err)
	}
	var winResp WindowResponse
	err = json.NewDecoder(win.Body).Decode(&winResp)
	win.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if winResp.SampledViews != 1500 {
		t.Fatalf("window = %+v", winResp)
	}
}

func TestServerBadRequests(t *testing.T) {
	_, srv, _ := newTestServer(t, Config{Shards: 2})
	for path, wantStatus := range map[string]int{
		"/v1/query/share?dim=bogus":                http.StatusBadRequest,
		"/v1/query/top-publishers?n=-1":            http.StatusBadRequest,
		"/v1/query/window":                         http.StatusBadRequest,
		"/v1/query/window?start=not-a-date":        http.StatusBadRequest,
		"/v1/query/window?start=2016-01-01&days=x": http.StatusBadRequest,
	} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Errorf("GET %s = %d, want %d", path, resp.StatusCode, wantStatus)
		}
	}
	// Method checks.
	resp, err := srv.Client().Get(srv.URL + "/v1/views")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/views = %d", resp.StatusCode)
	}
	resp, err = srv.Client().Get(srv.URL + "/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/snapshot = %d", resp.StatusCode)
	}
}

func TestServerOversizedLine(t *testing.T) {
	_, srv, e := newTestServer(t, Config{Shards: 2})
	var buf bytes.Buffer
	if err := telemetry.EncodeJSONL(&buf, genRecords(3)); err != nil {
		t.Fatal(err)
	}
	buf.WriteString(strings.Repeat("y", telemetry.MaxLineBytes+1) + "\n")
	resp, err := srv.Client().Post(srv.URL+"/v1/views", "application/x-ndjson", &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %s, want 400", resp.Status)
	}
	if got := e.Metrics().Counter("live_ingest_scan_errors_total").Load(); got != 1 {
		t.Fatalf("scan_errors = %d, want 1", got)
	}
	if got := e.Metrics().Counter("live_ingest_rejected_total").Load(); got != 3 {
		t.Fatalf("rejected = %d, want 3 (the cut-short batch)", got)
	}
	if g := e.Snapshot(); g.Records != 0 {
		t.Fatalf("failed batch leaked %d records into the epoch", g.Records)
	}
}

func TestServerBackpressure429(t *testing.T) {
	_, srv, e := newTestServer(t, Config{Shards: 1, QueueDepth: 1, RetryAfter: 1500 * time.Millisecond})
	sh := e.shards[0]
	sh.mu.Lock()
	released := false
	defer func() {
		if !released {
			sh.mu.Unlock()
		}
	}()

	recs := genRecords(30)
	resp := postViews(t, srv.Client(), srv.URL, recs[0:10])
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first batch = %s", resp.Status)
	}
	for i := 0; len(sh.ch) != 0; i++ {
		if i > 2000 { // ~2s of millisecond sleeps
			t.Fatal("consumer never pulled the first batch")
		}
		time.Sleep(time.Millisecond)
	}
	resp = postViews(t, srv.Client(), srv.URL, recs[10:20])
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second batch = %s", resp.Status)
	}
	resp = postViews(t, srv.Client(), srv.URL, recs[20:30])
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third batch = %s, want 429", resp.Status)
	}
	if got := resp.Header.Get("Retry-After"); got != "2" {
		t.Fatalf("Retry-After = %q, want %q (1.5s rounded up)", got, "2")
	}
	if !strings.Contains(string(body), `"backpressured":10`) || !strings.Contains(string(body), `"retry_after_ms":1500`) {
		t.Fatalf("backpressure body = %s", body)
	}
	released = true
	sh.mu.Unlock()
}

// TestServerMixedWorkloadRace drives concurrent ingest, queries,
// snapshots, and metrics scrapes through the HTTP surface — the
// workload go test -race vets for the "ingestion never blocks queries"
// contract — then closes the loop by checking no admitted record was
// lost.
func TestServerMixedWorkloadRace(t *testing.T) {
	_, srv, e := newTestServer(t, Config{Shards: 4, QueueDepth: 16})
	client := srv.Client()

	const writers, batches, per = 4, 10, 50
	var wg sync.WaitGroup
	var mu sync.Mutex
	accepted := 0
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				recs := genRecords((w*batches + b + 1) * per)[:per]
				for {
					var buf bytes.Buffer
					if err := telemetry.EncodeJSONL(&buf, recs); err != nil {
						t.Error(err)
						return
					}
					resp, err := client.Post(srv.URL+"/v1/views", "application/x-ndjson", &buf)
					if err != nil {
						t.Error(err)
						return
					}
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode == http.StatusAccepted {
						mu.Lock()
						accepted += per
						mu.Unlock()
						break
					}
					if resp.StatusCode != http.StatusTooManyRequests {
						t.Errorf("ingest status = %s", resp.Status)
						return
					}
					time.Sleep(2 * time.Millisecond)
				}
			}
		}(w)
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			paths := []string{
				"/v1/query/share?dim=cdn",
				"/v1/query/top-publishers?n=5",
				"/v1/query/window?start=2016-01-01&days=50",
				"/v1/metrics",
				"/v1/stats",
			}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := client.Get(srv.URL + paths[i%len(paths)])
				if err != nil {
					t.Error(err)
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("query status = %s", resp.Status)
					return
				}
			}
		}()
	}
	snapper := make(chan struct{})
	go func() {
		defer close(snapper)
		for i := 0; i < 20; i++ {
			e.Snapshot()
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	<-snapper
	close(stop)
	readers.Wait()

	g := e.Snapshot()
	if g.Records != accepted {
		t.Fatalf("final generation has %d records, accepted %d", g.Records, accepted)
	}
}

// postRaw posts body with explicit Content-Type / Content-Encoding
// headers through client, reusing its connection pool.
func postRaw(t *testing.T, client *http.Client, url, ct, ce string, body []byte) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/views", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	if ce != "" {
		req.Header.Set("Content-Encoding", ce)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func encodeBinary(t *testing.T, recs []telemetry.ViewRecord) []byte {
	t.Helper()
	frame, err := wire.NewEncoder().AppendFrame(nil, recs)
	if err != nil {
		t.Fatal(err)
	}
	return frame
}

func gzipBytes(t *testing.T, b []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	gw := gzip.NewWriter(&buf)
	if _, err := gw.Write(b); err != nil {
		t.Fatal(err)
	}
	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestServerUnknownContentType pins the negotiation contract: a media
// type or content coding the server does not speak is a 415, not a
// scan error, and admits nothing.
func TestServerUnknownContentType(t *testing.T) {
	_, srv, e := newTestServer(t, Config{Shards: 2})
	frame := encodeBinary(t, genRecords(5))
	for _, tc := range []struct{ name, ct, ce string }{
		{"unknown_media_type", "application/xml", ""},
		{"unknown_coding", "application/x-ndjson", "br"},
		{"binary_unknown_coding", wire.ContentTypeBinary, "deflate"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resp := postRaw(t, srv.Client(), srv.URL, tc.ct, tc.ce, frame)
			resp.Body.Close()
			if resp.StatusCode != http.StatusUnsupportedMediaType {
				t.Fatalf("status = %s, want 415", resp.Status)
			}
		})
	}
	if got := e.Metrics().Counter("live_ingest_scan_errors_total").Load(); got != 0 {
		t.Fatalf("negotiation failures counted as scan errors: %d", got)
	}
	if g := e.Snapshot(); g.Records != 0 {
		t.Fatalf("415 requests leaked %d records", g.Records)
	}
}

// TestServerTruncatedBinaryFrame pins the whole-batch-reject contract
// on the binary path: a frame cut mid-payload is a 400, bumps the
// scan-error counter, and admits none of the batch, so a client retry
// of the full body is exact.
func TestServerTruncatedBinaryFrame(t *testing.T) {
	_, srv, e := newTestServer(t, Config{Shards: 2})
	frame := encodeBinary(t, genRecords(50))
	for _, tc := range []struct {
		name string
		body []byte
		ce   string
	}{
		{"cut_payload", frame[:len(frame)-7], ""},
		{"cut_prefix", frame[:2], ""},
		{"corrupt_magic", append([]byte{frame[0], frame[1], frame[2], frame[3], 'X'}, frame[5:]...), ""},
		{"cut_gzip", gzipBytes(t, frame)[:8], "gzip"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			before := e.Metrics().Counter("live_ingest_scan_errors_total").Load()
			resp := postRaw(t, srv.Client(), srv.URL, wire.ContentTypeBinary, tc.ce, tc.body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %s, want 400", resp.Status)
			}
			if got := e.Metrics().Counter("live_ingest_scan_errors_total").Load(); got != before+1 {
				t.Fatalf("scan_errors = %d, want %d", got, before+1)
			}
		})
	}
	if g := e.Snapshot(); g.Records != 0 {
		t.Fatalf("rejected frames leaked %d records", g.Records)
	}
}

// TestServerMixedEncodingsOneConnection interleaves JSONL, binary, and
// gzip-compressed batches over one keep-alive client against a single
// server: negotiation is per-request, so every combination lands and
// the query surface answers identically to a JSONL-only twin server
// fed the same records.
func TestServerMixedEncodingsOneConnection(t *testing.T) {
	_, srv, e := newTestServer(t, Config{Shards: 4})
	_, refSrv, refEngine := newTestServer(t, Config{Shards: 4})
	client := srv.Client()

	all := genRecords(400)
	jsonl := func(recs []telemetry.ViewRecord) []byte {
		var buf bytes.Buffer
		if err := telemetry.EncodeJSONL(&buf, recs); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	type batch struct {
		ct, ce string
		body   []byte
	}
	batches := []batch{
		{"application/x-ndjson", "", jsonl(all[0:100])},
		{wire.ContentTypeBinary, "", encodeBinary(t, all[100:200])},
		{wire.ContentTypeBinary, "gzip", gzipBytes(t, encodeBinary(t, all[200:300]))},
		{"application/x-ndjson", "gzip", gzipBytes(t, jsonl(all[300:400]))},
	}
	for i, b := range batches {
		resp := postRaw(t, client, srv.URL, b.ct, b.ce, b.body)
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("batch %d (%s/%s) = %s: %s", i, b.ct, b.ce, resp.Status, body)
		}
	}
	// The reference server ingests the same records as plain JSONL.
	resp := postViews(t, refSrv.Client(), refSrv.URL, all)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("reference ingest = %s", resp.Status)
	}

	if g := e.Snapshot(); g.Records != len(all) {
		t.Fatalf("mixed-encoding server has %d records, want %d", g.Records, len(all))
	}
	refEngine.Snapshot()
	for _, path := range []string{
		"/v1/query/share?dim=protocol",
		"/v1/query/share?dim=cdn&by=views",
		"/v1/query/top-publishers?n=5",
		"/v1/query/window?start=2016-01-01&days=50",
	} {
		got := getBody(t, client, srv.URL+path)
		want := getBody(t, refSrv.Client(), refSrv.URL+path)
		if !bytes.Equal(got, want) {
			t.Fatalf("query %s differs between mixed-encoding and JSONL ingest:\nmixed: %s\njsonl: %s", path, got, want)
		}
	}
}

func getBody(t *testing.T, client *http.Client, url string) []byte {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %s", url, resp.Status)
	}
	return body
}

func TestServerHealthz(t *testing.T) {
	_, srv, _ := newTestServer(t, Config{Shards: 1})
	resp, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Fatalf("healthz = %s %s", resp.Status, body)
	}
	if testing.Verbose() {
		fmt.Println("healthz ok")
	}
}
