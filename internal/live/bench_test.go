package live

import (
	"context"
	"testing"
	"time"

	"vmp/internal/obs"
	"vmp/internal/simclock"
)

// benchIngest measures admission + micro-batched append throughput:
// one op is a 500-record batch through Ingest. The engine is recycled
// every 200 ops (outside the timer) so pending-buffer growth doesn't
// turn the bench into a memory benchmark. With traced, every batch
// runs under an enabled tracer (span per admit and consume, event per
// admission) — the delta against the untraced run is the tracing
// overhead quoted in EXPERIMENTS.md.
func benchIngest(b *testing.B, traced bool) {
	recs := genRecords(500)
	cfg := Config{Shards: 8, QueueDepth: 64, Clock: simclock.NewManual(simclock.StudyStart)}
	newEngine := func() *Engine {
		if traced {
			cfg.Trace = obs.NewTracer(cfg.Clock, 4096)
		} else {
			cfg.Trace = nil // withDefaults installs a disabled tracer
		}
		return NewEngine(cfg)
	}
	e := newEngine()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i > 0 && i%200 == 0 {
			b.StopTimer()
			e.Close()
			e = newEngine()
			b.StartTimer()
		}
		for {
			res, err := e.Ingest(recs)
			if err != nil {
				b.Fatal(err)
			}
			if res.Backpressured == 0 {
				break
			}
		}
	}
	b.StopTimer()
	e.Close()
	b.ReportMetric(float64(500*b.N)/b.Elapsed().Seconds(), "records/s")
}

// BenchmarkLiveIngest is the untraced baseline: the engine carries a
// disabled tracer, so every instrumentation site costs one atomic
// load and zero allocations.
func BenchmarkLiveIngest(b *testing.B) { benchIngest(b, false) }

// BenchmarkIngestTraced runs the same workload with tracing enabled
// (span and event rings of 4096).
func BenchmarkIngestTraced(b *testing.B) { benchIngest(b, true) }

// BenchmarkIngestSampled runs the untraced workload with the full
// self-measurement plane live, exactly as vmpd wires it: a series
// ring, a sampler goroutine on its production 1s cadence publishing
// runtime stats and the engine's gauges, and a snapshot recorded per
// sample. The delta against BenchmarkLiveIngest is the sampler's cost
// to the ingest path — it should be noise, since sampling touches only
// atomics the hot path already owns.
func BenchmarkIngestSampled(b *testing.B) {
	recs := genRecords(500)
	cfg := Config{Shards: 8, QueueDepth: 64, Clock: simclock.NewManual(simclock.StudyStart)}
	newWorld := func() (*Engine, context.CancelFunc) {
		cfg.Series = obs.NewSeriesRing(600)
		e := NewEngine(cfg)
		s := obs.NewSampler(e.Metrics(), cfg.Series, cfg.Clock, time.Second)
		s.AddSource(e.PublishGauges)
		ctx, cancel := context.WithCancel(context.Background())
		go s.Run(ctx)
		return e, cancel
	}
	e, cancel := newWorld()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i > 0 && i%200 == 0 {
			b.StopTimer()
			cancel()
			e.Close()
			e, cancel = newWorld()
			b.StartTimer()
		}
		for {
			res, err := e.Ingest(recs)
			if err != nil {
				b.Fatal(err)
			}
			if res.Backpressured == 0 {
				break
			}
		}
	}
	b.StopTimer()
	cancel()
	e.Close()
	b.ReportMetric(float64(500*b.N)/b.Elapsed().Seconds(), "records/s")
}

// BenchmarkQueryUnderIngest measures query latency on the published
// generation while a writer goroutine streams batches and a
// snapshotter cuts epochs — the serving plane's steady state. Queries
// read the atomic generation pointer and share no lock with the
// append path, so ingest stalls cannot show up in these numbers.
func BenchmarkQueryUnderIngest(b *testing.B) {
	e := NewEngine(Config{Shards: 8, QueueDepth: 64, Clock: simclock.NewManual(simclock.StudyStart)})
	defer e.Close()
	if _, err := e.Ingest(genRecords(50000)); err != nil {
		b.Fatal(err)
	}
	e.Snapshot()

	stop := make(chan struct{})
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		batch := genRecords(500)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if res, err := e.Ingest(batch); err != nil || res.Backpressured > 0 {
				time.Sleep(time.Millisecond)
			}
		}
	}()
	snapDone := make(chan struct{})
	go func() {
		defer close(snapDone)
		tick := time.NewTicker(50 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				e.Snapshot()
			}
		}
	}()

	dims := []string{"protocol", "platform", "cdn"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := e.Generation()
		if _, err := ShareOver(g.Dataset, dims[i%len(dims)], "viewhours"); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(stop)
	<-writerDone
	<-snapDone
}
